/**
 * @file
 * Dynamic race detection on *hardware* executions: the happens-before
 * checker applied to traces recorded by the simulator (synchronization
 * order taken from commit times), the workflow of the companion
 * "Detecting Data Races on Weak Memory Systems" line of work the paper
 * cites as ongoing ([NeM89]).
 */

#include <gtest/gtest.h>

#include "core/drf0_checker.hh"
#include "system/system.hh"
#include "workload/litmus.hh"
#include "workload/random_gen.hh"

namespace wo {
namespace {

TEST(DynamicRaces, Drf0WorkloadTracesAreRaceFreeOnAllPolicies)
{
    for (PolicyKind pk : {PolicyKind::Sc, PolicyKind::Def1,
                          PolicyKind::Def2Drf0, PolicyKind::Def2Drf1}) {
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            RandomWorkloadConfig w;
            w.numProcs = 3;
            w.seed = seed;
            SystemConfig cfg;
            cfg.policy = pk;
            cfg.net.seed = seed + 5;
            System sys(randomDrf0Program(w), cfg);
            ASSERT_TRUE(sys.run());
            Drf0TraceReport rep = checkTrace(sys.trace());
            EXPECT_TRUE(rep.raceFree)
                << toString(pk) << " seed " << seed << "\n"
                << rep.toString(sys.trace());
        }
    }
}

TEST(DynamicRaces, RacyWorkloadTracesAreFlagged)
{
    int flagged = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        RandomWorkloadConfig w;
        w.numProcs = 3;
        w.seed = seed;
        SystemConfig cfg;
        cfg.policy = PolicyKind::Def2Drf0;
        cfg.net.seed = seed + 5;
        System sys(randomRacyProgram(w, 3), cfg);
        ASSERT_TRUE(sys.run());
        if (!checkTrace(sys.trace()).raceFree)
            ++flagged;
    }
    EXPECT_GE(flagged, 5);
}

TEST(DynamicRaces, DekkerTraceOnScHardwareStillRacy)
{
    // Race-freedom is a property of the program, not the machine: even a
    // sequentially consistent run of Dekker contains unordered
    // conflicting accesses.
    SystemConfig cfg;
    cfg.policy = PolicyKind::Sc;
    System sys(dekkerLitmus(), cfg);
    ASSERT_TRUE(sys.run());
    Drf0TraceReport rep = checkTrace(sys.trace());
    EXPECT_FALSE(rep.raceFree);
    EXPECT_GE(rep.races.size(), 2u);
}

TEST(DynamicRaces, SyncMessagePassingTraceOrdersTheConflict)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::Def2Drf0;
    System sys(syncMessagePassing(), cfg);
    ASSERT_TRUE(sys.run());
    const ExecutionTrace &t = sys.trace();
    Drf0TraceReport rep = checkTrace(t);
    EXPECT_TRUE(rep.raceFree) << rep.toString(t);
    // The W(data) and R(data) are hb-ordered through the flag syncs.
    HappensBefore hb(t);
    int w = -1, r = -1;
    for (const auto &a : t.accesses()) {
        if (a.addr == litmus::kData && a.kind == AccessKind::DataWrite)
            w = a.id;
        if (a.addr == litmus::kData && a.kind == AccessKind::DataRead)
            r = a.id;
    }
    ASSERT_GE(w, 0);
    ASSERT_GE(r, 0);
    EXPECT_TRUE(hb.ordered(w, r));
}

TEST(DynamicRaces, BarrierTraceRaceFreeOnWeakHardware)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::Def2Drf1;
    System sys(syncBarrier(4), cfg);
    ASSERT_TRUE(sys.run());
    Drf0TraceReport rep = checkTrace(sys.trace());
    EXPECT_TRUE(rep.raceFree) << rep.toString(sys.trace());
}

} // namespace
} // namespace wo
