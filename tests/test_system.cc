/**
 * @file
 * Integration tests: whole systems running whole programs, checked
 * against the formal core (SC verification, idealized outcome sets).
 */

#include <gtest/gtest.h>

#include "core/contract.hh"
#include "core/sc_verifier.hh"
#include "cpu/program_builder.hh"
#include "system/system.hh"

namespace wo {
namespace {

const Addr X = 0, Y = 1, S = 2;

MultiProgram
singleProc()
{
    MultiProgram mp("single");
    ProgramBuilder b;
    b.movi(1, 7)
        .storeReg(X, 1)
        .load(0, X)
        .store(Y, 3)
        .load(2, Y)
        .halt();
    mp.addProgram(b.build());
    return mp;
}

MultiProgram
dekker()
{
    MultiProgram mp("dekker");
    ProgramBuilder p0, p1;
    p0.store(X, 1).load(0, Y).halt();
    p1.store(Y, 1).load(0, X).halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    return mp;
}

/** DRF0 message passing: producer writes data then Unsets a flag;
 * consumer spins with Test then reads data. */
MultiProgram
syncMessagePassing()
{
    MultiProgram mp("sync-mp");
    ProgramBuilder p0, p1;
    p0.store(X, 42).unset(S, 1).halt();
    p1.label("spin").test(0, S).beq(0, 0, "spin").load(1, X).halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    return mp;
}

/** The Figure 3 scenario: P0: W(x), work, Unset(s); P1: TAS(s) until
 * acquired, work, R(x). */
MultiProgram
figure3()
{
    MultiProgram mp("fig3");
    ProgramBuilder p0, p1;
    p0.store(X, 1).nop(3).unset(S, 1).nop(3).halt();
    p1.label("spin").tas(0, S, 0).beq(0, 0, "spin").nop(3).load(1, X)
        .halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    // s==1 means "set" (released); TAS grabs it by writing 0.
    return mp;
}

SystemConfig
cfgFor(PolicyKind pk, InterconnectKind ic = InterconnectKind::Network,
       bool cached = true, std::uint64_t seed = 1)
{
    SystemConfig cfg;
    cfg.policy = pk;
    cfg.interconnect = ic;
    cfg.cached = cached;
    cfg.net.seed = seed;
    return cfg;
}

TEST(SystemSmoke, SingleProcessorAllPolicies)
{
    for (PolicyKind pk :
         {PolicyKind::Sc, PolicyKind::Def1, PolicyKind::Def2Drf0,
          PolicyKind::Def2Drf1, PolicyKind::Relaxed}) {
        System sys(singleProc(), cfgFor(pk));
        ASSERT_TRUE(sys.run()) << toString(pk);
        RunResult r = sys.result();
        EXPECT_EQ(r.registers[0][0], 7u) << toString(pk);
        EXPECT_EQ(r.registers[0][2], 3u) << toString(pk);
        EXPECT_EQ(r.finalMemory[X], 7u) << toString(pk);
        EXPECT_EQ(r.finalMemory[Y], 3u) << toString(pk);
    }
}

TEST(SystemSmoke, SingleProcessorUncachedConfigs)
{
    for (InterconnectKind ic :
         {InterconnectKind::Bus, InterconnectKind::Network}) {
        System sys(singleProc(), cfgFor(PolicyKind::Sc, ic, false));
        ASSERT_TRUE(sys.run());
        RunResult r = sys.result();
        EXPECT_EQ(r.registers[0][0], 7u);
        EXPECT_EQ(r.finalMemory[Y], 3u);
    }
}

TEST(SystemSmoke, RelaxedWriteBufferSingleProcForwards)
{
    SystemConfig cfg = cfgFor(PolicyKind::Relaxed);
    cfg.writeBuffer = true;
    System sys(singleProc(), cfg);
    ASSERT_TRUE(sys.run());
    // The loads must see the buffered stores (intra-processor
    // dependencies are preserved even in the relaxed system).
    EXPECT_EQ(sys.result().registers[0][0], 7u);
    EXPECT_EQ(sys.result().registers[0][2], 3u);
}

TEST(SystemConfigValidation, RejectsIllegalCombos)
{
    SystemConfig uncached_def2 = cfgFor(PolicyKind::Def2Drf0);
    uncached_def2.cached = false;
    EXPECT_THROW(System(dekker(), uncached_def2), std::invalid_argument);

    SystemConfig sc_wb = cfgFor(PolicyKind::Sc);
    sc_wb.writeBuffer = true;
    EXPECT_THROW(System(dekker(), sc_wb), std::invalid_argument);
}

TEST(SystemSc, DekkerNeverBothZeroAcrossSeedsAndConfigs)
{
    struct Combo
    {
        InterconnectKind ic;
        bool cached;
    };
    for (Combo c : {Combo{InterconnectKind::Bus, false},
                    Combo{InterconnectKind::Network, false},
                    Combo{InterconnectKind::Bus, true},
                    Combo{InterconnectKind::Network, true}}) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            System sys(dekker(), cfgFor(PolicyKind::Sc, c.ic, c.cached,
                                        seed));
            ASSERT_TRUE(sys.run());
            RunResult r = sys.result();
            bool both_zero =
                r.registers[0][0] == 0 && r.registers[1][0] == 0;
            EXPECT_FALSE(both_zero);
            EXPECT_TRUE(verifySc(sys.trace()).sc());
        }
    }
}

TEST(SystemRelaxed, WriteBufferBreaksDekkerOnBus)
{
    // Figure 1, case 1/3: reads passing buffered writes let both
    // processors read 0.
    int violations = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SystemConfig cfg =
            cfgFor(PolicyKind::Relaxed, InterconnectKind::Bus, false, seed);
        cfg.writeBuffer = true;
        System sys(dekker(), cfg);
        ASSERT_TRUE(sys.run());
        RunResult r = sys.result();
        if (r.registers[0][0] == 0 && r.registers[1][0] == 0) {
            ++violations;
            EXPECT_EQ(verifySc(sys.trace()).verdict, ScVerdict::NotSc);
        }
    }
    EXPECT_GT(violations, 0);
}

TEST(SystemDrf0, SyncMessagePassingDeliversData)
{
    for (PolicyKind pk : {PolicyKind::Sc, PolicyKind::Def1,
                          PolicyKind::Def2Drf0, PolicyKind::Def2Drf1}) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            System sys(syncMessagePassing(),
                       cfgFor(pk, InterconnectKind::Network, true, seed));
            ASSERT_TRUE(sys.run()) << toString(pk) << " seed " << seed;
            RunResult r = sys.result();
            // The consumer must observe the datum (DRF0 contract).
            EXPECT_EQ(r.registers[1][1], 42u)
                << toString(pk) << " seed " << seed;
            ScReport sc = verifySc(sys.trace());
            EXPECT_TRUE(sc.sc())
                << toString(pk) << " seed " << seed << ": "
                << sc.toString() << "\n" << sys.trace().toString();
        }
    }
}

TEST(SystemDrf0, Figure3ScenarioAllWeakPolicies)
{
    for (PolicyKind pk : {PolicyKind::Sc, PolicyKind::Def1,
                          PolicyKind::Def2Drf0, PolicyKind::Def2Drf1}) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            SystemConfig cfg =
                cfgFor(pk, InterconnectKind::Network, true, seed);
            cfg.warmCaches = true; // x shared in both caches: invalidations
            MultiProgram mp = figure3();
            System sys(mp, cfg);
            ASSERT_TRUE(sys.run()) << toString(pk) << " seed " << seed;
            RunResult r = sys.result();
            EXPECT_EQ(r.registers[1][1], 1u)
                << toString(pk) << " seed " << seed
                << "\n" << sys.trace().toString();
            EXPECT_TRUE(verifySc(sys.trace()).sc()) << toString(pk);
        }
    }
}

TEST(SystemDrf0, OutcomeWithinIdealizedSet)
{
    MultiProgram mp = syncMessagePassing();
    SystemConfig cfg = cfgFor(PolicyKind::Def2Drf0);
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run());
    RunResult hw = sys.result();
    ContractOptions opts;
    opts.checkOutcomeSet = true;
    ContractReport rep = checkExecution(mp, sys.trace(), &hw, opts);
    EXPECT_TRUE(rep.appearsSc) << rep.toString();
    EXPECT_TRUE(rep.outcomeChecked);
    EXPECT_TRUE(rep.outcomeInScSet) << hw.toString();
}

TEST(SystemEviction, SmallCacheStillCorrect)
{
    // A workload touching more lines than a tiny cache holds.
    MultiProgram mp("evict");
    ProgramBuilder b;
    for (Addr a = 0; a < 16; ++a)
        b.store(a, a + 100);
    for (Addr a = 0; a < 16; ++a)
        b.load(static_cast<int>(a % 4), a);
    b.halt();
    mp.addProgram(b.build());

    SystemConfig cfg = cfgFor(PolicyKind::Def2Drf0);
    cfg.cache.numSets = 2;
    cfg.cache.ways = 2;
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run());
    RunResult r = sys.result();
    for (Addr a = 0; a < 16; ++a)
        EXPECT_EQ(r.finalMemory[a], a + 100);
    // The last four loads land in registers 0..3 (addresses 12..15).
    EXPECT_EQ(r.registers[0][0], 112u);
    EXPECT_EQ(r.registers[0][3], 115u);
    EXPECT_GT(sys.stats().get("cache0.writebacks"), 0u);
}

TEST(SystemEviction, TwoProcsContendingWithTinyCaches)
{
    MultiProgram mp("evict2");
    for (int p = 0; p < 2; ++p) {
        ProgramBuilder b;
        // Disjoint address ranges per processor (data-race-free), with a
        // shared sync handoff at the end.
        Addr base = p * 16;
        for (Addr a = 0; a < 12; ++a)
            b.store(base + a, p * 1000 + a);
        for (Addr a = 0; a < 12; ++a)
            b.load(0, base + a);
        b.halt();
        mp.addProgram(b.build());
    }
    SystemConfig cfg = cfgFor(PolicyKind::Def2Drf0);
    cfg.cache.numSets = 2;
    cfg.cache.ways = 2;
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run());
    RunResult r = sys.result();
    EXPECT_EQ(r.finalMemory[11], 11u);
    EXPECT_EQ(r.finalMemory[16 + 11], 1011u);
    EXPECT_TRUE(verifySc(sys.trace()).sc());
}

TEST(SystemStats, StallAccountingMovesWithPolicy)
{
    // Under Def1 the producer stalls at the Unset until its data write is
    // globally performed; under Def2 it does not (Figure 3's headline).
    MultiProgram mp = figure3();
    SystemConfig base = cfgFor(PolicyKind::Def1);
    base.warmCaches = true;
    base.cache.invApplyDelay = 200; // make the write slow to perform

    System def1(mp, base);
    ASSERT_TRUE(def1.run());
    Tick def1_p0_stall = def1.processor(0).stallCycles();

    SystemConfig cfg2 = base;
    cfg2.policy = PolicyKind::Def2Drf0;
    System def2(mp, cfg2);
    ASSERT_TRUE(def2.run());
    Tick def2_p0_stall = def2.processor(0).stallCycles();

    EXPECT_GT(def1_p0_stall, def2_p0_stall + 100)
        << "Def1 P0 stall " << def1_p0_stall << " vs Def2 "
        << def2_p0_stall;
}

} // namespace
} // namespace wo
