/**
 * @file
 * Unit tests for the idealized (atomic, program-order) architecture and
 * its enumeration services.
 */

#include <gtest/gtest.h>

#include "core/idealized.hh"
#include "cpu/program_builder.hh"

namespace wo {
namespace {

MultiProgram
dekker()
{
    // Figure 1 of the paper: P1: X=1; r0=Y.  P2: Y=1; r0=X.
    MultiProgram mp("dekker");
    const Addr X = 0, Y = 1;
    ProgramBuilder p1, p2;
    p1.store(X, 1).load(0, Y).halt();
    p2.store(Y, 1).load(0, X).halt();
    mp.addProgram(p1.build());
    mp.addProgram(p2.build());
    return mp;
}

TEST(IdealizedMachine, SingleProcSequentialSemantics)
{
    MultiProgram mp("seq");
    ProgramBuilder b;
    b.movi(0, 5).addi(1, 0, 3).storeReg(10, 1).load(2, 10).halt();
    mp.addProgram(b.build());

    IdealizedMachine m(mp);
    while (!m.allHalted())
        m.step(0);
    EXPECT_EQ(m.reg(0, 0), 5u);
    EXPECT_EQ(m.reg(0, 1), 8u);
    EXPECT_EQ(m.reg(0, 2), 8u);
    EXPECT_EQ(m.memory(10), 8u);
}

TEST(IdealizedMachine, BranchesFollowRegisters)
{
    MultiProgram mp("br");
    ProgramBuilder b;
    b.movi(0, 1)
        .beq(0, 1, "taken")
        .movi(1, 111) // skipped
        .label("taken")
        .movi(2, 222)
        .halt();
    mp.addProgram(b.build());
    IdealizedMachine m(mp);
    while (!m.allHalted())
        m.step(0);
    EXPECT_EQ(m.reg(0, 1), 0u);
    EXPECT_EQ(m.reg(0, 2), 222u);
}

TEST(IdealizedMachine, TasIsAtomic)
{
    MultiProgram mp("tas");
    ProgramBuilder b;
    b.tas(0, 5).tas(1, 5).halt();
    mp.addProgram(b.build());
    IdealizedMachine m(mp);
    while (!m.allHalted())
        m.step(0);
    EXPECT_EQ(m.reg(0, 0), 0u); // first TAS sees initial 0
    EXPECT_EQ(m.reg(0, 1), 1u); // second sees the 1 the first wrote
    EXPECT_EQ(m.memory(5), 1u);
}

TEST(IdealizedMachine, StepUnstepRoundTrips)
{
    MultiProgram mp = dekker();
    IdealizedMachine m(mp);
    auto key0 = m.stateKey();
    m.step(0);
    m.step(1);
    m.step(1);
    EXPECT_NE(m.stateKey(), key0);
    m.unstep();
    m.unstep();
    m.unstep();
    EXPECT_EQ(m.stateKey(), key0);
    EXPECT_EQ(m.trace().size(), 0);
}

TEST(IdealizedMachine, RecordsTraceAccesses)
{
    MultiProgram mp = dekker();
    IdealizedMachine m(mp);
    while (!m.allHalted()) {
        for (ProcId p = 0; p < 2; ++p) {
            if (!m.halted(p))
                m.step(p);
        }
    }
    // 2 stores + 2 loads.
    EXPECT_EQ(m.trace().size(), 4);
}

TEST(IdealizedMachine, InitialValuesRespected)
{
    MultiProgram mp("init");
    ProgramBuilder b;
    b.load(0, 3).halt();
    mp.addProgram(b.build());
    mp.setInitial(3, 77);
    IdealizedMachine m(mp);
    while (!m.allHalted())
        m.step(0);
    EXPECT_EQ(m.reg(0, 0), 77u);
}

TEST(EnumerateOutcomes, DekkerHasThreeScOutcomes)
{
    // Under SC the outcome r0==0 on both processors is impossible; the
    // other three combinations are reachable.
    OutcomeSet set = enumerateOutcomes(dekker());
    EXPECT_FALSE(set.bounded);
    EXPECT_EQ(set.outcomes.size(), 3u);
    for (const auto &r : set.outcomes) {
        bool both_zero =
            r.registers[0][0] == 0 && r.registers[1][0] == 0;
        EXPECT_FALSE(both_zero) << r.toString();
    }
}

TEST(EnumerateOutcomes, SingleProcHasOneOutcome)
{
    MultiProgram mp("one");
    ProgramBuilder b;
    b.store(0, 1).load(0, 0).halt();
    mp.addProgram(b.build());
    OutcomeSet set = enumerateOutcomes(mp);
    EXPECT_EQ(set.outcomes.size(), 1u);
}

TEST(EnumerateOutcomes, SpinLoopTerminatesViaMemoization)
{
    // P0 spins until P1 sets the flag: infinitely many interleavings, but
    // finitely many states.
    MultiProgram mp("spin");
    const Addr F = 0;
    ProgramBuilder p0, p1;
    p0.label("spin").load(0, F).beq(0, 0, "spin").halt();
    p1.store(F, 1).halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    OutcomeSet set = enumerateOutcomes(mp);
    EXPECT_FALSE(set.bounded);
    // Exactly one halted outcome (P0 read 1, memory F==1); states where P0
    // spins forever are cycles, pruned by memoization.
    ASSERT_EQ(set.outcomes.size(), 1u);
    EXPECT_TRUE(set.outcomes.begin()->allHalted);
}

TEST(ForEachExecution, CountsDekkerInterleavings)
{
    // Two processors with 3 instructions each (store, load, halt):
    // C(6,3) = 20 interleavings.
    std::uint64_t n = 0;
    bool full = forEachExecution(
        dekker(), {},
        [&](const ExecutionTrace &, const RunResult &, bool complete) {
            EXPECT_TRUE(complete);
            ++n;
            return true;
        });
    EXPECT_TRUE(full);
    EXPECT_EQ(n, 20u);
}

TEST(ForEachExecution, EarlyStopWorks)
{
    std::uint64_t n = 0;
    bool full = forEachExecution(
        dekker(), {},
        [&](const ExecutionTrace &, const RunResult &, bool) {
            ++n;
            return n < 5;
        });
    EXPECT_FALSE(full);
    EXPECT_EQ(n, 5u);
}

TEST(RunWithSchedule, FollowsGivenOrder)
{
    MultiProgram mp = dekker();
    // All of P0 first, then P1: P0 reads Y==0, P1 reads X==1.
    ExecutionTrace t;
    RunResult r = runWithSchedule(mp, {0, 0, 0, 1, 1, 1}, &t);
    EXPECT_TRUE(r.allHalted);
    EXPECT_EQ(r.registers[0][0], 0u);
    EXPECT_EQ(r.registers[1][0], 1u);
    EXPECT_EQ(t.size(), 4);
}

TEST(RunWithSchedule, FinishesRoundRobinAfterSchedule)
{
    MultiProgram mp = dekker();
    RunResult r = runWithSchedule(mp, {0});
    EXPECT_TRUE(r.allHalted);
}

} // namespace
} // namespace wo
