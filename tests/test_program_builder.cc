/**
 * @file
 * Unit tests for Program / MultiProgram / ProgramBuilder.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cpu/program_builder.hh"

namespace wo {
namespace {

TEST(ProgramBuilder, BuildsStraightLineCode)
{
    ProgramBuilder b;
    b.store(1, 42).load(0, 1).halt();
    Program p = b.build();
    ASSERT_EQ(p.size(), 3);
    EXPECT_EQ(p.at(0).op, Opcode::Store);
    EXPECT_EQ(p.at(1).op, Opcode::Load);
    EXPECT_EQ(p.at(2).op, Opcode::Halt);
}

TEST(ProgramBuilder, AppendsImplicitHalt)
{
    ProgramBuilder b;
    b.store(1, 42);
    Program p = b.build();
    ASSERT_EQ(p.size(), 2);
    EXPECT_EQ(p.at(1).op, Opcode::Halt);
}

TEST(ProgramBuilder, ResolvesForwardLabels)
{
    ProgramBuilder b;
    b.load(0, 1).beq(0, 0, "skip").store(2, 9).label("skip").halt();
    Program p = b.build();
    EXPECT_EQ(p.at(1).target, 3);
}

TEST(ProgramBuilder, ResolvesBackwardLabels)
{
    ProgramBuilder b;
    b.label("spin").test(0, 5).bne(0, 0, "spin").halt();
    Program p = b.build();
    EXPECT_EQ(p.at(1).target, 0);
}

TEST(ProgramBuilder, UndefinedLabelThrows)
{
    ProgramBuilder b;
    b.beq(0, 0, "nowhere");
    EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(ProgramBuilder, DuplicateLabelThrows)
{
    ProgramBuilder b;
    b.label("a");
    EXPECT_THROW(b.label("a"), std::invalid_argument);
}

TEST(Program, MaxRegisterAndTouchedAddrs)
{
    ProgramBuilder b;
    b.load(3, 10).storeReg(20, 1).tas(0, 30);
    Program p = b.build();
    EXPECT_EQ(p.maxRegister(), 3);
    EXPECT_EQ(p.touchedAddrs(), (std::vector<Addr>{10, 20, 30}));
}

TEST(MultiProgram, TracksInitialValues)
{
    MultiProgram mp("t");
    EXPECT_EQ(mp.initialValue(5), 0u);
    mp.setInitial(5, 99);
    EXPECT_EQ(mp.initialValue(5), 99u);
    mp.setInitial(5, 7);
    EXPECT_EQ(mp.initialValue(5), 7u);
}

TEST(MultiProgram, NumRegistersIsMaxPlusOne)
{
    MultiProgram mp("t");
    ProgramBuilder a, b;
    a.load(2, 0);
    b.load(5, 0);
    mp.addProgram(a.build());
    mp.addProgram(b.build());
    EXPECT_EQ(mp.numProcs(), 2);
    EXPECT_EQ(mp.numRegisters(), 6);
}

TEST(MultiProgram, TouchedAddrsIncludesInitials)
{
    MultiProgram mp("t");
    ProgramBuilder a;
    a.load(0, 1);
    mp.addProgram(a.build());
    mp.setInitial(7, 1);
    auto addrs = mp.touchedAddrs();
    EXPECT_EQ(addrs, (std::vector<Addr>{1, 7}));
}

} // namespace
} // namespace wo
