/**
 * @file
 * Unit tests for the random workload generators.
 */

#include <gtest/gtest.h>

#include "core/drf0_checker.hh"
#include "workload/random_gen.hh"

namespace wo {
namespace {

RandomWorkloadConfig
smallCfg(std::uint64_t seed, bool spin = true)
{
    RandomWorkloadConfig cfg;
    cfg.numProcs = 3;
    cfg.numLocks = 2;
    cfg.locsPerLock = 2;
    cfg.privateLocs = 2;
    cfg.sectionsPerProc = 2;
    cfg.opsPerSection = 2;
    cfg.privateOpsBetween = 1;
    cfg.spinAcquire = spin;
    cfg.seed = seed;
    return cfg;
}

TEST(RandomGen, DeterministicForSeed)
{
    MultiProgram a = randomDrf0Program(smallCfg(42));
    MultiProgram b = randomDrf0Program(smallCfg(42));
    ASSERT_EQ(a.numProcs(), b.numProcs());
    for (int p = 0; p < a.numProcs(); ++p) {
        ASSERT_EQ(a.program(p).size(), b.program(p).size());
        for (int i = 0; i < a.program(p).size(); ++i) {
            EXPECT_EQ(a.program(p).at(i).toString(),
                      b.program(p).at(i).toString());
        }
    }
}

TEST(RandomGen, DifferentSeedsDiffer)
{
    MultiProgram a = randomDrf0Program(smallCfg(1));
    MultiProgram b = randomDrf0Program(smallCfg(2));
    bool differs = false;
    for (int p = 0; p < a.numProcs() && !differs; ++p) {
        if (a.program(p).size() != b.program(p).size()) {
            differs = true;
            break;
        }
        for (int i = 0; i < a.program(p).size(); ++i) {
            if (a.program(p).at(i).toString() !=
                b.program(p).at(i).toString()) {
                differs = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differs);
}

TEST(RandomGen, Drf0ProgramsAreRaceFreeSampled)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        MultiProgram mp = randomDrf0Program(smallCfg(seed));
        Drf0ProgramReport rep = checkProgramSampled(mp, 60, seed * 11);
        EXPECT_TRUE(rep.obeysDrf0)
            << "seed " << seed << "\n"
            << rep.witnessReport.toString(rep.witness);
    }
}

TEST(RandomGen, BoundedDrf0ProgramExhaustivelyRaceFree)
{
    RandomWorkloadConfig cfg = smallCfg(5, /*spin=*/false);
    cfg.numProcs = 2;
    cfg.sectionsPerProc = 1;
    MultiProgram mp = randomDrf0Program(cfg);
    Drf0ProgramReport rep = checkProgram(mp);
    EXPECT_TRUE(rep.obeysDrf0)
        << rep.witnessReport.toString(rep.witness);
    EXPECT_FALSE(rep.bounded);
}

TEST(RandomGen, RacyProgramsHaveRaces)
{
    int racy_found = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        MultiProgram mp = randomRacyProgram(smallCfg(seed), 3);
        Drf0ProgramReport rep = checkProgramSampled(mp, 60, seed * 13);
        if (!rep.obeysDrf0)
            ++racy_found;
    }
    // Unguarded shared accesses race in (almost) every seed.
    EXPECT_GE(racy_found, 6);
}

TEST(RandomGen, LockAddressesDisjointFromData)
{
    RandomWorkloadConfig cfg = smallCfg(1);
    MultiProgram mp = randomDrf0Program(cfg);
    // Every sync access must target a lock address, every data access a
    // non-lock address.
    for (int p = 0; p < mp.numProcs(); ++p) {
        for (const auto &insn : mp.program(p).code()) {
            if (!insn.isMemOp())
                continue;
            bool is_lock = insn.addr < static_cast<Addr>(cfg.numLocks);
            if (isSync(insn.accessKind()))
                EXPECT_TRUE(is_lock) << insn.toString();
            else
                EXPECT_FALSE(is_lock) << insn.toString();
        }
    }
}

} // namespace
} // namespace wo
