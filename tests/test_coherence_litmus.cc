/**
 * @file
 * Coherence litmus tests: per-location guarantees (condition 2 — all
 * writes to a location observed in one total order) that must hold on
 * EVERY policy, including the relaxed machine with caches, because the
 * directory serializes transactions per line.
 */

#include <gtest/gtest.h>

#include "core/sc_verifier.hh"
#include "cpu/program_builder.hh"
#include "system/system.hh"

namespace wo {
namespace {

const Addr X = 0;

/** CoRR: two reads of one location by the same processor must not see
 * values moving backwards against the write order. */
TEST(CoherenceLitmus, CoRRNeverReadsBackwards)
{
    for (PolicyKind pk :
         {PolicyKind::Sc, PolicyKind::Def1, PolicyKind::Def2Drf0,
          PolicyKind::Def2Drf1, PolicyKind::Relaxed}) {
        for (std::uint64_t seed = 1; seed <= 15; ++seed) {
            MultiProgram mp("corr");
            ProgramBuilder w, r;
            w.store(X, 1).halt();
            r.load(0, X).load(1, X).halt();
            mp.addProgram(w.build());
            mp.addProgram(r.build());

            SystemConfig cfg;
            cfg.policy = pk;
            cfg.net.seed = seed;
            cfg.warmCaches = true;
            System sys(mp, cfg);
            ASSERT_TRUE(sys.run()) << toString(pk);
            RunResult res = sys.result();
            // Forbidden: first read 1 (new), second read 0 (old).
            bool backwards =
                res.registers[1][0] == 1 && res.registers[1][1] == 0;
            EXPECT_FALSE(backwards) << toString(pk) << " seed " << seed;
        }
    }
}

/** CoWW/CoFinal: with two racing writers, the final value is one of the
 * two writes, and per-location serialization gives a single winner
 * everywhere. */
TEST(CoherenceLitmus, RacingWritesHaveSingleWinner)
{
    for (PolicyKind pk : {PolicyKind::Def2Drf0, PolicyKind::Relaxed}) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            MultiProgram mp("coww");
            ProgramBuilder a, b, c;
            a.store(X, 1).halt();
            b.store(X, 2).halt();
            c.load(0, X).load(1, X).halt();
            mp.addProgram(a.build());
            mp.addProgram(b.build());
            mp.addProgram(c.build());

            SystemConfig cfg;
            cfg.policy = pk;
            cfg.net.seed = seed;
            System sys(mp, cfg);
            ASSERT_TRUE(sys.run());
            Word final_x = sys.result().finalMemory.at(X);
            EXPECT_TRUE(final_x == 1 || final_x == 2);
            // The observer must not see 1 then 2 then (finally) 1, i.e.
            // its two reads plus the final value must fit ONE order of
            // the two writes: if it read 2 before 1, final can't be 2
            // unless 2 was re-observed... the simple check: reads can't
            // bracket both orders.
            Word r0 = sys.result().registers[2][0];
            Word r1 = sys.result().registers[2][1];
            if (r0 != 0 && r1 != 0 && r0 != r1) {
                // Saw both writes in some order; the later one must be
                // the final value.
                EXPECT_EQ(final_x, r1)
                    << toString(pk) << " seed " << seed;
            }
        }
    }
}

/** Same-processor write then read of one location must forward. */
TEST(CoherenceLitmus, OwnWriteAlwaysVisible)
{
    for (PolicyKind pk :
         {PolicyKind::Sc, PolicyKind::Def1, PolicyKind::Def2Drf0,
          PolicyKind::Def2Drf1, PolicyKind::Relaxed}) {
        MultiProgram mp("ownfwd");
        ProgramBuilder b;
        b.store(X, 7).load(0, X).store(X, 8).load(1, X).halt();
        mp.addProgram(b.build());
        SystemConfig cfg;
        cfg.policy = pk;
        cfg.writeBuffer = pk == PolicyKind::Relaxed;
        System sys(mp, cfg);
        ASSERT_TRUE(sys.run()) << toString(pk);
        EXPECT_EQ(sys.result().registers[0][0], 7u) << toString(pk);
        EXPECT_EQ(sys.result().registers[0][1], 8u) << toString(pk);
    }
}

/** Sync accesses to one location are totally ordered by commit times
 * even from many processors (condition 3). */
TEST(CoherenceLitmus, SyncRmwsNeverLost)
{
    // 4 processors TAS the same location once; exactly one sees 0.
    for (PolicyKind pk : {PolicyKind::Def2Drf0, PolicyKind::Def2Drf1}) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            MultiProgram mp("tas4");
            for (int p = 0; p < 4; ++p) {
                ProgramBuilder b;
                b.tas(0, X).halt();
                mp.addProgram(b.build());
            }
            SystemConfig cfg;
            cfg.policy = pk;
            cfg.net.seed = seed;
            System sys(mp, cfg);
            ASSERT_TRUE(sys.run());
            int winners = 0;
            for (int p = 0; p < 4; ++p) {
                if (sys.result().registers[p][0] == 0)
                    ++winners;
            }
            EXPECT_EQ(winners, 1) << toString(pk) << " seed " << seed;
            EXPECT_TRUE(verifySc(sys.trace()).sc());
        }
    }
}

} // namespace
} // namespace wo
