/**
 * @file
 * Unit tests for the interconnect models and memory modules.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/interconnect.hh"
#include "mem/memory_module.hh"
#include "sim/event_queue.hh"

namespace wo {
namespace {

Msg
mk(NodeId src, NodeId dst, Addr addr = 0, Word v = 0)
{
    Msg m;
    m.type = MsgType::MemReadReq;
    m.src = src;
    m.dst = dst;
    m.addr = addr;
    m.value = v;
    return m;
}

TEST(Bus, DeliversWithFixedLatency)
{
    EventQueue eq;
    StatSet stats;
    Bus::Config cfg;
    cfg.latency = 4;
    Bus bus(eq, stats, cfg);
    Tick delivered = 0;
    bus.attach(1, [&](const Msg &) { delivered = eq.now(); });
    bus.send(mk(0, 1));
    eq.run();
    EXPECT_EQ(delivered, 4u);
}

TEST(Bus, SerializesGlobalOrder)
{
    EventQueue eq;
    StatSet stats;
    Bus::Config cfg;
    cfg.latency = 4;
    cfg.occupancy = 2;
    Bus bus(eq, stats, cfg);
    std::vector<Word> order;
    bus.attach(1, [&](const Msg &m) { order.push_back(m.value); });
    bus.attach(2, [&](const Msg &m) { order.push_back(m.value); });
    // Three messages injected at the same tick from different sources:
    // the bus carries them one at a time, in injection order.
    bus.send(mk(0, 1, 0, 1));
    bus.send(mk(3, 2, 0, 2));
    bus.send(mk(4, 1, 0, 3));
    eq.run();
    EXPECT_EQ(order, (std::vector<Word>{1, 2, 3}));
    EXPECT_EQ(stats.get("bus.msgs"), 3u);
}

TEST(Network, PointToPointFifoHolds)
{
    EventQueue eq;
    StatSet stats;
    GeneralNetwork::Config cfg;
    cfg.base = 2;
    cfg.jitter = 20;
    cfg.seed = 123;
    GeneralNetwork net(eq, stats, cfg);
    std::vector<Word> order;
    net.attach(1, [&](const Msg &m) { order.push_back(m.value); });
    for (Word i = 0; i < 50; ++i)
        net.send(mk(0, 1, 0, i));
    eq.run();
    ASSERT_EQ(order.size(), 50u);
    for (Word i = 0; i < 50; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Network, CrossPairMessagesCanReorder)
{
    EventQueue eq;
    StatSet stats;
    GeneralNetwork::Config cfg;
    cfg.base = 2;
    cfg.jitter = 20;
    cfg.seed = 7;
    GeneralNetwork net(eq, stats, cfg);
    std::vector<Word> order;
    net.attach(1, [&](const Msg &m) { order.push_back(m.value); });
    net.attach(2, [&](const Msg &m) { order.push_back(m.value); });
    bool reordered = false;
    // Send pairs (to node 1 first, then node 2); if any pair arrives
    // reversed, cross-pair reordering happened.
    for (Word i = 0; i < 20; ++i) {
        order.clear();
        net.send(mk(0, 1, 0, 1));
        net.send(mk(0, 2, 0, 2));
        eq.run();
        if (order == std::vector<Word>{2, 1})
            reordered = true;
    }
    EXPECT_TRUE(reordered);
}

TEST(Network, DeterministicForSeed)
{
    auto run_once = [](std::uint64_t seed) {
        EventQueue eq;
        StatSet stats;
        GeneralNetwork::Config cfg;
        cfg.seed = seed;
        GeneralNetwork net(eq, stats, cfg);
        std::vector<Tick> times;
        net.attach(1, [&](const Msg &) { times.push_back(eq.now()); });
        for (int i = 0; i < 10; ++i)
            net.send(mk(0, 1));
        eq.run();
        return times;
    };
    EXPECT_EQ(run_once(5), run_once(5));
    EXPECT_NE(run_once(5), run_once(6));
}

TEST(MemoryModule, ServicesReadsWritesRmw)
{
    EventQueue eq;
    StatSet stats;
    GeneralNetwork::Config ncfg;
    ncfg.jitter = 0;
    GeneralNetwork net(eq, stats, ncfg);
    MemoryModule mem(eq, net, stats, 1, {});
    std::vector<Msg> responses;
    net.attach(0, [&](const Msg &m) { responses.push_back(m); });

    Msg w = mk(0, 1, 5, 42);
    w.type = MsgType::MemWriteReq;
    w.reqId = 1;
    net.send(w);

    Msg r = mk(0, 1, 5);
    r.type = MsgType::MemReadReq;
    r.reqId = 2;
    net.send(r);

    Msg x = mk(0, 1, 5, 7);
    x.type = MsgType::MemRmwReq;
    x.reqId = 3;
    net.send(x);
    eq.run();

    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[0].type, MsgType::MemWriteResp);
    EXPECT_EQ(responses[1].type, MsgType::MemReadResp);
    EXPECT_EQ(responses[1].value, 42u);
    EXPECT_EQ(responses[2].type, MsgType::MemRmwResp);
    EXPECT_EQ(responses[2].value, 42u); // old value returned
    EXPECT_EQ(mem.peek(5), 7u);
}

TEST(MemoryModule, SerializesServiceTime)
{
    EventQueue eq;
    StatSet stats;
    GeneralNetwork::Config ncfg;
    ncfg.base = 1;
    ncfg.jitter = 0;
    GeneralNetwork net(eq, stats, ncfg);
    MemoryModule::Config mcfg;
    mcfg.serviceLatency = 10;
    MemoryModule mem(eq, net, stats, 1, mcfg);
    std::vector<Tick> resp_times;
    net.attach(0, [&](const Msg &) { resp_times.push_back(eq.now()); });
    for (int i = 0; i < 3; ++i) {
        Msg r = mk(0, 1, 5);
        r.type = MsgType::MemReadReq;
        net.send(r);
    }
    eq.run();
    ASSERT_EQ(resp_times.size(), 3u);
    // Service completions 10 apart (plus the return hop).
    EXPECT_GE(resp_times[1], resp_times[0] + 10);
    EXPECT_GE(resp_times[2], resp_times[1] + 10);
}

} // namespace
} // namespace wo
