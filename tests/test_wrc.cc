/**
 * @file
 * WRC (write-to-read causality): P0 writes x; P1 observes it and writes
 * y; P2 observes y and reads x. Under SC, P2 must see x == 1. The racy
 * version can fail on relaxed hardware; the sync-labeled version is
 * DRF0 and guaranteed everywhere.
 */

#include <gtest/gtest.h>

#include "core/drf0_checker.hh"
#include "core/idealized.hh"
#include "core/sc_verifier.hh"
#include "cpu/program_builder.hh"
#include "system/system.hh"

namespace wo {
namespace {

const Addr X = 0, Y = 1;

MultiProgram
wrc(bool labeled)
{
    MultiProgram mp(labeled ? "wrc-sync" : "wrc-data");
    ProgramBuilder p0, p1, p2;
    if (labeled) {
        p0.unset(X, 1).halt();
        p1.label("s1").test(0, X).beq(0, 0, "s1").unset(Y, 1).halt();
        p2.label("s2").test(0, Y).beq(0, 0, "s2").test(1, X).halt();
    } else {
        p0.store(X, 1).halt();
        p1.label("s1").load(0, X).beq(0, 0, "s1").store(Y, 1).halt();
        p2.label("s2").load(0, Y).beq(0, 0, "s2").load(1, X).halt();
    }
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    mp.addProgram(p2.build());
    return mp;
}

TEST(Wrc, LabeledVersionIsDrf0)
{
    Drf0ProgramReport r = checkProgramSampled(wrc(true), 200, 3);
    EXPECT_TRUE(r.obeysDrf0) << r.witnessReport.toString(r.witness);
}

TEST(Wrc, DataVersionIsRacy)
{
    Drf0ProgramReport r = checkProgramSampled(wrc(false), 100, 3);
    EXPECT_FALSE(r.obeysDrf0);
}

TEST(Wrc, IdealizedAlwaysPropagatesCausality)
{
    OutcomeSet set = enumerateOutcomes(wrc(false));
    for (const auto &r : set.outcomes) {
        if (r.allHalted)
            EXPECT_EQ(r.registers[2][1], 1u) << r.toString();
    }
    EXPECT_FALSE(set.outcomes.empty());
}

TEST(Wrc, LabeledVersionCausalOnAllConformingImplementations)
{
    for (PolicyKind pk : {PolicyKind::Sc, PolicyKind::Def1,
                          PolicyKind::Def2Drf0, PolicyKind::Def2Drf1}) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            SystemConfig cfg;
            cfg.policy = pk;
            cfg.net.seed = seed;
            System sys(wrc(true), cfg);
            ASSERT_TRUE(sys.run()) << toString(pk) << " seed " << seed;
            EXPECT_EQ(sys.result().registers[2][1], 1u)
                << toString(pk) << " seed " << seed;
            EXPECT_TRUE(verifySc(sys.trace()).sc()) << toString(pk);
        }
    }
}

TEST(Wrc, ScHardwareKeepsEvenTheRacyVersionCausal)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SystemConfig cfg;
        cfg.policy = PolicyKind::Sc;
        cfg.net.seed = seed;
        System sys(wrc(false), cfg);
        ASSERT_TRUE(sys.run());
        EXPECT_EQ(sys.result().registers[2][1], 1u) << "seed " << seed;
    }
}

} // namespace
} // namespace wo
