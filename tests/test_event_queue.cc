/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace wo {
namespace {

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.scheduleAt(5, [&, i] { order.push_back(i); });
    EXPECT_TRUE(eq.run());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleAfter(5, [&] { seen = eq.now(); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.scheduleAt(0, chain);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(count, 100);
    EXPECT_EQ(eq.now(), 99u);
    EXPECT_EQ(eq.executed(), 100u);
}

TEST(EventQueue, RunHonorsTickLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.scheduleAt(1000, [&] { ++fired; });
    EXPECT_FALSE(eq.run(100));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, ResetDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueue, SameTickChainingRunsSameTick)
{
    EventQueue eq;
    bool inner = false;
    eq.scheduleAt(7, [&] { eq.scheduleAfter(0, [&] { inner = true; }); });
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(inner);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = r.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, BelowCoversValues)
{
    Rng r(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 800; ++i)
        ++seen[r.below(8)];
    for (int c : seen)
        EXPECT_GT(c, 0);
}

} // namespace
} // namespace wo
