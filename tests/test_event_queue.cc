/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/rng.hh"

namespace wo {
namespace {

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.scheduleAt(5, [&, i] { order.push_back(i); });
    EXPECT_TRUE(eq.run());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleAfter(5, [&] { seen = eq.now(); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.scheduleAt(0, chain);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(count, 100);
    EXPECT_EQ(eq.now(), 99u);
    EXPECT_EQ(eq.executed(), 100u);
}

TEST(EventQueue, RunHonorsTickLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.scheduleAt(1000, [&] { ++fired; });
    EXPECT_FALSE(eq.run(100));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, ResetWithPendingEventsThrowsWithoutDrain)
{
    // A reset that would silently drop scheduled work is a caller bug:
    // it throws in every build type (like the past-tick scheduleAt
    // guard), and the queue is left untouched so nothing was lost.
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    EXPECT_THROW(eq.reset(), std::logic_error);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ResetWithDrainDropsPendingEventsDeliberately)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.reset(/*drain=*/true);
    EXPECT_TRUE(eq.empty());
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueue, SameTickChainingRunsSameTick)
{
    EventQueue eq;
    bool inner = false;
    eq.scheduleAt(7, [&] { eq.scheduleAfter(0, [&] { inner = true; }); });
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(inner);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, ScheduleAtPastTickThrowsInEveryBuildType)
{
    EventQueue eq;
    eq.scheduleAt(10, [] {});
    EXPECT_TRUE(eq.run());
    ASSERT_EQ(eq.now(), 10u);
    EXPECT_THROW(eq.scheduleAt(9, [] {}), std::logic_error);
    // The present tick and the future stay schedulable, and the failed
    // call must not have corrupted the queue.
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.scheduleAfter(0, [&] { ++fired; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, LegacyKernelAlsoThrowsOnPastTick)
{
    LegacyEventQueue eq;
    eq.scheduleAt(10, [] {});
    EXPECT_TRUE(eq.run());
    EXPECT_THROW(eq.scheduleAt(9, [] {}), std::logic_error);
}

TEST(EventQueue, PoolRecyclesAcrossManySlabs)
{
    // Far more live events than one 256-record slab, then steady churn
    // through the free list; every callback must fire exactly once.
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int wave = 0; wave < 4; ++wave) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleAfter(1 + i % 7, [&] { ++fired; });
        EXPECT_TRUE(eq.run());
    }
    EXPECT_EQ(fired, 4000u);
    EXPECT_EQ(eq.executed(), 4000u);
}

TEST(EventQueue, OversizedCapturesSpillToHeapIntact)
{
    EventQueue eq;
    std::array<std::uint64_t, 32> big{};
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    static_assert(sizeof(big) > 72, "capture must exceed inline storage");
    eq.scheduleAt(5, [&sum, big] {
        for (std::uint64_t v : big)
            sum += v;
    });
    EXPECT_TRUE(eq.run());
    std::uint64_t want = 0;
    for (std::uint64_t v : big)
        want += v;
    EXPECT_EQ(sum, want);
}

TEST(EventQueue, ResetRetainsPoolAndReplaysIdentically)
{
    EventQueue eq;
    std::vector<Tick> first, second;
    auto load = [&](std::vector<Tick> &trace) {
        for (int i = 0; i < 300; ++i)
            eq.scheduleAt(i % 11, [&trace, &eq] {
                trace.push_back(eq.now());
            });
        EXPECT_TRUE(eq.run());
    };
    load(first);
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    load(second);
    EXPECT_EQ(first, second);
}

/**
 * Golden event-order trace: a randomized self-scheduling workload must
 * fire the identical (tick, event-id) sequence on the pooled kernel and
 * on the historical priority_queue<std::function> kernel it replaced.
 * The Rng is consumed inside callbacks, so any ordering divergence
 * cascades and the traces differ.
 */
template <class Q>
std::vector<std::pair<Tick, std::uint64_t>>
randomSelfSchedulingTrace(std::uint64_t seed)
{
    Q q;
    Rng rng(seed);
    std::vector<std::pair<Tick, std::uint64_t>> trace;
    std::uint64_t next_id = 0;
    std::function<void(std::uint64_t)> fire = [&](std::uint64_t id) {
        trace.emplace_back(q.now(), id);
        if (trace.size() >= 4000)
            return;
        std::uint64_t children = rng.below(3);
        for (std::uint64_t c = 0; c < children; ++c) {
            std::uint64_t child = next_id++;
            q.scheduleAfter(rng.below(5), [&fire, child] { fire(child); });
        }
    };
    for (int i = 0; i < 64; ++i) {
        std::uint64_t id = next_id++;
        q.scheduleAt(rng.below(16), [&fire, id] { fire(id); });
    }
    EXPECT_TRUE(q.run());
    return trace;
}

TEST(EventQueue, MatchesLegacyKernelFireSequence)
{
    for (std::uint64_t seed : {1ull, 7ull, 42ull, 20260806ull}) {
        auto pooled = randomSelfSchedulingTrace<EventQueue>(seed);
        auto legacy = randomSelfSchedulingTrace<LegacyEventQueue>(seed);
        ASSERT_GT(pooled.size(), 64u) << "seed " << seed;
        EXPECT_EQ(pooled, legacy) << "seed " << seed;
    }
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = r.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, BelowCoversValues)
{
    Rng r(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 800; ++i)
        ++seen[r.below(8)];
    for (int c : seen)
        EXPECT_GT(c, 0);
}

} // namespace
} // namespace wo
