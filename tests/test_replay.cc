/**
 * @file
 * The trace-replay pipeline: on-disk format round-trips, workload
 * generator determinism, the logical replay engine (windowed vs
 * whole-trace differential, race injection), the obs-layer capture sink,
 * and simulator-accurate replay on pooled Systems.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/drf0_checker.hh"
#include "cpu/program_builder.hh"
#include "replay/capture.hh"
#include "replay/replay_engine.hh"
#include "replay/system_replay.hh"
#include "replay/trace_format.hh"
#include "replay/trace_gen.hh"
#include "sim/stats.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"

namespace {

using namespace wo;

/** Unique path under the gtest temp dir, removed on destruction. */
class TempTrace
{
  public:
    explicit TempTrace(const std::string &tag)
        : path_(::testing::TempDir() + "wo_replay_" + tag + "_" +
                std::to_string(::getpid()) + ".wotrace")
    {
    }
    ~TempTrace() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

TEST(ReplayFormat, RoundTrip)
{
    ReplayTraceData data;
    data.initials = {{7, 42}, {9, 1}};
    data.threads.resize(3);
    data.threads[0] = {{ReplayOp::LockAcquire, 100, 0},
                       {ReplayOp::Write, 7, 5},
                       {ReplayOp::LockRelease, 100, 0}};
    data.threads[1] = {{ReplayOp::SyncRead, 9, 1},
                       {ReplayOp::Read, 7, 0},
                       {ReplayOp::BarrierWait, 200, 0},
                       {ReplayOp::Rmw, 100, 1}};
    // thread 2 deliberately empty

    TempTrace f("roundtrip");
    ASSERT_TRUE(saveReplayTrace(data, f.path()));

    ReplayTraceData back;
    ASSERT_TRUE(loadReplayTrace(f.path(), back));
    EXPECT_EQ(back.initials, data.initials);
    ASSERT_EQ(back.numThreads(), 3);
    EXPECT_EQ(back.threads[0], data.threads[0]);
    EXPECT_EQ(back.threads[1], data.threads[1]);
    EXPECT_TRUE(back.threads[2].empty());
    EXPECT_EQ(back.totalRecords(), 7u);
}

TEST(ReplayFormat, StreamingReaderSemantics)
{
    ReplayTraceData data;
    data.threads.resize(2);
    for (int i = 0; i < 5; ++i)
        data.threads[0].push_back(
            {ReplayOp::Write, static_cast<Addr>(i), static_cast<Word>(i)});
    data.threads[1].push_back({ReplayOp::Read, 3, 0});

    TempTrace f("stream");
    ASSERT_TRUE(saveReplayTrace(data, f.path()));

    ReplayTraceReader r;
    ASSERT_TRUE(r.open(f.path()));
    EXPECT_EQ(r.numThreads(), 2);
    EXPECT_EQ(r.totalRecords(), 6u);
    EXPECT_EQ(r.remaining(0), 5u);

    ReplayRecord rec;
    ASSERT_TRUE(r.peek(0, rec));
    EXPECT_EQ(rec.addr, 0u);
    EXPECT_EQ(r.remaining(0), 5u); // peek does not consume
    ASSERT_TRUE(r.next(0, rec));
    ASSERT_TRUE(r.next(0, rec));
    EXPECT_EQ(rec.addr, 1u);
    EXPECT_EQ(r.remaining(0), 3u);

    ASSERT_TRUE(r.next(1, rec));
    EXPECT_EQ(rec.op, ReplayOp::Read);
    EXPECT_FALSE(r.next(1, rec)); // exhausted
    EXPECT_FALSE(r.peek(1, rec));

    r.rewind();
    EXPECT_EQ(r.remaining(0), 5u);
    EXPECT_EQ(r.remaining(1), 1u);
    ASSERT_TRUE(r.next(0, rec));
    EXPECT_EQ(rec.addr, 0u);
}

TEST(ReplayFormat, ReaderRefillsAcrossBufferBoundary)
{
    // One thread longer than the reader's refill buffer forces at least
    // two refills; records are checked against their defining formula.
    const std::uint64_t n = ReplayTraceReader::kBufRecords * 2 + 37;
    TempTrace f("refill");
    {
        ReplayTraceWriter w(f.path(), 1);
        w.beginThread(0);
        for (std::uint64_t i = 0; i < n; ++i)
            w.append({ReplayOp::Write, static_cast<Addr>(i & 0xffff),
                      static_cast<Word>(i * 3)});
        ASSERT_TRUE(w.close());
    }
    ReplayTraceReader r;
    ASSERT_TRUE(r.open(f.path()));
    EXPECT_EQ(r.totalRecords(), n);
    ReplayRecord rec;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(r.next(0, rec)) << "at record " << i;
        ASSERT_EQ(rec.addr, static_cast<Addr>(i & 0xffff));
        ASSERT_EQ(rec.value, static_cast<Word>(i * 3));
    }
    EXPECT_FALSE(r.next(0, rec));
}

TEST(ReplayGen, DeterministicAndDistinct)
{
    TraceGenConfig cfg;
    cfg.threads = 3;
    cfg.rounds = 20;
    cfg.seed = 5;
    TempTrace a("gen_a"), b("gen_b"), c("gen_c");
    for (const char *wl : {"spinlock", "barrier", "prodcons"}) {
        ASSERT_TRUE(writeWorkloadTrace(wl, a.path(), cfg));
        ASSERT_TRUE(writeWorkloadTrace(wl, b.path(), cfg));
        EXPECT_EQ(slurp(a.path()), slurp(b.path())) << wl;
        TraceGenConfig other = cfg;
        other.seed = 6;
        ASSERT_TRUE(writeWorkloadTrace(wl, c.path(), other));
        if (std::string(wl) == "spinlock") { // seed drives the pattern
            EXPECT_NE(slurp(a.path()), slurp(c.path()));
        }
    }
    EXPECT_FALSE(writeWorkloadTrace("nonsense", a.path(), cfg));
}

TEST(ReplayEngineTest, GeneratedWorkloadsAreRaceFree)
{
    TraceGenConfig cfg;
    cfg.threads = 4;
    cfg.rounds = 30;
    for (const char *wl : {"spinlock", "barrier", "prodcons"}) {
        TempTrace f(std::string("rf_") + wl);
        ASSERT_TRUE(writeWorkloadTrace(wl, f.path(), cfg));
        ReplayTraceReader r;
        ASSERT_TRUE(r.open(f.path()));
        ReplayOptions opt;
        opt.window = 128;
        ReplayEngine engine(r, opt);
        ReplayResult res = engine.run();
        ASSERT_TRUE(res.ok) << wl << ": " << res.error;
        EXPECT_TRUE(res.raceFree) << wl;
        EXPECT_EQ(res.recordsReplayed, r.totalRecords()) << wl;
        // Satellite invariant: everything appended was either retired
        // or is still resident in the window.
        EXPECT_EQ(res.eventsRetired + engine.trace().resident(),
                  static_cast<std::int64_t>(engine.trace().size()))
            << wl;
        EXPECT_GT(res.eventsRetired, 0) << wl;
        EXPECT_LE(res.windowHighWater, 128 * 2) << wl;
    }
}

TEST(ReplayEngineTest, InjectedRaceIsDetected)
{
    TraceGenConfig cfg;
    cfg.threads = 3;
    cfg.rounds = 10;
    cfg.injectRace = true;
    for (const char *wl : {"spinlock", "barrier", "prodcons"}) {
        TempTrace f(std::string("racy_") + wl);
        ASSERT_TRUE(writeWorkloadTrace(wl, f.path(), cfg));
        ReplayTraceReader r;
        ASSERT_TRUE(r.open(f.path()));
        ReplayOptions opt;
        opt.window = 64;
        opt.mode = RaceDetectMode::AllRaces;
        ReplayEngine engine(r, opt);
        ReplayResult res = engine.run();
        ASSERT_TRUE(res.ok) << wl << ": " << res.error;
        EXPECT_FALSE(res.raceFree) << wl;
        EXPECT_FALSE(res.races.empty()) << wl;
    }
}

TEST(ReplayEngineTest, WindowedMatchesWholeTraceOracle)
{
    // The tentpole differential: a windowed O(window)-memory run must
    // produce the verdict and race set of the resident whole-trace
    // bitset oracle.
    for (bool racy : {false, true}) {
        TraceGenConfig cfg;
        cfg.threads = 3;
        cfg.rounds = 40;
        cfg.injectRace = racy;
        TempTrace f(racy ? "diff_racy" : "diff_rf");
        ASSERT_TRUE(writeWorkloadTrace("spinlock", f.path(), cfg));

        // Whole-trace run: window 0 keeps every access resident.
        ReplayTraceReader r0;
        ASSERT_TRUE(r0.open(f.path()));
        ReplayOptions full;
        full.window = 0;
        full.mode = RaceDetectMode::AllRaces;
        ReplayEngine oracleEngine(r0, full);
        ReplayResult fullRes = oracleEngine.run();
        ASSERT_TRUE(fullRes.ok) << fullRes.error;
        EXPECT_EQ(fullRes.eventsRetired, 0);

        Drf0TraceReport oracle = checkTraceBitset(oracleEngine.trace());
        std::vector<Race> oracleRaces = oracle.races;
        std::sort(oracleRaces.begin(), oracleRaces.end());
        EXPECT_EQ(fullRes.raceFree, oracle.raceFree);
        EXPECT_EQ(fullRes.races, oracleRaces);

        for (int window : {32, 256}) {
            ReplayTraceReader r1;
            ASSERT_TRUE(r1.open(f.path()));
            ReplayOptions opt = full;
            opt.window = window;
            ReplayEngine engine(r1, opt);
            ReplayResult res = engine.run();
            ASSERT_TRUE(res.ok) << res.error;
            EXPECT_EQ(res.raceFree, oracle.raceFree) << window;
            EXPECT_EQ(res.races, oracleRaces) << window;
            EXPECT_EQ(res.accesses, fullRes.accesses) << window;
            EXPECT_EQ(res.finalMemory, fullRes.finalMemory) << window;
            EXPECT_LT(res.windowHighWater, fullRes.windowHighWater)
                << window;
        }
    }
}

TEST(ReplayEngineTest, StatsExportCountsRetention)
{
    StatSet stats;
    exportReplayStats(stats, "replay", 1234, 99);
    exportReplayStats(stats, "replay", 66, 120);
    std::ostringstream oss;
    stats.dumpJson(oss);
    EXPECT_NE(oss.str().find("\"replay.trace_events_retired\": 1300"),
              std::string::npos)
        << oss.str();
    EXPECT_NE(oss.str().find("\"replay.window_high_water\": 120"),
              std::string::npos)
        << oss.str();
}

TEST(ReplayCapture, LiveSystemCaptureReplays)
{
    // Record a two-thread spinlock increment off the obs layer, then
    // replay the capture through the logical engine: the recorded
    // hand-off must reproduce the final counter value, race-free.
    constexpr Addr kLock = 100, kCounter = 200;
    MultiProgram program("capture-spinlock");
    for (int t = 0; t < 2; ++t) {
        ProgramBuilder b;
        b.label("acq")
            .test(0, kLock)
            .bne(0, 0, "acq")
            .tas(0, kLock, 1)
            .bne(0, 0, "acq");
        b.load(1, kCounter).addi(1, 1, 1).storeReg(kCounter, 1);
        b.unset(kLock, 0);
        b.halt();
        program.addProgram(b.build());
    }

    ReplayCaptureSink sink(program.numProcs());
    SystemConfig cfg = machineOrThrow("bus").config(PolicyKind::Def2Drf0, 1);
    cfg.traceSink = &sink;
    System sys(program, cfg);
    ASSERT_TRUE(sys.run());
    for (const auto &[addr, value] : program.initials())
        sink.data().initials.push_back({addr, value});

    TempTrace f("capture");
    ASSERT_TRUE(saveReplayTrace(sink.data(), f.path()));
    ReplayTraceReader r;
    ASSERT_TRUE(r.open(f.path()));
    ReplayOptions opt;
    opt.window = 0;
    opt.mode = RaceDetectMode::AllRaces;
    ReplayEngine engine(r, opt);
    ReplayResult res = engine.run();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.raceFree);
    // Replay enforces the lock protocol, not the recorded acquisition
    // order, and writes replay their recorded values — so the counter
    // lands on whichever thread's recorded increment replays last.
    Word counter = res.finalMemory.at(kCounter);
    EXPECT_TRUE(counter == 1 || counter == 2) << counter;
    EXPECT_EQ(res.finalMemory.at(kLock), 0u);
    EXPECT_TRUE(checkTraceBitset(engine.trace()).raceFree);
}

TEST(ReplayCapture, OfflineTraceCapture)
{
    // Hand-built hand-off: t0 publishes then releases a flag, t1
    // acquires the flag and reads — capture must preserve the recorded
    // flag value so the replayed SyncRead gates on it.
    ExecutionTrace t;
    auto add = [&](ProcId p, int po, AccessKind k, Addr a, Word vr,
                   Word vw, Tick c) {
        Access acc;
        acc.proc = p;
        acc.poIndex = po;
        acc.kind = k;
        acc.addr = a;
        acc.valueRead = vr;
        acc.valueWritten = vw;
        acc.commitTick = c;
        acc.gpTick = c;
        t.add(acc);
    };
    add(0, 0, AccessKind::DataWrite, 5, 0, 7, 0);
    add(0, 1, AccessKind::SyncWrite, 9, 0, 1, 1);
    add(1, 0, AccessKind::SyncRead, 9, 1, 0, 2);
    add(1, 1, AccessKind::DataRead, 5, 7, 0, 3);
    t.setInitial(5, 0);

    ReplayTraceData data = captureReplayTrace(t);
    ASSERT_EQ(data.numThreads(), 2);
    ASSERT_EQ(data.threads[0].size(), 2u);
    ASSERT_EQ(data.threads[1].size(), 2u);
    EXPECT_EQ(data.threads[1][0],
              (ReplayRecord{ReplayOp::SyncRead, 9, 1}));

    TempTrace f("offline");
    ASSERT_TRUE(saveReplayTrace(data, f.path()));
    ReplayTraceReader r;
    ASSERT_TRUE(r.open(f.path()));
    ReplayEngine engine(r, {});
    ReplayResult res = engine.run();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.raceFree);
    EXPECT_EQ(res.finalMemory.at(5), 7u);
}

TEST(SystemReplayTest, SpinlockOnBusAndNet)
{
    TraceGenConfig cfg;
    cfg.threads = 2;
    cfg.rounds = 8;
    TempTrace f("sysspin");
    ASSERT_TRUE(writeWorkloadTrace("spinlock", f.path(), cfg));
    ReplayTraceReader r;
    ASSERT_TRUE(r.open(f.path()));

    for (const char *machine : {"bus", "net"}) {
        SystemReplayOptions opt;
        opt.machine = machine;
        opt.window = 64;
        opt.chunkTicks = 512;
        SystemReplayResult res = replayOnSystem(r, opt);
        ASSERT_TRUE(res.ok) << machine << ": " << res.error;
        EXPECT_TRUE(res.raceFree) << machine;
        EXPECT_FALSE(res.hbCyclic) << machine;
        EXPECT_GT(res.accesses, 0u) << machine;
        EXPECT_GT(res.eventsRetired, 0) << machine;
    }
}

TEST(SystemReplayTest, WindowedVerdictMatchesUnwindowed)
{
    // Same trace, same machine/seed: the windowed System replay must
    // reach the verdict of the whole-trace run (the simulation itself
    // is deterministic, so the verdicts compare exactly).
    for (bool racy : {false, true}) {
        TraceGenConfig cfg;
        cfg.threads = 2;
        cfg.rounds = 30;
        cfg.injectRace = racy;
        TempTrace f(racy ? "sysdiff_r" : "sysdiff");
        ASSERT_TRUE(writeWorkloadTrace("spinlock", f.path(), cfg));
        ReplayTraceReader r;
        ASSERT_TRUE(r.open(f.path()));

        SystemReplayOptions full;
        full.window = 0;
        full.mode = RaceDetectMode::AllRaces;
        SystemReplayResult a = replayOnSystem(r, full);
        ASSERT_TRUE(a.ok) << a.error;

        SystemReplayOptions windowed = full;
        windowed.window = 64;
        windowed.chunkTicks = 256;
        SystemReplayResult b = replayOnSystem(r, windowed);
        ASSERT_TRUE(b.ok) << b.error;

        EXPECT_EQ(a.raceFree, b.raceFree) << "racy=" << racy;
        EXPECT_EQ(a.races, b.races) << "racy=" << racy;
        EXPECT_EQ(a.accesses, b.accesses) << "racy=" << racy;
        EXPECT_EQ(a.finishTick, b.finishTick) << "racy=" << racy;
        EXPECT_EQ(a.raceFree, !racy) << "racy=" << racy;
        if (racy) {
            EXPECT_FALSE(b.races.empty());
        }
        EXPECT_EQ(a.eventsRetired, 0);
        EXPECT_GT(b.eventsRetired, 0);
        EXPECT_LT(b.windowHighWater, a.windowHighWater);
    }
}

TEST(SystemReplayTest, BarrierTraceCompletes)
{
    TraceGenConfig cfg;
    cfg.threads = 3;
    cfg.rounds = 4;
    TempTrace f("sysbar");
    ASSERT_TRUE(writeWorkloadTrace("barrier", f.path(), cfg));
    ReplayTraceReader r;
    ASSERT_TRUE(r.open(f.path()));
    SystemReplayOptions opt;
    opt.window = 0;
    opt.mode = RaceDetectMode::AllRaces;
    SystemReplayResult res = replayOnSystem(r, opt);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.raceFree);
}

TEST(SystemReplayTest, SystemStreamingExportsRetentionStats)
{
    // The System-level satellite counters appear exactly when retirement
    // happened (whole-trace runs keep their reports byte-identical).
    TraceGenConfig cfg;
    cfg.threads = 2;
    cfg.rounds = 8;
    TempTrace f("sysstats");
    ASSERT_TRUE(writeWorkloadTrace("spinlock", f.path(), cfg));
    ReplayTraceReader r;
    ASSERT_TRUE(r.open(f.path()));
    MultiProgram program = buildReplayProgram(r, "stats-replay");

    SystemConfig cfg2 = machineOrThrow("bus").config(PolicyKind::Def2Drf0, 1);
    System sys(program, cfg2);
    StreamingDrf0Checker chk(program.numProcs());
    ASSERT_TRUE(sys.runStreaming(256, [&](System &s) {
        chk.drainWindow(s.trace(), s.eventQueue().now());
        int excess = s.trace().resident() - 64;
        if (excess > 0)
            s.mutableTrace().popFront(
                std::min(chk.retireReady(s.trace()), excess));
    }));
    chk.finish(sys.trace());
    EXPECT_TRUE(chk.raceFree());

    std::ostringstream oss;
    sys.stats().dumpJson(oss);
    EXPECT_NE(oss.str().find("system.trace_events_retired"),
              std::string::npos);
    EXPECT_NE(oss.str().find("system.window_high_water"),
              std::string::npos);

    // Retirement never happened -> no counters in the report.
    System plain(program, machineOrThrow("bus").config(
                              PolicyKind::Def2Drf0, 1));
    ASSERT_TRUE(plain.run());
    std::ostringstream oss2;
    plain.stats().dumpJson(oss2);
    EXPECT_EQ(oss2.str().find("system.trace_events_retired"),
              std::string::npos);
}

#ifdef WO_REPLAY_TRACE_DIR
TEST(ReplayFormat, BundledTracesStayReplayable)
{
    // The committed traces under tests/replay/ pin the WOTRACE1 on-disk
    // layout: any loader or format change that silently breaks already-
    // recorded files fails here (and in the CI regression job that
    // replays the same files) rather than in the field.
    struct Bundled
    {
        const char *file;
        int threads;
    };
    const Bundled bundled[] = {
        {"/spinlock_small.wotrace", 2},
        {"/barrier_small.wotrace", 3},
    };
    for (const Bundled &b : bundled) {
        const std::string path =
            std::string(WO_REPLAY_TRACE_DIR) + b.file;
        ReplayTraceData data;
        ASSERT_TRUE(loadReplayTrace(path, data)) << path;
        EXPECT_EQ(data.numThreads(), b.threads) << path;
        EXPECT_GT(data.totalRecords(), 0u) << path;

        ReplayTraceReader reader;
        ASSERT_TRUE(reader.open(path)) << path;
        ReplayOptions opt;
        opt.window = 32;
        opt.mode = RaceDetectMode::AllRaces;
        ReplayEngine engine(reader, opt);
        ReplayResult res = engine.run();
        ASSERT_TRUE(res.ok) << path << ": " << res.error;
        EXPECT_TRUE(res.raceFree) << path;
        EXPECT_EQ(res.recordsReplayed, data.totalRecords()) << path;
    }
}
#endif // WO_REPLAY_TRACE_DIR

} // namespace
