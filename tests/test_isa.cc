/**
 * @file
 * Unit tests for the ISA: access-kind classification and disassembly.
 */

#include <gtest/gtest.h>

#include "cpu/isa.hh"

namespace wo {
namespace {

TEST(AccessKind, SyncClassification)
{
    EXPECT_FALSE(isSync(AccessKind::DataRead));
    EXPECT_FALSE(isSync(AccessKind::DataWrite));
    EXPECT_TRUE(isSync(AccessKind::SyncRead));
    EXPECT_TRUE(isSync(AccessKind::SyncWrite));
    EXPECT_TRUE(isSync(AccessKind::SyncRmw));
}

TEST(AccessKind, ReadWriteComponents)
{
    EXPECT_TRUE(readsMemory(AccessKind::DataRead));
    EXPECT_FALSE(writesMemory(AccessKind::DataRead));
    EXPECT_FALSE(readsMemory(AccessKind::DataWrite));
    EXPECT_TRUE(writesMemory(AccessKind::DataWrite));
    EXPECT_TRUE(readsMemory(AccessKind::SyncRead));
    EXPECT_FALSE(writesMemory(AccessKind::SyncRead));
    EXPECT_FALSE(readsMemory(AccessKind::SyncWrite));
    EXPECT_TRUE(writesMemory(AccessKind::SyncWrite));
    // TestAndSet has both components.
    EXPECT_TRUE(readsMemory(AccessKind::SyncRmw));
    EXPECT_TRUE(writesMemory(AccessKind::SyncRmw));
}

TEST(Instruction, MemOpClassification)
{
    Instruction i;
    i.op = Opcode::Load;
    EXPECT_TRUE(i.isMemOp());
    EXPECT_EQ(i.accessKind(), AccessKind::DataRead);

    i.op = Opcode::Store;
    EXPECT_EQ(i.accessKind(), AccessKind::DataWrite);

    i.op = Opcode::TestAndSet;
    EXPECT_EQ(i.accessKind(), AccessKind::SyncRmw);

    i.op = Opcode::SyncRead;
    EXPECT_EQ(i.accessKind(), AccessKind::SyncRead);

    i.op = Opcode::SyncWrite;
    EXPECT_EQ(i.accessKind(), AccessKind::SyncWrite);

    i.op = Opcode::Movi;
    EXPECT_FALSE(i.isMemOp());
    i.op = Opcode::Beq;
    EXPECT_FALSE(i.isMemOp());
    i.op = Opcode::Halt;
    EXPECT_FALSE(i.isMemOp());
}

TEST(Instruction, Disassembly)
{
    Instruction i;
    i.op = Opcode::Load;
    i.dst = 2;
    i.addr = 40;
    EXPECT_EQ(i.toString(), "LOAD r2, [40]");

    i = Instruction{};
    i.op = Opcode::Store;
    i.addr = 8;
    i.imm = 5;
    EXPECT_EQ(i.toString(), "STORE [8], #5");

    i = Instruction{};
    i.op = Opcode::TestAndSet;
    i.dst = 0;
    i.addr = 100;
    i.imm = 1;
    EXPECT_EQ(i.toString(), "TAS r0, [100], #1");

    i = Instruction{};
    i.op = Opcode::Bne;
    i.src = 1;
    i.imm = 0;
    i.target = 3;
    EXPECT_EQ(i.toString(), "BNE r1, #0, @3");
}

} // namespace
} // namespace wo
