/**
 * @file
 * Unit tests for the named machine registry: lookup and list parsing
 * diagnostics, and the MachineSpec -> SystemConfig field mapping every
 * tool, bench and example now routes through.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "system/machine_spec.hh"

namespace wo {
namespace {

TEST(MachineRegistry, ContainsDocumentedMachinesInListingOrder)
{
    const std::vector<MachineSpec> &reg = machineRegistry();
    std::vector<std::string> names;
    for (const MachineSpec &m : reg)
        names.push_back(m.name);
    EXPECT_EQ(names,
              (std::vector<std::string>{
                  "bus", "bus-cap", "bus-u", "bus-slow", "net",
                  "net-cold", "net-u",
                  "net-banked", "bus-mesi", "bus-moesi", "bus-mesif",
                  "net-mesi", "net-moesi", "net-mesif", "bus-l2",
                  "net-l2", "net-l2-moesi"}));
    for (const MachineSpec &m : reg)
        EXPECT_FALSE(m.summary.empty()) << m.name;
}

TEST(MachineRegistry, FindMachineReturnsNullOnUnknown)
{
    EXPECT_NE(findMachine("bus"), nullptr);
    EXPECT_EQ(findMachine("bus")->name, "bus");
    EXPECT_EQ(findMachine("warp-drive"), nullptr);
    EXPECT_EQ(findMachine(""), nullptr);
}

TEST(MachineRegistry, MachineOrThrowNamesTheKnownMachines)
{
    EXPECT_EQ(&machineOrThrow("net"), findMachine("net"));
    try {
        machineOrThrow("warp-drive");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("warp-drive"), std::string::npos) << what;
        // The diagnostic lists every registered machine.
        for (const MachineSpec &m : machineRegistry())
            EXPECT_NE(what.find(m.name), std::string::npos) << what;
    }
}

TEST(MachineRegistry, ParseMachineListResolvesNames)
{
    auto machines = parseMachineList("bus,net-u,net");
    ASSERT_EQ(machines.size(), 3u);
    EXPECT_EQ(machines[0]->name, "bus");
    EXPECT_EQ(machines[1]->name, "net-u");
    EXPECT_EQ(machines[2]->name, "net");
}

TEST(MachineRegistry, ParseMachineListRejectsEmptyAndUnknown)
{
    EXPECT_THROW(parseMachineList(""), std::runtime_error);
    EXPECT_THROW(parseMachineList(","), std::runtime_error);
    EXPECT_THROW(parseMachineList("bus,nope"), std::runtime_error);
}

TEST(MachineRegistry, ParseMachineListExpandsGlobPatterns)
{
    // `bus-*` expands in registry order; the literal `bus` is excluded
    // (the pattern requires the dash).
    auto machines = parseMachineList("bus-*");
    ASSERT_GE(machines.size(), 5u);
    for (const MachineSpec *m : machines) {
        EXPECT_EQ(m->name.rfind("bus-", 0), 0u) << m->name;
    }

    // Duplicates collapse: the literal, then a pattern covering both it
    // ("net-mes?" with zero extra chars is not a match) and net-mesif.
    auto deduped = parseMachineList("net-mesi,net-mesi*");
    ASSERT_EQ(deduped.size(), 2u);
    EXPECT_EQ(deduped[0]->name, "net-mesi");
    EXPECT_EQ(deduped[1]->name, "net-mesif");

    // `*` alone is the whole registry.
    EXPECT_EQ(parseMachineList("*").size(), machineRegistry().size());

    // A pattern matching nothing is an error, like an unknown name.
    EXPECT_THROW(parseMachineList("warp-*"), std::runtime_error);
}

TEST(MachineSpec, ProtocolVariantsMapProtocolAndLevels)
{
    EXPECT_EQ(machineOrThrow("bus").config().protocol,
              ProtocolKind::Msi);
    EXPECT_EQ(machineOrThrow("bus").config().cacheLevels, 1);
    EXPECT_EQ(machineOrThrow("bus-mesi").config().protocol,
              ProtocolKind::Mesi);
    EXPECT_EQ(machineOrThrow("net-moesi").config().protocol,
              ProtocolKind::Moesi);
    EXPECT_EQ(machineOrThrow("net-mesif").config().protocol,
              ProtocolKind::Mesif);
    EXPECT_EQ(machineOrThrow("bus-l2").config().cacheLevels, 2);
    EXPECT_EQ(machineOrThrow("bus-l2").config().protocol,
              ProtocolKind::Msi);
    EXPECT_EQ(machineOrThrow("net-l2").config().protocol,
              ProtocolKind::Mesi);
    EXPECT_EQ(machineOrThrow("net-l2-moesi").config().cacheLevels, 2);

    // Protocol variants change nothing else about the base machine.
    SystemConfig base = machineOrThrow("bus").config();
    SystemConfig mesi = machineOrThrow("bus-mesi").config();
    EXPECT_EQ(mesi.interconnect, base.interconnect);
    EXPECT_EQ(mesi.bus.latency, base.bus.latency);
    EXPECT_EQ(mesi.warmCaches, base.warmCaches);
}

TEST(MachineRegistry, PrintMachineListShowsEveryEntry)
{
    std::ostringstream oss;
    printMachineList(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("machine"), std::string::npos);
    EXPECT_NE(out.find("network"), std::string::npos);
    EXPECT_NE(out.find("cached"), std::string::npos);
    EXPECT_NE(out.find("jitter"), std::string::npos);
    for (const MachineSpec &m : machineRegistry()) {
        EXPECT_NE(out.find(m.name), std::string::npos) << m.name;
        EXPECT_NE(out.find(m.summary), std::string::npos) << m.name;
    }
}

TEST(MachineSpec, BusConfigMapsFields)
{
    SystemConfig cfg = machineOrThrow("bus").config(PolicyKind::Sc);
    EXPECT_EQ(cfg.interconnect, InterconnectKind::Bus);
    EXPECT_TRUE(cfg.cached);
    EXPECT_EQ(cfg.policy, PolicyKind::Sc);
    EXPECT_EQ(cfg.bus.latency, 4u);
    EXPECT_EQ(cfg.bus.occupancy, 1u);
    // Write buffers only materialize under Relaxed.
    EXPECT_FALSE(cfg.writeBuffer);
    EXPECT_TRUE(
        machineOrThrow("bus").config(PolicyKind::Relaxed).writeBuffer);
}

TEST(MachineSpec, BusSlowIsContended)
{
    SystemConfig cfg = machineOrThrow("bus-slow").config();
    EXPECT_EQ(cfg.interconnect, InterconnectKind::Bus);
    EXPECT_EQ(cfg.bus.latency, 12u);
    EXPECT_EQ(cfg.bus.occupancy, 4u);
}

TEST(MachineSpec, NetworkMachinesMapFields)
{
    SystemConfig net = machineOrThrow("net").config();
    EXPECT_EQ(net.interconnect, InterconnectKind::Network);
    EXPECT_TRUE(net.cached);
    EXPECT_TRUE(net.warmCaches);

    SystemConfig cold = machineOrThrow("net-cold").config();
    EXPECT_FALSE(cold.warmCaches);
    EXPECT_EQ(cold.net.base, 6u);
    EXPECT_EQ(cold.net.jitter, 8u);

    SystemConfig uncached = machineOrThrow("net-u").config();
    EXPECT_FALSE(uncached.cached);
    EXPECT_EQ(uncached.net.jitter, 30u);

    SystemConfig banked = machineOrThrow("net-banked").config();
    EXPECT_EQ(banked.numDirs, 2);
    EXPECT_EQ(banked.numMemModules, 4);
}

TEST(MachineSpec, NetSeedThreadsThroughToTheJitterStream)
{
    SystemConfig a = machineOrThrow("net-cold").config(
        PolicyKind::Def2Drf0, 123);
    EXPECT_EQ(a.net.seed, 123u);
    // Default matches a default-constructed GeneralNetwork::Config, so
    // registry-built configs are drop-in for historical literals.
    SystemConfig b = machineOrThrow("net-cold").config();
    EXPECT_EQ(b.net.seed, GeneralNetwork::Config{}.seed);
}

TEST(MachineSpec, WriteBuffersNeverEnabledWhereUnsupported)
{
    // No registered machine may emit a config combination System()
    // rejects: write buffers are a Relaxed-only feature.
    for (const MachineSpec &m : machineRegistry()) {
        for (PolicyKind pk :
             {PolicyKind::Sc, PolicyKind::Def1, PolicyKind::Def2Drf0,
              PolicyKind::Def2Drf1}) {
            EXPECT_FALSE(m.config(pk).writeBuffer) << m.name;
        }
    }
}

} // namespace
} // namespace wo
