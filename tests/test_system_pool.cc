/**
 * @file
 * The System lifecycle contract behind the campaign pool: reset() +
 * loadProgram() must make a reused instance observably indistinguishable
 * from a freshly constructed one — same verdicts, same final state, same
 * stats, same reports — for every machine, policy, and workload shape.
 *
 * Structured as three layers:
 *  - lifecycle unit tests (replay identity, seed changes, program swaps,
 *    the guards that reject incompatible reuse);
 *  - pool behaviour (hit/miss accounting, incompatible configs rebuild);
 *  - corpus differentials (the full litmus fan with pooling on vs off at
 *    1 and 4 worker threads, and a fuzz sweep of random DRF0/racy
 *    programs replayed through one pooled instance).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "litmus/runner.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/campaign.hh"
#include "workload/random_gen.hh"

namespace wo {
namespace {

/** Everything a job's caller can observe, as one comparable string. */
std::string
snapshot(System &sys, bool finished)
{
    std::ostringstream oss;
    oss << "finished=" << finished << "\n";
    if (finished) {
        oss << "tick=" << sys.finishTick() << "\n"
            << "result=" << sys.result().toString() << "\n"
            << "trace=" << sys.trace().toString() << "\n";
    }
    sys.stats().dump(oss);
    return oss.str();
}

/** Construct fresh, run, snapshot. */
std::string
freshRun(const MultiProgram &prog, const SystemConfig &cfg)
{
    System sys(prog, cfg);
    bool finished = sys.run();
    return snapshot(sys, finished);
}

RandomWorkloadConfig
workload(std::uint64_t seed, int procs = 2)
{
    RandomWorkloadConfig cfg;
    cfg.numProcs = procs;
    cfg.sectionsPerProc = 2;
    cfg.opsPerSection = 2;
    cfg.seed = seed;
    return cfg;
}

TEST(SystemLifecycle, ResetReplaysBitIdentically)
{
    // reset() (no args) + run() must replay the same job: same finish
    // tick, registers, memory, trace and stats.
    for (const char *machine : {"bus", "net", "net-u"}) {
        const MachineSpec &m = machineOrThrow(machine);
        PolicyKind pk = m.cached ? PolicyKind::Def2Drf0 : PolicyKind::Sc;
        MultiProgram prog = randomDrf0Program(workload(7));
        SystemConfig cfg = m.config(pk, 11);

        System sys(prog, cfg);
        std::string first = snapshot(sys, sys.run());
        sys.reset();
        std::string replay = snapshot(sys, sys.run());
        EXPECT_EQ(first, replay) << "machine " << machine;
    }
}

TEST(SystemLifecycle, ResetWithNewSeedMatchesFreshConstruction)
{
    // Reuse across jobs of one cell: only net.seed changes. The reused
    // instance must be indistinguishable from a new System at that seed.
    const MachineSpec &m = machineOrThrow("net");
    MultiProgram prog = randomDrf0Program(workload(3));
    SystemConfig cfg1 = m.config(PolicyKind::Def1, 101);
    SystemConfig cfg2 = m.config(PolicyKind::Def1, 202);

    System sys(prog, cfg1);
    sys.run();
    sys.reset(cfg2);
    sys.loadProgram(prog);
    std::string reused = snapshot(sys, sys.run());
    EXPECT_EQ(reused, freshRun(prog, cfg2));

    // And back again: no residue from the second seed either.
    sys.reset(cfg1);
    sys.loadProgram(prog);
    std::string again = snapshot(sys, sys.run());
    EXPECT_EQ(again, freshRun(prog, cfg1));
}

TEST(SystemLifecycle, LoadProgramSwapMatchesFreshConstruction)
{
    // Same topology, different program — the pool's common case when a
    // worker moves to the next litmus test in the same machine/policy
    // cell.
    const MachineSpec &m = machineOrThrow("bus");
    SystemConfig cfg = m.config(PolicyKind::Sc, 1);
    MultiProgram a = randomDrf0Program(workload(1));
    MultiProgram b = randomDrf0Program(workload(2));

    System sys(a, cfg);
    sys.run();
    sys.reset(cfg);
    sys.loadProgram(b);
    EXPECT_EQ(snapshot(sys, sys.run()), freshRun(b, cfg));
}

TEST(SystemLifecycle, WarmCachesAreReplayedByLoadProgram)
{
    // The "net" machine pre-loads every touched line Shared; reset must
    // rebuild that steady state for the next program, not leak the old
    // program's lines.
    const MachineSpec &m = machineOrThrow("net");
    ASSERT_TRUE(m.config().warmCaches);
    SystemConfig cfg = m.config(PolicyKind::Def2Drf0, 5);
    MultiProgram a = randomDrf0Program(workload(10));
    MultiProgram b = randomDrf0Program(workload(30));

    System sys(a, cfg);
    sys.run();
    sys.reset(cfg);
    sys.loadProgram(b);
    EXPECT_EQ(snapshot(sys, sys.run()), freshRun(b, cfg));
}

TEST(SystemLifecycle, RunWithoutLoadProgramThrows)
{
    const MachineSpec &m = machineOrThrow("bus");
    SystemConfig cfg = m.config(PolicyKind::Sc, 1);
    MultiProgram prog = randomDrf0Program(workload(4));
    System sys(prog, cfg);
    sys.reset(cfg);
    EXPECT_THROW(sys.run(), std::logic_error);
    sys.loadProgram(prog);
    EXPECT_TRUE(sys.run());
}

TEST(SystemLifecycle, IncompatibleResetThrows)
{
    MultiProgram prog = randomDrf0Program(workload(4));
    SystemConfig bus = machineOrThrow("bus").config(PolicyKind::Sc, 1);
    SystemConfig net = machineOrThrow("net").config(PolicyKind::Sc, 1);
    System sys(prog, bus);
    EXPECT_THROW(sys.reset(net), std::invalid_argument);
    EXPECT_FALSE(sys.compatibleWith(prog, net));

    // Policy changes rebuild too (policy objects are not resettable).
    SystemConfig bus2 = machineOrThrow("bus").config(PolicyKind::Def1, 1);
    EXPECT_THROW(sys.reset(bus2), std::invalid_argument);

    // But seed / tick-limit changes are the compatible kind.
    SystemConfig bus3 = bus;
    bus3.net.seed = 999;
    bus3.maxTicks = bus.maxTicks * 2;
    EXPECT_TRUE(sys.compatibleWith(prog, bus3));
    EXPECT_NO_THROW(sys.reset(bus3));
    sys.loadProgram(prog);
    EXPECT_TRUE(sys.run());
}

TEST(SystemLifecycle, ProcessorCountMismatchThrows)
{
    MultiProgram two = randomDrf0Program(workload(4, 2));
    MultiProgram four = randomDrf0Program(workload(4, 4));
    SystemConfig cfg = machineOrThrow("bus").config(PolicyKind::Sc, 1);
    System sys(two, cfg);
    sys.reset(cfg);
    EXPECT_THROW(sys.loadProgram(four), std::invalid_argument);
    EXPECT_FALSE(sys.compatibleWith(four, cfg));
    // The failed load leaves the system unloaded, not half-loaded.
    EXPECT_THROW(sys.run(), std::logic_error);
    sys.loadProgram(two);
    EXPECT_TRUE(sys.run());
}

TEST(SystemPool, ReusesCompatibleAndRebuildsIncompatible)
{
    SystemPool pool;
    MultiProgram prog = randomDrf0Program(workload(4));
    SystemConfig sc = machineOrThrow("bus").config(PolicyKind::Sc, 1);
    SystemConfig def1 = machineOrThrow("bus").config(PolicyKind::Def1, 1);

    System &a = pool.acquire("bus/SC", prog, sc);
    EXPECT_TRUE(a.run());
    EXPECT_EQ(pool.builds(), 1u);
    EXPECT_EQ(pool.reuses(), 0u);

    // Same key, compatible config: the same instance comes back reset.
    sc.net.seed = 42;
    System &b = pool.acquire("bus/SC", prog, sc);
    EXPECT_EQ(&a, &b);
    EXPECT_TRUE(b.run());
    EXPECT_EQ(pool.reuses(), 1u);

    // Different cell key: a second instance.
    System &c = pool.acquire("bus/WO-Def1", prog, def1);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(pool.builds(), 2u);

    // Same key but incompatible config (policy changed under the key —
    // a caller bug, but the pool must still produce a correct System).
    System &d = pool.acquire("bus/SC", prog, def1);
    EXPECT_TRUE(d.run());
    EXPECT_EQ(pool.builds(), 3u);
    EXPECT_EQ(pool.reuses(), 1u);

    pool.clear();
    EXPECT_EQ(pool.builds(), 0u);
    EXPECT_EQ(pool.reuses(), 0u);
}

TEST(SystemPool, PooledRunsMatchFreshRunsAcrossManyRandomPrograms)
{
    // Fuzz the reuse path: >=100 random programs (DRF0-disciplined and
    // racy alternating) replayed through pooled instances, each checked
    // against a fresh construction.
    SystemPool pool;
    int checked = 0;
    for (const char *machine : {"bus", "net", "net-u"}) {
        const MachineSpec &m = machineOrThrow(machine);
        std::vector<PolicyKind> policies =
            m.cached ? std::vector<PolicyKind>{PolicyKind::Sc,
                                               PolicyKind::Def2Drf0}
                     : std::vector<PolicyKind>{PolicyKind::Sc,
                                               PolicyKind::Def1};
        for (PolicyKind pk : policies) {
            for (int i = 0; i < 18; ++i) {
                RandomWorkloadConfig w = workload(1000 + i, 2);
                MultiProgram prog = (i % 2 == 0)
                                        ? randomDrf0Program(w)
                                        : randomRacyProgram(w, 1);
                SystemConfig cfg =
                    m.config(pk, campaignJobSeed(99, i));
                System &sys = pool.acquire(
                    m.name + "/" + toString(pk), prog, cfg);
                std::string pooled = snapshot(sys, sys.run());
                ASSERT_EQ(pooled, freshRun(prog, cfg))
                    << machine << "/" << toString(pk) << " program " << i;
                ++checked;
            }
        }
    }
    EXPECT_GE(checked, 100);
    EXPECT_EQ(pool.builds(), 6u); // one per (machine, policy) cell
    EXPECT_EQ(pool.reuses(), static_cast<std::uint64_t>(checked - 6));
}

#ifdef WO_LITMUS_DIR

/** The corpus report (text + JSON + merged stats) as one string. */
std::string
corpusBytes(const std::vector<litmus_dsl::CompiledLitmus> &tests,
            const litmus_dsl::RunnerOptions &options)
{
    litmus_dsl::CorpusReport report = litmus_dsl::runCorpus(tests, options);
    std::ostringstream oss;
    litmus_dsl::printReport(oss, report);
    litmus_dsl::writeJsonReport(oss, report);
    report.stats.dump(oss);
    return oss.str();
}

TEST(SystemPool, CorpusReportsIdenticalWithAndWithoutPooling)
{
    // The tentpole differential: the shipped litmus corpus, pooling on
    // vs off, single-threaded and 4 workers — all four report strings
    // (verdicts, histograms, JSON, merged stats) must be byte-identical.
    std::vector<litmus_dsl::CompiledLitmus> tests;
    for (const std::string &f :
         litmus_dsl::findLitmusFiles({WO_LITMUS_DIR}))
        tests.push_back(litmus_dsl::compileLitmusFile(f));
    ASSERT_GE(tests.size(), 15u);

    litmus_dsl::RunnerOptions options;
    options.seeds = 3; // keep the 4-way product test-suite fast
    std::string golden; // pool off, threads 1
    for (int threads : {1, 4}) {
        for (bool pooled : {false, true}) {
            options.threads = threads;
            options.systemPool = pooled;
            std::string bytes = corpusBytes(tests, options);
            if (golden.empty()) {
                golden = bytes;
                continue;
            }
            EXPECT_EQ(bytes, golden)
                << "threads=" << threads << " pooled=" << pooled;
        }
    }
}

#endif // WO_LITMUS_DIR

} // namespace
} // namespace wo
