/**
 * @file
 * Peterson's algorithm as a test of the paper's thesis: software written
 * for sequentially consistent memory (the unlabeled algorithm) breaks on
 * weaker machines, while the same algorithm with hardware-recognizable
 * synchronization operations is DRF0 and works on every conforming
 * implementation.
 */

#include <gtest/gtest.h>

#include "core/drf0_checker.hh"
#include "core/idealized.hh"
#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

namespace wo {
namespace {

TEST(Peterson, UnlabeledVersionIsRacy)
{
    Drf0ProgramReport rep =
        checkProgramSampled(petersonCounter(false, 1), 100, 3);
    EXPECT_FALSE(rep.obeysDrf0);
}

TEST(Peterson, LabeledVersionIsDrf0)
{
    Drf0ProgramReport rep =
        checkProgramSampled(petersonCounter(true, 1), 300, 3);
    EXPECT_TRUE(rep.obeysDrf0)
        << rep.witnessReport.toString(rep.witness);
}

TEST(Peterson, IdealizedMachineNeverLosesIncrements)
{
    // On sequentially consistent memory even the unlabeled algorithm is
    // correct: enumerate all interleavings, every halted outcome shows
    // the exact count. (Bounded spin depth keeps this finite.)
    OutcomeSet set = enumerateOutcomes(petersonCounter(false, 1));
    ASSERT_FALSE(set.outcomes.empty());
    for (const auto &r : set.outcomes) {
        if (r.allHalted) {
            EXPECT_EQ(r.finalMemory.at(litmus::kPetersonCounter),
                      petersonExpectedCount(1))
                << r.toString();
        }
    }
}

TEST(Peterson, ScHardwareKeepsUnlabeledVersionExact)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        SystemConfig cfg;
        cfg.policy = PolicyKind::Sc;
        cfg.net.seed = seed;
        System sys(petersonCounter(false, 2), cfg);
        ASSERT_TRUE(sys.run()) << "seed " << seed;
        EXPECT_EQ(sys.result().finalMemory.at(litmus::kPetersonCounter),
                  petersonExpectedCount(2))
            << "seed " << seed;
    }
}

TEST(Peterson, WriteBufferMachineLosesIncrements)
{
    // The paper's motivating failure: reads passing buffered writes let
    // both processors believe the other is outside, so both enter and
    // one increment is lost.
    int losses = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SystemConfig cfg;
        cfg.policy = PolicyKind::Relaxed;
        cfg.writeBuffer = true;
        cfg.interconnect = InterconnectKind::Bus;
        cfg.cached = true;
        cfg.net.seed = seed;
        System sys(petersonCounter(false, 2), cfg);
        ASSERT_TRUE(sys.run());
        Word count =
            sys.result().finalMemory.at(litmus::kPetersonCounter);
        EXPECT_LE(count, petersonExpectedCount(2));
        if (count < petersonExpectedCount(2)) {
            ++losses;
            // And the SC verifier agrees something non-SC happened.
            EXPECT_EQ(verifySc(sys.trace()).verdict, ScVerdict::NotSc);
        }
    }
    EXPECT_GT(losses, 0);
}

TEST(Peterson, LabeledVersionExactOnEveryConformingImplementation)
{
    for (PolicyKind pk : {PolicyKind::Sc, PolicyKind::Def1,
                          PolicyKind::Def2Drf0, PolicyKind::Def2Drf1}) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            SystemConfig cfg;
            cfg.policy = pk;
            cfg.net.seed = seed;
            System sys(petersonCounter(true, 2), cfg);
            ASSERT_TRUE(sys.run())
                << toString(pk) << " seed " << seed;
            EXPECT_EQ(
                sys.result().finalMemory.at(litmus::kPetersonCounter),
                petersonExpectedCount(2))
                << toString(pk) << " seed " << seed;
            EXPECT_TRUE(verifySc(sys.trace()).sc()) << toString(pk);
        }
    }
}

} // namespace
} // namespace wo
