/**
 * @file
 * Unit tests for ExecutionTrace, Access, RunResult and the contract
 * report plumbing.
 */

#include <gtest/gtest.h>

#include "core/contract.hh"
#include "core/trace.hh"
#include "cpu/program_builder.hh"

namespace wo {
namespace {

Access
mk(ProcId proc, int po, AccessKind kind, Addr addr, Tick commit)
{
    Access a;
    a.proc = proc;
    a.poIndex = po;
    a.kind = kind;
    a.addr = addr;
    a.commitTick = commit;
    a.gpTick = commit;
    return a;
}

TEST(AccessUnit, ConflictRules)
{
    Access r1 = mk(0, 0, AccessKind::DataRead, 5, 0);
    Access r2 = mk(1, 0, AccessKind::DataRead, 5, 1);
    Access w = mk(1, 0, AccessKind::DataWrite, 5, 1);
    Access w_other = mk(1, 0, AccessKind::DataWrite, 6, 1);
    Access rmw = mk(2, 0, AccessKind::SyncRmw, 5, 2);
    EXPECT_FALSE(conflict(r1, r2)); // both reads
    EXPECT_TRUE(conflict(r1, w));
    EXPECT_TRUE(conflict(w, w));
    EXPECT_FALSE(conflict(w, w_other)); // different locations
    EXPECT_TRUE(conflict(r1, rmw));     // rmw has a write component
    EXPECT_TRUE(conflict(rmw, rmw));
}

TEST(AccessUnit, ComponentPredicates)
{
    EXPECT_TRUE(mk(0, 0, AccessKind::SyncRmw, 0, 0).reads());
    EXPECT_TRUE(mk(0, 0, AccessKind::SyncRmw, 0, 0).writes());
    EXPECT_TRUE(mk(0, 0, AccessKind::SyncRmw, 0, 0).sync());
    EXPECT_FALSE(mk(0, 0, AccessKind::DataWrite, 0, 0).reads());
    EXPECT_FALSE(mk(0, 0, AccessKind::DataRead, 0, 0).sync());
}

TEST(AccessUnit, ToStringMentionsEverything)
{
    Access a = mk(2, 1, AccessKind::SyncRmw, 7, 33);
    a.valueRead = 4;
    a.valueWritten = 5;
    std::string s = a.toString();
    EXPECT_NE(s.find("P2"), std::string::npos);
    EXPECT_NE(s.find("[7]"), std::string::npos);
    EXPECT_NE(s.find("->4"), std::string::npos);
    EXPECT_NE(s.find("<-5"), std::string::npos);
}

TEST(TraceUnit, IdsAreSequential)
{
    ExecutionTrace t;
    EXPECT_EQ(t.add(mk(0, 0, AccessKind::DataRead, 0, 0)), 0);
    EXPECT_EQ(t.add(mk(0, 1, AccessKind::DataRead, 0, 1)), 1);
    EXPECT_EQ(t.size(), 2);
    t.popLast();
    EXPECT_EQ(t.size(), 1);
    EXPECT_EQ(t.add(mk(0, 1, AccessKind::DataRead, 0, 1)), 1);
}

TEST(TraceUnit, AccessesOfSortsByProgramOrder)
{
    ExecutionTrace t;
    t.add(mk(0, 2, AccessKind::DataRead, 0, 9));
    t.add(mk(0, 0, AccessKind::DataRead, 0, 3));
    t.add(mk(1, 0, AccessKind::DataRead, 0, 1));
    t.add(mk(0, 1, AccessKind::DataRead, 0, 6));
    std::vector<int> ids = t.accessesOf(0);
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_EQ(t.at(ids[0]).poIndex, 0);
    EXPECT_EQ(t.at(ids[1]).poIndex, 1);
    EXPECT_EQ(t.at(ids[2]).poIndex, 2);
}

TEST(TraceUnit, SyncsAtSortsByCommitWithStableTies)
{
    ExecutionTrace t;
    int late = t.add(mk(0, 0, AccessKind::SyncWrite, 4, 50));
    int early = t.add(mk(1, 0, AccessKind::SyncWrite, 4, 10));
    int tie_a = t.add(mk(2, 0, AccessKind::SyncWrite, 4, 20));
    int tie_b = t.add(mk(3, 0, AccessKind::SyncWrite, 4, 20));
    t.add(mk(0, 1, AccessKind::DataWrite, 4, 5)); // not a sync
    std::vector<int> ids = t.syncsAt(4);
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_EQ(ids[0], early);
    EXPECT_EQ(ids[1], tie_a);
    EXPECT_EQ(ids[2], tie_b);
    EXPECT_EQ(ids[3], late);
}

TEST(TraceUnit, InitialsDefaultZero)
{
    ExecutionTrace t;
    EXPECT_EQ(t.initialValue(9), 0u);
    t.setInitial(9, 4);
    EXPECT_EQ(t.initialValue(9), 4u);
}

TEST(TraceUnit, NumProcsIgnoresInitWrites)
{
    ExecutionTrace t;
    t.add(mk(kNoProc, 0, AccessKind::DataWrite, 0, 0));
    t.add(mk(2, 0, AccessKind::DataWrite, 0, 1));
    EXPECT_EQ(t.numProcs(), 3);
}

TEST(RunResultUnit, EqualityAndOrdering)
{
    RunResult a, b;
    a.finalMemory[0] = 1;
    b.finalMemory[0] = 1;
    a.registers = {{1, 2}};
    b.registers = {{1, 2}};
    a.allHalted = b.allHalted = true;
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a < b);
    EXPECT_FALSE(b < a);
    b.registers[0][1] = 3;
    EXPECT_FALSE(a == b);
    EXPECT_TRUE(a < b || b < a);
}

TEST(RunResultUnit, ToStringIsReadable)
{
    RunResult r;
    r.finalMemory[3] = 7;
    r.registers = {{1}, {2}};
    r.allHalted = false;
    std::string s = r.toString();
    EXPECT_NE(s.find("[3]=7"), std::string::npos);
    EXPECT_NE(s.find("not halted"), std::string::npos);
}

TEST(ContractUnit, ReportToStringStates)
{
    ContractReport rep;
    rep.appearsSc = true;
    rep.scReport.verdict = ScVerdict::Sc;
    EXPECT_NE(rep.toString().find("appears SC"), std::string::npos);
    rep.appearsSc = false;
    rep.scReport.verdict = ScVerdict::NotSc;
    EXPECT_NE(rep.toString().find("VIOLATES"), std::string::npos);
    rep.outcomeChecked = true;
    rep.outcomeInScSet = false;
    EXPECT_NE(rep.toString().find("NOT in"), std::string::npos);
}

TEST(ContractUnit, CheckExecutionWithoutOutcomeSet)
{
    MultiProgram mp("m");
    ProgramBuilder b;
    b.store(0, 1).load(0, 0).halt();
    mp.addProgram(b.build());
    ExecutionTrace t;
    Access w = mk(0, 0, AccessKind::DataWrite, 0, 0);
    w.valueWritten = 1;
    t.add(w);
    Access r = mk(0, 1, AccessKind::DataRead, 0, 1);
    r.valueRead = 1;
    t.add(r);
    ContractReport rep = checkExecution(mp, t);
    EXPECT_TRUE(rep.appearsSc);
    EXPECT_FALSE(rep.outcomeChecked);
}

} // namespace
} // namespace wo
