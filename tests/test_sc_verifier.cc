/**
 * @file
 * Unit tests for the sequential-consistency verifier.
 */

#include <gtest/gtest.h>

#include "core/sc_verifier.hh"
#include "parallel/thread_pool.hh"

namespace wo {
namespace {

Access
rd(ProcId proc, int po, Addr addr, Word value)
{
    Access a;
    a.proc = proc;
    a.poIndex = po;
    a.kind = AccessKind::DataRead;
    a.addr = addr;
    a.valueRead = value;
    return a;
}

Access
wr(ProcId proc, int po, Addr addr, Word value)
{
    Access a;
    a.proc = proc;
    a.poIndex = po;
    a.kind = AccessKind::DataWrite;
    a.addr = addr;
    a.valueWritten = value;
    return a;
}

Access
rmw(ProcId proc, int po, Addr addr, Word seen, Word written)
{
    Access a;
    a.proc = proc;
    a.poIndex = po;
    a.kind = AccessKind::SyncRmw;
    a.addr = addr;
    a.valueRead = seen;
    a.valueWritten = written;
    return a;
}

TEST(ScVerifier, EmptyTraceIsSc)
{
    ExecutionTrace t;
    EXPECT_TRUE(verifySc(t).sc());
}

TEST(ScVerifier, SingleProcessorIsSc)
{
    ExecutionTrace t;
    t.add(wr(0, 0, 1, 5));
    t.add(rd(0, 1, 1, 5));
    ScReport r = verifySc(t);
    EXPECT_EQ(r.verdict, ScVerdict::Sc);
    EXPECT_EQ(r.witnessOrder.size(), 2u);
}

TEST(ScVerifier, ReadOfNeverWrittenValueIsNotSc)
{
    ExecutionTrace t;
    t.add(rd(0, 0, 1, 42)); // nothing ever wrote 42
    EXPECT_EQ(verifySc(t).verdict, ScVerdict::NotSc);
}

TEST(ScVerifier, ReadOfInitialValueIsSc)
{
    ExecutionTrace t;
    t.setInitial(1, 9);
    t.add(rd(0, 0, 1, 9));
    EXPECT_TRUE(verifySc(t).sc());
}

TEST(ScVerifier, DekkerBothZeroIsNotSc)
{
    // P0: W(x)=1, R(y)=0.  P1: W(y)=1, R(x)=0.  The classic violation.
    ExecutionTrace t;
    t.add(wr(0, 0, 0, 1));
    t.add(rd(0, 1, 1, 0));
    t.add(wr(1, 0, 1, 1));
    t.add(rd(1, 1, 0, 0));
    ScReport r = verifySc(t);
    EXPECT_EQ(r.verdict, ScVerdict::NotSc);
}

TEST(ScVerifier, DekkerOneZeroIsSc)
{
    ExecutionTrace t;
    t.add(wr(0, 0, 0, 1));
    t.add(rd(0, 1, 1, 0));
    t.add(wr(1, 0, 1, 1));
    t.add(rd(1, 1, 0, 1)); // P1 sees P0's write
    EXPECT_TRUE(verifySc(t).sc());
}

TEST(ScVerifier, WitnessOrderIsLegal)
{
    ExecutionTrace t;
    t.add(wr(0, 0, 0, 1));
    t.add(rd(0, 1, 1, 1));
    t.add(wr(1, 0, 1, 1));
    t.add(rd(1, 1, 0, 1));
    ScReport r = verifySc(t);
    ASSERT_TRUE(r.sc());
    // Replay the witness: every read must see the current value.
    std::map<Addr, Word> mem;
    std::map<ProcId, int> last_po;
    for (int id : r.witnessOrder) {
        const Access &a = t.at(id);
        // Program order respected.
        if (last_po.count(a.proc)) {
            EXPECT_GT(a.poIndex, last_po[a.proc]);
        }
        last_po[a.proc] = a.poIndex;
        if (a.reads()) {
            Word cur = mem.count(a.addr) ? mem[a.addr]
                                         : t.initialValue(a.addr);
            EXPECT_EQ(cur, a.valueRead);
        }
        if (a.writes())
            mem[a.addr] = a.valueWritten;
    }
}

TEST(ScVerifier, MessagePassingReorderedIsNotSc)
{
    // P0: W(data)=1, W(flag)=1.  P1: R(flag)=1, R(data)=0.
    ExecutionTrace t;
    t.add(wr(0, 0, 0, 1));
    t.add(wr(0, 1, 1, 1));
    t.add(rd(1, 0, 1, 1));
    t.add(rd(1, 1, 0, 0));
    EXPECT_EQ(verifySc(t).verdict, ScVerdict::NotSc);
}

TEST(ScVerifier, MessagePassingInOrderIsSc)
{
    ExecutionTrace t;
    t.add(wr(0, 0, 0, 1));
    t.add(wr(0, 1, 1, 1));
    t.add(rd(1, 0, 1, 1));
    t.add(rd(1, 1, 0, 1));
    EXPECT_TRUE(verifySc(t).sc());
}

TEST(ScVerifier, AtomicRmwPairMutualExclusion)
{
    // Two TAS on the same lock: both cannot see 0.
    ExecutionTrace t;
    t.add(rmw(0, 0, 5, 0, 1));
    t.add(rmw(1, 0, 5, 0, 1));
    EXPECT_EQ(verifySc(t).verdict, ScVerdict::NotSc);

    ExecutionTrace t2;
    t2.add(rmw(0, 0, 5, 0, 1));
    t2.add(rmw(1, 0, 5, 1, 1));
    EXPECT_TRUE(verifySc(t2).sc());
}

TEST(ScVerifier, CoherenceViolationIsNotSc)
{
    // Both processors observe two writes to x in opposite orders.
    ExecutionTrace t;
    t.add(wr(0, 0, 0, 1));
    t.add(wr(1, 0, 0, 2));
    t.add(rd(2, 0, 0, 1));
    t.add(rd(2, 1, 0, 2));
    t.add(rd(3, 0, 0, 2));
    t.add(rd(3, 1, 0, 1));
    // P2 sees 1 then 2; P3 sees 2 then 1. With only these two writes, no
    // total order explains both unless writes interleave between reads —
    // possible here? W1 W2 with P2: r1 before W2; P3: r2 after W2, then r1
    // would need value 1 after W2 wrote 2: impossible without rewriting.
    EXPECT_EQ(verifySc(t).verdict, ScVerdict::NotSc);
}

TEST(ScVerifier, IndependentLocationsAlwaysSc)
{
    ExecutionTrace t;
    for (int p = 0; p < 4; ++p) {
        t.add(wr(p, 0, static_cast<Addr>(p), 1));
        t.add(rd(p, 1, static_cast<Addr>(p), 1));
    }
    EXPECT_TRUE(verifySc(t).sc());
}

TEST(ScVerifier, StateCapYieldsUnknown)
{
    // Heavy branching on one shared location (every write changes the
    // value, so nothing is drained eagerly), made unsatisfiable by a
    // read of a value nobody writes; a tiny state cap must yield
    // Unknown instead of a (wrong) NotSc.
    ExecutionTrace t;
    for (int p = 0; p < 6; ++p) {
        for (int i = 0; i < 4; ++i) {
            t.add(wr(p, 2 * i, 0, static_cast<Word>(p * 10 + i)));
            t.add(rd(p, 2 * i + 1, 0, static_cast<Word>(p * 10 + i)));
        }
    }
    t.add(rd(0, 100, 0, 777)); // never written
    ScVerifierLimits lim;
    lim.maxStates = 10;
    EXPECT_EQ(verifySc(t, lim).verdict, ScVerdict::Unknown);
}

TEST(ScVerifier, ReductionHandlesPrivateMismatch)
{
    // A private-location read of an impossible value must be NotSc (the
    // eager drain proves it without search).
    ExecutionTrace t;
    t.add(wr(0, 0, 5, 1));
    t.add(rd(0, 1, 5, 999));
    ScReport r = verifySc(t);
    EXPECT_EQ(r.verdict, ScVerdict::NotSc);
}

TEST(ScVerifier, SilentSpinsAreCheap)
{
    // A long failed-TAS spin (reads 1, writes 1: memory unchanged) plus
    // the release it eventually observes: the partial-order reduction
    // must keep the search tiny.
    ExecutionTrace t;
    t.setInitial(9, 1);
    for (int i = 0; i < 200; ++i) {
        Access a;
        a.proc = 0;
        a.poIndex = i;
        a.kind = AccessKind::SyncRmw;
        a.addr = 9;
        a.valueRead = 1;
        a.valueWritten = 1;
        t.add(a);
    }
    // P1 releases; P0's final TAS wins.
    Access rel;
    rel.proc = 1;
    rel.poIndex = 0;
    rel.kind = AccessKind::SyncWrite;
    rel.addr = 9;
    rel.valueWritten = 0;
    t.add(rel);
    Access win;
    win.proc = 0;
    win.poIndex = 200;
    win.kind = AccessKind::SyncRmw;
    win.addr = 9;
    win.valueRead = 0;
    win.valueWritten = 1;
    t.add(win);
    ScReport r = verifySc(t);
    EXPECT_EQ(r.verdict, ScVerdict::Sc);
    EXPECT_LT(r.statesExplored, 500u);
}

TEST(ScVerifier, TinyCapOnBranchyTraceIsUnknown)
{
    // Two processors ping-ponging distinct values on one location: the
    // very first frontier state already branches, so maxStates=1 must
    // give up with Unknown — it cannot claim NotSc without exhausting.
    ExecutionTrace t;
    for (int p = 0; p < 2; ++p)
        for (int i = 0; i < 3; ++i)
            t.add(wr(p, i, 0, static_cast<Word>(100 * p + i)));
    t.add(rd(0, 10, 1, 555)); // unsatisfiable, but only after searching
    t.add(wr(1, 10, 1, 555)); // (a write of 555 exists, keeping the
                              // pending-write pruning out of the way)
    ScVerifierLimits lim;
    lim.maxStates = 1;
    ScReport r = verifySc(t, lim);
    EXPECT_EQ(r.verdict, ScVerdict::Unknown);
    EXPECT_TRUE(r.witnessOrder.empty());
}

TEST(ScVerifier, PendingWritePruningFailsFast)
{
    // P0's head read wants x=5, which no write anywhere produces, while
    // P1/P2 generate a combinatorial interleaving space on y. Without
    // the remaining-write-count pruning the search enumerates the y
    // interleavings before concluding; with it, the root state is
    // recognized as dead immediately.
    ExecutionTrace t;
    t.add(rd(0, 0, 0, 5));
    t.add(wr(1, 0, 0, 1)); // x is shared, so the private-address drain
                           // cannot shortcut the failure
    for (int i = 1; i <= 6; ++i) {
        t.add(wr(1, i, 1, static_cast<Word>(10 + i)));
        t.add(wr(2, i, 1, static_cast<Word>(20 + i)));
    }
    ScReport r = verifySc(t);
    EXPECT_EQ(r.verdict, ScVerdict::NotSc);
    EXPECT_LT(r.statesExplored, 5u);
}

TEST(ScVerifier, RootSplitMatchesSerialVerdicts)
{
    ThreadPool pool(4);

    ExecutionTrace dekkerBad;
    dekkerBad.add(wr(0, 0, 0, 1));
    dekkerBad.add(rd(0, 1, 1, 0));
    dekkerBad.add(wr(1, 0, 1, 1));
    dekkerBad.add(rd(1, 1, 0, 0));

    ExecutionTrace dekkerOk;
    dekkerOk.add(wr(0, 0, 0, 1));
    dekkerOk.add(rd(0, 1, 1, 0));
    dekkerOk.add(wr(1, 0, 1, 1));
    dekkerOk.add(rd(1, 1, 0, 1));

    ExecutionTrace racy;
    for (int p = 0; p < 3; ++p)
        for (int i = 0; i < 3; ++i) {
            racy.add(wr(p, 2 * i, 7, static_cast<Word>(p * 10 + i)));
            racy.add(rd(p, 2 * i + 1, 7, static_cast<Word>(p * 10 + i)));
        }

    for (const ExecutionTrace *t : {&dekkerBad, &dekkerOk, &racy}) {
        ScReport serial = verifySc(*t);
        ScReport par = verifyScParallel(*t, pool);
        EXPECT_EQ(par.verdict, serial.verdict);
    }
}

TEST(ScVerifier, RootSplitWitnessIsLegal)
{
    ThreadPool pool(4);
    ExecutionTrace t;
    for (int p = 0; p < 3; ++p)
        for (int i = 0; i < 3; ++i) {
            t.add(wr(p, 2 * i, 7, static_cast<Word>(p * 10 + i)));
            t.add(rd(p, 2 * i + 1, 7, static_cast<Word>(p * 10 + i)));
        }
    ScReport r = verifyScParallel(t, pool);
    ASSERT_TRUE(r.sc());
    ASSERT_EQ(r.witnessOrder.size(), static_cast<std::size_t>(t.size()));
    std::map<Addr, Word> mem;
    std::map<ProcId, int> last_po;
    for (int id : r.witnessOrder) {
        const Access &a = t.at(id);
        if (last_po.count(a.proc))
            EXPECT_GT(a.poIndex, last_po[a.proc]);
        last_po[a.proc] = a.poIndex;
        if (a.reads()) {
            Word cur = mem.count(a.addr) ? mem[a.addr]
                                         : t.initialValue(a.addr);
            EXPECT_EQ(cur, a.valueRead);
        }
        if (a.writes())
            mem[a.addr] = a.valueWritten;
    }
}

TEST(ScVerifier, RootSplitStateCapIsGlobal)
{
    // The branchy unsatisfiable trace from StateCapYieldsUnknown: under
    // root-splitting the budget is one shared atomic, so the summed
    // exploration must respect maxStates as a *global* cap (not
    // maxStates per worker) and still report Unknown.
    ExecutionTrace t;
    for (int p = 0; p < 6; ++p) {
        for (int i = 0; i < 4; ++i) {
            t.add(wr(p, 2 * i, 0, static_cast<Word>(p * 10 + i)));
            t.add(rd(p, 2 * i + 1, 0, static_cast<Word>(p * 10 + i)));
        }
    }
    t.add(rd(0, 100, 0, 777)); // never written
    ScVerifierLimits lim;
    lim.maxStates = 50;
    ThreadPool pool(4);
    ScReport r = verifyScParallel(t, pool, lim);
    EXPECT_EQ(r.verdict, ScVerdict::Unknown);
    EXPECT_LE(r.statesExplored, lim.maxStates);
}

} // namespace
} // namespace wo
