/**
 * @file
 * Round-trip coverage: every C++ litmus builder's program is
 * reproducible from its .litmus source. The DSL interns addresses
 * itself (data first, then sync), so equivalence is structural —
 * instruction-for-instruction equality modulo a consistent address
 * bijection — plus identical checker verdicts (sampled DRF0 on the
 * same schedules; SC verification of real machine runs for the pairs
 * whose address maps coincide exactly).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/drf0_checker.hh"
#include "core/sc_verifier.hh"
#include "litmus/compiler.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

#ifndef WO_LITMUS_DIR
#error "WO_LITMUS_DIR must point at the tests/litmus corpus"
#endif

namespace wo {
namespace {

using litmus_dsl::CompiledLitmus;
using litmus_dsl::compileLitmusFile;

std::string
corpusFile(const std::string &name)
{
    return std::string(WO_LITMUS_DIR) + "/" + name;
}

/**
 * Structural equality modulo a bijective address renaming, which the
 * comparison discovers as it walks the instruction streams.
 */
void
expectIsomorphic(const MultiProgram &dsl, const MultiProgram &ref)
{
    ASSERT_EQ(dsl.numProcs(), ref.numProcs());
    std::map<Addr, Addr> fwd, rev;
    auto mapAddr = [&](Addr a, Addr b) {
        auto f = fwd.find(a);
        auto r = rev.find(b);
        if (f == fwd.end() && r == rev.end()) {
            fwd[a] = b;
            rev[b] = a;
            return true;
        }
        return f != fwd.end() && f->second == b && r != rev.end() &&
               r->second == a;
    };
    for (int p = 0; p < dsl.numProcs(); ++p) {
        const Program &dp = dsl.program(p);
        const Program &rp = ref.program(p);
        ASSERT_EQ(dp.size(), rp.size()) << "P" << p;
        for (std::size_t i = 0; i < dp.size(); ++i) {
            const Instruction &di = dp.at(i);
            const Instruction &ri = rp.at(i);
            EXPECT_EQ(di.op, ri.op) << "P" << p << " insn " << i;
            EXPECT_EQ(di.dst, ri.dst) << "P" << p << " insn " << i;
            EXPECT_EQ(di.src, ri.src) << "P" << p << " insn " << i;
            EXPECT_EQ(di.imm, ri.imm) << "P" << p << " insn " << i;
            EXPECT_EQ(di.target, ri.target) << "P" << p << " insn " << i;
            if (di.isMemOp()) {
                EXPECT_TRUE(mapAddr(di.addr, ri.addr))
                    << "P" << p << " insn " << i << ": address map "
                    << di.addr << " vs " << ri.addr
                    << " breaks the bijection";
            }
        }
    }
    // Declared initial values must agree through the same bijection.
    for (const auto &[addr, value] : dsl.initials()) {
        auto it = fwd.find(addr);
        if (it != fwd.end())
            EXPECT_EQ(value, ref.initialValue(it->second)) << addr;
    }
    for (const auto &[addr, value] : ref.initials()) {
        auto it = rev.find(addr);
        if (it != rev.end())
            EXPECT_EQ(value, dsl.initialValue(it->second)) << addr;
    }
}

/** DSL-vs-builder sampled DRF0 verdicts on the same schedule stream. */
void
expectSameDrf0Verdict(const MultiProgram &dsl, const MultiProgram &ref,
                      int schedules = 120)
{
    Drf0ProgramReport a = checkProgramSampled(dsl, schedules, 5);
    Drf0ProgramReport b = checkProgramSampled(ref, schedules, 5);
    EXPECT_EQ(a.obeysDrf0, b.obeysDrf0);
}

struct Pair
{
    const char *file;
    MultiProgram ref;
    bool addrExact; ///< DSL interning matches the builder's addresses
};

std::vector<Pair>
allPairs()
{
    std::vector<Pair> pairs;
    pairs.push_back({"sb.litmus", dekkerLitmus(), true});
    pairs.push_back({"mp_spin.litmus", racyMessagePassing(0), true});
    pairs.push_back({"mp_sync.litmus", syncMessagePassing(), false});
    pairs.push_back({"figure3.litmus", figure3Scenario(3), false});
    pairs.push_back({"tttas_counter.litmus", tttasLockCounter(2, 1),
                     true});
    pairs.push_back({"tas_counter.litmus", tasLockCounter(2, 1), true});
    pairs.push_back({"barrier.litmus", syncBarrier(2), false});
    pairs.push_back({"iriw.litmus", iriwLitmus(), true});
    pairs.push_back({"peterson.litmus", petersonCounter(false, 1),
                     false});
    pairs.push_back({"peterson_sync.litmus", petersonCounter(true, 1),
                     false});
    return pairs;
}

TEST(LitmusRoundTrip, EveryBuilderIsReproducibleFromItsFile)
{
    for (Pair &p : allPairs()) {
        SCOPED_TRACE(p.file);
        CompiledLitmus c = compileLitmusFile(corpusFile(p.file));
        expectIsomorphic(c.program, p.ref);
    }
}

TEST(LitmusRoundTrip, CheckerVerdictsMatchTheBuilders)
{
    for (Pair &p : allPairs()) {
        SCOPED_TRACE(p.file);
        CompiledLitmus c = compileLitmusFile(corpusFile(p.file));
        expectSameDrf0Verdict(c.program, p.ref);
    }
}

TEST(LitmusRoundTrip, AddressExactPairsShareScVerdictsOnRealRuns)
{
    for (Pair &p : allPairs()) {
        if (!p.addrExact)
            continue;
        SCOPED_TRACE(p.file);
        CompiledLitmus c = compileLitmusFile(corpusFile(p.file));
        for (PolicyKind policy :
             {PolicyKind::Sc, PolicyKind::Relaxed}) {
            for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                SystemConfig cfg;
                cfg.policy = policy;
                cfg.cached = false;
                cfg.interconnect = InterconnectKind::Network;
                cfg.numMemModules = 2;
                cfg.net.seed = seed;
                cfg.net.jitter = 20;
                System sysDsl(c.program, cfg);
                System sysRef(p.ref, cfg);
                ASSERT_TRUE(sysDsl.run());
                ASSERT_TRUE(sysRef.run());
                EXPECT_EQ(sysDsl.result(), sysRef.result())
                    << toString(policy) << " seed " << seed;
                ScReport va = verifySc(sysDsl.trace());
                ScReport vb = verifySc(sysRef.trace());
                EXPECT_EQ(va.verdict, vb.verdict)
                    << toString(policy) << " seed " << seed;
            }
        }
    }
}

} // namespace
} // namespace wo
