/**
 * @file
 * Property tests of the weak-ordering contract (Definition 2): every
 * execution a conforming implementation produces for DRF0 software must
 * appear sequentially consistent.
 *
 * Parameterized sweeps run random lock-structured (DRF0-by-construction)
 * workloads on each implementation and feed every recorded execution to
 * the SC verifier. This is the executable counterpart of Appendix B's
 * proof, plus Section 6's claim that Definition 1 hardware also satisfies
 * Definition 2 with respect to DRF0.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/contract.hh"
#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/litmus.hh"
#include "workload/random_gen.hh"

namespace wo {
namespace {

using Param = std::tuple<PolicyKind, InterconnectKind, std::uint64_t>;

class ContractSweep : public ::testing::TestWithParam<Param>
{
};

RandomWorkloadConfig
workloadCfg(std::uint64_t seed)
{
    RandomWorkloadConfig cfg;
    cfg.numProcs = 4;
    cfg.numLocks = 2;
    cfg.locsPerLock = 3;
    cfg.privateLocs = 2;
    cfg.sectionsPerProc = 3;
    cfg.opsPerSection = 3;
    cfg.privateOpsBetween = 2;
    cfg.seed = seed;
    return cfg;
}

TEST_P(ContractSweep, Drf0WorkloadAppearsSequentiallyConsistent)
{
    auto [policy, ic, seed] = GetParam();
    MultiProgram mp = randomDrf0Program(workloadCfg(seed));

    SystemConfig cfg;
    cfg.policy = policy;
    cfg.interconnect = ic;
    cfg.cached = true;
    cfg.net.seed = seed * 7 + 1;
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run()) << sys.description() << " seed " << seed;

    ScReport rep = verifySc(sys.trace());
    EXPECT_EQ(rep.verdict, ScVerdict::Sc)
        << sys.description() << " seed " << seed << ": " << rep.toString();
}

std::string
sweepName(const ::testing::TestParamInfo<Param> &info)
{
    PolicyKind policy = std::get<0>(info.param);
    InterconnectKind ic = std::get<1>(info.param);
    std::uint64_t seed = std::get<2>(info.param);
    std::string s = toString(policy) + "_" +
                    (ic == InterconnectKind::Bus ? "bus" : "net") + "_s" +
                    std::to_string(seed);
    for (auto &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, ContractSweep,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Sc, PolicyKind::Def1,
                          PolicyKind::Def2Drf0, PolicyKind::Def2Drf1),
        ::testing::Values(InterconnectKind::Bus,
                          InterconnectKind::Network),
        ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    sweepName);

class MutualExclusionSweep
    : public ::testing::TestWithParam<std::tuple<PolicyKind, std::uint64_t>>
{
};

TEST_P(MutualExclusionSweep, LockCounterIsExactOnWeakHardware)
{
    // End-to-end: mutual exclusion built from TAS/Unset works on every
    // conforming implementation — the counter never loses an increment.
    auto [policy, seed] = GetParam();
    const int procs = 4, rounds = 3;
    MultiProgram mp = tttasLockCounter(procs, rounds);

    SystemConfig cfg;
    cfg.policy = policy;
    cfg.net.seed = seed;
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run()) << toString(policy) << " seed " << seed;
    RunResult r = sys.result();
    EXPECT_EQ(r.finalMemory.at(litmus::kCounter),
              static_cast<Word>(procs * rounds))
        << toString(policy) << " seed " << seed;
    EXPECT_TRUE(verifySc(sys.trace()).sc()) << toString(policy);
}

using MutexParam = std::tuple<PolicyKind, std::uint64_t>;

std::string
mutexName(const ::testing::TestParamInfo<MutexParam> &info)
{
    std::string s = toString(std::get<0>(info.param)) + "_s" +
                    std::to_string(std::get<1>(info.param));
    for (auto &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MutualExclusionSweep,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Sc, PolicyKind::Def1,
                          PolicyKind::Def2Drf0, PolicyKind::Def2Drf1),
        ::testing::Values(1u, 2u, 3u)),
    mutexName);

TEST(ContractBarrier, BarrierPublishesOnAllWeakImplementations)
{
    for (PolicyKind pk : {PolicyKind::Sc, PolicyKind::Def1,
                          PolicyKind::Def2Drf0, PolicyKind::Def2Drf1}) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            const int procs = 4;
            MultiProgram mp = syncBarrier(procs);
            SystemConfig cfg;
            cfg.policy = pk;
            cfg.net.seed = seed;
            System sys(mp, cfg);
            ASSERT_TRUE(sys.run()) << toString(pk);
            RunResult r = sys.result();
            for (int p = 0; p < procs; ++p) {
                EXPECT_EQ(r.registers[p][3],
                          1000u + (p + 1) % procs)
                    << toString(pk) << " seed " << seed << " proc " << p;
            }
            EXPECT_TRUE(verifySc(sys.trace()).sc()) << toString(pk);
        }
    }
}

TEST(ContractViolation, RelaxedHardwareIsNotWeaklyOrderedForRacyCode)
{
    // The contract says nothing about non-DRF0 software: Dekker on the
    // relaxed machine (in-order issue, accesses overlapped across memory
    // modules — Figure 1 case 2) can and does produce non-SC results.
    int non_sc = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SystemConfig cfg;
        cfg.policy = PolicyKind::Relaxed;
        cfg.cached = false;
        cfg.interconnect = InterconnectKind::Network;
        cfg.numMemModules = 2; // X and Y live in different modules
        cfg.net.seed = seed;
        System sys(dekkerLitmus(), cfg);
        ASSERT_TRUE(sys.run());
        if (dekkerViolatesSc(sys.result())) {
            ++non_sc;
            EXPECT_EQ(verifySc(sys.trace()).verdict, ScVerdict::NotSc);
        }
    }
    EXPECT_GT(non_sc, 0);
}

TEST(ContractViolation, Def2HardwareMayBreakRacyCodeButKeepsDrf0Safe)
{
    // Under Def2/DRF0, Dekker (racy) may or may not violate SC — the
    // contract simply does not cover it. Sanity: no crash, run completes.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        SystemConfig cfg;
        cfg.policy = PolicyKind::Def2Drf0;
        cfg.net.seed = seed;
        cfg.warmCaches = true;
        System sys(dekkerLitmus(), cfg);
        EXPECT_TRUE(sys.run());
    }
}

TEST(ContractOutcome, RandomDrf0OutcomeMatchesSomeScExplanation)
{
    // Full contract check, including the idealized-outcome membership on
    // a small bounded workload.
    RandomWorkloadConfig wcfg = workloadCfg(3);
    wcfg.numProcs = 2;
    wcfg.sectionsPerProc = 1;
    wcfg.opsPerSection = 2;
    wcfg.spinAcquire = false;
    MultiProgram mp = randomDrf0Program(wcfg);

    SystemConfig cfg;
    cfg.policy = PolicyKind::Def2Drf0;
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run());
    RunResult hw = sys.result();
    ContractOptions opts;
    opts.checkOutcomeSet = true;
    ContractReport rep = checkExecution(mp, sys.trace(), &hw, opts);
    EXPECT_TRUE(rep.appearsSc) << rep.toString();
    EXPECT_TRUE(rep.outcomeInScSet) << hw.toString();
}

} // namespace
} // namespace wo
