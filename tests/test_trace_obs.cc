/**
 * @file
 * Tests for the structured tracing + metrics layer (src/obs/):
 *
 *  - disabled path: a run without a sink records nothing, registers no
 *    extra stats, and produces the identical result to an untraced run;
 *  - exporter: Chrome-trace output is valid JSON, byte-identical across
 *    duplicate runs at a fixed seed, and contains issue /
 *    globally-performed / stall events for every processor;
 *  - latency histogram: bucket boundaries and StatSet mirroring;
 *  - stall attribution: per-reason cycles sum to each processor's total
 *    stall cycles, both via accessors and the finalizeObs() stats;
 *  - trace filters and the Log::redirect sink routing.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>

#include "obs/latency_histogram.hh"
#include "obs/trace_export.hh"
#include "obs/trace_sink.hh"
#include "sim/logging.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

namespace wo {
namespace {

/**
 * Minimal JSON validity checker (objects, arrays, strings, numbers,
 * true/false/null). Returns true iff the whole input is one valid value.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_])))
                            return false;
                    }
                } else if (!strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
                return false; // raw control char
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *lit)
    {
        std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

SystemConfig
tracedConfig(PolicyKind policy, TraceSink *sink)
{
    SystemConfig cfg = machineOrThrow("net-cold").config(policy, 1);
    cfg.traceSink = sink;
    return cfg;
}

// ---------------------------------------------------------------------
// Disabled path.

TEST(TraceObs, DisabledPathRecordsNothingAndChangesNothing)
{
    MultiProgram prog = dekkerLitmus();

    // Reference run: obs never touched.
    System plain(prog, machineOrThrow("net-cold").config(PolicyKind::Sc, 1));
    ASSERT_TRUE(plain.run());

    // Second run, still without a sink: results and the whole stats map
    // must be identical — registering trace machinery may not perturb
    // reports.
    System again(prog,
                 machineOrThrow("net-cold").config(PolicyKind::Sc, 1));
    ASSERT_TRUE(again.run());
    EXPECT_EQ(plain.result().registers, again.result().registers);
    EXPECT_EQ(plain.stats().all(), again.stats().all());

    // No per-reason stall stats and no histogram stats appear when
    // tracing is off.
    for (const auto &[name, value] : plain.stats().all()) {
        EXPECT_EQ(name.find(".stall."), std::string::npos) << name;
        EXPECT_EQ(name.find(".lat_"), std::string::npos) << name;
        EXPECT_EQ(name.find("stall_cycles_total"), std::string::npos)
            << name;
    }

    // Histograms exist but hold no samples.
    EXPECT_EQ(plain.processor(0).issueGpHistogram().count(), 0u);
    EXPECT_EQ(plain.interconnect().msgLatencyHistogram().count(), 0u);
}

TEST(TraceObs, TracedRunResultMatchesUntracedRun)
{
    MultiProgram prog = dekkerLitmus();

    System plain(prog, machineOrThrow("net-cold").config(PolicyKind::Sc, 1));
    ASSERT_TRUE(plain.run());

    TraceBuffer buf;
    System traced(prog, tracedConfig(PolicyKind::Sc, &buf));
    ASSERT_TRUE(traced.run());

    // Tracing observes; it must not perturb the simulation.
    EXPECT_EQ(plain.result().registers, traced.result().registers);
    EXPECT_EQ(plain.result().finalMemory, traced.result().finalMemory);
    EXPECT_EQ(plain.finishTick(), traced.finishTick());
    EXPECT_GT(buf.events().size(), 0u);
}

// ---------------------------------------------------------------------
// Exporter.

TEST(TraceObs, ChromeTraceIsValidJson)
{
    TraceBuffer buf;
    System sys(dekkerLitmus(), tracedConfig(PolicyKind::Sc, &buf));
    ASSERT_TRUE(sys.run());

    std::ostringstream os;
    writeChromeTrace(os, buf.events());
    std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceObs, DuplicateRunsProduceByteIdenticalTraces)
{
    std::string first;
    for (int i = 0; i < 2; ++i) {
        TraceBuffer buf;
        System sys(dekkerLitmus(),
                   tracedConfig(PolicyKind::Def2Drf0, &buf));
        ASSERT_TRUE(sys.run());
        std::ostringstream os;
        writeChromeTrace(os, buf.events());
        if (i == 0)
            first = os.str();
        else
            EXPECT_EQ(first, os.str());
    }
}

TEST(TraceObs, EveryProcessorHasIssueGpAndStallEvents)
{
    TraceBuffer buf;
    MultiProgram prog = tasLockCounter(2, 4);
    System sys(prog, tracedConfig(PolicyKind::Sc, &buf));
    ASSERT_TRUE(sys.run());

    int nprocs = prog.numProcs();
    std::vector<int> issues(nprocs, 0), gps(nprocs, 0), stalls(nprocs, 0);
    int invs = 0;
    for (const TraceEvent &ev : buf.events()) {
        if (ev.comp == TraceComp::Proc && ev.proc >= 0 &&
            ev.proc < nprocs) {
            if (ev.kind == TraceKind::Issue)
                ++issues[ev.proc];
            else if (ev.kind == TraceKind::GloballyPerformed)
                ++gps[ev.proc];
            else if (ev.kind == TraceKind::StallBegin)
                ++stalls[ev.proc];
        }
        if (ev.kind == TraceKind::InvSent ||
            ev.kind == TraceKind::InvApplied)
            ++invs;
    }
    for (int p = 0; p < nprocs; ++p) {
        EXPECT_GT(issues[p], 0) << "proc" << p;
        EXPECT_GT(gps[p], 0) << "proc" << p;
        EXPECT_GT(stalls[p], 0) << "proc" << p;
    }
    EXPECT_GT(invs, 0) << "lock contention must invalidate lines";
}

TEST(TraceObs, TextRenderingMentionsEveryKindPresent)
{
    TraceBuffer buf;
    System sys(dekkerLitmus(), tracedConfig(PolicyKind::Sc, &buf));
    ASSERT_TRUE(sys.run());
    std::ostringstream os;
    renderTraceText(os, buf.events());
    std::string text = os.str();
    EXPECT_NE(text.find("issue"), std::string::npos);
    EXPECT_NE(text.find("globally_performed"), std::string::npos);
}

// ---------------------------------------------------------------------
// Latency histogram.

TEST(LatencyHistogram, BucketBoundaries)
{
    EXPECT_EQ(LatencyHistogram::bucketIndex(0), 0);
    EXPECT_EQ(LatencyHistogram::bucketIndex(1), 1);
    EXPECT_EQ(LatencyHistogram::bucketIndex(2), 2);
    EXPECT_EQ(LatencyHistogram::bucketIndex(3), 2);
    EXPECT_EQ(LatencyHistogram::bucketIndex(4), 3);
    EXPECT_EQ(LatencyHistogram::bucketIndex(7), 3);
    EXPECT_EQ(LatencyHistogram::bucketIndex(8), 4);
    EXPECT_EQ(LatencyHistogram::bucketIndex(1023), 10);
    EXPECT_EQ(LatencyHistogram::bucketIndex(1024), 11);
    EXPECT_EQ(LatencyHistogram::bucketIndex(Tick{1} << 32),
              LatencyHistogram::kBuckets - 1);
    EXPECT_EQ(LatencyHistogram::bucketIndex(~Tick{0}),
              LatencyHistogram::kBuckets - 1);

    EXPECT_EQ(LatencyHistogram::bucketLow(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketHigh(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketLow(4), 8u);
    EXPECT_EQ(LatencyHistogram::bucketHigh(4), 15u);
}

TEST(LatencyHistogram, RecordsMirrorIntoStatSet)
{
    StatSet stats;
    LatencyHistogram h(stats, "h");

    // Handles intern lazily: an unused histogram adds no stats.
    EXPECT_TRUE(stats.all().empty());

    h.record(0);
    h.record(5);
    h.record(5);
    h.record(100);

    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.total(), 110u);
    EXPECT_EQ(h.maxValue(), 100u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[3], 2u);  // 5 is in [4,7]
    EXPECT_EQ(h.buckets()[7], 1u);  // 100 is in [64,127]

    EXPECT_EQ(stats.get("h.count"), 4u);
    EXPECT_EQ(stats.get("h.total"), 110u);
    EXPECT_EQ(stats.get("h.max"), 100u);
    EXPECT_EQ(stats.get("h.bucket_00"), 1u);
    EXPECT_EQ(stats.get("h.bucket_03"), 2u);
    EXPECT_EQ(stats.get("h.bucket_07"), 1u);
}

// ---------------------------------------------------------------------
// Stall attribution.

TEST(TraceObs, StallReasonCyclesSumToTotal)
{
    for (PolicyKind policy : {PolicyKind::Sc, PolicyKind::Def2Drf0}) {
        TraceBuffer buf;
        MultiProgram prog = tasLockCounter(2, 4);
        System sys(prog, tracedConfig(policy, &buf));
        ASSERT_TRUE(sys.run()) << toString(policy);

        for (ProcId p = 0; p < prog.numProcs(); ++p) {
            const Processor &proc = sys.processor(p);
            Tick sum = 0;
            for (int r = 0; r < kNumStallReasons; ++r)
                sum += proc.stallCyclesFor(static_cast<StallReason>(r));
            EXPECT_EQ(sum, proc.stallCycles())
                << toString(policy) << " proc" << p;

            // finalizeObs (run by System::run) mirrors the same
            // invariant into the stats.
            std::string base = "proc" + std::to_string(p);
            Tick stat_sum = 0;
            for (int r = 0; r < kNumStallReasons; ++r) {
                stat_sum += sys.stats().get(
                    base + ".stall." +
                    toString(static_cast<StallReason>(r)));
            }
            EXPECT_EQ(stat_sum,
                      sys.stats().get(base + ".stall_cycles_total"))
                << toString(policy) << " proc" << p;
        }
    }
}

TEST(TraceObs, StallEventsBalanceAndCarryReasons)
{
    TraceBuffer buf;
    MultiProgram prog = tasLockCounter(2, 4);
    System sys(prog, tracedConfig(PolicyKind::Sc, &buf));
    ASSERT_TRUE(sys.run());

    int begins = 0, ends = 0;
    for (const TraceEvent &ev : buf.events()) {
        if (ev.kind == TraceKind::StallBegin) {
            ++begins;
            ASSERT_NE(ev.detail, nullptr);
        } else if (ev.kind == TraceKind::StallEnd) {
            ++ends;
        }
    }
    EXPECT_GT(begins, 0);
    // Every stall that ended produced a matched end; at most one per
    // processor may still be open at the end of the run.
    EXPECT_LE(begins - ends, prog.numProcs());
    EXPECT_GE(begins, ends);
}

// ---------------------------------------------------------------------
// Filters and Log routing.

TEST(TraceObs, ParseTraceFilter)
{
    EXPECT_EQ(parseTraceFilter("all"), kAllTraceComps);
    EXPECT_EQ(parseTraceFilter("proc"), traceCompBit(TraceComp::Proc));
    EXPECT_EQ(parseTraceFilter("proc,cache"),
              traceCompBit(TraceComp::Proc) |
                  traceCompBit(TraceComp::Cache));
    EXPECT_EQ(parseTraceFilter("net,mem,port,dir,log"),
              traceCompBit(TraceComp::Net) | traceCompBit(TraceComp::Mem) |
                  traceCompBit(TraceComp::Port) |
                  traceCompBit(TraceComp::Dir) |
                  traceCompBit(TraceComp::Log));
    EXPECT_THROW(parseTraceFilter("bogus"), std::runtime_error);
    EXPECT_THROW(parseTraceFilter(""), std::runtime_error);
}

TEST(TraceObs, BufferMaskFiltersComponents)
{
    TraceBuffer buf(traceCompBit(TraceComp::Proc));
    System sys(dekkerLitmus(), tracedConfig(PolicyKind::Sc, &buf));
    ASSERT_TRUE(sys.run());
    EXPECT_GT(buf.events().size(), 0u);
    for (const TraceEvent &ev : buf.events())
        EXPECT_EQ(ev.comp, TraceComp::Proc);
}

TEST(TraceObs, LogRedirectRoutesThroughSink)
{
    TraceBuffer buf;
    Log::redirect(&buf);
    LogLevel saved = Log::level();
    Log::setLevel(LogLevel::Trace);
    Log::emit(LogLevel::Trace, 42, "unit", "hello sink");
    Log::setLevel(saved);
    Log::redirect(nullptr);

    ASSERT_EQ(buf.events().size(), 1u);
    const TraceEvent &ev = buf.events()[0];
    EXPECT_EQ(ev.comp, TraceComp::Log);
    EXPECT_EQ(ev.kind, TraceKind::LogMessage);
    EXPECT_EQ(ev.tick, 42u);
    EXPECT_EQ(ev.text, "[unit] hello sink");
    EXPECT_EQ(renderTraceLine(ev), "42 [unit] hello sink");
}

} // namespace
} // namespace wo
