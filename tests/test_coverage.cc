/**
 * @file
 * Coverage-map lifecycle tests: recording, merge algebra, the
 * thread-local CoverageScope, heatmap/gap completeness against the
 * protocol transition tables, standing-report round-trips and diffs,
 * and the runner-level invariants (pool on == off, threads 1 == 4,
 * coverage survives a pooled System::reset).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "coherence/protocol.hh"
#include "cpu/program_builder.hh"
#include "litmus/compiler.hh"
#include "litmus/parser.hh"
#include "litmus/runner.hh"
#include "obs/coverage.hh"
#include "obs/coverage_report.hh"
#include "system/system.hh"

namespace wo {
namespace {

const ProtocolKind kProtocols[] = {
    ProtocolKind::Msi,
    ProtocolKind::Mesi,
    ProtocolKind::Moesi,
    ProtocolKind::Mesif,
};

/** Canonical rendering of a map (outcome keys must be the runner's
 * 4-field composites for addCoverage to accept them). */
std::string
render(const CoverageMap &map)
{
    StandingCoverage st;
    st.addCoverage(map);
    std::ostringstream os;
    st.write(os);
    return os.str();
}

/** Hit every legal transition of @p k exactly once. */
void
hitAllLegal(CoverageMap &map, ProtocolKind k)
{
    const CoherenceProtocol &proto = CoherenceProtocol::get(k);
    for (int s = 0; s < kNumLineStates; ++s) {
        for (int e = 0; e < kNumLineEvents; ++e) {
            if (proto.legal(static_cast<LineState>(s),
                            static_cast<LineEvent>(e))) {
                map.hitTransition(k, static_cast<LineState>(s),
                                  static_cast<LineEvent>(e));
            }
        }
    }
}

int
legalCount(ProtocolKind k)
{
    const CoherenceProtocol &proto = CoherenceProtocol::get(k);
    int n = 0;
    for (int s = 0; s < kNumLineStates; ++s) {
        for (int e = 0; e < kNumLineEvents; ++e) {
            n += proto.legal(static_cast<LineState>(s),
                             static_cast<LineEvent>(e))
                     ? 1
                     : 0;
        }
    }
    return n;
}

TEST(CoverageMap, RecordsTransitionsAndNamedKeys)
{
    CoverageMap map;
    EXPECT_TRUE(map.empty());

    map.hitTransition(ProtocolKind::Msi, LineState::Shared,
                      LineEvent::Load);
    map.hitTransition(ProtocolKind::Msi, LineState::Shared,
                      LineEvent::Load);
    EXPECT_EQ(map.transitionCount(ProtocolKind::Msi, LineState::Shared,
                                  LineEvent::Load),
              2u);
    EXPECT_EQ(map.transitionCount(ProtocolKind::Mesi, LineState::Shared,
                                  LineEvent::Load),
              0u);

    map.hitKey(CoverageMap::Dim::Stall, "proc_stall/fence", 3);
    ASSERT_EQ(map.keys(CoverageMap::Dim::Stall).size(), 1u);
    EXPECT_EQ(map.keys(CoverageMap::Dim::Stall)[0], "proc_stall/fence");
    EXPECT_EQ(map.counts(CoverageMap::Dim::Stall)[0], 3u);
    EXPECT_FALSE(map.empty());
}

TEST(CoverageMap, InternAloneSeedsKeyAtZero)
{
    CoverageMap map;
    std::uint32_t id =
        map.internKey(CoverageMap::Dim::Bucket, "lat_x/bucket_03");
    EXPECT_EQ(map.counts(CoverageMap::Dim::Bucket)[id], 0u);
    // Re-interning returns the same id.
    EXPECT_EQ(map.internKey(CoverageMap::Dim::Bucket, "lat_x/bucket_03"),
              id);
    map.hit(CoverageMap::Dim::Bucket, id);
    EXPECT_EQ(map.counts(CoverageMap::Dim::Bucket)[id], 1u);
}

TEST(CoverageMap, MergeIsAssociativeAndCommutative)
{
    auto mk = [](int variant) {
        CoverageMap m;
        if (variant == 0) {
            m.hitTransition(ProtocolKind::Msi, LineState::Invalid,
                            LineEvent::Store);
            m.hitKey(CoverageMap::Dim::Stall, "proc_stall/fence");
            m.internKey(CoverageMap::Dim::Outcome,
                        "t\tSC\tbus\tP0:r0=0"); // seeded, count 0
        } else if (variant == 1) {
            m.hitTransition(ProtocolKind::Msi, LineState::Invalid,
                            LineEvent::Store);
            m.hitTransition(ProtocolKind::Mesif, LineState::Forward,
                            LineEvent::Load);
            m.hitKey(CoverageMap::Dim::Stall, "proc_stall/dependency", 2);
        } else {
            m.hitKey(CoverageMap::Dim::Stall, "proc_stall/fence", 4);
            m.hitKey(CoverageMap::Dim::Outcome, "t\tSC\tbus\tP0:r0=0");
            m.hitKey(CoverageMap::Dim::Bucket, "lat_msg/bucket_01");
        }
        return m;
    };

    // (a + b) + c == a + (b + c)
    CoverageMap left = mk(0);
    left.merge(mk(1));
    left.merge(mk(2));
    CoverageMap bc = mk(1);
    bc.merge(mk(2));
    CoverageMap right = mk(0);
    right.merge(bc);
    EXPECT_EQ(render(left), render(right));

    // a + b == b + a
    CoverageMap ab = mk(0);
    ab.merge(mk(2));
    CoverageMap ba = mk(2);
    ba.merge(mk(0));
    EXPECT_EQ(render(ab), render(ba));

    // Zero-count seeded keys survive the merge.
    EXPECT_NE(render(left).find("outcome\tt\tSC\tbus\tP0:r0=0\t1"),
              std::string::npos);
}

TEST(CoverageMap, ClearBumpsGenerationAndEmpties)
{
    CoverageMap map;
    std::uint64_t gen = map.generation();
    map.hitTransition(ProtocolKind::Msi, LineState::Shared,
                      LineEvent::Load);
    map.hitKey(CoverageMap::Dim::Stall, "k");
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_NE(map.generation(), gen);
    EXPECT_EQ(map.transitionCount(ProtocolKind::Msi, LineState::Shared,
                                  LineEvent::Load),
              0u);
    EXPECT_TRUE(map.keys(CoverageMap::Dim::Stall).empty());
}

TEST(CoverageMap, StripInstanceDropsLeadingComponent)
{
    EXPECT_EQ(stripInstance("cache3.miss_stalls_total"),
              "miss_stalls_total");
    EXPECT_EQ(stripInstance("proc_stall"), "proc_stall");
    EXPECT_EQ(stripInstance("a.b.c"), "b.c");
}

TEST(CoverageScope, InstallsAndRestoresNested)
{
    EXPECT_EQ(activeCoverage(), nullptr);
    CoverageMap outer, inner;
    {
        CoverageScope s1(&outer);
        EXPECT_EQ(activeCoverage(), &outer);
        {
            CoverageScope s2(&inner);
            EXPECT_EQ(activeCoverage(), &inner);
            // A null scope disables coverage for its extent.
            CoverageScope s3(nullptr);
            EXPECT_EQ(activeCoverage(), nullptr);
        }
        EXPECT_EQ(activeCoverage(), &outer);
    }
    EXPECT_EQ(activeCoverage(), nullptr);
}

TEST(CoverageScope, ProtocolLookupRecordsOnlyWhenInstalled)
{
    const CoherenceProtocol &msi =
        CoherenceProtocol::get(ProtocolKind::Msi);
    CoverageMap map;
    msi.on(LineState::Shared, LineEvent::Load); // no scope: not counted
    {
        CoverageScope scope(&map);
        msi.on(LineState::Shared, LineEvent::Load);
        msi.on(LineState::Modified, LineEvent::Store);
    }
    msi.on(LineState::Shared, LineEvent::Load); // after scope: no count
    EXPECT_EQ(map.transitionCount(ProtocolKind::Msi, LineState::Shared,
                                  LineEvent::Load),
              1u);
    EXPECT_EQ(map.transitionCount(ProtocolKind::Msi, LineState::Modified,
                                  LineEvent::Store),
              1u);
}

TEST(CoverageHeatmap, FullSyntheticMapHasNoGaps)
{
    CoverageMap map;
    for (ProtocolKind k : kProtocols)
        hitAllLegal(map, k);
    StandingCoverage st;
    st.addCoverage(map);
    CoverageGaps gaps = findGaps(st);
    EXPECT_TRUE(gaps.unhitTransitions.empty())
        << gaps.unhitTransitions.front();

    std::ostringstream os;
    renderHeatmap(os, st);
    // Every protocol reports full coverage against its own table's
    // legal-pair count (the same enumeration test_protocol_table pins).
    for (ProtocolKind k : kProtocols) {
        std::string name = toString(k);
        for (char &c : name)
            c = static_cast<char>(std::toupper(c));
        std::string want = name + ": " + std::to_string(legalCount(k)) +
                           "/" + std::to_string(legalCount(k)) +
                           " legal transitions hit";
        EXPECT_NE(os.str().find(want), std::string::npos) << want;
    }
}

TEST(CoverageHeatmap, TouchedProtocolReportsItsUnhitTransitions)
{
    CoverageMap map;
    map.hitTransition(ProtocolKind::Mesif, LineState::Invalid,
                      LineEvent::Load);
    StandingCoverage st;
    st.addCoverage(map);
    CoverageGaps gaps = findGaps(st);
    // Only MESIF contributes gaps (the untouched protocols are "not
    // exercised", not 72 missing transitions).
    EXPECT_EQ(gaps.unhitTransitions.size(),
              static_cast<std::size_t>(legalCount(ProtocolKind::Mesif)) -
                  1u);
    for (const std::string &g : gaps.unhitTransitions)
        EXPECT_EQ(g.rfind("MESIF:", 0), 0u) << g;
}

TEST(StandingCoverage, WriteReadRoundTripsByteIdentical)
{
    CoverageMap map;
    map.hitTransition(ProtocolKind::Moesi, LineState::Owned,
                      LineEvent::FwdGetS);
    map.hitKey(CoverageMap::Dim::Stall,
               "miss_stalls_total/stalled_by_eviction", 7);
    map.hitKey(CoverageMap::Dim::Bucket, "lat_issue_gp/bucket_04");
    map.hitKey(CoverageMap::Dim::Outcome,
               "sb\tRelaxed\tbus\tP0:r0=0 P1:r0=0", 5);
    map.internKey(CoverageMap::Dim::Outcome, "sb\tSC\tbus\tP0:r0=0");

    StandingCoverage st;
    st.runs = 1;
    st.meta.insert({"seeds", "5"});
    st.addMachine("bus", "msi", 1);
    st.addMachine("net-u", "none", 0);
    st.addCoverage(map);

    std::ostringstream os1;
    st.write(os1);
    std::istringstream in(os1.str());
    StandingCoverage back = StandingCoverage::read(in);
    std::ostringstream os2;
    back.write(os2);
    EXPECT_EQ(os1.str(), os2.str());
    EXPECT_EQ(back.runs, 1u);
    EXPECT_EQ(back.machines.at("bus").protocol, "msi");
    EXPECT_EQ(back.machines.at("net-u").cacheLevels, 0);
    EXPECT_EQ(back.outcomes.at({"sb", "SC", "bus", "P0:r0=0"}), 0u);
}

TEST(StandingCoverage, ReadRejectsMalformedDocuments)
{
    auto parse = [](const std::string &doc) {
        std::istringstream in(doc);
        return StandingCoverage::read(in);
    };
    EXPECT_THROW(parse("not a report\n"), std::runtime_error);
    EXPECT_THROW(parse("wocover\t2\n"), std::runtime_error);
    EXPECT_THROW(parse("wocover\t1\ntrans\tmsi\tS\n"),
                 std::runtime_error);
    EXPECT_THROW(parse("wocover\t1\nstall\tk\tnot-a-number\n"),
                 std::runtime_error);
}

TEST(StandingCoverage, MergeSumsCountsAndRuns)
{
    CoverageMap a, b;
    a.hitTransition(ProtocolKind::Msi, LineState::Shared,
                    LineEvent::Load);
    b.hitTransition(ProtocolKind::Msi, LineState::Shared,
                    LineEvent::Load);
    b.hitKey(CoverageMap::Dim::Stall, "proc_stall/fence", 2);

    StandingCoverage s1, s2;
    s1.runs = 1;
    s1.addCoverage(a);
    s2.runs = 1;
    s2.addCoverage(b);
    s1.mergeFrom(s2);
    EXPECT_EQ(s1.runs, 2u);
    EXPECT_EQ(s1.transitions.at({"msi", "S", "Load"}), 2u);
    EXPECT_EQ(s1.stalls.at("proc_stall/fence"), 2u);
}

TEST(CoverageDiff, GatesRegressionsButNotBucketLosses)
{
    StandingCoverage oldRep, newRep;
    oldRep.transitions[{"msi", "S", "Evict"}] = 5;   // -> absent
    oldRep.stalls["proc_stall/fence"] = 3;           // -> 0
    oldRep.buckets["lat_msg/bucket_02"] = 9;         // -> 0 (info only)
    oldRep.outcomes[{"sb", "SC", "bus", "P0:r0=1"}] = 1; // unchanged
    newRep.stalls["proc_stall/fence"] = 0;
    newRep.buckets["lat_msg/bucket_02"] = 0;
    newRep.outcomes[{"sb", "SC", "bus", "P0:r0=1"}] = 4;
    newRep.outcomes[{"sb", "SC", "bus", "P0:r0=0"}] = 2; // gain

    CoverageDiff d = diffStanding(oldRep, newRep);
    EXPECT_TRUE(d.hasRegressions());
    EXPECT_EQ(d.regressions.size(), 2u);
    EXPECT_EQ(d.bucketLosses.size(), 1u);
    EXPECT_EQ(d.gains.size(), 1u);

    // Identical reports: clean diff.
    CoverageDiff self = diffStanding(oldRep, oldRep);
    EXPECT_FALSE(self.hasRegressions());
    EXPECT_TRUE(self.bucketLosses.empty());
    EXPECT_TRUE(self.gains.empty());
}

TEST(CoverageSystem, MapSurvivesPooledStyleResetAndDoubles)
{
    MultiProgram mp("dekker");
    ProgramBuilder p0, p1;
    p0.store(0, 1).load(0, 1).halt();
    p1.store(1, 1).load(0, 0).halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());

    SystemConfig cfg;
    cfg.policy = PolicyKind::Sc;
    CoverageMap map;
    cfg.coverage = &map;

    System sys(mp, cfg);
    ASSERT_TRUE(sys.run());
    std::string once = render(map);
    ASSERT_FALSE(map.empty());

    // A pooled-style reset replays the job bit-identically and keeps
    // recording into the same campaign-owned map: exactly doubled.
    sys.reset();
    ASSERT_TRUE(sys.run());

    // Doubling the single-run report must reproduce the two-run map.
    std::istringstream in(once);
    StandingCoverage st1 = StandingCoverage::read(in);
    StandingCoverage sum = st1;
    sum.mergeFrom(st1);
    std::ostringstream expect;
    sum.write(expect);
    EXPECT_EQ(render(map), expect.str());
}

TEST(CoverageRunner, PoolAndThreadCountDoNotChangeCoverage)
{
    using namespace litmus_dsl;
    std::vector<CompiledLitmus> corpus;
    corpus.push_back(compileLitmus(parseLitmus(
        "name sb\ninit { x = 0; y = 0; }\n"
        "P0 | P1 ;\n"
        "store x, 1 | store y, 1 ;\n"
        "load r0, y | load r0, x ;\n"
        "halt | halt ;\n"
        "exists (P0:r0 == 0 && P1:r0 == 0)\n",
        "sb.litmus")));

    RunnerOptions opt;
    opt.seeds = 2;
    opt.drf0Schedules = 40;
    opt.coverage = true;
    opt.policies = {PolicyKind::Sc, PolicyKind::Relaxed};

    struct Cfg
    {
        int threads;
        bool pool;
    };
    std::vector<std::string> docs;
    for (Cfg c : {Cfg{1, true}, Cfg{4, true}, Cfg{2, false}}) {
        opt.threads = c.threads;
        opt.systemPool = c.pool;
        CorpusReport rep = runCorpus(corpus, opt);
        std::ostringstream os;
        writeCoverageReport(os, rep);
        docs.push_back(os.str());
    }
    EXPECT_EQ(docs[0], docs[1]);
    EXPECT_EQ(docs[0], docs[2]);
    EXPECT_NE(docs[0].find("trans\tmsi\t"), std::string::npos);
    EXPECT_NE(docs[0].find("outcome\tsb\t"), std::string::npos);
}

} // namespace
} // namespace wo
