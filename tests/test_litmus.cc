/**
 * @file
 * Unit tests for the litmus-test library, validated on the idealized
 * architecture and the DRF0 checker.
 */

#include <gtest/gtest.h>

#include "core/drf0_checker.hh"
#include "core/idealized.hh"
#include "workload/litmus.hh"

namespace wo {
namespace {

TEST(Litmus, DekkerShape)
{
    MultiProgram mp = dekkerLitmus();
    EXPECT_EQ(mp.numProcs(), 2);
    OutcomeSet set = enumerateOutcomes(mp);
    EXPECT_EQ(set.outcomes.size(), 3u);
    for (const auto &r : set.outcomes)
        EXPECT_FALSE(dekkerViolatesSc(r));
}

TEST(Litmus, DekkerViolationPredicate)
{
    RunResult r;
    r.registers = {{0}, {0}};
    EXPECT_TRUE(dekkerViolatesSc(r));
    r.registers = {{1}, {0}};
    EXPECT_FALSE(dekkerViolatesSc(r));
}

TEST(Litmus, RacyMessagePassingViolatesDrf0)
{
    Drf0ProgramReport rep = checkProgram(racyMessagePassing(2));
    EXPECT_FALSE(rep.obeysDrf0);
}

TEST(Litmus, SyncMessagePassingIsDrf0)
{
    Drf0ProgramReport rep = checkProgramSampled(syncMessagePassing(), 300, 5);
    EXPECT_TRUE(rep.obeysDrf0)
        << rep.witnessReport.toString(rep.witness);
}

TEST(Litmus, SyncMessagePassingIdealizedDeliversDatum)
{
    OutcomeSet set = enumerateOutcomes(syncMessagePassing());
    for (const auto &r : set.outcomes) {
        if (r.allHalted)
            EXPECT_EQ(r.registers[1][1], 42u);
    }
    EXPECT_FALSE(set.outcomes.empty());
}

TEST(Litmus, Figure3IsDrf0AndDeliversX)
{
    MultiProgram mp = figure3Scenario();
    Drf0ProgramReport rep = checkProgramSampled(mp, 300, 11);
    EXPECT_TRUE(rep.obeysDrf0)
        << rep.witnessReport.toString(rep.witness);
    OutcomeSet set = enumerateOutcomes(mp);
    for (const auto &r : set.outcomes) {
        if (r.allHalted)
            EXPECT_EQ(r.registers[1][1], 1u);
    }
}

TEST(Litmus, LockCountersAreDrf0AndCountCorrectly)
{
    for (bool tttas : {false, true}) {
        MultiProgram mp = tttas ? tttasLockCounter(3, 2)
                                : tasLockCounter(3, 2);
        Drf0ProgramReport rep = checkProgramSampled(mp, 150, 3);
        EXPECT_TRUE(rep.obeysDrf0)
            << mp.name() << "\n"
            << rep.witnessReport.toString(rep.witness);
        // Round-robin idealized run: counter ends at procs * rounds.
        RunResult r = runWithSchedule(mp, {});
        ASSERT_TRUE(r.allHalted);
        EXPECT_EQ(r.finalMemory.at(litmus::kCounter), 6u) << mp.name();
    }
}

TEST(Litmus, BarrierIsDrf0AndPublishes)
{
    MultiProgram mp = syncBarrier(3);
    Drf0ProgramReport rep = checkProgramSampled(mp, 150, 9);
    EXPECT_TRUE(rep.obeysDrf0)
        << rep.witnessReport.toString(rep.witness);
    RunResult r = runWithSchedule(mp, {});
    ASSERT_TRUE(r.allHalted);
    // Every processor read its neighbour's published datum.
    for (int p = 0; p < 3; ++p)
        EXPECT_EQ(r.registers[p][3], 1000u + (p + 1) % 3);
}

TEST(Litmus, IriwIdealizedNeverShowsOppositeOrders)
{
    OutcomeSet set = enumerateOutcomes(iriwLitmus());
    EXPECT_FALSE(set.bounded);
    for (const auto &r : set.outcomes)
        EXPECT_FALSE(iriwViolatesSc(r)) << r.toString();
    // 2 writers x 2 readers with 2 reads each: plenty of outcomes.
    EXPECT_GT(set.outcomes.size(), 5u);
}

} // namespace
} // namespace wo
