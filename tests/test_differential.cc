/**
 * @file
 * Differential tests between the formal-core components: every trace the
 * idealized architecture produces must verify as sequentially consistent
 * (it IS an SC execution by construction), and corrupted traces must be
 * rejected.
 */

#include <gtest/gtest.h>

#include "core/idealized.hh"
#include "core/sc_verifier.hh"
#include "sim/rng.hh"
#include "workload/random_gen.hh"

namespace wo {
namespace {

RandomWorkloadConfig
tinyCfg(std::uint64_t seed)
{
    RandomWorkloadConfig cfg;
    cfg.numProcs = 2;
    cfg.numLocks = 1;
    cfg.locsPerLock = 2;
    cfg.privateLocs = 1;
    cfg.sectionsPerProc = 1;
    cfg.opsPerSection = 2;
    cfg.privateOpsBetween = 1;
    cfg.spinAcquire = false;
    cfg.seed = seed;
    return cfg;
}

TEST(Differential, EveryIdealizedTraceVerifiesSc)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        MultiProgram mp = randomDrf0Program(tinyCfg(seed));
        int checked = 0;
        forEachExecution(
            mp, {},
            [&](const ExecutionTrace &t, const RunResult &, bool complete) {
                if (!complete)
                    return true;
                ScReport r = verifySc(t);
                EXPECT_EQ(r.verdict, ScVerdict::Sc)
                    << "seed " << seed << "\n" << t.toString();
                ++checked;
                // Checking every interleaving is overkill; sample 200.
                return checked < 200;
            });
        EXPECT_GT(checked, 0) << "seed " << seed;
    }
}

TEST(Differential, CorruptedReadValuesAreRejected)
{
    // Take a legal idealized trace and flip one read's value to
    // something never written to that location: must become NotSc.
    MultiProgram mp = randomDrf0Program(tinyCfg(3));
    ExecutionTrace trace;
    RunResult res = runWithSchedule(mp, {0, 1, 0, 1, 1, 0}, &trace);
    ASSERT_TRUE(res.allHalted);
    int corrupted = 0;
    for (int i = 0; i < trace.size(); ++i) {
        if (!trace.at(i).reads())
            continue;
        ExecutionTrace copy = trace;
        copy.mutableAt(i).valueRead = 0xdeadbeef;
        ScReport r = verifySc(copy);
        EXPECT_EQ(r.verdict, ScVerdict::NotSc)
            << "corrupting " << trace.at(i).toString();
        ++corrupted;
    }
    EXPECT_GT(corrupted, 0);
}

TEST(Differential, HardwareOutcomesAlwaysInIdealizedSet)
{
    // (A slice of Appendix B, differentially.) The outcome of each
    // schedule of the idealized machine must be in the enumerated set.
    MultiProgram mp = randomDrf0Program(tinyCfg(4));
    OutcomeSet set = enumerateOutcomes(mp);
    ASSERT_FALSE(set.bounded);
    Rng rng(99);
    for (int run = 0; run < 30; ++run) {
        std::vector<ProcId> sched;
        for (int i = 0; i < 40; ++i)
            sched.push_back(static_cast<ProcId>(rng.below(2)));
        RunResult r = runWithSchedule(mp, sched);
        if (r.allHalted) {
            EXPECT_EQ(set.outcomes.count(r), 1u) << r.toString();
        }
    }
}

TEST(Differential, OutcomeEnumerationMatchesPathEnumeration)
{
    // The memoized outcome set must equal the set of outcomes collected
    // by raw path enumeration.
    MultiProgram mp = randomDrf0Program(tinyCfg(5));
    OutcomeSet memo = enumerateOutcomes(mp);
    std::set<RunResult> paths;
    bool full = forEachExecution(
        mp, {},
        [&](const ExecutionTrace &, const RunResult &r, bool complete) {
            if (complete)
                paths.insert(r);
            return true;
        });
    ASSERT_TRUE(full);
    EXPECT_EQ(memo.outcomes, paths);
}

} // namespace
} // namespace wo
