/**
 * @file
 * Ablations of the Section 5.3 design choices:
 *
 *  - reserve-clearing discipline: the literal "clear at counter zero"
 *    mechanism deadlocks across two locks, while the epoch-based
 *    "dynamic solution" the paper points to ([AdH89]) completes;
 *  - bounding misses while reserved also restores progress, at a cost.
 */

#include <gtest/gtest.h>

#include "core/sc_verifier.hh"
#include "cpu/program_builder.hh"
#include "system/system.hh"

namespace wo {
namespace {

/**
 * Cross-lock workload: each processor, with a slow-to-perform data write
 * pending, acquires and RELEASES its own lock (leaving the lock's line
 * reserved in its cache — the reserve bit clears on counter state, not
 * on unlock), then contends for the other processor's lock. The software
 * never holds two locks, so no software deadlock exists and the
 * idealized machine always terminates; only the naive hardware reserve
 * rule manufactures a cycle (P0's miss on B is queued at P1's reserved
 * line and holds P0's counter above zero, so P0's reserve on A never
 * clears, and symmetrically).
 */
MultiProgram
crossLockProgram()
{
    const Addr X0 = 0, X1 = 1, A = 10, B = 11;
    MultiProgram mp("cross-lock");
    {
        ProgramBuilder p0;
        p0.store(X0, 5) // slow write (warm-shared, invalidation pending)
            .label("a0").tas(0, A).bne(0, 0, "a0") // reserve A's line
            .unset(A)                              // release (still reserved)
            .label("b0").tas(1, B).bne(1, 0, "b0") // contend for B
            .unset(B)
            .halt();
        mp.addProgram(p0.build());
    }
    {
        ProgramBuilder p1;
        p1.store(X1, 6)
            .label("b1").tas(0, B).bne(0, 0, "b1") // reserve B's line
            .unset(B)
            .label("a1").tas(1, A).bne(1, 0, "a1") // contend for A
            .unset(A)
            .halt();
        mp.addProgram(p1.build());
    }
    return mp;
}

SystemConfig
crossLockConfig(bool epoch, int max_misses_reserved = -1)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::Def2Drf0;
    cfg.warmCaches = true;
    cfg.cache.invApplyDelay = 300; // writes take long to perform
    cfg.cache.epochReserveClearing = epoch;
    cfg.cache.maxMissesWhileReserved = max_misses_reserved;
    cfg.maxTicks = 100000;
    return cfg;
}

TEST(ReserveAblation, NaiveCounterClearingDeadlocksAcrossTwoLocks)
{
    // NOTE: this "lock ordering" is a deadlock of the HARDWARE scheme,
    // not of the software — the program acquires A-then-B on one side
    // and B-then-A on the other, but never holds both locks, so no
    // software deadlock exists and the idealized machine always
    // terminates. The naive reserve rule manufactures the cycle.
    System sys(crossLockProgram(), crossLockConfig(/*epoch=*/false));
    EXPECT_FALSE(sys.run()) << "expected the naive scheme to deadlock";
    EXPECT_FALSE(sys.processor(0).halted() && sys.processor(1).halted());
}

TEST(ReserveAblation, EpochClearingCompletes)
{
    System sys(crossLockProgram(), crossLockConfig(/*epoch=*/true));
    EXPECT_TRUE(sys.run());
    EXPECT_TRUE(verifySc(sys.trace()).sc());
    RunResult r = sys.result();
    EXPECT_EQ(r.finalMemory.at(0), 5u);
    EXPECT_EQ(r.finalMemory.at(1), 6u);
}

TEST(ReserveAblation, MissBoundZeroAlsoRestoresProgress)
{
    // The paper's other suggestion: bound (here: forbid) misses while a
    // line is reserved. The sync miss to the second lock is then held at
    // the cache until the counter drains, which breaks the cycle even
    // with naive clearing.
    System sys(crossLockProgram(),
               crossLockConfig(/*epoch=*/false, /*max=*/0));
    EXPECT_TRUE(sys.run());
    EXPECT_TRUE(verifySc(sys.trace()).sc());
}

TEST(ReserveAblation, EpochModeIsNeverSlowerHere)
{
    System naive(crossLockProgram(),
                 crossLockConfig(/*epoch=*/false, /*max=*/0));
    ASSERT_TRUE(naive.run());
    System epoch(crossLockProgram(), crossLockConfig(/*epoch=*/true));
    ASSERT_TRUE(epoch.run());
    EXPECT_LE(epoch.finishTick(), naive.finishTick());
}

TEST(ReserveAblation, SingleLockWorkloadsUnaffectedByDiscipline)
{
    // With one lock the naive rule cannot cycle; both disciplines give
    // identical results.
    const Addr X = 0, L = 10;
    MultiProgram mp("one-lock");
    for (int p = 0; p < 2; ++p) {
        ProgramBuilder b;
        b.store(static_cast<Addr>(X + p), 5)
            .label("acq").tas(0, L).bne(0, 0, "acq")
            .unset(L)
            .halt();
        mp.addProgram(b.build());
    }
    for (bool epoch : {false, true}) {
        System sys(mp, crossLockConfig(epoch));
        EXPECT_TRUE(sys.run()) << "epoch=" << epoch;
        EXPECT_TRUE(verifySc(sys.trace()).sc());
    }
}

} // namespace
} // namespace wo
