/**
 * @file
 * Figure 2 of the paper: the DRF0 example and counter-example
 * executions, classified by the checker.
 */

#include <gtest/gtest.h>

#include "core/drf0_checker.hh"
#include "workload/figures.hh"

namespace wo {
namespace {

TEST(Figure2, ExampleIsRaceFree)
{
    ExecutionTrace t = figure2aTrace();
    Drf0TraceReport rep = checkTrace(t);
    EXPECT_TRUE(rep.raceFree) << rep.toString(t);
}

TEST(Figure2, ExampleHasMultiHopOrderedConflicts)
{
    // The W(x) by P0 and the W(x) by P3 conflict and are ordered only
    // through a chain across two processors and two sync locations.
    ExecutionTrace t = figure2aTrace();
    HappensBefore hb(t);
    int w_x_p0 = -1, w_x_p3 = -1;
    for (const auto &a : t.accesses()) {
        if (a.kind == AccessKind::DataWrite && a.addr == fig2::kX) {
            if (a.proc == 0)
                w_x_p0 = a.id;
            if (a.proc == 3)
                w_x_p3 = a.id;
        }
    }
    ASSERT_GE(w_x_p0, 0);
    ASSERT_GE(w_x_p3, 0);
    EXPECT_TRUE(hb.ordered(w_x_p0, w_x_p3));
    EXPECT_FALSE(hb.ordered(w_x_p3, w_x_p0));
}

TEST(Figure2, CounterExampleHasRaces)
{
    ExecutionTrace t = figure2bTrace();
    Drf0TraceReport rep = checkTrace(t);
    EXPECT_FALSE(rep.raceFree);
    // P0's R(x) and W(x) both race with P1's W(x); P2's W(y) and P4's
    // W(y) race; P3's R(y) and P4's W(y) race: at least 4 racing pairs.
    EXPECT_GE(rep.races.size(), 4u) << rep.toString(t);

    // Verify the specific conflicts the caption calls out.
    bool p0_vs_p1 = false, p2_vs_p4 = false;
    for (const auto &r : rep.races) {
        const Access &a = t.at(r.first);
        const Access &b = t.at(r.second);
        if ((a.proc == 0 && b.proc == 1) || (a.proc == 1 && b.proc == 0))
            p0_vs_p1 = true;
        if ((a.proc == 2 && b.proc == 4) || (a.proc == 4 && b.proc == 2))
            p2_vs_p4 = true;
    }
    EXPECT_TRUE(p0_vs_p1);
    EXPECT_TRUE(p2_vs_p4);
}

TEST(Figure2, CounterExampleOrderedPairIsNotReported)
{
    // P2's W(y) -> S(b) -> S(b) -> R(y) by P3 is properly synchronized;
    // that pair must not be flagged.
    ExecutionTrace t = figure2bTrace();
    Drf0TraceReport rep = checkTrace(t);
    for (const auto &r : rep.races) {
        const Access &a = t.at(r.first);
        const Access &b = t.at(r.second);
        bool p2_p3 =
            (a.proc == 2 && b.proc == 3) || (a.proc == 3 && b.proc == 2);
        EXPECT_FALSE(p2_p3) << a.toString() << " vs " << b.toString();
    }
}

} // namespace
} // namespace wo
