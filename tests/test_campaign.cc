/**
 * @file
 * Campaign engine tests: deterministic per-job seed streams, flag
 * parsing, and the core guarantee — parallel campaign results are
 * bit-identical to a numThreads=1 run.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/campaign.hh"
#include "workload/random_gen.hh"

namespace wo {
namespace {

TEST(CampaignSeeds, DeterministicAndDistinct)
{
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t s = campaignJobSeed(42, i);
        EXPECT_EQ(s, campaignJobSeed(42, i)); // pure function
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 1000u); // no stream collisions
    EXPECT_NE(campaignJobSeed(42, 0), campaignJobSeed(43, 0));
}

TEST(CampaignSeeds, IndependentOfThreadCount)
{
    for (int threads : {1, 4}) {
        Campaign c({threads, 7});
        std::vector<std::uint64_t> seeds =
            c.map<std::uint64_t>(16, [](const CampaignJob &job) {
                return job.seed;
            });
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(seeds[static_cast<std::size_t>(i)],
                      campaignJobSeed(7, i));
    }
}

TEST(CampaignFlags, ConsumeThreadsFlag)
{
    const char *raw[] = {"prog", "--threads=5", "100"};
    char *argv[] = {const_cast<char *>(raw[0]),
                    const_cast<char *>(raw[1]),
                    const_cast<char *>(raw[2])};
    int argc = 3;
    EXPECT_EQ(consumeThreadsFlag(argc, argv), 5);
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "100");

    const char *raw2[] = {"prog", "--threads", "3", "x"};
    char *argv2[] = {const_cast<char *>(raw2[0]),
                     const_cast<char *>(raw2[1]),
                     const_cast<char *>(raw2[2]),
                     const_cast<char *>(raw2[3])};
    int argc2 = 4;
    EXPECT_EQ(consumeThreadsFlag(argc2, argv2), 3);
    ASSERT_EQ(argc2, 2);
    EXPECT_STREQ(argv2[1], "x");

    int argc3 = 1;
    char *argv3[] = {const_cast<char *>(raw[0])};
    EXPECT_EQ(consumeThreadsFlag(argc3, argv3), 0);
}

TEST(CampaignFlags, ThreadsResolutionPrefersRequest)
{
    EXPECT_EQ(campaignThreads(3), 3);
    EXPECT_GE(campaignThreads(0), 1);
}

/**
 * The tentpole guarantee: a campaign of full simulate-then-verify jobs
 * produces byte-identical results at any thread count, across seeds and
 * policies. Each job renders everything observable — final result,
 * finish tick, SC verdict — into one string, and the whole vectors must
 * match.
 */
TEST(Campaign, ParallelBitIdenticalToSerial)
{
    const std::vector<PolicyKind> policies = {
        PolicyKind::Sc, PolicyKind::Def2Drf0, PolicyKind::Def2Drf1};
    auto runJob = [&](const CampaignJob &job) {
        // 3 base seeds x policies; the workload seed comes from the
        // job's deterministic stream, never from shared state.
        PolicyKind pk = policies[static_cast<std::size_t>(
            job.index % static_cast<int>(policies.size()))];
        RandomWorkloadConfig w;
        w.numProcs = 3;
        w.sectionsPerProc = 2;
        w.seed = job.seed;
        SystemConfig cfg;
        cfg.policy = pk;
        cfg.net.seed = job.seed ^ 0xabcdef;
        System sys(randomDrf0Program(w), cfg);
        bool ok = sys.run();
        ScReport r = verifySc(sys.trace());
        return sys.result().toString() + "|" +
               std::to_string(sys.finishTick()) + "|" +
               std::to_string(ok) + "|" + r.toString();
    };

    const int jobs = 9; // 3 seeds x 3 policies
    std::vector<std::string> serial, parallel2, parallel4;
    {
        Campaign c({1, 99});
        serial = c.map<std::string>(jobs, runJob);
    }
    {
        Campaign c({2, 99});
        parallel2 = c.map<std::string>(jobs, runJob);
    }
    {
        Campaign c({4, 99});
        parallel4 = c.map<std::string>(jobs, runJob);
    }
    EXPECT_EQ(parallel2, serial);
    EXPECT_EQ(parallel4, serial);
}

TEST(Campaign, ReduceMergesInIndexOrder)
{
    // A non-commutative merge (string concat) exposes any ordering
    // nondeterminism immediately.
    for (int threads : {1, 4}) {
        Campaign c({threads, 1});
        std::string merged = c.reduce<std::string, std::string>(
            26,
            [](const CampaignJob &job) {
                return std::string(1, static_cast<char>('a' + job.index));
            },
            std::string(),
            [](std::string &acc, const std::string &one) { acc += one; });
        EXPECT_EQ(merged, "abcdefghijklmnopqrstuvwxyz");
    }
}

} // namespace
} // namespace wo
