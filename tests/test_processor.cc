/**
 * @file
 * Unit tests for the Processor: dependency handling, policy gating,
 * write-buffer semantics, and trace recording — against a synchronous
 * mock memory port.
 */

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "consistency/def1_policy.hh"
#include "consistency/def2_drf0_policy.hh"
#include "consistency/relaxed_policy.hh"
#include "consistency/sc_policy.hh"
#include "cpu/processor.hh"
#include "cpu/program_builder.hh"

namespace wo {
namespace {

/** A scriptable memory port with controllable response latency. */
class MockPort : public MemPort
{
  public:
    explicit MockPort(EventQueue &eq, Tick commit_lat = 5,
                      Tick gp_extra = 0)
        : eq_(eq), commit_lat_(commit_lat), gp_extra_(gp_extra)
    {}

    void setPortClient(CacheClient *c) override { client_ = c; }

    void
    request(const CacheOp &op) override
    {
        requests.push_back(op);
        Word old = mem.count(op.addr) ? mem[op.addr] : 0;
        if (writesMemory(op.kind))
            mem[op.addr] = op.writeValue;
        Word read_val = old;
        std::uint64_t id = op.id;
        eq_.scheduleAfter(commit_lat_, [this, id, read_val] {
            client_->opCommitted(id, read_val);
            if (gp_extra_ == 0) {
                client_->opGloballyPerformed(id);
            } else {
                eq_.scheduleAfter(gp_extra_, [this, id] {
                    client_->opGloballyPerformed(id);
                });
            }
        });
    }

    std::vector<CacheOp> requests;
    std::map<Addr, Word> mem;

  private:
    EventQueue &eq_;
    Tick commit_lat_;
    Tick gp_extra_;
    CacheClient *client_ = nullptr;
};

struct Harness
{
    Harness(Program prog, const ConsistencyPolicy &pol,
            ProcessorConfig pcfg = {}, Tick commit_lat = 5,
            Tick gp_extra = 0)
        : program(std::move(prog)), port(eq, commit_lat, gp_extra),
          proc(eq, stats, 0, program, port, pol, &trace, pcfg)
    {}

    bool
    run(Tick max = 100000)
    {
        proc.start();
        eq.run(max);
        return proc.halted() && proc.quiescent();
    }

    EventQueue eq;
    StatSet stats;
    ExecutionTrace trace;
    Program program;
    MockPort port;
    Processor proc;
};

TEST(Processor, ExecutesArithmeticAndBranches)
{
    ProgramBuilder b;
    b.movi(0, 3)
        .label("loop")
        .addi(1, 1, 2)
        .addi(0, 0, static_cast<Word>(-1))
        .bne(0, 0, "loop")
        .halt();
    ScPolicy pol;
    Harness h(b.build(), pol);
    ASSERT_TRUE(h.run());
    EXPECT_EQ(h.proc.registers()[1], 6u);
}

TEST(Processor, LoadValueReachesRegisterAndDependents)
{
    ProgramBuilder b;
    b.load(0, 7).addi(1, 0, 1).storeReg(8, 1).halt();
    ScPolicy pol;
    Harness h(b.build(), pol);
    h.port.mem[7] = 41;
    ASSERT_TRUE(h.run());
    EXPECT_EQ(h.proc.registers()[0], 41u);
    EXPECT_EQ(h.proc.registers()[1], 42u);
    EXPECT_EQ(h.port.mem[8], 42u);
}

TEST(Processor, ScPolicySerializesMemoryOps)
{
    ProgramBuilder b;
    b.store(1, 1).store(2, 2).store(3, 3).halt();
    ScPolicy pol;
    Harness h(b.build(), pol, {}, 5, 10); // GP lags commit by 10
    ASSERT_TRUE(h.run());
    // With SC, each store issues only after the previous is GP:
    // issue times must be >= 15 apart.
    ASSERT_EQ(h.port.requests.size(), 3u);
    // Trace commit ticks are the mock's commit times (issue + 5).
    Tick prev = 0;
    for (const auto &a : h.trace.accesses()) {
        if (prev != 0)
            EXPECT_GE(a.commitTick, prev + 15);
        prev = a.commitTick;
    }
}

TEST(Processor, RelaxedOverlapsMemoryOps)
{
    ProgramBuilder b;
    b.store(1, 1).store(2, 2).store(3, 3).halt();
    RelaxedPolicy pol;
    Harness h(b.build(), pol, {}, 5, 10);
    ASSERT_TRUE(h.run());
    // Back-to-back issue: commits land 1 cycle apart.
    const auto &acc = h.trace.accesses();
    ASSERT_EQ(acc.size(), 3u);
    EXPECT_LE(acc[2].commitTick, acc[0].commitTick + 2);
}

TEST(Processor, SameAddressAccessesStayOrdered)
{
    // Even relaxed processors preserve same-address order (condition 1).
    ProgramBuilder b;
    b.store(5, 1).load(0, 5).store(5, 2).halt();
    RelaxedPolicy pol;
    Harness h(b.build(), pol, {}, 5, 10);
    ASSERT_TRUE(h.run());
    EXPECT_EQ(h.proc.registers()[0], 1u);
    EXPECT_EQ(h.port.mem[5], 2u);
    ASSERT_EQ(h.port.requests.size(), 3u);
    EXPECT_EQ(h.port.requests[0].writeValue, 1u);
    EXPECT_EQ(h.port.requests[2].writeValue, 2u);
}

TEST(Processor, Def1StallsSyncUntilAllGp)
{
    ProgramBuilder b;
    b.store(1, 1).unset(9, 1).store(2, 2).halt();
    Def1Policy pol;
    Harness h(b.build(), pol, {}, 5, 50);
    ASSERT_TRUE(h.run());
    const auto &acc = h.trace.accesses();
    ASSERT_EQ(acc.size(), 3u);
    // Sync (index 1) commits after the first store's GP (commit+50).
    EXPECT_GE(acc[1].commitTick, acc[0].commitTick + 50);
    // And the store after the sync waits for the sync's GP.
    EXPECT_GE(acc[2].commitTick, acc[1].commitTick + 50);
}

TEST(Processor, Def2WaitsOnlyForSyncCommit)
{
    ProgramBuilder b;
    b.store(1, 1).unset(9, 1).store(2, 2).halt();
    Def2Drf0Policy pol;
    Harness h(b.build(), pol, {}, 5, 50);
    ASSERT_TRUE(h.run());
    const auto &acc = h.trace.accesses();
    ASSERT_EQ(acc.size(), 3u);
    // The sync issues immediately (condition 4 only gates on previous
    // syncs), and the store after it waits only for the sync COMMIT, not
    // its GP: everything commits well before the first store's GP+50.
    EXPECT_LE(acc[1].commitTick, acc[0].commitTick + 10);
    EXPECT_LE(acc[2].commitTick, acc[1].commitTick + 10);
}

TEST(Processor, WriteBufferForwardsToReads)
{
    ProgramBuilder b;
    b.store(5, 9).load(0, 5).halt();
    RelaxedPolicy pol;
    ProcessorConfig pcfg;
    pcfg.useWriteBuffer = true;
    pcfg.wbDrainDelay = 50;
    Harness h(b.build(), pol, pcfg, 5, 0);
    ASSERT_TRUE(h.run());
    EXPECT_EQ(h.proc.registers()[0], 9u);
    EXPECT_GT(h.stats.get("proc0.wb_forwards"), 0u);
}

TEST(Processor, WriteBufferLetsReadsPassWrites)
{
    ProgramBuilder b;
    b.store(5, 9).load(0, 6).halt();
    RelaxedPolicy pol;
    ProcessorConfig pcfg;
    pcfg.useWriteBuffer = true;
    pcfg.wbDrainDelay = 50;
    Harness h(b.build(), pol, pcfg, 5, 0);
    ASSERT_TRUE(h.run());
    // The read reached the port before the buffered write drained.
    ASSERT_EQ(h.port.requests.size(), 2u);
    EXPECT_EQ(h.port.requests[0].kind, AccessKind::DataRead);
    EXPECT_EQ(h.port.requests[1].kind, AccessKind::DataWrite);
}

TEST(Processor, SyncDrainsWriteBuffer)
{
    ProgramBuilder b;
    b.store(5, 9).unset(9, 1).halt();
    RelaxedPolicy pol;
    ProcessorConfig pcfg;
    pcfg.useWriteBuffer = true;
    pcfg.wbDrainDelay = 50;
    Harness h(b.build(), pol, pcfg, 5, 0);
    ASSERT_TRUE(h.run());
    ASSERT_EQ(h.port.requests.size(), 2u);
    // The sync reached the port only after the buffered write drained.
    EXPECT_EQ(h.port.requests[0].kind, AccessKind::DataWrite);
    EXPECT_EQ(h.port.requests[1].kind, AccessKind::SyncWrite);
}

TEST(Processor, TraceRecordsKindsAndValues)
{
    ProgramBuilder b;
    b.store(5, 9).load(0, 5).tas(1, 9).halt();
    ScPolicy pol;
    Harness h(b.build(), pol);
    ASSERT_TRUE(h.run());
    const auto &acc = h.trace.accesses();
    ASSERT_EQ(acc.size(), 3u);
    EXPECT_EQ(acc[0].kind, AccessKind::DataWrite);
    EXPECT_EQ(acc[0].valueWritten, 9u);
    EXPECT_EQ(acc[1].kind, AccessKind::DataRead);
    EXPECT_EQ(acc[1].valueRead, 9u);
    EXPECT_EQ(acc[2].kind, AccessKind::SyncRmw);
    EXPECT_EQ(acc[2].valueWritten, 1u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(acc[i].poIndex, i);
        EXPECT_NE(acc[i].commitTick, kNoTick);
        EXPECT_NE(acc[i].gpTick, kNoTick);
    }
}

TEST(Processor, StallCyclesAccumulateUnderSc)
{
    ProgramBuilder b;
    b.store(1, 1).store(2, 2).halt();
    ScPolicy sc;
    RelaxedPolicy rel;
    Harness slow(b.build(), sc, {}, 5, 100);
    Harness fast(b.build(), rel, {}, 5, 100);
    ASSERT_TRUE(slow.run());
    ASSERT_TRUE(fast.run());
    EXPECT_GT(slow.proc.stallCycles(), fast.proc.stallCycles() + 50);
}

TEST(Processor, EmptyProgramHaltsImmediately)
{
    Program p;
    ScPolicy pol;
    Harness h(p, pol);
    h.proc.start();
    EXPECT_TRUE(h.proc.halted());
}

} // namespace
} // namespace wo
