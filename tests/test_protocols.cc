/**
 * @file
 * System-level behavior of the non-MSI protocols: the states only MESI /
 * MOESI / MESIF can reach, the directory actions that serve them, and
 * the stall-reason stat family invariant.
 *
 * Cross-processor ordering inside test programs is established with
 * DRF0 sync flags (Unset/Test) under SC, so every assertion about an
 * end-of-run cache state is deterministic — no seed sweeps needed.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coherence/cache.hh"
#include "cpu/program_builder.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

namespace wo {
namespace {

constexpr Addr kData = 0;
constexpr Addr kFlagBase = 10;

/**
 * P0 stores kData=42 then releases flag 0; reader i spins on flag i,
 * loads kData, releases flag i+1. Under SC the loads are strictly
 * ordered after the store and after each other.
 */
MultiProgram
chainedReaders(int num_readers)
{
    MultiProgram mp("chained-readers");
    ProgramBuilder p0;
    p0.store(kData, 42).unset(kFlagBase, 1).halt();
    mp.addProgram(p0.build());
    for (int i = 0; i < num_readers; ++i) {
        ProgramBuilder b;
        b.label("spin")
            .test(0, kFlagBase + i)
            .beq(0, 0, "spin")
            .load(1, kData)
            .unset(kFlagBase + i + 1, 1)
            .halt();
        mp.addProgram(b.build());
    }
    return mp;
}

LineState
stateOf(System &sys, ProcId p, Addr addr)
{
    LineState st = LineState::Invalid;
    Word data = 0;
    if (!sys.cache(p) || !sys.cache(p)->peekLine(addr, &st, &data))
        return LineState::Invalid;
    return st;
}

TEST(Protocols, EveryProtocolMachineForbidsScViolationsAndAuditsClean)
{
    for (const char *m : {"bus-mesi", "bus-moesi", "bus-mesif",
                          "net-mesi", "net-moesi", "net-mesif"}) {
        SCOPED_TRACE(m);
        SystemConfig cfg =
            machineOrThrow(m).config(PolicyKind::Sc, 7);
        System sys(dekkerLitmus(), cfg);
        EXPECT_TRUE(sys.run());
        EXPECT_FALSE(dekkerViolatesSc(sys.result()));
        EXPECT_TRUE(sys.auditCoherence().empty());
    }
}

TEST(Protocols, MesiFillsCleanExclusiveAndUpgradesSilently)
{
    // A single processor reads then writes a private location. MESI
    // must fill the cold read in E (one directory grant), then upgrade
    // E->M on the store without any directory traffic.
    MultiProgram mp("private-read-write");
    ProgramBuilder b;
    b.load(0, kData).store(kData, 7).halt();
    mp.addProgram(b.build());

    SystemConfig cfg = machineOrThrow("net-mesi").config(PolicyKind::Sc);
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.stats().get("cache0.misses"), 1u);
    EXPECT_EQ(sys.stats().get("cache0.hits"), 1u);
    EXPECT_EQ(sys.stats().get("cache0.silent_upgrades"), 1u);
    EXPECT_EQ(sys.stats().get("dir0.exclusive_grants"), 1u);
    EXPECT_EQ(stateOf(sys, 0, kData), LineState::Modified);
    EXPECT_TRUE(sys.auditCoherence().empty());

    // The same program under MSI pays a second directory round-trip for
    // the store and never touches the extension counters.
    SystemConfig msi = machineOrThrow("net-cold").config(PolicyKind::Sc);
    System ref(mp, msi);
    ASSERT_TRUE(ref.run());
    EXPECT_EQ(ref.stats().get("cache0.silent_upgrades"), 0u);
    EXPECT_EQ(ref.stats().get("dir0.exclusive_grants"), 0u);
    EXPECT_GT(ref.stats().get("dir0.requests"),
              sys.stats().get("dir0.requests"));
}

TEST(Protocols, MoesiOwnerKeepsDirtyLineAcrossReaders)
{
    SystemConfig cfg =
        machineOrThrow("net-moesi").config(PolicyKind::Sc);
    System sys(chainedReaders(2), cfg);
    ASSERT_TRUE(sys.run());
    RunResult r = sys.result();
    EXPECT_EQ(r.registers.at(1).at(1), 42u);
    EXPECT_EQ(r.registers.at(2).at(1), 42u);
    // The writer still owns the dirty line (M -> O on the first read
    // recall, O -> O on the second); nothing was written back.
    EXPECT_EQ(stateOf(sys, 0, kData), LineState::Owned);
    EXPECT_EQ(stateOf(sys, 1, kData), LineState::Shared);
    EXPECT_EQ(stateOf(sys, 2, kData), LineState::Shared);
    EXPECT_EQ(sys.stats().get("dir0.writebacks"), 0u);
    EXPECT_TRUE(sys.auditCoherence().empty());

    // MESI has no O: the same schedule demotes the writer to plain S
    // and the directory takes the data.
    SystemConfig mesi =
        machineOrThrow("net-mesi").config(PolicyKind::Sc);
    System ref(chainedReaders(2), mesi);
    ASSERT_TRUE(ref.run());
    EXPECT_EQ(stateOf(ref, 0, kData), LineState::Shared);
    EXPECT_TRUE(ref.auditCoherence().empty());
}

TEST(Protocols, MesifForwardStateFollowsTheMostRecentReader)
{
    SystemConfig cfg =
        machineOrThrow("net-mesif").config(PolicyKind::Sc);
    System sys(chainedReaders(2), cfg);
    ASSERT_TRUE(sys.run());
    RunResult r = sys.result();
    EXPECT_EQ(r.registers.at(1).at(1), 42u);
    EXPECT_EQ(r.registers.at(2).at(1), 42u);
    // Reader 1 filled in F, then was recalled to serve reader 2 and
    // demoted to S; reader 2 now holds F. The writer was demoted to S
    // by the first read recall (MESIF has no O to park dirty data in).
    EXPECT_EQ(stateOf(sys, 0, kData), LineState::Shared);
    EXPECT_EQ(stateOf(sys, 1, kData), LineState::Shared);
    EXPECT_EQ(stateOf(sys, 2, kData), LineState::Forward);
    EXPECT_GE(sys.stats().get("dir0.forward_recalls"), 1u);
    EXPECT_TRUE(sys.auditCoherence().empty());
}

TEST(Protocols, StallFamilyTotalSumsItsReasonsByConstruction)
{
    // Conflict-heavy program on a tiny (2-set, 1-way) L1: repeated
    // stores and loads over four lines that map to one set, so misses
    // queue behind MSHRs and evictions. Under Def2 the data accesses
    // overlap, which is what produces stalls.
    MultiProgram mp("set-thrash");
    for (int p = 0; p < 2; ++p) {
        ProgramBuilder b;
        for (int round = 0; round < 3; ++round) {
            b.store(0, round + 1)
                .load(0, 0)
                .store(2, round + 2)
                .store(4, round + 3)
                .store(6, round + 4)
                .load(1, 2);
        }
        b.halt();
        mp.addProgram(b.build());
    }

    bool any_stall = false;
    for (ProtocolKind k :
         {ProtocolKind::Msi, ProtocolKind::Mesi, ProtocolKind::Moesi,
          ProtocolKind::Mesif}) {
        SCOPED_TRACE(toString(k));
        SystemConfig cfg =
            machineOrThrow("net-cold").config(PolicyKind::Def2Drf0, 7);
        cfg.protocol = k;
        cfg.cache.numSets = 2;
        cfg.cache.ways = 1;
        System sys(mp, cfg);
        ASSERT_TRUE(sys.run());
        EXPECT_TRUE(sys.auditCoherence().empty());

        // For every component with a miss_stalls_total, the total must
        // equal the sum of that component's stalled_by_* counters —
        // the family bumps both at one site, so a mismatch means a
        // stall was counted outside the family.
        const auto &all = sys.stats().all();
        std::string suffix = ".miss_stalls_total";
        for (const auto &[name, total] : all) {
            if (name.size() < suffix.size() ||
                name.compare(name.size() - suffix.size(), suffix.size(),
                             suffix) != 0)
                continue;
            std::string prefix =
                name.substr(0, name.size() - suffix.size()) +
                ".stalled_by_";
            std::uint64_t sum = 0;
            for (const auto &[rname, rval] : all) {
                if (rname.compare(0, prefix.size(), prefix) == 0)
                    sum += rval;
            }
            EXPECT_EQ(total, sum) << name;
            if (total > 0)
                any_stall = true;
        }
    }
    // The thrash program must actually exercise the family somewhere;
    // an all-zero pass would make the invariant check vacuous.
    EXPECT_TRUE(any_stall);
}

TEST(Protocols, AllProtocolsAgreeOnDrf0CriticalSectionOutcome)
{
    // tasLockCounter is DRF0: whatever the interleaving, the lock must
    // serialize the increments, so every protocol must finish with the
    // counter at procs*rounds. (Register contents legitimately differ —
    // protocol timing changes who wins each acquisition.)
    MultiProgram prog = tasLockCounter(3, 2);
    for (const char *m :
         {"net-cold", "net-mesi", "net-moesi", "net-mesif"}) {
        SCOPED_TRACE(m);
        SystemConfig cfg =
            machineOrThrow(m).config(PolicyKind::Def2Drf0, 11);
        System sys(prog, cfg);
        ASSERT_TRUE(sys.run());
        EXPECT_EQ(sys.result().finalMemory.at(kData), 6u);
        EXPECT_TRUE(sys.auditCoherence().empty());
    }
}

} // namespace
} // namespace wo
