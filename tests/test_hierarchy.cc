/**
 * @file
 * Two-level (private L1 + private L2) hierarchy tests: fills route
 * through the L2, inclusion holds under L2 pressure (back-probes), and
 * the registered two-level machines behave like their one-level
 * counterparts at the memory-model level.
 */

#include <gtest/gtest.h>

#include <string>

#include "coherence/cache.hh"
#include "cpu/program_builder.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

namespace wo {
namespace {

LineState
l1StateOf(System &sys, ProcId p, Addr addr)
{
    LineState st = LineState::Invalid;
    Word data = 0;
    if (!sys.cache(p) || !sys.cache(p)->peekLine(addr, &st, &data))
        return LineState::Invalid;
    return st;
}

TEST(Hierarchy, TwoLevelMachinesForbidScViolationsAndAuditClean)
{
    for (const char *m : {"bus-l2", "net-l2", "net-l2-moesi"}) {
        SCOPED_TRACE(m);
        SystemConfig cfg = machineOrThrow(m).config(PolicyKind::Sc, 7);
        ASSERT_EQ(cfg.cacheLevels, 2);
        System sys(dekkerLitmus(), cfg);
        EXPECT_TRUE(sys.run());
        EXPECT_FALSE(dekkerViolatesSc(sys.result()));
        EXPECT_TRUE(sys.auditCoherence().empty());
    }
}

TEST(Hierarchy, TwoLevelMachinesDeliverSyncMessagePassing)
{
    for (const char *m : {"bus-l2", "net-l2", "net-l2-moesi"}) {
        SCOPED_TRACE(m);
        SystemConfig cfg =
            machineOrThrow(m).config(PolicyKind::Def2Drf0, 11);
        System sys(syncMessagePassing(), cfg);
        ASSERT_TRUE(sys.run());
        // P1's data read must see the 42 published before the flag.
        EXPECT_EQ(sys.result().registers.at(1).at(1), 42u);
        EXPECT_TRUE(sys.auditCoherence().empty());
    }
}

TEST(Hierarchy, VictimLinesAreServedFromTheL2)
{
    // Tiny L1 (1 set, 1 way) over a roomy L2: two conflicting lines
    // ping-pong out of the L1 but stay resident in the L2, so the
    // second touch of each line is an L2 hit, not a directory round
    // trip.
    MultiProgram mp("l1-thrash");
    ProgramBuilder b;
    b.load(0, 0).load(1, 2).load(2, 0).load(3, 2).halt();
    mp.addProgram(b.build());
    mp.setInitial(0, 5);
    mp.setInitial(2, 6);

    SystemConfig cfg = machineOrThrow("net-l2").config(PolicyKind::Sc);
    cfg.cache.numSets = 1;
    cfg.cache.ways = 1;
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run());
    RunResult r = sys.result();
    EXPECT_EQ(r.registers.at(0).at(2), 5u);
    EXPECT_EQ(r.registers.at(0).at(3), 6u);
    EXPECT_GE(sys.stats().get("l2cache0.hits"), 2u);
    // Only the two cold fills ever left the L2.
    EXPECT_EQ(sys.stats().get("l2cache0.misses"), 2u);
    EXPECT_EQ(sys.stats().get("dir0.requests"), 2u);
    EXPECT_TRUE(sys.auditCoherence().empty());
}

TEST(Hierarchy, L2EvictionProbesTheL1ToKeepInclusion)
{
    // Tiny L2 (1 set, 1 way) under an unbounded L1: bringing in a
    // second line forces the L2 to evict the first, and inclusion
    // requires it to recall the L1's dirty copy first (back-probe +
    // writeback), leaving the L1 invalid for that line.
    MultiProgram mp("l2-pressure");
    ProgramBuilder b;
    b.store(0, 5).store(2, 6).load(0, 0).halt();
    mp.addProgram(b.build());

    SystemConfig cfg = machineOrThrow("net-l2").config(PolicyKind::Sc);
    cfg.l2.numSets = 1;
    cfg.l2.ways = 1;
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run());
    // The reload still sees the written value (it round-tripped through
    // the directory's memory image).
    EXPECT_EQ(sys.result().registers.at(0).at(0), 5u);
    // Both dirty lines round-tripped through the directory: line 0
    // evicted for line 2, then line 2 evicted for the reload of 0.
    EXPECT_EQ(sys.stats().get("l2cache0.writebacks"), 2u);
    // Inclusion: the line the L2 evicted must be gone from the L1 too;
    // the reloaded one is present in both.
    EXPECT_EQ(l1StateOf(sys, 0, 2), LineState::Invalid);
    EXPECT_NE(l1StateOf(sys, 0, 0), LineState::Invalid);
    EXPECT_TRUE(sys.auditCoherence().empty());
}

TEST(Hierarchy, MesifRunsTwoLevelToo)
{
    // No registered MESIF two-level machine, but the combination must
    // work — the registry is a convenience, not a constraint.
    SystemConfig cfg =
        machineOrThrow("net-cold").config(PolicyKind::Sc, 13);
    cfg.protocol = ProtocolKind::Mesif;
    cfg.cacheLevels = 2;
    System sys(dekkerLitmus(), cfg);
    EXPECT_TRUE(sys.run());
    EXPECT_FALSE(dekkerViolatesSc(sys.result()));
    EXPECT_TRUE(sys.auditCoherence().empty());
}

TEST(Hierarchy, BoundedBothLevelsStaysCoherentUnderContention)
{
    // Both levels bounded and four processors fighting over a lock:
    // the eviction-probe, deferred-probe and recall-race machinery all
    // get exercised. Correctness bar: the lock still serializes.
    for (const char *m : {"bus-l2", "net-l2", "net-l2-moesi"}) {
        SCOPED_TRACE(m);
        SystemConfig cfg =
            machineOrThrow(m).config(PolicyKind::Def2Drf0, 7);
        cfg.cache.numSets = 2;
        cfg.cache.ways = 1;
        cfg.l2.numSets = 2;
        cfg.l2.ways = 2;
        System sys(tasLockCounter(4, 2), cfg);
        ASSERT_TRUE(sys.run());
        EXPECT_EQ(sys.result().finalMemory.at(0), 8u);
        EXPECT_TRUE(sys.auditCoherence().empty());
    }
}

} // namespace
} // namespace wo
