/**
 * @file
 * Unit tests for the Figure 2-style trace renderer.
 */

#include <gtest/gtest.h>

#include "core/trace_render.hh"
#include "system/system.hh"
#include "workload/figures.hh"
#include "workload/litmus.hh"

namespace wo {
namespace {

TEST(TraceRender, EmptyTrace)
{
    ExecutionTrace t;
    EXPECT_EQ(renderColumns(t), "(empty trace)\n");
}

TEST(TraceRender, Figure2aHasColumnsPerProcessor)
{
    ExecutionTrace t = figure2aTrace();
    std::string s = renderColumns(t);
    for (int p = 0; p < 6; ++p) {
        EXPECT_NE(s.find("P" + std::to_string(p)), std::string::npos)
            << s;
    }
    // Contains the kinds in figure notation.
    EXPECT_NE(s.find("W(x0)"), std::string::npos) << s;
    EXPECT_NE(s.find("S.w(x10)"), std::string::npos) << s;
    EXPECT_NE(s.find("S.rw(x10)"), std::string::npos) << s;
}

TEST(TraceRender, RowsFollowCommitOrder)
{
    ExecutionTrace t = figure2bTrace();
    std::string s = renderColumns(t);
    // P0's read of x commits at tick 0, P4's write of y at tick 7:
    // the read's row must come first.
    std::size_t first = s.find("R(x0)");
    std::size_t last = s.find("W(x1)=0");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(last, std::string::npos);
    EXPECT_LT(first, last);
}

TEST(TraceRender, GapsAreElided)
{
    ExecutionTrace t;
    Access a;
    a.proc = 0;
    a.poIndex = 0;
    a.kind = AccessKind::DataWrite;
    a.addr = 1;
    a.commitTick = 0;
    t.add(a);
    a.poIndex = 1;
    a.commitTick = 1000;
    t.add(a);
    std::string s = renderColumns(t);
    EXPECT_NE(s.find("..."), std::string::npos);
    // Not a thousand rows.
    EXPECT_LT(std::count(s.begin(), s.end(), '\n'), 12);
}

TEST(TraceRender, HardwareTraceRenders)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::Def2Drf0;
    System sys(syncMessagePassing(), cfg);
    ASSERT_TRUE(sys.run());
    std::string s = renderColumns(sys.trace());
    EXPECT_NE(s.find("W(x0)=42"), std::string::npos) << s;
    EXPECT_NE(s.find("R(x0)=42"), std::string::npos) << s;
}

} // namespace
} // namespace wo
