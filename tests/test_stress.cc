/**
 * @file
 * Randomized stress tests: many seeds, tiny caches, multiple banks,
 * racy and race-free workloads — after every run the coherence auditor
 * must find nothing, the protocol must drain, and (for DRF0 workloads)
 * the execution must appear SC.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/random_gen.hh"

namespace wo {
namespace {

using StressParam = std::tuple<PolicyKind, bool, std::uint64_t>;

class StressSweep : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(StressSweep, TinyCachesMultiBankStayCoherent)
{
    auto [policy, racy, seed] = GetParam();
    RandomWorkloadConfig w;
    w.numProcs = 4;
    w.numLocks = 3;
    w.locsPerLock = 4;
    w.privateLocs = 4;
    w.sectionsPerProc = 4;
    w.opsPerSection = 4;
    w.privateOpsBetween = 3;
    w.seed = seed;
    MultiProgram mp =
        racy ? randomRacyProgram(w, 3) : randomDrf0Program(w);

    SystemConfig cfg;
    cfg.policy = policy;
    cfg.numDirs = 2;
    cfg.cache.numSets = 2;
    cfg.cache.ways = 2;
    cfg.net.seed = seed * 5 + 2;
    cfg.net.jitter = 12;
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run())
        << sys.description() << " seed " << seed
        << (racy ? " racy" : " drf0");

    std::vector<std::string> problems = sys.auditCoherence();
    EXPECT_TRUE(problems.empty()) << problems.front();

    if (!racy) {
        EXPECT_TRUE(verifySc(sys.trace()).sc())
            << sys.description() << " seed " << seed;
    }
}

std::string
stressName(const ::testing::TestParamInfo<StressParam> &info)
{
    std::string s = toString(std::get<0>(info.param)) +
                    (std::get<1>(info.param) ? "_racy_s" : "_drf0_s") +
                    std::to_string(std::get<2>(info.param));
    for (auto &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StressSweep,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Sc, PolicyKind::Def1,
                          PolicyKind::Def2Drf0, PolicyKind::Def2Drf1),
        ::testing::Bool(),
        ::testing::Values(1u, 2u, 3u, 4u)),
    stressName);

TEST(StressAudit, AuditCatchesPlantedViolation)
{
    // Sanity of the auditor itself: plant a second exclusive copy.
    MultiProgram mp = randomDrf0Program({});
    SystemConfig cfg;
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run());
    ASSERT_TRUE(sys.auditCoherence().empty());
    Addr a = mp.touchedAddrs().front();
    sys.cache(0)->pokeLine(a, LineState::Modified, 1);
    sys.cache(1)->pokeLine(a, LineState::Modified, 2);
    EXPECT_FALSE(sys.auditCoherence().empty());
}

TEST(StressAudit, UncachedSystemsAuditTrivially)
{
    SystemConfig cfg;
    cfg.cached = false;
    cfg.policy = PolicyKind::Sc;
    MultiProgram mp = randomDrf0Program({});
    System sys(mp, cfg);
    ASSERT_TRUE(sys.run());
    EXPECT_TRUE(sys.auditCoherence().empty());
}

TEST(StressLong, EightProcessorsHeavyContention)
{
    RandomWorkloadConfig w;
    w.numProcs = 8;
    w.numLocks = 2; // heavy contention
    w.locsPerLock = 2;
    w.sectionsPerProc = 5;
    w.opsPerSection = 4;
    w.seed = 42;
    SystemConfig cfg;
    cfg.policy = PolicyKind::Def2Drf1;
    cfg.cache.numSets = 4;
    cfg.cache.ways = 2;
    cfg.maxTicks = 50000000;
    System sys(randomDrf0Program(w), cfg);
    ASSERT_TRUE(sys.run());
    EXPECT_TRUE(sys.auditCoherence().empty());
    EXPECT_TRUE(verifySc(sys.trace()).sc());
}

} // namespace
} // namespace wo
