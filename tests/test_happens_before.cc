/**
 * @file
 * Unit tests for the happens-before relation (po U so)+.
 */

#include <gtest/gtest.h>

#include "core/happens_before.hh"

namespace wo {
namespace {

/** Convenience for building trace accesses. */
Access
mk(ProcId proc, int po, AccessKind kind, Addr addr, Tick commit)
{
    Access a;
    a.proc = proc;
    a.poIndex = po;
    a.kind = kind;
    a.addr = addr;
    a.commitTick = commit;
    a.gpTick = commit;
    return a;
}

TEST(HappensBefore, ProgramOrderIsIncluded)
{
    ExecutionTrace t;
    int a = t.add(mk(0, 0, AccessKind::DataWrite, 1, 0));
    int b = t.add(mk(0, 1, AccessKind::DataRead, 2, 1));
    int c = t.add(mk(0, 2, AccessKind::DataWrite, 3, 2));
    HappensBefore hb(t);
    EXPECT_TRUE(hb.ordered(a, b));
    EXPECT_TRUE(hb.ordered(b, c));
    EXPECT_TRUE(hb.ordered(a, c)); // transitive
    EXPECT_FALSE(hb.ordered(b, a));
    EXPECT_FALSE(hb.ordered(c, a));
}

TEST(HappensBefore, CrossProcessorUnorderedWithoutSync)
{
    ExecutionTrace t;
    int a = t.add(mk(0, 0, AccessKind::DataWrite, 1, 0));
    int b = t.add(mk(1, 0, AccessKind::DataRead, 1, 1));
    HappensBefore hb(t);
    EXPECT_FALSE(hb.ordered(a, b));
    EXPECT_FALSE(hb.ordered(b, a));
    EXPECT_FALSE(hb.orderedEither(a, b));
}

TEST(HappensBefore, SyncOrderOrdersSameLocationSyncs)
{
    ExecutionTrace t;
    int s1 = t.add(mk(0, 0, AccessKind::SyncWrite, 9, 5));
    int s2 = t.add(mk(1, 0, AccessKind::SyncRmw, 9, 8));
    HappensBefore hb(t);
    EXPECT_TRUE(hb.ordered(s1, s2));
    EXPECT_FALSE(hb.ordered(s2, s1));
}

TEST(HappensBefore, SyncsOnDifferentLocationsUnordered)
{
    ExecutionTrace t;
    int s1 = t.add(mk(0, 0, AccessKind::SyncWrite, 9, 5));
    int s2 = t.add(mk(1, 0, AccessKind::SyncWrite, 10, 8));
    HappensBefore hb(t);
    EXPECT_FALSE(hb.orderedEither(s1, s2));
}

TEST(HappensBefore, DataAccessesToSameLocationNotSyncOrdered)
{
    // so only relates synchronization operations.
    ExecutionTrace t;
    int w1 = t.add(mk(0, 0, AccessKind::DataWrite, 4, 1));
    int w2 = t.add(mk(1, 0, AccessKind::DataWrite, 4, 2));
    HappensBefore hb(t);
    EXPECT_FALSE(hb.orderedEither(w1, w2));
}

TEST(HappensBefore, PaperChainExample)
{
    // The paper's chain:
    //   op(P1,x) po S(P1,s) so S(P2,s) po S(P2,t) so S(P3,t) po op(P3,x)
    // implies op(P1,x) hb op(P3,x).
    ExecutionTrace t;
    const Addr x = 0, s = 1, u = 2;
    int op1 = t.add(mk(1, 0, AccessKind::DataWrite, x, 0));
    int s1s = t.add(mk(1, 1, AccessKind::SyncWrite, s, 1));
    int s2s = t.add(mk(2, 0, AccessKind::SyncRmw, s, 2));
    int s2t = t.add(mk(2, 1, AccessKind::SyncWrite, u, 3));
    int s3t = t.add(mk(3, 0, AccessKind::SyncRmw, u, 4));
    int op3 = t.add(mk(3, 1, AccessKind::DataRead, x, 5));
    HappensBefore hb(t);
    EXPECT_TRUE(hb.ordered(s2t, s3t));
    EXPECT_TRUE(hb.ordered(op1, op3));
    EXPECT_FALSE(hb.ordered(op3, op1));
    // Intermediate links too.
    EXPECT_TRUE(hb.ordered(op1, s2s));
    EXPECT_TRUE(hb.ordered(s1s, op3));
}

TEST(HappensBefore, SyncOrderUsesCommitTimeNotTraceOrder)
{
    ExecutionTrace t;
    // Added out of commit order.
    int late = t.add(mk(0, 0, AccessKind::SyncWrite, 9, 50));
    int early = t.add(mk(1, 0, AccessKind::SyncWrite, 9, 10));
    HappensBefore hb(t);
    EXPECT_TRUE(hb.ordered(early, late));
    EXPECT_FALSE(hb.ordered(late, early));
}

TEST(HappensBefore, IrreflexiveAndAcyclic)
{
    ExecutionTrace t;
    int a = t.add(mk(0, 0, AccessKind::SyncWrite, 1, 0));
    int b = t.add(mk(0, 1, AccessKind::SyncWrite, 1, 1));
    HappensBefore hb(t);
    EXPECT_TRUE(hb.acyclic());
    EXPECT_FALSE(hb.ordered(a, a));
    EXPECT_FALSE(hb.ordered(b, b));
}

TEST(HappensBefore, ArtificialCycleIsReportedNotSilent)
{
    // po gives sa->sb and ta->tb; inverted commit ticks give the so
    // edges tb->sa (location 100) and sb->ta (location 101), closing a
    // 4-cycle. No execution of the idealized or simulated machines can
    // produce this, but a hand-built trace can — acyclic() must say so
    // instead of leaving callers with a silently partial closure.
    ExecutionTrace t;
    int sa = t.add(mk(0, 0, AccessKind::SyncWrite, 100, 10));
    int sb = t.add(mk(0, 1, AccessKind::SyncWrite, 101, 1));
    int ta = t.add(mk(1, 0, AccessKind::SyncWrite, 101, 5));
    int tb = t.add(mk(1, 1, AccessKind::SyncWrite, 100, 2));
    HappensBefore hb(t);
    // On cyclic input the closure is only partial (even direct edges may
    // be missing), so the one reliable signal is the cycle report —
    // checkTrace() keys its degenerate-verdict flag off it.
    EXPECT_FALSE(hb.acyclic());
    EXPECT_FALSE(hb.ordered(sa, sa));
    (void)sb;
    (void)ta;
    (void)tb;
}

TEST(HappensBefore, MachineTracesAreAcyclic)
{
    // Every trace built with consistent commit ticks stays acyclic.
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::SyncWrite, 100, 0));
    t.add(mk(0, 1, AccessKind::SyncWrite, 101, 1));
    t.add(mk(1, 0, AccessKind::SyncWrite, 101, 2));
    t.add(mk(1, 1, AccessKind::SyncWrite, 100, 3));
    HappensBefore hb(t);
    EXPECT_TRUE(hb.acyclic());
}

TEST(HappensBefore, EmptyTrace)
{
    ExecutionTrace t;
    HappensBefore hb(t);
    EXPECT_EQ(hb.size(), 0);
    EXPECT_FALSE(hb.ordered(0, 0));
}

} // namespace
} // namespace wo
