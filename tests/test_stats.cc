/**
 * @file
 * Unit tests for the statistics registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace wo {
namespace {

TEST(StatSet, CountersStartAtZero)
{
    StatSet s;
    EXPECT_EQ(s.get("nope"), 0u);
    EXPECT_FALSE(s.has("nope"));
}

TEST(StatSet, IncAccumulates)
{
    StatSet s;
    s.inc("a");
    s.inc("a", 4);
    EXPECT_EQ(s.get("a"), 5u);
    EXPECT_TRUE(s.has("a"));
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.inc("a", 10);
    s.set("a", 3);
    EXPECT_EQ(s.get("a"), 3u);
}

TEST(StatSet, MaxOfKeepsMaximum)
{
    StatSet s;
    s.maxOf("m", 5);
    s.maxOf("m", 2);
    s.maxOf("m", 9);
    EXPECT_EQ(s.get("m"), 9u);
}

TEST(StatSet, MergeSums)
{
    StatSet a, b;
    a.inc("x", 1);
    a.inc("y", 2);
    b.inc("y", 3);
    b.inc("z", 4);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 1u);
    EXPECT_EQ(a.get("y"), 5u);
    EXPECT_EQ(a.get("z"), 4u);
}

TEST(StatSet, DumpFiltersByPrefix)
{
    StatSet s;
    s.inc("cache.hits", 7);
    s.inc("cache.misses", 3);
    s.inc("net.msgs", 11);
    std::ostringstream oss;
    s.dump(oss, "cache.");
    std::string out = oss.str();
    EXPECT_NE(out.find("cache.hits"), std::string::npos);
    EXPECT_NE(out.find("cache.misses"), std::string::npos);
    EXPECT_EQ(out.find("net.msgs"), std::string::npos);
}

TEST(StatSet, DumpJsonEmitsSortedWellFormedObject)
{
    StatSet s;
    s.inc("net.msgs", 11);
    s.inc("cache.hits", 7);
    std::ostringstream oss;
    s.dumpJson(oss);
    EXPECT_EQ(oss.str(), "{\n  \"cache.hits\": 7,\n  \"net.msgs\": 11\n}");
}

TEST(StatSet, DumpJsonEmptyIsEmptyObject)
{
    StatSet s;
    std::ostringstream oss;
    s.dumpJson(oss);
    EXPECT_EQ(oss.str(), "{}");

    // A filter matching nothing also yields the empty object.
    s.inc("a.b", 1);
    std::ostringstream oss2;
    s.dumpJson(oss2, "zzz.");
    EXPECT_EQ(oss2.str(), "{}");
}

TEST(StatSet, DumpJsonFiltersByPrefixAndIndents)
{
    StatSet s;
    s.inc("cache.hits", 7);
    s.inc("net.msgs", 11);
    std::ostringstream oss;
    s.dumpJson(oss, "cache.", 2);
    EXPECT_EQ(oss.str(), "{\n    \"cache.hits\": 7\n  }");
}

TEST(StatSet, DumpJsonEscapesNameMetacharacters)
{
    StatSet s;
    s.inc("we\"ird\\name", 1);
    std::ostringstream oss;
    s.dumpJson(oss);
    EXPECT_EQ(oss.str(), "{\n  \"we\\\"ird\\\\name\": 1\n}");
}

TEST(StatSet, ClearEmpties)
{
    StatSet s;
    s.inc("a");
    s.clear();
    EXPECT_FALSE(s.has("a"));
    EXPECT_TRUE(s.all().empty());
}

} // namespace
} // namespace wo
