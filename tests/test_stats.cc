/**
 * @file
 * Unit tests for the statistics registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace wo {
namespace {

TEST(StatSet, CountersStartAtZero)
{
    StatSet s;
    EXPECT_EQ(s.get("nope"), 0u);
    EXPECT_FALSE(s.has("nope"));
}

TEST(StatSet, IncAccumulates)
{
    StatSet s;
    s.inc("a");
    s.inc("a", 4);
    EXPECT_EQ(s.get("a"), 5u);
    EXPECT_TRUE(s.has("a"));
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.inc("a", 10);
    s.set("a", 3);
    EXPECT_EQ(s.get("a"), 3u);
}

TEST(StatSet, MaxOfKeepsMaximum)
{
    StatSet s;
    s.maxOf("m", 5);
    s.maxOf("m", 2);
    s.maxOf("m", 9);
    EXPECT_EQ(s.get("m"), 9u);
}

TEST(StatSet, MergeSums)
{
    StatSet a, b;
    a.inc("x", 1);
    a.inc("y", 2);
    b.inc("y", 3);
    b.inc("z", 4);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 1u);
    EXPECT_EQ(a.get("y"), 5u);
    EXPECT_EQ(a.get("z"), 4u);
}

TEST(StatSet, MergeCombinesMaxKindWithMax)
{
    // Regression: merge() used to sum every shared name, so high-water
    // marks (cacheN.counter_max) merged across campaign shards reported
    // a level no single run ever reached.
    StatSet a, b, c;
    a.maxOf("cache0.counter_max", 5);
    b.maxOf("cache0.counter_max", 9);
    c.maxOf("cache0.counter_max", 3);
    a.merge(b);
    EXPECT_EQ(a.get("cache0.counter_max"), 9u);
    a.merge(c);
    EXPECT_EQ(a.get("cache0.counter_max"), 9u);
}

TEST(StatSet, MergeAdoptsKindForStatsAbsentOnThisSide)
{
    // A max-kind stat absent locally must arrive as max-kind, so a later
    // merge still takes the maximum instead of summing.
    StatSet a, b, c;
    b.maxOf("m", 7);
    c.maxOf("m", 5);
    a.merge(b);
    a.merge(c);
    EXPECT_EQ(a.get("m"), 7u);
}

TEST(StatSet, MergeMixedKindsInOnePass)
{
    StatSet a, b;
    a.inc("events", 10);
    a.maxOf("depth", 4);
    b.inc("events", 3);
    b.maxOf("depth", 2);
    a.merge(b);
    EXPECT_EQ(a.get("events"), 13u);
    EXPECT_EQ(a.get("depth"), 4u);
}

TEST(StatSet, HandlePathMatchesStringPath)
{
    // Components bump interned handles on the hot path; harnesses use
    // names. Both must produce identical reported state.
    StatSet via_handle, via_string;

    StatHandle hits = via_handle.handle("cache.hits");
    StatHandle depth =
        via_handle.handle("cache.depth", StatSet::Kind::Max);
    via_handle.inc(hits);
    via_handle.inc(hits, 4);
    via_handle.maxOf(depth, 6);
    via_handle.maxOf(depth, 2);

    via_string.inc("cache.hits");
    via_string.inc("cache.hits", 4);
    via_string.maxOf("cache.depth", 6);
    via_string.maxOf("cache.depth", 2);

    EXPECT_EQ(via_handle.all(), via_string.all());
    std::ostringstream jh, js;
    via_handle.dumpJson(jh);
    via_string.dumpJson(js);
    EXPECT_EQ(jh.str(), js.str());

    // And the two paths interoperate on one set: same name, same slot.
    via_handle.inc("cache.hits", 5);
    EXPECT_EQ(via_handle.get("cache.hits"), 10u);
}

TEST(StatSet, HandleIsIdempotentAndReservationInvisible)
{
    StatSet s;
    StatHandle h1 = s.handle("x");
    StatHandle h2 = s.handle("x");
    // Interning alone must not surface the stat in any report.
    EXPECT_FALSE(s.has("x"));
    EXPECT_TRUE(s.all().empty());
    std::ostringstream oss;
    s.dumpJson(oss);
    EXPECT_EQ(oss.str(), "{}");

    s.inc(h1, 2);
    s.inc(h2, 3);
    EXPECT_TRUE(s.has("x"));
    EXPECT_EQ(s.get("x"), 5u);
}

TEST(StatSet, DefaultHandleIsInvalid)
{
    StatHandle h;
    EXPECT_FALSE(h.valid());
    StatSet s;
    EXPECT_TRUE(s.handle("a").valid());
}

TEST(StatSet, DumpFiltersByPrefix)
{
    StatSet s;
    s.inc("cache.hits", 7);
    s.inc("cache.misses", 3);
    s.inc("net.msgs", 11);
    std::ostringstream oss;
    s.dump(oss, "cache.");
    std::string out = oss.str();
    EXPECT_NE(out.find("cache.hits"), std::string::npos);
    EXPECT_NE(out.find("cache.misses"), std::string::npos);
    EXPECT_EQ(out.find("net.msgs"), std::string::npos);
}

TEST(StatSet, DumpJsonEmitsSortedWellFormedObject)
{
    StatSet s;
    s.inc("net.msgs", 11);
    s.inc("cache.hits", 7);
    std::ostringstream oss;
    s.dumpJson(oss);
    EXPECT_EQ(oss.str(), "{\n  \"cache.hits\": 7,\n  \"net.msgs\": 11\n}");
}

TEST(StatSet, DumpJsonEmptyIsEmptyObject)
{
    StatSet s;
    std::ostringstream oss;
    s.dumpJson(oss);
    EXPECT_EQ(oss.str(), "{}");

    // A filter matching nothing also yields the empty object.
    s.inc("a.b", 1);
    std::ostringstream oss2;
    s.dumpJson(oss2, "zzz.");
    EXPECT_EQ(oss2.str(), "{}");
}

TEST(StatSet, DumpJsonFiltersByPrefixAndIndents)
{
    StatSet s;
    s.inc("cache.hits", 7);
    s.inc("net.msgs", 11);
    std::ostringstream oss;
    s.dumpJson(oss, "cache.", 2);
    EXPECT_EQ(oss.str(), "{\n    \"cache.hits\": 7\n  }");
}

TEST(StatSet, DumpJsonEscapesNameMetacharacters)
{
    StatSet s;
    s.inc("we\"ird\\name", 1);
    std::ostringstream oss;
    s.dumpJson(oss);
    EXPECT_EQ(oss.str(), "{\n  \"we\\\"ird\\\\name\": 1\n}");
}

TEST(StatSet, ResetZeroesAndRevertsToUntouched)
{
    StatSet s;
    s.inc("a", 7);
    s.maxOf("m", 9);
    s.reset();
    // Reset stats are invisible everywhere, exactly like a fresh set.
    EXPECT_FALSE(s.has("a"));
    EXPECT_FALSE(s.has("m"));
    EXPECT_EQ(s.get("a"), 0u);
    EXPECT_TRUE(s.all().empty());
    std::ostringstream oss;
    s.dumpJson(oss);
    EXPECT_EQ(oss.str(), "{}");
}

TEST(StatSet, ResetKeepsHandlesValidAndKinds)
{
    // The pool's whole point: components intern handles once at
    // construction and keep bumping them across System resets. The
    // handles must stay bound to their slots, with kinds intact.
    StatSet s;
    StatHandle hits = s.handle("cache.hits");
    StatHandle depth = s.handle("cache.depth", StatSet::Kind::Max);
    s.inc(hits, 5);
    s.maxOf(depth, 8);

    s.reset();
    s.inc(hits, 2);
    s.maxOf(depth, 3);
    s.maxOf(depth, 1);
    EXPECT_EQ(s.get("cache.hits"), 2u);  // not 7: reset zeroed it
    EXPECT_EQ(s.get("cache.depth"), 3u); // max-kind survived reset

    // Post-reset state is indistinguishable from a fresh set driven
    // through the same operations.
    StatSet fresh;
    fresh.inc("cache.hits", 2);
    fresh.maxOf("cache.depth", 3);
    fresh.maxOf("cache.depth", 1);
    EXPECT_EQ(s.all(), fresh.all());
    std::ostringstream a, b;
    s.dumpJson(a);
    fresh.dumpJson(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(StatSet, ResetThenMergeMatchesFresh)
{
    // Campaign merge after a reset must behave as if the set were new
    // (kind adoption included).
    StatSet s, other;
    s.maxOf("m", 100);
    s.reset();
    other.maxOf("m", 4);
    s.merge(other);
    EXPECT_EQ(s.get("m"), 4u); // 100 must not survive the reset
}

TEST(StatSet, ClearEmpties)
{
    StatSet s;
    s.inc("a");
    s.clear();
    EXPECT_FALSE(s.has("a"));
    EXPECT_TRUE(s.all().empty());
}

} // namespace
} // namespace wo
