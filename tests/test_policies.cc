/**
 * @file
 * Unit tests for the consistency-policy issue gates and hints.
 */

#include <gtest/gtest.h>

#include "consistency/policy.hh"

namespace wo {
namespace {

ProcState
st(int outstanding, int not_gp, int sync_nc, int sync_ngp)
{
    ProcState s;
    s.outstanding = outstanding;
    s.notGloballyPerformed = not_gp;
    s.syncsNotCommitted = sync_nc;
    s.syncsNotGloballyPerformed = sync_ngp;
    return s;
}

TEST(Policies, FactoryProducesAllKinds)
{
    for (PolicyKind k : {PolicyKind::Sc, PolicyKind::Def1,
                         PolicyKind::Def2Drf0, PolicyKind::Def2Drf1,
                         PolicyKind::Relaxed}) {
        auto p = makePolicy(k);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), toString(k));
    }
}

TEST(Policies, ScGatesOnAnythingOutstanding)
{
    auto p = makePolicy(PolicyKind::Sc);
    EXPECT_TRUE(p->mayIssue(AccessKind::DataRead, st(0, 0, 0, 0)));
    EXPECT_FALSE(p->mayIssue(AccessKind::DataRead, st(0, 1, 0, 0)));
    EXPECT_FALSE(p->mayIssue(AccessKind::SyncRmw, st(1, 1, 0, 0)));
    EXPECT_FALSE(p->requiresCache());
    EXPECT_FALSE(p->allowWriteBuffer());
}

TEST(Policies, Def1GatesSyncsOnAllGpAndDataOnSyncGp)
{
    auto p = makePolicy(PolicyKind::Def1);
    // Data ops overlap freely while only data is pending.
    EXPECT_TRUE(p->mayIssue(AccessKind::DataWrite, st(3, 3, 0, 0)));
    // ... but not past a non-GP sync (condition 3).
    EXPECT_FALSE(p->mayIssue(AccessKind::DataWrite, st(1, 1, 0, 1)));
    // Syncs wait for everything (condition 2).
    EXPECT_FALSE(p->mayIssue(AccessKind::SyncWrite, st(1, 1, 0, 0)));
    EXPECT_TRUE(p->mayIssue(AccessKind::SyncWrite, st(0, 0, 0, 0)));
    // A committed-but-not-GP sync still blocks both.
    EXPECT_FALSE(p->mayIssue(AccessKind::SyncRmw, st(0, 1, 0, 1)));
}

TEST(Policies, Def2GatesOnlyOnUncommittedSyncs)
{
    for (PolicyKind k : {PolicyKind::Def2Drf0, PolicyKind::Def2Drf1}) {
        auto p = makePolicy(k);
        // Pending data never blocks issue (condition 4 only).
        EXPECT_TRUE(p->mayIssue(AccessKind::DataWrite, st(5, 5, 0, 0)));
        EXPECT_TRUE(p->mayIssue(AccessKind::SyncRmw, st(5, 5, 0, 0)));
        // A non-GP but committed sync does not block...
        EXPECT_TRUE(p->mayIssue(AccessKind::DataRead, st(0, 1, 0, 1)));
        // ... an uncommitted sync blocks everything.
        EXPECT_FALSE(p->mayIssue(AccessKind::DataRead, st(1, 1, 1, 1)));
        EXPECT_FALSE(p->mayIssue(AccessKind::SyncWrite, st(1, 1, 1, 1)));
        EXPECT_TRUE(p->requiresCache());
        EXPECT_TRUE(p->useReserveBits());
    }
}

TEST(Policies, Drf0AndDrf1DifferOnlyInSyncReadTreatment)
{
    auto drf0 = makePolicy(PolicyKind::Def2Drf0);
    auto drf1 = makePolicy(PolicyKind::Def2Drf1);
    EXPECT_TRUE(drf0->syncReadsAsWrites());
    EXPECT_FALSE(drf1->syncReadsAsWrites());
}

TEST(Policies, RelaxedGatesNothing)
{
    auto p = makePolicy(PolicyKind::Relaxed);
    EXPECT_TRUE(p->mayIssue(AccessKind::DataRead, st(9, 9, 3, 3)));
    EXPECT_TRUE(p->mayIssue(AccessKind::SyncRmw, st(9, 9, 3, 3)));
    EXPECT_TRUE(p->allowWriteBuffer());
    EXPECT_FALSE(p->useReserveBits());
}

} // namespace
} // namespace wo
