/**
 * @file
 * Unit tests for the DRF0 checker (Definition 3) on traces and programs.
 */

#include <gtest/gtest.h>

#include "core/drf0_checker.hh"
#include "cpu/program_builder.hh"

namespace wo {
namespace {

Access
mk(ProcId proc, int po, AccessKind kind, Addr addr, Tick commit)
{
    Access a;
    a.proc = proc;
    a.poIndex = po;
    a.kind = kind;
    a.addr = addr;
    a.commitTick = commit;
    a.gpTick = commit;
    return a;
}

TEST(Drf0Trace, OrderedConflictIsRaceFree)
{
    // W(P0,x) -> S(P0,s) -> S(P1,s) -> R(P1,x): ordered by hb.
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    t.add(mk(0, 1, AccessKind::SyncWrite, 1, 1));
    t.add(mk(1, 0, AccessKind::SyncRmw, 1, 2));
    t.add(mk(1, 1, AccessKind::DataRead, 0, 3));
    Drf0TraceReport r = checkTrace(t);
    EXPECT_TRUE(r.raceFree);
    EXPECT_TRUE(r.races.empty());
}

TEST(Drf0Trace, UnorderedConflictIsRace)
{
    ExecutionTrace t;
    int w = t.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    int r = t.add(mk(1, 0, AccessKind::DataRead, 0, 1));
    Drf0TraceReport rep = checkTrace(t);
    EXPECT_FALSE(rep.raceFree);
    ASSERT_EQ(rep.races.size(), 1u);
    EXPECT_EQ(rep.races[0].first, w);
    EXPECT_EQ(rep.races[0].second, r);
}

TEST(Drf0Trace, ConcurrentReadsDoNotRace)
{
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataRead, 0, 0));
    t.add(mk(1, 0, AccessKind::DataRead, 0, 1));
    EXPECT_TRUE(checkTrace(t).raceFree);
}

TEST(Drf0Trace, ConcurrentSyncsSameLocationDoNotRace)
{
    // Syncs to the same location are always so-ordered.
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::SyncRmw, 7, 0));
    t.add(mk(1, 0, AccessKind::SyncRmw, 7, 1));
    EXPECT_TRUE(checkTrace(t).raceFree);
}

TEST(Drf0Trace, SyncOnOneLocationDoesNotOrderOtherLocation)
{
    // P0: W(x) S(a).  P1: S(b) R(x).  Different sync locations: race.
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    t.add(mk(0, 1, AccessKind::SyncWrite, 1, 1));
    t.add(mk(1, 0, AccessKind::SyncRmw, 2, 2));
    t.add(mk(1, 1, AccessKind::DataRead, 0, 3));
    EXPECT_FALSE(checkTrace(t).raceFree);
}

TEST(Drf0Trace, WriteWriteConflictDetected)
{
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    t.add(mk(1, 0, AccessKind::DataWrite, 0, 1));
    Drf0TraceReport rep = checkTrace(t);
    EXPECT_FALSE(rep.raceFree);
}

TEST(Drf0Trace, SyncDataConflictOnSameLocationIsRace)
{
    // A data access racing with a sync access to the same location is
    // still a race under DRF0 (so only orders sync-sync pairs).
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataWrite, 7, 0));
    t.add(mk(1, 0, AccessKind::SyncRmw, 7, 1));
    EXPECT_FALSE(checkTrace(t).raceFree);
}

TEST(Drf0Program, ProperlyLockedProgramObeysDrf0)
{
    // Both processors try once to TAS-acquire a lock; only a holder
    // writes x. (Bounded retry keeps the interleaving space enumerable —
    // unbounded spins make exhaustive enumeration exponential.)
    MultiProgram mp("locked");
    const Addr X = 0, L = 1;
    for (int p = 0; p < 2; ++p) {
        ProgramBuilder b;
        b.tas(0, L)
            .bne(0, 0, "skip")
            .store(X, static_cast<Word>(p + 1))
            .unset(L)
            .label("skip")
            .halt();
        mp.addProgram(b.build());
    }
    Drf0ProgramReport r = checkProgram(mp);
    EXPECT_TRUE(r.obeysDrf0) << r.witnessReport.toString(r.witness);
    EXPECT_FALSE(r.bounded);
    EXPECT_GT(r.executions, 0u);
}

TEST(Drf0Program, SpinLockProgramSampledIsRaceFree)
{
    // The unbounded-spin version, checked over sampled schedules.
    MultiProgram mp("spinlocked");
    const Addr X = 0, L = 1;
    for (int p = 0; p < 2; ++p) {
        ProgramBuilder b;
        b.label("acq")
            .tas(0, L)
            .bne(0, 0, "acq")
            .store(X, static_cast<Word>(p + 1))
            .unset(L)
            .halt();
        mp.addProgram(b.build());
    }
    Drf0ProgramReport r = checkProgramSampled(mp, 200, 7);
    EXPECT_TRUE(r.obeysDrf0) << r.witnessReport.toString(r.witness);
    EXPECT_TRUE(r.bounded);
    EXPECT_EQ(r.executions, 200u);
}

TEST(Drf0Program, SampledCheckFindsObviousRace)
{
    MultiProgram mp("racy");
    ProgramBuilder p0, p1;
    p0.store(0, 1).halt();
    p1.load(0, 0).halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    Drf0ProgramReport r = checkProgramSampled(mp, 50, 3);
    EXPECT_FALSE(r.obeysDrf0);
}

TEST(Drf0Program, DekkerViolatesDrf0)
{
    MultiProgram mp("dekker");
    ProgramBuilder p1, p2;
    p1.store(0, 1).load(0, 1).halt();
    p2.store(1, 1).load(0, 0).halt();
    mp.addProgram(p1.build());
    mp.addProgram(p2.build());
    Drf0ProgramReport r = checkProgram(mp);
    EXPECT_FALSE(r.obeysDrf0);
    EXPECT_FALSE(r.witnessReport.raceFree);
    EXPECT_GT(r.witness.size(), 0);
}

TEST(Drf0Program, SingleProcessorAlwaysDrf0)
{
    MultiProgram mp("solo");
    ProgramBuilder b;
    b.store(0, 1).load(0, 0).store(0, 2).halt();
    mp.addProgram(b.build());
    Drf0ProgramReport r = checkProgram(mp);
    EXPECT_TRUE(r.obeysDrf0);
}

TEST(Drf0Program, FlagSpinWithDataReadIsRacy)
{
    // Spinning on an ordinary data read (the barrier-count example of
    // Section 6) is NOT allowed by DRF0.
    MultiProgram mp("flagspin");
    const Addr F = 0;
    ProgramBuilder p0, p1;
    p0.label("spin").load(0, F).beq(0, 0, "spin").halt();
    p1.store(F, 1).halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    Drf0CheckLimits lim;
    lim.maxStepsPerExecution = 40;
    Drf0ProgramReport r = checkProgram(mp, lim);
    EXPECT_FALSE(r.obeysDrf0);
}

TEST(Drf0Program, FlagSpinWithSyncOpsIsDrf0)
{
    // The same spin, but communicating through sync operations, is fine.
    MultiProgram mp("syncspin");
    const Addr F = 0;
    ProgramBuilder p0, p1;
    p0.label("spin").test(0, F).beq(0, 0, "spin").halt();
    p1.unset(F, 1).halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    Drf0CheckLimits lim;
    lim.maxStepsPerExecution = 40;
    Drf0ProgramReport r = checkProgram(mp, lim);
    // Executions are infinite (unfair schedules spin forever), so the
    // check is bounded, but no race exists in any explored prefix.
    EXPECT_TRUE(r.obeysDrf0);
}

} // namespace
} // namespace wo
