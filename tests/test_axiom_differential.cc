/**
 * @file
 * Differential tests pinning the axiomatic backend to the rest of the
 * stack:
 *
 *  - Golden oracle: the "sc" model's allowed-outcome set must equal the
 *    brute-force interleaving enumeration of the idealized machine,
 *    exactly, for the whole shipped corpus and for a fleet of random
 *    generated programs (SC = "some interleaving produces it").
 *  - Simulator containment: every outcome any simulated machine
 *    produces must be allowed by the model bounding its policy — the
 *    corpus via the litmus runner's built-in axiom stage, random
 *    programs via direct System runs against sc/wb sets.
 *  - Mode agreement: the naive baseline enumerator and the pruned
 *    production enumerator compute identical allowed sets.
 */

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "axiom/enumerate.hh"
#include "core/idealized.hh"
#include "litmus/compiler.hh"
#include "litmus/runner.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/random_gen.hh"

namespace wo {
namespace {

using litmus_dsl::CompiledLitmus;

std::vector<CompiledLitmus>
loadCorpus()
{
    std::vector<CompiledLitmus> tests;
    for (const std::string &f :
         litmus_dsl::findLitmusFiles({WO_LITMUS_DIR}))
        tests.push_back(litmus_dsl::compileLitmusFile(f));
    return tests;
}

/** Small branchy-but-enumerable generator shapes (spinAcquire off keeps
 * the interleaving space finite for the brute-force oracle). */
RandomWorkloadConfig
tinyCfg(std::uint64_t seed)
{
    RandomWorkloadConfig cfg;
    cfg.numProcs = 2;
    cfg.numLocks = 1;
    cfg.locsPerLock = 2;
    cfg.privateLocs = 1;
    cfg.sectionsPerProc = 1;
    cfg.opsPerSection = 2;
    cfg.privateOpsBetween = 1;
    cfg.spinAcquire = false;
    cfg.seed = seed;
    return cfg;
}

/** The random fleet: >= 200 programs, half lock-disciplined (DRF0 by
 * construction), half with deliberate unguarded races. */
std::vector<MultiProgram>
randomFleet()
{
    std::vector<MultiProgram> fleet;
    for (std::uint64_t seed = 1; seed <= 100; ++seed)
        fleet.push_back(randomDrf0Program(tinyCfg(seed)));
    for (std::uint64_t seed = 1; seed <= 100; ++seed)
        fleet.push_back(randomRacyProgram(tinyCfg(1000 + seed), 1));
    return fleet;
}

TEST(AxiomDifferential, CorpusScEqualsIdealizedEnumeration)
{
    for (const CompiledLitmus &t : loadCorpus()) {
        axiom::ModelContext ctx;
        axiom::AxiomResult ax =
            axiom::enumerateAllowed(t.program, axiom::axiomModels(), ctx);
        ASSERT_TRUE(ax.complete) << t.name;

        OutcomeSet oracle = enumerateOutcomes(t.program);
        ASSERT_FALSE(oracle.bounded) << t.name;
        EXPECT_EQ(ax.allowed.at("sc"), oracle.outcomes) << t.name;

        // wb is an envelope: it may only widen the interleaving set.
        const std::set<RunResult> &wb = ax.allowed.at("wb");
        for (const RunResult &r : oracle.outcomes)
            EXPECT_TRUE(wb.count(r)) << t.name;
    }
}

TEST(AxiomDifferential, CorpusRunnerObservationsAreAllowed)
{
    litmus_dsl::RunnerOptions options;
    options.seeds = 20;
    ASSERT_TRUE(options.axiomCheck); // differential stage is default-on
    litmus_dsl::CorpusReport report =
        litmus_dsl::runCorpus(loadCorpus(), options);
    EXPECT_TRUE(report.pass);
    for (const litmus_dsl::TestReport &tr : report.tests) {
        EXPECT_TRUE(tr.axiomChecked) << tr.name;
        EXPECT_TRUE(tr.axiomComplete) << tr.name;
        EXPECT_TRUE(tr.pass) << tr.name << ": "
                             << (tr.failures.empty() ? ""
                                                     : tr.failures[0]);
        for (const litmus_dsl::CellReport &cell : tr.cells) {
            EXPECT_TRUE(cell.axiomForbidden.empty())
                << tr.name << " " << toString(cell.policy) << "/"
                << cell.variant << " observed forbidden outcome "
                << (cell.axiomForbidden.empty()
                        ? ""
                        : cell.axiomForbidden[0]);
        }
    }
}

TEST(AxiomDifferential, RandomProgramsScEqualsIdealizedEnumeration)
{
    int checked = 0;
    for (const MultiProgram &mp : randomFleet()) {
        axiom::ModelContext ctx;
        axiom::AxiomResult ax =
            axiom::enumerateAllowed(mp, axiom::axiomModels(), ctx);
        ASSERT_TRUE(ax.complete) << "program seed-idx " << checked;

        OutcomeSet oracle = enumerateOutcomes(mp);
        ASSERT_FALSE(oracle.bounded) << "program seed-idx " << checked;
        ASSERT_EQ(ax.allowed.at("sc"), oracle.outcomes)
            << "program seed-idx " << checked << "\n"
            << mp.toString();
        ++checked;
    }
    EXPECT_GE(checked, 200);
}

TEST(AxiomDifferential, RandomProgramSimulatorOutcomesWithinAllowed)
{
    const MachineSpec &bus = machineOrThrow("bus");
    int checked = 0;
    for (const MultiProgram &mp : randomFleet()) {
        axiom::ModelContext ctx;
        axiom::AxiomResult ax =
            axiom::enumerateAllowed(mp, axiom::axiomModels(), ctx);
        ASSERT_TRUE(ax.complete) << "program seed-idx " << checked;

        // SC hardware must land inside the interleaving set...
        {
            System sys(mp, bus.config(PolicyKind::Sc));
            ASSERT_TRUE(sys.run()) << "program seed-idx " << checked;
            EXPECT_TRUE(ax.allowed.at("sc").count(sys.result()))
                << "SC outcome outside sc-allowed, seed-idx " << checked
                << "\n" << mp.toString();
        }
        // ...and the write-buffer machine inside the wb envelope.
        {
            System sys(mp, bus.config(PolicyKind::Relaxed));
            ASSERT_TRUE(sys.run()) << "program seed-idx " << checked;
            EXPECT_TRUE(ax.allowed.at("wb").count(sys.result()))
                << "Relaxed outcome outside wb-allowed, seed-idx "
                << checked << "\n" << mp.toString();
        }
        ++checked;
    }
    EXPECT_GE(checked, 200);
}

TEST(AxiomDifferential, NaiveAndPrunedModesAgreeOnRandomPrograms)
{
    // The naive mode is the bench baseline; it must compute the same
    // allowed sets wherever it completes. Keep to a slice of the fleet
    // — naive enumeration is exponentially more work by design.
    int compared = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        MultiProgram mp = randomDrf0Program(tinyCfg(seed));
        axiom::ModelContext ctx;
        axiom::AxiomLimits naive;
        naive.pruning = false;
        axiom::AxiomResult p =
            axiom::enumerateAllowed(mp, axiom::axiomModels(), ctx);
        axiom::AxiomResult n =
            axiom::enumerateAllowed(mp, axiom::axiomModels(), ctx, naive);
        if (!p.complete || !n.complete)
            continue;
        EXPECT_EQ(p.allowed, n.allowed) << "seed " << seed;
        ++compared;
    }
    EXPECT_GE(compared, 5);
}

} // namespace
} // namespace wo
