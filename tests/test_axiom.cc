/**
 * @file
 * Unit tests for the axiomatic backend (src/axiom/): relation graphs,
 * path enumeration, candidate generation, and the allowed-set
 * differences that discriminate the shipped models — sc must forbid
 * exactly the interleaving-impossible outcomes, wb must additionally
 * admit the write-buffer reorderings, and drf0sc must switch between
 * them on the program's DRF0 status.
 */

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "axiom/enumerate.hh"
#include "axiom/relation.hh"
#include "litmus/compiler.hh"
#include "litmus/expect.hh"
#include "litmus/runner.hh"

namespace wo {
namespace axiom {
namespace {

using litmus_dsl::CompiledLitmus;
using litmus_dsl::ObservedVar;

std::string
litmusPath(const std::string &file)
{
    return std::string(WO_LITMUS_DIR) + "/" + file;
}

/** Allowed outcomes of @p model on a litmus file, projected to the
 * clause's outcome-key form ("P0:r0=0 P1:r0=0"). */
std::set<std::string>
allowedKeys(const CompiledLitmus &test, const std::string &model,
            bool program_drf0 = false)
{
    ModelContext ctx;
    ctx.programDrf0 = program_drf0;
    AxiomResult res =
        enumerateAllowed(test.program, axiomModels(), ctx, {});
    EXPECT_TRUE(res.complete) << test.name;
    std::vector<ObservedVar> vars =
        litmus_dsl::observedVars(test.clause.cond);
    std::set<std::string> keys;
    for (const RunResult &r : res.allowed.at(model)) {
        RunResult filled = r;
        for (const auto &[loc, addr] : test.addrOf) {
            if (!filled.finalMemory.count(addr))
                filled.finalMemory[addr] = test.program.initialValue(addr);
        }
        keys.insert(litmus_dsl::outcomeKey(vars, filled, test.addrOf));
    }
    return keys;
}

/** The classic SB program, hand-built: P0 {W x=1; R y}, P1 {W y=1; R x}. */
MultiProgram
sbProgram()
{
    MultiProgram mp("sb");
    for (int p = 0; p < 2; ++p) {
        Program prog;
        Instruction st;
        st.op = Opcode::Store;
        st.addr = p == 0 ? 0 : 1;
        st.imm = 1;
        prog.push(st);
        Instruction ld;
        ld.op = Opcode::Load;
        ld.dst = 0;
        ld.addr = p == 0 ? 1 : 0;
        prog.push(ld);
        Instruction halt;
        halt.op = Opcode::Halt;
        prog.push(halt);
        mp.addProgram(prog);
    }
    return mp;
}

TEST(RelGraph, AcyclicAndCycleExtraction)
{
    RelGraph g(3);
    g.addEdge(0, 1, RelKind::Po);
    g.addEdge(1, 2, RelKind::Rf);
    EXPECT_TRUE(g.acyclic());
    EXPECT_TRUE(g.findCycle().empty());

    g.addEdge(2, 0, RelKind::Fr);
    EXPECT_FALSE(g.acyclic());
    std::vector<RelEdge> cycle = g.findCycle();
    ASSERT_EQ(cycle.size(), 3u);
    // Edge list is a closed walk: each edge ends where the next starts.
    for (std::size_t i = 0; i < cycle.size(); ++i)
        EXPECT_EQ(cycle[i].to, cycle[(i + 1) % cycle.size()].from);
}

TEST(RelGraph, ShortestCycleWins)
{
    RelGraph g(4);
    // A long cycle 0->1->2->3->0 and a short one 1->2->1.
    g.addEdge(0, 1, RelKind::Po);
    g.addEdge(1, 2, RelKind::Po);
    g.addEdge(2, 3, RelKind::Po);
    g.addEdge(3, 0, RelKind::Co);
    g.addEdge(2, 1, RelKind::Fr);
    EXPECT_EQ(g.findCycle().size(), 2u);
}

TEST(Paths, SbHasOnePathPerProcWithBothValues)
{
    MultiProgram mp = sbProgram();
    PathSet ps = enumeratePaths(mp, {});
    EXPECT_TRUE(ps.complete);
    ASSERT_EQ(ps.perProc.size(), 2u);
    for (const auto &paths : ps.perProc) {
        // Straight-line code, but paths fork on the load's value: one
        // path observing 0, one observing 1.
        ASSERT_EQ(paths.size(), 2u);
        std::set<Word> observed;
        for (const LocalPath &p : paths) {
            EXPECT_EQ(p.events.size(), 2u);
            observed.insert(p.events[1].valueRead);
        }
        EXPECT_EQ(observed, (std::set<Word>{0, 1}));
    }
    // The value-set fixpoint must offer both 0 (initial) and 1 (the
    // remote store) to each load.
    for (Addr a = 0; a < 2; ++a) {
        ASSERT_TRUE(ps.values.count(a));
        EXPECT_TRUE(ps.values.at(a).count(0));
        EXPECT_TRUE(ps.values.at(a).count(1));
    }
}

TEST(Enumerate, SbCandidateSpace)
{
    MultiProgram mp = sbProgram();
    EnumStats stats;
    std::uint64_t seen = 0;
    bool complete = enumerateCandidates(
        mp, {}, stats, [&](const Candidate &c) {
            ++seen;
            EXPECT_EQ(c.events.size(), 4u);
            EXPECT_EQ(c.rf.size(), 4u);
            // Every read sourced from init or a value-matching write.
            for (const AxEvent &e : c.events) {
                if (!e.reads())
                    continue;
                int src = c.rf[e.id];
                if (src == kInitialWrite) {
                    EXPECT_EQ(e.valueRead, 0);
                } else {
                    EXPECT_EQ(c.events[src].valueWritten, e.valueRead);
                }
            }
            return true;
        });
    EXPECT_TRUE(complete);
    // Two read values per load, one rf source each: four candidates
    // from the four path combinations.
    EXPECT_EQ(seen, 4u);
    EXPECT_EQ(stats.candidates, 4u);
    EXPECT_EQ(stats.combos, 4u);
}

TEST(Enumerate, CandidateOutcomeProjectsCoFinalValues)
{
    MultiProgram mp = sbProgram();
    EnumStats stats;
    enumerateCandidates(mp, {}, stats, [&](const Candidate &c) {
        RunResult r = c.outcome(mp);
        EXPECT_TRUE(r.allHalted);
        // Each location has exactly one write, so memory always ends 1.
        EXPECT_EQ(r.finalMemory.at(0), 1);
        EXPECT_EQ(r.finalMemory.at(1), 1);
        EXPECT_EQ(r.registers.size(), 2u);
        return true;
    });
}

TEST(Models, RegistryAndPolicyMapping)
{
    ASSERT_EQ(axiomModels().size(), 3u);
    EXPECT_NE(findAxiomModel("sc"), nullptr);
    EXPECT_NE(findAxiomModel("wb"), nullptr);
    EXPECT_NE(findAxiomModel("drf0sc"), nullptr);
    EXPECT_EQ(findAxiomModel("tso"), nullptr);

    EXPECT_EQ(modelForPolicy(PolicyKind::Sc)->name(), "sc");
    EXPECT_EQ(modelForPolicy(PolicyKind::Def1)->name(), "drf0sc");
    EXPECT_EQ(modelForPolicy(PolicyKind::Def2Drf0)->name(), "drf0sc");
    EXPECT_EQ(modelForPolicy(PolicyKind::Def2Drf1)->name(), "drf0sc");
    EXPECT_EQ(modelForPolicy(PolicyKind::Relaxed)->name(), "wb");
}

TEST(AllowedSets, SbScForbidsBothZeroWbAllowsIt)
{
    CompiledLitmus t =
        litmus_dsl::compileLitmusFile(litmusPath("sb.litmus"));
    std::set<std::string> sc = allowedKeys(t, "sc");
    std::set<std::string> wb = allowedKeys(t, "wb");
    EXPECT_EQ(sc.size(), 3u);
    EXPECT_EQ(wb.size(), 4u);
    EXPECT_FALSE(sc.count("P0:r0=0 P1:r0=0"));
    EXPECT_TRUE(wb.count("P0:r0=0 P1:r0=0"));
    // wb only widens sc: every interleaving outcome stays allowed.
    EXPECT_TRUE(std::includes(wb.begin(), wb.end(), sc.begin(), sc.end()));
}

TEST(AllowedSets, FencesOnBothSidesRestoreSc)
{
    CompiledLitmus t =
        litmus_dsl::compileLitmusFile(litmusPath("sb_fence.litmus"));
    EXPECT_EQ(allowedKeys(t, "wb"), allowedKeys(t, "sc"));
    EXPECT_FALSE(allowedKeys(t, "wb").count("P0:r0=0 P1:r0=0"));
}

TEST(AllowedSets, OneFenceIsNotEnough)
{
    CompiledLitmus t =
        litmus_dsl::compileLitmusFile(litmusPath("sb_onefence.litmus"));
    std::set<std::string> sc = allowedKeys(t, "sc");
    std::set<std::string> wb = allowedKeys(t, "wb");
    EXPECT_FALSE(sc.count("P0:r0=0 P1:r0=0"));
    EXPECT_TRUE(wb.count("P0:r0=0 P1:r0=0"));
}

TEST(AllowedSets, SyncSbDiscriminatesDrf0Sc)
{
    CompiledLitmus t =
        litmus_dsl::compileLitmusFile(litmusPath("sb_sync.litmus"));
    std::set<std::string> sc = allowedKeys(t, "sc");
    std::set<std::string> wb = allowedKeys(t, "wb");
    EXPECT_EQ(sc.size(), 3u);
    EXPECT_EQ(wb.size(), 4u);
    // All-sync means trivially DRF0: the conditional model promises SC.
    EXPECT_EQ(allowedKeys(t, "drf0sc", true), sc);
    // Treated as racy it would fall back to the raw envelope.
    EXPECT_EQ(allowedKeys(t, "drf0sc", false), wb);
}

TEST(AllowedSets, CoherenceHoldsEvenUnderWb)
{
    CompiledLitmus coww =
        litmus_dsl::compileLitmusFile(litmusPath("coww.litmus"));
    std::set<std::string> expect_final = {"x=2"};
    EXPECT_EQ(allowedKeys(coww, "sc"), expect_final);
    EXPECT_EQ(allowedKeys(coww, "wb"), expect_final);

    CompiledLitmus corr =
        litmus_dsl::compileLitmusFile(litmusPath("corr.litmus"));
    for (const std::string &k : allowedKeys(corr, "wb"))
        EXPECT_EQ(k.find("P1:r0=1 P1:r1=0"), std::string::npos) << k;

    CompiledLitmus corw =
        litmus_dsl::compileLitmusFile(litmusPath("corw.litmus"));
    std::set<std::string> wb = allowedKeys(corw, "wb");
    EXPECT_EQ(wb.size(), 3u);
    EXPECT_FALSE(wb.count("P0:r0=2 x=2"));
}

TEST(AllowedSets, LbAllowedOnlyByWb)
{
    CompiledLitmus t =
        litmus_dsl::compileLitmusFile(litmusPath("lb.litmus"));
    EXPECT_FALSE(allowedKeys(t, "sc").count("P0:r0=1 P1:r0=1"));
    EXPECT_TRUE(allowedKeys(t, "wb").count("P0:r0=1 P1:r0=1"));
}

TEST(Explain, SbBothZeroHasFrCycleUnderSc)
{
    MultiProgram mp = sbProgram();
    ModelContext ctx;
    Explanation ex = explainOutcome(
        mp, axiomModels(), ctx, [](const RunResult &r) {
            return r.registers[0][0] == 0 && r.registers[1][0] == 0;
        });
    ASSERT_TRUE(ex.matched);
    EXPECT_TRUE(ex.complete);
    ASSERT_EQ(ex.models.size(), 3u);
    for (const ModelExplanation &me : ex.models) {
        if (me.model == "sc") {
            EXPECT_FALSE(me.allowed);
            // The rejection is the classic store-buffering fr cycle.
            EXPECT_NE(me.cycle.find("--fr-->"), std::string::npos)
                << me.cycle;
            EXPECT_NE(me.cycle.find("--po-->"), std::string::npos)
                << me.cycle;
        } else {
            EXPECT_TRUE(me.allowed) << me.model;
            RunResult r = me.witness.outcome(mp);
            EXPECT_EQ(r.registers[0][0], 0);
            EXPECT_EQ(r.registers[1][0], 0);
        }
    }
}

TEST(Explain, UnreachableOutcomeMatchesNothing)
{
    MultiProgram mp = sbProgram();
    ModelContext ctx;
    Explanation ex = explainOutcome(
        mp, axiomModels(), ctx,
        [](const RunResult &r) { return r.registers[0][0] == 7; });
    EXPECT_FALSE(ex.matched);
    EXPECT_TRUE(ex.complete);
}

TEST(Enumerate, NaiveModeComputesIdenticalAllowedSets)
{
    for (const std::string &file :
         {"sb.litmus", "corr.litmus", "lb.litmus", "corw.litmus",
          "sb_fence.litmus"}) {
        CompiledLitmus t =
            litmus_dsl::compileLitmusFile(litmusPath(file));
        ModelContext ctx;
        AxiomLimits naive;
        naive.pruning = false;
        AxiomResult p =
            enumerateAllowed(t.program, axiomModels(), ctx, {});
        AxiomResult n =
            enumerateAllowed(t.program, axiomModels(), ctx, naive);
        ASSERT_TRUE(p.complete && n.complete) << file;
        EXPECT_EQ(p.allowed, n.allowed) << file;
        // Pruning must do strictly less completion work.
        EXPECT_LT(p.stats.candidatesConsidered,
                  n.stats.candidatesConsidered)
            << file;
    }
}

} // namespace
} // namespace axiom
} // namespace wo
