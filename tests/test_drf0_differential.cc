/**
 * @file
 * Differential tests pinning the streaming vector-clock DRF0 checker to
 * the historical bitset happens-before implementation:
 *
 *  - checkTrace() and checkTraceBitset() must agree on the verdict AND
 *    on the exact normalized race set, across the shipped litmus corpus
 *    and hundreds of random (program, schedule) combinations;
 *  - the online early-exit inside checkProgramSampled() must never
 *    change a verdict, execution count, or witness relative to an
 *    offline reference that race-checks every full trace;
 *  - the campaign Drf0Memo must return reports identical to the direct
 *    sampled check.
 */

#include <gtest/gtest.h>

#include "core/drf0_checker.hh"
#include "core/idealized.hh"
#include "litmus/compiler.hh"
#include "litmus/runner.hh"
#include "sim/rng.hh"
#include "workload/campaign.hh"
#include "workload/random_gen.hh"

namespace wo {
namespace {

/** Both checkers on one trace: same verdict, same normalized races. */
void
expectEquivalent(const ExecutionTrace &trace, const std::string &what)
{
    Drf0TraceReport vc = checkTrace(trace);
    Drf0TraceReport bitset = checkTraceBitset(trace);
    EXPECT_EQ(vc.raceFree, bitset.raceFree) << what;
    EXPECT_EQ(vc.races, bitset.races) << what;
    EXPECT_EQ(vc.hbCyclic, bitset.hbCyclic) << what;
}

/** One random-schedule trace of @p mp. */
ExecutionTrace
randomTrace(const MultiProgram &mp, std::uint64_t seed, int prefix = 200)
{
    Rng rng(seed);
    std::vector<ProcId> sched;
    sched.reserve(static_cast<std::size_t>(prefix));
    for (int i = 0; i < prefix; ++i)
        sched.push_back(static_cast<ProcId>(rng.below(mp.numProcs())));
    ExecutionTrace trace;
    runWithSchedule(mp, sched, &trace);
    return trace;
}

/**
 * The pre-vector-clock sampled check: identical schedule stream to
 * checkProgramSampled() (one shared Rng, same processor draws), but
 * every execution runs to completion and is race-checked offline with
 * the bitset oracle. The online early-exit must be invisible next to
 * this.
 */
Drf0ProgramReport
offlineSampled(const MultiProgram &program, int num_schedules,
               std::uint64_t seed, int max_steps = 10000)
{
    Drf0ProgramReport report;
    report.bounded = true;
    Rng rng(seed);
    int nprocs = program.numProcs();
    for (int s = 0; s < num_schedules && report.obeysDrf0; ++s) {
        IdealizedMachine m(program);
        int steps = 0;
        while (!m.allHalted() && steps < max_steps) {
            ProcId p = static_cast<ProcId>(rng.below(nprocs));
            while (m.halted(p))
                p = (p + 1) % nprocs;
            m.step(p);
            ++steps;
        }
        ++report.executions;
        Drf0TraceReport tr = checkTraceBitset(m.trace());
        if (!tr.raceFree) {
            report.obeysDrf0 = false;
            report.witness = m.trace();
            report.witnessReport = tr;
        }
    }
    return report;
}

RandomWorkloadConfig
smallCfg(std::uint64_t seed, int procs)
{
    RandomWorkloadConfig cfg;
    cfg.numProcs = procs;
    cfg.numLocks = 2;
    cfg.locsPerLock = 2;
    cfg.privateLocs = 2;
    cfg.sectionsPerProc = 2;
    cfg.opsPerSection = 3;
    cfg.privateOpsBetween = 1;
    cfg.spinAcquire = false;
    cfg.seed = seed;
    return cfg;
}

TEST(Drf0Differential, LitmusCorpusTracesAgree)
{
    std::vector<std::string> files =
        litmus_dsl::findLitmusFiles({WO_LITMUS_DIR});
    ASSERT_FALSE(files.empty());
    for (const std::string &f : files) {
        litmus_dsl::CompiledLitmus test = litmus_dsl::compileLitmusFile(f);
        for (std::uint64_t s = 1; s <= 6; ++s) {
            ExecutionTrace trace = randomTrace(test.program, s);
            expectEquivalent(trace,
                             f + " seed " + std::to_string(s));
        }
    }
}

TEST(Drf0Differential, RandomDrf0ProgramsAgreeAndAreRaceFree)
{
    // 125 generated lock-disciplined programs x 2 schedules each.
    for (std::uint64_t seed = 1; seed <= 125; ++seed) {
        MultiProgram mp =
            randomDrf0Program(smallCfg(seed, 2 + seed % 3));
        for (std::uint64_t s = 1; s <= 2; ++s) {
            ExecutionTrace trace = randomTrace(mp, seed * 1000 + s);
            Drf0TraceReport vc = checkTrace(trace);
            EXPECT_TRUE(vc.raceFree)
                << "DRF0-by-construction program raced, seed " << seed
                << "\n" << vc.toString(trace);
            expectEquivalent(trace, "drf0 seed " + std::to_string(seed));
        }
    }
}

TEST(Drf0Differential, RandomRacyProgramsAgree)
{
    // 125 programs with deliberate unguarded accesses x 2 schedules.
    for (std::uint64_t seed = 1; seed <= 125; ++seed) {
        MultiProgram mp =
            randomRacyProgram(smallCfg(seed, 2 + seed % 3), 2);
        for (std::uint64_t s = 1; s <= 2; ++s) {
            ExecutionTrace trace = randomTrace(mp, seed * 1000 + s);
            expectEquivalent(trace, "racy seed " + std::to_string(seed));
        }
    }
}

TEST(Drf0Differential, OnlineEarlyExitNeverChangesSampledVerdict)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        MultiProgram racy = randomRacyProgram(smallCfg(seed, 2), 2);
        MultiProgram clean = randomDrf0Program(smallCfg(seed, 2));
        for (const MultiProgram *mp : {&racy, &clean}) {
            Drf0ProgramReport online =
                checkProgramSampled(*mp, 30, seed);
            Drf0ProgramReport offline = offlineSampled(*mp, 30, seed);
            EXPECT_EQ(online.obeysDrf0, offline.obeysDrf0)
                << mp->name() << " seed " << seed;
            EXPECT_EQ(online.executions, offline.executions)
                << mp->name() << " seed " << seed;
            EXPECT_EQ(online.witness.size(), offline.witness.size())
                << mp->name() << " seed " << seed;
            EXPECT_EQ(online.witnessReport.races,
                      offline.witnessReport.races)
                << mp->name() << " seed " << seed;
        }
    }
}

TEST(Drf0Differential, MemoReturnsIdenticalReports)
{
    MultiProgram mp = randomRacyProgram(smallCfg(3, 2), 2);
    Drf0Memo memo;
    Drf0ProgramReport direct = checkProgramSampled(mp, 40, 5);
    Drf0ProgramReport first = memo.check(mp, 40, 5);
    Drf0ProgramReport second = memo.check(mp, 40, 5);
    EXPECT_EQ(memo.misses(), 1u);
    EXPECT_EQ(memo.hits(), 1u);
    for (const Drf0ProgramReport *r : {&first, &second}) {
        EXPECT_EQ(r->obeysDrf0, direct.obeysDrf0);
        EXPECT_EQ(r->executions, direct.executions);
        EXPECT_EQ(r->witness.size(), direct.witness.size());
        EXPECT_EQ(r->witnessReport.races, direct.witnessReport.races);
    }
    // Different schedule count or seed is a different key.
    memo.check(mp, 40, 6);
    memo.check(mp, 41, 5);
    EXPECT_EQ(memo.misses(), 3u);
}

TEST(Drf0Differential, ContentHashIgnoresNameAndInitialsOrder)
{
    MultiProgram a("one"), b("two");
    Program p;
    Instruction st;
    st.op = Opcode::Store;
    st.addr = 3;
    st.imm = 7;
    st.src = -1;
    p.push(st);
    a.addProgram(p);
    b.addProgram(p);
    a.setInitial(1, 10);
    a.setInitial(2, 20);
    b.setInitial(2, 20);
    b.setInitial(1, 10);
    EXPECT_EQ(a.contentHash(), b.contentHash());
    // Any instruction change must move the hash.
    MultiProgram c("three");
    Program q;
    st.imm = 8;
    q.push(st);
    c.addProgram(q);
    c.setInitial(1, 10);
    c.setInitial(2, 20);
    EXPECT_NE(a.contentHash(), c.contentHash());
    // Initial values participate too.
    MultiProgram d("four");
    d.addProgram(p);
    d.setInitial(1, 10);
    EXPECT_NE(a.contentHash(), d.contentHash());
}

} // namespace
} // namespace wo
