/**
 * @file
 * Multi-bank configurations: several directory banks (cache-coherent)
 * and several memory modules (cache-less) must preserve all guarantees —
 * lines map to banks by address, each bank serializes independently.
 */

#include <gtest/gtest.h>

#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/litmus.hh"
#include "workload/random_gen.hh"

namespace wo {
namespace {

TEST(Banks, MultiDirectoryDrf0WorkloadsStaySc)
{
    for (int dirs : {1, 2, 4}) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            RandomWorkloadConfig w;
            w.numProcs = 4;
            w.seed = seed;
            SystemConfig cfg;
            cfg.policy = PolicyKind::Def2Drf0;
            cfg.numDirs = dirs;
            cfg.net.seed = seed * 7;
            System sys(randomDrf0Program(w), cfg);
            ASSERT_TRUE(sys.run()) << dirs << " dirs, seed " << seed;
            EXPECT_TRUE(verifySc(sys.trace()).sc())
                << dirs << " dirs, seed " << seed;
        }
    }
}

TEST(Banks, MultiDirectoryMutualExclusionExact)
{
    const int procs = 4, rounds = 2;
    SystemConfig cfg;
    cfg.policy = PolicyKind::Def2Drf1;
    cfg.numDirs = 3;
    System sys(tttasLockCounter(procs, rounds), cfg);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.result().finalMemory.at(litmus::kCounter),
              static_cast<Word>(procs * rounds));
}

TEST(Banks, ManyMemoryModulesUncachedScStillSc)
{
    for (int mods : {1, 2, 4, 8}) {
        SystemConfig cfg;
        cfg.policy = PolicyKind::Sc;
        cfg.cached = false;
        cfg.numMemModules = mods;
        System sys(dekkerLitmus(), cfg);
        ASSERT_TRUE(sys.run()) << mods << " modules";
        EXPECT_FALSE(dekkerViolatesSc(sys.result())) << mods;
        EXPECT_TRUE(verifySc(sys.trace()).sc()) << mods;
    }
}

TEST(Banks, SingleModuleSerializationPreventsCase2Violation)
{
    // Figure 1 case 2 needs x and y in DIFFERENT modules; with one
    // module the module's own serialization restores order even for the
    // relaxed machine (writes and reads of one processor stay ordered
    // through the single service queue and the p2p-FIFO network).
    int violations_one = 0, violations_two = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        for (int mods : {1, 2}) {
            SystemConfig cfg;
            cfg.policy = PolicyKind::Relaxed;
            cfg.cached = false;
            cfg.numMemModules = mods;
            cfg.net.seed = seed;
            System sys(dekkerLitmus(), cfg);
            ASSERT_TRUE(sys.run());
            if (dekkerViolatesSc(sys.result())) {
                if (mods == 1)
                    ++violations_one;
                else
                    ++violations_two;
            }
        }
    }
    EXPECT_EQ(violations_one, 0);
    EXPECT_GT(violations_two, 0);
}

TEST(Banks, RejectsZeroBanks)
{
    SystemConfig cfg;
    cfg.numDirs = 0;
    EXPECT_THROW(System(dekkerLitmus(), cfg), std::invalid_argument);
}

} // namespace
} // namespace wo
