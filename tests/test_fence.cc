/**
 * @file
 * The RP3-style fence (Section 2.1): "a process is required to wait for
 * acknowledgements on its outstanding requests only on a fence
 * instruction ... this option functions as a weakly ordered system."
 *
 * With fences, even the Relaxed machine can run message passing
 * correctly — the programmer-managed ordering the paper's contract
 * formulation generalizes.
 */

#include <gtest/gtest.h>

#include "core/idealized.hh"
#include "core/sc_verifier.hh"
#include "cpu/program_builder.hh"
#include "system/system.hh"
#include "workload/asm.hh"
#include "workload/litmus.hh"

namespace wo {
namespace {

const Addr kData = 0, kFlag = 1;

MultiProgram
fencedMessagePassing()
{
    MultiProgram mp("fenced-mp");
    ProgramBuilder p0, p1;
    p0.store(kData, 42).fence().store(kFlag, 1).halt();
    p1.label("spin")
        .load(0, kFlag)
        .beq(0, 0, "spin")
        .fence()
        .load(1, kData)
        .halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());
    return mp;
}

TEST(Fence, OrdersMessagePassingOnRelaxedUncachedNetwork)
{
    // Without the fence this configuration reorders the two writes into
    // different memory modules (Figure 1, case 2); the fence restores
    // the producer ordering, and the consumer fence orders its reads.
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        SystemConfig cfg;
        cfg.policy = PolicyKind::Relaxed;
        cfg.cached = false;
        cfg.numMemModules = 2;
        cfg.net.seed = seed;
        cfg.net.jitter = 30;
        System sys(fencedMessagePassing(), cfg);
        ASSERT_TRUE(sys.run()) << "seed " << seed;
        EXPECT_EQ(sys.result().registers[1][1], 42u) << "seed " << seed;
    }
}

TEST(Fence, DrainsTheWriteBuffer)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SystemConfig cfg;
        cfg.policy = PolicyKind::Relaxed;
        cfg.writeBuffer = true;
        cfg.interconnect = InterconnectKind::Bus;
        cfg.cached = true;
        cfg.warmCaches = true;
        cfg.net.seed = seed;
        System sys(fencedMessagePassing(), cfg);
        ASSERT_TRUE(sys.run());
        EXPECT_EQ(sys.result().registers[1][1], 42u) << "seed " << seed;
    }
}

TEST(Fence, FencedDekkerRestoresSc)
{
    // Dekker with a fence between the store and the load is correct
    // even on the relaxed machine.
    int violations = 0;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        MultiProgram mp("fenced-dekker");
        ProgramBuilder p0, p1;
        p0.store(0, 1).fence().load(0, 1).halt();
        p1.store(1, 1).fence().load(0, 0).halt();
        mp.addProgram(p0.build());
        mp.addProgram(p1.build());
        SystemConfig cfg;
        cfg.policy = PolicyKind::Relaxed;
        cfg.writeBuffer = true;
        cfg.cached = false;
        cfg.numMemModules = 2;
        cfg.net.seed = seed;
        System sys(mp, cfg);
        ASSERT_TRUE(sys.run());
        if (dekkerViolatesSc(sys.result()))
            ++violations;
        EXPECT_TRUE(verifySc(sys.trace()).sc()) << "seed " << seed;
    }
    EXPECT_EQ(violations, 0);
}

TEST(Fence, NoOpOnIdealizedMachine)
{
    MultiProgram mp("f");
    ProgramBuilder b;
    b.store(0, 1).fence().load(0, 0).halt();
    mp.addProgram(b.build());
    RunResult r = runWithSchedule(mp, {});
    EXPECT_TRUE(r.allHalted);
    EXPECT_EQ(r.registers[0][0], 1u);
}

TEST(Fence, AssemblesAndDisassembles)
{
    MultiProgram mp = assemble(R"(
P0:
    store [0], #1
    fence
    load r0, [1]
)");
    EXPECT_EQ(mp.program(0).at(1).op, Opcode::Fence);
    std::string text = disassemble(mp);
    EXPECT_NE(text.find("fence"), std::string::npos);
    MultiProgram mp2 = assemble(text);
    EXPECT_EQ(mp2.program(0).at(1).op, Opcode::Fence);
}

TEST(Fence, CountsAsStallUnderRelaxed)
{
    // The fence's whole point is to stall: measurable on a slow write.
    MultiProgram fenced = fencedMessagePassing();
    SystemConfig cfg;
    cfg.policy = PolicyKind::Relaxed;
    cfg.cached = true;
    cfg.warmCaches = true;
    cfg.cache.invApplyDelay = 200;
    System sys(fenced, cfg);
    ASSERT_TRUE(sys.run());
    EXPECT_GT(sys.processor(0).stallCycles(), 150u);
}

} // namespace
} // namespace wo
