/**
 * @file
 * Protocol-level unit tests: caches + directory driven by scripted
 * clients (no processors), exercising each transaction flow of the
 * Section 5.2 protocol and the counter / reserve-bit mechanisms.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "coherence/cache.hh"
#include "coherence/directory.hh"
#include "mem/interconnect.hh"
#include "sim/event_queue.hh"

namespace wo {
namespace {

/** Records every callback with its time. */
class ScriptClient : public CacheClient
{
  public:
    struct Event
    {
        std::uint64_t id;
        Word value;
        Tick tick;
        bool gp;
    };

    void
    opCommitted(std::uint64_t id, Word v) override
    {
        events.push_back({id, v, now ? *now : 0, false});
        committed[id] = v;
    }

    void
    opGloballyPerformed(std::uint64_t id) override
    {
        events.push_back({id, 0, now ? *now : 0, true});
        gp[id] = true;
    }

    void counterReadsZero() override { ++counter_zeros; }

    bool isCommitted(std::uint64_t id) const { return committed.count(id); }
    bool isGp(std::uint64_t id) const { return gp.count(id); }
    Word value(std::uint64_t id) const { return committed.at(id); }

    std::vector<Event> events;
    std::map<std::uint64_t, Word> committed;
    std::map<std::uint64_t, bool> gp;
    int counter_zeros = 0;
    const Tick *now = nullptr;
};

/** A rig: N caches, one directory, a network, scripted clients. */
class Rig
{
  public:
    explicit Rig(int ncaches, CacheConfig ccfg = {})
    {
        GeneralNetwork::Config ncfg;
        ncfg.base = 3;
        ncfg.jitter = 0; // deterministic
        net = std::make_unique<GeneralNetwork>(eq, stats, ncfg);
        dir = std::make_unique<Directory>(eq, *net, stats, ncaches,
                                          DirectoryConfig{}, "dir");
        for (int i = 0; i < ncaches; ++i) {
            caches.push_back(std::make_unique<Cache>(
                eq, *net, stats, i, ncaches, 1, ccfg,
                "cache" + std::to_string(i)));
            clients.push_back(std::make_unique<ScriptClient>());
            caches[i]->setPortClient(clients[i].get());
        }
        now_cache = eq.now();
        for (auto &c : clients)
            c->now = &now_shadow;
    }

    /** Issue an op and drain all events. */
    void
    run()
    {
        // Track time through a shadow updated per step so clients can
        // timestamp callbacks.
        while (!eq.empty()) {
            eq.step();
            now_shadow = eq.now();
        }
    }

    CacheOp
    op(std::uint64_t id, AccessKind k, Addr a, Word v = 0)
    {
        CacheOp o;
        o.id = id;
        o.kind = k;
        o.addr = a;
        o.writeValue = v;
        return o;
    }

    EventQueue eq;
    StatSet stats;
    std::unique_ptr<GeneralNetwork> net;
    std::unique_ptr<Directory> dir;
    std::vector<std::unique_ptr<Cache>> caches;
    std::vector<std::unique_ptr<ScriptClient>> clients;
    Tick now_cache = 0;
    Tick now_shadow = 0;
};

TEST(Protocol, ReadMissFillsShared)
{
    Rig rig(1);
    rig.dir->poke(5, 99);
    rig.caches[0]->access(rig.op(1, AccessKind::DataRead, 5));
    EXPECT_EQ(rig.caches[0]->counter(), 1);
    rig.run();
    EXPECT_TRUE(rig.clients[0]->isCommitted(1));
    EXPECT_TRUE(rig.clients[0]->isGp(1));
    EXPECT_EQ(rig.clients[0]->value(1), 99u);
    EXPECT_EQ(rig.caches[0]->counter(), 0);
    LineState st;
    Word d;
    ASSERT_TRUE(rig.caches[0]->peekLine(5, &st, &d));
    EXPECT_EQ(st, LineState::Shared);
    EXPECT_EQ(d, 99u);
}

TEST(Protocol, WriteMissOnUncachedLineGpOnArrival)
{
    Rig rig(1);
    rig.caches[0]->access(rig.op(1, AccessKind::DataWrite, 5, 7));
    rig.run();
    EXPECT_TRUE(rig.clients[0]->isCommitted(1));
    EXPECT_TRUE(rig.clients[0]->isGp(1));
    LineState st;
    Word d;
    ASSERT_TRUE(rig.caches[0]->peekLine(5, &st, &d));
    EXPECT_EQ(st, LineState::Modified);
    EXPECT_EQ(d, 7u);
}

TEST(Protocol, WriteMissOnSharedLineCommitsBeforeGp)
{
    // Cache 1 holds the line shared; cache 0 writes. The line is
    // forwarded in parallel with the invalidation: commit precedes GP.
    Rig rig(2);
    rig.dir->poke(5, 1);
    rig.caches[0]->access(rig.op(1, AccessKind::DataRead, 5));
    rig.caches[1]->access(rig.op(2, AccessKind::DataRead, 5));
    rig.run();

    rig.caches[0]->access(rig.op(3, AccessKind::DataWrite, 5, 42));
    rig.run();
    EXPECT_TRUE(rig.clients[0]->isCommitted(3));
    EXPECT_TRUE(rig.clients[0]->isGp(3));
    // Commit and GP events both happened; commit strictly earlier.
    Tick commit_t = 0, gp_t = 0;
    for (const auto &e : rig.clients[0]->events) {
        if (e.id == 3 && !e.gp)
            commit_t = e.tick;
        if (e.id == 3 && e.gp)
            gp_t = e.tick;
    }
    EXPECT_LT(commit_t, gp_t);
    // Cache 1's copy is gone.
    EXPECT_FALSE(rig.caches[1]->peekLine(5, nullptr, nullptr));
    EXPECT_GT(rig.stats.get("cache1.invalidations"), 0u);
}

TEST(Protocol, UpgradeFromSharedGetsExclusive)
{
    Rig rig(2);
    rig.dir->poke(5, 1);
    rig.caches[0]->access(rig.op(1, AccessKind::DataRead, 5));
    rig.caches[1]->access(rig.op(2, AccessKind::DataRead, 5));
    rig.run();

    rig.caches[0]->access(rig.op(3, AccessKind::DataWrite, 5, 9));
    rig.run();
    LineState st;
    Word d;
    ASSERT_TRUE(rig.caches[0]->peekLine(5, &st, &d));
    EXPECT_EQ(st, LineState::Modified);
    EXPECT_EQ(d, 9u);
    EXPECT_FALSE(rig.caches[1]->peekLine(5, nullptr, nullptr));
}

TEST(Protocol, ConcurrentUpgradesOneWinsOtherConverts)
{
    Rig rig(2);
    rig.dir->poke(5, 1);
    rig.caches[0]->access(rig.op(1, AccessKind::DataRead, 5));
    rig.caches[1]->access(rig.op(2, AccessKind::DataRead, 5));
    rig.run();

    // Both upgrade "simultaneously".
    rig.caches[0]->access(rig.op(3, AccessKind::DataWrite, 5, 10));
    rig.caches[1]->access(rig.op(4, AccessKind::DataWrite, 5, 20));
    rig.run();
    EXPECT_TRUE(rig.clients[0]->isGp(3));
    EXPECT_TRUE(rig.clients[1]->isGp(4));
    // Exactly one exclusive owner at the end.
    int owners = 0;
    Word final_val = 0;
    for (int i = 0; i < 2; ++i) {
        LineState st;
        Word d;
        if (rig.caches[i]->peekLine(5, &st, &d) &&
            st == LineState::Modified) {
            ++owners;
            final_val = d;
        }
    }
    EXPECT_EQ(owners, 1);
    EXPECT_TRUE(final_val == 10 || final_val == 20);
}

TEST(Protocol, ReadOfExclusiveLineRecallsAndDowngrades)
{
    Rig rig(2);
    rig.caches[0]->access(rig.op(1, AccessKind::DataWrite, 5, 77));
    rig.run();

    rig.caches[1]->access(rig.op(2, AccessKind::DataRead, 5));
    rig.run();
    EXPECT_EQ(rig.clients[1]->value(2), 77u);
    LineState st0, st1;
    ASSERT_TRUE(rig.caches[0]->peekLine(5, &st0, nullptr));
    ASSERT_TRUE(rig.caches[1]->peekLine(5, &st1, nullptr));
    EXPECT_EQ(st0, LineState::Shared);
    EXPECT_EQ(st1, LineState::Shared);
}

TEST(Protocol, WriteOfExclusiveLineTransfersOwnership)
{
    Rig rig(2);
    rig.caches[0]->access(rig.op(1, AccessKind::DataWrite, 5, 77));
    rig.run();

    rig.caches[1]->access(rig.op(2, AccessKind::DataWrite, 5, 88));
    rig.run();
    EXPECT_TRUE(rig.clients[1]->isGp(2));
    EXPECT_FALSE(rig.caches[0]->peekLine(5, nullptr, nullptr));
    LineState st;
    Word d;
    ASSERT_TRUE(rig.caches[1]->peekLine(5, &st, &d));
    EXPECT_EQ(st, LineState::Modified);
    EXPECT_EQ(d, 88u);
}

TEST(Protocol, TasReturnsOldValueAtomically)
{
    Rig rig(2);
    rig.dir->poke(9, 0);
    rig.caches[0]->access(rig.op(1, AccessKind::SyncRmw, 9, 1));
    rig.run();
    EXPECT_EQ(rig.clients[0]->value(1), 0u);
    rig.caches[1]->access(rig.op(2, AccessKind::SyncRmw, 9, 1));
    rig.run();
    EXPECT_EQ(rig.clients[1]->value(2), 1u);
}

TEST(Protocol, ReserveBitBlocksRemoteSyncUntilWriteGp)
{
    // Condition 5 end to end: cache0 has a pending (not yet globally
    // performed) data write when its sync commits; cache1's sync on the
    // same location must not commit until the write's WriteAck.
    CacheConfig ccfg;
    ccfg.invApplyDelay = 100; // slow invalidation acks
    Rig rig(2, ccfg);
    rig.dir->poke(0, 0); // datum x
    rig.dir->poke(9, 0); // sync s

    // Warm: cache1 shares x so cache0's write needs an invalidation.
    rig.caches[1]->access(rig.op(1, AccessKind::DataRead, 0));
    rig.run();

    // Cache0: W(x) (slow GP), then sync on s.
    rig.caches[0]->access(rig.op(2, AccessKind::DataWrite, 0, 5));
    // Let the write commit but not globally perform.
    for (int i = 0; i < 40 && !rig.clients[0]->isCommitted(2); ++i) {
        rig.eq.step();
        rig.now_shadow = rig.eq.now();
    }
    ASSERT_TRUE(rig.clients[0]->isCommitted(2));
    ASSERT_FALSE(rig.clients[0]->isGp(2));

    rig.caches[0]->access(rig.op(3, AccessKind::SyncRmw, 9, 1));
    // Cache1 requests the same sync location.
    rig.caches[1]->access(rig.op(4, AccessKind::SyncRmw, 9, 1));
    rig.run();

    EXPECT_TRUE(rig.clients[1]->isCommitted(4));
    // Cache1's sync committed only after cache0's write was GP.
    Tick w_gp = 0, s1_commit = 0;
    for (const auto &e : rig.clients[0]->events) {
        if (e.id == 2 && e.gp)
            w_gp = e.tick;
    }
    for (const auto &e : rig.clients[1]->events) {
        if (e.id == 4 && !e.gp)
            s1_commit = e.tick;
    }
    EXPECT_GE(s1_commit, w_gp);
    EXPECT_GT(rig.stats.get("cache0.reserves"), 0u);
    EXPECT_GT(rig.stats.get("cache0.recalls_queued"), 0u);
}

TEST(Protocol, EpochReserveDoesNotWaitForLaterMisses)
{
    // Cache0: slow data write; sync A commits (reserved); then a miss to
    // an unrelated location B. The reserve on A must clear when the data
    // write performs, NOT wait for B.
    CacheConfig ccfg;
    ccfg.invApplyDelay = 50;
    Rig rig(2, ccfg);
    rig.caches[1]->access(rig.op(1, AccessKind::DataRead, 0));
    rig.run();

    rig.caches[0]->access(rig.op(2, AccessKind::DataWrite, 0, 5));
    for (int i = 0; i < 40 && !rig.clients[0]->isCommitted(2); ++i) {
        rig.eq.step();
        rig.now_shadow = rig.eq.now();
    }
    rig.caches[0]->access(rig.op(3, AccessKind::SyncRmw, 9, 1));
    for (int i = 0; i < 60 && !rig.clients[0]->isCommitted(3); ++i) {
        rig.eq.step();
        rig.now_shadow = rig.eq.now();
    }
    ASSERT_TRUE(rig.clients[0]->isCommitted(3));
    EXPECT_TRUE(rig.caches[0]->anyReserved());
    rig.run();
    // After the write (and the sync's own invalidations) perform, the
    // reserve is gone even if other misses were to come later.
    EXPECT_FALSE(rig.caches[0]->anyReserved());
}

TEST(Protocol, EvictionWritesBackExclusiveLine)
{
    CacheConfig ccfg;
    ccfg.numSets = 1;
    ccfg.ways = 1;
    Rig rig(1, ccfg);
    rig.caches[0]->access(rig.op(1, AccessKind::DataWrite, 5, 50));
    rig.run();
    rig.caches[0]->access(rig.op(2, AccessKind::DataWrite, 6, 60));
    rig.run();
    // Line 5 was written back to the directory.
    EXPECT_FALSE(rig.caches[0]->peekLine(5, nullptr, nullptr));
    EXPECT_EQ(rig.dir->peek(5), 50u);
    EXPECT_GT(rig.stats.get("cache0.writebacks"), 0u);
    // And can be read back.
    rig.caches[0]->access(rig.op(3, AccessKind::DataRead, 5));
    rig.run();
    EXPECT_EQ(rig.clients[0]->value(3), 50u);
}

TEST(Protocol, SilentDropOfSharedLineStaysCoherent)
{
    CacheConfig ccfg;
    ccfg.numSets = 1;
    ccfg.ways = 1;
    Rig rig(2, ccfg);
    rig.dir->poke(5, 11);
    rig.caches[0]->access(rig.op(1, AccessKind::DataRead, 5));
    rig.run();
    // Evict 5 silently by reading 6.
    rig.caches[0]->access(rig.op(2, AccessKind::DataRead, 6));
    rig.run();
    EXPECT_GT(rig.stats.get("cache0.silent_drops"), 0u);
    // Cache1 writes 5: the directory still lists cache0 as a sharer and
    // sends it a (stale) invalidation, which it must ack.
    rig.caches[1]->access(rig.op(3, AccessKind::DataWrite, 5, 12));
    rig.run();
    EXPECT_TRUE(rig.clients[1]->isGp(3));
    EXPECT_GT(rig.stats.get("cache0.stale_invalidations"), 0u);
}

TEST(Protocol, SyncReadAsWriteVsAsRead)
{
    // Under the DRF0 example implementation, a Test procures the line
    // exclusively; under the refinement it is a plain read.
    for (bool as_write : {true, false}) {
        CacheConfig ccfg;
        ccfg.syncReadsAsWrites = as_write;
        Rig rig(1, ccfg);
        rig.dir->poke(9, 1);
        rig.caches[0]->access(rig.op(1, AccessKind::SyncRead, 9));
        rig.run();
        EXPECT_EQ(rig.clients[0]->value(1), 1u);
        LineState st;
        ASSERT_TRUE(rig.caches[0]->peekLine(9, &st, nullptr));
        EXPECT_EQ(st, as_write ? LineState::Modified : LineState::Shared);
    }
}

TEST(Protocol, CounterZeroCallbackFires)
{
    Rig rig(1);
    rig.caches[0]->access(rig.op(1, AccessKind::DataRead, 5));
    rig.run();
    EXPECT_GE(rig.clients[0]->counter_zeros, 1);
}

TEST(Protocol, DirectoryIdleAfterQuiescence)
{
    Rig rig(2);
    for (std::uint64_t i = 0; i < 6; ++i) {
        rig.caches[i % 2]->access(rig.op(
            i + 1,
            i % 2 ? AccessKind::DataWrite : AccessKind::DataRead,
            static_cast<Addr>(i % 3), i));
    }
    rig.run();
    EXPECT_TRUE(rig.dir->idle());
}

} // namespace
} // namespace wo
