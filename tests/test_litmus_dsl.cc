/**
 * @file
 * The litmus DSL frontend: parser happy paths and diagnostics (every
 * malformed input must throw LitmusError with a file:line, never
 * crash), the compiler's data-then-sync address map, the expectation
 * evaluator, and the batch runner's thread-count determinism.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "litmus/compiler.hh"
#include "litmus/expect.hh"
#include "litmus/parser.hh"
#include "litmus/runner.hh"

namespace wo {
namespace litmus_dsl {
namespace {

const char *kMp = R"(
# two-processor message passing
name mini-mp

init {
    data = 0;
    s = 1 sync;
}

P0              | P1              ;
store data, 42  | w: test r0, s   ;
unset s, 0      | bne r0, 0, w    ;
halt            | load r1, data   ;
                | halt            ;

forbidden (P1:r1 != 42)
)";

TEST(LitmusParser, ParsesMessagePassing)
{
    LitmusTest t = parseLitmus(kMp, "mini.litmus");
    EXPECT_EQ(t.name, "mini-mp");
    ASSERT_EQ(t.inits.size(), 2u);
    EXPECT_EQ(t.inits[0].loc, "data");
    EXPECT_EQ(t.inits[0].value, 0u);
    EXPECT_FALSE(t.inits[0].sync);
    EXPECT_EQ(t.inits[1].loc, "s");
    EXPECT_EQ(t.inits[1].value, 1u);
    EXPECT_TRUE(t.inits[1].sync);

    ASSERT_EQ(t.procs.size(), 2u);
    ASSERT_EQ(t.procs[0].size(), 3u);
    EXPECT_EQ(t.procs[0][0].mnemonic, "store");
    EXPECT_EQ(t.procs[0][0].loc, "data");
    EXPECT_EQ(t.procs[0][0].imm, 42u);
    ASSERT_EQ(t.procs[1].size(), 4u);
    EXPECT_EQ(t.procs[1][0].label, "w");
    EXPECT_EQ(t.procs[1][0].mnemonic, "test");
    EXPECT_EQ(t.procs[1][1].mnemonic, "bne");
    EXPECT_EQ(t.procs[1][1].target, "w");

    EXPECT_EQ(t.clause.kind, ClauseKind::Forbidden);
    EXPECT_FALSE(t.clause.always);
    EXPECT_EQ(toString(t.clause), "forbidden (P1:r1 != 42)");
}

TEST(LitmusParser, DefaultsNameToFileStem)
{
    LitmusTest t = parseLitmus(
        "init { x = 0; }\nP0 ;\nhalt ;\nexists (P0:r0 == 0)\n",
        "dir/some_test.litmus");
    EXPECT_EQ(t.name, "some_test");
}

TEST(LitmusParser, ParsesConditionGrammar)
{
    LitmusTest t = parseLitmus(
        "init { x = 0; y = 0; }\n"
        "P0 | P1 ;\n"
        "load r0, x | load r0, y ;\n"
        "halt | halt ;\n"
        "exists (!(P0:r0 == 1 && P1:r0 == 1) || x != 0)\n",
        "c.litmus");
    EXPECT_EQ(t.clause.kind, ClauseKind::Exists);
    EXPECT_EQ(toString(t.clause.cond),
              "(!(P0:r0 == 1 && P1:r0 == 1) || x != 0)");
}

/** Expects parse/compile of @p src to fail at @p line of f.litmus. */
void
expectErrorAt(const std::string &src, int line, const char *what_substr)
{
    try {
        compileLitmus(parseLitmus(src, "f.litmus"));
        FAIL() << "expected LitmusError: " << what_substr;
    } catch (const LitmusError &e) {
        EXPECT_EQ(e.file(), "f.litmus") << e.what();
        EXPECT_EQ(e.line(), line) << e.what();
        EXPECT_NE(std::string(e.what()).find("f.litmus:"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find(what_substr),
                  std::string::npos)
            << e.what();
    }
}

TEST(LitmusParserErrors, MissingInitSection)
{
    expectErrorAt("name t\nP0 ;\nhalt ;\nexists (P0:r0 == 0)\n", 2,
                  "init");
}

TEST(LitmusParserErrors, MalformedInitLine)
{
    expectErrorAt("init {\n  x 1;\n}\nP0 ;\nhalt ;\n"
                  "exists (P0:r0 == 0)\n",
                  2, "'='");
}

TEST(LitmusParserErrors, DuplicateInitLocation)
{
    expectErrorAt("init { x = 0;\n  x = 1; }\nP0 ;\nhalt ;\n"
                  "exists (P0:r0 == 0)\n",
                  2, "already declared");
}

TEST(LitmusParserErrors, UnknownMnemonic)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nfrobnicate r0, x ;\nhalt ;\n"
                  "exists (P0:r0 == 0)\n",
                  3, "unknown mnemonic");
}

TEST(LitmusParserErrors, BadRegisterName)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nload q7, x ;\nhalt ;\n"
                  "exists (P0:r0 == 0)\n",
                  3, "register");
}

TEST(LitmusParserErrors, UnbalancedExistsClause)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nhalt ;\n"
                  "exists (P0:r0 == 0\n",
                  4, "')'");
}

TEST(LitmusParserErrors, ClauseMissingParenthesis)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nhalt ;\nexists P0:r0 == 0\n", 4,
                  "'('");
}

TEST(LitmusParserErrors, MissingClause)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nhalt ;\n", 3, "clause");
}

TEST(LitmusParserErrors, TrailingGarbageAfterClause)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nhalt ;\n"
                  "exists (P0:r0 == 0)\nwhatever\n",
                  5, "after the final clause");
}

TEST(LitmusParserErrors, RowWithTooManyCells)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nhalt | halt ;\n"
                  "exists (P0:r0 == 0)\n",
                  3, "cells");
}

TEST(LitmusCompilerErrors, UndeclaredLocation)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nload r0, y ;\nhalt ;\n"
                  "exists (P0:r0 == 0)\n",
                  3, "undeclared");
}

TEST(LitmusCompilerErrors, SyncMnemonicOnDataLocation)
{
    expectErrorAt("init { x = 0; }\nP0 ;\ntas r0, x ;\nhalt ;\n"
                  "exists (P0:r0 == 0)\n",
                  3, "sync");
}

TEST(LitmusCompilerErrors, UnknownBranchLabel)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nbeq r0, 0, nowhere ;\nhalt ;\n"
                  "exists (P0:r0 == 0)\n",
                  3, "label");
}

TEST(LitmusCompilerErrors, DuplicateLabel)
{
    expectErrorAt("init { x = 0; }\nP0 ;\na: nop ;\na: nop ;\nhalt ;\n"
                  "exists (P0:r0 == 0)\n",
                  4, "duplicate label");
}

TEST(LitmusCompilerErrors, ClauseProcOutOfRange)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nhalt ;\n"
                  "exists (P7:r0 == 0)\n",
                  4, "processor");
}

TEST(LitmusCompilerErrors, ClauseLocationUndeclared)
{
    expectErrorAt("init { x = 0; }\nP0 ;\nhalt ;\nexists (zz == 0)\n", 4,
                  "undeclared");
}

TEST(LitmusParserErrors, GarbageNeverCrashes)
{
    const char *garbage[] = {
        "",
        "}{",
        "name\n",
        "init {",
        "init { = ; }",
        "P0 | | P1 ;",
        "exists ()",
        "init { x = 99999999999999999999; }",
        "\xff\xfe\x00garbage",
        "init { x = 0; } P0 ; halt ; forbidden always P0:r0",
    };
    for (const char *src : garbage)
        EXPECT_THROW(parseLitmus(src, "g.litmus"), LitmusError) << src;
}

TEST(LitmusCompiler, InternsDataBeforeSyncInDeclarationOrder)
{
    CompiledLitmus c = compileLitmus(parseLitmus(
        "init { s = 1 sync; b = 0; a = 0; t = 0 sync; }\n"
        "P0 ;\n"
        "store a, 1 ;\n"
        "store b, 2 ;\n"
        "unset s, 0 ;\n"
        "tas r0, t ;\n"
        "halt ;\n"
        "forbidden (a == 0)\n",
        "order.litmus"));
    ASSERT_EQ(c.dataLocs.size(), 2u);
    ASSERT_EQ(c.syncLocs.size(), 2u);
    EXPECT_EQ(c.addrOf.at("b"), 0u);
    EXPECT_EQ(c.addrOf.at("a"), 1u);
    EXPECT_EQ(c.addrOf.at("s"), 2u);
    EXPECT_EQ(c.addrOf.at("t"), 3u);
    // Nonzero declared initials reach the program image.
    EXPECT_EQ(c.program.initialValue(c.addrOf.at("s")), 1u);
    EXPECT_EQ(c.program.initialValue(c.addrOf.at("a")), 0u);
}

TEST(LitmusCompiler, AppendsImplicitHalt)
{
    CompiledLitmus c = compileLitmus(parseLitmus(
        "init { x = 0; }\nP0 ;\nstore x, 1 ;\nexists (x == 1)\n",
        "h.litmus"));
    const Program &p = c.program.program(0);
    ASSERT_GE(p.size(), 2u);
    EXPECT_EQ(p.at(p.size() - 1).op, Opcode::Halt);
}

RunResult
fakeResult()
{
    RunResult r;
    r.allHalted = true;
    r.registers = {{1, 0}, {0, 7}};
    r.finalMemory[0] = 42;
    return r;
}

TEST(LitmusExpect, EvaluatesBooleanStructure)
{
    std::map<std::string, Addr> addrs{{"x", 0}, {"y", 1}};
    RunResult r = fakeResult();
    LitmusTest t = parseLitmus(
        "init { x = 0; y = 0; }\n"
        "P0 | P1 ;\n"
        "halt | halt ;\n"
        "exists ((P0:r0 == 1 && P1:r1 == 7 && x == 42) || y != 0)\n",
        "e.litmus");
    EXPECT_TRUE(evalCond(t.clause.cond, r, addrs));

    LitmusTest f = parseLitmus(
        "init { x = 0; y = 0; }\n"
        "P0 | P1 ;\n"
        "halt | halt ;\n"
        "exists (!(P0:r0 == 1) || y == 3)\n",
        "e.litmus");
    EXPECT_FALSE(evalCond(f.clause.cond, r, addrs));
}

TEST(LitmusExpect, MissingRegistersAndMemoryReadAsZero)
{
    std::map<std::string, Addr> addrs{{"y", 9}};
    RunResult r = fakeResult();
    LitmusTest t = parseLitmus(
        "init { y = 0; }\nP0 ;\nhalt ;\n"
        "exists (P0:r63 == 0 && y == 0)\n",
        "z.litmus");
    EXPECT_TRUE(evalCond(t.clause.cond, r, addrs));
}

TEST(LitmusExpect, OutcomeKeyProjectsFirstMentionOrder)
{
    std::map<std::string, Addr> addrs{{"x", 0}};
    LitmusTest t = parseLitmus(
        "init { x = 0; }\n"
        "P0 | P1 ;\n"
        "halt | halt ;\n"
        "exists (P1:r1 == 7 && x == 42 && P0:r0 == 1 && P1:r1 == 0)\n",
        "k.litmus");
    std::vector<ObservedVar> vars = observedVars(t.clause.cond);
    ASSERT_EQ(vars.size(), 3u); // the duplicate P1:r1 deduplicates
    EXPECT_EQ(outcomeKey(vars, fakeResult(), addrs),
              "P1:r1=7 x=42 P0:r0=1");
}

TEST(LitmusRunner, ReportsAreIdenticalAcrossThreadCounts)
{
    std::vector<CompiledLitmus> corpus;
    corpus.push_back(compileLitmus(parseLitmus(kMp, "mini.litmus")));
    corpus.push_back(compileLitmus(parseLitmus(
        "name sb\ninit { x = 0; y = 0; }\n"
        "P0 | P1 ;\n"
        "store x, 1 | store y, 1 ;\n"
        "load r0, y | load r0, x ;\n"
        "halt | halt ;\n"
        "exists (P0:r0 == 0 && P1:r0 == 0)\n",
        "sb.litmus")));

    RunnerOptions opt;
    opt.seeds = 4;
    opt.drf0Schedules = 40;
    opt.coverage = true;
    opt.policies = {PolicyKind::Sc, PolicyKind::Relaxed};

    std::string out[2], json[2], cov[2];
    int threads[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        opt.threads = threads[i];
        CorpusReport rep = runCorpus(corpus, opt);
        std::ostringstream os, js, cs;
        printReport(os, rep, /*histograms=*/true, /*coverage=*/true);
        writeJsonReport(js, rep);
        writeCoverageReport(cs, rep);
        out[i] = os.str();
        json[i] = js.str();
        cov[i] = cs.str();
    }
    EXPECT_EQ(out[0], out[1]);
    EXPECT_EQ(json[0], json[1]);
    EXPECT_EQ(cov[0], cov[1]);
    EXPECT_NE(out[0].find("sb"), std::string::npos);
}

TEST(LitmusRunner, CoverageBreaksDownPerMachine)
{
    std::vector<CompiledLitmus> corpus;
    corpus.push_back(compileLitmus(parseLitmus(
        "name sb\ninit { x = 0; y = 0; }\n"
        "P0 | P1 ;\n"
        "store x, 1 | store y, 1 ;\n"
        "load r0, y | load r0, x ;\n"
        "halt | halt ;\n"
        "exists (P0:r0 == 0 && P1:r0 == 0)\n",
        "sb.litmus")));

    RunnerOptions opt;
    opt.seeds = 4;
    opt.threads = 2;
    opt.drf0Schedules = 40;
    opt.coverage = true;
    opt.policies = {PolicyKind::Sc, PolicyKind::Relaxed};

    CorpusReport rep = runCorpus(corpus, opt);
    ASSERT_EQ(rep.tests.size(), 1u);
    const TestReport &tr = rep.tests[0];
    ASSERT_TRUE(tr.axiomChecked);
    ASSERT_EQ(tr.coverage.size(), 2u);

    std::size_t machine_count = defaultMachines().size();
    for (const PolicyCoverage &pc : tr.coverage) {
        ASSERT_EQ(pc.machines.size(), machine_count);
        std::size_t allowed =
            pc.observed.size() + pc.unobserved.size();
        std::set<std::string> union_observed;
        for (const MachineCoverage &mc : pc.machines) {
            // Every machine slice partitions the same allowed set.
            EXPECT_EQ(mc.observed.size() + mc.unobserved.size(),
                      allowed);
            union_observed.insert(mc.observed.begin(),
                                  mc.observed.end());
        }
        // The aggregate observed set is exactly the per-machine union.
        EXPECT_EQ(union_observed,
                  std::set<std::string>(pc.observed.begin(),
                                        pc.observed.end()));
    }

    // The standing wocover rendering carries machine metadata, the
    // protocol transitions the fan exercised and the per-machine
    // outcome coverage rows (count 0 = allowed but unobserved).
    std::ostringstream cs;
    writeCoverageReport(cs, rep);
    const std::string doc = cs.str();
    EXPECT_EQ(doc.rfind("wocover\t1\n", 0), 0u);
    EXPECT_NE(doc.find("machine\tbus\tmsi\t1"), std::string::npos);
    EXPECT_NE(doc.find("machine\tnet-u\tnone\t0"), std::string::npos);
    EXPECT_NE(doc.find("trans\tmsi\t"), std::string::npos);
    EXPECT_NE(doc.find("outcome\tsb\t"), std::string::npos);
}

TEST(LitmusRunner, FindLitmusFilesRejectsMissingPath)
{
    EXPECT_THROW(findLitmusFiles({"/nonexistent/path.litmus"}),
                 std::runtime_error);
}

TEST(LitmusRunner, DefaultMachinesAreTheHistoricalVariants)
{
    std::vector<const MachineSpec *> machines = defaultMachines();
    ASSERT_EQ(machines.size(), 3u);
    EXPECT_EQ(machines[0]->name, "bus");
    EXPECT_EQ(machines[1]->name, "net");
    EXPECT_EQ(machines[2]->name, "net-u");
}

#ifdef WO_LITMUS_BIN
/** Exit status of the wo-litmus binary run with @p args. */
int
woLitmusExit(const std::string &args)
{
    std::string cmd = std::string(WO_LITMUS_BIN) + " " + args +
                      " > /dev/null 2> /dev/null";
    int rc = std::system(cmd.c_str());
    EXPECT_TRUE(WIFEXITED(rc)) << cmd;
    return WEXITSTATUS(rc);
}

TEST(WoLitmusTool, ListMachinesExitsZero)
{
    // --list-machines needs no corpus argument and must exit 0.
    EXPECT_EQ(woLitmusExit("--list-machines"), 0);
}

TEST(WoLitmusTool, UnknownMachineExitsTwo)
{
    EXPECT_EQ(woLitmusExit("--machines=warp-drive"), 2);
    EXPECT_EQ(woLitmusExit("--machines="), 2);
}

TEST(WoLitmusTool, BadUsageExitsTwo)
{
    EXPECT_EQ(woLitmusExit("--no-such-flag"), 2);
    EXPECT_EQ(woLitmusExit(""), 2); // no corpus paths
    EXPECT_EQ(woLitmusExit("--coverage-report="), 2); // empty file
}

TEST(WoLitmusTool, CoverageReportFileIsWritten)
{
    const std::string dir = ::testing::TempDir();
    const std::string corpus = dir + "/wo_cov_mp.litmus";
    const std::string report = dir + "/wo_cov_report.wocover";
    {
        std::ofstream out(corpus);
        ASSERT_TRUE(out);
        out << kMp;
    }
    std::remove(report.c_str());
    EXPECT_EQ(woLitmusExit("--seeds=2 --coverage-report=" + report +
                           " " + corpus),
              0);
    std::ifstream in(report);
    ASSERT_TRUE(in) << "standing coverage report missing: " << report;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string doc = buf.str();
    EXPECT_EQ(doc.rfind("wocover\t1\n", 0), 0u);
    EXPECT_NE(doc.find("meta\truns\t1"), std::string::npos);
    EXPECT_NE(doc.find("machine\tbus\tmsi\t1"), std::string::npos);
    EXPECT_NE(doc.find("trans\tmsi\t"), std::string::npos);

    // A second run grows the same file instead of overwriting it.
    EXPECT_EQ(woLitmusExit("--seeds=2 --coverage-report=" + report +
                           " " + corpus),
              0);
    std::ifstream in2(report);
    ASSERT_TRUE(in2);
    std::stringstream buf2;
    buf2 << in2.rdbuf();
    EXPECT_NE(buf2.str().find("meta\truns\t2"), std::string::npos);

    // A malformed standing report is an error, not clobbered.
    {
        std::ofstream out(report);
        out << "not a wocover file\n";
    }
    EXPECT_EQ(woLitmusExit("--seeds=2 --coverage-report=" + report +
                           " " + corpus),
              2);
}
#endif // WO_LITMUS_BIN

} // namespace
} // namespace litmus_dsl
} // namespace wo
