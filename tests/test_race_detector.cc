/**
 * @file
 * Unit tests for the streaming vector-clock race detector and its
 * VectorClock/Epoch primitives.
 *
 * Traces here are fed in trace order, which the tests construct to be a
 * linear extension of (po U so) — the same contract checkTrace() grants
 * the detector for idealized-machine traces.
 */

#include <gtest/gtest.h>

#include "core/drf0_checker.hh"
#include "core/idealized.hh"
#include "core/race_detector.hh"
#include "core/trace.hh"
#include "core/vector_clock.hh"
#include "cpu/program_builder.hh"

namespace wo {
namespace {

Access
mk(ProcId proc, int po, AccessKind kind, Addr addr, Tick commit)
{
    Access a;
    a.proc = proc;
    a.poIndex = po;
    a.kind = kind;
    a.addr = addr;
    a.commitTick = commit;
    a.gpTick = commit;
    return a;
}

/** Feed a trace to a fresh detector in trace order. */
RaceDetector
feed(const ExecutionTrace &t, RaceDetectMode mode)
{
    RaceDetector det(t.numProcs(), mode);
    for (const Access &a : t.accesses())
        det.onAccess(a);
    return det;
}

TEST(VectorClock, StartsAtZeroAndTicks)
{
    VectorClock vc;
    EXPECT_EQ(vc.get(0), 0u);
    EXPECT_EQ(vc.get(7), 0u); // unmaterialized entries read as zero
    EXPECT_EQ(vc.tick(2), 1u);
    EXPECT_EQ(vc.tick(2), 2u);
    EXPECT_EQ(vc.get(2), 2u);
    EXPECT_EQ(vc.get(1), 0u);
    EXPECT_GE(vc.size(), 3);
}

TEST(VectorClock, JoinTakesPointwiseMax)
{
    VectorClock a, b;
    a.tick(0);
    a.tick(0);
    b.tick(1);
    b.tick(2);
    b.tick(2);
    a.join(b);
    EXPECT_EQ(a.get(0), 2u);
    EXPECT_EQ(a.get(1), 1u);
    EXPECT_EQ(a.get(2), 2u);
    // Joining a shorter clock must not shrink the longer one.
    VectorClock c;
    c.tick(0);
    a.join(c);
    EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, CoversEpoch)
{
    VectorClock vc;
    vc.tick(1);
    vc.tick(1);
    Epoch e;
    e.clock = 2;
    e.proc = 1;
    EXPECT_TRUE(vc.covers(e));
    e.clock = 3;
    EXPECT_FALSE(vc.covers(e));
    e.proc = 5; // beyond materialized entries
    e.clock = 1;
    EXPECT_FALSE(vc.covers(e));
}

TEST(VectorClock, ClearKeepsZeroSemantics)
{
    VectorClock vc;
    vc.tick(3);
    vc.clear();
    EXPECT_EQ(vc.get(3), 0u);
    Epoch unset;
    EXPECT_FALSE(unset.some());
}

TEST(RaceDetector, UnorderedConflictingAccessesRace)
{
    ExecutionTrace t;
    int w = t.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    int r = t.add(mk(1, 0, AccessKind::DataRead, 0, 1));
    RaceDetector det = feed(t, RaceDetectMode::FirstRace);
    EXPECT_TRUE(det.hasRace());
    ASSERT_EQ(det.races().size(), 1u);
    EXPECT_EQ(det.races()[0].first, w);
    EXPECT_EQ(det.races()[0].second, r);
}

TEST(RaceDetector, SyncChainOrdersConflict)
{
    // W(P0,x) po S(P0,s) so S(P1,s) po R(P1,x): race-free.
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    t.add(mk(0, 1, AccessKind::SyncWrite, 1, 1));
    t.add(mk(1, 0, AccessKind::SyncRmw, 1, 2));
    t.add(mk(1, 1, AccessKind::DataRead, 0, 3));
    EXPECT_FALSE(feed(t, RaceDetectMode::AllRaces).hasRace());
}

TEST(RaceDetector, SyncOnOtherLocationDoesNotOrder)
{
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    t.add(mk(0, 1, AccessKind::SyncWrite, 1, 1));
    t.add(mk(1, 0, AccessKind::SyncRmw, 2, 2)); // different sync location
    t.add(mk(1, 1, AccessKind::DataRead, 0, 3));
    EXPECT_TRUE(feed(t, RaceDetectMode::AllRaces).hasRace());
}

TEST(RaceDetector, ReadsDoNotRaceWithReads)
{
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataRead, 0, 0));
    t.add(mk(1, 0, AccessKind::DataRead, 0, 1));
    t.add(mk(2, 0, AccessKind::DataRead, 0, 2));
    EXPECT_FALSE(feed(t, RaceDetectMode::AllRaces).hasRace());
}

TEST(RaceDetector, SyncSyncSameLocationNeverRaces)
{
    // so totally orders sync ops on one location regardless of kind.
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::SyncWrite, 7, 0));
    t.add(mk(1, 0, AccessKind::SyncRmw, 7, 1));
    t.add(mk(2, 0, AccessKind::SyncRead, 7, 2));
    EXPECT_FALSE(feed(t, RaceDetectMode::AllRaces).hasRace());
}

TEST(RaceDetector, SyncDataConflictIsRace)
{
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataWrite, 7, 0));
    t.add(mk(1, 0, AccessKind::SyncRmw, 7, 1));
    EXPECT_TRUE(feed(t, RaceDetectMode::AllRaces).hasRace());
}

TEST(RaceDetector, SharedReadsThenUnorderedWriteRacesWithEach)
{
    // Two concurrent readers, then an unordered writer: AllRaces must
    // report the write against BOTH reads (read-shared state).
    ExecutionTrace t;
    int r0 = t.add(mk(0, 0, AccessKind::DataRead, 5, 0));
    int r1 = t.add(mk(1, 0, AccessKind::DataRead, 5, 1));
    int w = t.add(mk(2, 0, AccessKind::DataWrite, 5, 2));
    RaceDetector det = feed(t, RaceDetectMode::AllRaces);
    ASSERT_EQ(det.races().size(), 2u);
    EXPECT_EQ(det.races()[0], (Race{r0, w}));
    EXPECT_EQ(det.races()[1], (Race{r1, w}));
}

TEST(RaceDetector, FirstRaceModeStopsAtFirst)
{
    // Three mutually racing writes: FirstRace keeps exactly one pair.
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    t.add(mk(1, 0, AccessKind::DataWrite, 0, 1));
    t.add(mk(2, 0, AccessKind::DataWrite, 0, 2));
    RaceDetector first = feed(t, RaceDetectMode::FirstRace);
    RaceDetector all = feed(t, RaceDetectMode::AllRaces);
    EXPECT_EQ(first.races().size(), 1u);
    EXPECT_EQ(all.races().size(), 3u);
}

TEST(RaceDetector, ResetReusesCleanly)
{
    ExecutionTrace racy;
    racy.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    racy.add(mk(1, 0, AccessKind::DataRead, 0, 1));
    RaceDetector det(2, RaceDetectMode::FirstRace);
    for (const Access &a : racy.accesses())
        det.onAccess(a);
    ASSERT_TRUE(det.hasRace());
    det.reset(2);
    EXPECT_FALSE(det.hasRace());
    EXPECT_EQ(det.accessesSeen(), 0u);
    // The same location, now properly synchronized, must stay clean:
    // stale write epochs from before reset() may not leak through.
    ExecutionTrace clean;
    clean.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    clean.add(mk(0, 1, AccessKind::SyncWrite, 1, 1));
    clean.add(mk(1, 0, AccessKind::SyncRmw, 1, 2));
    clean.add(mk(1, 1, AccessKind::DataRead, 0, 3));
    for (const Access &a : clean.accesses())
        det.onAccess(a);
    EXPECT_FALSE(det.hasRace());
}

TEST(RaceDetector, GrowsWithUnseenProcessors)
{
    // Constructed for 1 processor but fed accesses from processor 3.
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::DataWrite, 0, 0));
    t.add(mk(3, 0, AccessKind::DataWrite, 0, 1));
    RaceDetector det(1, RaceDetectMode::AllRaces);
    for (const Access &a : t.accesses())
        det.onAccess(a);
    EXPECT_TRUE(det.hasRace());
}

TEST(RaceDetector, InitializingWritesAreIgnored)
{
    // proc == kNoProc models the paper's hypothetical initializing
    // writes; they precede everything and must not race.
    Access init = mk(kNoProc, -1, AccessKind::DataWrite, 0, 0);
    init.id = 0;
    RaceDetector det(2, RaceDetectMode::AllRaces);
    det.onAccess(init);
    Access r = mk(0, 0, AccessKind::DataRead, 0, 1);
    r.id = 1;
    det.onAccess(r);
    EXPECT_FALSE(det.hasRace());
    EXPECT_EQ(det.accessesSeen(), 1u);
}

TEST(RaceDetector, OnlineAttachmentMatchesOfflineCheck)
{
    // Stream a whole idealized execution through an attached detector;
    // its verdict must match the offline trace check.
    MultiProgram mp("mp");
    ProgramBuilder p0, p1;
    p0.store(0, 1).unset(1, 1).halt();
    p1.test(0, 1).load(0, 0).halt();
    mp.addProgram(p0.build());
    mp.addProgram(p1.build());

    IdealizedMachine m(mp);
    RaceDetector det(mp.numProcs(), RaceDetectMode::AllRaces);
    m.attachRaceDetector(&det);
    while (!m.allHalted()) {
        for (ProcId p = 0; p < mp.numProcs(); ++p) {
            if (!m.halted(p))
                m.step(p);
        }
    }
    Drf0TraceReport offline = checkTrace(m.trace());
    EXPECT_EQ(det.hasRace(), !offline.raceFree);
}

TEST(Drf0Trace, CyclicHbFallsBackAndIsFlagged)
{
    // Artificial (po U so) cycle — no machine can produce one, but the
    // checker must flag it instead of silently reporting a partial
    // order: po gives sa->sb and ta->tb while commit ticks give the so
    // edges tb->sa (location 100) and sb->ta (location 101).
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::SyncWrite, 100, 10));
    t.add(mk(0, 1, AccessKind::SyncWrite, 101, 1));
    t.add(mk(1, 0, AccessKind::SyncWrite, 101, 5));
    t.add(mk(1, 1, AccessKind::SyncWrite, 100, 2));
    Drf0TraceReport vc = checkTrace(t);
    Drf0TraceReport bitset = checkTraceBitset(t);
    EXPECT_TRUE(vc.hbCyclic);
    EXPECT_TRUE(bitset.hbCyclic);
    EXPECT_EQ(vc.raceFree, bitset.raceFree);
    EXPECT_EQ(vc.races, bitset.races);
}

} // namespace
} // namespace wo
