/**
 * @file
 * MSI-degenerate regression pin: the protocol-generic coherence layer,
 * configured as MSI, must reproduce the seed two-state implementation's
 * observable outcomes EXACTLY — not "still correct", identical.
 *
 * The golden rows below were captured from the seed implementation
 * (commit 7e20b00, before the protocol-table refactor) over four
 * workloads x three machines x {sc, def2} x two seeds: final registers,
 * finish tick, and the load-bearing cache / directory / interconnect
 * counters. Any diff here means the default protocol's timing or
 * decision paths moved, which would silently invalidate every
 * previously published number (litmus reports, campaign tables,
 * BENCH_* baselines).
 *
 * If a change is INTENTIONALLY allowed to move these numbers, recapture
 * the goldens and say so loudly in the commit; never "fix" a row to
 * make the suite green.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

namespace wo {
namespace {

struct Golden
{
    const char *machine;
    const char *policy; ///< "sc" or "def2"
    const char *workload;
    std::uint64_t seed;
    int ok;
    Tick finishTick;
    std::uint64_t cacheHits;
    std::uint64_t cacheMisses;
    std::uint64_t dirRequests;
    std::uint64_t dirInvalidations;
    std::uint64_t dirRecalls;
    std::uint64_t dirWritebacks;
    std::uint64_t netMsgs;
    const char *regs; ///< "{r0,r1,},{...}," per processor
};

// Captured from the seed implementation; see file comment.
const Golden kGoldens[] = {
    {"bus", "sc", "dekker", 7, 1, 12, 0, 2, 4, 0, 2, 0, 12, "{1,},{1,},"},
    {"bus", "def2", "dekker", 7, 1, 2, 0, 2, 4, 0, 2, 0, 12, "{1,},{1,},"},
    {"bus", "def2", "dekker", 11, 1, 2, 0, 2, 4, 0, 2, 0, 12, "{1,},{1,},"},
    {"net", "sc", "dekker", 7, 1, 50, 0, 2, 4, 2, 2, 0, 18, "{1,},{1,},"},
    {"net", "def2", "dekker", 7, 1, 2, 1, 1, 2, 2, 0, 0, 10, "{0,},{0,},"},
    {"net", "def2", "dekker", 11, 1, 2, 1, 1, 2, 2, 0, 0, 10, "{0,},{0,},"},
    {"net-cold", "sc", "dekker", 7, 1, 27, 0, 2, 4, 0, 2, 0, 12,
     "{1,},{1,},"},
    {"net-cold", "def2", "dekker", 7, 1, 2, 0, 2, 4, 1, 1, 0, 13,
     "{0,},{1,},"},
    {"net-cold", "def2", "dekker", 11, 1, 2, 0, 2, 4, 0, 2, 0, 12,
     "{1,},{1,},"},
    {"bus", "sc", "mp_sync", 7, 1, 43, 0, 2, 5, 0, 3, 0, 16,
     "{0,0,},{1,42,},"},
    {"bus", "def2", "mp_sync", 7, 1, 35, 0, 2, 5, 0, 3, 0, 16,
     "{0,0,},{1,42,},"},
    {"bus", "def2", "mp_sync", 11, 1, 35, 0, 2, 5, 0, 3, 0, 16,
     "{0,0,},{1,42,},"},
    {"net", "sc", "mp_sync", 7, 1, 118, 0, 2, 5, 2, 3, 0, 22,
     "{0,0,},{1,42,},"},
    {"net", "def2", "mp_sync", 7, 1, 77, 0, 2, 4, 2, 2, 0, 18,
     "{0,0,},{1,42,},"},
    {"net", "def2", "mp_sync", 11, 1, 100, 0, 2, 5, 2, 3, 0, 22,
     "{0,0,},{1,42,},"},
    {"net-cold", "sc", "mp_sync", 7, 1, 95, 0, 2, 5, 0, 3, 0, 16,
     "{0,0,},{1,42,},"},
    {"net-cold", "def2", "mp_sync", 7, 1, 52, 0, 2, 4, 0, 2, 0, 12,
     "{0,0,},{1,42,},"},
    {"net-cold", "def2", "mp_sync", 11, 1, 71, 0, 2, 5, 0, 3, 0, 16,
     "{0,0,},{1,42,},"},
    {"bus", "sc", "tas2", 7, 1, 144, 3, 5, 10, 1, 6, 0, 35,
     "{0,2,2,},{0,4,2,},"},
    {"bus", "def2", "tas2", 7, 1, 119, 3, 5, 10, 1, 6, 0, 35,
     "{0,2,2,},{0,4,2,},"},
    {"bus", "def2", "tas2", 11, 1, 119, 3, 5, 10, 1, 6, 0, 35,
     "{0,2,2,},{0,4,2,},"},
    {"net", "sc", "tas2", 7, 1, 257, 5, 3, 7, 3, 4, 0, 31,
     "{0,2,2,},{0,4,2,},"},
    {"net", "def2", "tas2", 7, 1, 161, 6, 2, 5, 3, 2, 0, 23,
     "{0,2,2,},{0,4,2,},"},
    {"net", "def2", "tas2", 11, 1, 162, 6, 2, 5, 3, 2, 0, 23,
     "{0,2,2,},{0,4,2,},"},
    {"net-cold", "sc", "tas2", 7, 1, 287, 3, 5, 10, 1, 6, 0, 35,
     "{0,2,2,},{0,4,2,},"},
    {"net-cold", "def2", "tas2", 7, 1, 251, 3, 5, 10, 1, 6, 0, 35,
     "{0,2,2,},{0,4,2,},"},
    {"net-cold", "def2", "tas2", 11, 1, 183, 4, 4, 8, 1, 4, 0, 27,
     "{0,2,2,},{0,4,2,},"},
    {"bus", "sc", "peterson", 7, 1, 165, 0, 7, 15, 1, 9, 0, 51,
     "{1,0,1,1,},{0,0,2,1,},"},
    {"bus", "def2", "peterson", 7, 1, 134, 0, 7, 15, 1, 9, 0, 51,
     "{1,0,1,1,},{0,0,2,1,},"},
    {"bus", "def2", "peterson", 11, 1, 134, 0, 7, 15, 1, 9, 0, 51,
     "{1,0,1,1,},{0,0,2,1,},"},
    {"net", "sc", "peterson", 7, 1, 368, 24, 8, 14, 5, 9, 0, 61,
     "{0,1,2,1,},{1,1,1,1,},"},
    {"net", "def2", "peterson", 7, 1, 263, 1, 6, 14, 5, 9, 0, 61,
     "{1,0,1,1,},{0,0,2,1,},"},
    {"net", "def2", "peterson", 11, 1, 279, 1, 6, 14, 5, 9, 0, 61,
     "{1,0,1,1,},{0,0,2,1,},"},
    {"net-cold", "sc", "peterson", 7, 1, 325, 0, 7, 15, 1, 9, 0, 51,
     "{1,0,1,1,},{0,0,2,1,},"},
    {"net-cold", "def2", "peterson", 7, 1, 266, 0, 7, 15, 1, 9, 0, 51,
     "{1,0,1,1,},{0,0,2,1,},"},
    {"net-cold", "def2", "peterson", 11, 1, 277, 0, 7, 15, 1, 9, 0, 51,
     "{1,0,1,1,},{0,0,2,1,},"},
};

MultiProgram
workloadByName(const std::string &name)
{
    if (name == "dekker")
        return dekkerLitmus();
    if (name == "mp_sync")
        return syncMessagePassing();
    if (name == "tas2")
        return tasLockCounter(2, 2);
    if (name == "peterson")
        return petersonCounter(true, 1);
    throw std::runtime_error("unknown golden workload " + name);
}

std::string
formatRegisters(const RunResult &r)
{
    std::ostringstream oss;
    for (const auto &pr : r.registers) {
        oss << "{";
        for (Word w : pr)
            oss << w << ",";
        oss << "},";
    }
    return oss.str();
}

TEST(MsiDegenerate, DefaultProtocolReproducesSeedObservablesExactly)
{
    for (const Golden &g : kGoldens) {
        SCOPED_TRACE(std::string(g.machine) + " " + g.policy + " " +
                     g.workload + " seed=" + std::to_string(g.seed));
        PolicyKind pk = std::string(g.policy) == "sc"
                            ? PolicyKind::Sc
                            : PolicyKind::Def2Drf0;
        SystemConfig cfg = machineOrThrow(g.machine).config(pk, g.seed);
        ASSERT_EQ(cfg.protocol, ProtocolKind::Msi) << g.machine;
        ASSERT_EQ(cfg.cacheLevels, 1) << g.machine;
        System sys(workloadByName(g.workload), cfg);
        bool ok = sys.run();
        EXPECT_EQ(ok ? 1 : 0, g.ok);
        EXPECT_EQ(sys.finishTick(), g.finishTick);
        EXPECT_EQ(formatRegisters(sys.result()), g.regs);
        const StatSet &st = sys.stats();
        EXPECT_EQ(st.get("cache0.hits"), g.cacheHits);
        EXPECT_EQ(st.get("cache0.misses"), g.cacheMisses);
        EXPECT_EQ(st.get("dir0.requests"), g.dirRequests);
        EXPECT_EQ(st.get("dir0.invalidations"), g.dirInvalidations);
        EXPECT_EQ(st.get("dir0.recalls"), g.dirRecalls);
        EXPECT_EQ(st.get("dir0.writebacks"), g.dirWritebacks);
        bool is_bus = cfg.interconnect == InterconnectKind::Bus;
        EXPECT_EQ(st.get(is_bus ? "bus.msgs" : "net.msgs"), g.netMsgs);
        // The MSI-degenerate runs must never touch protocol-extension
        // counters: those states are unreachable from the MSI table.
        EXPECT_EQ(st.get("dir0.exclusive_grants"), 0u);
        EXPECT_EQ(st.get("dir0.forward_recalls"), 0u);
        EXPECT_EQ(st.get("cache0.silent_upgrades"), 0u);
        EXPECT_EQ(st.get("cache0.clean_relinquishes"), 0u);
        EXPECT_TRUE(sys.auditCoherence().empty());
    }
}

} // namespace
} // namespace wo
