/**
 * @file
 * Windowed ExecutionTrace retention and the streaming DRF0 checker.
 *
 * Pins the bounded-retention invariants (retired + resident == size,
 * stable ids, index-cache correctness across popFront/popLast/clear,
 * high-water tracking) and proves the StreamingDrf0Checker byte-identical
 * to the whole-trace bitset oracle across window sizes — including
 * windows so small that every access is retired almost immediately.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/drf0_checker.hh"
#include "core/stream_checker.hh"
#include "core/trace.hh"
#include "sim/rng.hh"

namespace {

using namespace wo;

Access
mk(ProcId proc, int poIndex, AccessKind kind, Addr addr, Tick commit)
{
    Access a;
    a.proc = proc;
    a.poIndex = poIndex;
    a.kind = kind;
    a.addr = addr;
    a.commitTick = commit;
    a.gpTick = commit;
    return a;
}

/** Lock-structured synthetic trace in a (po U so) linear extension:
 * every 4th access per proc is a sync RMW on a global lock; data
 * accesses hit a small shared pool (racy) or a per-proc cell. */
ExecutionTrace
synthetic(int procs, int perProc, bool racy, std::uint64_t seed)
{
    Rng rng(seed);
    ExecutionTrace t;
    Tick now = 0;
    std::vector<int> po(static_cast<std::size_t>(procs), 0);
    for (int i = 0; i < perProc; ++i) {
        for (int p = 0; p < procs; ++p) {
            Access a;
            a.proc = p;
            a.poIndex = po[static_cast<std::size_t>(p)]++;
            if (i % 4 == 3) {
                a.kind = AccessKind::SyncRmw;
                a.addr = 1000;
            } else {
                a.kind = rng.chance(1, 2) ? AccessKind::DataWrite
                                          : AccessKind::DataRead;
                a.addr = racy ? static_cast<Addr>(rng.below(6))
                              : static_cast<Addr>(100 + p);
            }
            a.commitTick = now++;
            a.gpTick = a.commitTick;
            t.add(a);
        }
    }
    return t;
}

std::vector<Race>
sortedOracleRaces(const ExecutionTrace &t)
{
    Drf0TraceReport r = checkTraceBitset(t);
    std::vector<Race> races = r.races;
    std::sort(races.begin(), races.end());
    return races;
}

TEST(TraceWindow, PopFrontBasicInvariants)
{
    ExecutionTrace t;
    for (int i = 0; i < 10; ++i)
        t.add(mk(0, i, AccessKind::DataWrite, 5, i));
    EXPECT_EQ(t.size(), 10);
    EXPECT_EQ(t.firstId(), 0);
    EXPECT_EQ(t.resident(), 10);
    EXPECT_EQ(t.retired(), 0);
    EXPECT_EQ(t.windowHighWater(), 10);

    t.popFront(4);
    EXPECT_EQ(t.size(), 10);   // ids keep their meaning
    EXPECT_EQ(t.firstId(), 4);
    EXPECT_EQ(t.resident(), 6);
    EXPECT_EQ(t.retired(), 4);
    EXPECT_EQ(t.retired() + t.resident(), t.size());
    // Ids are stable: at(id) names the same access after retirement.
    for (int id = 4; id < 10; ++id)
        EXPECT_EQ(t.at(id).poIndex, id);

    // Appending after retirement keeps assigning dense ids.
    int id = t.add(mk(0, 10, AccessKind::DataRead, 5, 10));
    EXPECT_EQ(id, 10);
    EXPECT_EQ(t.size(), 11);
    EXPECT_EQ(t.retired() + t.resident(), t.size());
    EXPECT_EQ(t.windowHighWater(), 10); // never exceeded 10 resident
}

TEST(TraceWindow, HighWaterTracksMaxResident)
{
    ExecutionTrace t;
    for (int i = 0; i < 6; ++i)
        t.add(mk(0, i, AccessKind::DataWrite, 1, i));
    t.popFront(5);
    for (int i = 6; i < 14; ++i)
        t.add(mk(0, i, AccessKind::DataWrite, 1, i));
    // resident peaked at 1 + 8 = 9, not the 14 total appended
    EXPECT_EQ(t.windowHighWater(), 9);
    t.clear();
    EXPECT_EQ(t.windowHighWater(), 0);
    EXPECT_EQ(t.retired(), 0);
    EXPECT_EQ(t.firstId(), 0);
    EXPECT_EQ(t.size(), 0);
}

TEST(TraceWindow, IndexCachesSurvivePopFront)
{
    ExecutionTrace t;
    // Interleave two procs and two sync locations.
    t.add(mk(0, 0, AccessKind::SyncWrite, 50, 0)); // id 0
    t.add(mk(1, 0, AccessKind::DataRead, 7, 1));   // id 1
    t.add(mk(0, 1, AccessKind::SyncRead, 50, 2));  // id 2
    t.add(mk(1, 1, AccessKind::SyncRmw, 60, 3));   // id 3
    t.add(mk(0, 2, AccessKind::DataWrite, 7, 4));  // id 4

    // Prime the sorted caches, then retire across them.
    EXPECT_EQ(t.accessesOf(0), (std::vector<int>{0, 2, 4}));
    EXPECT_EQ(t.syncsAt(50), (std::vector<int>{0, 2}));
    t.popFront(2);
    EXPECT_EQ(t.accessesOf(0), (std::vector<int>{2, 4}));
    EXPECT_EQ(t.accessesOf(1), (std::vector<int>{3}));
    EXPECT_EQ(t.syncsAt(50), (std::vector<int>{2}));
    EXPECT_EQ(t.syncsAt(60), (std::vector<int>{3}));

    // Mixed mutations after retirement: append, then backtrack.
    t.add(mk(1, 2, AccessKind::SyncRmw, 60, 5)); // id 5
    EXPECT_EQ(t.syncsAt(60), (std::vector<int>{3, 5}));
    t.popLast();
    EXPECT_EQ(t.syncsAt(60), (std::vector<int>{3}));

    // Retiring the last sync at a location empties its entry.
    t.popFront(2);
    EXPECT_TRUE(t.syncsAt(50).empty());
    EXPECT_EQ(t.accessesOf(0), (std::vector<int>{4}));
    std::vector<Addr> sa = t.syncAddrs();
    EXPECT_TRUE(std::find(sa.begin(), sa.end(), 50) == sa.end());
}

TEST(TraceWindow, StreamingMatchesOracleAcrossWindowSizes)
{
    for (bool racy : {false, true}) {
        ExecutionTrace full = synthetic(3, 40, racy, 7);
        std::vector<Race> oracle = sortedOracleRaces(full);

        for (int window : {1, 7, 64}) {
            // Re-drive a windowed trace access by access; the add order
            // of synthetic() is a linear extension of (po U so), so the
            // onAccess fast path applies.
            ExecutionTrace wt;
            StreamingDrf0Checker chk(3, RaceDetectMode::AllRaces);
            for (int id = 0; id < full.size(); ++id) {
                wt.add(full.at(id));
                chk.onAccess(wt.at(id));
                int excess = wt.resident() - window;
                if (excess > 0)
                    wt.popFront(std::min(chk.retireReady(wt), excess));
            }
            chk.finish(wt);
            EXPECT_EQ(chk.raceFree(), oracle.empty())
                << "racy=" << racy << " window=" << window;
            EXPECT_EQ(chk.sortedRaces(), oracle)
                << "racy=" << racy << " window=" << window;
            // Satellite invariant: retired + resident == appended.
            EXPECT_EQ(wt.retired() + wt.resident(), wt.size());
            EXPECT_EQ(wt.size(), full.size());
            EXPECT_LE(wt.windowHighWater(), window + 1);
        }
    }
}

TEST(TraceWindow, FirstRaceVerdictMatchesOracleWindowed)
{
    for (bool racy : {false, true}) {
        ExecutionTrace full = synthetic(4, 32, racy, 11);
        bool oracleFree = checkTraceBitset(full).raceFree;
        ExecutionTrace wt;
        StreamingDrf0Checker chk(4, RaceDetectMode::FirstRace);
        for (int id = 0; id < full.size(); ++id) {
            wt.add(full.at(id));
            chk.onAccess(wt.at(id));
            int excess = wt.resident() - 8;
            if (excess > 0)
                wt.popFront(std::min(chk.retireReady(wt), excess));
        }
        chk.finish(wt);
        EXPECT_EQ(chk.raceFree(), oracleFree) << "racy=" << racy;
    }
}

TEST(TraceWindow, DrainWindowAdmitsOnlyFinalizedPrefix)
{
    // Simulator-shaped feeding: accesses appear in issue order and only
    // become final (commit/gp patched) later.
    ExecutionTrace t;
    StreamingDrf0Checker chk(2, RaceDetectMode::AllRaces);
    t.add(mk(0, 0, AccessKind::DataWrite, 1, 2));  // id 0
    Access pend = mk(1, 0, AccessKind::DataWrite, 1, kNoTick);
    pend.gpTick = kNoTick;
    t.add(pend);                                   // id 1, not final
    t.add(mk(0, 1, AccessKind::DataRead, 2, 4));   // id 2

    // Nothing after the pending access's proc prefix may be admitted on
    // proc 1; proc 0 is fully final and below now.
    chk.drainWindow(t, 100);
    EXPECT_EQ(chk.retireReady(t), 1); // only id 0 is a consumed prefix

    // Finalize id 1; everything becomes admissible.
    t.mutableAt(1).commitTick = 3;
    t.mutableAt(1).gpTick = 3;
    chk.drainWindow(t, 100);
    EXPECT_EQ(chk.frontier(), 3);
    chk.finish(t);
    EXPECT_FALSE(chk.raceFree()); // ids 0 and 1 conflict unordered
    std::vector<Race> expect{{0, 1}};
    EXPECT_EQ(chk.sortedRaces(), expect);
}

TEST(TraceWindow, DrainWindowRespectsHorizon)
{
    // An access committed at tick 50 must not be ordered while `now` is
    // below it — later syncs could still commit before it.
    ExecutionTrace t;
    StreamingDrf0Checker chk(1, RaceDetectMode::AllRaces);
    t.add(mk(0, 0, AccessKind::DataWrite, 1, 50));
    EXPECT_EQ(chk.drainWindow(t, 50), 0);
    EXPECT_EQ(chk.drainWindow(t, 51), 1);
    EXPECT_EQ(chk.frontier(), 1);
}

TEST(TraceWindow, FinishFlagsCyclicLeftovers)
{
    // Artificial (po U so) cycle: po a->b, c->d with so d->a and b->c
    // (sync commit order at each location opposes program order).
    ExecutionTrace t;
    t.add(mk(0, 0, AccessKind::SyncRmw, 10, 10)); // a, id 0
    t.add(mk(0, 1, AccessKind::SyncRmw, 20, 0));  // b, id 1
    t.add(mk(1, 0, AccessKind::SyncRmw, 20, 5));  // c, id 2
    t.add(mk(1, 1, AccessKind::SyncRmw, 10, 5));  // d, id 3

    Drf0TraceReport oracle = checkTraceBitset(t);
    EXPECT_TRUE(oracle.hbCyclic);

    StreamingDrf0Checker chk(2, RaceDetectMode::AllRaces);
    chk.finish(t);
    EXPECT_TRUE(chk.hbCyclic());
}

} // namespace
