/**
 * @file
 * Unit tests for the thread pool and parallelFor: shutdown semantics,
 * exception propagation, and determinism against a serial loop.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hh"

namespace wo {
namespace {

TEST(ThreadPool, SpawnsRequestedWorkers)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.numThreads(), 3);
    ThreadPool one(1);
    EXPECT_EQ(one.numThreads(), 1);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.numThreads(), 1);
}

TEST(ThreadPool, SubmitRunsEveryJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsPendingJobs)
{
    // Destroying the pool must run (not drop) already-submitted jobs.
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                ++count;
            });
        }
        // No wait(): the destructor drains.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, RepeatedConstructDestroy)
{
    for (int round = 0; round < 20; ++round) {
        ThreadPool pool(2);
        std::atomic<int> count{0};
        pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 1);
    }
}

TEST(ThreadPool, WaitRethrowsJobException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("job failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: the pool stays usable afterwards.
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(pool, hits.size(),
                [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, PropagatesBodyException)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(pool, 64,
                             [](std::size_t i) {
                                 if (i == 3)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(ParallelFor, MatchesSerialExactly)
{
    // Index-slot writes: the parallel fill must be bit-identical to the
    // serial loop regardless of scheduling.
    auto f = [](std::size_t i) {
        std::uint64_t z = 0x9e3779b97f4a7c15ull * (i + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        return z ^ (z >> 27);
    };
    const std::size_t n = 1000;
    std::vector<std::uint64_t> serial(n);
    for (std::size_t i = 0; i < n; ++i)
        serial[i] = f(i);

    for (int threads : {1, 2, 4, 8}) {
        ThreadPool pool(threads);
        std::vector<std::uint64_t> par(n);
        parallelFor(pool, n, [&](std::size_t i) { par[i] = f(i); });
        EXPECT_EQ(par, serial) << threads << " threads";
    }
}

TEST(ParallelFor, NestedCallDoesNotDeadlock)
{
    // Root-splitting verifications run parallelFor from inside a pool
    // job; the caller participates, so even a 1-thread pool finishes.
    ThreadPool pool(1);
    std::atomic<int> total{0};
    parallelFor(pool, 4, [&](std::size_t) {
        parallelFor(pool, 8, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, ZeroAndOneIndexEdgeCases)
{
    ThreadPool pool(2);
    int calls = 0;
    parallelFor(pool, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(pool, 1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

} // namespace
} // namespace wo
