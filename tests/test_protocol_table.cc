/**
 * @file
 * Exhaustive walk of every (state, event) pair of every protocol's
 * transition table.
 *
 * Two properties are pinned:
 *  - every legal transition lands in a state the protocol declares
 *    (closure), with an action that makes sense for the event class;
 *  - every pair OUTSIDE the table THROWS std::logic_error from on()
 *    (a miswired controller must fail loudly, not silently no-op), and
 *    the diagnostic names the protocol, state and event.
 *
 * On top of the walk, the per-protocol shape is spot-checked against
 * the textbook definitions (MSI has no E/O/F; MESI's E upgrades
 * silently; MOESI's M answers a read recall by moving to O; MESIF
 * installs read fills in F).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "coherence/protocol.hh"

namespace wo {
namespace {

const ProtocolKind kAll[] = {ProtocolKind::Msi, ProtocolKind::Mesi,
                             ProtocolKind::Moesi, ProtocolKind::Mesif};

const LineState kStates[] = {LineState::Invalid,  LineState::Shared,
                             LineState::Exclusive, LineState::Modified,
                             LineState::Owned,    LineState::Forward};

const LineEvent kEvents[] = {
    LineEvent::Load,          LineEvent::Store,
    LineEvent::Evict,         LineEvent::FillShared,
    LineEvent::FillExclusive, LineEvent::FillModified,
    LineEvent::UpgradeOwnership, LineEvent::Invalidate,
    LineEvent::FwdGetS,       LineEvent::FwdGetX,
};

TEST(ProtocolTable, EveryLegalTransitionStaysInsideTheProtocolStateSet)
{
    for (ProtocolKind k : kAll) {
        const CoherenceProtocol &p = CoherenceProtocol::get(k);
        for (LineState s : kStates) {
            for (LineEvent e : kEvents) {
                if (!p.legal(s, e))
                    continue;
                const LineTransition &t = p.on(s, e);
                EXPECT_TRUE(t.next == LineState::Invalid ||
                            p.hasState(t.next))
                    << p.name() << " " << toString(s) << " x "
                    << toString(e) << " -> " << toString(t.next);
                // Transitions only start from states the protocol uses.
                EXPECT_TRUE(s == LineState::Invalid || p.hasState(s))
                    << p.name() << " transition from foreign state "
                    << toString(s);
            }
        }
    }
}

TEST(ProtocolTable, EveryIllegalPairThrowsNamingTheProtocolStateAndEvent)
{
    for (ProtocolKind k : kAll) {
        const CoherenceProtocol &p = CoherenceProtocol::get(k);
        int illegal = 0;
        for (LineState s : kStates) {
            for (LineEvent e : kEvents) {
                if (p.legal(s, e)) {
                    EXPECT_NO_THROW(p.on(s, e));
                    continue;
                }
                ++illegal;
                try {
                    p.on(s, e);
                    FAIL() << p.name() << ": on(" << toString(s) << ", "
                           << toString(e)
                           << ") is outside the table but did not throw";
                } catch (const std::logic_error &ex) {
                    std::string what = ex.what();
                    EXPECT_NE(what.find(p.name()), std::string::npos)
                        << what;
                    EXPECT_NE(what.find(toString(s)), std::string::npos)
                        << what;
                    EXPECT_NE(what.find(toString(e)), std::string::npos)
                        << what;
                }
            }
        }
        // Every protocol leaves most of the 6x10 grid illegal; a table
        // that legalizes everything is a bug in the walk itself.
        EXPECT_GT(illegal, 20) << p.name();
    }
}

TEST(ProtocolTable, ActionsMatchEventClass)
{
    // Request-side events never produce respond-side actions and vice
    // versa, for every protocol.
    for (ProtocolKind k : kAll) {
        const CoherenceProtocol &p = CoherenceProtocol::get(k);
        for (LineState s : kStates) {
            for (LineEvent e : kEvents) {
                if (!p.legal(s, e))
                    continue;
                LineAction a = p.on(s, e).action;
                switch (e) {
                  case LineEvent::Load:
                  case LineEvent::Store:
                    EXPECT_TRUE(a == LineAction::Hit ||
                                a == LineAction::SilentUpgrade ||
                                a == LineAction::IssueGetS ||
                                a == LineAction::IssueGetX ||
                                a == LineAction::IssueUpgrade)
                        << p.name() << " " << toString(s) << " x "
                        << toString(e);
                    break;
                  case LineEvent::Evict:
                    EXPECT_TRUE(a == LineAction::WritebackData ||
                                a == LineAction::RelinquishClean ||
                                a == LineAction::DropSilent)
                        << p.name() << " " << toString(s);
                    break;
                  case LineEvent::FillShared:
                  case LineEvent::FillExclusive:
                  case LineEvent::FillModified:
                  case LineEvent::UpgradeOwnership:
                    EXPECT_EQ(a, LineAction::None)
                        << p.name() << " " << toString(s) << " x "
                        << toString(e);
                    break;
                  case LineEvent::Invalidate:
                    EXPECT_EQ(a, LineAction::AckInvalidate) << p.name();
                    break;
                  case LineEvent::FwdGetS:
                    EXPECT_TRUE(a == LineAction::RespondData ||
                                a == LineAction::RespondDataOwned)
                        << p.name() << " " << toString(s);
                    break;
                  case LineEvent::FwdGetX:
                    EXPECT_EQ(a, LineAction::RespondDataInv)
                        << p.name() << " " << toString(s);
                    break;
                }
            }
        }
    }
}

TEST(ProtocolTable, MsiUsesOnlyInvalidSharedModified)
{
    const CoherenceProtocol &msi = CoherenceProtocol::get(ProtocolKind::Msi);
    EXPECT_TRUE(msi.hasState(LineState::Shared));
    EXPECT_TRUE(msi.hasState(LineState::Modified));
    EXPECT_FALSE(msi.hasState(LineState::Exclusive));
    EXPECT_FALSE(msi.hasState(LineState::Owned));
    EXPECT_FALSE(msi.hasState(LineState::Forward));
    EXPECT_FALSE(msi.grantsExclusiveClean());
    EXPECT_FALSE(msi.usesOwned());
    EXPECT_FALSE(msi.usesForward());
    // Reads fill Shared, writes fill Modified: the seed protocol.
    EXPECT_EQ(msi.on(LineState::Invalid, LineEvent::FillShared).next,
              LineState::Shared);
    EXPECT_EQ(msi.on(LineState::Invalid, LineEvent::FillModified).next,
              LineState::Modified);
    // No clean-exclusive fill exists in MSI.
    EXPECT_FALSE(msi.legal(LineState::Invalid, LineEvent::FillExclusive));
}

TEST(ProtocolTable, MesiGrantsCleanExclusiveAndUpgradesSilently)
{
    const CoherenceProtocol &p = CoherenceProtocol::get(ProtocolKind::Mesi);
    EXPECT_TRUE(p.grantsExclusiveClean());
    EXPECT_FALSE(p.usesOwned());
    EXPECT_FALSE(p.usesForward());
    EXPECT_EQ(p.on(LineState::Invalid, LineEvent::FillExclusive).next,
              LineState::Exclusive);
    const LineTransition &store = p.on(LineState::Exclusive,
                                       LineEvent::Store);
    EXPECT_EQ(store.next, LineState::Modified);
    EXPECT_EQ(store.action, LineAction::SilentUpgrade);
    // Clean E relinquishes without data on eviction.
    EXPECT_EQ(p.on(LineState::Exclusive, LineEvent::Evict).action,
              LineAction::RelinquishClean);
}

TEST(ProtocolTable, MoesiKeepsOwnershipAcrossReadRecalls)
{
    const CoherenceProtocol &p =
        CoherenceProtocol::get(ProtocolKind::Moesi);
    EXPECT_TRUE(p.usesOwned());
    const LineTransition &t = p.on(LineState::Modified, LineEvent::FwdGetS);
    EXPECT_EQ(t.next, LineState::Owned);
    EXPECT_EQ(t.action, LineAction::RespondDataOwned);
    // O supplies data and stays O across further read recalls; a store
    // needs an upgrade (sharers must be invalidated); eviction writes
    // the dirty data back.
    EXPECT_EQ(p.on(LineState::Owned, LineEvent::FwdGetS).next,
              LineState::Owned);
    EXPECT_EQ(p.on(LineState::Owned, LineEvent::Store).action,
              LineAction::IssueUpgrade);
    EXPECT_EQ(p.on(LineState::Owned, LineEvent::Evict).action,
              LineAction::WritebackData);
}

TEST(ProtocolTable, MesifInstallsReadFillsInForward)
{
    const CoherenceProtocol &p =
        CoherenceProtocol::get(ProtocolKind::Mesif);
    EXPECT_TRUE(p.usesForward());
    EXPECT_FALSE(p.usesOwned());
    // The most recent requester becomes the forwarder.
    EXPECT_EQ(p.on(LineState::Invalid, LineEvent::FillShared).next,
              LineState::Forward);
    // Serving a read demotes F to plain S (the requester takes over).
    const LineTransition &t = p.on(LineState::Forward, LineEvent::FwdGetS);
    EXPECT_EQ(t.next, LineState::Shared);
    EXPECT_EQ(t.action, LineAction::RespondData);
    // F is clean: eviction relinquishes, no data.
    EXPECT_EQ(p.on(LineState::Forward, LineEvent::Evict).action,
              LineAction::RelinquishClean);
}

TEST(ProtocolTable, ParseProtocolRoundTripsAndThrowsOnUnknown)
{
    for (ProtocolKind k : kAll)
        EXPECT_EQ(parseProtocol(toString(k)), k);
    EXPECT_EQ(parseProtocol("MESI"), ProtocolKind::Mesi);
    EXPECT_EQ(parseProtocol("MoEsI"), ProtocolKind::Moesi);
    try {
        parseProtocol("mosi");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        for (ProtocolKind k : kAll)
            EXPECT_NE(what.find(toString(k)), std::string::npos) << what;
    }
}

TEST(ProtocolTable, TransitionLabelsAreStableStrings)
{
    EXPECT_STREQ(transitionLabel(LineState::Modified, LineState::Shared),
                 "M->S");
    EXPECT_STREQ(transitionLabel(LineState::Invalid, LineState::Forward),
                 "I->F");
    EXPECT_STREQ(transitionLabel(LineState::Exclusive,
                                 LineState::Modified),
                 "E->M");
    // Same pointer every call: safe to keep in trace events forever.
    EXPECT_EQ(transitionLabel(LineState::Owned, LineState::Invalid),
              transitionLabel(LineState::Owned, LineState::Invalid));
}

} // namespace
} // namespace wo
