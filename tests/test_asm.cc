/**
 * @file
 * Unit tests for the assembly front end.
 */

#include <gtest/gtest.h>

#include "core/idealized.hh"
#include "workload/asm.hh"

namespace wo {
namespace {

TEST(Asm, AssemblesStraightLine)
{
    MultiProgram mp = assemble(R"(
P0:
    movi r1, #7
    store [5], r1
    load r0, [5]
    halt
)");
    ASSERT_EQ(mp.numProcs(), 1);
    ASSERT_EQ(mp.program(0).size(), 4);
    EXPECT_EQ(mp.program(0).at(0).op, Opcode::Movi);
    EXPECT_EQ(mp.program(0).at(1).op, Opcode::Store);
    EXPECT_EQ(mp.program(0).at(1).src, 1);
    EXPECT_EQ(mp.program(0).at(2).op, Opcode::Load);
}

TEST(Asm, RunsOnIdealizedMachine)
{
    MultiProgram mp = assemble(R"(
P0:
    store [0], #42
    unset [2], #1
P1:
spin:
    test r0, [2]
    beq r0, #0, spin
    load r1, [0]
)");
    RunResult r = runWithSchedule(mp, {0, 0, 0});
    ASSERT_TRUE(r.allHalted);
    EXPECT_EQ(r.registers[1][1], 42u);
}

TEST(Asm, LabelsAndBranches)
{
    MultiProgram mp = assemble(R"(
P0:
    movi r0, #3
loop:
    addi r1, r1, #2
    addi r0, r0, #-1
    bne r0, #0, loop
    halt
)");
    RunResult r = runWithSchedule(mp, {});
    EXPECT_EQ(r.registers[0][1], 6u);
}

TEST(Asm, LabelOnSameLineAsInstruction)
{
    MultiProgram mp = assemble(R"(
P0:
spin: test r0, [2]
    beq r0, #0, spin
)");
    EXPECT_EQ(mp.program(0).at(1).target, 0);
}

TEST(Asm, InitDirective)
{
    MultiProgram mp = assemble(R"(
init [5] = 99
P0:
    load r0, [5]
)");
    EXPECT_EQ(mp.initialValue(5), 99u);
    RunResult r = runWithSchedule(mp, {});
    EXPECT_EQ(r.registers[0][0], 99u);
}

TEST(Asm, TasAndUnsetForms)
{
    MultiProgram mp = assemble(R"(
P0:
    tas r0, [9]
    tas r1, [9], #0
    unset [9]
    unset [9], #5
    unset [9], r1
)");
    const Program &p = mp.program(0);
    EXPECT_EQ(p.at(0).imm, 1u);
    EXPECT_EQ(p.at(1).imm, 0u);
    EXPECT_EQ(p.at(2).imm, 0u);
    EXPECT_EQ(p.at(3).imm, 5u);
    EXPECT_EQ(p.at(4).src, 1);
}

TEST(Asm, CommentsAndBlankLines)
{
    MultiProgram mp = assemble(R"(
# a hash comment
P0:
    movi r0, #1   ; semicolon comment
    ; whole-line comment

    halt          # trailing hash comment
)");
    EXPECT_EQ(mp.program(0).size(), 2);
}

TEST(Asm, ImplicitHaltAppended)
{
    MultiProgram mp = assemble("P0:\n    movi r0, #1\n");
    EXPECT_EQ(mp.program(0).at(1).op, Opcode::Halt);
}

TEST(Asm, MissingSectionIsError)
{
    try {
        assemble("    movi r0, #1\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 1);
    }
}

TEST(Asm, UnknownMnemonicIsError)
{
    EXPECT_THROW(assemble("P0:\n    frob r0, #1\n"), AsmError);
}

TEST(Asm, UndefinedLabelIsError)
{
    EXPECT_THROW(assemble("P0:\n    beq r0, #0, nowhere\n"), AsmError);
}

TEST(Asm, BadRegisterIsError)
{
    EXPECT_THROW(assemble("P0:\n    load rx, [5]\n"), AsmError);
}

TEST(Asm, TrailingTokensIsError)
{
    EXPECT_THROW(assemble("P0:\n    nop nop\n"), AsmError);
}

TEST(Asm, GapProcessorsGetEmptyPrograms)
{
    MultiProgram mp = assemble(R"(
P0:
    movi r0, #1
P2:
    movi r0, #2
)");
    EXPECT_EQ(mp.numProcs(), 3);
    // P1 is an (implicitly halting) empty program.
    EXPECT_EQ(mp.program(1).size(), 1);
    EXPECT_EQ(mp.program(1).at(0).op, Opcode::Halt);
}

TEST(Asm, DisassembleRoundTrips)
{
    const char *src = R"(
init [5] = 9
P0:
    movi r0, #3
loop:
    addi r0, r0, #-1
    tas r2, [7], #1
    bne r0, #0, loop
    store [5], r0
    unset [7], #0
    halt
P1:
    test r1, [7]
    load r3, [5]
    halt
)";
    MultiProgram mp = assemble(src);
    std::string text = disassemble(mp);
    MultiProgram mp2 = assemble(text);
    ASSERT_EQ(mp2.numProcs(), mp.numProcs());
    for (int p = 0; p < mp.numProcs(); ++p) {
        ASSERT_EQ(mp2.program(p).size(), mp.program(p).size());
        for (int i = 0; i < mp.program(p).size(); ++i) {
            EXPECT_EQ(mp2.program(p).at(i).toString(),
                      mp.program(p).at(i).toString())
                << "P" << p << " @" << i;
        }
    }
    EXPECT_EQ(mp2.initialValue(5), 9u);
}

} // namespace
} // namespace wo
