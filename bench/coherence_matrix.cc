/**
 * @file
 * Protocol x hierarchy matrix benchmark: what MESI / MOESI / MESIF buy
 * (or cost) over the MSI baseline, at one and two cache levels.
 *
 *   $ coherence_matrix [--quick] [--json=FILE] [--seed=S]
 *
 * One cell per (protocol, cache levels) over a fixed workload mix that
 * spans the sharing patterns the protocols were designed around:
 *
 *   private   each processor read-modify-writes its own lines
 *             (MESI-family silent E->M upgrades vs MSI's second
 *             directory round trip);
 *   migratory a TAS lock + counter bouncing between processors
 *             (MOESI keeps dirty lines cache-resident);
 *   readfan   one writer, many repeat readers (MESIF forwards, MOESI
 *             serves from O without writing back);
 *   barrier   syncBarrier(4), a balanced mix of all of the above.
 *
 * Every job is run once for verification (all processors halt, the
 * end-of-run coherence audit is clean) while per-protocol stats are
 * summed, then the whole cell's job list is re-run and wall-timed for
 * jobs/sec. The table and JSON record per-cell L1 hit rate, directory
 * invalidations/recalls/writebacks, summed finish ticks, jobs/sec, and
 * each cell's finish-tick delta against the same-level MSI baseline
 * (negative = faster than MSI).
 *
 * Default JSON file: BENCH_coherence_matrix.json (the committed
 * artifact); --quick shrinks seeds/reps for CI smoke runs with the
 * identical schema.
 */

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cpu/program_builder.hh"
#include "sim/stats.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

namespace {

using namespace wo;

benchutil::BenchOptions g_opts;

/** Each processor accumulates into its own pair of lines: no sharing,
 * every store after the first is a hit-or-upgrade. */
MultiProgram
privateAccumulate(int num_procs, int rounds)
{
    MultiProgram mp("private-accumulate");
    for (int p = 0; p < num_procs; ++p) {
        ProgramBuilder b;
        Addr a = static_cast<Addr>(2 * p);
        Addr c = static_cast<Addr>(2 * p + 1);
        b.movi(0, 0);
        for (int r = 0; r < rounds; ++r) {
            b.load(1, a).addi(1, 1, 1).storeReg(a, 1);
            b.load(2, c).addi(2, 2, 2).storeReg(c, 2);
        }
        b.halt();
        mp.addProgram(b.build());
    }
    return mp;
}

/** One writer publishes a block; every reader re-reads it repeatedly
 * (the readers spin on a sync flag first, so the block is stable). */
MultiProgram
readFan(int num_readers, int rounds)
{
    constexpr Addr kFlag = 32;
    MultiProgram mp("read-fan");
    ProgramBuilder w;
    w.store(0, 7).store(1, 9).unset(kFlag, 1).halt();
    mp.addProgram(w.build());
    for (int p = 0; p < num_readers; ++p) {
        ProgramBuilder b;
        b.label("spin").test(0, kFlag).beq(0, 0, "spin");
        for (int r = 0; r < rounds; ++r)
            b.load(1, 0).load(2, 1);
        b.halt();
        mp.addProgram(b.build());
    }
    return mp;
}

struct Workload
{
    const char *name;
    MultiProgram prog;
};

struct Cell
{
    ProtocolKind proto;
    int levels;
};

std::uint64_t
sumPrefixed(const StatSet &stats, const std::string &prefix,
            const std::string &suffix)
{
    std::uint64_t sum = 0;
    for (const auto &[name, value] : stats.all()) {
        if (name.rfind(prefix, 0) == 0 &&
            name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            sum += value;
    }
    return sum;
}

SystemConfig
cellConfig(const Cell &cell, std::uint64_t seed)
{
    SystemConfig cfg =
        machineOrThrow("net-cold").config(PolicyKind::Def2Drf0, seed);
    cfg.protocol = cell.proto;
    cfg.cacheLevels = cell.levels;
    return cfg;
}

int
run()
{
    const int seeds = g_opts.quick ? 2 : 10;
    const int reps = g_opts.quick ? 1 : 3;

    std::vector<Workload> workloads;
    workloads.push_back({"private", privateAccumulate(4, 6)});
    workloads.push_back({"migratory", tasLockCounter(4, 3)});
    workloads.push_back({"readfan", readFan(3, 6)});
    workloads.push_back({"barrier", syncBarrier(4)});

    std::vector<Cell> cells;
    for (int levels : {1, 2}) {
        for (ProtocolKind k :
             {ProtocolKind::Msi, ProtocolKind::Mesi, ProtocolKind::Moesi,
              ProtocolKind::Mesif})
            cells.push_back({k, levels});
    }

    StatSet out;
    out.set("quick", g_opts.quick ? 1 : 0);
    out.set("seeds", seeds);
    out.set("jobs_per_cell",
            static_cast<std::uint64_t>(workloads.size()) * seeds);

    benchutil::banner("protocol x hierarchy matrix (net-cold base, "
                      "WO-Def2-DRF0)");
    benchutil::Table table({"proto", "levels", "l1 hit%", "invs",
                            "recalls", "wbacks", "ticks", "jobs/s",
                            "dticks vs msi"});

    std::vector<std::uint64_t> msi_ticks(3, 0); // per level

    for (const Cell &cell : cells) {
        std::string key = std::string("matrix.") + toString(cell.proto) +
                          ".l" + std::to_string(cell.levels);

        // Verification pass: every job must complete with a clean
        // coherence audit; protocol stats are summed on the way.
        std::uint64_t hits = 0, misses = 0, invs = 0, recalls = 0,
                      wbacks = 0, ticks = 0;
        for (const Workload &w : workloads) {
            for (int s = 0; s < seeds; ++s) {
                SystemConfig cfg =
                    cellConfig(cell, g_opts.baseSeed + s);
                System sys(w.prog, cfg);
                if (!sys.run()) {
                    std::cerr << "FAIL: " << w.name << " did not finish "
                              << "under " << toString(cell.proto) << "/L"
                              << cell.levels << " seed "
                              << g_opts.baseSeed + s << "\n";
                    return 1;
                }
                auto problems = sys.auditCoherence();
                if (!problems.empty()) {
                    std::cerr << "FAIL: coherence audit under "
                              << toString(cell.proto) << "/L"
                              << cell.levels << ":\n";
                    for (const auto &p : problems)
                        std::cerr << "  " << p << "\n";
                    return 1;
                }
                const StatSet &st = sys.stats();
                hits += sumPrefixed(st, "cache", ".hits");
                misses += sumPrefixed(st, "cache", ".misses");
                invs += st.get("dir0.invalidations");
                recalls += st.get("dir0.recalls");
                wbacks += st.get("dir0.writebacks") +
                          sumPrefixed(st, "l2cache", ".writebacks");
                ticks += sys.finishTick();
            }
        }

        // Timing pass: wall-time the whole job list, best of reps.
        std::uint64_t best_ns = ~std::uint64_t(0);
        for (int r = 0; r < reps; ++r) {
            auto t0 = std::chrono::steady_clock::now();
            for (const Workload &w : workloads) {
                for (int s = 0; s < seeds; ++s) {
                    System sys(w.prog,
                               cellConfig(cell, g_opts.baseSeed + s));
                    sys.run();
                }
            }
            auto t1 = std::chrono::steady_clock::now();
            auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t1 - t0)
                    .count();
            best_ns =
                std::min(best_ns, static_cast<std::uint64_t>(ns));
        }
        std::uint64_t jobs = workloads.size() * seeds;
        std::uint64_t jobs_per_sec =
            best_ns ? jobs * 1000000000ull / best_ns : 0;

        std::uint64_t hit_permille =
            (hits + misses) ? hits * 1000 / (hits + misses) : 0;
        if (cell.proto == ProtocolKind::Msi)
            msi_ticks[cell.levels] = ticks;
        std::uint64_t base = msi_ticks[cell.levels];
        std::int64_t dticks_permille =
            base ? (static_cast<std::int64_t>(ticks) -
                    static_cast<std::int64_t>(base)) *
                       1000 / static_cast<std::int64_t>(base)
                 : 0;

        out.set(key + ".hit_permille", hit_permille);
        out.set(key + ".invalidations", invs);
        out.set(key + ".recalls", recalls);
        out.set(key + ".writebacks", wbacks);
        out.set(key + ".finish_ticks", ticks);
        out.set(key + ".jobs_per_sec", jobs_per_sec);
        out.set(key + ".dticks_permille_signed_plus1000",
                static_cast<std::uint64_t>(dticks_permille + 1000));

        std::ostringstream hit, dt;
        hit << hit_permille / 10 << "." << hit_permille % 10;
        std::int64_t ap =
            dticks_permille < 0 ? -dticks_permille : dticks_permille;
        dt << (dticks_permille < 0 ? "-" : "+") << ap / 10 << "."
           << ap % 10 << "%";
        table.addRow({toString(cell.proto),
                      std::to_string(cell.levels), hit.str(),
                      std::to_string(invs), std::to_string(recalls),
                      std::to_string(wbacks), std::to_string(ticks),
                      std::to_string(jobs_per_sec),
                      cell.proto == ProtocolKind::Msi ? "-" : dt.str()});
    }
    table.print();

    benchutil::dumpJsonFile(
        out, g_opts.jsonFile.empty() ? "BENCH_coherence_matrix.json"
                                     : g_opts.jsonFile);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    g_opts = benchutil::consumeBenchFlags(argc, argv);
    if (argc > 1) {
        std::cerr << "usage: coherence_matrix [--quick] [--json=FILE] "
                     "[--seed=S]\n";
        return 2;
    }
    return run();
}
