/**
 * @file
 * Race-detection benchmark: the streaming vector-clock checker against
 * the historical dense-bitset happens-before closure.
 *
 *   $ race_detect [--quick] [--json=FILE] [--corpus=DIR] [--no-corpus]
 *
 * Three sections, each printed as a table and recorded in a StatSet that
 * is dumped as JSON (default file: BENCH_race_detect.json):
 *
 *  1. per-trace checking on synthetic traces of 100..10k accesses,
 *     race-free and racy, checkTraceBitset() vs checkTrace() — the
 *     tentpole O(n^2/64) -> O(n*P) comparison;
 *  2. the sampled program check, online early-exit vs an offline
 *     reference that runs every schedule to completion and race-checks
 *     the full trace with the bitset oracle;
 *  3. end-to-end wo-litmus corpus wall time with the DRF0 verdict memo
 *     on and off (single-threaded, so the delta is the checker's).
 *
 * All timings are best-of-N std::chrono::steady_clock measurements.
 * --quick shrinks repetitions and corpus seeds for CI smoke runs; the
 * measured shape (and the JSON schema) is identical.
 */

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/drf0_checker.hh"
#include "core/idealized.hh"
#include "core/race_detector.hh"
#include "litmus/compiler.hh"
#include "litmus/runner.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wo;

/** Best-of-@p reps wall time of @p fn, in nanoseconds. */
template <class F>
std::uint64_t
bestNs(int reps, F &&fn)
{
    std::uint64_t best = ~std::uint64_t(0);
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      t1 - t0)
                      .count();
        best = std::min(best, static_cast<std::uint64_t>(ns));
    }
    return best;
}

/** Same synthetic shape as fig2_drf0_check: 4th access is a sync RMW on
 * one global lock; data accesses go to shared locations (racy) or a
 * per-processor private one (race-free). */
ExecutionTrace
syntheticTrace(int procs, int per_proc, bool racy, std::uint64_t seed)
{
    Rng rng(seed);
    ExecutionTrace t;
    t.reserve(procs * per_proc);
    Tick now = 0;
    for (int p = 0; p < procs; ++p) {
        for (int i = 0; i < per_proc; ++i) {
            Access a;
            a.proc = p;
            a.poIndex = i;
            bool sync = (i % 4 == 3);
            if (sync) {
                a.kind = AccessKind::SyncRmw;
                a.addr = 1000;
            } else {
                a.kind = rng.chance(1, 2) ? AccessKind::DataWrite
                                          : AccessKind::DataRead;
                a.addr = racy ? static_cast<Addr>(rng.below(8))
                              : static_cast<Addr>(100 + p);
            }
            a.commitTick = now++;
            a.gpTick = a.commitTick;
            t.add(a);
        }
    }
    return t;
}

std::string
fmtNs(std::uint64_t ns)
{
    std::ostringstream oss;
    if (ns >= 10000000)
        oss << ns / 1000000 << " ms";
    else if (ns >= 10000)
        oss << ns / 1000 << " us";
    else
        oss << ns << " ns";
    return oss.str();
}

std::string
fmtSpeedup(std::uint64_t milli)
{
    std::ostringstream oss;
    oss << milli / 1000 << "." << (milli % 1000) / 100 << "x";
    return oss.str();
}

void
benchTraceChecks(StatSet &stats, bool quick)
{
    benchutil::banner(
        "Per-trace race check: bitset closure vs vector clocks");
    const int procs = 4;
    const int reps = quick ? 3 : 7;
    benchutil::Table table(
        {"accesses", "variant", "bitset", "vclock", "speedup"});
    for (int n : {100, 500, 1000, 2000, 5000, 10000}) {
        for (bool racy : {false, true}) {
            ExecutionTrace t =
                syntheticTrace(procs, n / procs, racy, 42);
            // Prime caches and sanity-check agreement outside timing.
            Drf0TraceReport vc = checkTrace(t);
            Drf0TraceReport bs = checkTraceBitset(t);
            if (vc.raceFree != bs.raceFree || vc.races != bs.races) {
                std::cerr << "BUG: checkers disagree at n=" << n << "\n";
                std::exit(1);
            }
            std::uint64_t bitset_ns = bestNs(reps, [&] {
                Drf0TraceReport r = checkTraceBitset(t);
                if (r.raceFree != bs.raceFree)
                    std::exit(1);
            });
            std::uint64_t vc_ns = bestNs(reps, [&] {
                Drf0TraceReport r = checkTrace(t);
                if (r.raceFree != bs.raceFree)
                    std::exit(1);
            });
            std::uint64_t speedup_milli =
                vc_ns ? bitset_ns * 1000 / vc_ns : 0;
            std::string key = std::string("trace.") +
                              (racy ? "racy" : "racefree") + ".n" +
                              std::to_string(n);
            stats.set(key + ".bitset_ns", bitset_ns);
            stats.set(key + ".vclock_ns", vc_ns);
            stats.set(key + ".speedup_milli", speedup_milli);
            table.addRow({std::to_string(n),
                          racy ? "racy" : "race-free", fmtNs(bitset_ns),
                          fmtNs(vc_ns), fmtSpeedup(speedup_milli)});
        }
    }
    table.print();
    std::cout << "\n(speedup = bitset / vclock wall time, best of "
              << reps << " runs; racy traces include race "
              << "enumeration in both checkers)\n";
}

/** The pre-vector-clock sampled check: same schedule stream, every
 * execution run to completion and bitset-checked offline. */
Drf0ProgramReport
offlineSampled(const MultiProgram &program, int num_schedules,
               std::uint64_t seed, int max_steps = 10000)
{
    Drf0ProgramReport report;
    report.bounded = true;
    Rng rng(seed);
    int nprocs = program.numProcs();
    for (int s = 0; s < num_schedules && report.obeysDrf0; ++s) {
        IdealizedMachine m(program);
        int steps = 0;
        while (!m.allHalted() && steps < max_steps) {
            ProcId p = static_cast<ProcId>(rng.below(nprocs));
            while (m.halted(p))
                p = (p + 1) % nprocs;
            m.step(p);
            ++steps;
        }
        ++report.executions;
        Drf0TraceReport tr = checkTraceBitset(m.trace());
        if (!tr.raceFree) {
            report.obeysDrf0 = false;
            report.witness = m.trace();
            report.witnessReport = tr;
        }
    }
    return report;
}

void
benchSampledCheck(StatSet &stats, bool quick)
{
    benchutil::banner(
        "Sampled program check: online early-exit vs offline");
    const int schedules = quick ? 60 : 200;
    const int reps = quick ? 2 : 5;
    RandomWorkloadConfig cfg;
    cfg.numProcs = 3;
    cfg.numLocks = 2;
    cfg.locsPerLock = 3;
    cfg.privateLocs = 2;
    cfg.sectionsPerProc = 3;
    cfg.opsPerSection = 3;
    cfg.privateOpsBetween = 2;
    cfg.spinAcquire = true;
    cfg.seed = 11;

    benchutil::Table table(
        {"program", "schedules", "offline", "online", "speedup"});
    struct Case
    {
        const char *label;
        MultiProgram program;
    };
    std::vector<Case> cases;
    cases.push_back({"drf0-spinlock", randomDrf0Program(cfg)});
    cases.push_back({"racy-unguarded", randomRacyProgram(cfg, 2)});
    for (Case &c : cases) {
        Drf0ProgramReport on = checkProgramSampled(c.program, schedules, 9);
        Drf0ProgramReport off = offlineSampled(c.program, schedules, 9);
        if (on.obeysDrf0 != off.obeysDrf0 ||
            on.executions != off.executions) {
            std::cerr << "BUG: sampled checkers disagree on " << c.label
                      << "\n";
            std::exit(1);
        }
        std::uint64_t off_ns = bestNs(reps, [&] {
            Drf0ProgramReport r = offlineSampled(c.program, schedules, 9);
            if (r.obeysDrf0 != off.obeysDrf0)
                std::exit(1);
        });
        std::uint64_t on_ns = bestNs(reps, [&] {
            Drf0ProgramReport r =
                checkProgramSampled(c.program, schedules, 9);
            if (r.obeysDrf0 != off.obeysDrf0)
                std::exit(1);
        });
        std::uint64_t speedup_milli = on_ns ? off_ns * 1000 / on_ns : 0;
        std::string key = std::string("sampled.") + c.label;
        stats.set(key + ".offline_ns", off_ns);
        stats.set(key + ".online_ns", on_ns);
        stats.set(key + ".speedup_milli", speedup_milli);
        stats.set(key + ".executions", on.executions);
        table.addRow({c.label, std::to_string(schedules), fmtNs(off_ns),
                      fmtNs(on_ns), fmtSpeedup(speedup_milli)});
    }
    table.print();
    std::cout << "\n(verdicts, execution counts and witnesses are "
                 "checked identical before timing)\n";
}

void
benchCorpus(StatSet &stats, const std::string &dir, bool quick)
{
    benchutil::banner("wo-litmus corpus wall time (threads=1)");
    std::vector<litmus_dsl::CompiledLitmus> tests;
    for (const std::string &f : litmus_dsl::findLitmusFiles({dir}))
        tests.push_back(litmus_dsl::compileLitmusFile(f));

    litmus_dsl::RunnerOptions options;
    options.seeds = quick ? 1 : 3;
    options.threads = 1;
    options.drf0Schedules = quick ? 50 : 200;

    auto run = [&](bool memo) {
        options.drf0Memo = memo;
        litmus_dsl::CorpusReport r = litmus_dsl::runCorpus(tests, options);
        return r.tests.size();
    };
    run(true); // warm-up (page cache, allocator)
    std::uint64_t memo_ns = bestNs(1, [&] { run(true); });
    std::uint64_t nomemo_ns = bestNs(1, [&] { run(false); });
    stats.set("corpus.tests", tests.size());
    stats.set("corpus.seeds", static_cast<std::uint64_t>(options.seeds));
    stats.set("corpus.memo_ns", memo_ns);
    stats.set("corpus.nomemo_ns", nomemo_ns);
    benchutil::Table table({"config", "wall"});
    table.addRow({"drf0 memo on", fmtNs(memo_ns)});
    table.addRow({"drf0 memo off", fmtNs(nomemo_ns)});
    table.print();
    std::cout << "\n(" << tests.size() << " tests, " << options.seeds
              << " seeds per cell; full simulation included, so the "
                 "delta bounds the memo's share)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool corpus = true;
    std::string json_file = "BENCH_race_detect.json";
    std::string corpus_dir = "tests/litmus";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_file = arg.substr(7);
        } else if (arg.rfind("--corpus=", 0) == 0) {
            corpus_dir = arg.substr(9);
        } else if (arg == "--no-corpus") {
            corpus = false;
        } else {
            std::cerr << "usage: race_detect [--quick] [--json=FILE] "
                         "[--corpus=DIR] [--no-corpus]\n";
            return 2;
        }
    }

    StatSet stats;
    stats.set("quick", quick ? 1 : 0);
    benchTraceChecks(stats, quick);
    benchSampledCheck(stats, quick);
    if (corpus && std::filesystem::is_directory(corpus_dir)) {
        benchCorpus(stats, corpus_dir, quick);
    } else if (corpus) {
        std::cout << "\n(corpus section skipped: no directory "
                  << corpus_dir << ")\n";
    }

    std::ofstream out(json_file);
    if (!out) {
        std::cerr << "race_detect: cannot write " << json_file << "\n";
        return 2;
    }
    stats.dumpJson(out);
    out << "\n";
    std::cout << "\njson written to " << json_file << "\n";
    return 0;
}
