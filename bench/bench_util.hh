/**
 * @file
 * Shared helpers for the benchmark/reproduction binaries: aligned table
 * printing for the paper-style reports each bench emits before its
 * google-benchmark timings, and common command-line flag handling.
 */

#ifndef WO_BENCH_BENCH_UTIL_HH
#define WO_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "system/machine_spec.hh"
#include "workload/campaign.hh"

namespace wo::benchutil {

/** Flags shared by every bench binary. */
struct BenchOptions
{
    int threads = 0;            ///< campaign workers; 0 = WO_THREADS/auto
    std::uint64_t baseSeed = 1; ///< campaign seed-stream base

    /** Machines selected with --machines=<list>; empty = bench default. */
    std::vector<const MachineSpec *> machines;

    /** --quick: shrink sweeps/repetitions for CI smoke runs. */
    bool quick = false;

    /** --json=FILE: where to dump the bench StatSet; empty = no dump
     * (benches with a committed BENCH_*.json default it themselves). */
    std::string jsonFile;
};

/**
 * Strip the flags every bench understands (--threads=N / --threads N,
 * honouring WO_THREADS, --seed=S / --seed S, --machines=LIST of
 * machine-registry names, --quick, and --json=FILE) from argv before it
 * is handed to google-benchmark, which rejects flags it does not know.
 * Exits with status 2 on an unknown machine name.
 */
inline BenchOptions
consumeBenchFlags(int &argc, char **argv)
{
    BenchOptions opts;
    opts.threads = consumeThreadsFlag(argc, argv);
    opts.baseSeed = consumeSeedFlag(argc, argv);
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--machines=", 0) == 0) {
            try {
                opts.machines = parseMachineList(arg.substr(11));
            } catch (const std::exception &e) {
                std::cerr << argv[0] << ": " << e.what() << "\n";
                std::exit(2);
            }
        } else if (arg == "--quick") {
            opts.quick = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.jsonFile = arg.substr(7);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return opts;
}

/** Dump @p stats as JSON to @p file; complains but does not abort on
 * I/O failure (a bench's tables already printed). */
inline void
dumpJsonFile(const StatSet &stats, const std::string &file)
{
    std::ofstream out(file);
    if (!out) {
        std::cerr << "cannot write " << file << "\n";
        return;
    }
    stats.dumpJson(out);
    out << "\n";
    std::cout << "\njson written to " << file << "\n";
}

/**
 * The machine list a bench sweeps over: the --machines selection, or
 * the bench's default machine. Table banners should name the machine
 * when the selection was explicit (opts.machines non-empty), so the
 * default output stays byte-identical.
 */
inline std::vector<const MachineSpec *>
machinesOr(const BenchOptions &opts, const std::string &default_name)
{
    if (!opts.machines.empty())
        return opts.machines;
    return {&machineOrThrow(default_name)};
}

/** Prints an aligned table: header row then data rows. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    void
    addRow(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    void
    print(std::ostream &os = std::cout) const
    {
        std::vector<std::size_t> width(header_.size(), 0);
        auto widen = [&](const std::vector<std::string> &row) {
            for (std::size_t i = 0; i < row.size() && i < width.size();
                 ++i) {
                width[i] = std::max(width[i], row[i].size());
            }
        };
        widen(header_);
        for (const auto &r : rows_)
            widen(r);
        auto emit = [&](const std::vector<std::string> &row) {
            for (std::size_t i = 0; i < row.size(); ++i) {
                os << std::left
                   << std::setw(static_cast<int>(width[i]) + 2) << row[i];
            }
            os << '\n';
        };
        emit(header_);
        for (std::size_t i = 0; i < width.size(); ++i)
            os << std::string(width[i], '-') << "  ";
        os << '\n';
        for (const auto &r : rows_)
            emit(r);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

} // namespace wo::benchutil

#endif // WO_BENCH_BENCH_UTIL_HH
