/**
 * @file
 * Infrastructure ablation: cost of the formal machinery — the SC
 * verifier's backtracking search and the idealized architecture's
 * outcome enumeration — as workloads grow, plus the parallel campaign
 * engine fanning whole verifications (and, via root-splitting, the
 * branches of a single verification) across hardware threads.
 *
 *   $ ./checker_scaling [--threads=N]   # N defaults to WO_THREADS / hw
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench_util.hh"
#include "core/idealized.hh"
#include "core/sc_verifier.hh"
#include "cpu/program_builder.hh"
#include "system/system.hh"
#include "workload/campaign.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wo;

wo::benchutil::BenchOptions g_opts; // resolved in main() from --threads/--seed

/** Machine the traced executions run on (first --machines entry). */
const MachineSpec *g_machine = nullptr;

ExecutionTrace
traceFor(int sections, std::uint64_t seed)
{
    RandomWorkloadConfig w;
    w.numProcs = 4;
    w.numLocks = 2;
    w.locsPerLock = 3;
    w.sectionsPerProc = sections;
    w.opsPerSection = 3;
    w.seed = seed;
    MultiProgram mp = randomDrf0Program(w);
    SystemConfig cfg = g_machine->config(PolicyKind::Def2Drf0, seed);
    System sys(mp, cfg);
    sys.run();
    return sys.trace();
}

/**
 * Campaign table: verify many executions concurrently (the common
 * "check a whole sweep" workload). The verdict/state columns come from
 * the serial per-job verifier, so they are identical at every thread
 * count; only the wall time changes.
 */
void
printCampaignTable()
{
    const int sizes = 6, seedsPer = 4;
    const int jobs = sizes * seedsPer;
    Campaign campaign({g_opts.threads, g_opts.baseSeed});
    benchutil::banner(
        "Verification campaign: " + std::to_string(jobs) +
        " executions (6 sizes x 4 seeds), " +
        std::to_string(campaign.numThreads()) + " thread(s)");

    struct JobResult
    {
        int accesses = 0;
        std::uint64_t states = 0;
        bool sc = false;
    };
    auto runJob = [&](const CampaignJob &job) {
        int sections = job.index / seedsPer + 1;
        std::uint64_t seed = 11 + job.index % seedsPer;
        ExecutionTrace t = traceFor(sections, seed);
        ScReport r = verifySc(t);
        JobResult res;
        res.accesses = t.size();
        res.states = r.statesExplored;
        res.sc = r.sc();
        return res;
    };

    auto t0 = std::chrono::steady_clock::now();
    std::vector<JobResult> results =
        campaign.map<JobResult>(jobs, runJob);
    auto t1 = std::chrono::steady_clock::now();

    benchutil::Table t({"sections/proc", "appear SC", "avg accesses",
                        "total search states"});
    for (int s = 0; s < sizes; ++s) {
        int sc = 0, acc = 0;
        std::uint64_t states = 0;
        for (int k = 0; k < seedsPer; ++k) {
            const JobResult &r =
                results[static_cast<std::size_t>(s * seedsPer + k)];
            sc += r.sc ? 1 : 0;
            acc += r.accesses;
            states += r.states;
        }
        t.addRow({std::to_string(s + 1),
                  std::to_string(sc) + "/" + std::to_string(seedsPer),
                  std::to_string(acc / seedsPer),
                  std::to_string(states)});
    }
    t.print();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::cout << "\nCampaign wall time: " << ms << " ms ("
              << campaign.numThreads()
              << " threads; table bytes are thread-count independent)\n";
}

void
BM_ScVerifier(benchmark::State &state)
{
    ExecutionTrace t = traceFor(static_cast<int>(state.range(0)), 11);
    std::uint64_t states = 0;
    for (auto _ : state) {
        ScReport r = verifySc(t);
        states = r.statesExplored;
        benchmark::DoNotOptimize(r.verdict);
    }
    state.counters["trace_accesses"] =
        benchmark::Counter(static_cast<double>(t.size()));
    state.counters["search_states"] =
        benchmark::Counter(static_cast<double>(states));
}
BENCHMARK(BM_ScVerifier)->DenseRange(1, 6);

void
BM_ScVerifierRootSplit(benchmark::State &state)
{
    // One verification, its first-level branches spread over the pool.
    ExecutionTrace t = traceFor(static_cast<int>(state.range(0)), 11);
    ThreadPool pool(campaignThreads(g_opts.threads));
    std::uint64_t states = 0;
    for (auto _ : state) {
        ScReport r = verifyScParallel(t, pool);
        states = r.statesExplored;
        benchmark::DoNotOptimize(r.verdict);
    }
    state.counters["search_states"] =
        benchmark::Counter(static_cast<double>(states));
    state.SetLabel(std::to_string(pool.numThreads()) + " threads");
}
BENCHMARK(BM_ScVerifierRootSplit)->Arg(3)->Arg(6);

void
BM_VerifyCampaign(benchmark::State &state)
{
    // Throughput of whole-verification fan-out: 8 medium traces per
    // iteration through the campaign engine.
    std::vector<ExecutionTrace> traces;
    for (std::uint64_t s = 11; s < 19; ++s)
        traces.push_back(traceFor(4, s));
    Campaign campaign({g_opts.threads, g_opts.baseSeed});
    for (auto _ : state) {
        std::vector<int> verdicts = campaign.map<int>(
            static_cast<int>(traces.size()),
            [&](const CampaignJob &job) {
                return static_cast<int>(
                    verifySc(traces[static_cast<std::size_t>(job.index)])
                        .verdict);
            });
        benchmark::DoNotOptimize(verdicts.data());
    }
    state.counters["traces"] = benchmark::Counter(
        static_cast<double>(traces.size()), benchmark::Counter::kIsRate);
    state.SetLabel(std::to_string(campaign.numThreads()) + " threads");
}
BENCHMARK(BM_VerifyCampaign);

MultiProgram
boundedWorkload(int procs, int sections)
{
    RandomWorkloadConfig w;
    w.numProcs = procs;
    w.numLocks = 1;
    w.locsPerLock = 2;
    w.sectionsPerProc = sections;
    w.opsPerSection = 1;
    w.privateOpsBetween = 1;
    w.spinAcquire = false;
    w.seed = 5;
    return randomDrf0Program(w);
}

void
BM_OutcomeEnumeration(benchmark::State &state)
{
    MultiProgram mp =
        boundedWorkload(static_cast<int>(state.range(0)), 1);
    std::uint64_t states = 0, outcomes = 0;
    for (auto _ : state) {
        OutcomeSet s = enumerateOutcomes(mp);
        states = s.statesVisited;
        outcomes = s.outcomes.size();
        benchmark::DoNotOptimize(s.bounded);
    }
    state.counters["states"] =
        benchmark::Counter(static_cast<double>(states));
    state.counters["outcomes"] =
        benchmark::Counter(static_cast<double>(outcomes));
}
BENCHMARK(BM_OutcomeEnumeration)->DenseRange(2, 4);

void
BM_ExhaustiveInterleavings(benchmark::State &state)
{
    // Straight-line Dekker-style programs: interleavings grow
    // combinatorially with length.
    int len = static_cast<int>(state.range(0));
    MultiProgram mp("scaling");
    for (int p = 0; p < 2; ++p) {
        ProgramBuilder b;
        for (int i = 0; i < len; ++i) {
            b.store(static_cast<Addr>(p * 100 + i), i);
        }
        b.halt();
        mp.addProgram(b.build());
    }
    std::uint64_t execs = 0;
    for (auto _ : state) {
        std::uint64_t n = 0;
        forEachExecution(mp, {},
                         [&](const ExecutionTrace &, const RunResult &,
                             bool) {
                             ++n;
                             return true;
                         });
        execs = n;
        benchmark::DoNotOptimize(n);
    }
    state.counters["interleavings"] =
        benchmark::Counter(static_cast<double>(execs));
}
BENCHMARK(BM_ExhaustiveInterleavings)->DenseRange(2, 7);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Raw simulator speed: simulated ticks per second of host time.
    std::uint64_t seed = 1;
    std::uint64_t total = 0;
    for (auto _ : state) {
        RandomWorkloadConfig w;
        w.numProcs = 8;
        w.numLocks = 4;
        w.sectionsPerProc = 6;
        w.seed = seed;
        MultiProgram mp = randomDrf0Program(w);
        SystemConfig cfg =
            machineOrThrow("net-cold").config(PolicyKind::Def2Drf1, seed++);
        System sys(mp, cfg);
        sys.run();
        total += sys.eventQueue().executed();
    }
    state.counters["events"] = benchmark::Counter(
        static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput);

} // namespace

int
main(int argc, char **argv)
{
    g_opts = wo::benchutil::consumeBenchFlags(argc, argv);
    g_machine = wo::benchutil::machinesOr(g_opts, "net-cold").front();
    printCampaignTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
