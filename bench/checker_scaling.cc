/**
 * @file
 * Infrastructure ablation: cost of the formal machinery — the SC
 * verifier's backtracking search and the idealized architecture's
 * outcome enumeration — as workloads grow.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/idealized.hh"
#include "core/sc_verifier.hh"
#include "cpu/program_builder.hh"
#include "system/system.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wo;

ExecutionTrace
traceFor(int sections, std::uint64_t seed)
{
    RandomWorkloadConfig w;
    w.numProcs = 4;
    w.numLocks = 2;
    w.locsPerLock = 3;
    w.sectionsPerProc = sections;
    w.opsPerSection = 3;
    w.seed = seed;
    MultiProgram mp = randomDrf0Program(w);
    SystemConfig cfg;
    cfg.policy = PolicyKind::Def2Drf0;
    cfg.net.seed = seed;
    System sys(mp, cfg);
    sys.run();
    return sys.trace();
}

void
BM_ScVerifier(benchmark::State &state)
{
    ExecutionTrace t = traceFor(static_cast<int>(state.range(0)), 11);
    std::uint64_t states = 0;
    for (auto _ : state) {
        ScReport r = verifySc(t);
        states = r.statesExplored;
        benchmark::DoNotOptimize(r.verdict);
    }
    state.counters["trace_accesses"] =
        benchmark::Counter(static_cast<double>(t.size()));
    state.counters["search_states"] =
        benchmark::Counter(static_cast<double>(states));
}
BENCHMARK(BM_ScVerifier)->DenseRange(1, 6);

MultiProgram
boundedWorkload(int procs, int sections)
{
    RandomWorkloadConfig w;
    w.numProcs = procs;
    w.numLocks = 1;
    w.locsPerLock = 2;
    w.sectionsPerProc = sections;
    w.opsPerSection = 1;
    w.privateOpsBetween = 1;
    w.spinAcquire = false;
    w.seed = 5;
    return randomDrf0Program(w);
}

void
BM_OutcomeEnumeration(benchmark::State &state)
{
    MultiProgram mp =
        boundedWorkload(static_cast<int>(state.range(0)), 1);
    std::uint64_t states = 0, outcomes = 0;
    for (auto _ : state) {
        OutcomeSet s = enumerateOutcomes(mp);
        states = s.statesVisited;
        outcomes = s.outcomes.size();
        benchmark::DoNotOptimize(s.bounded);
    }
    state.counters["states"] =
        benchmark::Counter(static_cast<double>(states));
    state.counters["outcomes"] =
        benchmark::Counter(static_cast<double>(outcomes));
}
BENCHMARK(BM_OutcomeEnumeration)->DenseRange(2, 4);

void
BM_ExhaustiveInterleavings(benchmark::State &state)
{
    // Straight-line Dekker-style programs: interleavings grow
    // combinatorially with length.
    int len = static_cast<int>(state.range(0));
    MultiProgram mp("scaling");
    for (int p = 0; p < 2; ++p) {
        ProgramBuilder b;
        for (int i = 0; i < len; ++i) {
            b.store(static_cast<Addr>(p * 100 + i), i);
        }
        b.halt();
        mp.addProgram(b.build());
    }
    std::uint64_t execs = 0;
    for (auto _ : state) {
        std::uint64_t n = 0;
        forEachExecution(mp, {},
                         [&](const ExecutionTrace &, const RunResult &,
                             bool) {
                             ++n;
                             return true;
                         });
        execs = n;
        benchmark::DoNotOptimize(n);
    }
    state.counters["interleavings"] =
        benchmark::Counter(static_cast<double>(execs));
}
BENCHMARK(BM_ExhaustiveInterleavings)->DenseRange(2, 7);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Raw simulator speed: simulated ticks per second of host time.
    std::uint64_t seed = 1;
    std::uint64_t total = 0;
    for (auto _ : state) {
        RandomWorkloadConfig w;
        w.numProcs = 8;
        w.numLocks = 4;
        w.sectionsPerProc = 6;
        w.seed = seed;
        MultiProgram mp = randomDrf0Program(w);
        SystemConfig cfg;
        cfg.policy = PolicyKind::Def2Drf1;
        cfg.net.seed = seed++;
        System sys(mp, cfg);
        sys.run();
        total += sys.eventQueue().executed();
    }
    state.counters["events"] = benchmark::Counter(
        static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput);

} // namespace

BENCHMARK_MAIN();
