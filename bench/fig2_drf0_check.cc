/**
 * @file
 * Figure 2 reproduction: the DRF0 example and counter-example executions,
 * classified by the happens-before race checker, plus checker timings on
 * synthetic traces of growing size.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/drf0_checker.hh"
#include "sim/rng.hh"
#include "workload/figures.hh"

namespace {

using namespace wo;

void
printFig2Report()
{
    benchutil::banner("Figure 2: DRF0 example and counter-example");

    ExecutionTrace a = figure2aTrace();
    Drf0TraceReport ra = checkTrace(a);
    std::cout << "(a) " << a.size() << " accesses, 6 processors: "
              << (ra.raceFree ? "obeys DRF0 (race-free)"
                              : "VIOLATES DRF0")
              << "\n";

    ExecutionTrace b = figure2bTrace();
    Drf0TraceReport rb = checkTrace(b);
    std::cout << "(b) " << b.size() << " accesses, 5 processors: "
              << (rb.raceFree ? "obeys DRF0 (race-free)"
                              : "violates DRF0")
              << "\n";
    std::cout << "    " << rb.toString(b);
    std::cout << "\nExpected shape: (a) race-free, (b) reports the "
                 "P0/P1 conflict on x and the\nP2-or-P3 vs P4 conflicts "
                 "on y, exactly as the figure's caption describes.\n";
}

/** A synthetic trace: p processors, each n accesses, lock-ordered. */
ExecutionTrace
syntheticTrace(int procs, int per_proc, bool racy, std::uint64_t seed)
{
    Rng rng(seed);
    ExecutionTrace t;
    Tick now = 0;
    for (int p = 0; p < procs; ++p) {
        for (int i = 0; i < per_proc; ++i) {
            Access a;
            a.proc = p;
            a.poIndex = i;
            bool sync = (i % 4 == 3);
            if (sync) {
                a.kind = AccessKind::SyncRmw;
                a.addr = 1000; // one global lock
            } else if (racy) {
                a.kind = rng.chance(1, 2) ? AccessKind::DataWrite
                                          : AccessKind::DataRead;
                a.addr = static_cast<Addr>(rng.below(8));
            } else {
                a.kind = rng.chance(1, 2) ? AccessKind::DataWrite
                                          : AccessKind::DataRead;
                a.addr = static_cast<Addr>(100 + p); // private
            }
            a.commitTick = now++;
            a.gpTick = a.commitTick;
            t.add(a);
        }
    }
    return t;
}

void
BM_CheckTrace(benchmark::State &state)
{
    ExecutionTrace t = syntheticTrace(4, static_cast<int>(state.range(0)),
                                      false, 42);
    for (auto _ : state) {
        Drf0TraceReport r = checkTrace(t);
        benchmark::DoNotOptimize(r.raceFree);
    }
    state.SetComplexityN(state.range(0) * 4);
}
BENCHMARK(BM_CheckTrace)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void
BM_CheckTraceRacy(benchmark::State &state)
{
    ExecutionTrace t = syntheticTrace(4, static_cast<int>(state.range(0)),
                                      true, 42);
    for (auto _ : state) {
        Drf0TraceReport r = checkTrace(t);
        benchmark::DoNotOptimize(r.races.size());
    }
}
BENCHMARK(BM_CheckTraceRacy)->RangeMultiplier(4)->Range(16, 256);

void
BM_HappensBeforeBuild(benchmark::State &state)
{
    ExecutionTrace t = syntheticTrace(8, static_cast<int>(state.range(0)),
                                      false, 7);
    for (auto _ : state) {
        HappensBefore hb(t);
        benchmark::DoNotOptimize(hb.acyclic());
    }
}
BENCHMARK(BM_HappensBeforeBuild)->RangeMultiplier(2)->Range(16, 512);

} // namespace

int
main(int argc, char **argv)
{
    printFig2Report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
