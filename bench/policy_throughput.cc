/**
 * @file
 * The quantitative comparison the paper's conclusion calls for: execution
 * time of the same DRF0 workloads under SC, Definition 1 weak ordering,
 * and the two Definition 2 implementations, sweeping synchronization
 * frequency and memory latency.
 *
 * The point of weak ordering is overlap between synchronization points;
 * the point of the new definition's implementation is overlap ACROSS
 * them (the issuing processor does not wait for its pending accesses at
 * a synchronization operation).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench_util.hh"
#include "system/system.hh"
#include "workload/campaign.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wo;

wo::benchutil::BenchOptions g_opts; // resolved in main() from --threads/--seed

/** One campaign (and its worker threads) for the whole table sweep, so
 * the workers' SystemPools persist across avgTicks() calls. Jobs derive
 * everything from the job index, so the hoist is output-neutral. */
Campaign *g_campaign = nullptr;

std::uint64_t g_jobs = 0; ///< campaign jobs run by the table sweeps

RandomWorkloadConfig
workloadCfg(int sections, int ops, std::uint64_t seed)
{
    RandomWorkloadConfig cfg;
    cfg.numProcs = 4;
    cfg.numLocks = 4;
    cfg.locsPerLock = 4;
    cfg.privateLocs = 6;
    cfg.sectionsPerProc = sections;
    cfg.opsPerSection = ops;
    cfg.privateOpsBetween = 6;
    cfg.seed = seed;
    return cfg;
}

std::uint64_t
avgTicks(const MachineSpec &m, PolicyKind pk, int sections, int ops,
         Tick net_base, int runs)
{
    // Seed sweep as a campaign: one job per seed, merged in seed order
    // so the average is bit-identical to the old serial loop.
    struct Run
    {
        std::uint64_t ticks = 0;
        int completed = 0;
    };
    g_jobs += static_cast<std::uint64_t>(runs);
    Run sum = g_campaign->reduce<Run, Run>(
        runs,
        [&](const CampaignJob &jb) {
            int s = jb.index + 1;
            MultiProgram mp =
                randomDrf0Program(workloadCfg(sections, ops, s));
            SystemConfig cfg = m.config(pk, s * 17 + 3);
            cfg.net.base = net_base;
            cfg.net.jitter = net_base;
            cfg.maxTicks = 50000000;
            // Pooled: the worker's cached System for this cell is
            // reset instead of rebuilt (identical replay; net.base
            // changes between sweep points force one rebuild each).
            System &sys = workerSystemPool().acquire(
                m.name + "/" + toString(pk), mp, cfg);
            Run one;
            if (!sys.run())
                return one;
            one.ticks = sys.finishTick();
            one.completed = 1;
            return one;
        },
        Run{}, [](Run &acc, const Run &one) {
            acc.ticks += one.ticks;
            acc.completed += one.completed;
        });
    return sum.completed ? sum.ticks / sum.completed : 0;
}

void
printThroughputTables(const MachineSpec &m, bool named)
{
    const std::string suffix = named ? " [machine=" + m.name + "]" : "";
    const int runs = g_opts.quick ? 4 : 12;
    const std::vector<PolicyKind> policies = {
        PolicyKind::Sc, PolicyKind::Def1, PolicyKind::Def2Drf0,
        PolicyKind::Def2Drf1};
    const std::vector<int> section_points =
        g_opts.quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
    const std::vector<Tick> latency_points =
        g_opts.quick ? std::vector<Tick>{6, 24}
                     : std::vector<Tick>{2, 6, 12, 24, 48};

    benchutil::banner(
        "Execution time vs synchronization frequency (net latency 6, " +
        std::to_string(runs) + " workloads/point, avg finish ticks)" +
        suffix);
    {
        benchutil::Table t({"critical sections/proc", "SC", "WO-Def1",
                            "WO-Def2-DRF0", "WO-Def2-DRF1"});
        for (int sections : section_points) {
            std::vector<std::string> row = {std::to_string(sections)};
            for (PolicyKind pk : policies)
                row.push_back(std::to_string(
                    avgTicks(m, pk, sections, 3, 6, runs)));
            t.addRow(row);
        }
        t.print();
    }

    benchutil::banner(
        "Execution time vs memory latency (4 sections/proc, avg finish "
        "ticks)" + suffix);
    {
        benchutil::Table t({"net base latency", "SC", "WO-Def1",
                            "WO-Def2-DRF0", "WO-Def2-DRF1"});
        for (Tick lat : latency_points) {
            std::vector<std::string> row = {std::to_string(lat)};
            for (PolicyKind pk : policies)
                row.push_back(std::to_string(
                    avgTicks(m, pk, 4, 3, lat, runs)));
            t.addRow(row);
        }
        t.print();
    }
    std::cout <<
        "\nExpected shape: SC is slowest and degrades fastest with "
        "latency (no overlap);\nboth weak orderings beat it; the "
        "Definition 2 implementations match or beat\nDefinition 1, with "
        "the gap growing as synchronization gets more frequent\n(Def1 "
        "pays a full pipeline drain per synchronization operation).\n";
}

void
BM_Workload(benchmark::State &state)
{
    PolicyKind pk = static_cast<PolicyKind>(state.range(0));
    std::uint64_t seed = 1;
    std::uint64_t ticks = 0, n = 0;
    for (auto _ : state) {
        MultiProgram mp = randomDrf0Program(workloadCfg(4, 3, seed));
        SystemConfig cfg =
            machineOrThrow("net-cold").config(pk, seed++);
        System sys(mp, cfg);
        sys.run();
        ticks += sys.finishTick();
        ++n;
    }
    state.counters["sim_ticks"] = benchmark::Counter(
        static_cast<double>(ticks) / static_cast<double>(n ? n : 1));
    state.SetLabel(toString(pk));
}
BENCHMARK(BM_Workload)
    ->Arg(static_cast<int>(PolicyKind::Sc))
    ->Arg(static_cast<int>(PolicyKind::Def1))
    ->Arg(static_cast<int>(PolicyKind::Def2Drf0))
    ->Arg(static_cast<int>(PolicyKind::Def2Drf1));

} // namespace

int
main(int argc, char **argv)
{
    g_opts = wo::benchutil::consumeBenchFlags(argc, argv);
    wo::Campaign campaign({g_opts.threads, g_opts.baseSeed});
    g_campaign = &campaign;
    auto t0 = std::chrono::steady_clock::now();
    for (const wo::MachineSpec *m :
         wo::benchutil::machinesOr(g_opts, "net-cold"))
        printThroughputTables(*m, !g_opts.machines.empty());
    auto t1 = std::chrono::steady_clock::now();
    std::uint64_t wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (!g_opts.jsonFile.empty()) {
        wo::StatSet stats;
        stats.set("quick", g_opts.quick ? 1 : 0);
        stats.set("threads",
                  static_cast<std::uint64_t>(campaign.numThreads()));
        stats.set("tables.jobs", g_jobs);
        stats.set("tables.wall_ns", wall_ns);
        stats.set("tables.jobs_per_sec",
                  wall_ns ? g_jobs * 1000000000ull / wall_ns : 0);
        wo::benchutil::dumpJsonFile(stats, g_opts.jsonFile);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
