/**
 * @file
 * Ablation of the Section 5.3 reserve-bit machinery:
 *
 *  1. reserve-clearing discipline — the literal "all reserve bits reset
 *     when the counter reads zero" deadlocks across two locks, while the
 *     epoch-based dynamic solution the paper cites ([AdH89]) completes;
 *  2. the bounded-misses-while-reserved knob — how tightly new misses
 *     are throttled while a line is reserved trades the waiting sync's
 *     service latency against the reserving processor's overlap.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hh"
#include "core/sc_verifier.hh"
#include "cpu/program_builder.hh"
#include "system/system.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wo;

MultiProgram
crossLockProgram()
{
    const Addr X0 = 0, X1 = 1, A = 10, B = 11;
    MultiProgram mp("cross-lock");
    {
        ProgramBuilder p0;
        p0.store(X0, 5)
            .label("a0").tas(0, A).bne(0, 0, "a0")
            .unset(A)
            .label("b0").tas(1, B).bne(1, 0, "b0")
            .unset(B)
            .halt();
        mp.addProgram(p0.build());
    }
    {
        ProgramBuilder p1;
        p1.store(X1, 6)
            .label("b1").tas(0, B).bne(0, 0, "b1")
            .unset(B)
            .label("a1").tas(1, A).bne(1, 0, "a1")
            .unset(A)
            .halt();
        mp.addProgram(p1.build());
    }
    return mp;
}

void
printDisciplineTable()
{
    benchutil::banner(
        "Ablation 1: reserve-clearing discipline on the cross-lock "
        "workload");
    benchutil::Table t({"discipline", "completes", "finish ticks",
                        "appears SC"});
    struct Row
    {
        std::string label;
        bool epoch;
        int bound;
    };
    for (const Row &row :
         {Row{"naive (clear at counter==0)", false, -1},
          Row{"naive + miss bound 0", false, 0},
          Row{"epoch (dynamic solution)", true, -1}}) {
        SystemConfig cfg =
            machineOrThrow("net").config(PolicyKind::Def2Drf0);
        cfg.cache.invApplyDelay = 300;
        cfg.cache.epochReserveClearing = row.epoch;
        cfg.cache.maxMissesWhileReserved = row.bound;
        cfg.maxTicks = 100000;
        System sys(crossLockProgram(), cfg);
        bool ok = sys.run();
        t.addRow({row.label, ok ? "yes" : "DEADLOCK",
                  ok ? std::to_string(sys.finishTick()) : "-",
                  ok ? (verifySc(sys.trace()).sc() ? "yes" : "NO") : "-"});
    }
    t.print();
    std::cout <<
        "\nExpected shape: the literal counter-zero rule deadlocks "
        "(neither processor's\nreserve can clear while its sync miss to "
        "the other lock is queued remotely);\nboth refinements the paper "
        "suggests restore progress, and the epoch discipline\nis "
        "fastest.\n";
}

void
printMissBoundTable()
{
    benchutil::banner(
        "Ablation 2: max misses while reserved (random DRF0 workloads, "
        "12 seeds)");
    benchutil::Table t({"miss bound", "avg finish ticks"});
    for (int bound : {0, 1, 2, 4, 8, -1}) {
        std::uint64_t total = 0;
        int n = 0;
        for (int s = 1; s <= 12; ++s) {
            RandomWorkloadConfig w;
            w.numProcs = 4;
            w.numLocks = 2;
            w.sectionsPerProc = 4;
            w.privateOpsBetween = 6;
            w.seed = s;
            SystemConfig cfg =
                machineOrThrow("net").config(PolicyKind::Def2Drf0,
                                             s * 3 + 1);
            cfg.cache.maxMissesWhileReserved = bound;
            cfg.cache.invApplyDelay = 60; // keep reserves held a while
            System sys(randomDrf0Program(w), cfg);
            if (!sys.run())
                continue;
            total += sys.finishTick();
            ++n;
        }
        t.addRow({bound < 0 ? "unlimited" : std::to_string(bound),
                  n ? std::to_string(total / n) : "-"});
    }
    t.print();
    std::cout << "\nExpected shape: tight bounds cost throughput (the "
                 "reserving processor loses\noverlap); the cost shrinks "
                 "as the bound loosens.\n";
}

void
BM_CrossLockEpoch(benchmark::State &state)
{
    for (auto _ : state) {
        SystemConfig cfg =
            machineOrThrow("net").config(PolicyKind::Def2Drf0);
        cfg.cache.invApplyDelay = 300;
        System sys(crossLockProgram(), cfg);
        sys.run();
        benchmark::DoNotOptimize(sys.finishTick());
    }
}
BENCHMARK(BM_CrossLockEpoch);

} // namespace

int
main(int argc, char **argv)
{
    printDisciplineTable();
    printMissBoundTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
