/**
 * @file
 * Contract verification sweep (Lemma 1 / Appendix B, and the Section 6
 * claim that Definition 1 hardware satisfies Definition 2 w.r.t. DRF0):
 *
 * every execution the weakly ordered implementations produce for random
 * DRF0 workloads must appear sequentially consistent — and the relaxed
 * machine, given racy code, must not.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hh"
#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/campaign.hh"
#include "workload/litmus.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wo;

wo::benchutil::BenchOptions g_opts; // resolved in main() from --threads/--seed

RandomWorkloadConfig
workloadCfg(std::uint64_t seed)
{
    RandomWorkloadConfig cfg;
    cfg.numProcs = 4;
    cfg.numLocks = 2;
    cfg.locsPerLock = 3;
    cfg.sectionsPerProc = 4;
    cfg.opsPerSection = 3;
    cfg.seed = seed;
    return cfg;
}

void
printContractTable(const MachineSpec &m, bool named)
{
    const int runs = 40;
    benchutil::banner(
        "Definition 2 contract: random DRF0 workloads, " +
        std::to_string(runs) + " seeds per policy" +
        (named ? " [machine=" + m.name + "]" : ""));
    benchutil::Table t(
        {"policy", "runs appearing SC", "avg finish ticks"});
    Campaign campaign({g_opts.threads, g_opts.baseSeed});
    for (PolicyKind pk : {PolicyKind::Sc, PolicyKind::Def1,
                          PolicyKind::Def2Drf0, PolicyKind::Def2Drf1}) {
        // Each seed is one campaign job: simulate, then verify the
        // execution against the Definition 2 contract.
        struct Run
        {
            std::uint64_t ticks = 0;
            int sc = 0;
        };
        Run sum = campaign.reduce<Run, Run>(
            runs,
            [&](const CampaignJob &jb) {
                int s = jb.index + 1;
                MultiProgram mp = randomDrf0Program(workloadCfg(s));
                SystemConfig cfg = m.config(pk, s * 31 + 7);
                System sys(mp, cfg);
                Run one;
                if (!sys.run())
                    return one;
                one.ticks = sys.finishTick();
                one.sc = verifySc(sys.trace()).sc() ? 1 : 0;
                return one;
            },
            Run{}, [](Run &acc, const Run &one) {
                acc.ticks += one.ticks;
                acc.sc += one.sc;
            });
        t.addRow({toString(pk),
                  std::to_string(sum.sc) + "/" + std::to_string(runs),
                  std::to_string(sum.ticks / runs)});
    }
    t.print();

    // The negative control: racy code on the relaxed machine.
    const int neg_runs = 100;
    int violations = campaign.reduce<int, int>(
        neg_runs,
        [&](const CampaignJob &jb) {
            SystemConfig cfg = machineOrThrow("net-u").config(
                PolicyKind::Relaxed, jb.index + 1);
            cfg.net.jitter = 8; // the control's historical jitter
            System sys(dekkerLitmus(), cfg);
            if (!sys.run())
                return 0;
            return dekkerViolatesSc(sys.result()) ? 1 : 0;
        },
        0, [](int &acc, const int &one) { acc += one; });
    std::cout << "\nNegative control: Dekker (racy) on the relaxed "
                 "machine violated SC in "
              << violations << "/" << neg_runs << " runs.\n";
    std::cout << "\nExpected shape: 100% SC for SC/Def1/Def2 policies "
                 "(the contract holds,\nincluding for Definition 1 "
                 "hardware); a nonzero violation count for the\n"
                 "relaxed machine on racy code.\n";
}

void
BM_RunPlusVerify(benchmark::State &state)
{
    PolicyKind pk = static_cast<PolicyKind>(state.range(0));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        MultiProgram mp = randomDrf0Program(workloadCfg(seed));
        SystemConfig cfg =
            machineOrThrow("net-cold").config(pk, seed++);
        System sys(mp, cfg);
        sys.run();
        ScReport r = verifySc(sys.trace());
        benchmark::DoNotOptimize(r.verdict);
    }
    state.SetLabel(toString(pk));
}
BENCHMARK(BM_RunPlusVerify)
    ->Arg(static_cast<int>(PolicyKind::Def1))
    ->Arg(static_cast<int>(PolicyKind::Def2Drf0));

} // namespace

int
main(int argc, char **argv)
{
    g_opts = wo::benchutil::consumeBenchFlags(argc, argv);
    for (const wo::MachineSpec *m :
         wo::benchutil::machinesOr(g_opts, "net-cold"))
        printContractTable(*m, !g_opts.machines.empty());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
