/**
 * @file
 * System lifecycle benchmark: what a campaign job costs when the
 * simulated machine is reset and reused instead of rebuilt.
 *
 *   $ system_pool [--quick] [--json=FILE] [--corpus=DIR]
 *                 [--threads=N] [--seed=S]
 *
 * Three sections, each printed as a table and recorded in a StatSet
 * dumped as JSON (default file: BENCH_system_pool.json):
 *
 *  1. the litmus-corpus job fan — every (test, machine, policy, seed)
 *     simulation job run twice, once constructing a fresh System per
 *     job and once acquiring from a SystemPool — the tentpole jobs/sec
 *     comparison (key corpus.speedup_milli);
 *  2. construction vs reset microcost per machine/policy cell, isolating
 *     what the pool saves before any simulation happens;
 *  3. end-to-end runCorpus wall time with pooling on and off, single
 *     worker and the --threads fan.
 *
 * Outcomes are verified before timing: every job's verdict, finish tick,
 * final state and stats dump must be identical between the fresh and
 * pooled paths (and the full corpus reports byte-identical), so the
 * timings compare two ways of computing the same bytes.
 *
 * All timings are best-of-N std::chrono::steady_clock measurements.
 * --quick shrinks seeds and repetitions for CI smoke runs; the measured
 * shape (and the JSON schema) is identical.
 */

#include <chrono>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "consistency/policy.hh"
#include "litmus/compiler.hh"
#include "litmus/runner.hh"
#include "sim/stats.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/campaign.hh"

namespace {

using namespace wo;

benchutil::BenchOptions g_opts;

/** Best-of-@p reps wall time of @p fn, in nanoseconds. */
template <class F>
std::uint64_t
bestNs(int reps, F &&fn)
{
    std::uint64_t best = ~std::uint64_t(0);
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      t1 - t0)
                      .count();
        best = std::min(best, static_cast<std::uint64_t>(ns));
    }
    return best;
}

std::string
fmtNs(std::uint64_t ns)
{
    std::ostringstream oss;
    if (ns >= 10000000)
        oss << ns / 1000000 << " ms";
    else if (ns >= 10000)
        oss << ns / 1000 << " us";
    else
        oss << ns << " ns";
    return oss.str();
}

std::string
fmtSpeedup(std::uint64_t milli)
{
    std::ostringstream oss;
    oss << milli / 1000 << "." << (milli % 1000) / 100 << "x";
    return oss.str();
}

/** One simulation job of the fan. */
struct Job
{
    const litmus_dsl::CompiledLitmus *test;
    const MachineSpec *machine;
    PolicyKind policy;
    std::uint64_t netSeed;
};

/** The deterministic job list: tests x machines x policies x seeds,
 * skipping cells whose policy is illegal on the machine. */
std::vector<Job>
jobFan(const std::vector<litmus_dsl::CompiledLitmus> &tests,
       const std::vector<const MachineSpec *> &machines, int seeds)
{
    const std::vector<PolicyKind> policies = {
        PolicyKind::Sc, PolicyKind::Def1, PolicyKind::Def2Drf0,
        PolicyKind::Relaxed};
    std::vector<Job> jobs;
    for (const auto &test : tests) {
        for (const MachineSpec *m : machines) {
            for (PolicyKind pk : policies) {
                if (!m->cached && makePolicy(pk)->requiresCache())
                    continue;
                for (int s = 0; s < seeds; ++s) {
                    jobs.push_back(
                        {&test, m, pk, campaignJobSeed(g_opts.baseSeed,
                                                       s)});
                }
            }
        }
    }
    return jobs;
}

/** Everything observable about one finished job, as one string. */
std::string
outcomeOf(System &sys, bool finished)
{
    std::ostringstream oss;
    oss << finished;
    if (finished)
        oss << " " << sys.finishTick() << " " << sys.result().toString();
    sys.stats().dump(oss);
    return oss.str();
}

void
benchJobFan(StatSet &stats,
            const std::vector<litmus_dsl::CompiledLitmus> &tests)
{
    const int seeds = g_opts.quick ? 2 : 5;
    const int reps = g_opts.quick ? 2 : 3;
    std::vector<const MachineSpec *> machines = {
        &machineOrThrow("bus"), &machineOrThrow("net"),
        &machineOrThrow("net-u")};
    std::vector<Job> jobs = jobFan(tests, machines, seeds);

    benchutil::banner(
        "Litmus-corpus job fan: fresh construction vs pooled reset (" +
        std::to_string(jobs.size()) + " jobs, " + std::to_string(seeds) +
        " seeds/cell)");

    auto runFresh = [&](std::vector<std::string> *outcomes) {
        for (const Job &j : jobs) {
            SystemConfig cfg = j.machine->config(j.policy, j.netSeed);
            System sys(j.test->program, cfg);
            bool finished = sys.run();
            if (outcomes)
                outcomes->push_back(outcomeOf(sys, finished));
        }
    };
    auto runPooled = [&](SystemPool &pool,
                         std::vector<std::string> *outcomes) {
        for (const Job &j : jobs) {
            SystemConfig cfg = j.machine->config(j.policy, j.netSeed);
            System &sys = pool.acquire(
                j.machine->name + "/" + toString(j.policy),
                j.test->program, cfg);
            bool finished = sys.run();
            if (outcomes)
                outcomes->push_back(outcomeOf(sys, finished));
        }
    };

    // Correctness gate before timing: both paths must produce the same
    // verdicts, final states and stats for every single job.
    std::vector<std::string> fresh_out, pooled_out;
    runFresh(&fresh_out);
    SystemPool pool;
    runPooled(pool, &pooled_out);
    if (fresh_out != pooled_out) {
        for (std::size_t i = 0; i < fresh_out.size(); ++i) {
            if (fresh_out[i] != pooled_out[i]) {
                std::cerr << "BUG: job " << i
                          << " diverges between fresh and pooled\n"
                          << "fresh : " << fresh_out[i] << "\n"
                          << "pooled: " << pooled_out[i] << "\n";
                break;
            }
        }
        std::exit(1);
    }

    std::uint64_t fresh_ns = bestNs(reps, [&] { runFresh(nullptr); });
    // The pool is warm from the verification pass, as it is after the
    // first few jobs of any campaign; every timed job is a reset.
    std::uint64_t pooled_ns =
        bestNs(reps, [&] { runPooled(pool, nullptr); });

    std::uint64_t n = jobs.size();
    std::uint64_t fresh_jps =
        fresh_ns ? n * 1000000000ull / fresh_ns : 0;
    std::uint64_t pooled_jps =
        pooled_ns ? n * 1000000000ull / pooled_ns : 0;
    std::uint64_t speedup_milli =
        pooled_ns ? fresh_ns * 1000 / pooled_ns : 0;

    stats.set("corpus.jobs", n);
    stats.set("corpus.fresh_ns", fresh_ns);
    stats.set("corpus.pooled_ns", pooled_ns);
    stats.set("corpus.fresh_jobs_per_sec", fresh_jps);
    stats.set("corpus.pooled_jobs_per_sec", pooled_jps);
    stats.set("corpus.speedup_milli", speedup_milli);
    stats.set("corpus.pool_reuses", pool.reuses());
    stats.set("corpus.pool_builds", pool.builds());

    benchutil::Table table(
        {"path", "wall", "jobs/sec", "speedup"});
    table.addRow({"fresh System per job", fmtNs(fresh_ns),
                  std::to_string(fresh_jps), "1.0x"});
    table.addRow({"pooled reset per job", fmtNs(pooled_ns),
                  std::to_string(pooled_jps),
                  fmtSpeedup(speedup_milli)});
    table.print();
    std::cout << "\n(every job's verdict, finish tick, final state and "
                 "stats dump verified\nidentical between the two paths "
                 "before timing; pool: "
              << pool.builds() << " builds, " << pool.reuses()
              << " reuses)\n";
}

void
benchResetMicro(StatSet &stats,
                const std::vector<litmus_dsl::CompiledLitmus> &tests)
{
    benchutil::banner("Per-instance cost: construction vs reset "
                      "(no simulation)");
    const int iters = g_opts.quick ? 200 : 1000;
    const int reps = g_opts.quick ? 2 : 3;
    // A representative 2-processor program: the corpus's first test.
    const MultiProgram &prog = tests.front().program;

    struct Cell
    {
        const char *machine;
        PolicyKind policy;
    };
    benchutil::Table table(
        {"machine/policy", "construct", "reset", "speedup"});
    for (const Cell &c : {Cell{"bus", PolicyKind::Def2Drf0},
                          Cell{"net", PolicyKind::Def2Drf0},
                          Cell{"net-u", PolicyKind::Sc}}) {
        SystemConfig cfg =
            machineOrThrow(c.machine).config(c.policy, 1);
        std::uint64_t ctor_ns = bestNs(reps, [&] {
            for (int i = 0; i < iters; ++i) {
                System sys(prog, cfg);
                if (sys.eventQueue().now() != 0)
                    std::exit(1);
            }
        });
        System sys(prog, cfg);
        std::uint64_t reset_ns = bestNs(reps, [&] {
            for (int i = 0; i < iters; ++i) {
                sys.reset(cfg);
                sys.loadProgram(prog);
            }
        });
        ctor_ns /= static_cast<std::uint64_t>(iters);
        reset_ns /= static_cast<std::uint64_t>(iters);
        std::uint64_t speedup_milli =
            reset_ns ? ctor_ns * 1000 / reset_ns : 0;
        std::string key = std::string("reset.") + c.machine + "." +
                          toString(c.policy);
        stats.set(key + ".construct_ns", ctor_ns);
        stats.set(key + ".reset_ns", reset_ns);
        stats.set(key + ".speedup_milli", speedup_milli);
        table.addRow({std::string(c.machine) + "/" + toString(c.policy),
                      fmtNs(ctor_ns), fmtNs(reset_ns),
                      fmtSpeedup(speedup_milli)});
    }
    table.print();
    std::cout << "\n(per instance, averaged over " << iters
              << " iterations; reset = System::reset + loadProgram)\n";
}

void
benchRunCorpus(StatSet &stats,
               const std::vector<litmus_dsl::CompiledLitmus> &tests)
{
    benchutil::banner("End-to-end runCorpus wall time (reports verified "
                      "byte-identical)");
    litmus_dsl::RunnerOptions options;
    options.seeds = g_opts.quick ? 2 : 5;
    options.baseSeed = g_opts.baseSeed;

    auto render = [&](const litmus_dsl::CorpusReport &r) {
        std::ostringstream text, json;
        litmus_dsl::printReport(text, r);
        litmus_dsl::writeJsonReport(json, r);
        return text.str() + json.str();
    };
    benchutil::Table table({"threads", "fresh", "pooled", "speedup"});
    std::vector<int> thread_points = {1};
    if (int t = campaignThreads(g_opts.threads); t != 1)
        thread_points.push_back(t);
    for (int threads : thread_points) {
        options.threads = threads;
        options.systemPool = false;
        std::string fresh_bytes =
            render(litmus_dsl::runCorpus(tests, options));
        options.systemPool = true;
        std::string pooled_bytes =
            render(litmus_dsl::runCorpus(tests, options));
        if (fresh_bytes != pooled_bytes) {
            std::cerr << "BUG: corpus reports differ with pooling at "
                      << threads << " threads\n";
            std::exit(1);
        }
        options.systemPool = false;
        std::uint64_t fresh_ns = bestNs(1, [&] {
            litmus_dsl::runCorpus(tests, options);
        });
        options.systemPool = true;
        std::uint64_t pooled_ns = bestNs(1, [&] {
            litmus_dsl::runCorpus(tests, options);
        });
        std::uint64_t speedup_milli =
            pooled_ns ? fresh_ns * 1000 / pooled_ns : 0;
        std::string key =
            "runcorpus.t" + std::to_string(threads);
        stats.set(key + ".fresh_ns", fresh_ns);
        stats.set(key + ".pooled_ns", pooled_ns);
        stats.set(key + ".speedup_milli", speedup_milli);
        table.addRow({std::to_string(threads), fmtNs(fresh_ns),
                      fmtNs(pooled_ns), fmtSpeedup(speedup_milli)});
    }
    table.print();
    std::cout << "\n(includes per-test DRF0 checking and report "
                 "aggregation, which pooling\ndoes not touch — the "
                 "job-fan table above isolates the simulation jobs)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    g_opts = benchutil::consumeBenchFlags(argc, argv);
    std::string corpus_dir = "tests/litmus";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--corpus=", 0) == 0) {
            corpus_dir = arg.substr(9);
        } else {
            std::cerr << "usage: system_pool [--quick] [--json=FILE] "
                         "[--corpus=DIR] [--threads=N] [--seed=S]\n";
            return 2;
        }
    }
    if (g_opts.jsonFile.empty())
        g_opts.jsonFile = "BENCH_system_pool.json";
    if (!std::filesystem::is_directory(corpus_dir)) {
        std::cerr << "system_pool: no corpus directory " << corpus_dir
                  << "\n";
        return 2;
    }

    std::vector<litmus_dsl::CompiledLitmus> tests;
    for (const std::string &f :
         litmus_dsl::findLitmusFiles({corpus_dir}))
        tests.push_back(litmus_dsl::compileLitmusFile(f));

    StatSet stats;
    stats.set("quick", g_opts.quick ? 1 : 0);
    stats.set("corpus.tests", tests.size());
    benchJobFan(stats, tests);
    benchResetMicro(stats, tests);
    benchRunCorpus(stats, tests);

    benchutil::dumpJsonFile(stats, g_opts.jsonFile);
    return 0;
}
