/**
 * @file
 * Cache-capacity ablation: the Section 5 mechanisms must stay correct
 * (and degrade gracefully) as caches shrink and eviction pressure grows
 * — reserved lines are never flushed, so tiny caches interact with the
 * reserve machinery in the worst possible way.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hh"
#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/campaign.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wo;

wo::benchutil::BenchOptions g_opts; // resolved in main() from --threads/--seed

struct CapPoint
{
    std::uint64_t finish = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t misses = 0;
    int completed = 0;
    int sc = 0;
    int runs = 0;
};

CapPoint
runPoint(const MachineSpec &m, int num_sets, int ways, PolicyKind pk,
         int runs)
{
    // One campaign job per seed; the order-stable reduce makes the
    // sums identical to the old serial loop at any thread count.
    Campaign campaign({g_opts.threads, g_opts.baseSeed});
    auto job = [&](const CampaignJob &jb) {
        int s = jb.index + 1;
        RandomWorkloadConfig w;
        w.numProcs = 4;
        w.numLocks = 2;
        w.locsPerLock = 4;
        w.privateLocs = 6;
        w.sectionsPerProc = 4;
        w.privateOpsBetween = 5;
        w.seed = s;
        SystemConfig cfg = m.config(pk, s * 11 + 1);
        cfg.cache.numSets = num_sets;
        cfg.cache.ways = ways;
        cfg.maxTicks = 50000000;
        System sys(randomDrf0Program(w), cfg);
        CapPoint one;
        if (!sys.run())
            return one;
        ++one.completed;
        one.finish = sys.finishTick();
        for (int c = 0; c < 4; ++c) {
            std::string name = "cache" + std::to_string(c);
            one.writebacks += sys.stats().get(name + ".writebacks");
            one.misses += sys.stats().get(name + ".misses");
        }
        if (verifySc(sys.trace()).sc())
            ++one.sc;
        return one;
    };
    CapPoint init;
    init.runs = runs;
    return campaign.reduce<CapPoint, CapPoint>(
        runs, job, init, [](CapPoint &acc, const CapPoint &one) {
            acc.finish += one.finish;
            acc.writebacks += one.writebacks;
            acc.misses += one.misses;
            acc.completed += one.completed;
            acc.sc += one.sc;
        });
}

void
printCapacityTable(const MachineSpec &m, bool named)
{
    const int runs = 10;
    benchutil::banner(
        "Capacity sweep: WO-Def2-DRF0 under eviction pressure (" +
        std::to_string(runs) + " random DRF0 workloads/point)" +
        (named ? " [machine=" + m.name + "]" : ""));
    benchutil::Table t({"sets x ways", "completed", "appear SC",
                        "avg finish", "avg misses", "avg writebacks"});
    struct Geo
    {
        int sets, ways;
    };
    for (Geo g : {Geo{1, 2}, Geo{2, 2}, Geo{4, 2}, Geo{4, 4}, Geo{0, 0}}) {
        CapPoint pt =
            runPoint(m, g.sets, g.ways, PolicyKind::Def2Drf0, runs);
        std::string label = g.sets == 0
                                ? "unbounded"
                                : std::to_string(g.sets) + "x" +
                                      std::to_string(g.ways);
        t.addRow({label,
                  std::to_string(pt.completed) + "/" +
                      std::to_string(pt.runs),
                  std::to_string(pt.sc) + "/" +
                      std::to_string(pt.completed),
                  pt.completed
                      ? std::to_string(pt.finish / pt.completed)
                      : "-",
                  pt.completed
                      ? std::to_string(pt.misses / pt.completed)
                      : "-",
                  pt.completed
                      ? std::to_string(pt.writebacks / pt.completed)
                      : "-"});
    }
    t.print();
    std::cout << "\nExpected shape: every geometry completes and appears "
                 "SC; shrinking the cache\nraises misses/writebacks and "
                 "finish time monotonically.\n";
}

void
BM_CapacityRun(benchmark::State &state)
{
    int sets = static_cast<int>(state.range(0));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        RandomWorkloadConfig w;
        w.numProcs = 4;
        w.seed = seed;
        SystemConfig cfg = machineOrThrow("net-cold")
                               .config(PolicyKind::Def2Drf0, seed++);
        cfg.cache.numSets = sets;
        cfg.cache.ways = 2;
        System sys(randomDrf0Program(w), cfg);
        sys.run();
        benchmark::DoNotOptimize(sys.finishTick());
    }
    state.SetLabel(sets == 0 ? "unbounded" : std::to_string(sets) +
                                                 " sets");
}
BENCHMARK(BM_CapacityRun)->Arg(1)->Arg(4)->Arg(0);

} // namespace

int
main(int argc, char **argv)
{
    g_opts = wo::benchutil::consumeBenchFlags(argc, argv);
    for (const wo::MachineSpec *m :
         wo::benchutil::machinesOr(g_opts, "net-cold"))
        printCapacityTable(*m, !g_opts.machines.empty());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
