/**
 * @file
 * Trace-replay pipeline benchmark: streaming verification throughput and
 * bounded-memory evidence.
 *
 *   $ trace_replay [--quick] [--json=FILE]
 *
 * Three sections, each printed as a table and recorded in a StatSet that
 * is dumped as JSON (default file: BENCH_trace_replay.json):
 *
 *  1. windowed-vs-whole-trace differential at small sizes: the streaming
 *     checker's verdict and race set against the resident bitset oracle
 *     (any mismatch aborts the bench — throughput numbers for a wrong
 *     checker are worthless);
 *  2. flat-memory scaling: the same workload replayed at 10x growing
 *     trace sizes under one fixed window — the resident high-water mark
 *     and the process peak RSS must stay flat while the trace grows;
 *  3. sustained streaming throughput: generated lock/barrier/hand-off
 *     traces at 1M+ records, replayed with online FirstRace checking;
 *     reports accesses/second.
 *
 * Timings are std::chrono::steady_clock wall time of the replay phase
 * only (trace generation writes to a temp file beforehand). --quick
 * shrinks trace sizes for CI smoke runs; the JSON schema is identical.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/drf0_checker.hh"
#include "replay/replay_engine.hh"
#include "replay/system_replay.hh"
#include "replay/trace_format.hh"
#include "replay/trace_gen.hh"
#include "sim/stats.hh"

namespace {

using namespace wo;

/** /proc/self/status field in kB (Linux); 0 where unavailable. */
std::uint64_t
procStatusKb(const char *field)
{
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind(field, 0) == 0) {
            std::istringstream iss(line.substr(std::strlen(field) + 1));
            std::uint64_t kb = 0;
            iss >> kb;
            return kb;
        }
    }
    return 0;
}

std::string
tmpTracePath(const std::string &tag)
{
    return (std::filesystem::temp_directory_path() /
            ("wo_bench_" + tag + ".wotrace"))
        .string();
}

/** Spinlock rounds that produce ~@p records records (6 per round per
 * thread: acquire + data ops + release). */
int
roundsFor(std::uint64_t records, int threads, int opsPerRound)
{
    return static_cast<int>(
        records / (static_cast<std::uint64_t>(threads) *
                   static_cast<std::uint64_t>(opsPerRound + 2)));
}

std::string
fmtCount(std::uint64_t n)
{
    std::ostringstream oss;
    if (n >= 1000000)
        oss << n / 1000000 << "." << (n % 1000000) / 100000 << "M";
    else if (n >= 1000)
        oss << n / 1000 << "k";
    else
        oss << n;
    return oss.str();
}

struct ReplayTiming
{
    ReplayResult result;
    std::uint64_t wallNs = 0;
    std::uint64_t accPerSec = 0;
    std::uint64_t vmHwmKb = 0;
    std::uint64_t vmRssKb = 0;
};

ReplayTiming
timeReplay(const std::string &path, const ReplayOptions &opt)
{
    ReplayTraceReader reader;
    if (!reader.open(path)) {
        std::cerr << "trace_replay: cannot read " << path << "\n";
        std::exit(2);
    }
    ReplayEngine engine(reader, opt);
    auto t0 = std::chrono::steady_clock::now();
    ReplayTiming t;
    t.result = engine.run();
    auto t1 = std::chrono::steady_clock::now();
    if (!t.result.ok) {
        std::cerr << "trace_replay: replay failed: " << t.result.error
                  << "\n";
        std::exit(2);
    }
    t.wallNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    t.accPerSec = t.wallNs ? t.result.accesses * 1000000000ull / t.wallNs
                           : 0;
    t.vmHwmKb = procStatusKb("VmHWM");
    t.vmRssKb = procStatusKb("VmRSS");
    return t;
}

void
benchDifferential(StatSet &stats, bool quick)
{
    benchutil::banner(
        "Windowed streaming verdicts vs whole-trace bitset oracle");
    benchutil::Table table(
        {"workload", "variant", "accesses", "races", "windows checked"});
    const int rounds = quick ? 20 : 60;
    for (const char *wl : {"spinlock", "barrier", "prodcons"}) {
        for (bool racy : {false, true}) {
            TraceGenConfig cfg;
            cfg.threads = 4;
            cfg.rounds = rounds;
            cfg.injectRace = racy;
            std::string path = tmpTracePath("diff");
            if (!writeWorkloadTrace(wl, path, cfg))
                std::exit(2);

            ReplayOptions full;
            full.window = 0;
            full.mode = RaceDetectMode::AllRaces;
            ReplayTraceReader r0;
            if (!r0.open(path))
                std::exit(2);
            ReplayEngine oracleEngine(r0, full);
            ReplayResult fullRes = oracleEngine.run();
            Drf0TraceReport oracle =
                checkTraceBitset(oracleEngine.trace());
            std::vector<Race> oracleRaces = oracle.races;
            std::sort(oracleRaces.begin(), oracleRaces.end());

            int windows = 0;
            for (int window : {64, 1024, 16384}) {
                ReplayOptions opt = full;
                opt.window = window;
                ReplayTiming t = timeReplay(path, opt);
                if (t.result.raceFree != oracle.raceFree ||
                    t.result.races != oracleRaces) {
                    std::cerr << "BUG: windowed verdict diverges from "
                                 "oracle ("
                              << wl << ", racy=" << racy
                              << ", window=" << window << ")\n";
                    std::exit(1);
                }
                ++windows;
            }
            std::string key = std::string("diff.") + wl + "." +
                              (racy ? "racy" : "racefree");
            stats.set(key + ".accesses", fullRes.accesses);
            stats.set(key + ".races", oracleRaces.size());
            stats.set(key + ".windows_identical",
                      static_cast<std::uint64_t>(windows));
            table.addRow({wl, racy ? "racy" : "race-free",
                          std::to_string(fullRes.accesses),
                          std::to_string(oracleRaces.size()),
                          std::to_string(windows)});
            std::remove(path.c_str());
        }
    }
    table.print();
    std::cout << "\n(every windowed run's verdict and sorted race set "
                 "matched the bitset oracle)\n";
}

void
benchFlatMemory(StatSet &stats, bool quick)
{
    benchutil::banner(
        "Bounded retention: 10x trace growth under one fixed window");
    // The window must sit below the smaller trace size or the first run
    // never retires and the comparison shows growth, not flatness.
    const int window = quick ? 1 << 12 : 1 << 16;
    const std::uint64_t base = quick ? 100000 : 1000000;
    benchutil::Table table({"records", "accesses", "high-water",
                            "resident peak", "VmHWM", "retired"});
    std::uint64_t firstHw = 0, lastHw = 0;
    std::uint64_t firstHwmKb = 0, lastHwmKb = 0;
    for (std::uint64_t target : {base / 10, base}) {
        TraceGenConfig cfg;
        cfg.threads = 4;
        cfg.rounds = roundsFor(target, cfg.threads, cfg.opsPerRound);
        std::string path = tmpTracePath("scale");
        if (!writeSpinlockTrace(path, cfg))
            std::exit(2);
        ReplayOptions opt;
        opt.window = window;
        ReplayTiming t = timeReplay(path, opt);
        std::remove(path.c_str());

        std::uint64_t hw =
            static_cast<std::uint64_t>(t.result.windowHighWater);
        std::uint64_t residentPeak = hw * sizeof(Access);
        std::string key = "scale.n" + std::to_string(target);
        stats.set(key + ".accesses", t.result.accesses);
        stats.set(key + ".window_high_water", hw);
        stats.set(key + ".resident_peak_bytes", residentPeak);
        stats.set(key + ".events_retired",
                  static_cast<std::uint64_t>(t.result.eventsRetired));
        stats.set(key + ".vm_hwm_kb", t.vmHwmKb);
        stats.set(key + ".vm_rss_kb", t.vmRssKb);
        table.addRow({fmtCount(target), fmtCount(t.result.accesses),
                      std::to_string(hw),
                      std::to_string(residentPeak / 1024) + " KiB",
                      std::to_string(t.vmHwmKb) + " kB",
                      fmtCount(static_cast<std::uint64_t>(
                          t.result.eventsRetired))});
        if (firstHw == 0) {
            firstHw = hw;
            firstHwmKb = t.vmHwmKb;
        }
        lastHw = hw;
        lastHwmKb = t.vmHwmKb;
    }
    table.print();
    // Flatness in parts-per-thousand: 1000 = perfectly flat.
    std::uint64_t hwRatio = firstHw ? lastHw * 1000 / firstHw : 0;
    std::uint64_t rssRatio =
        firstHwmKb ? lastHwmKb * 1000 / firstHwmKb : 0;
    stats.set("scale.high_water_ratio_milli", hwRatio);
    stats.set("scale.vm_hwm_ratio_milli", rssRatio);
    std::cout << "\n(trace grew 10x; resident high-water ratio "
              << hwRatio << "/1000, peak-RSS ratio " << rssRatio
              << "/1000 — both ~1000 means O(window) memory)\n";
}

void
benchThroughput(StatSet &stats, bool quick)
{
    benchutil::banner(
        "Streaming verification throughput (FirstRace, window 64k)");
    const std::uint64_t target = quick ? 100000 : 1000000;
    benchutil::Table table(
        {"workload", "records", "accesses", "wall", "accesses/sec"});
    for (const char *wl : {"spinlock", "barrier", "prodcons"}) {
        TraceGenConfig cfg;
        cfg.threads = 4;
        cfg.rounds = roundsFor(target, cfg.threads, cfg.opsPerRound);
        std::string path = tmpTracePath(std::string("tp_") + wl);
        if (!writeWorkloadTrace(wl, path, cfg))
            std::exit(2);
        ReplayOptions opt;
        opt.window = 1 << 16;
        ReplayTiming t = timeReplay(path, opt);
        std::remove(path.c_str());

        std::string key = std::string("throughput.") + wl;
        stats.set(key + ".records", t.result.recordsReplayed);
        stats.set(key + ".accesses", t.result.accesses);
        stats.set(key + ".wall_ns", t.wallNs);
        stats.set(key + ".accesses_per_sec", t.accPerSec);
        stats.set(key + ".window_high_water",
                  static_cast<std::uint64_t>(t.result.windowHighWater));
        std::ostringstream wall;
        wall << t.wallNs / 1000000 << " ms";
        table.addRow({wl, fmtCount(t.result.recordsReplayed),
                      fmtCount(t.result.accesses), wall.str(),
                      fmtCount(t.accPerSec)});
    }
    table.print();
    std::cout << "\n(replay + online DRF0 verification, single thread; "
                 "trace generation and file I/O setup excluded)\n";
}

void
benchSystemReplay(StatSet &stats, bool quick)
{
    benchutil::banner("Simulator-accurate replay (bus, def2drf0)");
    TraceGenConfig cfg;
    cfg.threads = 2;
    cfg.rounds = quick ? 20 : 60;
    std::string path = tmpTracePath("sys");
    if (!writeSpinlockTrace(path, cfg))
        std::exit(2);
    ReplayTraceReader reader;
    if (!reader.open(path))
        std::exit(2);
    SystemReplayOptions opt;
    opt.window = 1 << 10;
    opt.chunkTicks = 2048;
    auto t0 = std::chrono::steady_clock::now();
    SystemReplayResult res = replayOnSystem(reader, opt);
    auto t1 = std::chrono::steady_clock::now();
    std::remove(path.c_str());
    if (!res.ok) {
        std::cerr << "trace_replay: system replay failed: " << res.error
                  << "\n";
        std::exit(2);
    }
    std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    stats.set("system.accesses", res.accesses);
    stats.set("system.wall_ns", ns);
    stats.set("system.accesses_per_sec",
              ns ? res.accesses * 1000000000ull / ns : 0);
    stats.set("system.finish_tick",
              static_cast<std::uint64_t>(res.finishTick));
    benchutil::Table table({"machine", "accesses", "ticks", "wall"});
    std::ostringstream wall;
    wall << ns / 1000000 << " ms";
    table.addRow({"bus", std::to_string(res.accesses),
                  std::to_string(res.finishTick), wall.str()});
    table.print();
    std::cout << "\n(full cache/interconnect simulation driven from the "
                 "recorded trace; the logical engine above is the scale "
                 "path)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_file = "BENCH_trace_replay.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_file = arg.substr(7);
        } else {
            std::cerr
                << "usage: trace_replay [--quick] [--json=FILE]\n";
            return 2;
        }
    }

    StatSet stats;
    stats.set("quick", quick ? 1 : 0);
    benchDifferential(stats, quick);
    benchFlatMemory(stats, quick);
    benchThroughput(stats, quick);
    benchSystemReplay(stats, quick);

    std::ofstream out(json_file);
    if (!out) {
        std::cerr << "trace_replay: cannot write " << json_file << "\n";
        return 2;
    }
    stats.dumpJson(out);
    out << "\n";
    std::cout << "\njson written to " << json_file << "\n";
    return 0;
}
