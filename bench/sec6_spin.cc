/**
 * @file
 * Section 6 reproduction: repeated testing of a synchronization variable.
 *
 * The DRF0 example implementation treats ALL synchronization operations
 * as writes, so the Test of a test-and-test&set lock (or a barrier-count
 * spin) serializes and ping-pongs the line exclusively between spinners —
 * "a significant performance degradation". The refined implementation
 * (read-only syncs treated as reads, no reserve) removes that
 * serialization without giving up the DRF0 guarantee.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hh"
#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

namespace {

using namespace wo;

wo::benchutil::BenchOptions g_opts; // resolved in main() from flags

struct SpinResult
{
    Tick finish = 0;
    std::uint64_t counter = 0;
    bool sc = false;
    bool completed = false;
};

SpinResult
runSpin(const MachineSpec &m, const MultiProgram &mp, PolicyKind pk,
        std::uint64_t seed)
{
    SystemConfig cfg = m.config(pk, seed);
    cfg.maxTicks = 20000000;
    System sys(mp, cfg);
    SpinResult r;
    r.completed = sys.run();
    if (!r.completed)
        return r;
    r.finish = sys.finishTick();
    r.counter = sys.result().finalMemory.at(litmus::kCounter);
    r.sc = verifySc(sys.trace()).sc();
    return r;
}

void
printSec6Table(const MachineSpec &m, bool named)
{
    const int procs = 4, rounds = 4;
    benchutil::banner(
        "Section 6: spin-lock counter, " + std::to_string(procs) +
        " processors x " + std::to_string(rounds) + " rounds" +
        (named ? " [machine=" + m.name + "]" : ""));
    benchutil::Table t({"workload", "policy", "finish ticks",
                        "final counter", "appears SC"});
    struct W
    {
        std::string label;
        MultiProgram mp;
    };
    std::vector<W> workloads;
    workloads.push_back({"TAS spin", tasLockCounter(procs, rounds)});
    workloads.push_back(
        {"Test-and-TAS spin", tttasLockCounter(procs, rounds)});
    for (const auto &w : workloads) {
        for (PolicyKind pk :
             {PolicyKind::Sc, PolicyKind::Def1, PolicyKind::Def2Drf0,
              PolicyKind::Def2Drf1}) {
            SpinResult r = runSpin(m, w.mp, pk, 1);
            if (!r.completed) {
                t.addRow({w.label, toString(pk), "DID NOT FINISH", "-",
                          "-"});
                continue;
            }
            if (r.counter != static_cast<std::uint64_t>(procs * rounds))
                std::cerr << "BUG: lost increments under "
                          << toString(pk) << "\n";
            t.addRow({w.label, toString(pk), std::to_string(r.finish),
                      std::to_string(r.counter), r.sc ? "yes" : "NO"});
        }
    }
    t.print();
    std::cout <<
        "\nExpected shape: on the Test-and-TAS workload the refined "
        "implementation\n(WO-Def2-DRF1) beats the DRF0 example "
        "implementation (WO-Def2-DRF0), whose\nread-only Tests serialize "
        "as writes; all policies keep the counter exact\n(mutual "
        "exclusion holds on every conforming implementation).\n";
}

void
BM_SpinCounter(benchmark::State &state)
{
    PolicyKind pk = static_cast<PolicyKind>(state.range(0));
    const int procs = 4, rounds = 2;
    MultiProgram mp = tttasLockCounter(procs, rounds);
    std::uint64_t seed = 1;
    std::uint64_t total_ticks = 0, runs = 0;
    for (auto _ : state) {
        SpinResult r =
            runSpin(machineOrThrow("net-cold"), mp, pk, seed++);
        total_ticks += r.finish;
        ++runs;
        benchmark::DoNotOptimize(r.counter);
    }
    state.counters["sim_ticks"] =
        benchmark::Counter(static_cast<double>(total_ticks) /
                           static_cast<double>(runs ? runs : 1));
    state.SetLabel(toString(pk));
}
BENCHMARK(BM_SpinCounter)
    ->Arg(static_cast<int>(PolicyKind::Sc))
    ->Arg(static_cast<int>(PolicyKind::Def1))
    ->Arg(static_cast<int>(PolicyKind::Def2Drf0))
    ->Arg(static_cast<int>(PolicyKind::Def2Drf1));

} // namespace

int
main(int argc, char **argv)
{
    g_opts = wo::benchutil::consumeBenchFlags(argc, argv);
    for (const wo::MachineSpec *m :
         wo::benchutil::machinesOr(g_opts, "net-cold"))
        printSec6Table(*m, !g_opts.machines.empty());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
