/**
 * @file
 * Axiomatic-enumeration benchmark: pruned candidate generation vs the
 * naive writes-per-address x co-permutation baseline.
 *
 *   $ axiom_enum [--quick] [--json=FILE] [--corpus=DIR]
 *
 * For every corpus test this measures the full allowed-set computation
 * (all three models) in the default pruned mode — value-matched rf
 * sources, po/atomicity-respecting co placement, per-address coherence
 * pruning, outcome memoization — and in the naive mode, which assigns
 * rf value-blind and permutes co freely, validating only complete
 * candidates. The naive mode is capped; its considered-candidate count
 * is then a lower bound, so the reported pruning ratio is conservative.
 *
 * JSON (default BENCH_axiom_enum.json):
 *   per test:  axiom.<test>.pruned_ns / pruned_considered /
 *              naive_ns / naive_considered / naive_capped
 *   corpus:    axiom.corpus_ns (pruned, all tests, best-of-N),
 *              axiom.candidates_per_sec,
 *              axiom.pruning_ratio_x100 (naive/pruned considered),
 *              axiom.time_ratio_x100 (naive/pruned wall)
 *
 * All timings are best-of-N std::chrono::steady_clock measurements;
 * --quick shrinks repetitions and the naive cap for CI smoke runs.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "axiom/enumerate.hh"
#include "bench_util.hh"
#include "litmus/compiler.hh"
#include "litmus/runner.hh"
#include "sim/stats.hh"

namespace {

using namespace wo;
using namespace wo::litmus_dsl;

template <class F>
std::uint64_t
bestNs(int reps, F &&fn)
{
    std::uint64_t best = ~std::uint64_t(0);
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      t1 - t0)
                      .count();
        best = std::min(best, static_cast<std::uint64_t>(ns));
    }
    return best;
}

std::string
fmtNs(std::uint64_t ns)
{
    char buf[32];
    if (ns >= 1000000000ull)
        std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
    else if (ns >= 1000000ull)
        std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.1f us", ns / 1e3);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_file = "BENCH_axiom_enum.json";
    std::string corpus_dir = "tests/litmus";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_file = arg.substr(7);
        } else if (arg.rfind("--corpus=", 0) == 0) {
            corpus_dir = arg.substr(9);
        } else {
            std::cerr << "usage: axiom_enum [--quick] [--json=FILE] "
                         "[--corpus=DIR]\n";
            return 2;
        }
    }
    if (!std::filesystem::is_directory(corpus_dir)) {
        std::cerr << "axiom_enum: no corpus directory " << corpus_dir
                  << "\n";
        return 2;
    }

    std::vector<CompiledLitmus> tests;
    for (const std::string &f : findLitmusFiles({corpus_dir}))
        tests.push_back(compileLitmusFile(f));

    const int reps = quick ? 2 : 5;
    axiom::AxiomLimits pruned;
    axiom::AxiomLimits naive;
    naive.pruning = false;
    naive.maxCandidates = quick ? 200000 : 1000000;

    // The DRF0 fact only selects which relation graph drf0sc checks;
    // enumeration cost is what we measure, so a fixed value keeps the
    // bench independent of the sampled detector.
    axiom::ModelContext ctx;
    ctx.programDrf0 = false;

    StatSet stats;
    stats.set("quick", quick ? 1 : 0);
    stats.set("axiom.tests", tests.size());

    benchutil::Table table({"test", "pruned", "considered", "naive",
                            "considered", "ratio"});
    std::uint64_t pruned_total_considered = 0;
    std::uint64_t naive_total_considered = 0;
    std::uint64_t pruned_total_ns = 0;
    std::uint64_t naive_total_ns = 0;

    for (const CompiledLitmus &t : tests) {
        axiom::AxiomResult pr;
        std::uint64_t pruned_ns = bestNs(reps, [&] {
            pr = axiom::enumerateAllowed(t.program, axiom::axiomModels(),
                                         ctx, pruned);
        });
        axiom::AxiomResult nr;
        std::uint64_t naive_ns = bestNs(reps, [&] {
            nr = axiom::enumerateAllowed(t.program, axiom::axiomModels(),
                                         ctx, naive);
        });
        pruned_total_considered += pr.stats.candidatesConsidered;
        naive_total_considered += nr.stats.candidatesConsidered;
        pruned_total_ns += pruned_ns;
        naive_total_ns += naive_ns;

        double ratio =
            pr.stats.candidatesConsidered
                ? static_cast<double>(nr.stats.candidatesConsidered) /
                      static_cast<double>(pr.stats.candidatesConsidered)
                : 0.0;
        char rbuf[32];
        std::snprintf(rbuf, sizeof(rbuf), "%.1fx%s", ratio,
                      nr.complete ? "" : "+");
        table.addRow({t.name, fmtNs(pruned_ns),
                      std::to_string(pr.stats.candidatesConsidered),
                      fmtNs(naive_ns),
                      std::to_string(nr.stats.candidatesConsidered),
                      rbuf});

        std::string pre = "axiom." + t.name + ".";
        stats.set(pre + "pruned_ns", pruned_ns);
        stats.set(pre + "pruned_considered",
                  pr.stats.candidatesConsidered);
        stats.set(pre + "naive_ns", naive_ns);
        stats.set(pre + "naive_considered",
                  nr.stats.candidatesConsidered);
        stats.set(pre + "naive_capped", nr.complete ? 0 : 1);

        // The two modes must agree wherever the naive cap was not hit
        // — a cheap differential ride-along on every bench run.
        if (nr.complete && nr.allowed != pr.allowed) {
            std::cerr << "axiom_enum: MODE MISMATCH on " << t.name
                      << " (naive and pruned allowed sets differ)\n";
            return 1;
        }
    }
    table.print();
    std::cout << "\n(naive mode capped at " << naive.maxCandidates
              << " considered candidates per test; '+' marks capped "
                 "rows, where the true ratio is higher)\n";

    // Whole-corpus pruned wall time: the <1s acceptance number.
    std::uint64_t corpus_ns = bestNs(reps, [&] {
        for (const CompiledLitmus &t : tests)
            axiom::enumerateAllowed(t.program, axiom::axiomModels(), ctx,
                                    pruned);
    });
    double per_sec =
        corpus_ns ? pruned_total_considered * 1e9 /
                        static_cast<double>(corpus_ns)
                  : 0.0;
    double ratio =
        pruned_total_considered
            ? static_cast<double>(naive_total_considered) /
                  static_cast<double>(pruned_total_considered)
            : 0.0;
    double time_ratio =
        pruned_total_ns ? static_cast<double>(naive_total_ns) /
                              static_cast<double>(pruned_total_ns)
                        : 0.0;
    stats.set("axiom.corpus_ns", corpus_ns);
    stats.set("axiom.candidates_per_sec",
              static_cast<std::uint64_t>(per_sec));
    stats.set("axiom.pruning_ratio_x100",
              static_cast<std::uint64_t>(ratio * 100));
    stats.set("axiom.time_ratio_x100",
              static_cast<std::uint64_t>(time_ratio * 100));

    std::cout << "\nfull corpus (pruned, all models): " << fmtNs(corpus_ns)
              << "  |  " << static_cast<std::uint64_t>(per_sec)
              << " candidates/s  |  pruning " << std::fixed
              << std::setprecision(1) << ratio << "x fewer candidates, "
              << time_ratio << "x faster (naive capped)\n";

    std::ofstream out(json_file);
    if (!out) {
        std::cerr << "axiom_enum: cannot write " << json_file << "\n";
        return 2;
    }
    stats.dumpJson(out);
    out << "\n";
    std::cout << "json written to " << json_file << "\n";
    return 0;
}
