/**
 * @file
 * Figure 1 reproduction: sequential consistency can be violated in all
 * four shared-memory configurations once the corresponding uniprocessor
 * optimization is enabled — and never under the SC issue discipline.
 *
 * For each configuration the Dekker-style litmus runs over many seeds;
 * the table reports how often the SC-forbidden both-read-zero outcome
 * occurred, and cross-checks every flagged run with the SC verifier.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "bench_util.hh"
#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/campaign.hh"
#include "workload/litmus.hh"

namespace {

using namespace wo;

wo::benchutil::BenchOptions g_opts; // resolved in main() from --threads/--seed

struct Fig1Config
{
    std::string label;
    std::string mechanism;
    std::string machine; ///< machine-registry name
};

const std::vector<Fig1Config> &
fig1Configs()
{
    static const std::vector<Fig1Config> configs = {
        {"bus / no cache", "reads pass writes in write buffer", "bus-u"},
        {"network / no cache", "in-order issue, modules reached out of order",
         "net-u"},
        {"bus / cache", "reads pass writes in write buffer", "bus"},
        {"network / cache", "read before write propagates to other cache",
         "net"},
    };
    return configs;
}

SystemConfig
buildConfig(const Fig1Config &fc, PolicyKind pk, std::uint64_t seed)
{
    SystemConfig cfg = machineOrThrow(fc.machine).config(pk, seed);
    // Figure 1 runs every machine at the default jitter, including the
    // cache-less network machine (whose registry default is 30).
    cfg.net.jitter = 8;
    return cfg;
}

int
countViolations(const Fig1Config &fc, PolicyKind pk, int runs,
                bool verify_sc)
{
    // One seed per campaign job; each flagged run is cross-checked by
    // the SC verifier inside its own job, so the verification work
    // parallelizes along with the simulations.
    Campaign campaign({g_opts.threads, g_opts.baseSeed});
    return campaign.reduce<int, int>(
        runs,
        [&](const CampaignJob &jb) {
            int s = jb.index + 1;
            System sys(dekkerLitmus(), buildConfig(fc, pk, s));
            if (!sys.run())
                return 0;
            if (!dekkerViolatesSc(sys.result()))
                return 0;
            if (verify_sc && verifySc(sys.trace()).sc()) {
                std::cerr << "BUG: flagged outcome verified SC!\n";
            }
            return 1;
        },
        0, [](int &acc, const int &one) { acc += one; });
}

void
printFig1Table()
{
    const int runs = 200;
    benchutil::banner(
        "Figure 1: SC violations by configuration (Dekker litmus, " +
        std::to_string(runs) + " seeds)");
    benchutil::Table t({"configuration", "relaxed mechanism",
                        "relaxed violations", "SC-policy violations"});
    for (const auto &fc : fig1Configs()) {
        int relaxed = countViolations(fc, PolicyKind::Relaxed, runs, true);
        int sc = countViolations(fc, PolicyKind::Sc, runs, true);
        std::ostringstream r, s;
        r << relaxed << "/" << runs;
        s << sc << "/" << runs;
        t.addRow({fc.label, fc.mechanism, r.str(), s.str()});
    }
    t.print();
    std::cout << "\nExpected shape: every configuration shows violations "
                 "under its relaxed mechanism;\nthe SC issue discipline "
                 "shows zero everywhere.\n";
}

void
BM_DekkerRun(benchmark::State &state)
{
    const auto &fc = fig1Configs()[state.range(0)];
    std::uint64_t seed = 1;
    for (auto _ : state) {
        System sys(dekkerLitmus(),
                   buildConfig(fc, PolicyKind::Relaxed, seed++));
        sys.run();
        benchmark::DoNotOptimize(sys.result());
    }
    state.SetLabel(fc.label);
}
BENCHMARK(BM_DekkerRun)->DenseRange(0, 3);

} // namespace

int
main(int argc, char **argv)
{
    g_opts = wo::benchutil::consumeBenchFlags(argc, argv);
    printFig1Table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
