/**
 * @file
 * Figure 3 reproduction: where the old and new definitions stall.
 *
 * Scenario (P0 and P1 share datum x and synchronize on s):
 *   P0: W(x); other work; Unset(s); more work.
 *   P1: TestAndSet(s) until acquired; other work; R(x).
 *
 * The write of x is made progressively slower to perform globally (the
 * invalidation-acknowledge delay sweeps). Under Definition 1 the
 * *issuing* processor P0 must stall at the Unset until W(x) is globally
 * performed. Under the Definition 2 / DRF0 implementation P0 commits the
 * Unset and keeps going; only P1's TestAndSet is held up (by the reserve
 * bit) until W(x) is globally performed.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hh"
#include "core/sc_verifier.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

namespace {

using namespace wo;

struct Fig3Point
{
    Tick p0_stall;
    Tick p1_stall;
    Tick finish;
    bool sc;
};

Fig3Point
runFig3(PolicyKind pk, Tick write_gp_delay, std::uint64_t seed = 1)
{
    // The warm "net" machine: x shared in both caches, so the write
    // needs invalidations before it is globally performed.
    SystemConfig cfg = machineOrThrow("net").config(pk, seed);
    cfg.cache.invApplyDelay = write_gp_delay;
    System sys(figure3Scenario(/*work_nops=*/5), cfg);
    Fig3Point pt{};
    if (!sys.run()) {
        std::cerr << "fig3 run failed to complete under "
                  << toString(pk) << "\n";
        return pt;
    }
    pt.p0_stall = sys.processor(0).stallCycles();
    pt.p1_stall = sys.processor(1).stallCycles();
    pt.finish = sys.finishTick();
    pt.sc = verifySc(sys.trace()).sc();
    return pt;
}

void
printFig3Table()
{
    benchutil::banner(
        "Figure 3: stall analysis, Definition 1 vs Definition 2 (DRF0)");
    benchutil::Table t({"write-GP delay", "Def1 P0 stall", "Def2 P0 stall",
                        "Def1 P1 stall", "Def2 P1 stall", "Def1 finish",
                        "Def2 finish"});
    for (Tick d : {Tick{0}, Tick{50}, Tick{100}, Tick{200}, Tick{400},
                   Tick{800}}) {
        Fig3Point d1 = runFig3(PolicyKind::Def1, d);
        Fig3Point d2 = runFig3(PolicyKind::Def2Drf0, d);
        if (!d1.sc || !d2.sc)
            std::cerr << "BUG: fig3 execution not SC!\n";
        t.addRow({std::to_string(d), std::to_string(d1.p0_stall),
                  std::to_string(d2.p0_stall), std::to_string(d1.p1_stall),
                  std::to_string(d2.p1_stall), std::to_string(d1.finish),
                  std::to_string(d2.finish)});
    }
    t.print();
    std::cout <<
        "\nExpected shape: as the write takes longer to perform "
        "globally,\n  - Def1 P0's stall grows linearly (it waits at the "
        "Unset);\n  - Def2 P0's stall stays flat at zero (it commits the "
        "Unset and moves on);\n  - P1 is held up under BOTH (its "
        "TestAndSet needs the write globally\n    performed): under Def1 "
        "as issue stalls, under Def2 as spinning, so both\n    finish "
        "times grow with the delay while P0's freedom is the Def2 win.\n";
}

void
BM_Fig3(benchmark::State &state)
{
    PolicyKind pk =
        state.range(0) == 0 ? PolicyKind::Def1 : PolicyKind::Def2Drf0;
    Tick delay = static_cast<Tick>(state.range(1));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Fig3Point p = runFig3(pk, delay, seed++);
        benchmark::DoNotOptimize(p.finish);
    }
    state.SetLabel(std::string(pk == PolicyKind::Def1 ? "Def1" : "Def2") +
                   "/delay=" + std::to_string(delay));
}
BENCHMARK(BM_Fig3)
    ->Args({0, 0})
    ->Args({0, 200})
    ->Args({1, 0})
    ->Args({1, 200});

} // namespace

int
main(int argc, char **argv)
{
    printFig3Table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
