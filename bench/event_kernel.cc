/**
 * @file
 * Event-kernel benchmark: the pooled EventQueue against the historical
 * std::priority_queue<std::function> kernel it replaced
 * (sim/legacy_event_queue.hh).
 *
 *   $ event_kernel [--quick] [--json=FILE]
 *
 * Three workloads, each a schedule/dispatch loop driven by the same
 * deterministic Rng stream on both kernels (the fired (tick, order)
 * sequence is checksummed and must agree before anything is timed):
 *
 *  1. steady-churn — a rolling window of small-capture callbacks, the
 *     simulator's steady state (every event fits the in-record storage
 *     and recycles through the free list);
 *  2. msg-capture — callbacks capturing a Msg-sized payload by value,
 *     the interconnect delivery shape;
 *  3. large-capture — callbacks whose captures exceed the in-record
 *     storage and take the heap-spill path (the pooled kernel's worst
 *     case; expected near parity).
 *
 * All timings are best-of-N std::chrono::steady_clock measurements;
 * results are printed as a table and dumped as JSON (default file:
 * BENCH_event_kernel.json). --quick shrinks the event counts and
 * repetitions for CI smoke runs; the JSON schema is identical.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace {

using namespace wo;

/** Best-of-@p reps wall time of @p fn, in nanoseconds. */
template <class F>
std::uint64_t
bestNs(int reps, F &&fn)
{
    std::uint64_t best = ~std::uint64_t(0);
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      t1 - t0)
                      .count();
        best = std::min(best, static_cast<std::uint64_t>(ns));
    }
    return best;
}

std::string
fmtNs(std::uint64_t ns)
{
    std::ostringstream oss;
    if (ns >= 10000000)
        oss << ns / 1000000 << " ms";
    else if (ns >= 10000)
        oss << ns / 1000 << " us";
    else
        oss << ns << " ns";
    return oss.str();
}

std::string
fmtSpeedup(std::uint64_t milli)
{
    std::ostringstream oss;
    oss << milli / 1000 << "." << (milli % 1000) / 100 << "x";
    return oss.str();
}

/** Order-sensitive checksum mixed in each callback: catches any firing
 * order divergence between the kernels, not just a count mismatch. */
inline void
mix(std::uint64_t &h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

/** Msg-sized payload (the interconnect delivery capture shape). */
struct MsgPayload
{
    std::uint64_t words[6] = {1, 2, 3, 4, 5, 6};
};

/** Payload deliberately larger than the in-record callable storage, to
 * force the pooled kernel onto its heap-spill path. */
struct BigPayload
{
    std::uint64_t words[16] = {};
};

/**
 * The dispatch loop: keep @p window events pending, firing and
 * rescheduling until @p events have executed. @p make_cb builds the
 * callback for one slot given (checksum-ref, queue-ref, slot seq).
 */
template <class Q, class MakeCb>
std::uint64_t
churn(std::uint64_t events, int window, std::uint64_t seed,
      MakeCb &&make_cb)
{
    Q q;
    Rng rng(seed);
    std::uint64_t h = 0;
    std::uint64_t scheduled = 0;
    auto arm = [&] {
        q.scheduleAfter(static_cast<Tick>(rng.below(64)) + 1,
                        make_cb(h, q, scheduled));
        ++scheduled;
    };
    for (int i = 0; i < window && scheduled < events; ++i)
        arm();
    while (q.executed() < events) {
        q.step();
        if (scheduled < events)
            arm();
    }
    return h;
}

struct Workload
{
    const char *label;
    const char *key;
    /** Run the workload on kernel Q; returns the firing checksum. */
    std::uint64_t (*legacy)(std::uint64_t, int, std::uint64_t);
    std::uint64_t (*pooled)(std::uint64_t, int, std::uint64_t);
};

template <class Q>
std::uint64_t
runSmall(std::uint64_t events, int window, std::uint64_t seed)
{
    return churn<Q>(events, window, seed,
                    [](std::uint64_t &h, Q &q, std::uint64_t seq) {
                        return [&h, &q, seq] { mix(h, q.now() + seq); };
                    });
}

template <class Q>
std::uint64_t
runMsg(std::uint64_t events, int window, std::uint64_t seed)
{
    return churn<Q>(events, window, seed,
                    [](std::uint64_t &h, Q &q, std::uint64_t seq) {
                        MsgPayload m;
                        m.words[0] = seq;
                        return [&h, &q, m] {
                            mix(h, q.now() + m.words[0]);
                        };
                    });
}

template <class Q>
std::uint64_t
runBig(std::uint64_t events, int window, std::uint64_t seed)
{
    return churn<Q>(events, window, seed,
                    [](std::uint64_t &h, Q &q, std::uint64_t seq) {
                        BigPayload b;
                        b.words[0] = seq;
                        return [&h, &q, b] {
                            mix(h, q.now() + b.words[0]);
                        };
                    });
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_file = "BENCH_event_kernel.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_file = arg.substr(7);
        } else {
            std::cerr << "usage: event_kernel [--quick] [--json=FILE]\n";
            return 2;
        }
    }

    const std::uint64_t events = quick ? 100000 : 1000000;
    const int window = 64;
    const int reps = quick ? 3 : 7;
    const std::uint64_t seed = 42;

    const Workload workloads[] = {
        {"steady-churn (inline capture)", "steady_churn",
         &runSmall<LegacyEventQueue>, &runSmall<EventQueue>},
        {"msg-capture (48B by value)", "msg_capture",
         &runMsg<LegacyEventQueue>, &runMsg<EventQueue>},
        {"large-capture (heap spill)", "large_capture",
         &runBig<LegacyEventQueue>, &runBig<EventQueue>},
    };

    StatSet stats;
    stats.set("quick", quick ? 1 : 0);
    stats.set("events", events);

    benchutil::banner(
        "Event kernel: pooled records vs priority_queue<function> (" +
        std::to_string(events) + " events, best of " +
        std::to_string(reps) + ")");
    benchutil::Table table(
        {"workload", "legacy", "pooled", "speedup", "Mev/s"});
    bool all_ok = true;
    for (const Workload &w : workloads) {
        // The two kernels must fire the identical (tick, order) stream
        // before their dispatch rates are worth comparing.
        std::uint64_t legacy_sum = w.legacy(events, window, seed);
        std::uint64_t pooled_sum = w.pooled(events, window, seed);
        if (legacy_sum != pooled_sum) {
            std::cerr << "BUG: kernels fired different sequences on "
                      << w.label << "\n";
            return 1;
        }
        std::uint64_t legacy_ns = bestNs(reps, [&] {
            if (w.legacy(events, window, seed) != legacy_sum)
                std::exit(1);
        });
        std::uint64_t pooled_ns = bestNs(reps, [&] {
            if (w.pooled(events, window, seed) != legacy_sum)
                std::exit(1);
        });
        std::uint64_t speedup_milli =
            pooled_ns ? legacy_ns * 1000 / pooled_ns : 0;
        std::uint64_t mev_s_milli =
            pooled_ns ? events * 1000000 / pooled_ns : 0;
        std::string key = std::string("event_kernel.") + w.key;
        stats.set(key + ".legacy_ns", legacy_ns);
        stats.set(key + ".pooled_ns", pooled_ns);
        stats.set(key + ".speedup_milli", speedup_milli);
        table.addRow({w.label, fmtNs(legacy_ns), fmtNs(pooled_ns),
                      fmtSpeedup(speedup_milli),
                      std::to_string(mev_s_milli / 1000) + "." +
                          std::to_string(mev_s_milli % 1000 / 100)});
        if (std::string(w.key) == "steady_churn" &&
            speedup_milli < 1500) {
            all_ok = false;
        }
    }
    table.print();
    std::cout << "\n(identical fired-event checksums verified before "
                 "timing; speedup = legacy / pooled wall time)\n";

    std::ofstream out(json_file);
    if (!out) {
        std::cerr << "event_kernel: cannot write " << json_file << "\n";
        return 2;
    }
    stats.dumpJson(out);
    out << "\n";
    std::cout << "\njson written to " << json_file << "\n";
    if (!all_ok) {
        std::cerr << "event_kernel: steady-churn speedup below the 1.5x "
                     "target\n";
    }
    return 0;
}
