/**
 * @file
 * Tracing-overhead micro-harness: measures simulator throughput with
 * tracing disabled (no sink attached — the shipping default) against
 * tracing fully enabled (a TraceBuffer with the all-components mask),
 * over the same deterministic lock-contention workloads.
 *
 *   $ trace_overhead [--quick] [--json=FILE]
 *
 * The disabled-path number is the one that matters: every component
 * guards its instrumentation behind a single `if (sink_)` test, so an
 * untraced run must stay within noise of a build that never had the
 * observability layer. The enabled-path number quantifies what a traced
 * debugging run costs (event construction + buffer append + histogram
 * updates).
 *
 * The measurement loop matches the PR-4 event-kernel gate: 600 runs
 * (60 with --quick) of tasLockCounter(4,4) + tttasLockCounter(4,4) on
 * net-cold under Def2Drf0, seeds 1..runs, accumulating executed-event
 * counts. Results print as a table and dump as JSON (default file:
 * BENCH_trace_overhead.json); --quick shrinks repetitions for CI smoke
 * runs with an identical JSON schema.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/trace_sink.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

namespace {

using namespace wo;

struct Sample
{
    std::uint64_t events = 0;
    double seconds = 0.0;

    double
    eventsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
    }
};

/**
 * One full measurement pass: @p runs iterations of both lock workloads,
 * recording into @p sink when non-null.
 */
Sample
measure(int runs, TraceSink *sink)
{
    MultiProgram tas = tasLockCounter(4, 4);
    MultiProgram tttas = tttasLockCounter(4, 4);

    // Warm caches / allocator before timing.
    for (int i = 0; i < 5; ++i) {
        SystemConfig cfg =
            machineOrThrow("net-cold").config(PolicyKind::Def2Drf0, 1 + i);
        System sys(tttas, cfg);
        sys.run();
    }

    Sample s;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < runs; ++i) {
        for (const MultiProgram *mp : {&tas, &tttas}) {
            SystemConfig cfg = machineOrThrow("net-cold").config(
                PolicyKind::Def2Drf0, 1 + i);
            cfg.traceSink = sink;
            System sys(*mp, cfg);
            sys.run();
            s.events += sys.eventQueue().executed();
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    int runs = 600;
    std::string json_file = "BENCH_trace_overhead.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            runs = 60;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_file = arg.substr(7);
        } else {
            std::cerr << "usage: trace_overhead [--quick] [--json=FILE]\n";
            return 2;
        }
    }

    Sample off = measure(runs, nullptr);

    // The traced pass uses a fresh buffer per run so memory stays
    // bounded and each run pays the realistic append cost from empty.
    MultiProgram tas = tasLockCounter(4, 4);
    MultiProgram tttas = tttasLockCounter(4, 4);
    Sample on;
    {
        for (int i = 0; i < 5; ++i) {
            SystemConfig cfg = machineOrThrow("net-cold").config(
                PolicyKind::Def2Drf0, 1 + i);
            System sys(tttas, cfg);
            sys.run();
        }
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < runs; ++i) {
            for (const MultiProgram *mp : {&tas, &tttas}) {
                TraceBuffer buf;
                SystemConfig cfg = machineOrThrow("net-cold").config(
                    PolicyKind::Def2Drf0, 1 + i);
                cfg.traceSink = &buf;
                System sys(*mp, cfg);
                sys.run();
                on.events += sys.eventQueue().executed();
            }
        }
        auto t1 = std::chrono::steady_clock::now();
        on.seconds = std::chrono::duration<double>(t1 - t0).count();
    }

    double overhead_pct =
        off.eventsPerSec() > 0
            ? (off.eventsPerSec() / on.eventsPerSec() - 1.0) * 100.0
            : 0.0;

    std::printf("trace_overhead (%d runs x 2 workloads, net-cold, "
                "def2drf0)\n",
                runs);
    std::printf("  %-14s %12s %10s %16s\n", "mode", "events", "sec",
                "events/sec");
    std::printf("  %-14s %12llu %10.4f %16.0f\n", "tracing off",
                (unsigned long long)off.events, off.seconds,
                off.eventsPerSec());
    std::printf("  %-14s %12llu %10.4f %16.0f\n", "tracing on",
                (unsigned long long)on.events, on.seconds,
                on.eventsPerSec());
    std::printf("  enabled-path cost: %.1f%%\n", overhead_pct);

    std::ofstream out(json_file);
    if (!out) {
        std::cerr << "trace_overhead: cannot write " << json_file << "\n";
        return 2;
    }
    out << "{\n"
        << "  \"bench\": \"trace_overhead\",\n"
        << "  \"runs\": " << runs << ",\n"
        << "  \"off\": {\"events\": " << off.events
        << ", \"events_per_sec\": "
        << static_cast<std::uint64_t>(off.eventsPerSec()) << "},\n"
        << "  \"on\": {\"events\": " << on.events
        << ", \"events_per_sec\": "
        << static_cast<std::uint64_t>(on.eventsPerSec()) << "},\n"
        << "  \"enabled_overhead_pct\": "
        << static_cast<std::int64_t>(overhead_pct * 10) / 10.0 << "\n"
        << "}\n";
    std::printf("json written to %s\n", json_file.c_str());
    return 0;
}
