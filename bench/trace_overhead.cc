/**
 * @file
 * Tracing-overhead micro-harness: measures simulator throughput with
 * tracing disabled (no sink attached — the shipping default) against
 * tracing fully enabled (a TraceBuffer with the all-components mask)
 * and against coverage recording (a CoverageMap installed, no sink),
 * over the same deterministic lock-contention workloads.
 *
 *   $ trace_overhead [--quick] [--json=FILE] [--gate=PCT]
 *
 * The disabled-path number is the one that matters: every component
 * guards its instrumentation behind a single `if (sink_)` test, so an
 * untraced run must stay within noise of a build that never had the
 * observability layer. The enabled-path number quantifies what a traced
 * debugging run costs (event construction + buffer append + histogram
 * updates). The coverage number gates the campaign-coverage path
 * (dense transition counters + interned-key bumps): --gate=PCT exits
 * nonzero when coverage overhead exceeds PCT (the CI gate is 3).
 *
 * The measurement loop matches the PR-4 event-kernel gate: 600 runs
 * (240 with --quick) of tasLockCounter(4,4) + tttasLockCounter(4,4) on
 * net-cold under Def2Drf0, seeds 1..runs, accumulating executed-event
 * counts. Off and coverage passes run as interleaved back-to-back
 * pairs; the reported coverage cost is the median pairwise overhead
 * over fifteen rounds, which cancels external load that varies on the
 * timescale of a whole pass. The table rows show each mode's fastest
 * pass. Results print as a table and dump as JSON (default file:
 * BENCH_trace_overhead.json); --quick shrinks repetitions for CI smoke
 * runs with an identical JSON schema.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/coverage.hh"
#include "obs/trace_sink.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

namespace {

using namespace wo;

struct Sample
{
    std::uint64_t events = 0;
    double seconds = 0.0;

    double
    eventsPerSec() const
    {
        return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
    }
};

/**
 * One full measurement pass: @p runs iterations of both lock workloads,
 * recording into @p sink and/or @p cov when non-null.
 */
Sample
measure(int runs, TraceSink *sink, CoverageMap *cov = nullptr)
{
    MultiProgram tas = tasLockCounter(4, 4);
    MultiProgram tttas = tttasLockCounter(4, 4);

    // Warm caches / allocator before timing.
    for (int i = 0; i < 5; ++i) {
        SystemConfig cfg =
            machineOrThrow("net-cold").config(PolicyKind::Def2Drf0, 1 + i);
        System sys(tttas, cfg);
        sys.run();
    }

    Sample s;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < runs; ++i) {
        for (const MultiProgram *mp : {&tas, &tttas}) {
            SystemConfig cfg = machineOrThrow("net-cold").config(
                PolicyKind::Def2Drf0, 1 + i);
            cfg.traceSink = sink;
            cfg.coverage = cov;
            System sys(*mp, cfg);
            sys.run();
            s.events += sys.eventQueue().executed();
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    int runs = 600;
    std::string json_file = "BENCH_trace_overhead.json";
    double gate_pct = -1.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            runs = 240;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_file = arg.substr(7);
        } else if (arg.rfind("--gate=", 0) == 0) {
            gate_pct = std::atof(arg.c_str() + 7);
        } else {
            std::cerr << "usage: trace_overhead [--quick] [--json=FILE] "
                         "[--gate=PCT]\n";
            return 2;
        }
    }

    // Interleave off/coverage passes and gate on the MEDIAN pairwise
    // overhead: a single pass is short enough that scheduler noise on
    // a loaded host swings any one ratio by tens of percent in either
    // direction (an off-vs-off control shows the same swings), but the
    // noise is symmetric per back-to-back pair, so the median over
    // many pairs centers on the true cost — outliers in both
    // directions are trimmed, and a real regression (e.g. a string
    // hash on the stall path) shifts every pair. The coverage map is
    // campaign-style: one map accumulating across every run (the
    // wo-litmus --coverage-report shape).
    const int reps = 15;
    Sample off, cov;
    CoverageMap cov_map;
    std::vector<double> pair_pct;
    for (int r = 0; r < reps; ++r) {
        Sample o = measure(runs, nullptr);
        Sample c = measure(runs, nullptr, &cov_map);
        if (o.eventsPerSec() > off.eventsPerSec())
            off = o;
        if (c.eventsPerSec() > cov.eventsPerSec())
            cov = c;
        if (c.eventsPerSec() > 0) {
            pair_pct.push_back(
                (o.eventsPerSec() / c.eventsPerSec() - 1.0) * 100.0);
        }
    }
    std::sort(pair_pct.begin(), pair_pct.end());
    double coverage_pct =
        pair_pct.empty() ? 0.0 : pair_pct[pair_pct.size() / 2];

    // The traced pass uses a fresh buffer per run so memory stays
    // bounded and each run pays the realistic append cost from empty.
    MultiProgram tas = tasLockCounter(4, 4);
    MultiProgram tttas = tttasLockCounter(4, 4);
    Sample on;
    for (int r = 0; r < 3; ++r) {
        Sample pass;
        for (int i = 0; i < 5; ++i) {
            SystemConfig cfg = machineOrThrow("net-cold").config(
                PolicyKind::Def2Drf0, 1 + i);
            System sys(tttas, cfg);
            sys.run();
        }
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < runs; ++i) {
            for (const MultiProgram *mp : {&tas, &tttas}) {
                TraceBuffer buf;
                SystemConfig cfg = machineOrThrow("net-cold").config(
                    PolicyKind::Def2Drf0, 1 + i);
                cfg.traceSink = &buf;
                System sys(*mp, cfg);
                sys.run();
                pass.events += sys.eventQueue().executed();
            }
        }
        auto t1 = std::chrono::steady_clock::now();
        pass.seconds = std::chrono::duration<double>(t1 - t0).count();
        if (pass.eventsPerSec() > on.eventsPerSec())
            on = pass;
    }

    double overhead_pct =
        on.eventsPerSec() > 0
            ? (off.eventsPerSec() / on.eventsPerSec() - 1.0) * 100.0
            : 0.0;

    std::printf("trace_overhead (%d runs x 2 workloads, net-cold, "
                "def2drf0)\n",
                runs);
    std::printf("  %-14s %12s %10s %16s\n", "mode", "events", "sec",
                "events/sec");
    std::printf("  %-14s %12llu %10.4f %16.0f\n", "tracing off",
                (unsigned long long)off.events, off.seconds,
                off.eventsPerSec());
    std::printf("  %-14s %12llu %10.4f %16.0f\n", "coverage on",
                (unsigned long long)cov.events, cov.seconds,
                cov.eventsPerSec());
    std::printf("  %-14s %12llu %10.4f %16.0f\n", "tracing on",
                (unsigned long long)on.events, on.seconds,
                on.eventsPerSec());
    std::printf("  enabled-path cost: %.1f%%\n", overhead_pct);
    std::printf("  coverage cost:     %.1f%%\n", coverage_pct);

    std::ofstream out(json_file);
    if (!out) {
        std::cerr << "trace_overhead: cannot write " << json_file << "\n";
        return 2;
    }
    out << "{\n"
        << "  \"bench\": \"trace_overhead\",\n"
        << "  \"runs\": " << runs << ",\n"
        << "  \"off\": {\"events\": " << off.events
        << ", \"events_per_sec\": "
        << static_cast<std::uint64_t>(off.eventsPerSec()) << "},\n"
        << "  \"coverage\": {\"events\": " << cov.events
        << ", \"events_per_sec\": "
        << static_cast<std::uint64_t>(cov.eventsPerSec()) << "},\n"
        << "  \"on\": {\"events\": " << on.events
        << ", \"events_per_sec\": "
        << static_cast<std::uint64_t>(on.eventsPerSec()) << "},\n"
        << "  \"enabled_overhead_pct\": "
        << static_cast<std::int64_t>(overhead_pct * 10) / 10.0 << ",\n"
        << "  \"coverage_overhead_pct\": "
        << static_cast<std::int64_t>(coverage_pct * 10) / 10.0 << "\n"
        << "}\n";
    std::printf("json written to %s\n", json_file.c_str());

    if (gate_pct >= 0 && coverage_pct > gate_pct) {
        std::fprintf(stderr,
                     "trace_overhead: coverage overhead %.1f%% exceeds "
                     "gate %.1f%%\n",
                     coverage_pct, gate_pct);
        return 1;
    }
    return 0;
}
