/**
 * @file
 * wo-replay: record/replay front-end for the streaming trace pipeline.
 *
 *   $ wo-replay gen    [options] <file>    generate a workload trace
 *   $ wo-replay info   <file>              print header + per-thread sizes
 *   $ wo-replay verify [options] <file>    logical replay + streaming DRF0
 *   $ wo-replay sim    [options] <file>    simulator-accurate replay on a
 *                                          System from the machine registry
 *
 * gen options:
 *   --workload=NAME   spinlock | barrier | prodcons          [spinlock]
 *   --threads=N       worker threads in the trace            [4]
 *   --rounds=N        rounds per thread / items per producer [100]
 *   --ops=N           data accesses per critical section     [4]
 *   --seed=S          generator seed                         [1]
 *   --inject-race     plant one unsynchronized write pair
 *
 * verify options:
 *   --window=N        resident-trace window; 0 = whole trace [65536]
 *   --all-races       full race enumeration (oracle mode) instead of the
 *                     O(addrs) first-race scale mode
 *   --seed=S          interleaving seed                      [1]
 *   --json[=FILE]     machine-readable result (stdout or FILE)
 *
 * sim options:
 *   --machine=NAME    machine-registry entry                 [bus]
 *   --policy=NAME     sc|def1|def2drf0|def2drf1|relaxed      [def2drf0]
 *   --window=N        resident-trace window; 0 = whole trace [16384]
 *   --chunk=N         simulated ticks between checker drains [4096]
 *   --all-races       oracle-mode race enumeration
 *   --seed=S          network seed                           [1]
 *   --json[=FILE]     machine-readable result
 *
 * Exit status: 0 race-free (or gen/info success), 1 races found or replay
 * failed, 2 bad usage / unreadable trace.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "replay/replay_engine.hh"
#include "replay/system_replay.hh"
#include "replay/trace_format.hh"
#include "replay/trace_gen.hh"
#include "system/machine_spec.hh"

namespace {

using namespace wo;

int
usage(std::ostream &os)
{
    os << "usage: wo-replay gen [--workload=spinlock|barrier|prodcons]\n"
          "                     [--threads=N] [--rounds=N] [--ops=N]\n"
          "                     [--seed=S] [--inject-race] <file>\n"
          "       wo-replay info <file>\n"
          "       wo-replay verify [--window=N] [--all-races] [--seed=S]\n"
          "                     [--json[=FILE]] <file>\n"
          "       wo-replay sim [--machine=NAME] [--policy=NAME]\n"
          "                     [--window=N] [--chunk=N] [--all-races]\n"
          "                     [--seed=S] [--json[=FILE]] <file>\n";
    return 2;
}

bool
parsePolicy(const std::string &name, PolicyKind &out)
{
    if (name == "sc")
        out = PolicyKind::Sc;
    else if (name == "def1")
        out = PolicyKind::Def1;
    else if (name == "def2drf0")
        out = PolicyKind::Def2Drf0;
    else if (name == "def2drf1")
        out = PolicyKind::Def2Drf1;
    else if (name == "relaxed")
        out = PolicyKind::Relaxed;
    else
        return false;
    return true;
}

void
printRaces(std::ostream &os, const std::vector<Race> &races)
{
    std::size_t shown = std::min<std::size_t>(races.size(), 10);
    for (std::size_t i = 0; i < shown; ++i)
        os << "  race: access #" << races[i].first << " vs #"
           << races[i].second << "\n";
    if (races.size() > shown)
        os << "  ... " << races.size() - shown << " more\n";
}

/** Shared result-JSON shape for `verify` and `sim`. */
void
writeResultJson(std::ostream &os, const std::string &mode, bool ok,
                bool raceFree, const std::vector<Race> &races,
                std::uint64_t accesses, std::int64_t retired,
                int highWater)
{
    os << "{\n"
       << "  \"mode\": \"" << mode << "\",\n"
       << "  \"ok\": " << (ok ? "true" : "false") << ",\n"
       << "  \"race_free\": " << (raceFree ? "true" : "false") << ",\n"
       << "  \"races\": " << races.size() << ",\n"
       << "  \"accesses\": " << accesses << ",\n"
       << "  \"trace_events_retired\": " << retired << ",\n"
       << "  \"window_high_water\": " << highWater << "\n"
       << "}\n";
}

int
emitJson(const std::string &json_file, const std::string &mode, bool ok,
         bool raceFree, const std::vector<Race> &races,
         std::uint64_t accesses, std::int64_t retired, int highWater)
{
    if (json_file == "-") {
        writeResultJson(std::cout, mode, ok, raceFree, races, accesses,
                        retired, highWater);
        return 0;
    }
    std::ofstream out(json_file);
    if (!out) {
        std::cerr << "wo-replay: cannot write " << json_file << "\n";
        return 2;
    }
    writeResultJson(out, mode, ok, raceFree, races, accesses, retired,
                    highWater);
    std::cout << "json written to " << json_file << "\n";
    return 0;
}

int
cmdGen(const std::vector<std::string> &args)
{
    TraceGenConfig cfg;
    std::string workload = "spinlock";
    std::string file;
    for (const std::string &arg : args) {
        if (arg.rfind("--workload=", 0) == 0)
            workload = arg.substr(11);
        else if (arg.rfind("--threads=", 0) == 0)
            cfg.threads = std::atoi(arg.c_str() + 10);
        else if (arg.rfind("--rounds=", 0) == 0)
            cfg.rounds = std::atoi(arg.c_str() + 9);
        else if (arg.rfind("--ops=", 0) == 0)
            cfg.opsPerRound = std::atoi(arg.c_str() + 6);
        else if (arg.rfind("--seed=", 0) == 0)
            cfg.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg == "--inject-race")
            cfg.injectRace = true;
        else if (!arg.empty() && arg[0] == '-')
            return usage(std::cerr);
        else if (file.empty())
            file = arg;
        else
            return usage(std::cerr);
    }
    if (file.empty() || cfg.threads <= 0 || cfg.rounds <= 0 ||
        cfg.opsPerRound <= 0)
        return usage(std::cerr);
    if (!writeWorkloadTrace(workload, file, cfg)) {
        std::cerr << "wo-replay: cannot generate '" << workload
                  << "' trace at " << file << "\n";
        return 2;
    }
    ReplayTraceReader reader;
    if (!reader.open(file)) {
        std::cerr << "wo-replay: generated trace unreadable?\n";
        return 2;
    }
    std::cout << workload << " trace: " << reader.numThreads()
              << " threads, " << reader.totalRecords() << " records -> "
              << file << "\n";
    return 0;
}

int
cmdInfo(const std::vector<std::string> &args)
{
    if (args.size() != 1 || args[0].empty() || args[0][0] == '-')
        return usage(std::cerr);
    ReplayTraceReader reader;
    if (!reader.open(args[0])) {
        std::cerr << "wo-replay: cannot read trace " << args[0] << "\n";
        return 2;
    }
    std::cout << args[0] << ": " << reader.numThreads() << " threads, "
              << reader.totalRecords() << " records, "
              << reader.initials().size() << " initial values\n";
    for (int t = 0; t < reader.numThreads(); ++t)
        std::cout << "  thread " << t << ": " << reader.remaining(t)
                  << " records\n";
    return 0;
}

int
cmdVerify(const std::vector<std::string> &args)
{
    ReplayOptions opt;
    std::string file;
    std::string json_file;
    bool json = false;
    for (const std::string &arg : args) {
        if (arg.rfind("--window=", 0) == 0)
            opt.window = std::atoi(arg.c_str() + 9);
        else if (arg == "--all-races")
            opt.mode = RaceDetectMode::AllRaces;
        else if (arg.rfind("--seed=", 0) == 0)
            opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg == "--json")
            json = true;
        else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_file = arg.substr(7);
        } else if (!arg.empty() && arg[0] == '-')
            return usage(std::cerr);
        else if (file.empty())
            file = arg;
        else
            return usage(std::cerr);
    }
    if (file.empty() || opt.window < 0)
        return usage(std::cerr);

    ReplayTraceReader reader;
    if (!reader.open(file)) {
        std::cerr << "wo-replay: cannot read trace " << file << "\n";
        return 2;
    }
    ReplayEngine engine(reader, opt);
    ReplayResult res = engine.run();
    if (!res.ok) {
        std::cerr << "wo-replay: " << res.error << "\n";
        return 1;
    }
    std::cout << file << ": " << res.accesses << " accesses, "
              << (res.raceFree ? "race-free under DRF0"
                               : "DATA RACES FOUND")
              << " (window high-water " << res.windowHighWater << ", "
              << res.eventsRetired << " retired)\n";
    printRaces(std::cout, res.races);
    if (json) {
        int rc = emitJson(json_file.empty() ? "-" : json_file, "verify",
                          res.ok, res.raceFree, res.races, res.accesses,
                          res.eventsRetired, res.windowHighWater);
        if (rc)
            return rc;
    }
    return res.raceFree ? 0 : 1;
}

int
cmdSim(const std::vector<std::string> &args)
{
    SystemReplayOptions opt;
    std::string file;
    std::string json_file;
    bool json = false;
    for (const std::string &arg : args) {
        if (arg.rfind("--machine=", 0) == 0)
            opt.machine = arg.substr(10);
        else if (arg.rfind("--policy=", 0) == 0) {
            if (!parsePolicy(arg.substr(9), opt.policy)) {
                std::cerr << "wo-replay: bad --policy '" << arg.substr(9)
                          << "'\n";
                return 2;
            }
        } else if (arg.rfind("--window=", 0) == 0)
            opt.window = std::atoi(arg.c_str() + 9);
        else if (arg.rfind("--chunk=", 0) == 0)
            opt.chunkTicks = std::atoll(arg.c_str() + 8);
        else if (arg == "--all-races")
            opt.mode = RaceDetectMode::AllRaces;
        else if (arg.rfind("--seed=", 0) == 0)
            opt.netSeed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg == "--json")
            json = true;
        else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_file = arg.substr(7);
        } else if (!arg.empty() && arg[0] == '-')
            return usage(std::cerr);
        else if (file.empty())
            file = arg;
        else
            return usage(std::cerr);
    }
    if (file.empty() || opt.window < 0 || opt.chunkTicks <= 0)
        return usage(std::cerr);

    ReplayTraceReader reader;
    if (!reader.open(file)) {
        std::cerr << "wo-replay: cannot read trace " << file << "\n";
        return 2;
    }
    SystemReplayResult res;
    try {
        res = replayOnSystem(reader, opt);
    } catch (const std::exception &e) {
        std::cerr << "wo-replay: " << e.what() << "\n";
        return 2;
    }
    if (!res.ok) {
        std::cerr << "wo-replay: " << res.error << "\n";
        return 1;
    }
    std::cout << file << " on " << opt.machine << ": " << res.accesses
              << " accesses in " << res.finishTick << " ticks, "
              << (res.raceFree ? "race-free under DRF0"
                               : "DATA RACES FOUND")
              << " (window high-water " << res.windowHighWater << ", "
              << res.eventsRetired << " retired)\n";
    printRaces(std::cout, res.races);
    if (json) {
        int rc = emitJson(json_file.empty() ? "-" : json_file, "sim",
                          res.ok, res.raceFree, res.races, res.accesses,
                          res.eventsRetired, res.windowHighWater);
        if (rc)
            return rc;
    }
    return res.raceFree ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr);
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "--help" || cmd == "-h") {
        usage(std::cout);
        return 0;
    }
    if (cmd == "gen")
        return cmdGen(args);
    if (cmd == "info")
        return cmdInfo(args);
    if (cmd == "verify")
        return cmdVerify(args);
    if (cmd == "sim")
        return cmdSim(args);
    std::cerr << "wo-replay: unknown command '" << cmd << "'\n";
    return usage(std::cerr);
}
