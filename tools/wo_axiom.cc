/**
 * @file
 * wo-axiom: query the axiomatic memory-model backend directly.
 *
 *   $ wo-axiom [options] <file-or-dir>...
 *
 * Compiles the named .litmus files and enumerates candidate executions
 * (src/axiom/), reporting each model's allowed final-state outcomes in
 * the same outcome-key format wo-litmus histograms use.
 *
 * Options:
 *   --model=LIST      comma list of models to evaluate (sc,wb,drf0sc)
 *                     [default: all registered models]
 *   --list-models     print the model registry and exit
 *   --enumerate       print every allowed outcome per model (default)
 *   --explain=KEY     explain one outcome, e.g. "P0:r0=0 P1:r0=0":
 *                     whether any candidate execution produces it, a
 *                     witness candidate (events, rf, co) when a model
 *                     allows it, and the rejecting relation cycle when
 *                     a model forbids it
 *   --drf0=auto|yes|no  the program-DRF0 fact "drf0sc" conditions on
 *                     [auto: sampled via the PR-3 detector]
 *   --stats           print enumeration work counters
 *   --json[=FILE]     machine-readable report (to FILE, else stdout)
 *
 * Exit status: 0 success, 2 bad usage or parse error.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "axiom/enumerate.hh"
#include "core/drf0_checker.hh"
#include "litmus/compiler.hh"
#include "litmus/expect.hh"
#include "litmus/runner.hh"

namespace {

using namespace wo;
using namespace wo::litmus_dsl;

int
usage(std::ostream &os)
{
    os << "usage: wo-axiom [--model=sc,wb,drf0sc] [--list-models]\n"
          "                [--enumerate] [--explain=KEY] "
          "[--drf0=auto|yes|no]\n"
          "                [--stats] [--json[=FILE]] <file-or-dir>...\n";
    return 2;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Outcome key of @p r with untouched clause locations filled from the
 * initial values — the same projection wo-litmus applies. */
std::string
projectKey(const CompiledLitmus &test,
           const std::vector<ObservedVar> &vars, const RunResult &r)
{
    RunResult filled = r;
    for (const auto &[loc, addr] : test.addrOf) {
        if (!filled.finalMemory.count(addr))
            filled.finalMemory[addr] = test.program.initialValue(addr);
    }
    return outcomeKey(vars, filled, test.addrOf);
}

void
dumpStats(std::ostream &os, const axiom::EnumStats &st)
{
    os << "   stats  : paths=" << st.pathsEmitted
       << " stutter-pruned=" << st.stutterPruned
       << " value-rounds=" << st.valueRounds << " combos=" << st.combos
       << " prefiltered=" << st.combosPrefiltered << "\n"
       << "            rf-choices=" << st.rfChoices
       << " co-placements=" << st.coPlacements
       << " coherence-pruned=" << st.coherencePruned
       << " considered=" << st.candidatesConsidered
       << " valid=" << st.candidates
       << " model-checks=" << st.modelChecks
       << " memo-hits=" << st.memoHits << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<const axiom::AxiomaticModel *> models =
        axiom::axiomModels();
    std::string explain_key;
    std::string drf0_mode = "auto";
    bool stats = false;
    bool json = false;
    std::string json_file;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--model=", 0) == 0) {
            models.clear();
            std::istringstream in(arg.substr(8));
            std::string item;
            while (std::getline(in, item, ',')) {
                const axiom::AxiomaticModel *m =
                    axiom::findAxiomModel(item);
                if (!m) {
                    std::cerr << "wo-axiom: unknown model '" << item
                              << "'\n";
                    return 2;
                }
                models.push_back(m);
            }
            if (models.empty())
                return usage(std::cerr);
        } else if (arg == "--list-models") {
            for (const axiom::AxiomaticModel *m : axiom::axiomModels()) {
                std::cout << m->name() << "\t" << m->summary() << "\n";
            }
            return 0;
        } else if (arg == "--enumerate") {
            // default action; accepted for symmetry
        } else if (arg.rfind("--explain=", 0) == 0) {
            explain_key = arg.substr(10);
            if (explain_key.empty()) {
                std::cerr << "wo-axiom: empty --explain key\n";
                return 2;
            }
        } else if (arg.rfind("--drf0=", 0) == 0) {
            drf0_mode = arg.substr(7);
            if (drf0_mode != "auto" && drf0_mode != "yes" &&
                drf0_mode != "no") {
                std::cerr << "wo-axiom: bad --drf0 value '" << drf0_mode
                          << "'\n";
                return 2;
            }
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_file = arg.substr(7);
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "wo-axiom: unknown option '" << arg << "'\n";
            return usage(std::cerr);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage(std::cerr);

    std::vector<CompiledLitmus> tests;
    try {
        for (const std::string &f : findLitmusFiles(paths))
            tests.push_back(compileLitmusFile(f));
    } catch (const std::exception &e) {
        std::cerr << "wo-axiom: " << e.what() << "\n";
        return 2;
    }
    if (tests.empty()) {
        std::cerr << "wo-axiom: no .litmus files found\n";
        return 2;
    }

    std::ostringstream js;
    js << "{\n  \"tests\": [\n";

    for (std::size_t t = 0; t < tests.size(); ++t) {
        const CompiledLitmus &test = tests[t];
        std::vector<ObservedVar> vars = observedVars(test.clause.cond);
        axiom::AddrNamer namer = axiom::namerFrom(test.addrOf);

        axiom::ModelContext ctx;
        if (drf0_mode == "auto") {
            ctx.programDrf0 =
                checkProgramSampled(test.program, 200, 1).obeysDrf0;
        } else {
            ctx.programDrf0 = drf0_mode == "yes";
        }

        axiom::AxiomLimits limits;
        axiom::AxiomResult res =
            axiom::enumerateAllowed(test.program, models, ctx, limits);

        std::cout << "== " << test.name << "  (" << test.file << ")\n";
        std::cout << "   clause : " << toString(test.clause) << "\n";
        std::cout << "   drf0   : " << (ctx.programDrf0 ? "yes" : "no")
                  << (drf0_mode == "auto" ? " (sampled)" : " (forced)")
                  << "\n";
        std::cout << "   axiom  : "
                  << (res.complete ? "complete" : "truncated") << "\n";
        js << "    {\"name\": \"" << jsonEscape(test.name)
           << "\", \"file\": \"" << jsonEscape(test.file)
           << "\", \"drf0\": " << (ctx.programDrf0 ? "true" : "false")
           << ", \"complete\": " << (res.complete ? "true" : "false")
           << ",\n     \"allowed\": {";

        bool first_model = true;
        for (const axiom::AxiomaticModel *m : models) {
            const std::set<RunResult> &set = res.allowed.at(m->name());
            std::set<std::string> keys;
            for (const RunResult &r : set)
                keys.insert(projectKey(test, vars, r));
            std::cout << "   " << m->name() << " allows " << keys.size()
                      << " outcome" << (keys.size() == 1 ? "" : "s")
                      << ":\n";
            for (const std::string &k : keys)
                std::cout << "     {" << k << "}\n";
            js << (first_model ? "" : ", ") << "\""
               << jsonEscape(m->name()) << "\": [";
            first_model = false;
            bool first_key = true;
            for (const std::string &k : keys) {
                js << (first_key ? "" : ", ") << "\"" << jsonEscape(k)
                   << "\"";
                first_key = false;
            }
            js << "]";
        }
        js << "}";

        if (stats)
            dumpStats(std::cout, res.stats);

        if (!explain_key.empty()) {
            axiom::Explanation ex = axiom::explainOutcome(
                test.program, models, ctx,
                [&](const RunResult &r) {
                    return projectKey(test, vars, r) == explain_key;
                },
                limits, namer);
            std::cout << "   explain {" << explain_key << "}:\n";
            js << ",\n     \"explain\": {\"outcome\": \""
               << jsonEscape(explain_key) << "\", \"matched\": "
               << (ex.matched ? "true" : "false") << ", \"models\": {";
            if (!ex.matched) {
                std::cout
                    << "     no candidate execution produces this "
                       "outcome"
                    << (ex.complete ? "" : " (enumeration truncated)")
                    << "\n";
            }
            for (std::size_t i = 0; i < ex.models.size(); ++i) {
                const axiom::ModelExplanation &me = ex.models[i];
                js << (i ? ", " : "") << "\"" << jsonEscape(me.model)
                   << "\": {\"allowed\": "
                   << (me.allowed ? "true" : "false") << ", \"cycle\": \""
                   << jsonEscape(me.cycle) << "\"}";
                if (!ex.matched)
                    continue;
                if (me.allowed) {
                    std::cout << "     " << me.model
                              << ": ALLOWED; witness execution:\n";
                    std::istringstream lines(me.witness.toString(namer));
                    std::string line;
                    while (std::getline(lines, line))
                        std::cout << "       " << line << "\n";
                } else {
                    std::cout << "     " << me.model << ": FORBIDDEN";
                    if (!me.cycle.empty())
                        std::cout << " by cycle:\n       " << me.cycle
                                  << "\n";
                    else
                        std::cout << "\n";
                }
            }
            js << "}}";
        }
        js << "}" << (t + 1 < tests.size() ? "," : "") << "\n";
        std::cout << "\n";
    }
    js << "  ]\n}\n";

    if (json) {
        if (json_file.empty()) {
            std::cout << js.str();
        } else {
            std::ofstream out(json_file);
            if (!out) {
                std::cerr << "wo-axiom: cannot write " << json_file
                          << "\n";
                return 2;
            }
            out << js.str();
            std::cout << "json report written to " << json_file << "\n";
        }
    }
    return 0;
}
