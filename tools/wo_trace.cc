/**
 * @file
 * wo-trace: replay one litmus test on one machine under one policy with
 * structured tracing enabled, and emit a timeline plus a latency /
 * stall-attribution report.
 *
 *   $ wo-trace [options] <test.litmus>
 *
 * Options:
 *   --machine=NAME       machine-registry entry to run on     [net]
 *   --policy=NAME        sc,def1,def2drf0,def2drf1,relaxed    [def2drf0]
 *   --seed=S             network-jitter seed                  [1]
 *   --out=FILE           Chrome-trace JSON output  [<test>.trace.json]
 *   --trace-filter=LIST  components to trace: proc,cache,dir,net,mem,
 *                        port,log or "all"                    [all]
 *   --text               also print the compact text timeline
 *
 * The JSON file loads in chrome://tracing or https://ui.perfetto.dev:
 * per-processor stall slices (named by reason), issue->globally-
 * performed spans per access, reserve-bit spans per cache line, and the
 * outstanding-access counter track.
 *
 * Exit status: 0 run completed, 1 run did not complete (tick-limit or
 * protocol stall — the trace is still written), 2 usage/parse errors.
 */

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "litmus/compiler.hh"
#include "litmus/expect.hh"
#include "obs/trace_export.hh"
#include "obs/trace_sink.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"

namespace {

using namespace wo;
using namespace wo::litmus_dsl;

int
usage(std::ostream &os)
{
    os << "usage: wo-trace [--machine=NAME] [--policy=NAME] [--seed=S]\n"
          "                [--out=FILE] [--trace-filter=LIST] [--text]\n"
          "                <test.litmus>\n";
    return 2;
}

bool
parsePolicy(const std::string &name, PolicyKind *out)
{
    if (name == "sc")
        *out = PolicyKind::Sc;
    else if (name == "def1")
        *out = PolicyKind::Def1;
    else if (name == "def2drf0")
        *out = PolicyKind::Def2Drf0;
    else if (name == "def2drf1")
        *out = PolicyKind::Def2Drf1;
    else if (name == "relaxed")
        *out = PolicyKind::Relaxed;
    else
        return false;
    return true;
}

/** "dekker.litmus" -> "dekker" (directories stripped). */
std::string
stemOf(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::size_t dot = base.find_last_of('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string machine = "net";
    PolicyKind policy = PolicyKind::Def2Drf0;
    std::uint64_t seed = 1;
    std::string out_file;
    std::uint32_t mask = kAllTraceComps;
    bool text = false;
    std::string test_file;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--machine=", 0) == 0) {
            machine = arg.substr(10);
        } else if (arg.rfind("--policy=", 0) == 0) {
            if (!parsePolicy(arg.substr(9), &policy)) {
                std::cerr << "wo-trace: unknown policy '" << arg.substr(9)
                          << "'\n";
                return 2;
            }
        } else if (arg.rfind("--seed=", 0) == 0) {
            seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else if (arg.rfind("--out=", 0) == 0) {
            out_file = arg.substr(6);
        } else if (arg.rfind("--trace-filter=", 0) == 0) {
            try {
                mask = parseTraceFilter(arg.substr(15));
            } catch (const std::exception &e) {
                std::cerr << "wo-trace: " << e.what() << "\n";
                return 2;
            }
        } else if (arg == "--text") {
            text = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "wo-trace: unknown option '" << arg << "'\n";
            return usage(std::cerr);
        } else if (test_file.empty()) {
            test_file = arg;
        } else {
            std::cerr << "wo-trace: exactly one test file expected\n";
            return usage(std::cerr);
        }
    }
    if (test_file.empty())
        return usage(std::cerr);
    if (out_file.empty())
        out_file = stemOf(test_file) + ".trace.json";

    CompiledLitmus test;
    SystemConfig cfg;
    try {
        test = compileLitmusFile(test_file);
        cfg = machineOrThrow(machine).config(policy, seed);
    } catch (const std::exception &e) {
        std::cerr << "wo-trace: " << e.what() << "\n";
        return 2;
    }

    TraceBuffer buf(mask);
    cfg.traceSink = &buf;

    bool finished = false;
    try {
        System sys(test.program, cfg);
        finished = sys.run();

        std::cout << "test    : " << test.name << "  (" << test.file
                  << ")\n";
        std::cout << "machine : " << machine << "   policy: "
                  << toString(policy) << "   seed: " << seed << "\n";
        std::cout << "clause  : " << toString(test.clause) << "\n";
        std::cout << "run     : "
                  << (finished ? "completed" : "DID NOT COMPLETE")
                  << " at tick " << sys.finishTick() << ", "
                  << buf.events().size() << " events recorded\n";

        if (finished) {
            RunResult r = sys.result();
            for (const auto &[loc, addr] : test.addrOf) {
                if (!r.finalMemory.count(addr))
                    r.finalMemory[addr] = test.program.initialValue(addr);
            }
            bool hit = evalCond(test.clause.cond, r, test.addrOf);
            std::cout << "clause condition "
                      << (hit ? "OBSERVED" : "not observed")
                      << " in this run\n";
        }

        // Stall attribution: per-reason cycles always sum to the total.
        std::cout << "\nstall attribution (cycles):\n";
        std::cout << "  " << std::left << std::setw(8) << "proc"
                  << std::right << std::setw(10) << "total";
        for (int r = 0; r < kNumStallReasons; ++r) {
            std::cout << std::setw(17)
                      << toString(static_cast<StallReason>(r));
        }
        std::cout << "\n";
        for (ProcId p = 0; p < test.program.numProcs(); ++p) {
            const Processor &proc = sys.processor(p);
            std::cout << "  " << std::left << std::setw(8)
                      << ("proc" + std::to_string(p)) << std::right
                      << std::setw(10) << proc.stallCycles();
            for (int r = 0; r < kNumStallReasons; ++r) {
                StallReason reason = static_cast<StallReason>(r);
                std::cout << std::setw(17) << proc.stallCyclesFor(reason);
            }
            std::cout << "\n";
        }

        std::cout << "\nissue -> globally-performed latency:\n";
        for (ProcId p = 0; p < test.program.numProcs(); ++p) {
            const LatencyHistogram &h = sys.processor(p).issueGpHistogram();
            std::cout << "  proc" << p << ":\n";
            h.render(std::cout, 4);
        }
        std::cout << "\nnetwork message latency:\n";
        sys.interconnect().msgLatencyHistogram().render(std::cout, 2);

        if (text) {
            std::cout << "\ntimeline:\n";
            renderTraceText(std::cout, buf.events());
        }
    } catch (const std::exception &e) {
        std::cerr << "wo-trace: " << e.what() << "\n";
        return 2;
    }

    std::ofstream out(out_file);
    if (!out) {
        std::cerr << "wo-trace: cannot write " << out_file << "\n";
        return 2;
    }
    writeChromeTrace(out, buf.events());
    std::cout << "\nchrome trace written to " << out_file
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
    return finished ? 0 : 1;
}
