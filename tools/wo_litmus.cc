/**
 * @file
 * wo-litmus: batch litmus-test runner over the text-format DSL.
 *
 *   $ wo-litmus [options] <file-or-dir>...
 *
 * Loads every .litmus file named (directories scanned for *.litmus),
 * compiles them, fans runs across seeds x consistency policies x system
 * variants on the parallel campaign engine, and prints a per-test
 * outcome histogram plus a PASS/FAIL table. Output is byte-identical
 * for any --threads value.
 *
 * Options:
 *   --seeds=N        seeds per (policy, machine) cell        [20]
 *   --threads=N      worker threads (or WO_THREADS)          [hardware]
 *   --seed=S         base of the deterministic seed stream   [1]
 *   --policies=a,b   subset of sc,def1,def2drf0,def2drf1,relaxed
 *   --machines=a,b   machine-registry subset to run on       [bus,net,net-u]
 *   --list-machines  print the machine registry and exit
 *   --json[=FILE]    write a JSON report (to FILE, else stdout)
 *   --no-verify      skip per-run SC verification
 *   --no-drf0-memo   re-run the sampled DRF0 check for every test
 *                    instead of memoizing verdicts by program content
 *                    (the memo never changes a verdict — this flag
 *                    exists for timing comparisons and debugging)
 *   --no-pool        construct a fresh System per run instead of
 *                    resetting a pooled per-worker instance (reports
 *                    are byte-identical either way — this flag exists
 *                    for timing comparisons and differential testing)
 *   --axiom-check    differential axiomatic stage (default): fail any
 *                    cell whose observed outcome the policy's bounding
 *                    axiomatic model forbids (witness cycle in the
 *                    failure message)
 *   --no-axiom-check skip the axiomatic stage
 *   --coverage-report[=FILE]
 *                    record coverage counters (protocol transitions,
 *                    stall reasons, latency buckets, outcome coverage
 *                    against the axiomatic allowed sets) and print the
 *                    per-policy observed vs allowed outcome coverage;
 *                    with =FILE, grow the standing wocover report at
 *                    FILE (read, merge this run, rewrite) — the
 *                    committed artifact wo-cover renders heatmaps,
 *                    lists gaps and diffs against
 *   --no-histograms  omit outcome histograms from the text report
 *   --list           parse + compile only; list tests and exit
 *   --trace=STEM     write one Chrome-trace JSON per run, named
 *                    STEM.<test>.<policy>.<machine>.s<seed>.json
 *                    (env fallback: WO_TRACE_FILE)
 *   --trace-filter=LIST  comma list of components to trace: proc,cache,
 *                    dir,net,mem,port,log or "all"
 *                    (env fallback: WO_TRACE_FILTER)
 *
 * Tracing never changes the text/JSON reports: each job records into a
 * private buffer and writes its own file, keeping the run byte-identical
 * to an untraced one for any --threads value.
 *
 * Exit status: 0 all tests pass, 1 failures, 2 bad usage or parse error.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "litmus/runner.hh"
#include "workload/campaign.hh"

namespace {

using namespace wo;
using namespace wo::litmus_dsl;

int
usage(std::ostream &os)
{
    os << "usage: wo-litmus [--seeds=N] [--threads=N] [--seed=S]\n"
          "                 [--policies=sc,def1,def2drf0,def2drf1,"
          "relaxed]\n"
          "                 [--machines=LIST] [--list-machines]\n"
          "                 [--json[=FILE]] [--no-verify] "
          "[--no-drf0-memo]\n"
          "                 [--no-pool] [--no-histograms] [--list]\n"
          "                 [--axiom-check] [--no-axiom-check]\n"
          "                 [--coverage-report[=FILE]]\n"
          "                 [--trace=STEM] [--trace-filter=LIST]\n"
          "                 <file-or-dir>...\n";
    return 2;
}

bool
parsePolicies(const std::string &list, std::vector<PolicyKind> &out)
{
    out.clear();
    std::istringstream in(list);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (item == "sc")
            out.push_back(PolicyKind::Sc);
        else if (item == "def1")
            out.push_back(PolicyKind::Def1);
        else if (item == "def2drf0")
            out.push_back(PolicyKind::Def2Drf0);
        else if (item == "def2drf1")
            out.push_back(PolicyKind::Def2Drf1);
        else if (item == "relaxed")
            out.push_back(PolicyKind::Relaxed);
        else
            return false;
    }
    return !out.empty();
}

} // namespace

int
main(int argc, char **argv)
{
    RunnerOptions options;
    options.threads = consumeThreadsFlag(argc, argv);
    options.baseSeed = consumeSeedFlag(argc, argv, 1);

    bool json = false;
    bool list_only = false;
    bool histograms = true;
    bool coverage = false;
    std::string json_file;
    std::string coverage_file;
    std::vector<std::string> paths;
    std::vector<const MachineSpec *> machines = defaultMachines();

    // Environment plumbing (flags override): lets campaign wrappers
    // enable tracing without threading new options through.
    if (const char *env = std::getenv("WO_TRACE_FILE"))
        options.tracePath = env;
    if (const char *env = std::getenv("WO_TRACE_FILTER")) {
        try {
            options.traceMask = parseTraceFilter(env);
        } catch (const std::exception &e) {
            std::cerr << "wo-litmus: WO_TRACE_FILTER: " << e.what()
                      << "\n";
            return 2;
        }
    }

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--seeds=", 0) == 0) {
            options.seeds = std::atoi(arg.c_str() + 8);
            if (options.seeds <= 0) {
                std::cerr << "wo-litmus: bad --seeds value\n";
                return 2;
            }
        } else if (arg.rfind("--policies=", 0) == 0) {
            if (!parsePolicies(arg.substr(11), options.policies)) {
                std::cerr << "wo-litmus: bad --policies list '"
                          << arg.substr(11) << "'\n";
                return 2;
            }
        } else if (arg.rfind("--machines=", 0) == 0) {
            try {
                machines = parseMachineList(arg.substr(11));
            } catch (const std::exception &e) {
                std::cerr << "wo-litmus: " << e.what() << "\n";
                return 2;
            }
        } else if (arg == "--list-machines") {
            printMachineList(std::cout);
            return 0;
        } else if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_file = arg.substr(7);
        } else if (arg == "--no-verify") {
            options.verify = false;
        } else if (arg == "--no-drf0-memo") {
            options.drf0Memo = false;
        } else if (arg == "--no-pool") {
            options.systemPool = false;
        } else if (arg == "--axiom-check") {
            options.axiomCheck = true;
        } else if (arg == "--no-axiom-check") {
            options.axiomCheck = false;
        } else if (arg == "--coverage-report") {
            coverage = true;
            options.coverage = true;
        } else if (arg.rfind("--coverage-report=", 0) == 0) {
            coverage = true;
            options.coverage = true;
            coverage_file = arg.substr(18);
            if (coverage_file.empty()) {
                std::cerr << "wo-litmus: empty --coverage-report file\n";
                return 2;
            }
        } else if (arg == "--no-histograms") {
            histograms = false;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            options.tracePath = arg.substr(8);
            if (options.tracePath.empty()) {
                std::cerr << "wo-litmus: empty --trace stem\n";
                return 2;
            }
        } else if (arg.rfind("--trace-filter=", 0) == 0) {
            try {
                options.traceMask = parseTraceFilter(arg.substr(15));
            } catch (const std::exception &e) {
                std::cerr << "wo-litmus: " << e.what() << "\n";
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "wo-litmus: unknown option '" << arg << "'\n";
            return usage(std::cerr);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage(std::cerr);

    std::vector<CompiledLitmus> tests;
    try {
        for (const std::string &f : findLitmusFiles(paths))
            tests.push_back(compileLitmusFile(f));
    } catch (const LitmusError &e) {
        std::cerr << "wo-litmus: " << e.what() << "\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "wo-litmus: " << e.what() << "\n";
        return 2;
    }
    if (tests.empty()) {
        std::cerr << "wo-litmus: no .litmus files found\n";
        return 2;
    }

    if (list_only) {
        for (const CompiledLitmus &t : tests) {
            std::cout << t.name << "  (" << t.file << "): "
                      << t.program.numProcs() << " procs, "
                      << toString(t.clause) << "\n";
        }
        return 0;
    }

    CorpusReport report = runCorpus(tests, options, machines);
    printReport(std::cout, report, histograms, coverage);

    if (json) {
        if (json_file.empty()) {
            writeJsonReport(std::cout, report);
        } else {
            std::ofstream out(json_file);
            if (!out) {
                std::cerr << "wo-litmus: cannot write " << json_file
                          << "\n";
                return 2;
            }
            writeJsonReport(out, report);
            std::cout << "json report written to " << json_file << "\n";
        }
    }
    if (!coverage_file.empty()) {
        // Grow the standing report: merge this run into whatever the
        // file already holds (an absent or empty file starts fresh; a
        // malformed one is an error, not something to overwrite).
        StandingCoverage st = standingCoverage(report);
        {
            std::ifstream in(coverage_file);
            if (in && in.peek() != std::ifstream::traits_type::eof()) {
                try {
                    StandingCoverage prev = StandingCoverage::read(in);
                    prev.mergeFrom(st);
                    st = std::move(prev);
                } catch (const std::exception &e) {
                    std::cerr << "wo-litmus: " << coverage_file << ": "
                              << e.what() << "\n";
                    return 2;
                }
            }
        }
        std::ofstream out(coverage_file);
        if (!out) {
            std::cerr << "wo-litmus: cannot write " << coverage_file
                      << "\n";
            return 2;
        }
        st.write(out);
        std::cout << "coverage report written to " << coverage_file
                  << "\n";
    }
    return report.pass ? 0 : 1;
}
