/**
 * @file
 * wo-cover: render and compare standing coverage reports (the wocover
 * files `wo-litmus --coverage-report=FILE` grows).
 *
 *   $ wo-cover heatmap REPORT        protocol-transition heatmaps
 *   $ wo-cover gaps REPORT           unhit legal transitions and
 *                                    allowed-but-unobserved outcomes
 *   $ wo-cover diff OLD NEW          coverage gained / lost between two
 *                                    standing reports
 *   $ wo-cover show REPORT           re-emit REPORT canonically
 *
 * The heatmap prints one table per protocol the report exercised: one
 * row per protocol state, one column per line event; cells show the
 * hit count, 0 for a legal-but-unhit transition and '-' for an illegal
 * (state, event) pair — so the 0 cells are the to-do list and the '-'
 * cells are noise-free.
 *
 * Exit status:
 *   heatmap/gaps/show: 0 on success, 2 on usage or parse errors.
 *   diff: 0 when NEW has no coverage regression against OLD, 1 when
 *   coverage was lost (a transition, stall reason or outcome covered in
 *   OLD is at zero or gone in NEW — latency-bucket losses are reported
 *   but do not gate), 2 on usage or parse errors.
 */

#include <exception>
#include <iostream>
#include <string>

#include "obs/coverage_report.hh"

namespace {

using namespace wo;

int
usage(std::ostream &os)
{
    os << "usage: wo-cover heatmap REPORT\n"
          "       wo-cover gaps REPORT\n"
          "       wo-cover diff OLD NEW\n"
          "       wo-cover show REPORT\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr);
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h") {
        usage(std::cout);
        return 0;
    }

    try {
        if (cmd == "heatmap" || cmd == "gaps" || cmd == "show") {
            if (argc != 3)
                return usage(std::cerr);
            StandingCoverage rep = StandingCoverage::readFile(argv[2]);
            if (cmd == "heatmap")
                renderHeatmap(std::cout, rep);
            else if (cmd == "gaps")
                renderGaps(std::cout, rep);
            else
                rep.write(std::cout);
            return 0;
        }
        if (cmd == "diff") {
            if (argc != 4)
                return usage(std::cerr);
            StandingCoverage oldRep = StandingCoverage::readFile(argv[2]);
            StandingCoverage newRep = StandingCoverage::readFile(argv[3]);
            CoverageDiff d = diffStanding(oldRep, newRep);
            renderDiff(std::cout, d);
            return d.hasRegressions() ? 1 : 0;
        }
    } catch (const std::exception &e) {
        std::cerr << "wo-cover: " << e.what() << "\n";
        return 2;
    }
    std::cerr << "wo-cover: unknown command '" << cmd << "'\n";
    return usage(std::cerr);
}
