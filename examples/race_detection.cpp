/**
 * @file
 * Race detection walkthrough: classify executions and programs against
 * DRF0 (Definition 3), including the paper's Figure 2 example and
 * counter-example, and a buggy program a user might actually write.
 *
 *   $ ./race_detection
 */

#include <iostream>

#include "core/drf0_checker.hh"
#include "core/trace_render.hh"
#include "cpu/program_builder.hh"
#include "workload/figures.hh"
#include "workload/litmus.hh"

int
main()
{
    using namespace wo;

    std::cout << "--- Figure 2(a): the DRF0-conformant execution ---\n";
    ExecutionTrace a = figure2aTrace();
    std::cout << renderColumns(a);
    Drf0TraceReport ra = checkTrace(a);
    std::cout << "verdict: " << ra.toString(a) << "\n\n";

    std::cout << "--- Figure 2(b): the counter-example ---\n";
    ExecutionTrace b = figure2bTrace();
    std::cout << renderColumns(b);
    Drf0TraceReport rb = checkTrace(b);
    std::cout << "verdict: " << rb.toString(b) << "\n";

    std::cout << "--- A buggy program: spinning on a data read ---\n";
    // The Section 6 example: a barrier-count spin written with a plain
    // load instead of a Test. It "works" on SC hardware but is not DRF0,
    // so weakly ordered hardware promises nothing.
    MultiProgram racy = racyMessagePassing(/*spin_bound=*/2);
    std::cout << racy.toString();
    Drf0ProgramReport rp = checkProgram(racy);
    std::cout << "obeys DRF0: " << (rp.obeysDrf0 ? "yes" : "no") << " ("
              << rp.executions << " idealized executions explored)\n";
    if (!rp.obeysDrf0) {
        std::cout << "witness execution:\n" << rp.witness.toString()
                  << "races: " << rp.witnessReport.toString(rp.witness)
                  << "\n";
    }

    std::cout << "--- The fix: synchronize with Test/Unset ---\n";
    MultiProgram fixed = syncMessagePassing();
    std::cout << fixed.toString();
    Drf0ProgramReport rf = checkProgramSampled(fixed, 500, /*seed=*/1);
    std::cout << "obeys DRF0 (sampled): " << (rf.obeysDrf0 ? "yes" : "no")
              << "\n";
    return rp.obeysDrf0 || !rf.obeysDrf0 ? 1 : 0;
}
