; Two processors increment a shared counter twice each inside a
; test-and-test&set lock. DRF0: the counter is exact (== 4) on every
; conforming implementation.
;
;   ./asm_runner workloads/spinlock.s drf1

init [0] = 0        ; the counter (ordinary data)
init [1] = 0        ; the lock (synchronization variable)

P0:
    movi r2, #0
round:
test_spin:
    test r0, [1]        ; read-only sync: spin locally
    bne r0, #0, test_spin
    tas r0, [1]         ; try to grab it
    bne r0, #0, test_spin
    load r1, [0]        ; critical section
    addi r1, r1, #1
    store [0], r1
    unset [1], #0       ; release
    addi r2, r2, #1
    bne r2, #2, round
    halt

P1:
    movi r2, #0
round:
test_spin:
    test r0, [1]
    bne r0, #0, test_spin
    tas r0, [1]
    bne r0, #0, test_spin
    load r1, [0]
    addi r1, r1, #1
    store [0], r1
    unset [1], #0
    addi r2, r2, #1
    bne r2, #2, round
    halt
