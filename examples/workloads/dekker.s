; The Figure 1 litmus (Dekker's entry protocol, reduced): under
; sequential consistency, r0 == 0 on BOTH processors is impossible.
; This program is racy, so weakly ordered machines promise nothing.
;
;   ./asm_runner workloads/dekker.s sc       # never both zero
;   ./asm_runner workloads/dekker.s relaxed  # can be both zero

P0:
    store [0], #1   ; X = 1
    load r0, [1]    ; r0 = Y

P1:
    store [1], #1   ; Y = 1
    load r0, [0]    ; r0 = X
