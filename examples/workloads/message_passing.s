; DRF0 message passing: the producer publishes a datum through a
; write-only synchronization (Unset); the consumer polls with a
; read-only synchronization (Test) and then reads the datum.
;
;   ./asm_runner workloads/message_passing.s drf0

init [0] = 0        ; the datum
init [2] = 0        ; the flag (synchronization variable)

P0:
    store [0], #42
    unset [2], #1

P1:
spin:
    test r0, [2]
    beq r0, #0, spin
    load r1, [0]    ; guaranteed to read 42 on conforming hardware
