/**
 * @file
 * Lock-throughput study: how the consistency implementation changes the
 * cost of synchronization-heavy code — the Section 6 discussion, live.
 *
 * N processors hammer a shared counter under a lock; we compare the four
 * conforming implementations (SC, old weak ordering, the DRF0 example
 * implementation, and its read-only-sync refinement) and both lock
 * flavours (pure TAS spin vs test-and-test&set).
 *
 *   $ ./lock_throughput [procs] [rounds]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/sc_verifier.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/litmus.hh"

int
main(int argc, char **argv)
{
    using namespace wo;
    int procs = argc > 1 ? std::atoi(argv[1]) : 4;
    int rounds = argc > 2 ? std::atoi(argv[2]) : 6;

    std::cout << procs << " processors x " << rounds
              << " lock-protected increments\n\n";
    std::cout << std::left << std::setw(20) << "workload" << std::setw(16)
              << "policy" << std::setw(14) << "finish ticks"
              << std::setw(10) << "counter" << "appears SC\n";

    for (bool tttas : {false, true}) {
        MultiProgram mp = tttas ? tttasLockCounter(procs, rounds)
                                : tasLockCounter(procs, rounds);
        for (PolicyKind pk :
             {PolicyKind::Sc, PolicyKind::Def1, PolicyKind::Def2Drf0,
              PolicyKind::Def2Drf1}) {
            SystemConfig cfg = machineOrThrow("net-cold").config(pk);
            cfg.maxTicks = 50000000;
            System sys(mp, cfg);
            if (!sys.run()) {
                std::cout << std::setw(20) << mp.name() << std::setw(16)
                          << toString(pk) << "DID NOT FINISH\n";
                continue;
            }
            RunResult r = sys.result();
            bool sc = verifySc(sys.trace()).sc();
            std::cout << std::setw(20) << mp.name() << std::setw(16)
                      << toString(pk) << std::setw(14) << sys.finishTick()
                      << std::setw(10)
                      << r.finalMemory.at(litmus::kCounter)
                      << (sc ? "yes" : "NO") << "\n";
        }
    }
    std::cout << "\nEvery row must show counter == " << procs * rounds
              << " and appear SC: mutual exclusion built\nfrom DRF0 "
                 "primitives is exact on every conforming "
                 "implementation.\n";
    return 0;
}
