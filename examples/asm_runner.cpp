/**
 * @file
 * Run an assembly workload file on a chosen machine and report the
 * result, the DRF0 classification, and the SC-appearance check.
 *
 *   $ ./asm_runner workload.s [policy] [bus|net] [seed]
 *
 * policy: sc | def1 | drf0 | drf1 | relaxed    (default drf0)
 *
 * With no file argument, runs a built-in demo workload.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/drf0_checker.hh"
#include "core/sc_verifier.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/asm.hh"

namespace {

const char *kDemo = R"(
; Built-in demo: producer/consumer through a sync flag.
init [0] = 0
P0:
    store [0], #42      ; the datum
    unset [2], #1       ; publish
P1:
spin:
    test r0, [2]        ; poll (read-only sync)
    beq r0, #0, spin
    load r1, [0]        ; guaranteed 42 on conforming hardware
)";

wo::PolicyKind
parsePolicy(const std::string &s)
{
    using wo::PolicyKind;
    if (s == "sc")
        return PolicyKind::Sc;
    if (s == "def1")
        return PolicyKind::Def1;
    if (s == "drf0")
        return PolicyKind::Def2Drf0;
    if (s == "drf1")
        return PolicyKind::Def2Drf1;
    if (s == "relaxed")
        return PolicyKind::Relaxed;
    throw std::invalid_argument("unknown policy: " + s);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wo;
    try {
        MultiProgram mp = argc > 1 ? assembleFile(argv[1])
                                   : assemble(kDemo, "demo");
        const MachineSpec &machine = machineOrThrow(
            (argc > 3 && std::string(argv[3]) == "bus") ? "bus"
                                                        : "net-cold");
        SystemConfig cfg = machine.config(
            argc > 2 ? parsePolicy(argv[2]) : PolicyKind::Def2Drf0,
            argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1);
        if (cfg.policy == PolicyKind::Relaxed)
            cfg.writeBuffer = true; // on either machine, as before

        std::cout << "workload:\n" << disassemble(mp) << "\n";

        Drf0ProgramReport drf0 = checkProgramSampled(mp, 200, 1);
        std::cout << "DRF0 (sampled): "
                  << (drf0.obeysDrf0 ? "race-free" : "HAS RACES") << "\n";
        if (!drf0.obeysDrf0) {
            std::cout << drf0.witnessReport.toString(drf0.witness)
                      << "\n";
        }

        System sys(mp, cfg);
        std::cout << "machine: " << sys.description() << "\n";
        if (!sys.run()) {
            std::cerr << "run did not complete (livelock or tick "
                         "limit)\n";
            return 1;
        }
        std::cout << "finished at tick " << sys.finishTick() << "\n";
        std::cout << "result: " << sys.result().toString() << "\n";
        ScReport sc = verifySc(sys.trace());
        std::cout << "execution " << sc.toString() << "\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
