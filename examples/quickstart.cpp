/**
 * @file
 * Quickstart: build a tiny data-race-free program, run it on the
 * weakly ordered (Definition 2 / DRF0) multiprocessor, and check the
 * contract — the execution must appear sequentially consistent.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "core/contract.hh"
#include "core/drf0_checker.hh"
#include "cpu/program_builder.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"

int
main()
{
    using namespace wo;

    // A producer/consumer pair synchronizing through a sync variable.
    // Data locations: 0 (the datum). Sync locations: 1 (the flag).
    const Addr kData = 0, kFlag = 1;

    ProgramBuilder producer;
    producer.store(kData, 42) // plain data write
        .unset(kFlag, 1)      // write-only synchronization: "publish"
        .halt();

    ProgramBuilder consumer;
    consumer.label("spin")
        .test(0, kFlag)      // read-only synchronization: "poll"
        .beq(0, 0, "spin")
        .load(1, kData)      // guaranteed to observe 42
        .halt();

    MultiProgram program("quickstart");
    program.addProgram(producer.build());
    program.addProgram(consumer.build());

    // 1. The software side of the contract: does the program obey DRF0?
    Drf0ProgramReport drf0 = checkProgramSampled(program, 200, /*seed=*/1);
    std::cout << "program obeys DRF0 (sampled over "
              << drf0.executions << " idealized executions): "
              << (drf0.obeysDrf0 ? "yes" : "NO") << "\n";

    // 2. Run it on weakly ordered hardware: a 2-processor cache-coherent
    //    system on a general interconnection network, using the paper's
    //    Section 5 implementation (counter + reserve bits).
    SystemConfig cfg =
        machineOrThrow("net-cold").config(PolicyKind::Def2Drf0);
    System sys(program, cfg);
    if (!sys.run()) {
        std::cerr << "simulation did not complete\n";
        return 1;
    }

    RunResult result = sys.result();
    std::cout << "consumer read: " << result.registers[1][1]
              << " (expected 42)\n";
    std::cout << "finished at tick " << sys.finishTick() << "\n";

    // 3. The hardware side of the contract: the execution appears
    //    sequentially consistent (Definition 2).
    ContractOptions opts;
    opts.checkOutcomeSet = true;
    ContractReport report =
        checkExecution(program, sys.trace(), &result, opts);
    std::cout << "contract check: " << report.toString() << "\n";

    return report.appearsSc && result.registers[1][1] == 42 ? 0 : 1;
}
