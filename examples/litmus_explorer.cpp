/**
 * @file
 * Litmus explorer: run the Figure 1 litmus (and friends) across every
 * hardware configuration and policy, showing exactly which combinations
 * of uniprocessor optimizations break sequential consistency — and that
 * the SC issue discipline never does.
 *
 *   $ ./litmus_explorer [seeds] [--threads=N]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/sc_verifier.hh"
#include "system/machine_spec.hh"
#include "system/system.hh"
#include "workload/campaign.hh"
#include "workload/litmus.hh"

namespace {

using namespace wo;

int g_threads = 0; // resolved in main() from --threads / WO_THREADS

struct Config
{
    std::string label;
    std::string machine; ///< machine-registry name
    bool cached;
};

int
violations(const MultiProgram &mp, const Config &c, PolicyKind pk,
           int seeds, bool (*bad)(const RunResult &))
{
    // Every seed is an independent campaign job; the count is merged
    // in seed order, so any --threads value prints identical numbers.
    Campaign campaign({g_threads, 1});
    return campaign.reduce<int, int>(
        seeds,
        [&](const CampaignJob &jb) {
            SystemConfig cfg =
                machineOrThrow(c.machine).config(pk, jb.index + 1);
            cfg.net.jitter = 8; // every config at the default jitter
            System sys(mp, cfg);
            if (!sys.run())
                return 0;
            return bad(sys.result()) ? 1 : 0;
        },
        0, [](int &acc, const int &one) { acc += one; });
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wo;
    g_threads = consumeThreadsFlag(argc, argv);
    int seeds = argc > 1 ? std::atoi(argv[1]) : 100;

    const Config configs[] = {
        {"bus/no-cache  +WB", "bus-u", false},
        {"net/no-cache     ", "net-u", false},
        {"bus/cache     +WB", "bus", true},
        {"net/cache  (warm)", "net", true},
    };

    std::cout << "Dekker litmus (" << seeds
              << " seeds): SC-forbidden both-zero outcomes\n\n";
    std::cout << std::left << std::setw(22) << "configuration"
              << std::setw(12) << "Relaxed" << std::setw(12) << "SC"
              << std::setw(14) << "WO-Def2-DRF0" << "\n";
    for (const Config &c : configs) {
        int relaxed = violations(dekkerLitmus(), c, PolicyKind::Relaxed,
                                 seeds, dekkerViolatesSc);
        int sc = violations(dekkerLitmus(), c, PolicyKind::Sc, seeds,
                            dekkerViolatesSc);
        std::cout << std::setw(22) << c.label << std::setw(12) << relaxed
                  << std::setw(12) << sc;
        if (c.cached) {
            int def2 = violations(dekkerLitmus(), c, PolicyKind::Def2Drf0,
                                  seeds, dekkerViolatesSc);
            std::cout << std::setw(14) << def2;
        } else {
            std::cout << std::setw(14) << "n/a";
        }
        std::cout << "\n";
    }
    std::cout << "\n(Dekker is racy, so even the DRF0 implementation "
                 "makes no promise about it —\n any zeros in the Def2 "
                 "column are contract-permitted.)\n";

    std::cout << "\nIRIW litmus (" << seeds
              << " seeds): opposite write orders observed\n\n";
    for (const Config &c : configs) {
        int relaxed = violations(iriwLitmus(), c, PolicyKind::Relaxed,
                                 seeds, iriwViolatesSc);
        int sc = violations(iriwLitmus(), c, PolicyKind::Sc, seeds,
                            iriwViolatesSc);
        std::cout << std::setw(22) << c.label << "Relaxed: " << std::setw(6)
                  << relaxed << "SC: " << sc << "\n";
    }
    return 0;
}
