/**
 * @file
 * Simulator-accurate trace replay: drive a full System (machine registry
 * x consistency policy) from a recorded trace instead of a hand-written
 * program.
 *
 * The recorded per-thread operation streams are compiled to per-processor
 * Programs (buildReplayProgram): data accesses become load/store,
 * recorded sync hand-offs become Test spin loops, lock episodes become
 * test-and-test&set acquires, and barrier episodes expand to a
 * lock-protected central counter plus a generation flag — all with
 * immediate operands resolved at build time, since a recorded trace fixes
 * every episode statically.
 *
 * replayOnSystem() then runs the program in tick-bounded chunks
 * (System::runStreaming); between chunks a StreamingDrf0Checker drains
 * the finalized prefix of the simulator's trace and the window is retired
 * with popFront(), so resident trace memory is O(window) while the
 * verdict matches the whole-trace oracle. Systems come from the calling
 * worker's SystemPool, so repeated replays cost a reset, not a rebuild.
 */

#ifndef WO_REPLAY_SYSTEM_REPLAY_HH
#define WO_REPLAY_SYSTEM_REPLAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/stream_checker.hh"
#include "cpu/program.hh"
#include "replay/trace_format.hh"
#include "system/system.hh"

namespace wo {

/**
 * Compile a recorded trace into per-processor Programs.
 *
 * Barrier episodes at address A use A as the generation flag, A+1 as the
 * arrival counter and A+2 as the counter lock; traces must keep those
 * locations free. Every thread with a BarrierWait at A must execute the
 * same number of episodes at A (bulk-synchronous traces — what the
 * generators produce).
 *
 * Reads the trace twice (barrier participant counts, then code
 * generation); the reader is rewound before and after.
 */
MultiProgram buildReplayProgram(ReplayTraceReader &reader,
                                const std::string &name);

struct SystemReplayOptions
{
    std::string machine = "bus";
    PolicyKind policy = PolicyKind::Def2Drf0;
    std::uint64_t netSeed = 1;

    /** Resident trace-window target in accesses; 0 retains the whole
     * trace (differential/debug mode, no popFront). */
    int window = 1 << 14;

    /** Simulated ticks between drain callbacks. */
    Tick chunkTicks = 4096;

    RaceDetectMode mode = RaceDetectMode::FirstRace;

    /** Acquire the System from the calling worker's SystemPool. */
    bool usePool = true;

    /** Livelock tick limit override; 0 keeps the machine default. */
    Tick maxTicks = 0;
};

struct SystemReplayResult
{
    bool ok = false; ///< run completed (halted, drained, coherent exit)
    std::string error;

    bool raceFree = true;
    bool hbCyclic = false;
    std::vector<Race> races; ///< sorted by id pair

    std::uint64_t accesses = 0; ///< accesses fed to the checker
    std::int64_t eventsRetired = 0;
    int windowHighWater = 0;
    Tick finishTick = 0;
};

SystemReplayResult replayOnSystem(ReplayTraceReader &reader,
                                  const SystemReplayOptions &opt);

} // namespace wo

#endif // WO_REPLAY_SYSTEM_REPLAY_HH
