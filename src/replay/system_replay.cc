#include "replay/system_replay.hh"

#include <map>
#include <stdexcept>

#include "cpu/program_builder.hh"
#include "system/machine_spec.hh"
#include "workload/campaign.hh"

namespace wo {

namespace {

/** Barrier episode layout relative to the recorded barrier address. */
constexpr Addr kGenOff = 0;   ///< generation flag (sync)
constexpr Addr kCountOff = 1; ///< arrival counter (lock-protected data)
constexpr Addr kLockOff = 2;  ///< counter lock (sync)

void
emitLockAcquire(ProgramBuilder &b, Addr lock, const std::string &label)
{
    // Test-and-test&set: spin read-only while held, then claim.
    b.label(label)
        .test(0, lock)
        .bne(0, 0, label)
        .tas(0, lock, 1)
        .bne(0, 0, label);
}

} // namespace

MultiProgram
buildReplayProgram(ReplayTraceReader &reader, const std::string &name)
{
    reader.rewind();
    const int nthreads = reader.numThreads();

    // Pass 1: participant count per barrier address (threads that meet
    // there), to resolve the "last arrival" compare immediates.
    std::map<Addr, int> participants;
    for (int t = 0; t < nthreads; ++t) {
        std::map<Addr, bool> seen;
        ReplayRecord r;
        while (reader.next(t, r)) {
            if (r.op == ReplayOp::BarrierWait && !seen[r.addr]) {
                seen[r.addr] = true;
                ++participants[r.addr];
            }
        }
    }
    reader.rewind();

    // Pass 2: code generation. Spin-loop labels are numbered per thread.
    MultiProgram mp(name);
    for (int t = 0; t < nthreads; ++t) {
        ProgramBuilder b;
        int lbl = 0;
        std::map<Addr, Word> episode; // completed episodes per barrier
        ReplayRecord r;
        while (reader.next(t, r)) {
            switch (r.op) {
            case ReplayOp::Read:
                b.load(0, r.addr);
                break;
            case ReplayOp::Write:
                b.store(r.addr, r.value);
                break;
            case ReplayOp::Rmw:
                b.tas(0, r.addr, r.value);
                break;
            case ReplayOp::SyncRead: {
                // Recorded hand-off: spin until the flag shows the
                // recorded value (re-synchronization, not spin replay).
                std::string w = "w" + std::to_string(lbl++);
                b.label(w).test(0, r.addr).bne(0, r.value, w);
                break;
            }
            case ReplayOp::SyncWrite:
                b.unset(r.addr, r.value);
                break;
            case ReplayOp::LockAcquire:
                emitLockAcquire(b, r.addr, "l" + std::to_string(lbl++));
                break;
            case ReplayOp::LockRelease:
                b.unset(r.addr, 0);
                break;
            case ReplayOp::BarrierWait: {
                const Word gen = ++episode[r.addr];
                const int count = participants[r.addr];
                const Addr genA = r.addr + kGenOff;
                const Addr cntA = r.addr + kCountOff;
                const Addr lockA = r.addr + kLockOff;
                std::string pre = "b" + std::to_string(lbl++);
                emitLockAcquire(b, lockA, pre + "a");
                b.load(1, cntA)
                    .addi(1, 1, 1)
                    .storeReg(cntA, 1)
                    .bne(1, static_cast<Word>(count), pre + "w");
                // Last arrival: reset the counter and publish the
                // generation while still holding the lock.
                b.store(cntA, 0)
                    .unset(genA, gen)
                    .unset(lockA, 0)
                    .movi(1, 0)
                    .beq(1, 0, pre + "d");
                // Everyone else: release, then wait for the episode.
                b.label(pre + "w").unset(lockA, 0);
                b.label(pre + "s").test(0, genA).bne(0, gen, pre + "s");
                b.label(pre + "d");
                break;
            }
            }
        }
        b.halt();
        mp.addProgram(b.build());
    }
    for (const auto &[addr, value] : reader.initials())
        mp.setInitial(addr, value);
    reader.rewind();
    return mp;
}

SystemReplayResult
replayOnSystem(ReplayTraceReader &reader, const SystemReplayOptions &opt)
{
    SystemReplayResult res;
    MultiProgram program = buildReplayProgram(reader, "replay");

    const MachineSpec &spec = machineOrThrow(opt.machine);
    SystemConfig cfg = spec.config(opt.policy, opt.netSeed);
    if (opt.maxTicks > 0)
        cfg.maxTicks = opt.maxTicks;

    StreamingDrf0Checker checker(program.numProcs(), opt.mode);
    auto drain = [&](System &sys) {
        checker.drainWindow(sys.trace(), sys.eventQueue().now());
        if (opt.window > 0) {
            ExecutionTrace &tr = sys.mutableTrace();
            int excess = tr.resident() - opt.window;
            if (excess > 0)
                tr.popFront(std::min(checker.retireReady(tr), excess));
        }
    };

    auto finish = [&](System &sys, bool completed) {
        checker.finish(sys.trace());
        res.ok = completed;
        if (!completed)
            res.error = "replay run did not complete (tick limit?)";
        res.raceFree = checker.raceFree();
        res.hbCyclic = checker.hbCyclic();
        res.races = checker.sortedRaces();
        res.accesses = checker.consumed();
        res.eventsRetired = sys.trace().retired();
        res.windowHighWater = sys.trace().windowHighWater();
        res.finishTick = sys.finishTick();
    };

    if (opt.usePool) {
        std::string key = "replay/" + opt.machine + "/" +
                          std::to_string(static_cast<int>(opt.policy));
        System &sys = workerSystemPool().acquire(key, program, cfg);
        bool completed = sys.runStreaming(opt.chunkTicks, drain);
        finish(sys, completed);
    } else {
        System sys(program, cfg);
        bool completed = sys.runStreaming(opt.chunkTicks, drain);
        finish(sys, completed);
    }
    return res;
}

} // namespace wo
