#include "replay/trace_gen.hh"

#include "sim/rng.hh"

namespace wo {

namespace {

// Address map shared by the generators. Every generator reuses a bounded
// set of locations (ring-buffered where a workload logically streams), so
// detector and trace state stay O(1) in trace length.
constexpr Addr kLockAddr = 1000;
constexpr Addr kBarrierAddr = 1001;
constexpr Addr kRaceAddr = 1999;
constexpr Addr kSharedBase = 2000;  ///< spinlock-protected counters
constexpr Addr kCellBase = 3000;    ///< barrier round cells
constexpr Addr kRingBase = 4000;    ///< producer-consumer rings
constexpr Addr kPrivateBase = 8000; ///< per-thread private scratch
constexpr int kCells = 64;          ///< ring depth / cell-reuse window
constexpr Addr kPairStride = 3 * kCells; ///< cells + flags + acks per pair

void
appendRaceWrite(ReplayTraceWriter &w)
{
    // A plain write as a thread's final record: no program-order
    // successor can reach a synchronization operation, so two of these on
    // different threads are unordered under every schedule.
    w.append({ReplayOp::Write, kRaceAddr, 1});
}

} // namespace

bool
writeSpinlockTrace(const std::string &path, const TraceGenConfig &cfg)
{
    ReplayTraceWriter w(path, cfg.threads);
    for (int t = 0; t < cfg.threads; ++t) {
        w.beginThread(t);
        Rng rng(cfg.seed * 1000003 + static_cast<std::uint64_t>(t));
        for (int r = 0; r < cfg.rounds; ++r) {
            w.append({ReplayOp::LockAcquire, kLockAddr, 0});
            for (int k = 0; k < cfg.opsPerRound; ++k) {
                Addr a = kSharedBase + static_cast<Addr>(rng.below(kCells));
                if (rng.below(2) == 0)
                    w.append({ReplayOp::Read, a, 0});
                else
                    w.append({ReplayOp::Write, a, rng.below(1 << 20)});
            }
            w.append({ReplayOp::LockRelease, kLockAddr, 0});
        }
        if (cfg.injectRace && t < 2)
            appendRaceWrite(w);
    }
    return w.close();
}

bool
writeBarrierTrace(const std::string &path, const TraceGenConfig &cfg)
{
    ReplayTraceWriter w(path, cfg.threads);
    for (int t = 0; t < cfg.threads; ++t) {
        w.beginThread(t);
        for (int r = 0; r < cfg.rounds; ++r) {
            Addr cell = kCellBase + static_cast<Addr>(r % kCells);
            if (t == 0) {
                // Publisher: fill this round's cells before the meet.
                for (int k = 0; k < cfg.opsPerRound; ++k) {
                    Addr a = kCellBase +
                             static_cast<Addr>((r + k) % kCells);
                    w.append({ReplayOp::Write, a,
                              static_cast<Word>(r * 31 + k)});
                }
            }
            w.append({ReplayOp::BarrierWait, kBarrierAddr, 0});
            for (int k = 0; k < cfg.opsPerRound; ++k) {
                Addr a = kCellBase + static_cast<Addr>((r + k) % kCells);
                w.append({ReplayOp::Read, a, 0});
            }
            (void)cell;
            // Second meet so the next round's publisher writes cannot
            // race with this round's readers.
            w.append({ReplayOp::BarrierWait, kBarrierAddr, 0});
        }
        if (cfg.injectRace && t < 2)
            appendRaceWrite(w);
    }
    return w.close();
}

bool
writeProducerConsumerTrace(const std::string &path, const TraceGenConfig &cfg)
{
    ReplayTraceWriter w(path, cfg.threads);
    const int pairs = cfg.threads / 2;
    for (int t = 0; t < cfg.threads; ++t) {
        w.beginThread(t);
        const int pair = t / 2;
        const bool producer = (t % 2) == 0;
        if (pair >= pairs) {
            // Odd thread count: the spare thread does private work only.
            Addr a = kPrivateBase + static_cast<Addr>(t);
            for (int r = 0; r < cfg.rounds; ++r)
                w.append({ReplayOp::Write, a, static_cast<Word>(r)});
            continue;
        }
        const Addr cells =
            kRingBase + static_cast<Addr>(pair) * kPairStride;
        const Addr flags = cells + kCells;
        const Addr acks = flags + kCells;
        for (int i = 0; i < cfg.rounds; ++i) {
            const Addr slot = static_cast<Addr>(i % kCells);
            const Word gen = static_cast<Word>(i / kCells) + 1;
            if (producer) {
                // Back-pressure: wait for the consumer's ack of the
                // previous generation before reusing the slot.
                if (gen > 1)
                    w.append({ReplayOp::SyncRead, acks + slot, gen - 1});
                for (int k = 0; k < cfg.opsPerRound; ++k)
                    w.append({ReplayOp::Write, cells + slot,
                              static_cast<Word>(i * 7 + k)});
                w.append({ReplayOp::SyncWrite, flags + slot, gen});
            } else {
                w.append({ReplayOp::SyncRead, flags + slot, gen});
                for (int k = 0; k < cfg.opsPerRound; ++k)
                    w.append({ReplayOp::Read, cells + slot, 0});
                w.append({ReplayOp::SyncWrite, acks + slot, gen});
            }
        }
        if (cfg.injectRace && t < 2)
            appendRaceWrite(w);
    }
    return w.close();
}

bool
writeWorkloadTrace(const std::string &workload, const std::string &path,
                   const TraceGenConfig &cfg)
{
    if (workload == "spinlock")
        return writeSpinlockTrace(path, cfg);
    if (workload == "barrier")
        return writeBarrierTrace(path, cfg);
    if (workload == "prodcons")
        return writeProducerConsumerTrace(path, cfg);
    return false;
}

} // namespace wo
