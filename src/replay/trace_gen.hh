/**
 * @file
 * Deterministic generators for recorded lock/barrier workload traces at
 * configurable scale — the replay pipeline's test and bench inputs.
 *
 * Each generator writes through the streaming ReplayTraceWriter, so
 * producing a 10M-record trace costs O(buffer) memory. All generators are
 * race-free by construction (every shared data access is protected by a
 * lock, a barrier episode, or a flag hand-off); `injectRace` plants one
 * unprotected conflicting write pair for negative testing.
 */

#ifndef WO_REPLAY_TRACE_GEN_HH
#define WO_REPLAY_TRACE_GEN_HH

#include <cstdint>
#include <string>

#include "replay/trace_format.hh"

namespace wo {

struct TraceGenConfig
{
    int threads = 4;

    /** Spinlock/barrier: rounds per thread. Producer-consumer: items per
     * producer. */
    int rounds = 100;

    /** Data accesses inside each critical section / barrier phase. */
    int opsPerRound = 4;

    std::uint64_t seed = 1;

    /** Plant one unsynchronized conflicting write pair. */
    bool injectRace = false;
};

/** threads x rounds of lock-protected critical sections over a shared
 * counter array. */
bool writeSpinlockTrace(const std::string &path, const TraceGenConfig &cfg);

/** Bulk-synchronous rounds: thread 0 publishes a per-round cell, everyone
 * meets at a barrier, all threads read it, second barrier, repeat. */
bool writeBarrierTrace(const std::string &path, const TraceGenConfig &cfg);

/** Flag hand-off pipeline: producer threads write item cells then raise a
 * per-item flag; consumer threads wait on the flag and read the cells. */
bool writeProducerConsumerTrace(const std::string &path,
                                const TraceGenConfig &cfg);

/** Dispatch by name: "spinlock", "barrier", "prodcons". */
bool writeWorkloadTrace(const std::string &workload, const std::string &path,
                        const TraceGenConfig &cfg);

} // namespace wo

#endif // WO_REPLAY_TRACE_GEN_HH
