/**
 * @file
 * Logical trace-replay engine with streaming DRF0 verification.
 *
 * Replays a recorded multithreaded trace under a seeded random
 * interleaving, re-synchronizing at locks, barriers and flag waits (the
 * FlexiCAS replayer discipline: recorded spin iterations are not replayed
 * verbatim — the synchronization operation re-executes against the
 * replayed memory state). Every executed operation becomes an Access in a
 * windowed ExecutionTrace and is fed online to a StreamingDrf0Checker;
 * the consumed prefix is retired with popFront(), so resident memory is
 * O(window + threads) at any trace length. Execution order is a linear
 * extension of (po U so) by construction — each access is appended at
 * the moment it logically performs — so the checker's fast path applies.
 *
 * This is the scale backend (millions of accesses per second). The
 * simulator-accurate backend that drives a full System from the same
 * trace lives in replay/system_replay.hh.
 */

#ifndef WO_REPLAY_REPLAY_ENGINE_HH
#define WO_REPLAY_REPLAY_ENGINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stream_checker.hh"
#include "core/trace.hh"
#include "replay/trace_format.hh"
#include "sim/stats.hh"

namespace wo {

struct ReplayOptions
{
    /** Resident-window target in accesses; 0 retains the whole trace
     * (differential/debug mode). Retirement is batched, so the actual
     * high-water mark is bounded by ~1.5x this value. */
    int window = 1 << 16;

    /** FirstRace: O(addrs) detector state, the scale mode. AllRaces:
     * oracle-identical race sets for differential testing. */
    RaceDetectMode mode = RaceDetectMode::FirstRace;

    /** Interleaving seed. */
    std::uint64_t seed = 1;

    /** Abandon replay at the first race (online verdict). */
    bool stopAtFirstRace = false;
};

struct ReplayResult
{
    /** False on malformed traces or deadlock (a blocked record whose
     * condition can never become true). */
    bool ok = true;
    std::string error;

    bool raceFree = true;
    std::vector<Race> races; ///< sorted by id pair

    std::uint64_t recordsReplayed = 0;
    std::uint64_t accesses = 0; ///< trace accesses fed to the checker
    std::int64_t eventsRetired = 0;
    int windowHighWater = 0;

    /** Final replayed memory over touched addresses. */
    std::map<Addr, Word> finalMemory;
};

class ReplayEngine
{
  public:
    ReplayEngine(ReplayTraceReader &reader, const ReplayOptions &opt);

    /** Replay the whole trace (reader must be at its start). */
    ReplayResult run();

    /** The trace window (complete trace when options.window == 0). */
    const ExecutionTrace &trace() const { return trace_; }

    const StreamingDrf0Checker &checker() const { return checker_; }

  private:
    struct Barrier
    {
        Word gen = 0;
        int arrived = 0;
    };

    struct ThreadState
    {
        bool done = false;
        bool inBarrier = false; ///< arrived, waiting for the episode open
        Word barrierGen = 0;    ///< episode generation at arrival
        int poIndex = 0;
    };

    /** Attempt one record of thread @p t; false if it is blocked. */
    bool tryStep(int t);
    void emit(int t, AccessKind kind, Addr addr, Word valueRead,
              Word valueWritten);
    Word load(Addr a) const;
    void maybeRetire();
    /** Open every barrier whose arrival count covers all live threads. */
    bool openReadyBarriers();

    ReplayTraceReader &reader_;
    ReplayOptions opt_;
    ExecutionTrace trace_;
    StreamingDrf0Checker checker_;
    std::unordered_map<Addr, Word> mem_;
    std::unordered_map<Addr, Barrier> barriers_;
    std::vector<ThreadState> threads_;
    int liveThreads_ = 0;
    Tick tick_ = 0;
    std::uint64_t records_ = 0;
};

/** Export bounded-retention observability counters into @p stats:
 * `<prefix>.trace_events_retired` (sum) and `<prefix>.window_high_water`
 * (max). */
void exportReplayStats(StatSet &stats, const std::string &prefix,
                       std::int64_t eventsRetired, int windowHighWater);

} // namespace wo

#endif // WO_REPLAY_REPLAY_ENGINE_HH
