/**
 * @file
 * Compact on-disk format for recorded multithreaded access/sync traces.
 *
 * A trace is the per-thread sequence of memory operations of one
 * multithreaded program run, with the synchronization structure (locks,
 * barriers, flag waits) preserved as explicit records — the FlexiCAS
 * replayer shape: replay re-synchronizes at locks and barriers instead of
 * re-executing recorded spin iterations verbatim.
 *
 * Layout (all integers little-endian):
 *
 *   magic     8  bytes  "WOTRACE1"
 *   nthreads  u32
 *   ninitial  u32
 *   initials  ninitial x { addr u32, value u64 }
 *   table     nthreads x { offset u64, count u64 }
 *   records   per-thread arrays of { op u8, addr u32, value u64 }
 *
 * The per-thread table makes streaming replay possible: a reader keeps
 * one small refill buffer per thread and never loads the file into
 * memory, so replaying an N-record trace costs O(threads * buffer), not
 * O(N).
 */

#ifndef WO_REPLAY_TRACE_FORMAT_HH
#define WO_REPLAY_TRACE_FORMAT_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace wo {

/** One recorded per-thread operation. */
enum class ReplayOp : std::uint8_t {
    Read = 0,        ///< data read
    Write = 1,       ///< data write of `value`
    Rmw = 2,         ///< sync read-modify-write, writes `value`
    SyncRead = 3,    ///< sync read; replay waits until mem[addr]==value
    SyncWrite = 4,   ///< sync write of `value`
    LockAcquire = 5, ///< spin-acquire of the lock at `addr`
    LockRelease = 6, ///< release of the lock at `addr`
    BarrierWait = 7, ///< barrier episode at `addr` (all threads)
};

const char *toString(ReplayOp op);

struct ReplayRecord
{
    ReplayOp op = ReplayOp::Read;
    Addr addr = 0;
    Word value = 0;

    bool operator==(const ReplayRecord &o) const
    {
        return op == o.op && addr == o.addr && value == o.value;
    }
};

/** Whole trace in memory — tests, the obs capture hook, and small-trace
 * tools. Large traces should go through the streaming reader/writer. */
struct ReplayTraceData
{
    std::vector<std::pair<Addr, Word>> initials;
    std::vector<std::vector<ReplayRecord>> threads;

    int numThreads() const { return static_cast<int>(threads.size()); }
    std::uint64_t totalRecords() const;
};

bool saveReplayTrace(const ReplayTraceData &data, const std::string &path);
bool loadReplayTrace(const std::string &path, ReplayTraceData &out);

/**
 * Streaming writer. Threads must be written in ascending order:
 *
 *   ReplayTraceWriter w(path, nthreads);
 *   w.setInitial(addr, v);            // before the first beginThread
 *   for t in 0..nthreads-1:
 *     w.beginThread(t);
 *     w.append({...}); ...
 *   ok = w.close();
 *
 * Records are buffered and flushed in blocks; the per-thread offset
 * table is patched on close().
 */
class ReplayTraceWriter
{
  public:
    ReplayTraceWriter(const std::string &path, int numThreads);

    void setInitial(Addr addr, Word value);
    void beginThread(int tid);
    void append(const ReplayRecord &r);

    /** Flush, patch the thread table, and return stream health. */
    bool close();

  private:
    void writeHeader();
    void flushBuffer();

    std::ofstream out_;
    int nthreads_;
    int cur_ = -1;
    bool header_written_ = false;
    std::vector<std::pair<Addr, Word>> initials_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> table_;
    std::vector<ReplayRecord> buf_;
    std::uint64_t pos_ = 0; ///< current file write position
};

/**
 * Streaming reader: one pull cursor per thread, each backed by a bounded
 * refill buffer, so resident memory is O(threads * buffer) regardless of
 * trace length.
 */
class ReplayTraceReader
{
  public:
    /** Records buffered per thread between refills. */
    static constexpr std::size_t kBufRecords = 4096;

    bool open(const std::string &path);

    int numThreads() const { return static_cast<int>(cursors_.size()); }
    const std::vector<std::pair<Addr, Word>> &initials() const
    {
        return initials_;
    }

    /** Total records in the trace (all threads). */
    std::uint64_t totalRecords() const { return total_; }

    /** Records of @p tid not yet consumed. */
    std::uint64_t remaining(int tid) const;

    /** Pull the next record of @p tid; false when the thread's stream is
     * exhausted. */
    bool next(int tid, ReplayRecord &out);

    /** Peek without consuming; false when exhausted. */
    bool peek(int tid, ReplayRecord &out);

    /** Restart every thread cursor at its first record. */
    void rewind();

  private:
    struct Cursor
    {
        std::uint64_t base = 0;  ///< file offset of the thread's records
        std::uint64_t count = 0; ///< total records of this thread
        std::uint64_t taken = 0; ///< records consumed so far
        std::vector<ReplayRecord> buf;
        std::size_t bufPos = 0;
        std::uint64_t bufStart = 0; ///< index of buf[0] within the thread
    };

    bool refill(Cursor &c);

    std::ifstream in_;
    std::vector<std::pair<Addr, Word>> initials_;
    std::vector<Cursor> cursors_;
    std::uint64_t total_ = 0;
};

} // namespace wo

#endif // WO_REPLAY_TRACE_FORMAT_HH
