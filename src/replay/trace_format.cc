#include "replay/trace_format.hh"

#include <cassert>
#include <cstring>

namespace wo {

namespace {

constexpr char kMagic[8] = {'W', 'O', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::size_t kRecordBytes = 1 + 4 + 8;

void
putU32(std::string &s, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &s, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
encodeRecord(std::string &s, const ReplayRecord &r)
{
    s.push_back(static_cast<char>(r.op));
    putU32(s, r.addr);
    putU64(s, r.value);
}

ReplayRecord
decodeRecord(const unsigned char *p)
{
    ReplayRecord r;
    r.op = static_cast<ReplayOp>(p[0]);
    r.addr = getU32(p + 1);
    r.value = getU64(p + 5);
    return r;
}

} // namespace

const char *
toString(ReplayOp op)
{
    switch (op) {
    case ReplayOp::Read:
        return "read";
    case ReplayOp::Write:
        return "write";
    case ReplayOp::Rmw:
        return "rmw";
    case ReplayOp::SyncRead:
        return "sync-read";
    case ReplayOp::SyncWrite:
        return "sync-write";
    case ReplayOp::LockAcquire:
        return "lock-acquire";
    case ReplayOp::LockRelease:
        return "lock-release";
    case ReplayOp::BarrierWait:
        return "barrier-wait";
    }
    return "?";
}

std::uint64_t
ReplayTraceData::totalRecords() const
{
    std::uint64_t n = 0;
    for (const auto &t : threads)
        n += t.size();
    return n;
}

// ---------------------------------------------------------------------------
// Writer

ReplayTraceWriter::ReplayTraceWriter(const std::string &path, int numThreads)
    : out_(path, std::ios::binary | std::ios::trunc), nthreads_(numThreads)
{
    table_.assign(static_cast<std::size_t>(numThreads), {0, 0});
}

void
ReplayTraceWriter::setInitial(Addr addr, Word value)
{
    assert(!header_written_);
    initials_.emplace_back(addr, value);
}

void
ReplayTraceWriter::writeHeader()
{
    std::string h;
    h.append(kMagic, sizeof(kMagic));
    putU32(h, static_cast<std::uint32_t>(nthreads_));
    putU32(h, static_cast<std::uint32_t>(initials_.size()));
    for (const auto &[addr, value] : initials_) {
        putU32(h, addr);
        putU64(h, value);
    }
    // Thread table placeholder, patched in close().
    for (int t = 0; t < nthreads_; ++t) {
        putU64(h, 0);
        putU64(h, 0);
    }
    out_.write(h.data(), static_cast<std::streamsize>(h.size()));
    pos_ = h.size();
    header_written_ = true;
}

void
ReplayTraceWriter::beginThread(int tid)
{
    assert(tid == cur_ + 1 && tid < nthreads_);
    if (!header_written_)
        writeHeader();
    flushBuffer();
    cur_ = tid;
    table_[static_cast<std::size_t>(tid)] = {pos_, 0};
}

void
ReplayTraceWriter::append(const ReplayRecord &r)
{
    assert(cur_ >= 0);
    buf_.push_back(r);
    ++table_[static_cast<std::size_t>(cur_)].second;
    if (buf_.size() >= 8192)
        flushBuffer();
}

void
ReplayTraceWriter::flushBuffer()
{
    if (buf_.empty())
        return;
    std::string block;
    block.reserve(buf_.size() * kRecordBytes);
    for (const ReplayRecord &r : buf_)
        encodeRecord(block, r);
    out_.write(block.data(), static_cast<std::streamsize>(block.size()));
    pos_ += block.size();
    buf_.clear();
}

bool
ReplayTraceWriter::close()
{
    if (!header_written_)
        writeHeader();
    flushBuffer();
    // Patch the thread table, which sits right after the initials.
    std::string t;
    for (const auto &[off, count] : table_) {
        putU64(t, off);
        putU64(t, count);
    }
    std::uint64_t tableOff =
        sizeof(kMagic) + 4 + 4 + initials_.size() * (4 + 8);
    out_.seekp(static_cast<std::streamoff>(tableOff));
    out_.write(t.data(), static_cast<std::streamsize>(t.size()));
    out_.flush();
    return static_cast<bool>(out_);
}

// ---------------------------------------------------------------------------
// In-memory save/load

bool
saveReplayTrace(const ReplayTraceData &data, const std::string &path)
{
    ReplayTraceWriter w(path, data.numThreads());
    for (const auto &[addr, value] : data.initials)
        w.setInitial(addr, value);
    for (int t = 0; t < data.numThreads(); ++t) {
        w.beginThread(t);
        for (const ReplayRecord &r : data.threads[static_cast<std::size_t>(t)])
            w.append(r);
    }
    return w.close();
}

bool
loadReplayTrace(const std::string &path, ReplayTraceData &out)
{
    ReplayTraceReader r;
    if (!r.open(path))
        return false;
    out.initials = r.initials();
    out.threads.assign(static_cast<std::size_t>(r.numThreads()), {});
    for (int t = 0; t < r.numThreads(); ++t) {
        auto &vec = out.threads[static_cast<std::size_t>(t)];
        vec.reserve(static_cast<std::size_t>(r.remaining(t)));
        ReplayRecord rec;
        while (r.next(t, rec))
            vec.push_back(rec);
    }
    return true;
}

// ---------------------------------------------------------------------------
// Streaming reader

bool
ReplayTraceReader::open(const std::string &path)
{
    in_.open(path, std::ios::binary);
    if (!in_)
        return false;
    char magic[8];
    in_.read(magic, sizeof(magic));
    if (!in_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return false;
    unsigned char hdr[8];
    in_.read(reinterpret_cast<char *>(hdr), 8);
    if (!in_)
        return false;
    std::uint32_t nthreads = getU32(hdr);
    std::uint32_t ninitial = getU32(hdr + 4);
    if (nthreads == 0 || nthreads > 4096)
        return false;
    initials_.clear();
    for (std::uint32_t i = 0; i < ninitial; ++i) {
        unsigned char e[12];
        in_.read(reinterpret_cast<char *>(e), 12);
        if (!in_)
            return false;
        initials_.emplace_back(getU32(e), getU64(e + 4));
    }
    cursors_.assign(nthreads, {});
    total_ = 0;
    for (std::uint32_t t = 0; t < nthreads; ++t) {
        unsigned char e[16];
        in_.read(reinterpret_cast<char *>(e), 16);
        if (!in_)
            return false;
        cursors_[t].base = getU64(e);
        cursors_[t].count = getU64(e + 8);
        total_ += cursors_[t].count;
    }
    return true;
}

std::uint64_t
ReplayTraceReader::remaining(int tid) const
{
    const Cursor &c = cursors_.at(static_cast<std::size_t>(tid));
    return c.count - c.taken;
}

bool
ReplayTraceReader::refill(Cursor &c)
{
    std::uint64_t done = c.bufStart + c.buf.size();
    if (done >= c.count)
        return false;
    std::uint64_t n = std::min<std::uint64_t>(kBufRecords, c.count - done);
    std::vector<unsigned char> raw(static_cast<std::size_t>(n) * kRecordBytes);
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(c.base + done * kRecordBytes));
    in_.read(reinterpret_cast<char *>(raw.data()),
             static_cast<std::streamsize>(raw.size()));
    if (!in_)
        return false;
    c.bufStart = done;
    c.buf.clear();
    c.buf.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        c.buf.push_back(decodeRecord(raw.data() + i * kRecordBytes));
    c.bufPos = 0;
    return true;
}

bool
ReplayTraceReader::peek(int tid, ReplayRecord &out)
{
    Cursor &c = cursors_.at(static_cast<std::size_t>(tid));
    if (c.taken >= c.count)
        return false;
    if (c.bufPos >= c.buf.size()) {
        if (!refill(c))
            return false;
    }
    out = c.buf[c.bufPos];
    return true;
}

bool
ReplayTraceReader::next(int tid, ReplayRecord &out)
{
    if (!peek(tid, out))
        return false;
    Cursor &c = cursors_[static_cast<std::size_t>(tid)];
    ++c.bufPos;
    ++c.taken;
    return true;
}

void
ReplayTraceReader::rewind()
{
    for (Cursor &c : cursors_) {
        c.taken = 0;
        c.buf.clear();
        c.bufPos = 0;
        c.bufStart = 0;
    }
}

} // namespace wo
