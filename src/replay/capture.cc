#include "replay/capture.hh"

#include <cstring>

namespace wo {

namespace {

std::uint64_t
pendKey(ProcId proc, std::uint64_t opId)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(proc))
            << 32) ^
           opId;
}

/** Append a flag-wait gate, collapsing into an immediately preceding
 * gate at the same address (spin iterations of one wait). Returns the
 * record's index. */
std::size_t
appendGate(std::vector<ReplayRecord> &out, Addr addr, Word valueRead)
{
    if (!out.empty() && out.back().op == ReplayOp::SyncRead &&
        out.back().addr == addr) {
        out.back().value = valueRead;
        return out.size() - 1;
    }
    out.push_back({ReplayOp::SyncRead, addr, valueRead});
    return out.size() - 1;
}

AccessKind
kindFromTag(const char *tag)
{
    if (std::strcmp(tag, "data_read") == 0)
        return AccessKind::DataRead;
    if (std::strcmp(tag, "data_write") == 0)
        return AccessKind::DataWrite;
    if (std::strcmp(tag, "sync_read") == 0)
        return AccessKind::SyncRead;
    if (std::strcmp(tag, "sync_write") == 0)
        return AccessKind::SyncWrite;
    return AccessKind::SyncRmw;
}

} // namespace

ReplayCaptureSink::ReplayCaptureSink(int numThreads)
{
    data_.threads.assign(static_cast<std::size_t>(numThreads), {});
}

void
ReplayCaptureSink::record(const TraceEvent &ev)
{
    if (ev.comp != TraceComp::Proc || ev.proc < 0 ||
        static_cast<std::size_t>(ev.proc) >= data_.threads.size())
        return;
    auto &out = data_.threads[static_cast<std::size_t>(ev.proc)];
    switch (ev.kind) {
    case TraceKind::Issue: {
        // Program-order capture point for ordinary operations.
        if (!ev.detail)
            return;
        switch (kindFromTag(ev.detail)) {
        case AccessKind::DataRead:
            out.push_back({ReplayOp::Read, ev.addr, 0});
            break;
        case AccessKind::DataWrite:
            out.push_back({ReplayOp::Write, ev.addr, ev.value});
            break;
        case AccessKind::SyncRead:
            // Flag wait: spin iterations collapse into one gate whose
            // value is patched to the last observed read at commit.
            pending_[pendKey(ev.proc, ev.opId)] = {
                ev.proc, appendGate(out, ev.addr, 0), false};
            break;
        case AccessKind::SyncWrite:
            out.push_back({ReplayOp::SyncWrite, ev.addr, ev.value});
            break;
        case AccessKind::SyncRmw:
            // Test-and-set: a lock-episode acquire. Failed attempts
            // (read value == written value, no state change) are
            // deleted once the read value commits.
            out.push_back({ReplayOp::LockAcquire, ev.addr, ev.value});
            pending_[pendKey(ev.proc, ev.opId)] = {ev.proc,
                                                   out.size() - 1, true};
            break;
        }
        break;
    }
    case TraceKind::Commit: {
        // Bind the read value observed by the recorded run.
        auto it = pending_.find(pendKey(ev.proc, ev.opId));
        if (it == pending_.end())
            break;
        const Pending p = it->second;
        pending_.erase(it);
        if (p.index >= out.size())
            break;
        if (!p.rmw) {
            out[p.index].value = static_cast<Word>(ev.aux);
            break;
        }
        if (static_cast<Word>(ev.aux) == out[p.index].value) {
            // Failed test-and-set: replaying it would spin on a value
            // the replay may never revisit; the successful acquire
            // that follows carries its happens-before edges.
            out.erase(out.begin() + static_cast<long>(p.index));
            for (auto &[key, q] : pending_) {
                if (q.proc == p.proc && q.index > p.index)
                    --q.index;
            }
        }
        break;
    }
    case TraceKind::WbInsert:
        // Buffered writes never get a Commit event; capture at insert.
        out.push_back({ReplayOp::Write, ev.addr, ev.value});
        break;
    case TraceKind::WbForward:
        out.push_back({ReplayOp::Read, ev.addr, 0});
        break;
    default:
        break;
    }
}

void
ReplayCaptureSink::clear()
{
    for (auto &t : data_.threads)
        t.clear();
    data_.initials.clear();
    pending_.clear();
}

ReplayTraceData
captureReplayTrace(const ExecutionTrace &trace)
{
    ReplayTraceData out;
    out.initials.assign(trace.initials().begin(), trace.initials().end());
    out.threads.assign(static_cast<std::size_t>(trace.numProcs()), {});
    for (ProcId p = 0; p < trace.numProcs(); ++p) {
        auto &vec = out.threads[static_cast<std::size_t>(p)];
        for (int id : trace.accessesOf(p)) {
            const Access &a = trace.at(id);
            switch (a.kind) {
            case AccessKind::DataRead:
                vec.push_back({ReplayOp::Read, a.addr, 0});
                break;
            case AccessKind::DataWrite:
                vec.push_back({ReplayOp::Write, a.addr, a.valueWritten});
                break;
            case AccessKind::SyncRead:
                appendGate(vec, a.addr, a.valueRead);
                break;
            case AccessKind::SyncWrite:
                vec.push_back({ReplayOp::SyncWrite, a.addr,
                               a.valueWritten});
                break;
            case AccessKind::SyncRmw:
                if (a.valueRead != a.valueWritten)
                    vec.push_back({ReplayOp::LockAcquire, a.addr,
                                   a.valueWritten});
                break;
            }
        }
    }
    return out;
}

} // namespace wo
