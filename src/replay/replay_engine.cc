#include "replay/replay_engine.hh"

#include "sim/rng.hh"

namespace wo {

ReplayEngine::ReplayEngine(ReplayTraceReader &reader, const ReplayOptions &opt)
    : reader_(reader), opt_(opt), checker_(reader.numThreads(), opt.mode)
{
    threads_.assign(static_cast<std::size_t>(reader.numThreads()), {});
    liveThreads_ = reader.numThreads();
    for (const auto &[addr, value] : reader.initials()) {
        mem_[addr] = value;
        trace_.setInitial(addr, value);
    }
}

Word
ReplayEngine::load(Addr a) const
{
    auto it = mem_.find(a);
    return it == mem_.end() ? 0 : it->second;
}

void
ReplayEngine::emit(int t, AccessKind kind, Addr addr, Word valueRead,
                   Word valueWritten)
{
    Access a;
    a.proc = t;
    a.poIndex = threads_[static_cast<std::size_t>(t)].poIndex++;
    a.kind = kind;
    a.addr = addr;
    a.valueRead = valueRead;
    a.valueWritten = valueWritten;
    a.commitTick = tick_;
    a.gpTick = tick_;
    ++tick_;
    int id = trace_.add(a);
    checker_.onAccess(trace_.at(id));
}

void
ReplayEngine::maybeRetire()
{
    if (opt_.window <= 0)
        return;
    // Batch retirement: erase-from-front costs O(resident), so retire in
    // half-window chunks to keep the amortized cost per access constant.
    if (trace_.resident() >= opt_.window + opt_.window / 2) {
        int n = checker_.retireReady(trace_);
        int excess = trace_.resident() - opt_.window;
        trace_.popFront(std::min(n, excess));
    }
}

bool
ReplayEngine::openReadyBarriers()
{
    bool opened = false;
    for (auto &[addr, b] : barriers_) {
        if (b.arrived > 0 && b.arrived >= liveThreads_) {
            b.arrived = 0;
            ++b.gen;
            opened = true;
        }
    }
    return opened;
}

bool
ReplayEngine::tryStep(int t)
{
    ThreadState &ts = threads_[static_cast<std::size_t>(t)];
    if (ts.done)
        return false;

    ReplayRecord r;
    if (!reader_.peek(t, r)) {
        ts.done = true;
        --liveThreads_;
        return false;
    }

    if (ts.inBarrier) {
        Barrier &b = barriers_[r.addr];
        if (b.gen <= ts.barrierGen)
            return false; // still waiting for the episode to open
        // Exit access: acquire the release clock left by the last
        // arrival, ordering every pre-barrier access before us.
        ts.inBarrier = false;
        emit(t, AccessKind::SyncRead, r.addr, b.gen, 0);
        reader_.next(t, r);
        ++records_;
        return true;
    }

    switch (r.op) {
    case ReplayOp::Read:
        emit(t, AccessKind::DataRead, r.addr, load(r.addr), 0);
        break;
    case ReplayOp::Write:
        mem_[r.addr] = r.value;
        emit(t, AccessKind::DataWrite, r.addr, 0, r.value);
        break;
    case ReplayOp::Rmw: {
        Word old = load(r.addr);
        mem_[r.addr] = r.value;
        emit(t, AccessKind::SyncRmw, r.addr, old, r.value);
        break;
    }
    case ReplayOp::SyncRead:
        if (load(r.addr) != r.value)
            return false; // flag wait: re-synchronize, don't replay spins
        emit(t, AccessKind::SyncRead, r.addr, r.value, 0);
        break;
    case ReplayOp::SyncWrite:
        mem_[r.addr] = r.value;
        emit(t, AccessKind::SyncWrite, r.addr, 0, r.value);
        break;
    case ReplayOp::LockAcquire: {
        if (load(r.addr) != 0)
            return false; // lock held
        mem_[r.addr] = 1;
        emit(t, AccessKind::SyncRmw, r.addr, 0, 1);
        break;
    }
    case ReplayOp::LockRelease:
        mem_[r.addr] = 0;
        emit(t, AccessKind::SyncWrite, r.addr, 0, 0);
        break;
    case ReplayOp::BarrierWait: {
        Barrier &b = barriers_[r.addr];
        ts.inBarrier = true;
        ts.barrierGen = b.gen;
        ++b.arrived;
        // Arrival: a sync rmw joining this thread's clock into the
        // episode's release chain.
        emit(t, AccessKind::SyncRmw, r.addr,
             static_cast<Word>(b.arrived - 1),
             static_cast<Word>(b.arrived));
        if (b.arrived >= liveThreads_) {
            b.arrived = 0;
            ++b.gen;
        }
        return true; // record consumed on exit, not on arrival
    }
    }
    reader_.next(t, r);
    ++records_;
    return true;
}

ReplayResult
ReplayEngine::run()
{
    ReplayResult res;
    Rng rng(opt_.seed);
    const int n = reader_.numThreads();

    // Threads with empty record streams are done from the start.
    for (int t = 0; t < n; ++t) {
        if (reader_.remaining(t) == 0) {
            threads_[static_cast<std::size_t>(t)].done = true;
            --liveThreads_;
        }
    }

    while (liveThreads_ > 0) {
        // Pick a random live thread; linear-probe to the next one that
        // can make progress.
        int start = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
        bool stepped = false;
        for (int k = 0; k < n && !stepped; ++k)
            stepped = tryStep((start + k) % n);
        if (stepped) {
            maybeRetire();
            if (opt_.stopAtFirstRace && !checker_.raceFree())
                break;
            continue;
        }
        // Everyone is blocked. A barrier may have become openable when a
        // thread exited (liveThreads_ dropped); otherwise it's deadlock.
        if (liveThreads_ > 0 && !openReadyBarriers()) {
            res.ok = false;
            res.error = "replay deadlock: all live threads blocked";
            break;
        }
    }

    checker_.finish(trace_);
    res.raceFree = checker_.raceFree();
    res.races = checker_.sortedRaces();
    res.recordsReplayed = records_;
    res.accesses = checker_.consumed();
    res.eventsRetired = trace_.retired();
    res.windowHighWater = trace_.windowHighWater();
    for (const auto &[addr, value] : mem_)
        res.finalMemory[addr] = value;
    return res;
}

void
exportReplayStats(StatSet &stats, const std::string &prefix,
                  std::int64_t eventsRetired, int windowHighWater)
{
    stats.inc(prefix + ".trace_events_retired",
              static_cast<std::uint64_t>(eventsRetired));
    stats.maxOf(prefix + ".window_high_water",
                static_cast<std::uint64_t>(windowHighWater));
}

} // namespace wo
