/**
 * @file
 * Recording side of the replay pipeline: turn a live simulation (or a
 * finished ExecutionTrace) into a replayable trace file.
 *
 * ReplayCaptureSink is a TraceSink — the PR-5 obs layer's writer hook.
 * Attach it to a System (SystemConfig::traceSink) and every processor
 * operation is captured in program order as a ReplayRecord:
 *
 *  - data reads/writes map to Read/Write;
 *  - a sync read becomes a SyncRead flag-wait gate on the last value the
 *    recorded run observed; consecutive spin iterations of one wait
 *    collapse into a single gate (re-synchronization, not spin replay —
 *    gating on every transient value the spin saw could deadlock a
 *    replay that never revisits it);
 *  - a sync rmw is a test-and-set lock acquire and maps to LockAcquire
 *    (the canonical 0/1 lock episode); failed attempts — read value
 *    equal to the written value, no state change — are dropped, since
 *    the successful acquire that follows carries their happens-before
 *    edges through the same location's release clock;
 *  - write-buffer inserts and forwards are captured at their program-
 *    order position.
 *
 * Records are appended at issue (program order) and read-values are
 * bound at commit, so the capture is only complete for runs that
 * finished. save with saveReplayTrace() / ReplayTraceWriter.
 */

#ifndef WO_REPLAY_CAPTURE_HH
#define WO_REPLAY_CAPTURE_HH

#include <cstdint>
#include <unordered_map>

#include "core/trace.hh"
#include "obs/trace_sink.hh"
#include "replay/trace_format.hh"

namespace wo {

class ReplayCaptureSink : public TraceSink
{
  public:
    explicit ReplayCaptureSink(int numThreads);

    void record(const TraceEvent &ev) override;

    /** The captured trace (complete once the run finished). Initial
     * values are not visible to the sink — callers add them (e.g. from
     * MultiProgram::initials()). */
    const ReplayTraceData &data() const { return data_; }
    ReplayTraceData &data() { return data_; }

    /** Forget everything for a fresh run. */
    void clear();

  private:
    /** One in-flight operation awaiting its commit-time read value. */
    struct Pending
    {
        ProcId proc;
        std::size_t index; ///< record position within the thread
        bool rmw;          ///< test-and-set: deleted at commit if failed
    };

    ReplayTraceData data_;
    std::unordered_map<std::uint64_t, Pending> pending_;
};

/** Offline variant: convert a finished whole ExecutionTrace (idealized
 * or simulator) into a replayable trace, with the same spin-collapsing
 * and failed-test-and-set elision as the live sink. Copies the trace's
 * initial values. */
ReplayTraceData captureReplayTrace(const ExecutionTrace &trace);

} // namespace wo

#endif // WO_REPLAY_CAPTURE_HH
