#include "obs/trace_sink.hh"

#include <ostream>
#include <sstream>

namespace wo {

std::string
renderTraceLine(const TraceEvent &ev)
{
    std::ostringstream oss;
    // Log lines keep the historical "tick [who] message" shape (the
    // `[who]` prefix is already folded into text by Log::emit).
    if (ev.kind == TraceKind::LogMessage) {
        oss << ev.tick << " " << ev.text;
        return oss.str();
    }
    oss << ev.tick << " [";
    if (ev.comp == TraceComp::Cache && ev.level >= 2)
        oss << "l" << int{ev.level} << "cache";
    else
        oss << toString(ev.comp);
    if (ev.compId >= 0)
        oss << ev.compId;
    oss << "] " << toString(ev.kind);
    if (ev.proc != kNoProc && ev.comp != TraceComp::Proc)
        oss << " proc=" << ev.proc;
    if (ev.opId)
        oss << " op=" << ev.opId;
    if (ev.addr != kNoTraceAddr)
        oss << " addr=" << ev.addr;
    if (ev.src >= 0 || ev.dst >= 0)
        oss << " " << ev.src << "->" << ev.dst;
    if (ev.aux)
        oss << " aux=" << ev.aux;
    if (ev.detail)
        oss << " " << ev.detail;
    if (!ev.text.empty())
        oss << " " << ev.text;
    return oss.str();
}

void
TextTraceSink::record(const TraceEvent &ev)
{
    if (!(mask_ & traceCompBit(ev.comp)))
        return;
    std::string line = renderTraceLine(ev);
    line += '\n';
    std::lock_guard<std::mutex> lock(mu_);
    os_ << line;
}

} // namespace wo
