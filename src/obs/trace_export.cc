#include "obs/trace_export.hh"

#include <cstdio>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace wo {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Stable small thread id for one (component, index) pair. */
int
tidOf(const TraceEvent &ev)
{
    int base = 0;
    switch (ev.comp) {
      case TraceComp::Proc: base = 0; break;
      case TraceComp::Cache: base = ev.level >= 2 ? 150 : 100; break;
      case TraceComp::Dir: base = 200; break;
      case TraceComp::Mem: base = 300; break;
      case TraceComp::Port: base = 400; break;
      case TraceComp::Net: base = 500; break;
      case TraceComp::Log: base = 600; break;
    }
    return base + (ev.compId > 0 ? ev.compId : 0);
}

std::string
threadLabel(const TraceEvent &ev)
{
    std::string label = toString(ev.comp);
    if (ev.comp == TraceComp::Cache && ev.level >= 2)
        label = "l" + std::to_string(int{ev.level}) + "cache";
    if (ev.compId >= 0 &&
        (ev.comp == TraceComp::Proc || ev.comp == TraceComp::Cache ||
         ev.comp == TraceComp::Dir || ev.comp == TraceComp::Mem ||
         ev.comp == TraceComp::Port)) {
        label += std::to_string(ev.compId);
    }
    return label;
}

/** The kind-specific args object, shared by every phase. */
std::string
argsJson(const TraceEvent &ev)
{
    std::ostringstream oss;
    oss << "{";
    bool first = true;
    auto field = [&](const char *k, const std::string &v, bool quote) {
        oss << (first ? "" : ",") << "\"" << k << "\":";
        if (quote)
            oss << "\"" << jsonEscape(v) << "\"";
        else
            oss << v;
        first = false;
    };
    if (ev.addr != kNoTraceAddr)
        field("addr", std::to_string(ev.addr), false);
    if (ev.proc != kNoProc)
        field("proc", std::to_string(ev.proc), false);
    if (ev.opId)
        field("op", std::to_string(ev.opId), false);
    if (ev.src >= 0)
        field("src", std::to_string(ev.src), false);
    if (ev.dst >= 0)
        field("dst", std::to_string(ev.dst), false);
    if (ev.value)
        field("value", std::to_string(ev.value), false);
    if (ev.aux)
        field("aux", std::to_string(ev.aux), false);
    if (ev.level > 1)
        field("level", std::to_string(int{ev.level}), false);
    if (ev.detail)
        field("detail", ev.detail, true);
    if (!ev.text.empty())
        field("text", ev.text, true);
    oss << "}";
    return oss.str();
}

struct Emitter
{
    std::ostream &os;
    bool first = true;

    void
    line(const std::string &body)
    {
        os << (first ? "" : ",") << "\n  {" << body << "}";
        first = false;
    }
};

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<TraceEvent> &events)
{
    os << "{\"traceEvents\": [";
    Emitter out{os};

    // Thread-name metadata first, in tid order.
    std::map<int, std::string> threads;
    for (const TraceEvent &ev : events)
        threads.emplace(tidOf(ev), threadLabel(ev));
    for (const auto &[tid, label] : threads) {
        out.line("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
                 std::to_string(tid) + ",\"args\":{\"name\":\"" +
                 jsonEscape(label) + "\"}");
    }

    // Async-span bookkeeping: which issue->GP and reserve spans are open,
    // so we never emit an "e" without its "b".
    std::set<std::pair<int, std::uint64_t>> open_ops;
    std::set<std::pair<int, Addr>> open_reserves;

    for (const TraceEvent &ev : events) {
        std::ostringstream oss;
        std::string ts = std::to_string(ev.tick);
        std::string tid = std::to_string(tidOf(ev));
        std::string args = argsJson(ev);
        const char *kind_name = toString(ev.kind);

        switch (ev.kind) {
          case TraceKind::StallBegin:
            oss << "\"name\":\"stall:"
                << (ev.detail ? ev.detail : "unknown")
                << "\",\"cat\":\"stall\",\"ph\":\"B\",\"pid\":1,\"tid\":"
                << tid << ",\"ts\":" << ts << ",\"args\":" << args;
            break;
          case TraceKind::StallEnd:
            oss << "\"name\":\"stall\",\"cat\":\"stall\",\"ph\":\"E\","
                   "\"pid\":1,\"tid\":"
                << tid << ",\"ts\":" << ts;
            break;
          case TraceKind::Issue: {
            open_ops.insert({ev.proc, ev.opId});
            oss << "\"name\":\"" << (ev.detail ? ev.detail : "access")
                << "\",\"cat\":\"access\",\"ph\":\"b\",\"id\":\"p"
                << ev.proc << "." << ev.opId << "\",\"pid\":1,\"tid\":"
                << tid << ",\"ts\":" << ts << ",\"args\":" << args;
            break;
          }
          case TraceKind::GloballyPerformed: {
            auto key = std::make_pair(static_cast<int>(ev.proc), ev.opId);
            if (open_ops.erase(key)) {
                oss << "\"name\":\"" << (ev.detail ? ev.detail : "access")
                    << "\",\"cat\":\"access\",\"ph\":\"e\",\"id\":\"p"
                    << ev.proc << "." << ev.opId
                    << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts
                    << ",\"args\":" << args;
            } else {
                // Write-buffer ops have no issue span; show an instant.
                oss << "\"name\":\"" << kind_name
                    << "\",\"cat\":\"access\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":1,\"tid\":"
                    << tid << ",\"ts\":" << ts << ",\"args\":" << args;
            }
            break;
          }
          case TraceKind::ReserveSet:
            open_reserves.insert({ev.compId, ev.addr});
            oss << "\"name\":\"reserved@" << ev.addr
                << "\",\"cat\":\"reserve\",\"ph\":\"b\",\"id\":\"c"
                << ev.compId << ".a" << ev.addr
                << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts
                << ",\"args\":" << args;
            break;
          case TraceKind::ReserveClear: {
            auto key = std::make_pair(ev.compId, ev.addr);
            if (open_reserves.erase(key)) {
                oss << "\"name\":\"reserved@" << ev.addr
                    << "\",\"cat\":\"reserve\",\"ph\":\"e\",\"id\":\"c"
                    << ev.compId << ".a" << ev.addr
                    << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts;
            } else {
                oss << "\"name\":\"" << kind_name
                    << "\",\"cat\":\"reserve\",\"ph\":\"i\",\"s\":\"t\","
                       "\"pid\":1,\"tid\":"
                    << tid << ",\"ts\":" << ts << ",\"args\":" << args;
            }
            break;
          }
          case TraceKind::CounterInc:
          case TraceKind::CounterDec:
            oss << "\"name\":\"cache" << ev.compId
                << ".outstanding\",\"cat\":\"counter\",\"ph\":\"C\","
                   "\"pid\":1,\"tid\":"
                << tid << ",\"ts\":" << ts
                << ",\"args\":{\"outstanding\":" << ev.aux << "}";
            break;
          default:
            oss << "\"name\":\"" << kind_name << "\",\"cat\":\""
                << toString(ev.comp)
                << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << tid
                << ",\"ts\":" << ts << ",\"args\":" << args;
            break;
        }
        out.line(oss.str());
    }
    os << "\n],\n\"displayTimeUnit\": \"ns\"}\n";
}

void
renderTraceText(std::ostream &os, const std::vector<TraceEvent> &events)
{
    for (const TraceEvent &ev : events) {
        std::ostringstream who;
        who << "[" << threadLabel(ev) << "]";
        os << std::setw(10) << ev.tick << "  " << std::left << std::setw(9)
           << who.str() << std::setw(20) << toString(ev.kind) << std::right;
        if (ev.opId)
            os << " op=" << ev.opId;
        if (ev.addr != kNoTraceAddr)
            os << " addr=" << ev.addr;
        if (ev.proc != kNoProc && ev.comp != TraceComp::Proc)
            os << " proc=" << ev.proc;
        if (ev.src >= 0 || ev.dst >= 0)
            os << " " << ev.src << "->" << ev.dst;
        if (ev.value)
            os << " value=" << ev.value;
        if (ev.aux)
            os << " aux=" << ev.aux;
        if (ev.detail)
            os << " " << ev.detail;
        if (!ev.text.empty())
            os << " " << ev.text;
        os << "\n";
    }
}

} // namespace wo
