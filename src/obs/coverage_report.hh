/**
 * @file
 * The standing coverage report: the on-disk artifact that accumulates
 * CoverageMap counters across wo-litmus invocations, plus the analyses
 * wo-cover runs over it (heatmap, gaps, diff).
 *
 * Format ("wocover" version 1): a line-oriented, tab-separated text
 * file with a fixed section order and lexicographically sorted lines,
 * so two reports built from the same runs are byte-identical and two
 * different reports diff cleanly with standard tools:
 *
 *   wocover<TAB>1
 *   meta<TAB>runs<TAB><count>                      (summed on merge)
 *   meta<TAB><key><TAB><value>                     (set union on merge)
 *   machine<TAB><name><TAB><protocol><TAB><levels> (registry metadata)
 *   trans<TAB><proto><TAB><state><TAB><event><TAB><count>
 *   stall<TAB><family/reason><TAB><count>
 *   bucket<TAB><histogram/bucket_NN><TAB><count>
 *   outcome<TAB><test><TAB><policy><TAB><machine><TAB><key><TAB><count>
 *
 * Counts are the last field of every counter line; the free-text
 * outcome key may contain spaces but never tabs. A count of 0 is
 * meaningful: it records a cell the fleet *could* produce (an
 * axiomatically-allowed outcome, a seeded key) but has not — exactly
 * the gaps wo-cover hunts. Machine lines carry protocol and cache-level
 * metadata from the registry so a diff across registry growth can tell
 * "new machine, new lines" from "old machine lost coverage".
 */

#ifndef WO_OBS_COVERAGE_REPORT_HH
#define WO_OBS_COVERAGE_REPORT_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/coverage.hh"

namespace wo {

/** Parsed/accumulated standing coverage report (see file comment). */
struct StandingCoverage
{
    static constexpr int kVersion = 1;

    /** Number of runner invocations merged into this report. */
    std::uint64_t runs = 0;

    /** Non-count run metadata (key, value), set-union on merge. */
    std::set<std::pair<std::string, std::string>> meta;

    struct MachineMeta
    {
        std::string protocol; ///< "msi".."mesif", or "none" (uncached)
        int cacheLevels = 0;
    };
    std::map<std::string, MachineMeta> machines;

    /** (protocol, state, event) -> hits. String-keyed so a report
     * written by a future binary with more protocols still parses. */
    std::map<std::array<std::string, 3>, std::uint64_t> transitions;

    std::map<std::string, std::uint64_t> stalls;
    std::map<std::string, std::uint64_t> buckets;

    /** (test, policy, machine, outcome key) -> observation count.
     * 0 = allowed but never observed there. */
    std::map<std::array<std::string, 4>, std::uint64_t> outcomes;

    /** Fold one campaign's CoverageMap into this report. Outcome-dim
     * keys are the runner's "test\tpolicy\tmachine\tkey" composites. */
    void addCoverage(const CoverageMap &map);

    void addMachine(const std::string &name, const std::string &protocol,
                    int cacheLevels);

    /** Accumulate @p other (counts sum, metadata unions). */
    void mergeFrom(const StandingCoverage &other);

    /** Canonical rendering: stable section order, sorted lines. */
    void write(std::ostream &os) const;

    /** Parse a report; throws std::runtime_error (with a line number)
     * on anything that is not a well-formed version-1 document. */
    static StandingCoverage read(std::istream &is);

    /** read() from a file path; throws std::runtime_error if the file
     * cannot be opened. */
    static StandingCoverage readFile(const std::string &path);
};

/**
 * Per-protocol transition heatmap: one row per state in the protocol's
 * state set, one column per LineEvent; cells show the hit count, 0 for
 * a legal-but-unhit transition, '-' for an illegal pair. Each table
 * ends with a "hit H/L legal transitions" summary. Protocols recorded
 * in the report but unknown to this binary are listed raw.
 */
void renderHeatmap(std::ostream &os, const StandingCoverage &rep);

/** The gaps a report exposes, rendered and machine-usable. */
struct CoverageGaps
{
    /** "mesif: F x Store (IssueUpgrade -> S)" — legal, never hit. */
    std::vector<std::string> unhitTransitions;

    /** "test / policy / machine: {outcome}" — allowed, never seen. */
    std::vector<std::string> unobservedOutcomes;

    bool empty() const
    {
        return unhitTransitions.empty() && unobservedOutcomes.empty();
    }
};

/** Compute unhit legal transitions (only for protocols the report has
 * touched at all — an all-zero protocol table just means "this report
 * never ran that protocol", not 60 gaps) and allowed-but-unobserved
 * outcomes per machine x policy. */
CoverageGaps findGaps(const StandingCoverage &rep);

void renderGaps(std::ostream &os, const StandingCoverage &rep);

/** Differences between two standing reports (old -> new). */
struct CoverageDiff
{
    /** Coverage lost: covered in old, unobserved or absent in new.
     * Transitions, outcomes and stall reasons gate regressions. */
    std::vector<std::string> regressions;

    /** Latency-bucket occupancy lost (informational only: bucket
     * boundaries move with latency tuning, so bucket loss alone
     * should not fail a CI gate). */
    std::vector<std::string> bucketLosses;

    /** Newly covered cells (informational). */
    std::vector<std::string> gains;

    bool hasRegressions() const { return !regressions.empty(); }
};

CoverageDiff diffStanding(const StandingCoverage &oldRep,
                          const StandingCoverage &newRep);

void renderDiff(std::ostream &os, const CoverageDiff &diff);

} // namespace wo

#endif // WO_OBS_COVERAGE_REPORT_HH
