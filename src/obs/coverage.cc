#include "obs/coverage.hh"

#include <atomic>
#include <cstring>

namespace wo {

namespace {

struct FlushEntry
{
    void *obj;
    void (*fn)(void *, CoverageMap *);
};

/** This thread's deferred flushes, in registration (first-hit) order —
 * a deterministic order, so flushed counts merge identically for any
 * thread count. */
thread_local std::vector<FlushEntry> t_pending_flushes;

} // namespace

namespace detail {
thread_local CoverageMap *t_active_coverage = nullptr;

void
flushPendingCoverage()
{
    if (t_pending_flushes.empty())
        return;
    for (const FlushEntry &entry : t_pending_flushes)
        entry.fn(entry.obj, t_active_coverage);
    t_pending_flushes.clear();
}

} // namespace detail

void
registerCoverageFlush(void *obj, void (*fn)(void *, CoverageMap *))
{
    t_pending_flushes.push_back({obj, fn});
}

namespace {

/** Unique per construction/clear (see CoverageMap::generation). */
std::uint64_t
nextGeneration()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

CoverageMap::CoverageMap() : gen_(nextGeneration())
{
    std::memset(trans_, 0, sizeof(trans_));
}

std::uint32_t
CoverageMap::internKey(Dim d, const std::string &key)
{
    NamedDim &dim = dims_[static_cast<int>(d)];
    auto it = dim.ids.find(key);
    if (it != dim.ids.end())
        return it->second;
    std::uint32_t id = static_cast<std::uint32_t>(dim.keys.size());
    dim.ids.emplace(key, id);
    dim.keys.push_back(key);
    dim.counts.push_back(0);
    return id;
}

void
CoverageMap::merge(const CoverageMap &other)
{
    for (int k = 0; k < kNumProtocolKinds; ++k)
        for (int s = 0; s < kNumLineStates; ++s)
            for (int e = 0; e < kNumLineEvents; ++e)
                trans_[k][s][e] += other.trans_[k][s][e];
    for (int d = 0; d < kNumDims; ++d) {
        const NamedDim &src = other.dims_[d];
        for (std::size_t i = 0; i < src.keys.size(); ++i) {
            std::uint32_t id =
                internKey(static_cast<Dim>(d), src.keys[i]);
            dims_[d].counts[id] += src.counts[i];
        }
    }
}

void
CoverageMap::clear()
{
    std::memset(trans_, 0, sizeof(trans_));
    for (NamedDim &dim : dims_) {
        dim.ids.clear();
        dim.keys.clear();
        dim.counts.clear();
    }
    gen_ = nextGeneration();
}

bool
CoverageMap::empty() const
{
    for (int k = 0; k < kNumProtocolKinds; ++k)
        for (int s = 0; s < kNumLineStates; ++s)
            for (int e = 0; e < kNumLineEvents; ++e)
                if (trans_[k][s][e])
                    return false;
    for (const NamedDim &dim : dims_)
        if (!dim.keys.empty())
            return false;
    return true;
}

std::string
stripInstance(const std::string &stat_name)
{
    std::size_t dot = stat_name.find('.');
    if (dot == std::string::npos)
        return stat_name;
    return stat_name.substr(dot + 1);
}

} // namespace wo
