/**
 * @file
 * Trace sinks: where structured TraceEvents go when tracing is on.
 *
 *  - TraceBuffer collects events in memory (with a component filter) for
 *    later export — the sink wo-litmus/wo-trace attach per run. One
 *    buffer belongs to one System; campaign jobs each own a private
 *    buffer, so worker threads never share a sink.
 *  - TextTraceSink renders each event as one line and writes it under a
 *    mutex — the thread-safe stream sink Log::emit routes through.
 */

#ifndef WO_OBS_TRACE_SINK_HH
#define WO_OBS_TRACE_SINK_HH

#include <iosfwd>
#include <mutex>
#include <vector>

#include "obs/trace_event.hh"

namespace wo {

/** Abstract destination for trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume one event. Called only on the enabled path. */
    virtual void record(const TraceEvent &ev) = 0;
};

/** In-memory event collector with a component filter mask. */
class TraceBuffer : public TraceSink
{
  public:
    explicit TraceBuffer(std::uint32_t comp_mask = kAllTraceComps)
        : mask_(comp_mask)
    {}

    void
    record(const TraceEvent &ev) override
    {
        if (mask_ & traceCompBit(ev.comp))
            events_.push_back(ev);
    }

    const std::vector<TraceEvent> &events() const { return events_; }

    std::uint32_t mask() const { return mask_; }

    void clear() { events_.clear(); }

  private:
    std::uint32_t mask_;
    std::vector<TraceEvent> events_;
};

/**
 * Line-oriented stream sink. Each event is formatted into one string and
 * written with a single locked stream insertion, so concurrent emitters
 * (campaign worker threads sharing a Log redirect) never tear or
 * interleave mid-line.
 */
class TextTraceSink : public TraceSink
{
  public:
    explicit TextTraceSink(std::ostream &os,
                           std::uint32_t comp_mask = kAllTraceComps)
        : os_(os), mask_(comp_mask)
    {}

    void record(const TraceEvent &ev) override;

  private:
    std::mutex mu_;
    std::ostream &os_;
    std::uint32_t mask_;
};

/** Render one event as the single text line TextTraceSink writes. */
std::string renderTraceLine(const TraceEvent &ev);

} // namespace wo

#endif // WO_OBS_TRACE_SINK_HH
