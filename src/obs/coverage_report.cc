#include "obs/coverage_report.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wo {

namespace {

/** Keys are tab-separated fields; tabs/newlines in one would corrupt
 * the document, so sanitize defensively at write time. */
std::string
fieldSafe(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (c == '\t' || c == '\n' || c == '\r')
            c = ' ';
    return out;
}

std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (true) {
        std::size_t tab = line.find('\t', pos);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(pos));
            return fields;
        }
        fields.push_back(line.substr(pos, tab - pos));
        pos = tab + 1;
    }
}

std::uint64_t
parseCount(const std::string &s, int lineno)
{
    try {
        std::size_t end = 0;
        std::uint64_t v = std::stoull(s, &end);
        if (end == s.size() && !s.empty())
            return v;
    } catch (const std::exception &) {
    }
    throw std::runtime_error("wocover: line " + std::to_string(lineno) +
                             ": bad count '" + s + "'");
}

[[noreturn]] void
badLine(int lineno, const std::string &why)
{
    throw std::runtime_error("wocover: line " + std::to_string(lineno) +
                             ": " + why);
}

/** The report stores transitions by name; the analyses need the enum
 * back. Returns false for protocols this binary does not know. */
bool
parseProtocolName(const std::string &name, ProtocolKind &out)
{
    for (int k = 0; k < kNumProtocolKinds; ++k) {
        if (name == toString(static_cast<ProtocolKind>(k))) {
            out = static_cast<ProtocolKind>(k);
            return true;
        }
    }
    return false;
}

/** Short column labels for the heatmap grid, LineEvent order. */
const char *const kEventShort[kNumLineEvents] = {
    "Load", "Store", "Evict", "FillS", "FillE",
    "FillM", "UpgOwn", "Inv", "FwdGetS", "FwdGetX",
};

} // namespace

void
StandingCoverage::addCoverage(const CoverageMap &map)
{
    for (int k = 0; k < kNumProtocolKinds; ++k) {
        for (int s = 0; s < kNumLineStates; ++s) {
            for (int e = 0; e < kNumLineEvents; ++e) {
                ProtocolKind pk = static_cast<ProtocolKind>(k);
                LineState ls = static_cast<LineState>(s);
                LineEvent le = static_cast<LineEvent>(e);
                std::uint64_t n = map.transitionCount(pk, ls, le);
                if (n)
                    transitions[{toString(pk), toString(ls),
                                 toString(le)}] += n;
            }
        }
    }
    using Dim = CoverageMap::Dim;
    const std::vector<std::string> &sk = map.keys(Dim::Stall);
    for (std::size_t i = 0; i < sk.size(); ++i)
        stalls[sk[i]] += map.counts(Dim::Stall)[i];
    const std::vector<std::string> &bk = map.keys(Dim::Bucket);
    for (std::size_t i = 0; i < bk.size(); ++i)
        buckets[bk[i]] += map.counts(Dim::Bucket)[i];
    const std::vector<std::string> &ok = map.keys(Dim::Outcome);
    for (std::size_t i = 0; i < ok.size(); ++i) {
        std::vector<std::string> f = splitTabs(ok[i]);
        if (f.size() != 4) {
            // A malformed composite key would silently vanish from the
            // report; fail loudly instead (runner bug).
            throw std::runtime_error(
                "coverage outcome key is not test\\tpolicy\\tmachine"
                "\\tkey: '" + ok[i] + "'");
        }
        outcomes[{f[0], f[1], f[2], f[3]}] +=
            map.counts(Dim::Outcome)[i];
    }
}

void
StandingCoverage::addMachine(const std::string &name,
                             const std::string &protocol, int cacheLevels)
{
    MachineMeta &m = machines[name];
    m.protocol = protocol;
    m.cacheLevels = cacheLevels;
}

void
StandingCoverage::mergeFrom(const StandingCoverage &other)
{
    runs += other.runs;
    meta.insert(other.meta.begin(), other.meta.end());
    for (const auto &[name, mm] : other.machines)
        machines[name] = mm;
    for (const auto &[k, n] : other.transitions)
        transitions[k] += n;
    for (const auto &[k, n] : other.stalls)
        stalls[k] += n;
    for (const auto &[k, n] : other.buckets)
        buckets[k] += n;
    for (const auto &[k, n] : other.outcomes)
        outcomes[k] += n;
}

void
StandingCoverage::write(std::ostream &os) const
{
    os << "wocover\t" << kVersion << "\n";
    os << "meta\truns\t" << runs << "\n";
    for (const auto &[k, v] : meta)
        os << "meta\t" << fieldSafe(k) << "\t" << fieldSafe(v) << "\n";
    for (const auto &[name, mm] : machines) {
        os << "machine\t" << fieldSafe(name) << "\t"
           << fieldSafe(mm.protocol) << "\t" << mm.cacheLevels << "\n";
    }
    for (const auto &[k, n] : transitions) {
        os << "trans\t" << k[0] << "\t" << k[1] << "\t" << k[2] << "\t"
           << n << "\n";
    }
    for (const auto &[k, n] : stalls)
        os << "stall\t" << fieldSafe(k) << "\t" << n << "\n";
    for (const auto &[k, n] : buckets)
        os << "bucket\t" << fieldSafe(k) << "\t" << n << "\n";
    for (const auto &[k, n] : outcomes) {
        os << "outcome\t" << fieldSafe(k[0]) << "\t" << fieldSafe(k[1])
           << "\t" << fieldSafe(k[2]) << "\t" << fieldSafe(k[3]) << "\t"
           << n << "\n";
    }
}

StandingCoverage
StandingCoverage::read(std::istream &is)
{
    StandingCoverage rep;
    std::string line;
    int lineno = 0;
    bool sawHeader = false;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::vector<std::string> f = splitTabs(line);
        if (!sawHeader) {
            if (f.size() != 2 || f[0] != "wocover")
                badLine(lineno, "missing 'wocover <version>' header");
            if (f[1] != std::to_string(kVersion))
                badLine(lineno, "unsupported wocover version '" + f[1] +
                                    "'");
            sawHeader = true;
            continue;
        }
        const std::string &tag = f[0];
        if (tag == "meta") {
            if (f.size() != 3)
                badLine(lineno, "meta needs 2 fields");
            if (f[1] == "runs")
                rep.runs += parseCount(f[2], lineno);
            else
                rep.meta.insert({f[1], f[2]});
        } else if (tag == "machine") {
            if (f.size() != 4)
                badLine(lineno, "machine needs 3 fields");
            rep.addMachine(f[1], f[2],
                           static_cast<int>(parseCount(f[3], lineno)));
        } else if (tag == "trans") {
            if (f.size() != 5)
                badLine(lineno, "trans needs 4 fields");
            rep.transitions[{f[1], f[2], f[3]}] +=
                parseCount(f[4], lineno);
        } else if (tag == "stall") {
            if (f.size() != 3)
                badLine(lineno, "stall needs 2 fields");
            rep.stalls[f[1]] += parseCount(f[2], lineno);
        } else if (tag == "bucket") {
            if (f.size() != 3)
                badLine(lineno, "bucket needs 2 fields");
            rep.buckets[f[1]] += parseCount(f[2], lineno);
        } else if (tag == "outcome") {
            if (f.size() != 6)
                badLine(lineno, "outcome needs 5 fields");
            rep.outcomes[{f[1], f[2], f[3], f[4]}] +=
                parseCount(f[5], lineno);
        } else {
            badLine(lineno, "unknown section '" + tag + "'");
        }
    }
    if (!sawHeader)
        throw std::runtime_error("wocover: empty document");
    return rep;
}

StandingCoverage
StandingCoverage::readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("wocover: cannot open " + path);
    return read(in);
}

void
renderHeatmap(std::ostream &os, const StandingCoverage &rep)
{
    std::set<std::string> unknown;
    for (const auto &[k, n] : rep.transitions) {
        ProtocolKind pk;
        if (!parseProtocolName(k[0], pk))
            unknown.insert(k[0]);
    }

    for (int ki = 0; ki < kNumProtocolKinds; ++ki) {
        ProtocolKind kind = static_cast<ProtocolKind>(ki);
        const CoherenceProtocol &proto = CoherenceProtocol::get(kind);

        auto count = [&](LineState s, LineEvent e) -> std::uint64_t {
            auto it = rep.transitions.find(
                {toString(kind), toString(s), toString(e)});
            return it == rep.transitions.end() ? 0 : it->second;
        };

        int legal = 0, hit = 0;
        std::uint64_t touched = 0;
        for (int s = 0; s < kNumLineStates; ++s) {
            for (int e = 0; e < kNumLineEvents; ++e) {
                LineState ls = static_cast<LineState>(s);
                LineEvent le = static_cast<LineEvent>(e);
                if (!proto.legal(ls, le))
                    continue;
                ++legal;
                std::uint64_t n = count(ls, le);
                touched += n;
                if (n)
                    ++hit;
            }
        }

        os << proto.name() << ": " << hit << "/" << legal
           << " legal transitions hit";
        if (touched == 0) {
            // Never exercised at all: a 0/14 grid would read as 14
            // gaps when the report simply has no runs of this
            // protocol. Say so and skip the grid.
            os << " (not exercised by this report)\n\n";
            continue;
        }
        os << "\n";

        os << std::setw(4) << "";
        for (int e = 0; e < kNumLineEvents; ++e)
            os << std::setw(9) << kEventShort[e];
        os << "\n";
        for (int s = 0; s < kNumLineStates; ++s) {
            LineState ls = static_cast<LineState>(s);
            if (!proto.hasState(ls))
                continue;
            os << std::setw(4) << toString(ls);
            for (int e = 0; e < kNumLineEvents; ++e) {
                LineEvent le = static_cast<LineEvent>(e);
                std::ostringstream cell;
                if (!proto.legal(ls, le))
                    cell << "-";
                else
                    cell << count(ls, le);
                os << std::setw(9) << cell.str();
            }
            os << "\n";
        }
        os << "\n";
    }

    for (const std::string &name : unknown) {
        os << name << ": unknown protocol, raw counts\n";
        for (const auto &[k, n] : rep.transitions) {
            if (k[0] == name) {
                os << "  " << k[1] << " x " << k[2] << ": " << n
                   << "\n";
            }
        }
        os << "\n";
    }
}

CoverageGaps
findGaps(const StandingCoverage &rep)
{
    CoverageGaps gaps;
    for (int ki = 0; ki < kNumProtocolKinds; ++ki) {
        ProtocolKind kind = static_cast<ProtocolKind>(ki);
        const CoherenceProtocol &proto = CoherenceProtocol::get(kind);
        bool touched = false;
        for (const auto &[k, n] : rep.transitions)
            if (k[0] == toString(kind) && n)
                touched = true;
        if (!touched)
            continue;
        for (int s = 0; s < kNumLineStates; ++s) {
            for (int e = 0; e < kNumLineEvents; ++e) {
                LineState ls = static_cast<LineState>(s);
                LineEvent le = static_cast<LineEvent>(e);
                if (!proto.legal(ls, le))
                    continue;
                auto it = rep.transitions.find(
                    {toString(kind), toString(ls), toString(le)});
                if (it != rep.transitions.end() && it->second)
                    continue;
                const LineTransition &t = proto.on(ls, le);
                gaps.unhitTransitions.push_back(
                    std::string(proto.name()) + ": " + toString(ls) +
                    " x " + toString(le) + " (" + toString(t.action) +
                    " -> " + toString(t.next) + ")");
            }
        }
    }
    for (const auto &[k, n] : rep.outcomes) {
        if (n == 0) {
            gaps.unobservedOutcomes.push_back(k[0] + " / " + k[1] +
                                              " / " + k[2] + ": {" +
                                              k[3] + "}");
        }
    }
    return gaps;
}

void
renderGaps(std::ostream &os, const StandingCoverage &rep)
{
    CoverageGaps gaps = findGaps(rep);
    if (gaps.empty()) {
        os << "no gaps: every exercised protocol table is fully hit "
              "and every allowed outcome was observed\n";
        return;
    }
    if (!gaps.unhitTransitions.empty()) {
        os << "unhit legal transitions ("
           << gaps.unhitTransitions.size() << "):\n";
        for (const std::string &g : gaps.unhitTransitions)
            os << "  " << g << "\n";
    }
    if (!gaps.unobservedOutcomes.empty()) {
        os << "allowed-but-unobserved outcomes ("
           << gaps.unobservedOutcomes.size() << "):\n";
        for (const std::string &g : gaps.unobservedOutcomes)
            os << "  " << g << "\n";
    }
}

namespace {

/** Generic covered->uncovered / uncovered->covered comparison. */
template <typename Map, typename Render>
void
diffDim(const Map &oldMap, const Map &newMap, const char *what,
        std::vector<std::string> &losses, std::vector<std::string> &gains,
        Render render)
{
    for (const auto &[k, n] : oldMap) {
        if (n == 0)
            continue;
        auto it = newMap.find(k);
        if (it == newMap.end()) {
            losses.push_back(std::string(what) + " " + render(k) +
                             ": covered (" + std::to_string(n) +
                             ") -> absent");
        } else if (it->second == 0) {
            losses.push_back(std::string(what) + " " + render(k) +
                             ": covered (" + std::to_string(n) +
                             ") -> 0");
        }
    }
    for (const auto &[k, n] : newMap) {
        if (n == 0)
            continue;
        auto it = oldMap.find(k);
        if (it == oldMap.end() || it->second == 0)
            gains.push_back(std::string(what) + " " + render(k));
    }
}

} // namespace

CoverageDiff
diffStanding(const StandingCoverage &oldRep, const StandingCoverage &newRep)
{
    CoverageDiff diff;
    auto trans3 = [](const std::array<std::string, 3> &k) {
        return k[0] + " " + k[1] + " x " + k[2];
    };
    auto plain = [](const std::string &k) { return k; };
    auto outcome4 = [](const std::array<std::string, 4> &k) {
        return k[0] + " / " + k[1] + " / " + k[2] + " {" + k[3] + "}";
    };
    diffDim(oldRep.transitions, newRep.transitions, "transition",
            diff.regressions, diff.gains, trans3);
    diffDim(oldRep.stalls, newRep.stalls, "stall", diff.regressions,
            diff.gains, plain);
    diffDim(oldRep.outcomes, newRep.outcomes, "outcome",
            diff.regressions, diff.gains, outcome4);
    diffDim(oldRep.buckets, newRep.buckets, "bucket", diff.bucketLosses,
            diff.gains, plain);
    return diff;
}

void
renderDiff(std::ostream &os, const CoverageDiff &diff)
{
    if (!diff.regressions.empty()) {
        os << "coverage regressions (" << diff.regressions.size()
           << "):\n";
        for (const std::string &r : diff.regressions)
            os << "  " << r << "\n";
    }
    if (!diff.bucketLosses.empty()) {
        os << "latency-bucket losses (informational, "
           << diff.bucketLosses.size() << "):\n";
        for (const std::string &r : diff.bucketLosses)
            os << "  " << r << "\n";
    }
    if (!diff.gains.empty())
        os << "newly covered: " << diff.gains.size() << " cells\n";
    if (diff.regressions.empty())
        os << "no coverage regressions\n";
}

} // namespace wo
