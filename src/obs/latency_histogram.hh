/**
 * @file
 * Log2-bucketed latency histogram backed by StatSet counters.
 *
 * Bucket 0 holds zero-tick samples; bucket i (i >= 1) holds values in
 * [2^(i-1), 2^i - 1]; the last bucket absorbs everything at or above
 * 2^(kBuckets-2). Each bucket is mirrored into a StatSet slot
 * ("<prefix>.bucket_07": 64..127 ticks) together with ".count",
 * ".total" and a Kind::Max ".max", so histograms merge correctly across
 * campaign shards and appear in dumpJson like any other stat.
 *
 * StatSet handles are interned lazily on the first record(): a histogram
 * owned by a component with no trace sink attached never touches the
 * registry, keeping tracing-off stat output byte-identical.
 */

#ifndef WO_OBS_LATENCY_HISTOGRAM_HH
#define WO_OBS_LATENCY_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/coverage.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wo {

/** A power-of-two latency histogram (see file comment for bucketing). */
class LatencyHistogram
{
  public:
    /** Bucket 0 plus 32 log2 buckets plus one overflow bucket. */
    static constexpr int kBuckets = 34;

    LatencyHistogram(StatSet &stats, std::string prefix)
        : stats_(stats), prefix_(std::move(prefix))
    {
        counts_.fill(0);
    }

    /** Bucket for @p v: 0 for 0, floor(log2(v)) + 1 otherwise, capped.
     * Constant-time: this runs per latency sample when coverage is
     * enabled, where a shift loop is measurable. */
    static int
    bucketIndex(Tick v)
    {
        if (v == 0)
            return 0;
        int b = 64 - __builtin_clzll(static_cast<unsigned long long>(v));
        return b < kBuckets - 1 ? b : kBuckets - 1;
    }

    /** Smallest value bucket @p i holds. */
    static Tick
    bucketLow(int i)
    {
        return i == 0 ? 0 : Tick{1} << (i - 1);
    }

    /** Largest value bucket @p i holds (the overflow bucket is open). */
    static Tick
    bucketHigh(int i)
    {
        if (i == 0)
            return 0;
        if (i >= kBuckets - 1)
            return ~Tick{0};
        return (Tick{1} << i) - 1;
    }

    /** Record one sample (bumps local counts and the StatSet mirror,
     * plus the coverage bucket row when a CoverageMap is installed). */
    void record(Tick v);

    /**
     * Coverage-only sample: note @p v's bucket for the installed
     * CoverageMap without touching local counts or the StatSet (and
     * without interning any handles). The `if (sink_)` guards that
     * keep tracing-off reports byte-identical skip record() entirely;
     * their else-branches call this so bucket *occupancy* is still
     * observed when only coverage is enabled. No-op with no map
     * installed. Samples land in a private pending array and reach
     * the map when the installing CoverageScope closes — this is a
     * per-message/per-op path, and even an interned-id map bump per
     * sample shows up in the trace_overhead coverage gate.
     */
    void
    coverOnly(Tick v)
    {
        if (activeCoverage() != nullptr)
            coverPending(bucketIndex(v));
    }

    /**
     * Zero the local counts for reuse. The StatSet mirror is NOT
     * touched here — the owner resets the whole StatSet alongside —
     * but already-interned handles stay valid for the next record().
     */
    void reset()
    {
        counts_.fill(0);
        count_ = 0;
        total_ = 0;
        max_ = 0;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t total() const { return total_; }
    Tick maxValue() const { return max_; }
    const std::array<std::uint64_t, kBuckets> &buckets() const
    {
        return counts_;
    }

    const std::string &prefix() const { return prefix_; }

    /** Aligned text rendering (non-empty buckets only). */
    void render(std::ostream &os, int indent = 0) const;

  private:
    void internHandles();

    /** Bump the pending delta for @p bucket, registering the deferred
     * flush on the first sample of a cycle. */
    void
    coverPending(int bucket)
    {
        ++cov_pending_[bucket];
        if (!cov_dirty_) {
            cov_dirty_ = true;
            registerCoverageFlush(this, &LatencyHistogram::flushCoverage);
        }
    }

    /** Deferred-flush callback: add pending deltas to @p cov (dropped
     * when null) and rearm. */
    static void flushCoverage(void *self, CoverageMap *cov);

    StatSet &stats_;
    std::string prefix_;
    bool interned_ = false;
    std::array<StatHandle, kBuckets> bucket_handles_;
    StatHandle count_handle_;
    StatHandle total_handle_;
    StatHandle max_handle_;

    /** Per-sample deltas awaiting a deferred flush (see coverOnly).
     * Interned-id caching lives in a thread-local shared by all
     * histograms (see latency_histogram.cc) because campaign jobs
     * construct fresh histograms per run. */
    std::array<std::uint64_t, kBuckets> cov_pending_{};
    bool cov_dirty_ = false;

    std::array<std::uint64_t, kBuckets> counts_;
    std::uint64_t count_ = 0;
    std::uint64_t total_ = 0;
    Tick max_ = 0;
};

} // namespace wo

#endif // WO_OBS_LATENCY_HISTOGRAM_HH
