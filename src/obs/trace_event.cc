#include "obs/trace_event.hh"

#include <sstream>
#include <stdexcept>

namespace wo {

const char *
toString(TraceComp c)
{
    switch (c) {
      case TraceComp::Proc: return "proc";
      case TraceComp::Cache: return "cache";
      case TraceComp::Dir: return "dir";
      case TraceComp::Net: return "net";
      case TraceComp::Mem: return "mem";
      case TraceComp::Port: return "port";
      case TraceComp::Log: return "log";
    }
    return "?";
}

const char *
toString(TraceKind k)
{
    switch (k) {
      case TraceKind::Issue: return "issue";
      case TraceKind::WbInsert: return "wb_insert";
      case TraceKind::WbForward: return "wb_forward";
      case TraceKind::Commit: return "commit";
      case TraceKind::GloballyPerformed: return "globally_performed";
      case TraceKind::StallBegin: return "stall_begin";
      case TraceKind::StallEnd: return "stall_end";
      case TraceKind::Hit: return "hit";
      case TraceKind::Miss: return "miss";
      case TraceKind::MissStalled: return "miss_stalled";
      case TraceKind::CounterInc: return "counter_inc";
      case TraceKind::CounterDec: return "counter_dec";
      case TraceKind::ReserveSet: return "reserve_set";
      case TraceKind::ReserveClear: return "reserve_clear";
      case TraceKind::InvApplied: return "inv_applied";
      case TraceKind::InvAcked: return "inv_acked";
      case TraceKind::RecallQueued: return "recall_queued";
      case TraceKind::RecallServiced: return "recall_serviced";
      case TraceKind::StateChange: return "state_change";
      case TraceKind::InvSent: return "inv_sent";
      case TraceKind::WriteAckSent: return "write_ack_sent";
      case TraceKind::RecallSent: return "recall_sent";
      case TraceKind::MsgSend: return "msg_send";
      case TraceKind::MemService: return "mem_service";
      case TraceKind::PortRequest: return "port_request";
      case TraceKind::PortResponse: return "port_response";
      case TraceKind::LogMessage: return "log";
    }
    return "?";
}

std::uint32_t
parseTraceFilter(const std::string &list)
{
    std::uint32_t mask = 0;
    std::istringstream in(list);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (item.empty())
            continue;
        if (item == "all") {
            mask |= kAllTraceComps;
            continue;
        }
        bool known = false;
        for (int c = 0; c < kNumTraceComps; ++c) {
            TraceComp comp = static_cast<TraceComp>(c);
            if (item == toString(comp)) {
                mask |= traceCompBit(comp);
                known = true;
                break;
            }
        }
        if (!known) {
            throw std::runtime_error(
                "unknown trace component '" + item +
                "' (expected proc,cache,dir,net,mem,port,log or all)");
        }
    }
    if (mask == 0)
        throw std::runtime_error("empty trace filter");
    return mask;
}

} // namespace wo
