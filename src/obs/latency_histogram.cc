#include "obs/latency_histogram.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace wo {

void
LatencyHistogram::internHandles()
{
    for (int i = 0; i < kBuckets; ++i) {
        std::string name = prefix_ + ".bucket_";
        if (i < 10)
            name += '0';
        name += std::to_string(i);
        bucket_handles_[i] = stats_.handle(name);
    }
    count_handle_ = stats_.handle(prefix_ + ".count");
    total_handle_ = stats_.handle(prefix_ + ".total");
    max_handle_ = stats_.handle(prefix_ + ".max", StatSet::Kind::Max);
    interned_ = true;
}

void
LatencyHistogram::record(Tick v)
{
    if (!interned_)
        internHandles();
    int b = bucketIndex(v);
    ++counts_[b];
    ++count_;
    total_ += v;
    if (v > max_)
        max_ = v;
    stats_.inc(bucket_handles_[b]);
    stats_.inc(count_handle_);
    stats_.inc(total_handle_, v);
    stats_.maxOf(max_handle_, v);
}

void
LatencyHistogram::render(std::ostream &os, int indent) const
{
    std::string pad(indent, ' ');
    os << pad << prefix_ << ": " << count_ << " samples";
    if (count_ > 0) {
        os << ", mean " << total_ / count_ << ", max " << max_;
    }
    os << "\n";
    if (count_ == 0)
        return;
    std::uint64_t peak = 0;
    for (std::uint64_t c : counts_)
        peak = std::max(peak, c);
    for (int i = 0; i < kBuckets; ++i) {
        if (counts_[i] == 0)
            continue;
        std::ostringstream range_oss;
        if (i >= kBuckets - 1)
            range_oss << ">=" << bucketLow(i);
        else if (bucketLow(i) == bucketHigh(i))
            range_oss << bucketLow(i);
        else
            range_oss << bucketLow(i) << ".." << bucketHigh(i);
        int bar = peak ? static_cast<int>(counts_[i] * 40 / peak) : 0;
        os << pad << "  " << std::setw(22) << range_oss.str() << " "
           << std::setw(8) << counts_[i] << " " << std::string(bar, '#')
           << "\n";
    }
}

} // namespace wo
