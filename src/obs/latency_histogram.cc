#include "obs/latency_histogram.hh"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace wo {

namespace {

/**
 * Interned bucket-id cache shared by every histogram on this thread,
 * keyed by instance-stripped family prefix. Campaign runs construct a
 * fresh System (and so fresh histograms) per job, but install the same
 * CoverageMap for thousands of runs — a per-histogram cache would
 * rebuild and re-hash all kBuckets key strings every run, which shows
 * up in the trace_overhead coverage gate.
 */
struct BucketIdCache
{
    CoverageMap *map = nullptr;
    std::uint64_t gen = 0;
    std::unordered_map<std::string,
                       std::array<std::uint32_t, LatencyHistogram::kBuckets>>
        ids;
};

thread_local BucketIdCache t_bucket_ids;

} // namespace

void
LatencyHistogram::internHandles()
{
    for (int i = 0; i < kBuckets; ++i) {
        std::string name = prefix_ + ".bucket_";
        if (i < 10)
            name += '0';
        name += std::to_string(i);
        bucket_handles_[i] = stats_.handle(name);
    }
    count_handle_ = stats_.handle(prefix_ + ".count");
    total_handle_ = stats_.handle(prefix_ + ".total");
    max_handle_ = stats_.handle(prefix_ + ".max", StatSet::Kind::Max);
    interned_ = true;
}

void
LatencyHistogram::flushCoverage(void *self, CoverageMap *cov)
{
    auto *h = static_cast<LatencyHistogram *>(self);
    if (cov != nullptr) {
        BucketIdCache &cache = t_bucket_ids;
        if (cov != cache.map || cov->generation() != cache.gen) {
            cache.ids.clear();
            cache.map = cov;
            cache.gen = cov->generation();
        }
        auto [it, fresh] =
            cache.ids.try_emplace(stripInstance(h->prefix_));
        if (fresh) {
            for (int i = 0; i < kBuckets; ++i) {
                std::string key = it->first + "/bucket_";
                if (i < 10)
                    key += '0';
                key += std::to_string(i);
                it->second[i] =
                    cov->internKey(CoverageMap::Dim::Bucket, key);
            }
        }
        for (int i = 0; i < kBuckets; ++i) {
            if (h->cov_pending_[i] != 0) {
                cov->hit(CoverageMap::Dim::Bucket, it->second[i],
                         h->cov_pending_[i]);
            }
        }
    }
    h->cov_pending_.fill(0);
    h->cov_dirty_ = false;
}

void
LatencyHistogram::record(Tick v)
{
    if (!interned_)
        internHandles();
    int b = bucketIndex(v);
    ++counts_[b];
    ++count_;
    total_ += v;
    if (v > max_)
        max_ = v;
    stats_.inc(bucket_handles_[b]);
    stats_.inc(count_handle_);
    stats_.inc(total_handle_, v);
    stats_.maxOf(max_handle_, v);
    if (activeCoverage() != nullptr)
        coverPending(b);
}

void
LatencyHistogram::render(std::ostream &os, int indent) const
{
    std::string pad(indent, ' ');
    os << pad << prefix_ << ": " << count_ << " samples";
    if (count_ > 0) {
        os << ", mean " << total_ / count_ << ", max " << max_;
    }
    os << "\n";
    if (count_ == 0)
        return;
    std::uint64_t peak = 0;
    for (std::uint64_t c : counts_)
        peak = std::max(peak, c);
    for (int i = 0; i < kBuckets; ++i) {
        if (counts_[i] == 0)
            continue;
        std::ostringstream range_oss;
        if (i >= kBuckets - 1)
            range_oss << ">=" << bucketLow(i);
        else if (bucketLow(i) == bucketHigh(i))
            range_oss << bucketLow(i);
        else
            range_oss << bucketLow(i) << ".." << bucketHigh(i);
        int bar = peak ? static_cast<int>(counts_[i] * 40 / peak) : 0;
        os << pad << "  " << std::setw(22) << range_oss.str() << " "
           << std::setw(8) << counts_[i] << " " << std::string(bar, '#')
           << "\n";
    }
}

} // namespace wo
