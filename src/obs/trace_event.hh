/**
 * @file
 * Structured trace events: the record type every simulator layer emits
 * into a TraceSink when tracing is enabled.
 *
 * Design contract (the "disabled path"): components hold a raw
 * `TraceSink *` that is null by default. Emitting is always guarded by a
 * single pointer test — no TraceEvent is constructed, no string is
 * formatted and nothing allocates unless a sink is attached. This is the
 * same discipline as the pooled event kernel: observability must cost
 * one predictable branch when off.
 *
 * Events are *semantically* tagged (issue, globally-performed, counter
 * increment, reserve set, stall begin, ...) rather than free-form text,
 * so exporters can map them onto timeline phases (Chrome trace b/e/B/E/C
 * events) and analyses can aggregate without parsing.
 */

#ifndef WO_OBS_TRACE_EVENT_HH
#define WO_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace wo {

/** Which simulator layer emitted an event. */
enum class TraceComp : std::uint8_t {
    Proc,  ///< processor dispatch / issue / stall
    Cache, ///< coherent cache (Section 5 counter + reserve machinery)
    Dir,   ///< directory bank
    Net,   ///< interconnect (bus or general network)
    Mem,   ///< memory module (cache-less systems)
    Port,  ///< uncached processor port
    Log,   ///< free-form Log::emit lines routed through the sink
};

inline constexpr int kNumTraceComps = 7;

/** What happened. Grouped by the component that emits the kind. */
enum class TraceKind : std::uint8_t {
    // Processor.
    Issue,             ///< memory op handed to the memory system
    WbInsert,          ///< write entered the write buffer
    WbForward,         ///< read satisfied by a buffered write
    Commit,            ///< op committed (value bound / local copy updated)
    GloballyPerformed, ///< op globally performed
    StallBegin,        ///< dispatch stalled; detail = stall reason
    StallEnd,          ///< dispatch resumed

    // Cache.
    Hit,            ///< access satisfied locally
    Miss,           ///< miss sent to the directory; text = request type
    MissStalled,    ///< miss queued (reserve bound / no evictable way)
    CounterInc,     ///< outstanding-access counter ++; aux = new value
    CounterDec,     ///< outstanding-access counter --; aux = new value
    ReserveSet,     ///< reserve bit set on a line (condition 5)
    ReserveClear,   ///< reserve bit cleared
    InvApplied,     ///< invalidation applied (line dropped or stale)
    InvAcked,       ///< invalidation acknowledgement sent
    RecallQueued,   ///< recall held on a reserved line
    RecallServiced, ///< recall serviced (line downgraded / returned)
    StateChange,    ///< protocol state transition; detail = "M->S" label

    // Directory.
    InvSent,      ///< invalidation sent to a sharer
    WriteAckSent, ///< final write-ack sent (write globally performed)
    RecallSent,   ///< recall sent to an owner

    // Interconnect / memory / uncached port.
    MsgSend,      ///< message injected; aux = delivery latency
    MemService,   ///< memory module accepted a request; aux = service delay
    PortRequest,  ///< uncached port sent a request
    PortResponse, ///< uncached port completed a request

    // Logging.
    LogMessage, ///< a Log::emit line; text = "[who] message"
};

/** Sentinel: event carries no address. */
inline constexpr Addr kNoTraceAddr = ~Addr{0};

/**
 * One structured trace record. Only fields meaningful for the kind are
 * set; the rest keep their defaults. `detail` must point at a string
 * with static storage duration (event taxonomy tags, stall reasons);
 * dynamic text goes in `text`.
 */
struct TraceEvent
{
    Tick tick = 0;
    TraceComp comp = TraceComp::Proc;
    TraceKind kind = TraceKind::Issue;
    int compId = -1;              ///< emitting component's index / node id
    ProcId proc = kNoProc;        ///< processor the event belongs to
    NodeId src = -1;              ///< message source (network events)
    NodeId dst = -1;              ///< message destination (network events)
    Addr addr = kNoTraceAddr;
    Word value = 0;
    std::uint64_t opId = 0;       ///< processor op id (0 = none)
    std::int64_t aux = 0;         ///< kind-specific scalar (counter, latency)
    std::uint8_t level = 1;       ///< cache-hierarchy level (MidCache = 2)
    const char *detail = nullptr; ///< static tag (access kind, stall reason)
    std::string text;             ///< dynamic payload (msg type, log line)
};

/** Short lowercase name ("proc", "cache", ...). */
const char *toString(TraceComp c);

/** Snake-case kind name ("issue", "globally_performed", ...). */
const char *toString(TraceKind k);

/** Filter bit for one component. */
inline std::uint32_t
traceCompBit(TraceComp c)
{
    return std::uint32_t{1} << static_cast<unsigned>(c);
}

/** Mask accepting every component. */
inline constexpr std::uint32_t kAllTraceComps =
    (std::uint32_t{1} << kNumTraceComps) - 1;

/**
 * Parse a comma-separated component list ("proc,cache,net" or "all")
 * into a filter mask. Throws std::runtime_error on an unknown name.
 */
std::uint32_t parseTraceFilter(const std::string &list);

} // namespace wo

#endif // WO_OBS_TRACE_EVENT_HH
