/**
 * @file
 * Stall-reason stat families: a set of per-reason counters plus a total
 * that sums them BY CONSTRUCTION.
 *
 * Cache-level miss stalls used to be three unrelated counters
 * (stalled_by_reserve_bound / _eviction / _mshr_conflict) with no total;
 * any analysis summing them had to know the full reason list, and a new
 * protocol adding a stall reason silently broke the sum. A
 * StallReasonFamily routes every bump through one site that increments
 * both the reason and the family total, so
 *
 *     <prefix>_total == sum of every reason counter
 *
 * is an invariant of the bump path, not a reporting convention
 * (tests/test_protocols.cc asserts it after every run).
 *
 * Stat names are chosen by the component (legacy names are kept), and
 * like all StatSet handles the counters stay invisible until first
 * bumped — attaching a family to a component changes no report.
 */

#ifndef WO_OBS_STALL_STATS_HH
#define WO_OBS_STALL_STATS_HH

#include <string>
#include <vector>

#include "sim/stats.hh"

namespace wo {

/** A total counter and the reason counters that feed it. */
class StallReasonFamily
{
  public:
    StallReasonFamily() = default;

    /** @p total_name is the family's sum stat (e.g.
     * "cache0.miss_stalls_total"). */
    StallReasonFamily(StatSet &stats, const std::string &total_name)
        : stats_(&stats), total_(stats.handle(total_name))
    {
    }

    /** Register a reason counter under its full stat name. */
    StatHandle
    addReason(const std::string &name)
    {
        reasons_.push_back(stats_->handle(name));
        return reasons_.back();
    }

    /** Count one stall: bumps the reason and the total together. */
    void
    bump(StatHandle reason)
    {
        stats_->inc(reason);
        stats_->inc(total_);
    }

    /** Number of registered reasons (diagnostics). */
    std::size_t numReasons() const { return reasons_.size(); }

  private:
    StatSet *stats_ = nullptr;
    StatHandle total_;
    std::vector<StatHandle> reasons_;
};

} // namespace wo

#endif // WO_OBS_STALL_STATS_HH
