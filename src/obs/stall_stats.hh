/**
 * @file
 * Stall-reason stat families: a set of per-reason counters plus a total
 * that sums them BY CONSTRUCTION.
 *
 * Cache-level miss stalls used to be three unrelated counters
 * (stalled_by_reserve_bound / _eviction / _mshr_conflict) with no total;
 * any analysis summing them had to know the full reason list, and a new
 * protocol adding a stall reason silently broke the sum. A
 * StallReasonFamily routes every bump through one site that increments
 * both the reason and the family total, so
 *
 *     <prefix>_total == sum of every reason counter
 *
 * is an invariant of the bump path, not a reporting convention
 * (tests/test_protocols.cc asserts it after every run).
 *
 * Stat names are chosen by the component (legacy names are kept), and
 * like all StatSet handles the counters stay invisible until first
 * bumped — attaching a family to a component changes no report.
 */

#ifndef WO_OBS_STALL_STATS_HH
#define WO_OBS_STALL_STATS_HH

#include <string>
#include <vector>

#include "obs/coverage.hh"
#include "sim/stats.hh"

namespace wo {

/** A total counter and the reason counters that feed it. */
class StallReasonFamily
{
  public:
    /** Opaque reason identity: stat handle plus the family-local index
     * the coverage key is filed under. */
    struct Token
    {
        StatHandle handle;
        std::uint32_t idx = 0;
    };

    StallReasonFamily() = default;

    /** @p total_name is the family's sum stat (e.g.
     * "cache0.miss_stalls_total"). */
    StallReasonFamily(StatSet &stats, const std::string &total_name)
        : stats_(&stats), total_(stats.handle(total_name)),
          family_key_(stripInstance(total_name))
    {
    }

    /** Register a reason counter under its full stat name. */
    Token
    addReason(const std::string &name)
    {
        Token t{stats_->handle(name),
                static_cast<std::uint32_t>(reasons_.size())};
        reasons_.push_back(t.handle);
        // Coverage keys strip the owning instance ("cache3.") so every
        // cache of a machine lands on one "family/reason" row.
        cov_keys_.push_back(family_key_ + "/" + stripInstance(name));
        return t;
    }

    /** Count one stall: bumps the reason and the total together (and
     * the coverage row, when a CoverageMap is installed). */
    void
    bump(Token reason)
    {
        stats_->inc(reason.handle);
        stats_->inc(total_);
        if (CoverageMap *cov = activeCoverage())
            coverHit(cov, reason.idx);
    }

    /** Number of registered reasons (diagnostics). */
    std::size_t numReasons() const { return reasons_.size(); }

  private:
    /** Bump the coverage row via cached interned ids, re-interning
     * when the installed map (or its generation) changed — the hot
     * path must not hash key strings per stall. */
    void
    coverHit(CoverageMap *cov, std::uint32_t idx)
    {
        if (cov != cov_map_ || cov->generation() != cov_gen_) {
            cov_ids_.clear();
            for (const std::string &k : cov_keys_) {
                cov_ids_.push_back(
                    cov->internKey(CoverageMap::Dim::Stall, k));
            }
            cov_map_ = cov;
            cov_gen_ = cov->generation();
        }
        cov->hit(CoverageMap::Dim::Stall, cov_ids_[idx]);
    }

    StatSet *stats_ = nullptr;
    StatHandle total_;
    std::string family_key_;
    std::vector<StatHandle> reasons_;
    std::vector<std::string> cov_keys_;

    CoverageMap *cov_map_ = nullptr;
    std::uint64_t cov_gen_ = 0;
    std::vector<std::uint32_t> cov_ids_;
};

} // namespace wo

#endif // WO_OBS_STALL_STATS_HH
