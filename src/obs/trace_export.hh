/**
 * @file
 * Trace exporters: Chrome Trace Event Format JSON (loadable in
 * chrome://tracing and Perfetto) and a compact aligned-text timeline.
 *
 * The Chrome mapping:
 *  - each (component, id) pair becomes one "thread" (proc0, cache1,
 *    dir0, net, ...), labelled with thread_name metadata;
 *  - processor stalls are duration slices ("B"/"E") named after the
 *    stall reason;
 *  - the issue -> globally-performed life of each memory op is an async
 *    span ("b"/"e", id "p<proc>.<op>") named after the access kind;
 *  - reserve-bit set/clear on a cache line is an async span per line;
 *  - the outstanding-access counter is a Chrome counter track ("C");
 *  - everything else is a thread-scoped instant ("i").
 *
 * Output is deterministic: it depends only on the recorded event
 * sequence, which is deterministic for a fixed seed.
 */

#ifndef WO_OBS_TRACE_EXPORT_HH
#define WO_OBS_TRACE_EXPORT_HH

#include <iosfwd>
#include <vector>

#include "obs/trace_event.hh"

namespace wo {

/** Write @p events as a complete Chrome Trace Event Format document. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events);

/** Write @p events as an aligned text timeline (one line per event). */
void renderTraceText(std::ostream &os,
                     const std::vector<TraceEvent> &events);

} // namespace wo

#endif // WO_OBS_TRACE_EXPORT_HH
