/**
 * @file
 * Coverage observability: what has the whole campaign *exercised*?
 *
 * The PR-5 trace layer answers "what happened in this run"; a
 * CoverageMap answers the campaign-scale question by counting, across
 * every run that executed with a map installed:
 *
 *   - coherence-protocol transition hits, dense per
 *     (protocol, state, event) — instrumented at the single
 *     CoherenceProtocol::on() lookup site, so every L1, every MidCache
 *     probe translation and every protocol variant is covered by
 *     construction;
 *   - stall-reason activations per StallReasonFamily (and processor
 *     stall segments), keyed by instance-stripped stat names so the
 *     per-cache counters of one machine merge into one row;
 *   - latency-histogram bucket occupancy (which latency magnitudes the
 *     fleet has actually produced), recorded even when tracing is off;
 *   - policy x machine outcome coverage against the PR-7 axiomatic
 *     allowed sets (filled in by the litmus runner at aggregation).
 *
 * Overhead contract: with no map installed every instrumented site
 * costs one thread-local load and one branch (the same discipline as
 * the `if (sink_)` trace path); bench/trace_overhead gates the
 * coverage-ON path at <= 3%. Per-sample sites too hot even for an
 * interned-id bump (latency buckets) accumulate into private pending
 * arrays and flush once per scope via registerCoverageFlush().
 * Recording never touches StatSet or any simulator state, so reports
 * stay byte-identical with coverage on.
 *
 * Threading/merge model (mirrors per-job stats): each campaign job owns
 * a private CoverageMap, installed for the duration of System::run via
 * a thread-local pointer (CoverageScope); the runner merges job maps in
 * job-index order, so merged coverage is byte-identical for any thread
 * count. merge() is a per-key sum — associative and commutative
 * (tests/test_coverage.cc).
 *
 * Reset semantics: the map is owned by the campaign, not the System. A
 * pooled System reset between jobs keeps accumulating into whatever map
 * the new job installs (coverage survives System::reset); dropping the
 * pool drops nothing, because no coverage lives in the System at all.
 */

#ifndef WO_OBS_COVERAGE_HH
#define WO_OBS_COVERAGE_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "coherence/protocol.hh"

namespace wo {

/** Campaign-scale coverage counters (see file comment). */
class CoverageMap
{
  public:
    /** Named-key dimensions (the transition dimension is dense and
     * enum-indexed instead). */
    enum class Dim : std::uint8_t {
        Stall,   ///< "family/reason", instance-stripped stat names
        Bucket,  ///< "histogram/bucket_NN", instance-stripped
        Outcome, ///< "test<TAB>policy<TAB>machine<TAB>outcome key"
    };
    static constexpr int kNumDims = 3;

    CoverageMap();

    // ------------------------------------------------------------------
    // Transition dimension (dense, hot).

    /** Count one legal (protocol, state, event) transition hit. */
    void
    hitTransition(ProtocolKind k, LineState s, LineEvent e) noexcept
    {
        ++trans_[static_cast<int>(k)][static_cast<int>(s)]
                [static_cast<int>(e)];
    }

    std::uint64_t
    transitionCount(ProtocolKind k, LineState s, LineEvent e) const
    {
        return trans_[static_cast<int>(k)][static_cast<int>(s)]
                     [static_cast<int>(e)];
    }

    // ------------------------------------------------------------------
    // Named-key dimensions.

    /**
     * Intern @p key in dimension @p d, returning its dense id (stable
     * for the life of this map, until clear()). Interning alone seeds
     * the key at count 0 — how allowed-but-unobserved outcomes enter
     * the report.
     */
    std::uint32_t internKey(Dim d, const std::string &key);

    /** Bump an interned key by @p n (the hot path for cached ids). */
    void
    hit(Dim d, std::uint32_t id, std::uint64_t n = 1)
    {
        dims_[static_cast<int>(d)].counts[id] += n;
    }

    /** Intern-and-bump in one call (cold paths). */
    void
    hitKey(Dim d, const std::string &key, std::uint64_t n = 1)
    {
        hit(d, internKey(d, key), n);
    }

    /** Keys of dimension @p d in intern order (id == index). */
    const std::vector<std::string> &
    keys(Dim d) const
    {
        return dims_[static_cast<int>(d)].keys;
    }

    /** Counts of dimension @p d, parallel to keys(). */
    const std::vector<std::uint64_t> &
    counts(Dim d) const
    {
        return dims_[static_cast<int>(d)].counts;
    }

    // ------------------------------------------------------------------
    // Lifecycle.

    /** Accumulate @p other into this map (keys union, counts sum;
     * zero-count seeded keys are carried over too). */
    void merge(const CoverageMap &other);

    /** Drop every key and zero every counter. Bumps generation(): any
     * cached interned ids are invalidated. */
    void clear();

    /**
     * Identity token for call-site id caches. Unique per live map and
     * per clear() — a component may cache interned ids for the pair
     * (map pointer, generation) and re-intern when either changes
     * (a stack-allocated per-job map can reuse a sibling's address, so
     * the pointer alone is not an identity).
     */
    std::uint64_t generation() const { return gen_; }

    /** True when nothing has been recorded or seeded. */
    bool empty() const;

  private:
    struct NamedDim
    {
        std::unordered_map<std::string, std::uint32_t> ids;
        std::vector<std::string> keys;
        std::vector<std::uint64_t> counts;
    };

    std::uint64_t trans_[kNumProtocolKinds][kNumLineStates]
                        [kNumLineEvents];
    std::array<NamedDim, kNumDims> dims_;
    std::uint64_t gen_;
};

namespace detail {
extern thread_local CoverageMap *t_active_coverage;

/** Run (and clear) this thread's deferred coverage flushes against the
 * currently-active map. Called by CoverageScope around every map
 * switch, so pending deltas always land in the map that was installed
 * while they accumulated. */
void flushPendingCoverage();
} // namespace detail

/**
 * Defer a coverage flush to the end of the current scope: @p fn is
 * called once with @p obj and the active map (null if none — the
 * callee must drop its pending state either way) when the installing
 * CoverageScope closes or the active map changes. Hot recorders
 * (latency histograms) accumulate into private pending arrays and
 * register themselves on first use instead of touching the shared map
 * per sample; a callback registers at most once per flush cycle
 * (callers guard with their own dirty flag).
 */
void registerCoverageFlush(void *obj, void (*fn)(void *, CoverageMap *));

/** The map installed on this thread; null = coverage disabled. Every
 * instrumented site branches on this (the one-branch disabled path). */
inline CoverageMap *
activeCoverage() noexcept
{
    return detail::t_active_coverage;
}

/**
 * RAII installer for the thread-local active map. System::runStreaming
 * wraps execution in a scope built from SystemConfig::coverage, so a
 * System with no coverage configured never records into an ambient
 * map. Scopes nest; the destructor restores the previous map.
 */
class CoverageScope
{
  public:
    explicit CoverageScope(CoverageMap *map)
        : prev_(detail::t_active_coverage)
    {
        detail::flushPendingCoverage();
        detail::t_active_coverage = map;
    }
    ~CoverageScope()
    {
        detail::flushPendingCoverage();
        detail::t_active_coverage = prev_;
    }

    CoverageScope(const CoverageScope &) = delete;
    CoverageScope &operator=(const CoverageScope &) = delete;

  private:
    CoverageMap *prev_;
};

/**
 * Strip a stat name's leading component instance ("cache3.miss_stalls"
 * -> "miss_stalls") so per-instance counters of one machine land on one
 * coverage key. Names without a '.' are returned unchanged.
 */
std::string stripInstance(const std::string &stat_name);

} // namespace wo

#endif // WO_OBS_COVERAGE_HH
