#include "mem/interconnect.hh"

#include <cassert>
#include <sstream>

#include "obs/trace_sink.hh"

namespace wo {

bool
isDirRequest(MsgType t)
{
    return t == MsgType::GetS || t == MsgType::GetX ||
           t == MsgType::Upgrade;
}

std::string
toString(MsgType t)
{
    switch (t) {
      case MsgType::MemReadReq: return "MemReadReq";
      case MsgType::MemWriteReq: return "MemWriteReq";
      case MsgType::MemRmwReq: return "MemRmwReq";
      case MsgType::MemReadResp: return "MemReadResp";
      case MsgType::MemWriteResp: return "MemWriteResp";
      case MsgType::MemRmwResp: return "MemRmwResp";
      case MsgType::GetS: return "GetS";
      case MsgType::GetX: return "GetX";
      case MsgType::Upgrade: return "Upgrade";
      case MsgType::PutX: return "PutX";
      case MsgType::PutE: return "PutE";
      case MsgType::Data: return "Data";
      case MsgType::DataE: return "DataE";
      case MsgType::DataEx: return "DataEx";
      case MsgType::UpgradeAck: return "UpgradeAck";
      case MsgType::WriteAck: return "WriteAck";
      case MsgType::Inv: return "Inv";
      case MsgType::InvAck: return "InvAck";
      case MsgType::Recall: return "Recall";
      case MsgType::RecallInv: return "RecallInv";
      case MsgType::RecallData: return "RecallData";
      case MsgType::RecallDataOwned: return "RecallDataOwned";
      case MsgType::RecallInvData: return "RecallInvData";
      case MsgType::RecallNack: return "RecallNack";
      case MsgType::PutAck: return "PutAck";
    }
    return "?";
}

std::string
Msg::toString() const
{
    std::ostringstream oss;
    oss << wo::toString(type) << " " << src << "->" << dst << " [" << addr
        << "]=" << value << " req" << reqId;
    if (forSync)
        oss << " sync";
    if (ackCount)
        oss << " acks=" << ackCount;
    return oss.str();
}

void
Interconnect::attach(NodeId id, Handler h)
{
    handlers_[id] = std::move(h);
}

void
Interconnect::reset(std::uint64_t)
{
    sent_ = 0;
    lat_msg_.reset();
}

void
Interconnect::deliverAt(Tick when, Msg msg)
{
    ++sent_;
    stats_.inc(stat_msgs_);
    stats_.inc(stat_latency_total_, when - eq_.now());
    if (sink_) {
        TraceEvent ev;
        ev.tick = eq_.now();
        ev.comp = TraceComp::Net;
        ev.kind = TraceKind::MsgSend;
        ev.compId = 0;
        ev.src = msg.src;
        ev.dst = msg.dst;
        ev.addr = msg.addr;
        ev.value = msg.value;
        ev.opId = msg.reqId;
        ev.aux = static_cast<std::int64_t>(when - eq_.now());
        ev.text = toString(msg.type);
        sink_->record(ev);
        lat_msg_.record(when - eq_.now());
    } else {
        // Tracing off: bucket occupancy still reaches an installed
        // CoverageMap (no stats interned, reports unchanged).
        lat_msg_.coverOnly(when - eq_.now());
    }
    eq_.scheduleAt(when, [this, msg = std::move(msg)] {
        auto it = handlers_.find(msg.dst);
        assert(it != handlers_.end() && "message to unattached node");
        it->second(msg);
    });
}

void
Bus::send(Msg msg)
{
    // Arbitrate: the bus carries one message at a time.
    Tick start = std::max(eq_.now(), free_at_);
    free_at_ = start + cfg_.occupancy;
    deliverAt(start + cfg_.latency, std::move(msg));
}

void
GeneralNetwork::send(Msg msg)
{
    Tick lat = cfg_.base + (cfg_.jitter ? rng_.below(cfg_.jitter + 1) : 0);
    Tick when = eq_.now() + lat;
    auto key = std::make_pair(msg.src, msg.dst);
    auto it = last_delivery_.find(key);
    if (it != last_delivery_.end() && when <= it->second)
        when = it->second + 1; // point-to-point FIFO
    last_delivery_[key] = when;
    deliverAt(when, std::move(msg));
}

} // namespace wo
