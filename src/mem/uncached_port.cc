#include "mem/uncached_port.hh"

#include <cassert>

#include "obs/trace_sink.hh"

namespace wo {

UncachedPort::UncachedPort(EventQueue &eq, Interconnect &net, StatSet &stats,
                           NodeId node, NodeId mem_base, int num_mods,
                           std::string name)
    : eq_(eq), net_(net), stats_(stats), node_(node), mem_base_(mem_base),
      num_mods_(num_mods), name_(std::move(name))
{
    stat_requests_ = stats_.handle(name_ + ".requests");
    net_.attach(node_, [this](const Msg &m) { handle(m); });
}

void
UncachedPort::emitEvent(TraceKind kind, const CacheOp &op, NodeId peer)
{
    TraceEvent ev;
    ev.tick = eq_.now();
    ev.comp = TraceComp::Port;
    ev.kind = kind;
    ev.compId = node_;
    ev.proc = node_;
    ev.src = kind == TraceKind::PortRequest ? node_ : peer;
    ev.dst = kind == TraceKind::PortRequest ? peer : node_;
    ev.addr = op.addr;
    ev.opId = op.id;
    sink_->record(ev);
}

void
UncachedPort::request(const CacheOp &op)
{
    Msg m;
    m.src = node_;
    m.dst = mem_base_ + static_cast<NodeId>(op.addr) % num_mods_;
    m.addr = op.addr;
    m.reqId = op.id;
    m.forSync = isSync(op.kind);
    switch (op.kind) {
      case AccessKind::DataRead:
      case AccessKind::SyncRead:
        m.type = MsgType::MemReadReq;
        break;
      case AccessKind::DataWrite:
      case AccessKind::SyncWrite:
        m.type = MsgType::MemWriteReq;
        m.value = op.writeValue;
        break;
      case AccessKind::SyncRmw:
        m.type = MsgType::MemRmwReq;
        m.value = op.writeValue;
        break;
    }
    pending_[op.id] = Pending{op};
    stats_.inc(stat_requests_);
    if (sink_)
        emitEvent(TraceKind::PortRequest, op, m.dst);
    net_.send(m);
}

void
UncachedPort::handle(const Msg &msg)
{
    auto it = pending_.find(msg.reqId);
    assert(it != pending_.end() && "response without a pending request");
    CacheOp op = it->second.op;
    pending_.erase(it);
    assert(client_);

    Word read_value = 0;
    switch (msg.type) {
      case MsgType::MemReadResp:
      case MsgType::MemRmwResp:
        read_value = msg.value;
        break;
      case MsgType::MemWriteResp:
        break;
      default:
        assert(false && "unexpected response at uncached port");
    }
    if (sink_)
        emitEvent(TraceKind::PortResponse, op, msg.src);
    client_->opCommitted(op.id, read_value);
    client_->opGloballyPerformed(op.id);
}

} // namespace wo
