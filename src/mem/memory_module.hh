/**
 * @file
 * Memory modules for cache-less system configurations.
 *
 * Addresses are interleaved across modules (addr mod numModules). Each
 * module services one request at a time with a fixed service latency and
 * executes TestAndSet atomically — the classic "dance-hall" organization
 * assumed by Lamport's original analysis.
 */

#ifndef WO_MEM_MEMORY_MODULE_HH
#define WO_MEM_MEMORY_MODULE_HH

#include <map>

#include "mem/interconnect.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace wo {

class TraceSink;

/** One address-interleaved memory module on an interconnect. */
class MemoryModule
{
  public:
    struct Config
    {
        Tick serviceLatency = 10; ///< cycles to service one request
    };

    MemoryModule(EventQueue &eq, Interconnect &net, StatSet &stats,
                 NodeId node, const Config &cfg);

    /** Handle an incoming request (attached to the interconnect). */
    void handle(const Msg &msg);

    /** Directly set backing-store contents (initialization). */
    void poke(Addr addr, Word value) { store_[addr] = value; }

    /** Directly read backing-store contents (final state inspection). */
    Word peek(Addr addr) const;

    /** Drop all contents and pending service time for reuse. */
    void
    reset()
    {
        store_.clear();
        free_at_ = 0;
    }

    /** Attach a structured trace sink (nullptr detaches). Emits one
     * MemService event per request. */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

  private:
    EventQueue &eq_;
    Interconnect &net_;
    StatSet &stats_;
    NodeId node_;
    Config cfg_;
    StatHandle stat_requests_; ///< interned "mem.requests"
    std::map<Addr, Word> store_;
    Tick free_at_ = 0;

    /** Structured tracing (null = disabled path). */
    TraceSink *sink_ = nullptr;
};

} // namespace wo

#endif // WO_MEM_MEMORY_MODULE_HH
