/**
 * @file
 * Memory port for cache-less configurations: every access travels over
 * the interconnect to an address-interleaved memory module.
 *
 * Commit and globally-performed coincide at the response: an uncached
 * access is performed everywhere once the (single) memory copy is
 * read/updated and the response is back.
 */

#ifndef WO_MEM_UNCACHED_PORT_HH
#define WO_MEM_UNCACHED_PORT_HH

#include <map>

#include "cpu/mem_port.hh"
#include "mem/interconnect.hh"
#include "obs/trace_event.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace wo {

class TraceSink;

/** Processor-side port that talks directly to memory modules. */
class UncachedPort : public MemPort
{
  public:
    /**
     * @param node      this port's interconnect node id
     * @param mem_base  node id of memory module 0
     * @param num_mods  number of modules (addr mod num_mods)
     */
    UncachedPort(EventQueue &eq, Interconnect &net, StatSet &stats,
                 NodeId node, NodeId mem_base, int num_mods,
                 std::string name);

    void setPortClient(CacheClient *c) override { client_ = c; }

    void request(const CacheOp &op) override;

    /** Incoming response handler. */
    void handle(const Msg &msg);

    /** Drop in-flight requests for reuse (the client stays attached). */
    void reset() { pending_.clear(); }

    /** Attach a structured trace sink (nullptr detaches). Emits one
     * PortRequest per access and one PortResponse per reply. */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

  private:
    struct Pending
    {
        CacheOp op;
    };

    /** Emit one structured trace event (sink_ must be non-null). */
    void emitEvent(TraceKind kind, const CacheOp &op, NodeId peer);

    EventQueue &eq_;
    Interconnect &net_;
    StatSet &stats_;
    NodeId node_;
    NodeId mem_base_;
    int num_mods_;
    std::string name_;
    StatHandle stat_requests_; ///< interned name_ + ".requests"
    CacheClient *client_ = nullptr;
    std::map<std::uint64_t, Pending> pending_;

    /** Structured tracing (null = disabled path). */
    TraceSink *sink_ = nullptr;
};

} // namespace wo

#endif // WO_MEM_UNCACHED_PORT_HH
