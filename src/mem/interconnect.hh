/**
 * @file
 * Interconnect models: a serializing shared bus and a general
 * interconnection network.
 *
 * These are the two interconnect families of the paper's Figure 1. The bus
 * delivers messages one at a time in global FIFO order; the general network
 * delivers each message with independently jittered latency, so messages
 * between *different* node pairs can be reordered — the behaviour that
 * breaks sequential consistency in cache-less systems even when each
 * processor issues accesses in program order (Figure 1, case 2).
 *
 * Messages between the *same* (source, destination) pair are delivered in
 * FIFO order on both interconnects; the directory protocol relies on
 * point-to-point ordering (as real virtual-channel networks provide).
 */

#ifndef WO_MEM_INTERCONNECT_HH
#define WO_MEM_INTERCONNECT_HH

#include <functional>
#include <map>
#include <vector>

#include "mem/message.hh"
#include "obs/latency_histogram.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wo {

class TraceSink;

/** Abstract interconnect: nodes attach handlers and send messages. */
class Interconnect
{
  public:
    using Handler = std::function<void(const Msg &)>;

    Interconnect(EventQueue &eq, StatSet &stats, std::string name)
        : eq_(eq), stats_(stats), name_(std::move(name)),
          lat_msg_(stats, name_ + ".lat_msg")
    {
        stat_msgs_ = stats_.handle(name_ + ".msgs");
        stat_latency_total_ = stats_.handle(name_ + ".latency_total");
    }

    virtual ~Interconnect() = default;

    /** Register the message handler for node @p id. */
    void attach(NodeId id, Handler h);

    /**
     * Restore construction-time state for reuse (handlers stay
     * attached — the owning components persist across runs). @p seed
     * re-seeds the jitter stream on a GeneralNetwork and is ignored by
     * the Bus, mirroring how SystemConfig carries a net seed for both.
     */
    virtual void reset(std::uint64_t seed);

    /** Inject @p msg; it will be delivered to msg.dst's handler later. */
    virtual void send(Msg msg) = 0;

    /** Messages injected so far. */
    std::uint64_t sent() const { return sent_; }

    /** Attach a structured trace sink (nullptr detaches). Emits one
     * MsgSend event per delivery and feeds the message-latency
     * histogram; with no sink the per-message cost is one null test. */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

    /** Per-message network latency histogram (samples only accumulate
     * while a trace sink is attached). */
    const LatencyHistogram &msgLatencyHistogram() const { return lat_msg_; }

  protected:
    /** Deliver at absolute time @p when (keeps stats). */
    void deliverAt(Tick when, Msg msg);

    EventQueue &eq_;
    StatSet &stats_;
    std::string name_;
    /** Interned handles for the per-message hot path. */
    StatHandle stat_msgs_;
    StatHandle stat_latency_total_;
    std::map<NodeId, Handler> handlers_;
    std::uint64_t sent_ = 0;

    /** Structured tracing (null = disabled path). */
    TraceSink *sink_ = nullptr;
    LatencyHistogram lat_msg_;
};

/**
 * A shared bus: one message occupies the bus for a fixed number of cycles;
 * all traffic is serialized in global FIFO order.
 */
class Bus : public Interconnect
{
  public:
    struct Config
    {
        Tick latency = 4;   ///< propagation delay once on the bus
        Tick occupancy = 1; ///< cycles the bus is held per message
    };

    Bus(EventQueue &eq, StatSet &stats, const Config &cfg,
        std::string name = "bus")
        : Interconnect(eq, stats, std::move(name)), cfg_(cfg)
    {}

    void send(Msg msg) override;

    void
    reset(std::uint64_t seed) override
    {
        Interconnect::reset(seed);
        free_at_ = 0;
    }

  private:
    Config cfg_;
    Tick free_at_ = 0;
};

/**
 * A general interconnection network: per-message latency is base plus a
 * deterministic pseudo-random jitter. Point-to-point FIFO order is
 * enforced per (src, dst) pair; messages on different pairs reorder
 * freely.
 */
class GeneralNetwork : public Interconnect
{
  public:
    struct Config
    {
        Tick base = 6;          ///< minimum latency
        Tick jitter = 8;        ///< max extra latency (uniform in [0, jitter])
        std::uint64_t seed = 1; ///< jitter stream seed
    };

    GeneralNetwork(EventQueue &eq, StatSet &stats, const Config &cfg,
                   std::string name = "net")
        : Interconnect(eq, stats, std::move(name)), cfg_(cfg),
          rng_(cfg.seed)
    {}

    void send(Msg msg) override;

    void
    reset(std::uint64_t seed) override
    {
        Interconnect::reset(seed);
        cfg_.seed = seed;
        rng_ = Rng(seed);
        last_delivery_.clear();
    }

  private:
    Config cfg_;
    Rng rng_;
    /** Last delivery time per (src, dst), for point-to-point FIFO. */
    std::map<std::pair<NodeId, NodeId>, Tick> last_delivery_;
};

} // namespace wo

#endif // WO_MEM_INTERCONNECT_HH
