/**
 * @file
 * Messages exchanged over the simulated interconnects.
 *
 * One flat message type serves both layers:
 *  - the uncached layer (processor <-> memory module requests/responses),
 *    used for the cache-less configurations of Figure 1;
 *  - the directory coherence protocol (cache <-> directory), used for the
 *    cache-based configurations and the Section 5 implementation.
 */

#ifndef WO_MEM_MESSAGE_HH
#define WO_MEM_MESSAGE_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace wo {

/** All message types of both protocol layers. */
enum class MsgType {
    // --- uncached layer: processor <-> memory module ---
    MemReadReq,   ///< read request
    MemWriteReq,  ///< write request
    MemRmwReq,    ///< atomic read-modify-write (TestAndSet)
    MemReadResp,  ///< read response (value)
    MemWriteResp, ///< write acknowledgement
    MemRmwResp,   ///< rmw response (old value)

    // --- coherence protocol: cache <-> directory ---
    GetS,       ///< cache requests a shared copy (read miss)
    GetX,       ///< cache requests an exclusive copy (write miss)
    Upgrade,    ///< sharer requests ownership without data
    PutX,       ///< owner writes back and relinquishes a dirty line
    PutE,       ///< holder relinquishes a clean exclusive/forward line
                ///< (no data; keeps owner/forwarder tracking exact)
    Data,       ///< directory supplies data; for writes, invalidations of
                ///< other copies may still be in flight (commit, not GP)
    DataE,      ///< directory supplies data clean-exclusive (read miss,
                ///< no other copies; MESI-family E fill)
    DataEx,     ///< directory supplies data with exclusivity and no
                ///< outstanding invalidations (commit + globally performed)
    UpgradeAck, ///< ownership granted to an upgrading sharer; ackCount
                ///< carries the number of invalidations in flight
    WriteAck,   ///< all invalidations acknowledged: write is globally
                ///< performed
    Inv,        ///< directory tells a sharer to invalidate
    InvAck,     ///< sharer acknowledges an invalidation
    Recall,     ///< directory asks the owner to downgrade to shared and
                ///< return data (servicing a remote read)
    RecallInv,  ///< directory asks the owner to invalidate and return data
                ///< (servicing a remote write / sync)
    RecallData, ///< owner's response to Recall (now shared)
    RecallDataOwned, ///< owner's response to Recall retaining ownership
                     ///< (MOESI: the line stays dirty at the owner)
    RecallInvData, ///< owner's response to RecallInv (now invalid)
    RecallNack, ///< owner no longer holds the line (writeback raced)
    PutAck,     ///< directory acknowledges a writeback
};

/** True for coherence requests a directory serializes per line. */
bool isDirRequest(MsgType t);

/** Short printable name. */
std::string toString(MsgType t);

/** One message in flight on an interconnect. */
struct Msg
{
    MsgType type = MsgType::MemReadReq;
    NodeId src = -1;
    NodeId dst = -1;
    Addr addr = 0;
    Word value = 0;

    /** Requester-side transaction identifier (processor op id or cache
     * MSHR id), echoed in responses. */
    std::uint64_t reqId = 0;

    /** Number of pending invalidations (UpgradeAck). */
    int ackCount = 0;

    /** Request originates from a synchronization operation. Recalls carry
     * the flag of the request that triggered them so the owner can apply
     * the reserve-bit rule. */
    bool forSync = false;

    /** One-line rendering for traces. */
    std::string toString() const;
};

} // namespace wo

#endif // WO_MEM_MESSAGE_HH
