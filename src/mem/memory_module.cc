#include "mem/memory_module.hh"

#include <cassert>

#include "obs/trace_sink.hh"

namespace wo {

MemoryModule::MemoryModule(EventQueue &eq, Interconnect &net, StatSet &stats,
                           NodeId node, const Config &cfg)
    : eq_(eq), net_(net), stats_(stats), node_(node), cfg_(cfg)
{
    stat_requests_ = stats_.handle("mem.requests");
    net_.attach(node, [this](const Msg &m) { handle(m); });
}

Word
MemoryModule::peek(Addr addr) const
{
    auto it = store_.find(addr);
    return it == store_.end() ? 0 : it->second;
}

void
MemoryModule::handle(const Msg &msg)
{
    // Serialize: one request at a time per module.
    Tick start = std::max(eq_.now(), free_at_);
    Tick done = start + cfg_.serviceLatency;
    free_at_ = done;
    stats_.inc(stat_requests_);
    if (sink_) {
        TraceEvent ev;
        ev.tick = eq_.now();
        ev.comp = TraceComp::Mem;
        ev.kind = TraceKind::MemService;
        ev.compId = node_;
        ev.src = msg.src;
        ev.dst = node_;
        ev.addr = msg.addr;
        ev.value = msg.value;
        ev.opId = msg.reqId;
        ev.aux = static_cast<std::int64_t>(done - eq_.now());
        ev.text = toString(msg.type);
        sink_->record(ev);
    }

    Msg req = msg;
    eq_.scheduleAt(done, [this, req] {
        Msg resp;
        resp.src = node_;
        resp.dst = req.src;
        resp.addr = req.addr;
        resp.reqId = req.reqId;
        resp.forSync = req.forSync;
        switch (req.type) {
          case MsgType::MemReadReq:
            resp.type = MsgType::MemReadResp;
            resp.value = peek(req.addr);
            break;
          case MsgType::MemWriteReq:
            store_[req.addr] = req.value;
            resp.type = MsgType::MemWriteResp;
            resp.value = req.value;
            break;
          case MsgType::MemRmwReq:
            resp.type = MsgType::MemRmwResp;
            resp.value = peek(req.addr); // old value returned
            store_[req.addr] = req.value;
            break;
          default:
            assert(false && "memory module got a non-memory message");
            return;
        }
        net_.send(resp);
    });
}

} // namespace wo
