#include "coherence/protocol.hh"

#include "obs/coverage.hh"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <stdexcept>

namespace wo {

const char *
toString(LineState s)
{
    switch (s) {
      case LineState::Invalid: return "I";
      case LineState::Shared: return "S";
      case LineState::Exclusive: return "E";
      case LineState::Modified: return "M";
      case LineState::Owned: return "O";
      case LineState::Forward: return "F";
    }
    return "?";
}

const char *
transitionLabel(LineState from, LineState to)
{
    // Static storage: trace-event detail strings must outlive the sink.
    static const char *const labels[kNumLineStates][kNumLineStates] = {
        {"I->I", "I->S", "I->E", "I->M", "I->O", "I->F"},
        {"S->I", "S->S", "S->E", "S->M", "S->O", "S->F"},
        {"E->I", "E->S", "E->E", "E->M", "E->O", "E->F"},
        {"M->I", "M->S", "M->E", "M->M", "M->O", "M->F"},
        {"O->I", "O->S", "O->E", "O->M", "O->O", "O->F"},
        {"F->I", "F->S", "F->E", "F->M", "F->O", "F->F"},
    };
    return labels[static_cast<int>(from)][static_cast<int>(to)];
}

const char *
toString(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::Msi: return "msi";
      case ProtocolKind::Mesi: return "mesi";
      case ProtocolKind::Moesi: return "moesi";
      case ProtocolKind::Mesif: return "mesif";
    }
    return "?";
}

ProtocolKind
parseProtocol(const std::string &name)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (n == "msi")
        return ProtocolKind::Msi;
    if (n == "mesi")
        return ProtocolKind::Mesi;
    if (n == "moesi")
        return ProtocolKind::Moesi;
    if (n == "mesif")
        return ProtocolKind::Mesif;
    throw std::runtime_error("unknown protocol '" + name +
                             "' (known: msi, mesi, moesi, mesif)");
}

const char *
toString(LineEvent e)
{
    switch (e) {
      case LineEvent::Load: return "Load";
      case LineEvent::Store: return "Store";
      case LineEvent::Evict: return "Evict";
      case LineEvent::FillShared: return "FillShared";
      case LineEvent::FillExclusive: return "FillExclusive";
      case LineEvent::FillModified: return "FillModified";
      case LineEvent::UpgradeOwnership: return "UpgradeOwnership";
      case LineEvent::Invalidate: return "Invalidate";
      case LineEvent::FwdGetS: return "FwdGetS";
      case LineEvent::FwdGetX: return "FwdGetX";
    }
    return "?";
}

const char *
toString(LineAction a)
{
    switch (a) {
      case LineAction::None: return "None";
      case LineAction::Hit: return "Hit";
      case LineAction::SilentUpgrade: return "SilentUpgrade";
      case LineAction::IssueGetS: return "IssueGetS";
      case LineAction::IssueGetX: return "IssueGetX";
      case LineAction::IssueUpgrade: return "IssueUpgrade";
      case LineAction::WritebackData: return "WritebackData";
      case LineAction::RelinquishClean: return "RelinquishClean";
      case LineAction::DropSilent: return "DropSilent";
      case LineAction::RespondData: return "RespondData";
      case LineAction::RespondDataOwned: return "RespondDataOwned";
      case LineAction::RespondDataInv: return "RespondDataInv";
      case LineAction::AckInvalidate: return "AckInvalidate";
    }
    return "?";
}

CoherenceProtocol::CoherenceProtocol(ProtocolKind kind, const char *name)
    : kind_(kind), name_(name)
{
}

void
CoherenceProtocol::allow(LineState s)
{
    state_mask_ |= std::uint8_t{1} << static_cast<int>(s);
}

void
CoherenceProtocol::add(LineState s, LineEvent e, LineState next,
                       LineAction action)
{
    assert(hasState(s) && hasState(next) && "transition outside state set");
    Slot &slot = table_[static_cast<int>(s)][static_cast<int>(e)];
    assert(!slot.legal && "duplicate transition");
    slot.t.next = next;
    slot.t.action = action;
    slot.legal = true;
}

const LineTransition &
CoherenceProtocol::on(LineState s, LineEvent e) const
{
    const Slot &slot = table_[static_cast<int>(s)][static_cast<int>(e)];
    if (!slot.legal) {
        throw std::logic_error(std::string("protocol ") + name_ +
                               ": illegal transition (" + toString(s) +
                               ", " + toString(e) + ")");
    }
    // The single lookup site every cache level and protocol variant
    // funnels through: transition coverage for the whole hierarchy
    // (L1s, MidCache probe translations) costs one thread-local load
    // and a branch here.
    if (CoverageMap *cov = activeCoverage())
        cov->hitTransition(kind_, s, e);
    return slot.t;
}

namespace {

using St = LineState;
using Ev = LineEvent;
using Ac = LineAction;

} // namespace

const CoherenceProtocol &
CoherenceProtocol::get(ProtocolKind kind)
{
    // Each table is built once; the builder lambdas keep the protocol
    // differences adjacent and auditable.
    static const CoherenceProtocol msi = [] {
        CoherenceProtocol p(ProtocolKind::Msi, "MSI");
        p.allow(St::Invalid);
        p.allow(St::Shared);
        p.allow(St::Modified);
        // I: misses and fills.
        p.add(St::Invalid, Ev::Load, St::Invalid, Ac::IssueGetS);
        p.add(St::Invalid, Ev::Store, St::Invalid, Ac::IssueGetX);
        p.add(St::Invalid, Ev::FillShared, St::Shared, Ac::None);
        p.add(St::Invalid, Ev::FillModified, St::Modified, Ac::None);
        // S: read hits; stores upgrade; clean drop; remote writes Inv us.
        p.add(St::Shared, Ev::Load, St::Shared, Ac::Hit);
        p.add(St::Shared, Ev::Store, St::Shared, Ac::IssueUpgrade);
        p.add(St::Shared, Ev::Evict, St::Invalid, Ac::DropSilent);
        p.add(St::Shared, Ev::UpgradeOwnership, St::Modified, Ac::None);
        p.add(St::Shared, Ev::Invalidate, St::Invalid, Ac::AckInvalidate);
        // M: local hits; dirty writeback; recalls demote or invalidate.
        p.add(St::Modified, Ev::Load, St::Modified, Ac::Hit);
        p.add(St::Modified, Ev::Store, St::Modified, Ac::Hit);
        p.add(St::Modified, Ev::Evict, St::Invalid, Ac::WritebackData);
        p.add(St::Modified, Ev::FwdGetS, St::Shared, Ac::RespondData);
        p.add(St::Modified, Ev::FwdGetX, St::Invalid, Ac::RespondDataInv);
        return p;
    }();

    static const CoherenceProtocol mesi = [] {
        CoherenceProtocol p = msi;
        p.kind_ = ProtocolKind::Mesi;
        p.name_ = "MESI";
        p.allow(St::Exclusive);
        // E: clean sole copy — silent upgrade, clean relinquish.
        p.add(St::Invalid, Ev::FillExclusive, St::Exclusive, Ac::None);
        p.add(St::Exclusive, Ev::Load, St::Exclusive, Ac::Hit);
        p.add(St::Exclusive, Ev::Store, St::Modified, Ac::SilentUpgrade);
        p.add(St::Exclusive, Ev::Evict, St::Invalid, Ac::RelinquishClean);
        p.add(St::Exclusive, Ev::FwdGetS, St::Shared, Ac::RespondData);
        p.add(St::Exclusive, Ev::FwdGetX, St::Invalid, Ac::RespondDataInv);
        return p;
    }();

    static const CoherenceProtocol moesi = [] {
        CoherenceProtocol p = mesi;
        p.kind_ = ProtocolKind::Moesi;
        p.name_ = "MOESI";
        p.allow(St::Owned);
        // A recalled dirty line stays owned: the cache keeps supplying
        // data and the dirty value is written back on eviction.
        p.table_[static_cast<int>(St::Modified)]
                [static_cast<int>(Ev::FwdGetS)] = {
            {St::Owned, Ac::RespondDataOwned}, true};
        p.add(St::Owned, Ev::Load, St::Owned, Ac::Hit);
        p.add(St::Owned, Ev::Store, St::Owned, Ac::IssueUpgrade);
        p.add(St::Owned, Ev::Evict, St::Invalid, Ac::WritebackData);
        p.add(St::Owned, Ev::UpgradeOwnership, St::Modified, Ac::None);
        p.add(St::Owned, Ev::FwdGetS, St::Owned, Ac::RespondDataOwned);
        p.add(St::Owned, Ev::FwdGetX, St::Invalid, Ac::RespondDataInv);
        return p;
    }();

    static const CoherenceProtocol mesif = [] {
        CoherenceProtocol p = mesi;
        p.kind_ = ProtocolKind::Mesif;
        p.name_ = "MESIF";
        p.allow(St::Forward);
        // The most recent requester holds the line in Forward and
        // services the next read (FwdGetS demotes it to plain Shared);
        // it relinquishes with PutE so the directory's forwarder
        // pointer stays exact.
        p.table_[static_cast<int>(St::Invalid)]
                [static_cast<int>(Ev::FillShared)] = {
            {St::Forward, Ac::None}, true};
        p.add(St::Forward, Ev::Load, St::Forward, Ac::Hit);
        p.add(St::Forward, Ev::Store, St::Forward, Ac::IssueUpgrade);
        p.add(St::Forward, Ev::Evict, St::Invalid, Ac::RelinquishClean);
        p.add(St::Forward, Ev::UpgradeOwnership, St::Modified, Ac::None);
        p.add(St::Forward, Ev::Invalidate, St::Invalid, Ac::AckInvalidate);
        p.add(St::Forward, Ev::FwdGetS, St::Shared, Ac::RespondData);
        return p;
    }();

    switch (kind) {
      case ProtocolKind::Msi: return msi;
      case ProtocolKind::Mesi: return mesi;
      case ProtocolKind::Moesi: return moesi;
      case ProtocolKind::Mesif: return mesif;
    }
    return msi;
}

} // namespace wo
