/**
 * @file
 * Per-processor cache with a directory-based write-back invalidation
 * protocol, implementing the hardware mechanisms of Section 5 of the
 * paper:
 *
 *  - lockup-free operation with MSHRs (multiple outstanding misses);
 *  - a per-processor counter of outstanding accesses: incremented on every
 *    cache miss, decremented when a line arrives for a read, when a line
 *    arrives exclusively for a write with no invalidations pending, and
 *    when the directory's final write-ack arrives;
 *  - a reserve bit per line: set when a synchronization operation commits
 *    while the counter is positive; all reserve bits clear when the
 *    counter reads zero; recalls targeting a reserved line are queued
 *    until the counter reads zero; reserved lines are never evicted;
 *  - optional bounding of the number of misses sent while any line is
 *    reserved (Section 5.3's fairness refinement);
 *  - optional treatment of read-only synchronization (Test) as an
 *    ordinary read (the Section 6 refinement).
 *
 * Writes commit when they modify the local copy; the directory may forward
 * a line in parallel with outstanding invalidations, so commit and
 * globally-performed are distinct events, reported separately to the
 * client.
 */

#ifndef WO_COHERENCE_CACHE_HH
#define WO_COHERENCE_CACHE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "coherence/protocol.hh"
#include "cpu/isa.hh"
#include "cpu/mem_port.hh"
#include "mem/interconnect.hh"
#include "obs/stall_stats.hh"
#include "obs/trace_event.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wo {

class TraceSink;

/** Configuration of one cache. */
struct CacheConfig
{
    /** Coherence protocol (selects the transition table). */
    ProtocolKind protocol = ProtocolKind::Msi;

    /** Number of sets; 0 models an unbounded cache (no evictions). */
    int numSets = 0;

    /** Associativity (used when numSets > 0). */
    int ways = 4;

    /** Latency of a cache hit (commit delay). */
    Tick hitLatency = 1;

    /** Extra delay before acknowledging an invalidation; models how long
     * a remote write takes to be globally performed (Figure 3 sweeps). */
    Tick invApplyDelay = 0;

    /** Treat read-only synchronization (Test) as a write at the coherence
     * level (true = the DRF0 example implementation of Section 5; false =
     * the Section 6 refinement). */
    bool syncReadsAsWrites = true;

    /** Enable the reserve-bit mechanism (condition 5). */
    bool useReserveBits = true;

    /** Max misses sent to memory while any line is reserved
     * (-1 = unlimited). */
    int maxMissesWhileReserved = -1;

    /**
     * Reserve-clearing discipline.
     *
     * true (default): the "dynamic solution" the paper points to — each
     * reserve waits only on the misses generated before its
     * synchronization committed (per-miss sequence numbers), so a later
     * sync miss to a second lock never holds an earlier reserve. This is
     * deadlock-free for DRF0 programs with any number of locks.
     *
     * false: the literal Section 5.3 mechanism — all reserve bits clear
     * only when the counter reads zero. With two or more locks this can
     * deadlock (P0 reserves lock A while its miss on lock B is queued at
     * P1, which reserves B while its miss on A is queued at P0); exposed
     * as an ablation.
     */
    bool epochReserveClearing = true;
};

/**
 * A lockup-free, single-word-line, write-back cache attached to a
 * directory over an interconnect.
 */
class Cache : public MemPort
{
  public:
    /**
     * @param node      this cache's interconnect node id
     * @param dir_base  node id of directory bank 0
     * @param num_dirs  number of directory banks (addr mod num_dirs)
     */
    Cache(EventQueue &eq, Interconnect &net, StatSet &stats, NodeId node,
          NodeId dir_base, int num_dirs, const CacheConfig &cfg,
          std::string name);

    /** Register the processor-side client. */
    void setPortClient(CacheClient *c) override { client_ = c; }

    /** Processor hands the cache one memory operation. */
    void request(const CacheOp &op) override { access(op); }

    /** Core of request(): classify hit/miss and act. */
    void access(const CacheOp &op);

    /** The paper's outstanding-access counter. */
    int counter() const { return counter_; }

    /** True if any line currently has its reserve bit set. */
    bool anyReserved() const { return reserved_count_ > 0; }

    /** Directly install a line (test setup only). */
    void pokeLine(Addr addr, LineState state, Word data);

    /** Look up a line's state; returns false if not present. */
    bool peekLine(Addr addr, LineState *state, Word *data) const;

    /** Incoming message handler (attached to the interconnect). */
    void handle(const Msg &msg);

    /**
     * Restore construction-time state for reuse: every line, MSHR,
     * stalled queue and the outstanding-access counter are dropped.
     * The client and interconnect attachment persist. Must only be
     * called between runs (no messages in flight).
     */
    void
    reset()
    {
        lines_.clear();
        mshrs_.clear();
        inflight_fills_.clear();
        stalled_recalls_.clear();
        stalled_ops_.clear();
        outstanding_miss_seqs_.clear();
        next_miss_seq_ = 0;
        counter_ = 0;
        reserved_count_ = 0;
        misses_while_reserved_ = 0;
    }

    /** Attach a structured trace sink (nullptr detaches). Emits
     * hit/miss, counter, reserve-bit, invalidation and recall events;
     * the disabled path costs one null test per potential event. */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

    /** The protocol transition table this cache runs. */
    const CoherenceProtocol &protocol() const { return *proto_; }

  private:
    struct Line
    {
        LineState state = LineState::Shared;
        Word data = 0;
        bool reserved = false;
        /** The reserve waits only on misses generated before the
         * reserving synchronization committed (miss sequence numbers
         * below this bound) — the paper's "dynamic solution", which
         * avoids cross-lock deadlock: a later sync miss never holds an
         * earlier reserve. */
        std::uint64_t reservedUpTo = 0;
        /** A committed write on this line awaits the directory's
         * write-ack; the ops below are globally performed when it
         * arrives. */
        bool pendingGp = false;
        std::uint64_t pendingGpMissSeq = 0;
        std::vector<std::uint64_t> gpWaiters;
        Tick lastUse = 0;
    };

    struct Mshr
    {
        MsgType sent = MsgType::GetS;
        CacheOp op;
        std::uint64_t seq = 0; ///< miss sequence number
    };

    /** Coherence-level treatment of an access under this config. */
    bool treatedAsWrite(AccessKind k) const;

    /** True if @p k should set the reserve bit on commit (an "ordering"
     * synchronization under the active model). */
    bool ordersViaReserve(AccessKind k) const;

    void sendToDir(MsgType type, Addr addr, Word value, bool for_sync);

    /** Perform (commit) @p op on @p line now; client notifications are
     * delivered after @p delay ticks. */
    void commitOnLine(const CacheOp &op, Line &line, bool gp_now,
                      Tick delay = 0);

    void handleFill(const Msg &msg);
    void handleInv(const Msg &msg);
    void handleRecall(const Msg &msg);
    void serviceRecall(const Msg &msg);
    void handleWriteAck(const Msg &msg);

    void decrementCounter(std::uint64_t miss_seq);
    void updateReservations();
    void onCounterZero();

    /** Ensure room in @p addr's set; returns false if the op must stall. */
    bool makeRoomFor(Addr addr);
    void retryStalled();

    Line *findLine(Addr addr);
    int setOf(Addr addr) const;
    NodeId dirFor(Addr addr) const;

    /** Emit one structured trace event (sink_ must be non-null). */
    void emitEvent(TraceKind kind, Addr addr, std::int64_t aux = 0,
                   const char *detail = nullptr);

    /** Trace a protocol state transition (no-op when from == to or the
     * sink is detached). */
    void traceState(Addr addr, LineState from, LineState to);

    EventQueue &eq_;
    Interconnect &net_;
    StatSet &stats_;
    NodeId node_;
    NodeId dir_base_;
    int num_dirs_;
    CacheConfig cfg_;
    const CoherenceProtocol *proto_;
    std::string name_;
    CacheClient *client_ = nullptr;

    /** Interned stat handles, resolved once at construction so the hot
     * path bumps dense counters instead of hashing strings. */
    struct StatHandles
    {
        StatHandle hits;
        StatHandle misses;
        StatHandle writebacks;
        StatHandle silentDrops;
        StatHandle silentUpgrades;
        StatHandle cleanRelinquishes;
        StatHandle reserves;
        StallReasonFamily::Token stalledByReserveBound;
        StallReasonFamily::Token stalledByEviction;
        StallReasonFamily::Token stalledByMshrConflict;
        StatHandle counterMax;
        StatHandle putacks;
        StatHandle invalidations;
        StatHandle staleInvalidations;
        StatHandle recallNacks;
        StatHandle recallsQueued;
        StatHandle recallsServiced;
    };
    StatHandles stat_;

    /** Miss-stall attribution: every stall reason routes through this
     * family, so <name>.miss_stalls_total sums the stalled_by_* stats
     * by construction. */
    StallReasonFamily stalls_;

    std::map<Addr, Line> lines_;
    std::map<Addr, Mshr> mshrs_;
    std::map<int, int> inflight_fills_; ///< per-set fills in flight
    std::deque<Msg> stalled_recalls_;
    std::deque<CacheOp> stalled_ops_;
    std::set<std::uint64_t> outstanding_miss_seqs_;
    std::uint64_t next_miss_seq_ = 0;
    int counter_ = 0;
    int reserved_count_ = 0;
    int misses_while_reserved_ = 0;

    /** Structured tracing (null = disabled path). */
    TraceSink *sink_ = nullptr;
};

} // namespace wo

#endif // WO_COHERENCE_CACHE_HH
