/**
 * @file
 * Full-map directory controller for the write-back invalidation protocol
 * of Section 5.2.
 *
 * Per-line behaviour:
 *  - requests (GetS / GetX / Upgrade) are serialized per line: while a
 *    transaction is open, later requests queue at the directory — this
 *    yields the total commit order of writes (condition 2) and of
 *    synchronization operations (condition 3) per location;
 *  - a write miss on a line shared in other caches is answered with the
 *    data immediately, IN PARALLEL with the invalidations (the paper's
 *    protocol); every invalidated cache acks; when all acks are in, the
 *    directory sends its write-ack to the requester, making the write
 *    globally performed;
 *  - a request for a line exclusive in some cache is forwarded as a
 *    recall; the recall carries the forSync flag so the owner can apply
 *    the reserve-bit rule of condition 5.
 */

#ifndef WO_COHERENCE_DIRECTORY_HH
#define WO_COHERENCE_DIRECTORY_HH

#include <deque>
#include <map>
#include <set>
#include <string>

#include "coherence/protocol.hh"
#include "mem/interconnect.hh"
#include "obs/trace_event.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wo {

class TraceSink;

/** Configuration of a directory bank. */
struct DirectoryConfig
{
    /** Coherence protocol; selects the grant policy (clean-exclusive
     * fills, owned recalls, forwarder tracking) to match the caches'
     * transition tables. */
    ProtocolKind protocol = ProtocolKind::Msi;

    /** Processing latency per incoming message. */
    Tick latency = 2;
};

/** One directory bank (with integrated memory for its lines). */
class Directory
{
  public:
    Directory(EventQueue &eq, Interconnect &net, StatSet &stats, NodeId node,
              const DirectoryConfig &cfg, std::string name);

    /** Set backing-store contents (initialization). */
    void poke(Addr addr, Word value);

    /** Install a warm Shared state with the given sharer set (test and
     * warm-start setup; the caches must be poked to match). */
    void pokeShared(Addr addr, const std::set<NodeId> &sharers);

    /** Read the directory's (possibly stale while a line is owned)
     * backing store. */
    Word peek(Addr addr) const;

    /** True if no line has an open transaction (quiescence check). */
    bool idle() const;

    /** Snapshot of one line's directory state, for auditing. */
    struct LineAudit
    {
        bool known = false; ///< the directory has seen this line
        bool exclusive = false;
        bool shared = false;
        bool owned = false; ///< MOESI: dirty at owner, sharers read
        NodeId owner = -1;
        NodeId forwarder = -1; ///< MESIF designated responder
        std::set<NodeId> sharers;
        bool busy = false;
    };

    /** Audit snapshot of @p addr. */
    LineAudit audit(Addr addr) const;

    /** Incoming message handler. */
    void handle(const Msg &msg);

    /** Drop every line (state and backing store) for reuse. Must only
     * be called between runs (no open transactions). */
    void reset() { lines_.clear(); }

    /** Attach a structured trace sink (nullptr detaches). Emits
     * invalidate-sent, recall-sent and write-ack-sent events. */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

  private:
    /**
     * Directory-side line state. Exclusive covers a cache holding the
     * line E or M (the directory cannot tell — MESI's E upgrades to M
     * silently); Owned is MOESI's dirty-at-owner-with-sharers state.
     */
    enum class St { Uncached, Shared, Exclusive, Owned };

    struct Line
    {
        St st = St::Uncached;
        std::set<NodeId> sharers;
        NodeId owner = -1;

        /** MESIF: the sharer designated to service the next read (-1 =
         * none; reads are then served from memory). */
        NodeId forwarder = -1;

        Word mem = 0;

        bool busy = false;
        Msg cur;                 ///< request being serviced
        int pendingInvAcks = 0;
        bool waitingRecall = false;
        /** The current GetX already got its Data (commit) — only the
         * WriteAck remains (Owned writes wait on a recall AND
         * invalidation acks; whichever finishes last completes). */
        bool dataSent = false;
        std::deque<Msg> waiting; ///< queued requests
    };

    void process(const Msg &msg);
    void startRequest(Line &line, const Msg &msg);
    void startGetS(Line &line, const Msg &msg);
    void startGetX(Line &line, const Msg &msg);
    void startUpgradeInvs(Line &line, const Msg &msg,
                          const std::set<NodeId> &others);
    void finishWrite(Line &line);

    /** Complete the pending request after the recalled holder kept no
     * copy (RecallInvData, or a PutX/PutE that raced our recall). */
    void completeRecalledOwnerGone(Line &line);
    void completeTransaction(Line &line);

    const CoherenceProtocol &proto() const { return *proto_; }

    void reply(const Msg &req, MsgType type, Word value, int ack_count = 0);
    void sendTo(NodeId dst, MsgType type, Addr addr, Word value = 0,
                bool for_sync = false);

    /** Emit one structured trace event (sink_ must be non-null). */
    void emitEvent(TraceKind kind, Addr addr, NodeId dst);

    Line &lineOf(Addr addr);

    EventQueue &eq_;
    Interconnect &net_;
    StatSet &stats_;
    NodeId node_;
    DirectoryConfig cfg_;
    const CoherenceProtocol *proto_;
    std::string name_;

    /** Interned stat handles, resolved once at construction. */
    struct StatHandles
    {
        StatHandle requests;
        StatHandle queued;
        StatHandle recallNacks;
        StatHandle writebacks;
        StatHandle cleanRelinquishes;
        StatHandle invalidations;
        StatHandle recalls;
        StatHandle exclusiveGrants; ///< DataE clean-exclusive read fills
        StatHandle forwardRecalls;  ///< MESIF forwarder recalls
    };
    StatHandles stat_;

    std::map<Addr, Line> lines_;

    /** Structured tracing (null = disabled path). */
    TraceSink *sink_ = nullptr;
};

} // namespace wo

#endif // WO_COHERENCE_DIRECTORY_HH
