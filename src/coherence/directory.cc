#include "coherence/directory.hh"

#include <cassert>

#include "obs/trace_sink.hh"
#include "sim/logging.hh"

namespace wo {

Directory::Directory(EventQueue &eq, Interconnect &net, StatSet &stats,
                     NodeId node, const DirectoryConfig &cfg,
                     std::string name)
    : eq_(eq), net_(net), stats_(stats), node_(node), cfg_(cfg),
      proto_(&CoherenceProtocol::get(cfg.protocol)), name_(std::move(name))
{
    stat_.requests = stats_.handle(name_ + ".requests");
    stat_.queued = stats_.handle(name_ + ".queued");
    stat_.recallNacks = stats_.handle(name_ + ".recall_nacks");
    stat_.writebacks = stats_.handle(name_ + ".writebacks");
    stat_.cleanRelinquishes =
        stats_.handle(name_ + ".clean_relinquishes");
    stat_.invalidations = stats_.handle(name_ + ".invalidations");
    stat_.recalls = stats_.handle(name_ + ".recalls");
    stat_.exclusiveGrants = stats_.handle(name_ + ".exclusive_grants");
    stat_.forwardRecalls = stats_.handle(name_ + ".forward_recalls");
    net_.attach(node_, [this](const Msg &m) { handle(m); });
}

void
Directory::poke(Addr addr, Word value)
{
    lineOf(addr).mem = value;
}

void
Directory::pokeShared(Addr addr, const std::set<NodeId> &sharers)
{
    Line &l = lineOf(addr);
    l.st = sharers.empty() ? St::Uncached : St::Shared;
    l.sharers = sharers;
    l.owner = -1;
    l.forwarder = -1;
}

Word
Directory::peek(Addr addr) const
{
    auto it = lines_.find(addr);
    return it == lines_.end() ? 0 : it->second.mem;
}

bool
Directory::idle() const
{
    for (const auto &[a, l] : lines_) {
        if (l.busy || !l.waiting.empty())
            return false;
    }
    return true;
}

Directory::LineAudit
Directory::audit(Addr addr) const
{
    LineAudit a;
    auto it = lines_.find(addr);
    if (it == lines_.end())
        return a;
    a.known = true;
    a.exclusive = it->second.st == St::Exclusive;
    a.shared = it->second.st == St::Shared;
    a.owned = it->second.st == St::Owned;
    a.owner = it->second.owner;
    a.forwarder = it->second.forwarder;
    a.sharers = it->second.sharers;
    a.busy = it->second.busy;
    return a;
}

Directory::Line &
Directory::lineOf(Addr addr)
{
    return lines_[addr];
}

void
Directory::emitEvent(TraceKind kind, Addr addr, NodeId dst)
{
    TraceEvent ev;
    ev.tick = eq_.now();
    ev.comp = TraceComp::Dir;
    ev.kind = kind;
    ev.compId = node_;
    ev.src = node_;
    ev.dst = dst;
    ev.addr = addr;
    sink_->record(ev);
}

void
Directory::sendTo(NodeId dst, MsgType type, Addr addr, Word value,
                  bool for_sync)
{
    if (sink_) {
        if (type == MsgType::Inv)
            emitEvent(TraceKind::InvSent, addr, dst);
        else if (type == MsgType::Recall || type == MsgType::RecallInv)
            emitEvent(TraceKind::RecallSent, addr, dst);
    }
    Msg m;
    m.type = type;
    m.src = node_;
    m.dst = dst;
    m.addr = addr;
    m.value = value;
    m.forSync = for_sync;
    net_.send(m);
}

void
Directory::reply(const Msg &req, MsgType type, Word value, int ack_count)
{
    if (sink_ && type == MsgType::WriteAck)
        emitEvent(TraceKind::WriteAckSent, req.addr, req.src);
    Msg m;
    m.type = type;
    m.src = node_;
    m.dst = req.src;
    m.addr = req.addr;
    m.value = value;
    m.reqId = req.reqId;
    m.ackCount = ack_count;
    m.forSync = req.forSync;
    net_.send(m);
}

void
Directory::handle(const Msg &msg)
{
    // Model the directory's processing latency; fixed delay preserves
    // arrival order.
    Msg m = msg;
    eq_.scheduleAfter(cfg_.latency, [this, m] { process(m); });
}

void
Directory::process(const Msg &msg)
{
    WO_TRACE(eq_, name_, "proc " << msg.toString());
    Line &line = lineOf(msg.addr);
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::Upgrade:
        stats_.inc(stat_.requests);
        if (line.busy) {
            line.waiting.push_back(msg);
            stats_.inc(stat_.queued);
        } else {
            startRequest(line, msg);
        }
        break;

      case MsgType::InvAck:
        assert(line.busy && line.pendingInvAcks > 0 &&
               "stray invalidation ack");
        if (--line.pendingInvAcks == 0) {
            // An Owned write also waits on the owner's recall response;
            // whichever of the two finishes last completes the write.
            if (!line.waitingRecall)
                finishWrite(line);
        }
        break;

      case MsgType::RecallData:
        assert(line.busy && line.waitingRecall);
        line.waitingRecall = false;
        line.mem = msg.value;
        if (line.st == St::Shared) {
            // MESIF: the forwarder serviced the read and demoted F->S;
            // the requester becomes the new forwarder.
            line.sharers.insert(line.cur.src);
            line.forwarder = line.cur.src;
            reply(line.cur, MsgType::Data, line.mem);
            completeTransaction(line);
        } else {
            // The owner (clean-E or dirty-M) demoted itself to Shared.
            line.st = St::Shared;
            line.sharers.clear();
            line.sharers.insert(msg.src);
            line.sharers.insert(line.cur.src);
            line.owner = -1;
            line.forwarder =
                proto().usesForward() ? line.cur.src : NodeId{-1};
            reply(line.cur, MsgType::Data, line.mem);
            completeTransaction(line);
        }
        break;

      case MsgType::RecallDataOwned:
        // MOESI: the owner keeps the dirty line (M->O or O->O) and
        // forwarded the data; memory is refreshed but the owner still
        // writes back on eviction.
        assert(line.busy && line.waitingRecall);
        assert(line.cur.type == MsgType::GetS &&
               "ownership is only retained across read recalls");
        line.waitingRecall = false;
        line.mem = msg.value;
        line.st = St::Owned;
        line.owner = msg.src;
        line.sharers.insert(line.cur.src);
        reply(line.cur, MsgType::Data, line.mem);
        completeTransaction(line);
        break;

      case MsgType::RecallInvData:
        assert(line.busy && line.waitingRecall);
        line.waitingRecall = false;
        line.mem = msg.value;
        completeRecalledOwnerGone(line);
        break;

      case MsgType::RecallNack:
        // The holder's writeback overtook our recall; the PutX/PutE
        // (FIFO-ahead of this nack) already completed that transaction.
        // A new recall may already be pending — necessarily to a
        // different holder.
        assert(!(line.waitingRecall &&
                 (line.owner == msg.src || line.forwarder == msg.src)) &&
               "recall nack from the holder we are waiting on");
        stats_.inc(stat_.recallNacks);
        break;

      case MsgType::PutX:
        if (line.busy && line.waitingRecall && line.owner == msg.src) {
            // Writeback raced with our recall: use it as the recall
            // response; the owner gave up its copy.
            line.waitingRecall = false;
            line.mem = msg.value;
            sendTo(msg.src, MsgType::PutAck, msg.addr);
            completeRecalledOwnerGone(line);
        } else if (line.st == St::Owned && line.owner == msg.src) {
            // MOESI owner evicts its dirty-shared line; the remaining
            // sharers keep clean copies of the same value.
            line.mem = msg.value;
            line.owner = -1;
            line.st = line.sharers.empty() ? St::Uncached : St::Shared;
            sendTo(msg.src, MsgType::PutAck, msg.addr);
            stats_.inc(stat_.writebacks);
        } else {
            assert(line.st == St::Exclusive && line.owner == msg.src &&
                   "writeback from a non-owner");
            line.st = St::Uncached;
            line.owner = -1;
            line.mem = msg.value;
            sendTo(msg.src, MsgType::PutAck, msg.addr);
            stats_.inc(stat_.writebacks);
        }
        break;

      case MsgType::PutE:
        // A clean exclusive (E) or forward (F) copy was relinquished:
        // no data moves, memory is already current.
        if (line.busy && line.waitingRecall && line.owner == msg.src) {
            // Our recall raced with the relinquish; complete from
            // memory as if the recall found no copy.
            line.waitingRecall = false;
            sendTo(msg.src, MsgType::PutAck, msg.addr);
            stats_.inc(stat_.cleanRelinquishes);
            completeRecalledOwnerGone(line);
        } else if (line.busy && line.waitingRecall &&
                   line.st == St::Shared && line.forwarder == msg.src) {
            // The forwarder we recalled for a read gave up its copy:
            // serve the read from memory; the requester becomes the
            // new forwarder.
            line.waitingRecall = false;
            line.sharers.erase(msg.src);
            sendTo(msg.src, MsgType::PutAck, msg.addr);
            stats_.inc(stat_.cleanRelinquishes);
            line.sharers.insert(line.cur.src);
            line.forwarder = line.cur.src;
            reply(line.cur, MsgType::Data, line.mem);
            completeTransaction(line);
        } else {
            if (line.st == St::Exclusive && line.owner == msg.src) {
                line.st = St::Uncached;
                line.owner = -1;
            } else {
                line.sharers.erase(msg.src);
                if (line.forwarder == msg.src)
                    line.forwarder = -1;
                if (!line.busy && line.st == St::Shared &&
                    line.sharers.empty()) {
                    line.st = St::Uncached;
                }
            }
            sendTo(msg.src, MsgType::PutAck, msg.addr);
            stats_.inc(stat_.cleanRelinquishes);
        }
        break;

      default:
        assert(false && "unexpected message at directory");
    }
}

void
Directory::startRequest(Line &line, const Msg &msg)
{
    if (msg.type == MsgType::GetS) {
        startGetS(line, msg);
    } else if (msg.type == MsgType::GetX) {
        startGetX(line, msg);
    } else {
        // Upgrade: honored for a sharer of a Shared line or the owner
        // of an Owned line (its sharers just need invalidating);
        // otherwise (the copy was invalidated while the upgrade was in
        // flight, or a non-owner wants a dirty-shared line) fall back
        // to the full GetX path — the requester's MSHR accepts either
        // response.
        bool honored =
            (line.st == St::Shared && line.sharers.count(msg.src)) ||
            (line.st == St::Owned && line.owner == msg.src);
        if (honored) {
            std::set<NodeId> others = line.sharers;
            others.erase(msg.src);
            line.forwarder = -1;
            if (others.empty()) {
                line.st = St::Exclusive;
                line.owner = msg.src;
                line.sharers.clear();
                reply(msg, MsgType::UpgradeAck, 0, 0);
            } else {
                startUpgradeInvs(line, msg, others);
            }
        } else {
            startGetX(line, msg);
        }
    }
}

void
Directory::startUpgradeInvs(Line &line, const Msg &msg,
                            const std::set<NodeId> &others)
{
    line.busy = true;
    line.cur = msg;
    line.pendingInvAcks = static_cast<int>(others.size());
    reply(msg, MsgType::UpgradeAck, 0, static_cast<int>(others.size()));
    for (NodeId n : others)
        sendTo(n, MsgType::Inv, msg.addr);
    stats_.inc(stat_.invalidations, others.size());
}

void
Directory::startGetS(Line &line, const Msg &msg)
{
    switch (line.st) {
      case St::Uncached:
        if (proto().grantsExclusiveClean()) {
            // MESI-family: nobody else caches the line, so grant it
            // clean-exclusive — a later store upgrades silently.
            line.st = St::Exclusive;
            line.owner = msg.src;
            reply(msg, MsgType::DataE, line.mem);
            stats_.inc(stat_.exclusiveGrants);
            break;
        }
        line.st = St::Shared;
        line.sharers.insert(msg.src);
        reply(msg, MsgType::Data, line.mem);
        break;
      case St::Shared:
        if (proto().usesForward() && line.forwarder != -1 &&
            line.forwarder != msg.src) {
            // MESIF: the designated forwarder services the read (and
            // demotes to plain Shared); the requester takes over as
            // forwarder when the data arrives.
            line.busy = true;
            line.cur = msg;
            line.waitingRecall = true;
            sendTo(line.forwarder, MsgType::Recall, msg.addr, 0,
                   msg.forSync);
            stats_.inc(stat_.recalls);
            stats_.inc(stat_.forwardRecalls);
            break;
        }
        line.st = St::Shared;
        line.sharers.insert(msg.src);
        if (proto().usesForward())
            line.forwarder = msg.src;
        reply(msg, MsgType::Data, line.mem);
        break;
      case St::Exclusive:
        assert(line.owner != msg.src && "owner re-requesting its line");
        line.busy = true;
        line.cur = msg;
        line.waitingRecall = true;
        sendTo(line.owner, MsgType::Recall, msg.addr, 0, msg.forSync);
        stats_.inc(stat_.recalls);
        break;
      case St::Owned:
        assert(line.owner != msg.src && "owner re-requesting its line");
        line.busy = true;
        line.cur = msg;
        line.waitingRecall = true;
        sendTo(line.owner, MsgType::Recall, msg.addr, 0, msg.forSync);
        stats_.inc(stat_.recalls);
        break;
    }
}

void
Directory::startGetX(Line &line, const Msg &msg)
{
    switch (line.st) {
      case St::Uncached:
        line.st = St::Exclusive;
        line.owner = msg.src;
        reply(msg, MsgType::DataEx, line.mem);
        break;
      case St::Shared: {
        line.sharers.erase(msg.src); // defensive: requester's copy is gone
        line.forwarder = -1;
        if (line.sharers.empty()) {
            line.st = St::Exclusive;
            line.owner = msg.src;
            reply(msg, MsgType::DataEx, line.mem);
            break;
        }
        // The paper's protocol: forward the line in parallel with the
        // invalidations; the final WriteAck marks global performance.
        line.busy = true;
        line.cur = msg;
        line.pendingInvAcks = static_cast<int>(line.sharers.size());
        reply(msg, MsgType::Data, line.mem);
        for (NodeId n : line.sharers)
            sendTo(n, MsgType::Inv, msg.addr);
        stats_.inc(stat_.invalidations, line.sharers.size());
        break;
      }
      case St::Exclusive:
        assert(line.owner != msg.src && "owner re-requesting its line");
        line.busy = true;
        line.cur = msg;
        line.waitingRecall = true;
        sendTo(line.owner, MsgType::RecallInv, msg.addr, 0, msg.forSync);
        stats_.inc(stat_.recalls);
        break;
      case St::Owned: {
        // MOESI write to a dirty-shared line: recall the owner's data
        // AND invalidate the sharers, in parallel. The write completes
        // when both the recall response and every ack are in.
        assert(line.owner != msg.src && "owner re-requesting its line");
        line.busy = true;
        line.cur = msg;
        line.waitingRecall = true;
        line.dataSent = false;
        sendTo(line.owner, MsgType::RecallInv, msg.addr, 0, msg.forSync);
        stats_.inc(stat_.recalls);
        line.sharers.erase(msg.src);
        line.forwarder = -1;
        line.pendingInvAcks = static_cast<int>(line.sharers.size());
        for (NodeId n : line.sharers)
            sendTo(n, MsgType::Inv, msg.addr);
        if (!line.sharers.empty())
            stats_.inc(stat_.invalidations, line.sharers.size());
        break;
      }
    }
}

void
Directory::finishWrite(Line &line)
{
    // All invalidations acknowledged: the write is globally performed.
    line.st = St::Exclusive;
    line.owner = line.cur.src;
    line.sharers.clear();
    line.forwarder = -1;
    reply(line.cur, MsgType::WriteAck, 0);
    completeTransaction(line);
}

void
Directory::completeRecalledOwnerGone(Line &line)
{
    const Msg &req = line.cur;
    if (req.type == MsgType::GetS) {
        if (proto().grantsExclusiveClean()) {
            // The recalled copy is gone, so the reader is alone: grant
            // clean-exclusive, as for an uncached line.
            line.st = St::Exclusive;
            line.owner = req.src;
            line.sharers.clear();
            line.forwarder = -1;
            reply(req, MsgType::DataE, line.mem);
            stats_.inc(stat_.exclusiveGrants);
        } else {
            line.st = St::Shared;
            line.sharers.clear();
            line.sharers.insert(req.src);
            line.owner = -1;
            reply(req, MsgType::Data, line.mem);
        }
        completeTransaction(line);
    } else if (line.pendingInvAcks > 0) {
        // Owned write: the owner's copy is gone but sharer
        // invalidations are still outstanding. Forward the line now
        // (the write commits); the last ack sends the WriteAck.
        line.dataSent = true;
        reply(req, MsgType::Data, line.mem);
    } else {
        // GetX or demoted Upgrade: ownership transfers wholesale; no
        // invalidations remain, so the write is globally performed on
        // arrival of the exclusive line.
        line.st = St::Exclusive;
        line.owner = req.src;
        line.sharers.clear();
        line.forwarder = -1;
        reply(req, MsgType::DataEx, line.mem);
        completeTransaction(line);
    }
}

void
Directory::completeTransaction(Line &line)
{
    line.busy = false;
    line.pendingInvAcks = 0;
    line.waitingRecall = false;
    line.dataSent = false;
    while (!line.busy && !line.waiting.empty()) {
        Msg next = line.waiting.front();
        line.waiting.pop_front();
        startRequest(line, next);
    }
}

} // namespace wo
