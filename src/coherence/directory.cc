#include "coherence/directory.hh"

#include <cassert>

#include "obs/trace_sink.hh"
#include "sim/logging.hh"

namespace wo {

Directory::Directory(EventQueue &eq, Interconnect &net, StatSet &stats,
                     NodeId node, const DirectoryConfig &cfg,
                     std::string name)
    : eq_(eq), net_(net), stats_(stats), node_(node), cfg_(cfg),
      name_(std::move(name))
{
    stat_.requests = stats_.handle(name_ + ".requests");
    stat_.queued = stats_.handle(name_ + ".queued");
    stat_.recallNacks = stats_.handle(name_ + ".recall_nacks");
    stat_.writebacks = stats_.handle(name_ + ".writebacks");
    stat_.invalidations = stats_.handle(name_ + ".invalidations");
    stat_.recalls = stats_.handle(name_ + ".recalls");
    net_.attach(node_, [this](const Msg &m) { handle(m); });
}

void
Directory::poke(Addr addr, Word value)
{
    lineOf(addr).mem = value;
}

void
Directory::pokeShared(Addr addr, const std::set<NodeId> &sharers)
{
    Line &l = lineOf(addr);
    l.st = sharers.empty() ? St::Uncached : St::Shared;
    l.sharers = sharers;
    l.owner = -1;
}

Word
Directory::peek(Addr addr) const
{
    auto it = lines_.find(addr);
    return it == lines_.end() ? 0 : it->second.mem;
}

bool
Directory::idle() const
{
    for (const auto &[a, l] : lines_) {
        if (l.busy || !l.waiting.empty())
            return false;
    }
    return true;
}

Directory::LineAudit
Directory::audit(Addr addr) const
{
    LineAudit a;
    auto it = lines_.find(addr);
    if (it == lines_.end())
        return a;
    a.known = true;
    a.exclusive = it->second.st == St::Exclusive;
    a.shared = it->second.st == St::Shared;
    a.owner = it->second.owner;
    a.sharers = it->second.sharers;
    a.busy = it->second.busy;
    return a;
}

Directory::Line &
Directory::lineOf(Addr addr)
{
    return lines_[addr];
}

void
Directory::emitEvent(TraceKind kind, Addr addr, NodeId dst)
{
    TraceEvent ev;
    ev.tick = eq_.now();
    ev.comp = TraceComp::Dir;
    ev.kind = kind;
    ev.compId = node_;
    ev.src = node_;
    ev.dst = dst;
    ev.addr = addr;
    sink_->record(ev);
}

void
Directory::sendTo(NodeId dst, MsgType type, Addr addr, Word value,
                  bool for_sync)
{
    if (sink_) {
        if (type == MsgType::Inv)
            emitEvent(TraceKind::InvSent, addr, dst);
        else if (type == MsgType::Recall || type == MsgType::RecallInv)
            emitEvent(TraceKind::RecallSent, addr, dst);
    }
    Msg m;
    m.type = type;
    m.src = node_;
    m.dst = dst;
    m.addr = addr;
    m.value = value;
    m.forSync = for_sync;
    net_.send(m);
}

void
Directory::reply(const Msg &req, MsgType type, Word value, int ack_count)
{
    if (sink_ && type == MsgType::WriteAck)
        emitEvent(TraceKind::WriteAckSent, req.addr, req.src);
    Msg m;
    m.type = type;
    m.src = node_;
    m.dst = req.src;
    m.addr = req.addr;
    m.value = value;
    m.reqId = req.reqId;
    m.ackCount = ack_count;
    m.forSync = req.forSync;
    net_.send(m);
}

void
Directory::handle(const Msg &msg)
{
    // Model the directory's processing latency; fixed delay preserves
    // arrival order.
    Msg m = msg;
    eq_.scheduleAfter(cfg_.latency, [this, m] { process(m); });
}

void
Directory::process(const Msg &msg)
{
    WO_TRACE(eq_, name_, "proc " << msg.toString());
    Line &line = lineOf(msg.addr);
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::Upgrade:
        stats_.inc(stat_.requests);
        if (line.busy) {
            line.waiting.push_back(msg);
            stats_.inc(stat_.queued);
        } else {
            startRequest(line, msg);
        }
        break;

      case MsgType::InvAck:
        assert(line.busy && line.pendingInvAcks > 0 &&
               "stray invalidation ack");
        if (--line.pendingInvAcks == 0)
            finishWrite(line);
        break;

      case MsgType::RecallData:
        assert(line.busy && line.waitingRecall);
        line.waitingRecall = false;
        line.mem = msg.value;
        completeRecalled(line, true, msg.src);
        break;

      case MsgType::RecallInvData:
        assert(line.busy && line.waitingRecall);
        line.waitingRecall = false;
        line.mem = msg.value;
        completeRecalled(line, false, msg.src);
        break;

      case MsgType::RecallNack:
        // The owner's writeback overtook our recall; the PutX (FIFO-ahead
        // of this nack) already completed that transaction. A new recall
        // may already be pending — necessarily to a different owner.
        assert(!(line.waitingRecall && line.owner == msg.src) &&
               "recall nack from the owner we are waiting on");
        stats_.inc(stat_.recallNacks);
        break;

      case MsgType::PutX:
        if (line.busy && line.waitingRecall && line.owner == msg.src) {
            // Writeback raced with our recall: use it as the recall
            // response; the owner gave up its copy.
            line.waitingRecall = false;
            line.mem = msg.value;
            sendTo(msg.src, MsgType::PutAck, msg.addr);
            completeRecalled(line, false, msg.src);
        } else {
            assert(line.st == St::Exclusive && line.owner == msg.src &&
                   "writeback from a non-owner");
            line.st = St::Uncached;
            line.owner = -1;
            line.mem = msg.value;
            sendTo(msg.src, MsgType::PutAck, msg.addr);
            stats_.inc(stat_.writebacks);
        }
        break;

      default:
        assert(false && "unexpected message at directory");
    }
}

void
Directory::startRequest(Line &line, const Msg &msg)
{
    if (msg.type == MsgType::GetS)
        startGetS(line, msg);
    else if (msg.type == MsgType::GetX)
        startGetX(line, msg);
    else {
        // Upgrade: only honored if the requester is still a sharer;
        // otherwise (it was invalidated while the upgrade was in flight)
        // fall back to the full GetX path — the requester's MSHR accepts
        // either response.
        if (line.st == St::Shared && line.sharers.count(msg.src)) {
            std::set<NodeId> others = line.sharers;
            others.erase(msg.src);
            if (others.empty()) {
                line.st = St::Exclusive;
                line.owner = msg.src;
                line.sharers.clear();
                reply(msg, MsgType::UpgradeAck, 0, 0);
            } else {
                line.busy = true;
                line.cur = msg;
                line.pendingInvAcks = static_cast<int>(others.size());
                reply(msg, MsgType::UpgradeAck, 0,
                      static_cast<int>(others.size()));
                for (NodeId n : others)
                    sendTo(n, MsgType::Inv, msg.addr);
                stats_.inc(stat_.invalidations, others.size());
            }
        } else {
            startGetX(line, msg);
        }
    }
}

void
Directory::startGetS(Line &line, const Msg &msg)
{
    switch (line.st) {
      case St::Uncached:
      case St::Shared:
        line.st = St::Shared;
        line.sharers.insert(msg.src);
        reply(msg, MsgType::Data, line.mem);
        break;
      case St::Exclusive:
        assert(line.owner != msg.src && "owner re-requesting its line");
        line.busy = true;
        line.cur = msg;
        line.waitingRecall = true;
        sendTo(line.owner, MsgType::Recall, msg.addr, 0, msg.forSync);
        stats_.inc(stat_.recalls);
        break;
    }
}

void
Directory::startGetX(Line &line, const Msg &msg)
{
    switch (line.st) {
      case St::Uncached:
        line.st = St::Exclusive;
        line.owner = msg.src;
        reply(msg, MsgType::DataEx, line.mem);
        break;
      case St::Shared: {
        line.sharers.erase(msg.src); // defensive: requester's copy is gone
        if (line.sharers.empty()) {
            line.st = St::Exclusive;
            line.owner = msg.src;
            reply(msg, MsgType::DataEx, line.mem);
            break;
        }
        // The paper's protocol: forward the line in parallel with the
        // invalidations; the final WriteAck marks global performance.
        line.busy = true;
        line.cur = msg;
        line.pendingInvAcks = static_cast<int>(line.sharers.size());
        reply(msg, MsgType::Data, line.mem);
        for (NodeId n : line.sharers)
            sendTo(n, MsgType::Inv, msg.addr);
        stats_.inc(stat_.invalidations, line.sharers.size());
        break;
      }
      case St::Exclusive:
        assert(line.owner != msg.src && "owner re-requesting its line");
        line.busy = true;
        line.cur = msg;
        line.waitingRecall = true;
        sendTo(line.owner, MsgType::RecallInv, msg.addr, 0, msg.forSync);
        stats_.inc(stat_.recalls);
        break;
    }
}

void
Directory::finishWrite(Line &line)
{
    // All invalidations acknowledged: the write is globally performed.
    line.st = St::Exclusive;
    line.owner = line.cur.src;
    line.sharers.clear();
    reply(line.cur, MsgType::WriteAck, 0);
    completeTransaction(line);
}

void
Directory::completeRecalled(Line &line, bool owner_kept_shared_copy,
                            NodeId responder)
{
    const Msg &req = line.cur;
    if (req.type == MsgType::GetS) {
        line.st = St::Shared;
        line.sharers.clear();
        if (owner_kept_shared_copy)
            line.sharers.insert(responder);
        line.sharers.insert(req.src);
        line.owner = -1;
        reply(req, MsgType::Data, line.mem);
    } else {
        // GetX or demoted Upgrade: ownership transfers wholesale; no
        // invalidations remain, so the write is globally performed on
        // arrival of the exclusive line.
        line.st = St::Exclusive;
        line.owner = req.src;
        line.sharers.clear();
        reply(req, MsgType::DataEx, line.mem);
    }
    completeTransaction(line);
}

void
Directory::completeTransaction(Line &line)
{
    line.busy = false;
    line.pendingInvAcks = 0;
    line.waitingRecall = false;
    while (!line.busy && !line.waiting.empty()) {
        Msg next = line.waiting.front();
        line.waiting.pop_front();
        startRequest(line, next);
    }
}

} // namespace wo
