#include "coherence/cache.hh"

#include <algorithm>
#include <cassert>

#include "obs/trace_sink.hh"
#include "sim/logging.hh"

namespace wo {

Cache::Cache(EventQueue &eq, Interconnect &net, StatSet &stats, NodeId node,
             NodeId dir_base, int num_dirs, const CacheConfig &cfg,
             std::string name)
    : eq_(eq), net_(net), stats_(stats), node_(node), dir_base_(dir_base),
      num_dirs_(num_dirs), cfg_(cfg),
      proto_(&CoherenceProtocol::get(cfg.protocol)), name_(std::move(name))
{
    stat_.hits = stats_.handle(name_ + ".hits");
    stat_.misses = stats_.handle(name_ + ".misses");
    stat_.writebacks = stats_.handle(name_ + ".writebacks");
    stat_.silentDrops = stats_.handle(name_ + ".silent_drops");
    stat_.silentUpgrades = stats_.handle(name_ + ".silent_upgrades");
    stat_.cleanRelinquishes =
        stats_.handle(name_ + ".clean_relinquishes");
    stat_.reserves = stats_.handle(name_ + ".reserves");
    stalls_ = StallReasonFamily(stats_, name_ + ".miss_stalls_total");
    stat_.stalledByReserveBound =
        stalls_.addReason(name_ + ".stalled_by_reserve_bound");
    stat_.stalledByEviction =
        stalls_.addReason(name_ + ".stalled_by_eviction");
    stat_.stalledByMshrConflict =
        stalls_.addReason(name_ + ".stalled_by_mshr_conflict");
    stat_.counterMax =
        stats_.handle(name_ + ".counter_max", StatSet::Kind::Max);
    stat_.putacks = stats_.handle(name_ + ".putacks");
    stat_.invalidations = stats_.handle(name_ + ".invalidations");
    stat_.staleInvalidations =
        stats_.handle(name_ + ".stale_invalidations");
    stat_.recallNacks = stats_.handle(name_ + ".recall_nacks");
    stat_.recallsQueued = stats_.handle(name_ + ".recalls_queued");
    stat_.recallsServiced = stats_.handle(name_ + ".recalls_serviced");
    net_.attach(node_, [this](const Msg &m) { handle(m); });
}

void
Cache::emitEvent(TraceKind kind, Addr addr, std::int64_t aux,
                 const char *detail)
{
    TraceEvent ev;
    ev.tick = eq_.now();
    ev.comp = TraceComp::Cache;
    ev.kind = kind;
    ev.compId = node_;
    ev.proc = node_;
    ev.addr = addr;
    ev.aux = aux;
    ev.detail = detail;
    sink_->record(ev);
}

void
Cache::traceState(Addr addr, LineState from, LineState to)
{
    if (sink_ && from != to)
        emitEvent(TraceKind::StateChange, addr, 0,
                  transitionLabel(from, to));
}

bool
Cache::treatedAsWrite(AccessKind k) const
{
    switch (k) {
      case AccessKind::DataWrite:
      case AccessKind::SyncWrite:
      case AccessKind::SyncRmw:
        return true;
      case AccessKind::SyncRead:
        return cfg_.syncReadsAsWrites;
      case AccessKind::DataRead:
        return false;
    }
    return false;
}

bool
Cache::ordersViaReserve(AccessKind k) const
{
    if (!isSync(k))
        return false;
    // Under the Section 6 refinement, a read-only synchronization cannot
    // be used to order a processor's previous accesses, so it does not
    // reserve the line.
    if (k == AccessKind::SyncRead)
        return cfg_.syncReadsAsWrites;
    return true;
}

int
Cache::setOf(Addr addr) const
{
    return cfg_.numSets > 0 ? static_cast<int>(addr) % cfg_.numSets : 0;
}

NodeId
Cache::dirFor(Addr addr) const
{
    return dir_base_ + static_cast<NodeId>(addr) % num_dirs_;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    auto it = lines_.find(addr);
    return it == lines_.end() ? nullptr : &it->second;
}

void
Cache::pokeLine(Addr addr, LineState state, Word data)
{
    Line l;
    l.state = state;
    l.data = data;
    lines_[addr] = l;
}

bool
Cache::peekLine(Addr addr, LineState *state, Word *data) const
{
    auto it = lines_.find(addr);
    if (it == lines_.end())
        return false;
    if (state)
        *state = it->second.state;
    if (data)
        *data = it->second.data;
    return true;
}

void
Cache::sendToDir(MsgType type, Addr addr, Word value, bool for_sync)
{
    Msg m;
    m.type = type;
    m.src = node_;
    m.dst = dirFor(addr);
    m.addr = addr;
    m.value = value;
    m.forSync = for_sync;
    net_.send(m);
}

bool
Cache::makeRoomFor(Addr addr)
{
    if (cfg_.numSets <= 0)
        return true;
    int set = setOf(addr);
    std::vector<Addr> in_set;
    for (const auto &[a, l] : lines_) {
        if (setOf(a) == set)
            in_set.push_back(a);
    }
    if (static_cast<int>(in_set.size()) + inflight_fills_[set] < cfg_.ways) {
        ++inflight_fills_[set];
        return true;
    }
    // Pick the least-recently-used evictable victim. Reserved lines are
    // never flushed (condition 5); lines with a pending globally-perform
    // or an open miss are transaction-locked.
    Addr victim = 0;
    bool found = false;
    Tick best = 0;
    for (Addr a : in_set) {
        Line &l = lines_[a];
        if (l.reserved || l.pendingGp || mshrs_.count(a))
            continue;
        if (!found || l.lastUse < best) {
            victim = a;
            best = l.lastUse;
            found = true;
        }
    }
    if (!found)
        return false;
    Line &v = lines_[victim];
    switch (proto_->on(v.state, LineEvent::Evict).action) {
      case LineAction::WritebackData:
        sendToDir(MsgType::PutX, victim, v.data, false);
        stats_.inc(stat_.writebacks);
        break;
      case LineAction::RelinquishClean:
        sendToDir(MsgType::PutE, victim, 0, false);
        stats_.inc(stat_.cleanRelinquishes);
        break;
      case LineAction::DropSilent:
        stats_.inc(stat_.silentDrops);
        break;
      default:
        assert(false && "unexpected eviction action");
    }
    traceState(victim, v.state, LineState::Invalid);
    lines_.erase(victim);
    ++inflight_fills_[set];
    return true;
}

void
Cache::commitOnLine(const CacheOp &op, Line &line, bool gp_now, Tick delay)
{
    // The commit happens NOW (the value becomes dispatchable / the local
    // copy is modified); @p delay only models how long the notification
    // takes to reach the processor.
    Word read_value = line.data;
    if (writesMemory(op.kind))
        line.data = op.writeValue;
    if (cfg_.useReserveBits && ordersViaReserve(op.kind) && counter_ > 0) {
        // The reserve covers exactly the accesses outstanding at this
        // synchronization's commit: misses numbered below next_miss_seq_.
        if (!line.reserved) {
            line.reserved = true;
            ++reserved_count_;
            stats_.inc(stat_.reserves);
            if (sink_)
                emitEvent(TraceKind::ReserveSet, op.addr, counter_);
        }
        line.reservedUpTo = next_miss_seq_;
    }
    assert(client_);
    std::uint64_t id = op.id;
    if (!gp_now)
        line.gpWaiters.push_back(id);
    if (delay == 0) {
        client_->opCommitted(id, read_value);
        if (gp_now)
            client_->opGloballyPerformed(id);
    } else {
        eq_.scheduleAfter(delay, [this, id, read_value, gp_now] {
            client_->opCommitted(id, read_value);
            if (gp_now)
                client_->opGloballyPerformed(id);
        });
    }
}

void
Cache::access(const CacheOp &op)
{
    Line *l = findLine(op.addr);
    if (l)
        l->lastUse = eq_.now();
    bool as_write = treatedAsWrite(op.kind);

    // Classify against the protocol table: an absent line is Invalid.
    const LineTransition &t =
        proto_->on(l ? l->state : LineState::Invalid,
                   as_write ? LineEvent::Store : LineEvent::Load);

    // Hits. Reads commit and are globally performed when the value is
    // bound; a write landing on a line that still awaits a write-ack for
    // an earlier write becomes globally performed with that ack. A store
    // on a clean-exclusive line upgrades silently — a hit with no
    // coherence traffic (MESI-family E payoff).
    if (t.action == LineAction::Hit ||
        t.action == LineAction::SilentUpgrade) {
        stats_.inc(stat_.hits);
        if (t.action == LineAction::SilentUpgrade) {
            stats_.inc(stat_.silentUpgrades);
            traceState(op.addr, l->state, t.next);
            l->state = t.next;
        }
        if (sink_)
            emitEvent(TraceKind::Hit, op.addr);
        bool gp_now = as_write ? !l->pendingGp : true;
        commitOnLine(op, *l, gp_now, cfg_.hitLatency);
        return;
    }

    // Misses (including upgrades). Processors order same-address
    // accesses (condition 1), so a second miss to a line with an MSHR
    // outstanding should not happen; if one slips through anyway, stall
    // it until the fill rather than clobbering the live MSHR.
    if (mshrs_.find(op.addr) != mshrs_.end()) {
        assert(false && "processor must order same-address accesses");
        stalled_ops_.push_back(op);
        stalls_.bump(stat_.stalledByMshrConflict);
        if (sink_)
            emitEvent(TraceKind::MissStalled, op.addr, 0, "mshr_conflict");
        return;
    }

    // Section 5.3: bound the misses sent while a line is reserved, so a
    // stalled remote synchronization is serviced after a bounded number
    // of counter increments.
    if (cfg_.maxMissesWhileReserved >= 0 && anyReserved() &&
        misses_while_reserved_ >= cfg_.maxMissesWhileReserved) {
        stalled_ops_.push_back(op);
        stalls_.bump(stat_.stalledByReserveBound);
        if (sink_)
            emitEvent(TraceKind::MissStalled, op.addr, 0, "reserve_bound");
        return;
    }

    bool upgrade = t.action == LineAction::IssueUpgrade;
    if (!upgrade) {
        if (!makeRoomFor(op.addr)) {
            stalled_ops_.push_back(op);
            stalls_.bump(stat_.stalledByEviction);
            if (sink_)
                emitEvent(TraceKind::MissStalled, op.addr, 0, "eviction");
            return;
        }
    }

    ++counter_;
    if (sink_) {
        emitEvent(TraceKind::Miss, op.addr, 0,
                  upgrade ? "upgrade" : (as_write ? "write" : "read"));
        emitEvent(TraceKind::CounterInc, op.addr, counter_);
    }
    stats_.maxOf(stat_.counterMax, static_cast<std::uint64_t>(counter_));
    if (anyReserved())
        ++misses_while_reserved_;
    stats_.inc(stat_.misses);

    Mshr m;
    m.seq = next_miss_seq_++;
    outstanding_miss_seqs_.insert(m.seq);
    m.op = op;
    switch (t.action) {
      case LineAction::IssueUpgrade:
        m.sent = MsgType::Upgrade;
        break;
      case LineAction::IssueGetX:
        m.sent = MsgType::GetX;
        break;
      case LineAction::IssueGetS:
        m.sent = MsgType::GetS;
        break;
      default:
        assert(false && "access classified neither hit nor miss");
    }
    mshrs_[op.addr] = m;
    sendToDir(m.sent, op.addr, 0, isSync(op.kind));
}

void
Cache::handle(const Msg &msg)
{
    WO_TRACE(eq_, name_, "recv " << msg.toString());
    switch (msg.type) {
      case MsgType::Data:
      case MsgType::DataE:
      case MsgType::DataEx:
      case MsgType::UpgradeAck:
        handleFill(msg);
        break;
      case MsgType::Inv:
        handleInv(msg);
        break;
      case MsgType::Recall:
      case MsgType::RecallInv:
        handleRecall(msg);
        break;
      case MsgType::WriteAck:
        handleWriteAck(msg);
        break;
      case MsgType::PutAck:
        stats_.inc(stat_.putacks);
        break;
      default:
        assert(false && "unexpected message at cache");
    }
}

void
Cache::handleFill(const Msg &msg)
{
    auto it = mshrs_.find(msg.addr);
    assert(it != mshrs_.end() && "fill without MSHR");
    Mshr m = it->second;
    mshrs_.erase(it);

    if (m.sent != MsgType::Upgrade) {
        int set = setOf(msg.addr);
        if (cfg_.numSets > 0 && inflight_fills_[set] > 0)
            --inflight_fills_[set];
    }

    switch (msg.type) {
      case MsgType::Data: {
        if (m.sent == MsgType::GetS) {
            // Read miss completes: line arrives shared (Forward under
            // MESIF — the most recent requester is the designated
            // responder).
            Line l;
            l.state =
                proto_->on(LineState::Invalid, LineEvent::FillShared).next;
            l.data = msg.value;
            l.lastUse = eq_.now();
            lines_[msg.addr] = l;
            traceState(msg.addr, LineState::Invalid, l.state);
            commitOnLine(m.op, lines_[msg.addr], true);
            decrementCounter(m.seq);
        } else {
            // Write/sync miss on a previously-shared line: the directory
            // forwarded the line in parallel with invalidations. Commit
            // now; globally performed at the WriteAck.
            Line l;
            l.state = proto_->on(LineState::Invalid, LineEvent::FillModified)
                          .next;
            l.data = msg.value;
            l.pendingGp = true;
            l.pendingGpMissSeq = m.seq;
            l.lastUse = eq_.now();
            lines_[msg.addr] = l;
            traceState(msg.addr, LineState::Invalid, l.state);
            commitOnLine(m.op, lines_[msg.addr], false);
            // Counter decremented by the WriteAck.
        }
        break;
      }
      case MsgType::DataE: {
        // Clean-exclusive fill (read miss, no other copies): globally
        // performed immediately; a later store upgrades silently.
        Line l;
        l.state =
            proto_->on(LineState::Invalid, LineEvent::FillExclusive).next;
        l.data = msg.value;
        l.lastUse = eq_.now();
        lines_[msg.addr] = l;
        traceState(msg.addr, LineState::Invalid, l.state);
        commitOnLine(m.op, lines_[msg.addr], true);
        decrementCounter(m.seq);
        break;
      }
      case MsgType::DataEx: {
        // Exclusive data, no invalidations outstanding: commit and
        // globally performed together.
        Line l;
        l.state =
            proto_->on(LineState::Invalid, LineEvent::FillModified).next;
        l.data = msg.value;
        l.lastUse = eq_.now();
        lines_[msg.addr] = l;
        traceState(msg.addr, LineState::Invalid, l.state);
        commitOnLine(m.op, lines_[msg.addr], true);
        decrementCounter(m.seq);
        break;
      }
      case MsgType::UpgradeAck: {
        Line *l = findLine(msg.addr);
        assert(l && "upgrade ack without a line");
        // Throws if the line is not in a shared-family state.
        LineState next =
            proto_->on(l->state, LineEvent::UpgradeOwnership).next;
        traceState(msg.addr, l->state, next);
        l->state = next;
        l->lastUse = eq_.now();
        if (msg.ackCount > 0) {
            l->pendingGp = true;
            l->pendingGpMissSeq = m.seq;
            commitOnLine(m.op, *l, false);
        } else {
            commitOnLine(m.op, *l, true);
            decrementCounter(m.seq);
        }
        break;
      }
      default:
        assert(false);
    }
    retryStalled();
}

void
Cache::handleInv(const Msg &msg)
{
    Line *l = findLine(msg.addr);
    if (l) {
        // Throws if an owner state gets an Inv (the directory recalls
        // owners; only shared-family copies are invalidated).
        const LineTransition &t =
            proto_->on(l->state, LineEvent::Invalidate);
        assert(t.action == LineAction::AckInvalidate);
        assert(!l->reserved && "shared lines are never reserved");
        traceState(msg.addr, l->state, t.next);
        lines_.erase(msg.addr);
        stats_.inc(stat_.invalidations);
        if (sink_)
            emitEvent(TraceKind::InvApplied, msg.addr);
    } else {
        stats_.inc(stat_.staleInvalidations);
        if (sink_)
            emitEvent(TraceKind::InvApplied, msg.addr, 0, "stale");
    }
    Msg ack;
    ack.type = MsgType::InvAck;
    ack.src = node_;
    ack.dst = msg.src;
    ack.addr = msg.addr;
    if (cfg_.invApplyDelay > 0) {
        eq_.scheduleAfter(cfg_.invApplyDelay, [this, ack] {
            if (sink_)
                emitEvent(TraceKind::InvAcked, ack.addr);
            net_.send(ack);
        });
    } else {
        if (sink_)
            emitEvent(TraceKind::InvAcked, ack.addr);
        net_.send(ack);
    }
}

void
Cache::handleRecall(const Msg &msg)
{
    LineEvent ev = msg.type == MsgType::Recall ? LineEvent::FwdGetS
                                               : LineEvent::FwdGetX;
    Line *l = findLine(msg.addr);
    if (!l || !proto_->legal(l->state, ev)) {
        // The line was written back; the PutX is ahead of this response
        // on the FIFO channel to the directory.
        Msg nack;
        nack.type = MsgType::RecallNack;
        nack.src = node_;
        nack.dst = msg.src;
        nack.addr = msg.addr;
        net_.send(nack);
        stats_.inc(stat_.recallNacks);
        return;
    }
    if (l->reserved) {
        // Condition 5: a synchronization (or any) request routed to a
        // reserved line is stalled until the counter reads zero.
        stalled_recalls_.push_back(msg);
        stats_.inc(stat_.recallsQueued);
        if (sink_)
            emitEvent(TraceKind::RecallQueued, msg.addr);
        return;
    }
    serviceRecall(msg);
}

void
Cache::serviceRecall(const Msg &msg)
{
    LineEvent ev = msg.type == MsgType::Recall ? LineEvent::FwdGetS
                                               : LineEvent::FwdGetX;
    Line *l = findLine(msg.addr);
    if (!l || !proto_->legal(l->state, ev)) {
        Msg nack;
        nack.type = MsgType::RecallNack;
        nack.src = node_;
        nack.dst = msg.src;
        nack.addr = msg.addr;
        net_.send(nack);
        return;
    }
    assert(!l->pendingGp &&
           "directory serialization forbids recalling a non-GP line");
    const LineTransition &t = proto_->on(l->state, ev);
    Msg resp;
    resp.src = node_;
    resp.dst = msg.src;
    resp.addr = msg.addr;
    resp.value = l->data;
    switch (t.action) {
      case LineAction::RespondData:
        traceState(msg.addr, l->state, t.next);
        l->state = t.next;
        resp.type = MsgType::RecallData;
        break;
      case LineAction::RespondDataOwned:
        // MOESI: the dirty line stays owned; sharers read the
        // forwarded copy and this cache still writes back on eviction.
        traceState(msg.addr, l->state, t.next);
        l->state = t.next;
        resp.type = MsgType::RecallDataOwned;
        break;
      case LineAction::RespondDataInv:
        traceState(msg.addr, l->state, LineState::Invalid);
        lines_.erase(msg.addr);
        resp.type = MsgType::RecallInvData;
        break;
      default:
        assert(false && "unexpected recall action");
    }
    stats_.inc(stat_.recallsServiced);
    if (sink_)
        emitEvent(TraceKind::RecallServiced, msg.addr);
    net_.send(resp);
}

void
Cache::handleWriteAck(const Msg &msg)
{
    Line *l = findLine(msg.addr);
    assert(l && l->pendingGp && "write ack without a pending write");
    l->pendingGp = false;
    std::vector<std::uint64_t> waiters;
    waiters.swap(l->gpWaiters);
    for (std::uint64_t id : waiters)
        client_->opGloballyPerformed(id);
    decrementCounter(l->pendingGpMissSeq);
}

void
Cache::decrementCounter(std::uint64_t miss_seq)
{
    assert(counter_ > 0);
    --counter_;
    if (sink_)
        emitEvent(TraceKind::CounterDec, kNoTraceAddr, counter_);
    outstanding_miss_seqs_.erase(miss_seq);
    updateReservations();
    if (counter_ == 0)
        onCounterZero();
}

void
Cache::updateReservations()
{
    if (reserved_count_ == 0)
        return;
    // A reserve clears once every miss generated before its
    // synchronization committed has completed; later misses (e.g. a sync
    // miss to another lock) do not hold it — this is what makes the
    // scheme deadlock-free across multiple synchronization variables.
    std::uint64_t min_outstanding =
        outstanding_miss_seqs_.empty() ? ~std::uint64_t{0}
                                       : *outstanding_miss_seqs_.begin();
    if (!cfg_.epochReserveClearing && !outstanding_miss_seqs_.empty()) {
        // Naive mode: reserves persist until the counter reads zero.
        return;
    }
    std::vector<Addr> released;
    for (auto &[a, l] : lines_) {
        if (l.reserved && l.reservedUpTo <= min_outstanding) {
            l.reserved = false;
            --reserved_count_;
            released.push_back(a);
            if (sink_)
                emitEvent(TraceKind::ReserveClear, a, counter_);
        }
    }
    if (reserved_count_ == 0)
        misses_while_reserved_ = 0;
    if (released.empty())
        return;
    // Service recalls that were queued on the released lines.
    std::deque<Msg> keep;
    std::deque<Msg> recalls;
    recalls.swap(stalled_recalls_);
    for (const Msg &m : recalls) {
        bool freed = false;
        for (Addr a : released) {
            if (m.addr == a)
                freed = true;
        }
        if (freed)
            serviceRecall(m);
        else
            keep.push_back(m);
    }
    stalled_recalls_ = std::move(keep);
}

void
Cache::onCounterZero()
{
    misses_while_reserved_ = 0;
    assert(reserved_count_ == 0 &&
           "updateReservations must have cleared every reserve");
    // Any recall still queued would belong to a reserved line.
    assert(stalled_recalls_.empty());
    retryStalled();
    if (client_)
        client_->counterReadsZero();
}

void
Cache::retryStalled()
{
    if (stalled_ops_.empty())
        return;
    std::deque<CacheOp> ops;
    ops.swap(stalled_ops_);
    for (const CacheOp &op : ops)
        access(op);
}

} // namespace wo
