/**
 * @file
 * Data-driven coherence-protocol descriptions: MSI, MESI, MOESI, MESIF.
 *
 * A CoherenceProtocol is a (state x event) -> {next state, action}
 * transition table over the universal line-state alphabet below. Cache
 * and MidCache consult the table instead of hard-coding one protocol;
 * the Directory derives its grant policy from which states the protocol
 * uses (grantsExclusiveClean / usesOwned / usesForward).
 *
 * Naming note: the original two-state protocol called its dirty-writable
 * state "Exclusive". That was MSI's M under another name — here Modified
 * is the dirty state and Exclusive is MESI's clean-exclusive state
 * (readable, silently upgradable, never written back). MSI built from
 * these tables reproduces the original protocol decision-for-decision;
 * tests/test_msi_degenerate.cc pins that equivalence.
 *
 * Transitions not in a protocol's table are protocol violations: on()
 * THROWS std::logic_error rather than silently no-oping, so a
 * miswired controller fails loudly (tests/test_protocol_table.cc walks
 * every pair of every protocol).
 */

#ifndef WO_COHERENCE_PROTOCOL_HH
#define WO_COHERENCE_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace wo {

/**
 * Universal cache-line state alphabet (each protocol uses a subset).
 *
 *  Invalid   not present (the implicit state of an absent line)
 *  Shared    clean, read-only, other copies may exist
 *  Exclusive clean, sole copy (MESI/MOESI/MESIF); a store upgrades to
 *            Modified silently (no traffic)
 *  Modified  dirty, sole copy, read/write locally
 *  Owned     dirty, other Shared copies exist; this cache supplies data
 *            and writes back on eviction (MOESI)
 *  Forward   clean, other Shared copies may exist; designated responder
 *            for the next read request (MESIF)
 */
enum class LineState : std::uint8_t {
    Invalid,
    Shared,
    Exclusive,
    Modified,
    Owned,
    Forward,
};
inline constexpr int kNumLineStates = 6;

/** Single-letter name ("I", "S", "E", "M", "O", "F"). */
const char *toString(LineState s);

/** Static "M->S"-style label for a state change (trace-event detail;
 * static storage, valid forever). */
const char *transitionLabel(LineState from, LineState to);

/** The implemented protocols. */
enum class ProtocolKind : std::uint8_t { Msi, Mesi, Moesi, Mesif };
inline constexpr int kNumProtocolKinds = 4;

const char *toString(ProtocolKind k);

/** Parse "msi" / "mesi" / "moesi" / "mesif" (case-insensitive); throws
 * std::runtime_error naming the known protocols. */
ProtocolKind parseProtocol(const std::string &name);

/**
 * Events applied to a line's protocol state.
 *
 * Processor side: Load/Store classify hits, misses and upgrades (applied
 * to Invalid for an absent line); Evict is a replacement decision.
 * Fill side: Fill* install a response (always applied to Invalid —
 * FillShared = Data, FillExclusive = DataE, FillModified = Data/DataEx
 * for a write); UpgradeOwnership is an UpgradeAck.
 * Remote side: Invalidate is an Inv from the directory; FwdGetS /
 * FwdGetX are Recall / RecallInv (a remote read / write wants the line).
 */
enum class LineEvent : std::uint8_t {
    Load,
    Store,
    Evict,
    FillShared,
    FillExclusive,
    FillModified,
    UpgradeOwnership,
    Invalidate,
    FwdGetS,
    FwdGetX,
};
inline constexpr int kNumLineEvents = 10;

const char *toString(LineEvent e);

/** What the controller must do alongside a state change. */
enum class LineAction : std::uint8_t {
    None,             ///< state change only (fills, upgrade acks)
    Hit,              ///< satisfy the access locally
    SilentUpgrade,    ///< store on a clean-exclusive line: write locally,
                      ///< no traffic (Exclusive -> Modified)
    IssueGetS,        ///< read miss: request a shared copy
    IssueGetX,        ///< write miss: request an exclusive copy
    IssueUpgrade,     ///< write on a shared-family line: request ownership
    WritebackData,    ///< evict dirty: PutX with data
    RelinquishClean,  ///< evict clean-exclusive/forward: PutE notify (no
                      ///< data; keeps directory owner/forwarder exact)
    DropSilent,       ///< evict shared: no message
    RespondData,      ///< FwdGetS: send data, demote to next state
    RespondDataOwned, ///< FwdGetS: send data, retain ownership (-> Owned)
    RespondDataInv,   ///< FwdGetX: send data, invalidate
    AckInvalidate,    ///< Invalidate: drop the copy and ack
};

const char *toString(LineAction a);

/** One table entry. */
struct LineTransition
{
    LineState next = LineState::Invalid;
    LineAction action = LineAction::None;
};

/** One protocol's immutable transition table. */
class CoherenceProtocol
{
  public:
    /** The singleton table for @p kind. */
    static const CoherenceProtocol &get(ProtocolKind kind);

    ProtocolKind kind() const { return kind_; }
    const char *name() const { return name_; }

    /** True if @p s is part of this protocol's state set. */
    bool
    hasState(LineState s) const
    {
        return (state_mask_ >> static_cast<int>(s)) & 1;
    }

    /** True if (state, event) has a transition. */
    bool
    legal(LineState s, LineEvent e) const
    {
        return table_[static_cast<int>(s)][static_cast<int>(e)].legal;
    }

    /** Look up the transition for (state, event); throws
     * std::logic_error on a pair outside the protocol. */
    const LineTransition &on(LineState s, LineEvent e) const;

    // Directory grant policy, derived from the state set.

    /** Grant a clean-exclusive copy (DataE) on a read miss to an
     * uncached line. */
    bool grantsExclusiveClean() const
    {
        return hasState(LineState::Exclusive);
    }

    /** A recalled dirty line may stay owned (RecallDataOwned). */
    bool usesOwned() const { return hasState(LineState::Owned); }

    /** Track a designated forwarder among sharers and recall it to
     * service reads. */
    bool usesForward() const { return hasState(LineState::Forward); }

  private:
    struct Slot
    {
        LineTransition t;
        bool legal = false;
    };

    CoherenceProtocol(ProtocolKind kind, const char *name);

    void allow(LineState s);
    void add(LineState s, LineEvent e, LineState next, LineAction action);

    ProtocolKind kind_;
    const char *name_;
    std::uint8_t state_mask_ = 0;
    Slot table_[kNumLineStates][kNumLineEvents];
};

} // namespace wo

#endif // WO_COHERENCE_PROTOCOL_HH
