/**
 * @file
 * Private mid-level (L2) cache: sits between one processor's L1 cache
 * and the directory, speaking the directory protocol on both sides.
 *
 * Toward its L1 (the inner port) a MidCache presents exactly the
 * directory's interface — the L1 is constructed with the L2's node id as
 * its only "directory" and needs no changes. Toward the real directory
 * (the outer port) it behaves as a cache: it acquires lines with
 * GetS/GetX/Upgrade, writes back with PutX/PutE, and services
 * Inv/Recall/RecallInv probes, forwarding them inward when the L1 holds
 * the line in a state the probe must demote.
 *
 * The L2 is inclusive of its L1: every L1 line has an L2 line, and the
 * L2 tracks the L1's holding state (none / shared / exclusive / owned)
 * so probes touch the L1 only when necessary. The tracking is exact for
 * owner states — L1 evictions of E/M/O lines always send PutE/PutX — and
 * a stale-superset for Shared (the L1 drops S silently, like the
 * directory's sharer lists).
 *
 * Per-line message ordering relies on the interconnect's per-(src,dst)
 * FIFO, exactly as the flat protocol does: a writeback racing a probe is
 * observed by the receiver in send order.
 */

#ifndef WO_COHERENCE_MID_CACHE_HH
#define WO_COHERENCE_MID_CACHE_HH

#include <deque>
#include <map>
#include <string>

#include "coherence/protocol.hh"
#include "mem/interconnect.hh"
#include "obs/trace_event.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wo {

class TraceSink;

/** Configuration of one mid-level cache. */
struct MidCacheConfig
{
    /** Coherence protocol (must match the L1s and the directory). */
    ProtocolKind protocol = ProtocolKind::Msi;

    /** Number of sets; 0 models an unbounded L2 (no evictions). */
    int numSets = 0;

    /** Associativity (used when numSets > 0). */
    int ways = 8;

    /** Processing latency per incoming message. */
    Tick latency = 1;
};

/** One private L2, between one L1 cache and the directory banks. */
class MidCache
{
  public:
    /**
     * @param node      this L2's interconnect node id
     * @param inner     node id of the L1 this L2 is private to
     * @param dir_base  node id of directory bank 0
     * @param num_dirs  number of directory banks (addr mod num_dirs)
     */
    MidCache(EventQueue &eq, Interconnect &net, StatSet &stats, NodeId node,
             NodeId inner, NodeId dir_base, int num_dirs,
             const MidCacheConfig &cfg, std::string name);

    /** Incoming message handler (attached to the interconnect). */
    void handle(const Msg &msg);

    /** True if no transaction, probe or stalled request is open. */
    bool idle() const;

    /** Directly install a line (warm-start setup only): the L2 holds
     * @p state and the L1 is recorded holding @p inner_shared. */
    void pokeLine(Addr addr, LineState state, Word data, bool inner_shared);

    /** Look up a line's state; returns false if not present. */
    bool peekLine(Addr addr, LineState *state, Word *data) const;

    /** Drop every line, MSHR and queue for reuse. Must only be called
     * between runs (no messages in flight). */
    void reset();

    /** Attach a structured trace sink (nullptr detaches). */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

    /** The protocol transition table this L2 runs. */
    const CoherenceProtocol &protocol() const { return *proto_; }

  private:
    /** What the inner L1 holds (exact for E/M/O, stale-superset for S). */
    enum class InnerSt { None, Shared, Exclusive, Owned };

    /** Why an inner demotion is in flight for a line. */
    enum class Probe {
        None,
        OuterInv,          ///< outer Inv forwarded inward
        RecallViaInner,    ///< outer Recall forwarded inward
        RecallInvViaInner, ///< outer RecallInv forwarded inward
        RecallInvViaInv,   ///< outer RecallInv; L1 only Shared, Inv sent
        EvictInv,          ///< making room: Inv sent inward
        EvictRecall,       ///< making room: RecallInv sent inward
    };

    struct Line
    {
        LineState st = LineState::Shared;
        InnerSt inner = InnerSt::None;
        Word data = 0;
        /** A write committed here awaits the directory's WriteAck. */
        bool pendingGp = false;
        Probe probe = Probe::None;
        /** Outer probe that arrived during an eviction probe; answered
         * (with a nack — our writeback wins the race) once the eviction
         * completes. */
        std::deque<Msg> deferredProbes;
        Tick lastUse = 0;
    };

    struct Mshr
    {
        MsgType sent = MsgType::GetS; ///< outer request type
        Msg inner;                    ///< the L1 request being serviced
    };

    void process(const Msg &msg);

    /** Inner port: requests and writebacks from the L1. */
    void innerRequest(const Msg &msg);
    void innerPut(const Msg &msg);

    /** Inner port: the L1's answers to forwarded probes. */
    void innerProbeResponse(const Msg &msg);

    /** Outer port: fills and acks from the directory. */
    void outerFill(const Msg &msg);
    void outerWriteAck(const Msg &msg);

    /** Outer port: probes from the directory. */
    void outerInv(const Msg &msg);
    void outerRecall(const Msg &msg);

    /** Answer an outer Recall/RecallInv from this L2's own copy (the
     * inner state no longer blocks it). */
    void respondRecallFromSelf(Line &line, const Msg &msg);

    /** Finish an eviction probe: write the line back and retry. */
    void finishEvictProbe(Addr addr, Line &line);

    /** Evict @p addr's line according to the protocol table. */
    void writebackAndErase(Addr addr, Line &line);

    /** Ensure room in @p addr's set; false if the request must stall. */
    bool makeRoomFor(Addr addr);
    void retryStalled();

    void sendOut(MsgType type, const Msg &req, Word value);
    void sendIn(const Msg &inner_req, MsgType type, Word value,
                int ack_count = 0);
    /** @p why tags the trace event with the probe *translation* that
     * produced this inner message (outer stimulus vs capacity). */
    void sendProbeIn(MsgType type, Addr addr, bool for_sync, Probe why);

    /** Static name of a probe translation (trace-event detail). */
    static const char *probeName(Probe p);

    Line *findLine(Addr addr);
    int setOf(Addr addr) const;
    NodeId dirFor(Addr addr) const;

    /** Emit one structured trace event (sink_ must be non-null). */
    void emitEvent(TraceKind kind, Addr addr, std::int64_t aux = 0,
                   const char *detail = nullptr);
    void traceState(Addr addr, LineState from, LineState to);

    EventQueue &eq_;
    Interconnect &net_;
    StatSet &stats_;
    NodeId node_;
    NodeId inner_;
    NodeId dir_base_;
    int num_dirs_;
    MidCacheConfig cfg_;
    const CoherenceProtocol *proto_;
    std::string name_;

    struct StatHandles
    {
        StatHandle hits;
        StatHandle misses;
        StatHandle writebacks;
        StatHandle cleanRelinquishes;
        StatHandle silentDrops;
        StatHandle exclusiveGrants;
        StatHandle probesForwarded;
        StatHandle innerInvs;
        StatHandle evictStalls;
        StatHandle putacks;
    };
    StatHandles stat_;

    std::map<Addr, Line> lines_;
    std::map<Addr, Mshr> mshrs_;
    std::map<int, int> inflight_fills_; ///< per-set fills in flight
    std::deque<Msg> stalled_reqs_;      ///< inner requests awaiting room

    /** Structured tracing (null = disabled path). */
    TraceSink *sink_ = nullptr;
};

} // namespace wo

#endif // WO_COHERENCE_MID_CACHE_HH
