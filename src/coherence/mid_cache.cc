#include "coherence/mid_cache.hh"

#include <cassert>

#include "obs/trace_sink.hh"
#include "sim/logging.hh"

namespace wo {

MidCache::MidCache(EventQueue &eq, Interconnect &net, StatSet &stats,
                   NodeId node, NodeId inner, NodeId dir_base, int num_dirs,
                   const MidCacheConfig &cfg, std::string name)
    : eq_(eq), net_(net), stats_(stats), node_(node), inner_(inner),
      dir_base_(dir_base), num_dirs_(num_dirs), cfg_(cfg),
      proto_(&CoherenceProtocol::get(cfg.protocol)), name_(std::move(name))
{
    stat_.hits = stats_.handle(name_ + ".hits");
    stat_.misses = stats_.handle(name_ + ".misses");
    stat_.writebacks = stats_.handle(name_ + ".writebacks");
    stat_.cleanRelinquishes =
        stats_.handle(name_ + ".clean_relinquishes");
    stat_.silentDrops = stats_.handle(name_ + ".silent_drops");
    stat_.exclusiveGrants = stats_.handle(name_ + ".exclusive_grants");
    stat_.probesForwarded = stats_.handle(name_ + ".probes_forwarded");
    stat_.innerInvs = stats_.handle(name_ + ".inner_invs");
    stat_.evictStalls = stats_.handle(name_ + ".evict_stalls");
    stat_.putacks = stats_.handle(name_ + ".putacks");
    net_.attach(node_, [this](const Msg &m) { handle(m); });
}

void
MidCache::emitEvent(TraceKind kind, Addr addr, std::int64_t aux,
                    const char *detail)
{
    TraceEvent ev;
    ev.tick = eq_.now();
    ev.comp = TraceComp::Cache;
    ev.kind = kind;
    ev.compId = node_;
    ev.proc = inner_;
    ev.addr = addr;
    ev.aux = aux;
    ev.level = 2; // exporters label L2 traffic distinctly from the L1s
    ev.detail = detail;
    sink_->record(ev);
}

void
MidCache::traceState(Addr addr, LineState from, LineState to)
{
    if (sink_ && from != to)
        emitEvent(TraceKind::StateChange, addr, 0,
                  transitionLabel(from, to));
}

int
MidCache::setOf(Addr addr) const
{
    return cfg_.numSets > 0 ? static_cast<int>(addr) % cfg_.numSets : 0;
}

NodeId
MidCache::dirFor(Addr addr) const
{
    return dir_base_ + static_cast<NodeId>(addr) % num_dirs_;
}

MidCache::Line *
MidCache::findLine(Addr addr)
{
    auto it = lines_.find(addr);
    return it == lines_.end() ? nullptr : &it->second;
}

void
MidCache::pokeLine(Addr addr, LineState state, Word data, bool inner_shared)
{
    Line l;
    l.st = state;
    l.inner = inner_shared ? InnerSt::Shared : InnerSt::None;
    l.data = data;
    lines_[addr] = l;
}

bool
MidCache::peekLine(Addr addr, LineState *state, Word *data) const
{
    auto it = lines_.find(addr);
    if (it == lines_.end())
        return false;
    if (state)
        *state = it->second.st;
    if (data)
        *data = it->second.data;
    return true;
}

void
MidCache::reset()
{
    lines_.clear();
    mshrs_.clear();
    inflight_fills_.clear();
    stalled_reqs_.clear();
}

bool
MidCache::idle() const
{
    if (!mshrs_.empty() || !stalled_reqs_.empty())
        return false;
    for (const auto &[a, l] : lines_) {
        if (l.probe != Probe::None || l.pendingGp ||
            !l.deferredProbes.empty())
            return false;
    }
    return true;
}

void
MidCache::sendOut(MsgType type, const Msg &req, Word value)
{
    Msg m;
    m.type = type;
    m.src = node_;
    m.dst = dirFor(req.addr);
    m.addr = req.addr;
    m.value = value;
    m.reqId = req.reqId;
    m.forSync = req.forSync;
    net_.send(m);
}

void
MidCache::sendIn(const Msg &inner_req, MsgType type, Word value,
                 int ack_count)
{
    Msg m;
    m.type = type;
    m.src = node_;
    m.dst = inner_;
    m.addr = inner_req.addr;
    m.value = value;
    m.reqId = inner_req.reqId;
    m.ackCount = ack_count;
    m.forSync = inner_req.forSync;
    net_.send(m);
}

const char *
MidCache::probeName(Probe p)
{
    switch (p) {
      case Probe::None: return "None";
      case Probe::OuterInv: return "OuterInv";
      case Probe::RecallViaInner: return "RecallViaInner";
      case Probe::RecallInvViaInner: return "RecallInvViaInner";
      case Probe::RecallInvViaInv: return "RecallInvViaInv";
      case Probe::EvictInv: return "EvictInv";
      case Probe::EvictRecall: return "EvictRecall";
    }
    return "?";
}

void
MidCache::sendProbeIn(MsgType type, Addr addr, bool for_sync, Probe why)
{
    if (sink_) {
        // Tag the probe with its *translation* (which outer stimulus
        // or eviction produced it) — an L1 Inv and an L2 capacity
        // eviction look identical on the wire otherwise.
        if (type == MsgType::Inv)
            emitEvent(TraceKind::InvSent, addr, 0, probeName(why));
        else
            emitEvent(TraceKind::RecallSent, addr, 0, probeName(why));
    }
    Msg m;
    m.type = type;
    m.src = node_;
    m.dst = inner_;
    m.addr = addr;
    m.forSync = for_sync;
    net_.send(m);
    stats_.inc(stat_.probesForwarded);
}

void
MidCache::handle(const Msg &msg)
{
    Msg m = msg;
    eq_.scheduleAfter(cfg_.latency, [this, m] { process(m); });
}

void
MidCache::process(const Msg &msg)
{
    WO_TRACE(eq_, name_, "proc " << msg.toString());
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::Upgrade:
        innerRequest(msg);
        break;
      case MsgType::PutX:
      case MsgType::PutE:
        innerPut(msg);
        break;
      case MsgType::InvAck:
      case MsgType::RecallData:
      case MsgType::RecallDataOwned:
      case MsgType::RecallInvData:
      case MsgType::RecallNack:
        innerProbeResponse(msg);
        break;
      case MsgType::Data:
      case MsgType::DataE:
      case MsgType::DataEx:
      case MsgType::UpgradeAck:
        outerFill(msg);
        break;
      case MsgType::WriteAck:
        outerWriteAck(msg);
        break;
      case MsgType::PutAck:
        stats_.inc(stat_.putacks);
        break;
      case MsgType::Inv:
        outerInv(msg);
        break;
      case MsgType::Recall:
      case MsgType::RecallInv:
        outerRecall(msg);
        break;
      default:
        assert(false && "unexpected message at mid-level cache");
    }
}

void
MidCache::innerRequest(const Msg &msg)
{
    Line *l = findLine(msg.addr);

    // A line mid-probe is in flux (the L1's demotion answer is in
    // flight); serving a hit now would break inclusion. Park the request
    // until the probe resolves.
    if (l && l->probe != Probe::None) {
        stalled_reqs_.push_back(msg);
        return;
    }
    assert(!mshrs_.count(msg.addr) &&
           "the L1 sent a second request for a line with one in flight");

    if (msg.type == MsgType::GetS) {
        if (l) {
            stats_.inc(stat_.hits);
            l->lastUse = eq_.now();
            if ((l->st == LineState::Exclusive ||
                 l->st == LineState::Modified) &&
                proto_->grantsExclusiveClean()) {
                // Sole owner: pass exclusivity down so the L1 can
                // upgrade silently, exactly as the directory would.
                l->inner = InnerSt::Exclusive;
                stats_.inc(stat_.exclusiveGrants);
                sendIn(msg, MsgType::DataE, l->data);
            } else {
                l->inner = InnerSt::Shared;
                sendIn(msg, MsgType::Data, l->data);
            }
            return;
        }
        stats_.inc(stat_.misses);
        if (!makeRoomFor(msg.addr)) {
            stats_.inc(stat_.evictStalls);
            stalled_reqs_.push_back(msg);
            return;
        }
        mshrs_[msg.addr] = Mshr{MsgType::GetS, msg};
        ++inflight_fills_[setOf(msg.addr)];
        sendOut(MsgType::GetS, msg, 0);
        return;
    }

    if (msg.type == MsgType::GetX) {
        if (l && (l->st == LineState::Exclusive ||
                  l->st == LineState::Modified)) {
            stats_.inc(stat_.hits);
            l->lastUse = eq_.now();
            traceState(msg.addr, l->st, LineState::Modified);
            l->st = LineState::Modified;
            l->inner = InnerSt::Exclusive;
            sendIn(msg, MsgType::DataEx, l->data);
            return;
        }
        stats_.inc(stat_.misses);
        if (l) {
            // Shared / Forward / Owned here: data is valid, only
            // ownership is missing.
            l->lastUse = eq_.now();
            mshrs_[msg.addr] = Mshr{MsgType::Upgrade, msg};
            sendOut(MsgType::Upgrade, msg, 0);
            return;
        }
        if (!makeRoomFor(msg.addr)) {
            stats_.inc(stat_.evictStalls);
            stalled_reqs_.push_back(msg);
            return;
        }
        mshrs_[msg.addr] = Mshr{MsgType::GetX, msg};
        ++inflight_fills_[setOf(msg.addr)];
        sendOut(MsgType::GetX, msg, 0);
        return;
    }

    // Upgrade: the L1 holds a read copy and wants ownership.
    if (l && (l->st == LineState::Exclusive ||
              l->st == LineState::Modified)) {
        stats_.inc(stat_.hits);
        l->lastUse = eq_.now();
        traceState(msg.addr, l->st, LineState::Modified);
        l->st = LineState::Modified;
        l->inner = InnerSt::Exclusive;
        sendIn(msg, MsgType::UpgradeAck, 0, 0);
        return;
    }
    stats_.inc(stat_.misses);
    if (l) {
        l->lastUse = eq_.now();
        mshrs_[msg.addr] = Mshr{MsgType::Upgrade, msg};
        sendOut(MsgType::Upgrade, msg, 0);
        return;
    }
    // Both copies were invalidated while the L1's upgrade was in
    // flight: fall back to a full fetch; the L1's MSHR accepts a data
    // response to an upgrade.
    if (!makeRoomFor(msg.addr)) {
        stats_.inc(stat_.evictStalls);
        stalled_reqs_.push_back(msg);
        return;
    }
    mshrs_[msg.addr] = Mshr{MsgType::GetX, msg};
    ++inflight_fills_[setOf(msg.addr)];
    sendOut(MsgType::GetX, msg, 0);
}

void
MidCache::innerPut(const Msg &msg)
{
    Line *l = findLine(msg.addr);
    if (msg.type == MsgType::PutX) {
        // Dirty data comes home; inclusion guarantees the line exists
        // (probes absorb a racing writeback before erasing it).
        assert(l && "L1 writeback to a line the L2 does not hold");
        assert(l->st == LineState::Exclusive ||
               l->st == LineState::Modified || l->st == LineState::Owned);
        l->data = msg.value;
        l->inner = InnerSt::None;
        if (l->st == LineState::Exclusive) {
            traceState(msg.addr, l->st, LineState::Modified);
            l->st = LineState::Modified;
        }
    } else {
        // PutE: a clean E or F copy was dropped; no data moves. The
        // line can be gone if an invalidation crossed the relinquish.
        if (l)
            l->inner = InnerSt::None;
    }
    sendIn(msg, MsgType::PutAck, 0);
    retryStalled();
}

void
MidCache::innerProbeResponse(const Msg &msg)
{
    Line *l = findLine(msg.addr);
    assert(l && l->probe != Probe::None &&
           "probe response with no probe outstanding");
    Probe probe = l->probe;
    l->probe = Probe::None;

    switch (msg.type) {
      case MsgType::InvAck:
        if (probe == Probe::OuterInv) {
            traceState(msg.addr, l->st, LineState::Invalid);
            lines_.erase(msg.addr);
            Msg ack;
            ack.addr = msg.addr;
            sendOut(MsgType::InvAck, ack, 0);
        } else if (probe == Probe::RecallInvViaInv) {
            Word v = l->data;
            traceState(msg.addr, l->st, LineState::Invalid);
            lines_.erase(msg.addr);
            Msg resp;
            resp.addr = msg.addr;
            sendOut(MsgType::RecallInvData, resp, v);
        } else {
            assert(probe == Probe::EvictInv);
            l->inner = InnerSt::None;
            finishEvictProbe(msg.addr, *l);
            return; // finishEvictProbe retries
        }
        break;

      case MsgType::RecallData: {
        assert(probe == Probe::RecallViaInner);
        l->data = msg.value;
        l->inner = InnerSt::Shared;
        respondRecallFromSelf(*l, msg);
        break;
      }

      case MsgType::RecallDataOwned: {
        // MOESI: the L1 keeps the dirty line; this L2 mirrors it as
        // Owned and reports the same upward.
        assert(probe == Probe::RecallViaInner && proto_->usesOwned());
        l->data = msg.value;
        l->inner = InnerSt::Owned;
        // A dirty answer from a clean-exclusive mirror reveals an L1
        // silent E->M upgrade this L2 never saw; transition from the
        // true Modified state, not the stale E.
        if (l->st == LineState::Exclusive) {
            traceState(msg.addr, l->st, LineState::Modified);
            l->st = LineState::Modified;
        }
        const LineTransition &t =
            proto_->on(l->st, LineEvent::FwdGetS);
        assert(t.action == LineAction::RespondDataOwned);
        traceState(msg.addr, l->st, t.next);
        l->st = t.next;
        Msg resp;
        resp.addr = msg.addr;
        sendOut(MsgType::RecallDataOwned, resp, l->data);
        break;
      }

      case MsgType::RecallInvData:
        l->data = msg.value;
        l->inner = InnerSt::None;
        // The recalled copy may have been silently upgraded to M in
        // the L1; a clean-exclusive mirror must not pass the returned
        // data on as relinquishable-clean (PutE would drop it).
        if (l->st == LineState::Exclusive) {
            traceState(msg.addr, l->st, LineState::Modified);
            l->st = LineState::Modified;
        }
        if (probe == Probe::EvictRecall) {
            finishEvictProbe(msg.addr, *l);
            return;
        }
        assert(probe == Probe::RecallInvViaInner);
        {
            Word v = l->data;
            traceState(msg.addr, l->st, LineState::Invalid);
            lines_.erase(msg.addr);
            Msg resp;
            resp.addr = msg.addr;
            sendOut(MsgType::RecallInvData, resp, v);
        }
        break;

      case MsgType::RecallNack:
        // The L1's writeback overtook our probe and (per-link FIFO) was
        // already absorbed above; answer from this L2's updated state.
        if (probe == Probe::RecallViaInner) {
            respondRecallFromSelf(*l, msg);
        } else if (probe == Probe::RecallInvViaInner) {
            assert(proto_->on(l->st, LineEvent::FwdGetX).action ==
                   LineAction::RespondDataInv);
            Word v = l->data;
            traceState(msg.addr, l->st, LineState::Invalid);
            lines_.erase(msg.addr);
            Msg resp;
            resp.addr = msg.addr;
            sendOut(MsgType::RecallInvData, resp, v);
        } else {
            assert(probe == Probe::EvictRecall);
            finishEvictProbe(msg.addr, *l);
            return;
        }
        break;

      default:
        assert(false);
    }
    retryStalled();
}

void
MidCache::respondRecallFromSelf(Line &line, const Msg &msg)
{
    const LineTransition &t = proto_->on(line.st, LineEvent::FwdGetS);
    traceState(msg.addr, line.st, t.next);
    line.st = t.next;
    Msg resp;
    resp.addr = msg.addr;
    sendOut(t.action == LineAction::RespondDataOwned
                ? MsgType::RecallDataOwned
                : MsgType::RecallData,
            resp, line.data);
}

void
MidCache::writebackAndErase(Addr addr, Line &line)
{
    Msg req;
    req.addr = addr;
    switch (proto_->on(line.st, LineEvent::Evict).action) {
      case LineAction::WritebackData:
        sendOut(MsgType::PutX, req, line.data);
        stats_.inc(stat_.writebacks);
        break;
      case LineAction::RelinquishClean:
        sendOut(MsgType::PutE, req, 0);
        stats_.inc(stat_.cleanRelinquishes);
        break;
      case LineAction::DropSilent:
        stats_.inc(stat_.silentDrops);
        break;
      default:
        assert(false && "line state has no eviction action");
    }
    traceState(addr, line.st, LineState::Invalid);
    lines_.erase(addr);
}

void
MidCache::finishEvictProbe(Addr addr, Line &line)
{
    // The inner copy is gone (or absorbed); write the line back, then
    // answer any probe that arrived mid-eviction with a nack — our
    // writeback, FIFO-ahead of it, wins the race at the directory.
    std::deque<Msg> deferred = std::move(line.deferredProbes);
    writebackAndErase(addr, line);
    for (const Msg &p : deferred) {
        Msg resp;
        resp.addr = addr;
        if (p.type == MsgType::Inv)
            sendOut(MsgType::InvAck, resp, 0);
        else
            sendOut(MsgType::RecallNack, resp, 0);
    }
    retryStalled();
}

bool
MidCache::makeRoomFor(Addr addr)
{
    if (cfg_.numSets <= 0)
        return true;
    int set = setOf(addr);
    int occupied = inflight_fills_[set];
    Addr victim = 0;
    const Line *victim_line = nullptr;
    Addr demotable = 0;
    const Line *demotable_line = nullptr;
    for (const auto &[a, l] : lines_) {
        if (setOf(a) != set)
            continue;
        ++occupied;
        if (l.probe != Probe::None || l.pendingGp ||
            !l.deferredProbes.empty() || mshrs_.count(a))
            continue;
        if (l.inner == InnerSt::None) {
            if (!victim_line || l.lastUse < victim_line->lastUse) {
                victim = a;
                victim_line = &l;
            }
        } else if (!demotable_line ||
                   l.lastUse < demotable_line->lastUse) {
            demotable = a;
            demotable_line = &l;
        }
    }
    if (occupied < cfg_.ways)
        return true;
    if (victim_line) {
        writebackAndErase(victim, lines_.at(victim));
        return true;
    }
    if (demotable_line) {
        // Every candidate still lives in the L1: recall the LRU one.
        // The request stalls until the L1's answer frees the way.
        Line &l = lines_.at(demotable);
        if (l.inner == InnerSt::Shared) {
            l.probe = Probe::EvictInv;
            stats_.inc(stat_.innerInvs);
            sendProbeIn(MsgType::Inv, demotable, false,
                        Probe::EvictInv);
        } else {
            l.probe = Probe::EvictRecall;
            sendProbeIn(MsgType::RecallInv, demotable, false,
                        Probe::EvictRecall);
        }
    }
    return false;
}

void
MidCache::retryStalled()
{
    std::deque<Msg> pending = std::move(stalled_reqs_);
    stalled_reqs_.clear();
    for (const Msg &m : pending)
        innerRequest(m);
}

void
MidCache::outerFill(const Msg &msg)
{
    auto it = mshrs_.find(msg.addr);
    assert(it != mshrs_.end() && "fill with no request outstanding");
    Mshr m = it->second;
    mshrs_.erase(it);
    if (m.sent != MsgType::Upgrade) {
        auto f = inflight_fills_.find(setOf(msg.addr));
        if (f != inflight_fills_.end() && f->second > 0)
            --f->second;
    }
    Line &l = lines_[msg.addr];
    l.lastUse = eq_.now();

    switch (msg.type) {
      case MsgType::Data:
        if (m.inner.type == MsgType::GetS) {
            LineState next =
                proto_->on(LineState::Invalid, LineEvent::FillShared)
                    .next;
            traceState(msg.addr, LineState::Invalid, next);
            l.st = next;
            l.data = msg.value;
            l.inner = InnerSt::Shared;
            sendIn(m.inner, MsgType::Data, l.data);
        } else {
            // Write data forwarded with invalidations still in flight:
            // committed here, globally performed on the WriteAck.
            LineState next =
                proto_->on(LineState::Invalid, LineEvent::FillModified)
                    .next;
            traceState(msg.addr, LineState::Invalid, next);
            l.st = next;
            l.data = msg.value;
            l.pendingGp = true;
            l.inner = InnerSt::Exclusive;
            sendIn(m.inner, MsgType::Data, l.data);
        }
        break;

      case MsgType::DataE: {
        assert(m.inner.type == MsgType::GetS);
        LineState next =
            proto_->on(LineState::Invalid, LineEvent::FillExclusive).next;
        traceState(msg.addr, LineState::Invalid, next);
        l.st = next;
        l.data = msg.value;
        l.inner = InnerSt::Exclusive;
        sendIn(m.inner, MsgType::DataE, l.data);
        break;
      }

      case MsgType::DataEx: {
        LineState next =
            proto_->on(LineState::Invalid, LineEvent::FillModified).next;
        traceState(msg.addr, LineState::Invalid, next);
        l.st = next;
        l.data = msg.value;
        l.inner = InnerSt::Exclusive;
        sendIn(m.inner, MsgType::DataEx, l.data);
        break;
      }

      case MsgType::UpgradeAck: {
        // Our read copy (S/F/O) became ownership; data was valid here.
        LineState next =
            proto_->on(l.st, LineEvent::UpgradeOwnership).next;
        traceState(msg.addr, l.st, next);
        l.st = next;
        l.pendingGp = msg.ackCount > 0;
        l.inner = InnerSt::Exclusive;
        if (m.inner.type == MsgType::Upgrade) {
            sendIn(m.inner, MsgType::UpgradeAck, 0, msg.ackCount);
        } else {
            // The L1 asked for the full line.
            sendIn(m.inner,
                   msg.ackCount > 0 ? MsgType::Data : MsgType::DataEx,
                   l.data);
        }
        break;
      }

      default:
        assert(false);
    }
}

void
MidCache::outerWriteAck(const Msg &msg)
{
    Line *l = findLine(msg.addr);
    assert(l && l->pendingGp && "write-ack with no write pending");
    l->pendingGp = false;
    Msg fwd;
    fwd.addr = msg.addr;
    fwd.reqId = msg.reqId;
    fwd.forSync = msg.forSync;
    sendIn(fwd, MsgType::WriteAck, 0);
    retryStalled();
}

void
MidCache::outerInv(const Msg &msg)
{
    Line *l = findLine(msg.addr);
    if (!l) {
        // Stale: we already relinquished the line.
        Msg ack;
        ack.addr = msg.addr;
        sendOut(MsgType::InvAck, ack, 0);
        return;
    }
    if (l->probe == Probe::EvictInv || l->probe == Probe::EvictRecall) {
        l->deferredProbes.push_back(msg);
        return;
    }
    assert(l->probe == Probe::None &&
           "directory sent overlapping probes for one line");
    if (l->inner == InnerSt::Shared) {
        l->probe = Probe::OuterInv;
        stats_.inc(stat_.innerInvs);
        sendProbeIn(MsgType::Inv, msg.addr, false, Probe::OuterInv);
        return;
    }
    assert(l->inner == InnerSt::None &&
           "directory invalidated a line the L1 owns");
    traceState(msg.addr, l->st, LineState::Invalid);
    lines_.erase(msg.addr);
    Msg ack;
    ack.addr = msg.addr;
    sendOut(MsgType::InvAck, ack, 0);
    retryStalled();
}

void
MidCache::outerRecall(const Msg &msg)
{
    LineEvent ev = msg.type == MsgType::Recall ? LineEvent::FwdGetS
                                               : LineEvent::FwdGetX;
    Line *l = findLine(msg.addr);
    if (!l || !proto_->legal(l->st, ev)) {
        Msg nack;
        nack.addr = msg.addr;
        sendOut(MsgType::RecallNack, nack, 0);
        return;
    }
    if (l->probe == Probe::EvictInv || l->probe == Probe::EvictRecall) {
        l->deferredProbes.push_back(msg);
        return;
    }
    assert(l->probe == Probe::None &&
           "directory sent overlapping probes for one line");

    if (msg.type == MsgType::Recall) {
        if (l->inner == InnerSt::Exclusive) {
            // Current data lives in the L1; demote it first.
            l->probe = Probe::RecallViaInner;
            sendProbeIn(MsgType::Recall, msg.addr, msg.forSync,
                        Probe::RecallViaInner);
            return;
        }
        if (l->inner == InnerSt::Owned) {
            // The L1 keeps its dirty copy; our mirror is current.
            const LineTransition &t = proto_->on(l->st, ev);
            assert(t.action == LineAction::RespondDataOwned);
            traceState(msg.addr, l->st, t.next);
            l->st = t.next;
            Msg resp;
            resp.addr = msg.addr;
            sendOut(MsgType::RecallDataOwned, resp, l->data);
            return;
        }
        respondRecallFromSelf(*l, msg);
        return;
    }

    // RecallInv
    if (l->inner == InnerSt::Exclusive || l->inner == InnerSt::Owned) {
        l->probe = Probe::RecallInvViaInner;
        sendProbeIn(MsgType::RecallInv, msg.addr, msg.forSync,
                    Probe::RecallInvViaInner);
        return;
    }
    if (l->inner == InnerSt::Shared) {
        l->probe = Probe::RecallInvViaInv;
        stats_.inc(stat_.innerInvs);
        sendProbeIn(MsgType::Inv, msg.addr, false,
                    Probe::RecallInvViaInv);
        return;
    }
    assert(proto_->on(l->st, ev).action == LineAction::RespondDataInv);
    Word v = l->data;
    traceState(msg.addr, l->st, LineState::Invalid);
    lines_.erase(msg.addr);
    Msg resp;
    resp.addr = msg.addr;
    sendOut(MsgType::RecallInvData, resp, v);
    retryStalled();
}

} // namespace wo
