#include "consistency/def2_drf0_policy.hh"
