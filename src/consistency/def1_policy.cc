#include "consistency/def1_policy.hh"
