/**
 * @file
 * The Section 6 refinement of the DRF0 implementation.
 *
 * Read-only synchronization operations (Test) are no longer serialized as
 * writes: the cache treats them as reads and they do not set reserve
 * bits, so spinning (test-and-test&set, barrier counts) stops ping-
 * ponging the synchronization line exclusively between spinners. The
 * trade-off (stated in Section 6): a processor cannot use a read-only
 * synchronization operation to order its previous accesses with respect
 * to subsequent synchronization operations of other processors.
 */

#ifndef WO_CONSISTENCY_DEF2_DRF1_POLICY_HH
#define WO_CONSISTENCY_DEF2_DRF1_POLICY_HH

#include "consistency/policy.hh"

namespace wo {

/** Refined new-definition implementation (read-only syncs relaxed). */
class Def2Drf1Policy : public ConsistencyPolicy
{
  public:
    std::string name() const override { return "WO-Def2-DRF1"; }

    bool
    mayIssue(AccessKind, const ProcState &st) const override
    {
        return st.syncsNotCommitted == 0;
    }

    bool requiresCache() const override { return true; }
    bool syncReadsAsWrites() const override { return false; }
    bool useReserveBits() const override { return true; }

    StallReason
    refusalReason(AccessKind, const ProcState &) const override
    {
        return StallReason::ReserveBit;
    }
};

} // namespace wo

#endif // WO_CONSISTENCY_DEF2_DRF1_POLICY_HH
