#include "consistency/policy.hh"

#include <stdexcept>

#include "consistency/def1_policy.hh"
#include "consistency/def2_drf0_policy.hh"
#include "consistency/def2_drf1_policy.hh"
#include "consistency/relaxed_policy.hh"
#include "consistency/sc_policy.hh"

namespace wo {

const char *
toString(StallReason r)
{
    switch (r) {
      case StallReason::CounterNonzero: return "counter_nonzero";
      case StallReason::ReserveBit: return "reserve_bit";
      case StallReason::BufferFull: return "buffer_full";
      case StallReason::Fence: return "fence";
      case StallReason::Dependency: return "dependency";
      case StallReason::SameAddr: return "same_addr";
    }
    return "?";
}

std::string
toString(PolicyKind k)
{
    switch (k) {
      case PolicyKind::Sc: return "SC";
      case PolicyKind::Def1: return "WO-Def1";
      case PolicyKind::Def2Drf0: return "WO-Def2-DRF0";
      case PolicyKind::Def2Drf1: return "WO-Def2-DRF1";
      case PolicyKind::Relaxed: return "Relaxed";
    }
    return "?";
}

std::unique_ptr<ConsistencyPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Sc:
        return std::make_unique<ScPolicy>();
      case PolicyKind::Def1:
        return std::make_unique<Def1Policy>();
      case PolicyKind::Def2Drf0:
        return std::make_unique<Def2Drf0Policy>();
      case PolicyKind::Def2Drf1:
        return std::make_unique<Def2Drf1Policy>();
      case PolicyKind::Relaxed:
        return std::make_unique<RelaxedPolicy>();
    }
    throw std::invalid_argument("unknown policy kind");
}

} // namespace wo
