/**
 * @file
 * A fully relaxed issue discipline: no inter-access ordering beyond
 * intra-processor dependencies. With a write buffer enabled, reads pass
 * buffered writes — the uniprocessor optimizations whose multiprocessor
 * consequences Figure 1 of the paper illustrates.
 */

#ifndef WO_CONSISTENCY_RELAXED_POLICY_HH
#define WO_CONSISTENCY_RELAXED_POLICY_HH

#include "consistency/policy.hh"

namespace wo {

/** No ordering constraints: the "fast but wrong for racy code" extreme. */
class RelaxedPolicy : public ConsistencyPolicy
{
  public:
    std::string name() const override { return "Relaxed"; }

    bool
    mayIssue(AccessKind, const ProcState &) const override
    {
        return true;
    }

    bool allowWriteBuffer() const override { return true; }
};

} // namespace wo

#endif // WO_CONSISTENCY_RELAXED_POLICY_HH
