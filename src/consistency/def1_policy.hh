/**
 * @file
 * The old definition of weak ordering (Dubois, Scheurich and Briggs,
 * Definition 1):
 *
 *  (1) accesses to global synchronizing variables are strongly ordered
 *      (our directory serializes them and treats them as writes);
 *  (2) no access to a synchronizing variable is issued before all
 *      previous global data accesses have been globally performed;
 *  (3) no access to global data is issued before a previous access to a
 *      synchronizing variable has been globally performed.
 *
 * Data accesses may overlap freely between synchronization points; the
 * processor stalls *itself* around synchronization operations — the
 * global manifestation the new definition's implementation avoids.
 */

#ifndef WO_CONSISTENCY_DEF1_POLICY_HH
#define WO_CONSISTENCY_DEF1_POLICY_HH

#include "consistency/policy.hh"

namespace wo {

/** Old-style weakly ordered issue discipline. */
class Def1Policy : public ConsistencyPolicy
{
  public:
    std::string name() const override { return "WO-Def1"; }

    bool
    mayIssue(AccessKind kind, const ProcState &st) const override
    {
        if (isSync(kind)) {
            // Condition 2: every previous access globally performed.
            return st.notGloballyPerformed == 0;
        }
        // Condition 3: every previous sync globally performed.
        return st.syncsNotGloballyPerformed == 0;
    }
};

} // namespace wo

#endif // WO_CONSISTENCY_DEF1_POLICY_HH
