#include "consistency/relaxed_policy.hh"
