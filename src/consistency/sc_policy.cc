#include "consistency/sc_policy.hh"
