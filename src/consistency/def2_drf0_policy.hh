/**
 * @file
 * The paper's Section 5 implementation of weak ordering (Definition 2)
 * with respect to DRF0.
 *
 * Processor side (condition 4): a new access is not generated until all
 * previous synchronization operations are committed — note: *committed*,
 * not globally performed. The issuing processor never waits for its
 * pending data accesses at a synchronization point; instead the
 * cache-side reserve-bit mechanism (condition 5) stalls the *next*
 * processor that synchronizes on the same location until this processor's
 * previous reads have committed and writes have been globally performed.
 */

#ifndef WO_CONSISTENCY_DEF2_DRF0_POLICY_HH
#define WO_CONSISTENCY_DEF2_DRF0_POLICY_HH

#include "consistency/policy.hh"

namespace wo {

/** New-definition implementation (DRF0 synchronization model). */
class Def2Drf0Policy : public ConsistencyPolicy
{
  public:
    std::string name() const override { return "WO-Def2-DRF0"; }

    bool
    mayIssue(AccessKind, const ProcState &st) const override
    {
        // Condition 4.
        return st.syncsNotCommitted == 0;
    }

    bool requiresCache() const override { return true; }
    bool syncReadsAsWrites() const override { return true; }
    bool useReserveBits() const override { return true; }

    StallReason
    refusalReason(AccessKind, const ProcState &) const override
    {
        // The only processor-side wait is condition 4; its length is
        // governed by the reserve-bit machinery at remote caches.
        return StallReason::ReserveBit;
    }
};

} // namespace wo

#endif // WO_CONSISTENCY_DEF2_DRF0_POLICY_HH
