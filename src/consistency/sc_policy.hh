/**
 * @file
 * Sequential consistency via the Scheurich/Dubois sufficient condition:
 * no access is issued until all the processor's previous accesses are
 * globally performed.
 */

#ifndef WO_CONSISTENCY_SC_POLICY_HH
#define WO_CONSISTENCY_SC_POLICY_HH

#include "consistency/policy.hh"

namespace wo {

/** Strict in-order, one-at-a-time issue: the SC baseline. */
class ScPolicy : public ConsistencyPolicy
{
  public:
    std::string name() const override { return "SC"; }

    bool
    mayIssue(AccessKind, const ProcState &st) const override
    {
        return st.notGloballyPerformed == 0;
    }
};

} // namespace wo

#endif // WO_CONSISTENCY_SC_POLICY_HH
