#include "consistency/def2_drf1_policy.hh"
