/**
 * @file
 * Consistency policies: the processor-side issue disciplines that
 * distinguish the memory models compared in the paper.
 *
 * A policy decides, per candidate instruction, whether the processor may
 * *generate* the access given what is still outstanding — the knob that
 * separates sequential consistency, Definition 1 weak ordering, and the
 * two Definition 2 / data-race-free implementations. The matching
 * cache-side mechanisms (reserve bits, the coherence-level treatment of
 * read-only synchronization) are selected through the policy's hints.
 */

#ifndef WO_CONSISTENCY_POLICY_HH
#define WO_CONSISTENCY_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "cpu/isa.hh"

namespace wo {

/** Snapshot of a processor's outstanding-access bookkeeping. */
struct ProcState
{
    /** Issued memory ops not yet committed. */
    int outstanding = 0;

    /** Issued memory ops not yet globally performed. */
    int notGloballyPerformed = 0;

    /** Synchronization ops issued but not yet committed. */
    int syncsNotCommitted = 0;

    /** Synchronization ops issued but not yet globally performed. */
    int syncsNotGloballyPerformed = 0;

    /** Writes sitting in the write buffer (relaxed systems). */
    int writeBufferDepth = 0;
};

/**
 * Why a processor cannot dispatch right now. Every stalled cycle is
 * attributed to exactly one reason, giving Figure 3's qualitative stall
 * argument a quantitative per-run breakdown:
 *
 *  - CounterNonzero: the issue discipline is waiting for previous
 *    accesses to be globally performed — the Section 5 counter is
 *    nonzero (SC's one-at-a-time rule; Definition 1's stalls around
 *    synchronization, conditions 2 and 3).
 *  - ReserveBit: the Definition 2 disciplines' only processor-side wait
 *    (condition 4: a previous synchronization is uncommitted). The
 *    length of this wait is governed by the reserve-bit hardware — a
 *    remote reserve queues the sync's recall until the remote counter
 *    clears.
 *  - BufferFull: structural back-pressure — the outstanding-op limit is
 *    reached, or a synchronization waits for the write buffer to drain.
 *  - Fence: an explicit fence instruction is waiting.
 *  - Dependency: a register operand is still busy (scoreboard).
 *  - SameAddr: an earlier access to the same address is uncommitted
 *    (condition 1's same-address ordering).
 */
enum class StallReason : std::uint8_t {
    CounterNonzero,
    ReserveBit,
    BufferFull,
    Fence,
    Dependency,
    SameAddr,
};

inline constexpr int kNumStallReasons = 6;

/** Snake-case reason name ("counter_nonzero", ...). */
const char *toString(StallReason r);

/** Abstract issue policy. */
class ConsistencyPolicy
{
  public:
    virtual ~ConsistencyPolicy() = default;

    /** Short name used in reports ("SC", "WO-Def1", ...). */
    virtual std::string name() const = 0;

    /** May an access of kind @p kind be generated given @p st? */
    virtual bool mayIssue(AccessKind kind, const ProcState &st) const = 0;

    /** The policy's mechanisms need a coherent cache (Definition 2
     * implementations do: reserve bits live in the cache). */
    virtual bool requiresCache() const { return false; }

    /** Cache hint: treat read-only syncs (Test) as writes (Section 5
     * example implementation) or as reads (Section 6 refinement). */
    virtual bool syncReadsAsWrites() const { return true; }

    /** Cache hint: enable the reserve-bit machinery (condition 5). */
    virtual bool useReserveBits() const { return false; }

    /** Whether a write buffer (reads bypassing pending writes) is legal
     * under this policy. */
    virtual bool allowWriteBuffer() const { return false; }

    /**
     * Stall attribution: the reason behind a mayIssue() refusal (only
     * meaningful when mayIssue just returned false). The default covers
     * the globally-performed waits of SC and Definition 1; the
     * Definition 2 implementations override it — their only wait is
     * condition 4, whose duration the reserve-bit hardware governs.
     */
    virtual StallReason
    refusalReason(AccessKind, const ProcState &) const
    {
        return StallReason::CounterNonzero;
    }
};

/** Identifiers for the built-in policies. */
enum class PolicyKind {
    Sc,       ///< sequential consistency (Scheurich/Dubois condition)
    Def1,     ///< old weak ordering (Dubois/Scheurich/Briggs Definition 1)
    Def2Drf0, ///< the paper's Section 5 implementation w.r.t. DRF0
    Def2Drf1, ///< the Section 6 refinement (read-only syncs relaxed)
    Relaxed,  ///< no ordering constraints (exhibits Figure 1 violations)
};

/** Name of a policy kind ("SC", "WO-Def1", ...). */
std::string toString(PolicyKind k);

/** Factory for built-in policies. */
std::unique_ptr<ConsistencyPolicy> makePolicy(PolicyKind kind);

} // namespace wo

#endif // WO_CONSISTENCY_POLICY_HH
