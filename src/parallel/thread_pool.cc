#include "parallel/thread_pool.hh"

#include <atomic>
#include <memory>

namespace wo {

ThreadPool::ThreadPool(int numThreads)
{
    if (numThreads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        numThreads = hw ? static_cast<int>(hw) : 1;
    }
    workers_.reserve(static_cast<std::size_t>(numThreads));
    for (int i = 0; i < numThreads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lk(mu_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lk(mu_);
        queue_.push_back(std::move(job));
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mu_);
    idleCv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        workCv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            // stopping_ set and nothing left: the queue is drained
            // before shutdown, so pending jobs always run.
            return;
        }
        std::function<void()> job = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lk.unlock();
        try {
            job();
        } catch (...) {
            std::unique_lock<std::mutex> elk(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        lk.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            idleCv_.notify_all();
    }
}

void
parallelFor(ThreadPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (n == 1) {
        body(0);
        return;
    }

    // Shared by the caller and the helper jobs. Helpers hold a
    // shared_ptr so a helper scheduled after the caller returned (all
    // indices already claimed) still has valid state to look at.
    struct State
    {
        std::function<void(std::size_t)> body;
        std::size_t n;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> completed{0};
        std::atomic<bool> abort{false};
        std::mutex mu;
        std::condition_variable done;
        std::exception_ptr error;
    };
    auto st = std::make_shared<State>();
    st->body = body;
    st->n = n;

    auto work = [](const std::shared_ptr<State> &s) {
        std::size_t i;
        while ((i = s->next.fetch_add(1)) < s->n) {
            if (!s->abort.load(std::memory_order_relaxed)) {
                try {
                    s->body(i);
                } catch (...) {
                    std::unique_lock<std::mutex> lk(s->mu);
                    if (!s->error)
                        s->error = std::current_exception();
                    s->abort.store(true, std::memory_order_relaxed);
                }
            }
            // Claimed indices are counted even when skipped after an
            // abort, so `completed == n` always terminates the wait.
            if (s->completed.fetch_add(1) + 1 == s->n) {
                std::unique_lock<std::mutex> lk(s->mu);
                s->done.notify_all();
            }
        }
    };

    int helpers = pool.numThreads();
    for (int h = 0; h < helpers; ++h)
        pool.submit([st, work] { work(st); });

    // The caller participates too: nested calls from inside a pool job
    // cannot deadlock because the caller alone can finish every index.
    work(st);

    {
        std::unique_lock<std::mutex> lk(st->mu);
        st->done.wait(lk, [&] { return st->completed.load() >= st->n; });
    }
    if (st->error)
        std::rethrow_exception(st->error);
}

} // namespace wo
