/**
 * @file
 * A small fixed-size thread pool plus a deterministic parallelFor.
 *
 * The pool exists to fan *independent* jobs — campaign runs, per-execution
 * SC verifications, first-level branches of one verification — across
 * hardware threads. Determinism is the design constraint everywhere: jobs
 * never share mutable state, each job's effect lands in a slot indexed by
 * its job number, and callers merge results in job order, so a parallel
 * run is bit-identical to a serial one.
 *
 * parallelFor() is cooperative: the calling thread claims indices
 * alongside the workers, so it is safe to call from inside a pool job
 * (nested calls degrade to the caller doing the work) and a 1-thread pool
 * behaves exactly like a serial loop.
 */

#ifndef WO_PARALLEL_THREAD_POOL_HH
#define WO_PARALLEL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wo {

/** A fixed set of worker threads consuming a FIFO job queue. */
class ThreadPool
{
  public:
    /**
     * Spawn @p numThreads workers; 0 means one per hardware thread.
     * A pool always has at least one worker.
     */
    explicit ThreadPool(int numThreads = 0);

    /** Drains the queue, finishes running jobs, and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** Enqueue one job. Jobs run in FIFO order across the workers. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished; rethrows the first
     * exception a job raised (subsequent ones are dropped).
     */
    void wait();

  private:
    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable workCv_; ///< workers sleep here
    std::condition_variable idleCv_; ///< wait() sleeps here
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t active_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Run body(0) ... body(n-1), each exactly once, spread over @p pool's
 * workers and the calling thread. Returns when all n indices completed;
 * rethrows the first exception a body raised (remaining indices are
 * claimed but skipped once a body throws).
 *
 * Index-slot writes make this deterministic: body(i) must only write
 * state owned by index i.
 */
void parallelFor(ThreadPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &body);

} // namespace wo

#endif // WO_PARALLEL_THREAD_POOL_HH
