#include "core/race_detector.hh"

#include <algorithm>

namespace wo {

RaceDetector::RaceDetector(int numProcs, RaceDetectMode mode)
    : mode_(mode)
{
    reset(numProcs);
}

void
RaceDetector::reset(int numProcs)
{
    nprocs_ = numProcs;
    clocks_.resize(static_cast<std::size_t>(numProcs));
    for (VectorClock &c : clocks_)
        c.clear();
    release_.clear();
    vars_.clear();
    races_.clear();
    seen_ = 0;
}

void
RaceDetector::record(int a, int b)
{
    if (a > b)
        std::swap(a, b);
    races_.push_back({a, b});
}

void
RaceDetector::onAccess(const Access &a)
{
    if (a.proc < 0)
        return; // hypothetical initializing writes are hb-first
    if (mode_ == RaceDetectMode::FirstRace && hasRace())
        return;
    if (a.proc >= nprocs_) {
        nprocs_ = a.proc + 1;
        clocks_.resize(static_cast<std::size_t>(nprocs_));
    }
    ++seen_;

    VectorClock &cp = clocks_[static_cast<std::size_t>(a.proc)];
    if (a.sync()) {
        // Acquire: the previous sync at this location (and everything
        // happening-before it) happens-before this access.
        auto it = release_.find(a.addr);
        if (it != release_.end())
            cp.join(it->second);
    }
    const std::uint32_t c = cp.tick(a.proc);
    const bool rd = a.reads();
    const bool wr = a.writes();
    VarState &v = vars_[a.addr];

    if (mode_ == RaceDetectMode::AllRaces) {
        // Check against every prior conflicting access here. Each test
        // is an O(1) epoch-vs-clock comparison; hb(h, a) is the only
        // possible ordering since we consume a linear extension.
        const bool readOnly = rd && !wr;
        for (const HistEntry &h : v.hist) {
            if (readOnly && h.readOnly)
                continue; // two reads never conflict
            if (h.clock > cp.get(h.proc))
                record(h.id, a.id);
        }
        v.hist.push_back({c, a.proc, a.id, readOnly});
    } else {
        // FastTrack epochs. Any access conflicts with the last write;
        // earlier writes are dominated by it (each write, admitted
        // race-free, happens-after the previous one), so one epoch
        // test covers them all.
        if (v.write.some() && !cp.covers(v.write)) {
            record(v.writeId, a.id);
            return;
        }
        if (wr) {
            // A write also conflicts with reads. While reads are
            // totally ordered one epoch suffices; once concurrent,
            // check the latest read of every processor (earlier reads
            // are po-dominated).
            if (!v.readsByProc.empty()) {
                for (std::size_t q = 0; q < v.readsByProc.size(); ++q) {
                    const ReadSlot &r = v.readsByProc[q];
                    if (r.clock &&
                        r.clock > cp.get(static_cast<ProcId>(q))) {
                        record(r.id, a.id);
                        return;
                    }
                }
            } else if (v.read.some() && !cp.covers(v.read)) {
                record(v.readId, a.id);
                return;
            }
            v.write = {c, a.proc};
            v.writeId = a.id;
        }
        if (rd) {
            if (v.readsByProc.empty()) {
                if (!v.read.some() || v.read.proc == a.proc ||
                    cp.covers(v.read)) {
                    // Still totally ordered: the new read dominates.
                    v.read = {c, a.proc};
                    v.readId = a.id;
                } else {
                    // Concurrent reads: widen to one slot per proc.
                    v.readsByProc.assign(
                        static_cast<std::size_t>(nprocs_), {});
                    v.readsByProc[static_cast<std::size_t>(v.read.proc)] =
                        {v.read.clock, v.readId};
                    v.readsByProc[static_cast<std::size_t>(a.proc)] =
                        {c, a.id};
                }
            } else {
                if (v.readsByProc.size() <
                    static_cast<std::size_t>(nprocs_)) {
                    v.readsByProc.resize(
                        static_cast<std::size_t>(nprocs_), {});
                }
                v.readsByProc[static_cast<std::size_t>(a.proc)] =
                    {c, a.id};
            }
        }
    }

    if (a.sync()) {
        // Release: this access's full clock (own tick included) becomes
        // the so-edge source for the next sync at this location.
        release_[a.addr] = cp;
    }
}

} // namespace wo
