#include "core/contract.hh"

#include <sstream>

namespace wo {

ContractReport
checkExecution(const MultiProgram &program, const ExecutionTrace &trace,
               const RunResult *hw_result, const ContractOptions &options)
{
    ContractReport report;
    report.scReport = verifySc(trace, options.scLimits);
    report.appearsSc = report.scReport.sc();

    if (options.checkOutcomeSet && hw_result != nullptr) {
        report.outcomeChecked = true;
        OutcomeSet set = enumerateOutcomes(program, options.enumLimits);
        report.outcomeSetBounded = set.bounded;
        report.outcomeInScSet = set.outcomes.count(*hw_result) > 0;
    }
    return report;
}

std::string
ContractReport::toString() const
{
    std::ostringstream oss;
    oss << (appearsSc ? "appears SC" : "VIOLATES SC appearance") << " ["
        << scReport.toString() << "]";
    if (outcomeChecked) {
        oss << "; outcome "
            << (outcomeInScSet ? "in" : "NOT in")
            << " idealized outcome set"
            << (outcomeSetBounded ? " (bounded)" : "");
    }
    return oss.str();
}

} // namespace wo
