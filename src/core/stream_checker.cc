#include "core/stream_checker.hh"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>

namespace wo {

namespace {

bool
isFinal(const Access &a)
{
    return a.commitTick != kNoTick && a.gpTick != kNoTick;
}

} // namespace

StreamingDrf0Checker::StreamingDrf0Checker(int numProcs, RaceDetectMode mode)
    : det_(numProcs, mode), nprocs_(numProcs)
{
}

void
StreamingDrf0Checker::reset(int numProcs)
{
    det_.reset(numProcs);
    nprocs_ = numProcs;
    next_ = 0;
    fedAhead_.clear();
    hb_cyclic_ = false;
}

bool
StreamingDrf0Checker::isFed(int id) const
{
    if (id < next_)
        return true;
    return std::binary_search(fedAhead_.begin(), fedAhead_.end(), id);
}

void
StreamingDrf0Checker::markFed(int id)
{
    assert(id >= next_);
    if (id == next_) {
        ++next_;
        // Absorb any previously fed run that is now contiguous.
        std::size_t k = 0;
        while (k < fedAhead_.size() && fedAhead_[k] == next_) {
            ++next_;
            ++k;
        }
        if (k > 0)
            fedAhead_.erase(fedAhead_.begin(),
                            fedAhead_.begin() + static_cast<long>(k));
        return;
    }
    auto it = std::lower_bound(fedAhead_.begin(), fedAhead_.end(), id);
    fedAhead_.insert(it, id);
}

void
StreamingDrf0Checker::onAccess(const Access &a)
{
    assert(a.id == next_ && fedAhead_.empty());
    det_.onAccess(a);
    ++next_;
}

bool
StreamingDrf0Checker::feedTopo(const ExecutionTrace &trace,
                               const std::vector<int> &batch)
{
    const int n = static_cast<int>(batch.size());
    if (n == 0)
        return true;
    // Local indices 0..n-1 over batch (which is ascending in id).
    auto localOf = [&](int id) {
        auto it = std::lower_bound(batch.begin(), batch.end(), id);
        return static_cast<int>(it - batch.begin());
    };
    std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    auto addEdge = [&](int u, int v) {
        succ[static_cast<std::size_t>(u)].push_back(v);
        ++indeg[static_cast<std::size_t>(v)];
    };
    // po: consecutive same-proc members. Per-proc id order is record
    // order, i.e. program order, for every trace source that feeds this
    // checker.
    std::vector<int> lastOfProc(static_cast<std::size_t>(nprocs_), -1);
    // so: members that are syncs, per address in (commitTick, id) order.
    std::unordered_map<Addr, std::vector<int>> syncsByAddr;
    for (int k = 0; k < n; ++k) {
        const Access &a = trace.at(batch[static_cast<std::size_t>(k)]);
        if (a.proc >= 0) {
            if (lastOfProc[static_cast<std::size_t>(a.proc)] >= 0)
                addEdge(lastOfProc[static_cast<std::size_t>(a.proc)], k);
            lastOfProc[static_cast<std::size_t>(a.proc)] = k;
        }
        if (a.sync())
            syncsByAddr[a.addr].push_back(a.id);
    }
    for (auto &[addr, ids] : syncsByAddr) {
        std::sort(ids.begin(), ids.end(), [&](int x, int y) {
            const Access &ax = trace.at(x);
            const Access &ay = trace.at(y);
            if (ax.commitTick != ay.commitTick)
                return ax.commitTick < ay.commitTick;
            return x < y;
        });
        for (std::size_t k = 1; k < ids.size(); ++k)
            addEdge(localOf(ids[k - 1]), localOf(ids[k]));
    }
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(n));
    std::queue<int> ready;
    for (int k = 0; k < n; ++k) {
        if (indeg[static_cast<std::size_t>(k)] == 0)
            ready.push(k);
    }
    while (!ready.empty()) {
        int u = ready.front();
        ready.pop();
        order.push_back(u);
        for (int v : succ[static_cast<std::size_t>(u)]) {
            if (--indeg[static_cast<std::size_t>(v)] == 0)
                ready.push(v);
        }
    }
    if (static_cast<int>(order.size()) != n)
        return false;
    for (int k : order)
        det_.onAccess(trace.at(batch[static_cast<std::size_t>(k)]));
    for (int k = 0; k < n; ++k)
        markFed(batch[static_cast<std::size_t>(k)]);
    return true;
}

int
StreamingDrf0Checker::drainWindow(const ExecutionTrace &trace, Tick now)
{
    // Admission horizon H: an access may be ordered now only if its
    // commit tick is strictly below every commit tick we do not yet
    // know. Unknown commits are (a) accesses not yet committed — they
    // will commit at or after `now` — and (b) committed-but-not-gp
    // accesses, whose trace record is still being patched.
    Tick h = now;
    for (const Access &a : trace.accesses()) {
        if (isFed(a.id) || isFinal(a))
            continue;
        if (a.commitTick != kNoTick && a.commitTick < h)
            h = a.commitTick;
    }

    // An admissible access whose program-order predecessor is not
    // admissible cannot be fed (po would be violated); if such an access
    // exists, its commit tick is itself an unknown-order point for the
    // synchronization order, so it lowers the horizon. Iterate to a
    // fixpoint — H only shrinks, so this terminates.
    std::vector<char> blocked(static_cast<std::size_t>(
                                  std::max(nprocs_, trace.numProcs())),
                              0);
    bool again = true;
    while (again) {
        again = false;
        std::fill(blocked.begin(), blocked.end(), 0);
        for (const Access &a : trace.accesses()) {
            if (isFed(a.id))
                continue;
            const bool admissible = isFinal(a) && a.commitTick < h;
            std::size_t p = static_cast<std::size_t>(a.proc);
            if (!admissible) {
                blocked[p] = 1;
                continue;
            }
            if (blocked[p] && a.commitTick < h) {
                h = a.commitTick;
                again = true;
                break;
            }
        }
    }

    std::vector<int> batch;
    std::fill(blocked.begin(), blocked.end(), 0);
    for (const Access &a : trace.accesses()) {
        if (isFed(a.id))
            continue;
        std::size_t p = static_cast<std::size_t>(a.proc);
        if (!(isFinal(a) && a.commitTick < h) || blocked[p]) {
            blocked[p] = 1;
            continue;
        }
        batch.push_back(a.id);
    }
    if (batch.empty())
        return 0;
    bool ok = feedTopo(trace, batch);
    // A mid-run batch draws only from finalized accesses of an acyclic
    // machine execution; its (po U so) restriction is acyclic.
    assert(ok);
    (void)ok;
    return static_cast<int>(batch.size());
}

int
StreamingDrf0Checker::retireReady(const ExecutionTrace &trace) const
{
    int n = next_ - trace.firstId();
    if (n < 0)
        n = 0;
    if (n > trace.resident())
        n = trace.resident();
    return n;
}

void
StreamingDrf0Checker::finish(const ExecutionTrace &trace)
{
    std::vector<int> batch;
    for (const Access &a : trace.accesses()) {
        if (!isFed(a.id))
            batch.push_back(a.id);
    }
    if (batch.empty())
        return;
    if (!feedTopo(trace, batch)) {
        // Cyclic leftover (po U so): mark the verdict degenerate and
        // consume in id order so counters still balance. The whole-trace
        // oracle falls back to the bitset closure in this case; callers
        // comparing differentially must check hbCyclic() first.
        hb_cyclic_ = true;
        for (int id : batch) {
            det_.onAccess(trace.at(id));
            markFed(id);
        }
    }
}

std::vector<Race>
StreamingDrf0Checker::sortedRaces() const
{
    std::vector<Race> out = det_.races();
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace wo
