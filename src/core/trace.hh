/**
 * @file
 * ExecutionTrace: the record of one execution's dynamic memory accesses,
 * plus RunResult: the paper's notion of the "result" of an execution.
 */

#ifndef WO_CORE_TRACE_HH
#define WO_CORE_TRACE_HH

#include <map>
#include <string>
#include <vector>

#include "core/access.hh"
#include "sim/types.hh"

namespace wo {

/**
 * All dynamic memory accesses of one execution.
 *
 * Accesses are stored in the order they were recorded (commit order for the
 * hardware simulator, execution order for the idealized architecture).
 * Initializing writes are modelled implicitly: every location starts at an
 * initial value, ordered before all program accesses — exactly the paper's
 * hypothetical initializing write + synchronization preamble.
 */
class ExecutionTrace
{
  public:
    ExecutionTrace() = default;

    /** Append an access; assigns and returns its trace id. */
    int add(Access a);

    /** Number of accesses. */
    int size() const { return static_cast<int>(accesses_.size()); }

    /** Access by trace id. */
    const Access &at(int id) const { return accesses_.at(id); }

    /** Mutable access (the simulator patches gp times in later). */
    Access &mutableAt(int id) { return accesses_.at(id); }

    /** All accesses. */
    const std::vector<Access> &accesses() const { return accesses_; }

    /** Remove the most recently added access (backtracking support). */
    void popLast() { accesses_.pop_back(); }

    /** Number of processors appearing in the trace. */
    int numProcs() const;

    /** Trace ids of @p proc's accesses, sorted by program order. */
    std::vector<int> accessesOf(ProcId proc) const;

    /** Trace ids of synchronization accesses to @p addr, sorted by commit
     * time (ties broken by trace order). */
    std::vector<int> syncsAt(Addr addr) const;

    /** Distinct addresses appearing in the trace. */
    std::vector<Addr> addrs() const;

    /** Set the initial value of a location. */
    void setInitial(Addr addr, Word value);

    /** Initial value of @p addr (default 0). */
    Word initialValue(Addr addr) const;

    /** All explicitly-set initial values. */
    const std::map<Addr, Word> &initials() const { return initials_; }

    /** Multi-line dump for debugging and reports. */
    std::string toString() const;

  private:
    std::vector<Access> accesses_;
    std::map<Addr, Word> initials_;
};

/**
 * The observable outcome of an execution: the values returned by reads are
 * summarized by the final architectural state (registers), together with
 * the final state of memory — the two components of the paper's "result".
 */
struct RunResult
{
    /** Final memory values over the touched addresses. */
    std::map<Addr, Word> finalMemory;

    /** Final register values, one vector per processor. */
    std::vector<std::vector<Word>> registers;

    /** True if every processor reached Halt. */
    bool allHalted = false;

    bool operator==(const RunResult &o) const
    {
        return finalMemory == o.finalMemory && registers == o.registers &&
               allHalted == o.allHalted;
    }

    bool operator<(const RunResult &o) const
    {
        if (finalMemory != o.finalMemory)
            return finalMemory < o.finalMemory;
        if (registers != o.registers)
            return registers < o.registers;
        return allHalted < o.allHalted;
    }

    /** One-line description. */
    std::string toString() const;
};

} // namespace wo

#endif // WO_CORE_TRACE_HH
