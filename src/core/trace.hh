/**
 * @file
 * ExecutionTrace: the record of one execution's dynamic memory accesses,
 * plus RunResult: the paper's notion of the "result" of an execution.
 */

#ifndef WO_CORE_TRACE_HH
#define WO_CORE_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/access.hh"
#include "sim/types.hh"

namespace wo {

/**
 * All dynamic memory accesses of one execution.
 *
 * Accesses are stored in the order they were recorded (commit order for the
 * hardware simulator, execution order for the idealized architecture).
 * Initializing writes are modelled implicitly: every location starts at an
 * initial value, ordered before all program accesses — exactly the paper's
 * hypothetical initializing write + synchronization preamble.
 *
 * Per-processor and per-sync-location id indices are maintained
 * incrementally by add()/popLast()/popFront(), so the happens-before
 * machinery's accessesOf()/syncsAt() queries return cached const references
 * instead of scanning and copying the trace on every call.
 *
 * Windowed retention: popFront() retires the oldest accesses so only a
 * sliding window stays resident. Trace ids are stable — they keep naming
 * the same access after retirement — but at()/mutableAt() may only be
 * called for ids in [firstId(), size()). The invariant
 * retired() + resident() == size() holds at all times, and
 * windowHighWater() records the largest resident population ever reached,
 * so bounded-retention behaviour is observable.
 */
class ExecutionTrace
{
  public:
    ExecutionTrace() = default;

    /** Append an access; assigns and returns its trace id. */
    int add(Access a);

    /** Pre-size storage for @p n accesses (hot recording loops). */
    void reserve(int n);

    /** One past the largest trace id ever assigned. Equals the number of
     * accesses when nothing has been retired (the common, whole-trace
     * case), so full-trace callers iterate ids in [0, size()) unchanged. */
    int size() const { return base_ + static_cast<int>(accesses_.size()); }

    /** Smallest trace id still resident (0 until popFront is used). */
    int firstId() const { return base_; }

    /** Number of accesses currently resident in the window. */
    int resident() const { return static_cast<int>(accesses_.size()); }

    /** Number of accesses retired by popFront() since the last clear(). */
    std::int64_t retired() const { return base_; }

    /** Largest resident population ever reached since the last clear(). */
    int windowHighWater() const { return high_water_; }

    /** Access by trace id (must be >= firstId()). */
    const Access &at(int id) const
    {
        return accesses_.at(static_cast<std::size_t>(id - base_));
    }

    /** Mutable access (the simulator patches gp times in later). The id
     * must still be resident: the replay drain only retires accesses whose
     * commit/gp ticks are final. */
    Access &mutableAt(int id)
    {
        return accesses_.at(static_cast<std::size_t>(id - base_));
    }

    /** All resident accesses, oldest first. */
    const std::vector<Access> &accesses() const { return accesses_; }

    /** Remove the most recently added access (backtracking support). */
    void popLast();

    /** Retire the @p n oldest resident accesses. Their ids remain
     * assigned (size() does not shrink) but they can no longer be
     * inspected; per-proc and per-sync index caches are pruned and
     * invalidated. */
    void popFront(int n);

    /** Drop every access, index, initial value and retention counter,
     * keeping allocated capacity where the containers allow (System
     * reuse). */
    void clear();

    /** Number of processors appearing in the trace. */
    int numProcs() const { return static_cast<int>(byProc_.size()); }

    /** Trace ids of @p proc's resident accesses, sorted by program order.
     * The reference is valid until the next add()/popLast()/popFront(). */
    const std::vector<int> &accessesOf(ProcId proc) const;

    /** Trace ids of resident synchronization accesses to @p addr, sorted
     * by commit time (ties broken by trace order). The reference is valid
     * until the next add()/popLast()/popFront(). */
    const std::vector<int> &syncsAt(Addr addr) const;

    /** Distinct addresses appearing in the resident window. */
    std::vector<Addr> addrs() const;

    /** Distinct addresses with at least one resident synchronization
     * access, ascending. */
    std::vector<Addr> syncAddrs() const;

    /** Set the initial value of a location. */
    void setInitial(Addr addr, Word value);

    /** Initial value of @p addr (default 0). */
    Word initialValue(Addr addr) const;

    /** All explicitly-set initial values. */
    const std::map<Addr, Word> &initials() const { return initials_; }

    /** Multi-line dump for debugging and reports (resident window only). */
    std::string toString() const;

  private:
    /** Incrementally maintained id list plus its lazily sorted view. */
    struct IndexList
    {
        std::vector<int> ids; ///< append order
        mutable std::vector<int> sorted;
        mutable bool dirty = true;
    };

    std::vector<Access> accesses_;
    std::map<Addr, Word> initials_;
    std::vector<IndexList> byProc_;
    std::map<Addr, IndexList> syncs_;
    int base_ = 0;       ///< first resident id == number retired
    int high_water_ = 0; ///< max resident() ever reached
};

/**
 * The observable outcome of an execution: the values returned by reads are
 * summarized by the final architectural state (registers), together with
 * the final state of memory — the two components of the paper's "result".
 */
struct RunResult
{
    /** Final memory values over the touched addresses. */
    std::map<Addr, Word> finalMemory;

    /** Final register values, one vector per processor. */
    std::vector<std::vector<Word>> registers;

    /** True if every processor reached Halt. */
    bool allHalted = false;

    bool operator==(const RunResult &o) const
    {
        return finalMemory == o.finalMemory && registers == o.registers &&
               allHalted == o.allHalted;
    }

    bool operator<(const RunResult &o) const
    {
        if (finalMemory != o.finalMemory)
            return finalMemory < o.finalMemory;
        if (registers != o.registers)
            return registers < o.registers;
        return allHalted < o.allHalted;
    }

    /** One-line description. */
    std::string toString() const;
};

} // namespace wo

#endif // WO_CORE_TRACE_HH
