/**
 * @file
 * ExecutionTrace: the record of one execution's dynamic memory accesses,
 * plus RunResult: the paper's notion of the "result" of an execution.
 */

#ifndef WO_CORE_TRACE_HH
#define WO_CORE_TRACE_HH

#include <map>
#include <string>
#include <vector>

#include "core/access.hh"
#include "sim/types.hh"

namespace wo {

/**
 * All dynamic memory accesses of one execution.
 *
 * Accesses are stored in the order they were recorded (commit order for the
 * hardware simulator, execution order for the idealized architecture).
 * Initializing writes are modelled implicitly: every location starts at an
 * initial value, ordered before all program accesses — exactly the paper's
 * hypothetical initializing write + synchronization preamble.
 *
 * Per-processor and per-sync-location id indices are maintained
 * incrementally by add()/popLast(), so the happens-before machinery's
 * accessesOf()/syncsAt() queries return cached const references instead
 * of scanning and copying the trace on every call.
 */
class ExecutionTrace
{
  public:
    ExecutionTrace() = default;

    /** Append an access; assigns and returns its trace id. */
    int add(Access a);

    /** Pre-size storage for @p n accesses (hot recording loops). */
    void reserve(int n);

    /** Number of accesses. */
    int size() const { return static_cast<int>(accesses_.size()); }

    /** Access by trace id. */
    const Access &at(int id) const { return accesses_.at(id); }

    /** Mutable access (the simulator patches gp times in later). */
    Access &mutableAt(int id) { return accesses_.at(id); }

    /** All accesses. */
    const std::vector<Access> &accesses() const { return accesses_; }

    /** Remove the most recently added access (backtracking support). */
    void popLast();

    /** Drop every access, index and initial value, keeping allocated
     * capacity where the containers allow (System reuse). */
    void clear();

    /** Number of processors appearing in the trace. */
    int numProcs() const { return static_cast<int>(byProc_.size()); }

    /** Trace ids of @p proc's accesses, sorted by program order. The
     * reference is valid until the next add()/popLast(). */
    const std::vector<int> &accessesOf(ProcId proc) const;

    /** Trace ids of synchronization accesses to @p addr, sorted by commit
     * time (ties broken by trace order). The reference is valid until the
     * next add()/popLast(). */
    const std::vector<int> &syncsAt(Addr addr) const;

    /** Distinct addresses appearing in the trace. */
    std::vector<Addr> addrs() const;

    /** Distinct addresses with at least one synchronization access,
     * ascending. */
    std::vector<Addr> syncAddrs() const;

    /** Set the initial value of a location. */
    void setInitial(Addr addr, Word value);

    /** Initial value of @p addr (default 0). */
    Word initialValue(Addr addr) const;

    /** All explicitly-set initial values. */
    const std::map<Addr, Word> &initials() const { return initials_; }

    /** Multi-line dump for debugging and reports. */
    std::string toString() const;

  private:
    /** Incrementally maintained id list plus its lazily sorted view. */
    struct IndexList
    {
        std::vector<int> ids; ///< append order
        mutable std::vector<int> sorted;
        mutable bool dirty = true;
    };

    std::vector<Access> accesses_;
    std::map<Addr, Word> initials_;
    std::vector<IndexList> byProc_;
    std::map<Addr, IndexList> syncs_;
};

/**
 * The observable outcome of an execution: the values returned by reads are
 * summarized by the final architectural state (registers), together with
 * the final state of memory — the two components of the paper's "result".
 */
struct RunResult
{
    /** Final memory values over the touched addresses. */
    std::map<Addr, Word> finalMemory;

    /** Final register values, one vector per processor. */
    std::vector<std::vector<Word>> registers;

    /** True if every processor reached Halt. */
    bool allHalted = false;

    bool operator==(const RunResult &o) const
    {
        return finalMemory == o.finalMemory && registers == o.registers &&
               allHalted == o.allHalted;
    }

    bool operator<(const RunResult &o) const
    {
        if (finalMemory != o.finalMemory)
            return finalMemory < o.finalMemory;
        if (registers != o.registers)
            return registers < o.registers;
        return allHalted < o.allHalted;
    }

    /** One-line description. */
    std::string toString() const;
};

} // namespace wo

#endif // WO_CORE_TRACE_HH
