#include "core/happens_before.hh"

#include <algorithm>
#include <queue>

namespace wo {

HappensBefore::HappensBefore(const ExecutionTrace &trace)
{
    n_ = trace.size();
    words_ = (n_ + 63) / 64;
    reach_.assign(n_, BitRow(words_, 0));

    // Direct po edges: consecutive accesses of each processor. The
    // transitive closure below recovers the full program order.
    int nprocs = trace.numProcs();
    for (ProcId p = 0; p < nprocs; ++p) {
        const std::vector<int> &ids = trace.accessesOf(p);
        for (std::size_t k = 1; k < ids.size(); ++k)
            edges_.emplace_back(ids[k - 1], ids[k]);
    }

    // Direct so edges: consecutive synchronization operations per location
    // in commit order.
    for (Addr a : trace.syncAddrs()) {
        const std::vector<int> &ids = trace.syncsAt(a);
        for (std::size_t k = 1; k < ids.size(); ++k)
            edges_.emplace_back(ids[k - 1], ids[k]);
    }

    // Kahn topological sort over the direct edges.
    std::vector<std::vector<int>> succ(n_);
    std::vector<int> indeg(n_, 0);
    for (const auto &[u, v] : edges_) {
        succ[u].push_back(v);
        ++indeg[v];
    }
    std::vector<int> topo;
    topo.reserve(n_);
    std::queue<int> ready;
    for (int i = 0; i < n_; ++i) {
        if (indeg[i] == 0)
            ready.push(i);
    }
    while (!ready.empty()) {
        int u = ready.front();
        ready.pop();
        topo.push_back(u);
        for (int v : succ[u]) {
            if (--indeg[v] == 0)
                ready.push(v);
        }
    }
    if (static_cast<int>(topo.size()) != n_) {
        // Cyclic: leave every pair on the cycle unordered. Nodes never
        // popped keep empty reach rows; nodes popped get closure over the
        // acyclic part only.
        acyclic_ = false;
    }

    // Closure: process in reverse topological order; reach[u] = union over
    // successors v of ({v} U reach[v]).
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        int u = *it;
        for (int v : succ[u]) {
            setBit(reach_[u], v);
            for (int w = 0; w < words_; ++w)
                reach_[u][w] |= reach_[v][w];
        }
    }
}

bool
HappensBefore::ordered(int a, int b) const
{
    if (a < 0 || b < 0 || a >= n_ || b >= n_ || a == b)
        return false;
    return bit(reach_[a], b);
}

} // namespace wo
