/**
 * @file
 * Sequential-consistency verification of recorded executions.
 *
 * Given the per-processor program-ordered sequences of dynamic accesses of
 * one execution (with the values reads returned), decide whether there
 * exists a single total order of all accesses, consistent with every
 * processor's program order, in which each read returns the value of the
 * most recent preceding write to the same location (or the initial value).
 *
 * This is Lamport's definition operationalized, and is the check the new
 * definition of weak ordering (Definition 2) requires: hardware must
 * "appear sequentially consistent" to conforming software, i.e. every
 * execution it produces for such software must pass this verifier.
 *
 * The search is a memoized backtracking exploration over frontier states
 * (one index per processor + current memory contents). Deciding this
 * problem is NP-hard in general, but litmus- and workload-sized executions
 * verify quickly; a state cap makes the verifier return Unknown rather
 * than run away.
 *
 * Hot-path representation: addresses are interned once up front so all
 * per-location state (frontier memory, single-toucher flags, pending
 * write counts) lives in dense vectors, not std::map nodes. A
 * per-(location, value) remaining-write count prunes any state in which
 * some processor's next read can no longer be satisfied by any pending
 * write. verifyScParallel() additionally splits the first-level branches
 * of one verification across a thread pool, with the state budget shared
 * globally so maxStates caps the whole search, not each worker.
 */

#ifndef WO_CORE_SC_VERIFIER_HH
#define WO_CORE_SC_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.hh"

namespace wo {

/** Verdict of the SC verifier. */
enum class ScVerdict {
    Sc,      ///< a witness total order exists
    NotSc,   ///< exhaustively shown: no total order explains the execution
    Unknown, ///< state cap exceeded before a verdict was reached
};

/** Outcome of verifying one execution. */
struct ScReport
{
    ScVerdict verdict = ScVerdict::Unknown;

    /** Witness: trace ids in a legal total order (when verdict == Sc). */
    std::vector<int> witnessOrder;

    /** Distinct search states explored. */
    std::uint64_t statesExplored = 0;

    bool sc() const { return verdict == ScVerdict::Sc; }

    std::string toString() const;
};

/** Limits for the verifier's search. */
struct ScVerifierLimits
{
    std::uint64_t maxStates = 20000000;
};

/**
 * Check whether @p trace has a sequentially consistent explanation.
 *
 * Initial memory values are taken from the trace's initials (default 0).
 */
ScReport verifySc(const ExecutionTrace &trace,
                  const ScVerifierLimits &limits = {});

class ThreadPool;

/**
 * Root-splitting variant: after the eager commuting-access drain, the
 * enabled first-level branches are explored concurrently on @p pool,
 * each worker with its own memo table but a shared atomic state budget
 * (limits.maxStates caps the sum over all workers).
 *
 * The verdict is deterministic and equals verifySc()'s; statesExplored
 * may differ run to run because workers stop early once any branch finds
 * a witness. Falls back to the serial search when the pool has one
 * thread or fewer than two branches are enabled.
 */
ScReport verifyScParallel(const ExecutionTrace &trace, ThreadPool &pool,
                          const ScVerifierLimits &limits = {});

} // namespace wo

#endif // WO_CORE_SC_VERIFIER_HH
