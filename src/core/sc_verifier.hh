/**
 * @file
 * Sequential-consistency verification of recorded executions.
 *
 * Given the per-processor program-ordered sequences of dynamic accesses of
 * one execution (with the values reads returned), decide whether there
 * exists a single total order of all accesses, consistent with every
 * processor's program order, in which each read returns the value of the
 * most recent preceding write to the same location (or the initial value).
 *
 * This is Lamport's definition operationalized, and is the check the new
 * definition of weak ordering (Definition 2) requires: hardware must
 * "appear sequentially consistent" to conforming software, i.e. every
 * execution it produces for such software must pass this verifier.
 *
 * The search is a memoized backtracking exploration over frontier states
 * (one index per processor + current memory contents). Deciding this
 * problem is NP-hard in general, but litmus- and workload-sized executions
 * verify quickly; a state cap makes the verifier return Unknown rather
 * than run away.
 */

#ifndef WO_CORE_SC_VERIFIER_HH
#define WO_CORE_SC_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.hh"

namespace wo {

/** Verdict of the SC verifier. */
enum class ScVerdict {
    Sc,      ///< a witness total order exists
    NotSc,   ///< exhaustively shown: no total order explains the execution
    Unknown, ///< state cap exceeded before a verdict was reached
};

/** Outcome of verifying one execution. */
struct ScReport
{
    ScVerdict verdict = ScVerdict::Unknown;

    /** Witness: trace ids in a legal total order (when verdict == Sc). */
    std::vector<int> witnessOrder;

    /** Distinct search states explored. */
    std::uint64_t statesExplored = 0;

    bool sc() const { return verdict == ScVerdict::Sc; }

    std::string toString() const;
};

/** Limits for the verifier's search. */
struct ScVerifierLimits
{
    std::uint64_t maxStates = 20000000;
};

/**
 * Check whether @p trace has a sequentially consistent explanation.
 *
 * Initial memory values are taken from the trace's initials (default 0).
 */
ScReport verifySc(const ExecutionTrace &trace,
                  const ScVerifierLimits &limits = {});

} // namespace wo

#endif // WO_CORE_SC_VERIFIER_HH
