/**
 * @file
 * Vector clocks and FastTrack-style epochs for the happens-before
 * relation (po U so)+.
 *
 * A vector clock VC maps each processor p to the number of p's accesses
 * known to happen-before the clock's owner. An access a by processor p is
 * summarized by its epoch c@p (c = p's clock value when a executed);
 * a happens-before b iff c <= VC_b[p], an O(1) test against b's clock.
 * Epochs are the key compression: most per-address state never needs a
 * full vector (cf. FastTrack), so race checks on the DRF0 hot path cost
 * O(1) instead of O(P) or O(n).
 */

#ifndef WO_CORE_VECTOR_CLOCK_HH
#define WO_CORE_VECTOR_CLOCK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace wo {

/**
 * An epoch c@p: the compressed signature of one access — processor p's
 * clock value c at the time the access executed. The default-constructed
 * epoch (proc == kNoProc) means "no access recorded".
 */
struct Epoch
{
    std::uint32_t clock = 0;
    ProcId proc = kNoProc;

    /** True once an access has been recorded. */
    bool some() const { return proc != kNoProc; }

    bool operator==(const Epoch &o) const
    {
        return clock == o.clock && proc == o.proc;
    }
};

/**
 * A growable vector clock. Entries for processors never touched read as
 * zero, so clocks for 2-processor traces stay 2 entries long regardless
 * of the detector's capacity.
 */
class VectorClock
{
  public:
    VectorClock() = default;
    explicit VectorClock(int nprocs)
        : c_(static_cast<std::size_t>(nprocs), 0)
    {}

    /** Clock of processor @p p (0 if never ticked or joined). */
    std::uint32_t
    get(ProcId p) const
    {
        return static_cast<std::size_t>(p) < c_.size()
                   ? c_[static_cast<std::size_t>(p)]
                   : 0;
    }

    /** Advance processor @p p's component; returns the new value. */
    std::uint32_t
    tick(ProcId p)
    {
        grow(p);
        return ++c_[static_cast<std::size_t>(p)];
    }

    /** Pointwise maximum with @p o (the join of the two clocks). */
    void join(const VectorClock &o);

    /** True iff epoch @p e's access happens-before this clock's owner. */
    bool
    covers(const Epoch &e) const
    {
        return e.clock <= get(e.proc);
    }

    /** Reset every component to zero, keeping capacity. */
    void
    clear()
    {
        std::fill(c_.begin(), c_.end(), 0);
    }

    /** Number of allocated components. */
    int size() const { return static_cast<int>(c_.size()); }

    /** "<c0,c1,...>" for diagnostics. */
    std::string toString() const;

  private:
    void
    grow(ProcId p)
    {
        if (static_cast<std::size_t>(p) >= c_.size())
            c_.resize(static_cast<std::size_t>(p) + 1, 0);
    }

    std::vector<std::uint32_t> c_;
};

} // namespace wo

#endif // WO_CORE_VECTOR_CLOCK_HH
