/**
 * @file
 * DRF0 (Data-Race-Free-0) checking — Definition 3 of the paper.
 *
 * A program obeys DRF0 iff (1) all synchronization operations are
 * hardware-recognizable and access exactly one location (guaranteed by our
 * ISA), and (2) for ANY execution on the idealized architecture (atomic,
 * program-order), all conflicting accesses are ordered by the
 * happens-before relation of that execution.
 *
 * Two entry points are provided:
 *  - checkTrace(): classify one concrete execution (used for the Figure 2
 *    example and counter-example, and for dynamic race reporting);
 *  - checkProgram(): exhaustively enumerate idealized executions of a
 *    program and classify each (the literal Definition 3 quantifier).
 *
 * Race detection runs on the streaming vector-clock engine
 * (core/race_detector.hh): O(n * P) per trace instead of the
 * O(n^2/64) dense happens-before closure, and — for the sampled program
 * check — online, aborting an execution at its first race. The closure
 * (core/happens_before.hh) survives as checkTraceBitset(), the
 * differential oracle and the fallback for artificially cyclic traces.
 */

#ifndef WO_CORE_DRF0_CHECKER_HH
#define WO_CORE_DRF0_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/happens_before.hh"
#include "core/race_detector.hh"
#include "core/trace.hh"
#include "cpu/program.hh"

namespace wo {

/** Outcome of checking one execution trace. */
struct Drf0TraceReport
{
    bool raceFree = true;

    /** True if (po U so) was cyclic — impossible for executions of the
     * idealized or simulated machines, but constructible artificially.
     * Accesses on a cycle are treated as unordered (so conflicting ones
     * race), and this flag marks the verdict as degenerate. */
    bool hbCyclic = false;

    std::vector<Race> races;

    /** Render races against @p trace for human consumption. */
    std::string toString(const ExecutionTrace &trace) const;
};

/** Outcome of exhaustively checking a program. */
struct Drf0ProgramReport
{
    /** True iff every explored idealized execution was race-free. */
    bool obeysDrf0 = true;

    /** True if enumeration hit a cap, so the verdict is only a bounded
     * guarantee. */
    bool bounded = false;

    /** Number of complete idealized executions explored. */
    std::uint64_t executions = 0;

    /** A witness racy execution, when one was found. */
    ExecutionTrace witness;
    Drf0TraceReport witnessReport;
};

/** Limits for exhaustive program checking. */
struct Drf0CheckLimits
{
    /** Max instructions executed along one interleaving. */
    int maxStepsPerExecution = 300;

    /** Max interleavings explored (complete or capped). Exhaustive
     * enumeration is exponential in interleavings; programs with
     * unbounded spin loops will hit this cap and get a bounded verdict —
     * use checkProgramSampled() for those. */
    std::uint64_t maxExecutions = 50000;
};

/** Classify one execution: find every conflicting pair not ordered by the
 * happens-before relation of the trace. Runs the vector-clock engine;
 * falls back to the bitset closure for cyclic (po U so). */
Drf0TraceReport checkTrace(const ExecutionTrace &trace);

/** The pre-vector-clock implementation: dense bitset happens-before
 * closure plus an all-pairs conflict scan. O(n^2/64) time and memory —
 * kept as the differential oracle, for small-trace queries, and as the
 * cyclic-trace fallback. Reports the same races as checkTrace(). */
Drf0TraceReport checkTraceBitset(const ExecutionTrace &trace);

/** Exhaustively check a program over idealized executions
 * (Definition 3). */
Drf0ProgramReport checkProgram(const MultiProgram &program,
                               const Drf0CheckLimits &limits = {});

/**
 * Bounded DRF0 check over randomly scheduled idealized executions.
 *
 * For programs whose interleaving space is too large to enumerate
 * (anything with unbounded spin loops), run @p num_schedules seeded random
 * interleavings and race-check each trace. A race found proves the
 * program violates DRF0; a clean run is evidence, not proof (the report
 * is always marked bounded).
 *
 * Races are detected online by a vector-clock detector attached to the
 * interpreter, so a racy schedule is abandoned at its first race; the
 * witness is then rebuilt by replaying that schedule to completion, which
 * keeps the report identical to the offline full-trace check.
 */
Drf0ProgramReport checkProgramSampled(const MultiProgram &program,
                                      int num_schedules,
                                      std::uint64_t seed = 1,
                                      int max_steps_per_execution = 10000);

} // namespace wo

#endif // WO_CORE_DRF0_CHECKER_HH
