#include "core/trace.hh"

#include <algorithm>
#include <set>
#include <sstream>

namespace wo {

int
ExecutionTrace::add(Access a)
{
    a.id = static_cast<int>(accesses_.size());
    accesses_.push_back(a);
    return a.id;
}

int
ExecutionTrace::numProcs() const
{
    int m = 0;
    for (const auto &a : accesses_)
        m = std::max(m, a.proc + 1);
    return m;
}

std::vector<int>
ExecutionTrace::accessesOf(ProcId proc) const
{
    std::vector<int> ids;
    for (const auto &a : accesses_) {
        if (a.proc == proc)
            ids.push_back(a.id);
    }
    std::sort(ids.begin(), ids.end(), [this](int x, int y) {
        return accesses_[x].poIndex < accesses_[y].poIndex;
    });
    return ids;
}

std::vector<int>
ExecutionTrace::syncsAt(Addr addr) const
{
    std::vector<int> ids;
    for (const auto &a : accesses_) {
        if (a.sync() && a.addr == addr)
            ids.push_back(a.id);
    }
    std::sort(ids.begin(), ids.end(), [this](int x, int y) {
        const Access &ax = accesses_[x];
        const Access &ay = accesses_[y];
        if (ax.commitTick != ay.commitTick)
            return ax.commitTick < ay.commitTick;
        return x < y;
    });
    return ids;
}

std::vector<Addr>
ExecutionTrace::addrs() const
{
    std::set<Addr> s;
    for (const auto &a : accesses_)
        s.insert(a.addr);
    return {s.begin(), s.end()};
}

void
ExecutionTrace::setInitial(Addr addr, Word value)
{
    initials_[addr] = value;
}

Word
ExecutionTrace::initialValue(Addr addr) const
{
    auto it = initials_.find(addr);
    return it == initials_.end() ? 0 : it->second;
}

std::string
ExecutionTrace::toString() const
{
    std::ostringstream oss;
    for (const auto &a : accesses_)
        oss << "  #" << a.id << " " << a.toString() << '\n';
    return oss.str();
}

std::string
RunResult::toString() const
{
    std::ostringstream oss;
    oss << "mem{";
    bool first = true;
    for (const auto &[a, v] : finalMemory) {
        if (!first)
            oss << ",";
        first = false;
        oss << "[" << a << "]=" << v;
    }
    oss << "} regs{";
    for (std::size_t p = 0; p < registers.size(); ++p) {
        if (p)
            oss << ";";
        oss << "P" << p << ":";
        for (std::size_t r = 0; r < registers[p].size(); ++r) {
            if (r)
                oss << ",";
            oss << registers[p][r];
        }
    }
    oss << "}" << (allHalted ? "" : " (not halted)");
    return oss.str();
}

} // namespace wo
