#include "core/trace.hh"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace wo {

namespace {
const std::vector<int> kNoIds;

/** Erase every id below @p firstLive from an ascending id list. Returns
 * true if anything was removed. */
bool
prunePrefix(std::vector<int> &ids, int firstLive)
{
    auto cut = std::lower_bound(ids.begin(), ids.end(), firstLive);
    if (cut == ids.begin())
        return false;
    ids.erase(ids.begin(), cut);
    return true;
}
} // namespace

int
ExecutionTrace::add(Access a)
{
    a.id = base_ + static_cast<int>(accesses_.size());
    if (a.proc >= 0) {
        if (static_cast<std::size_t>(a.proc) >= byProc_.size())
            byProc_.resize(static_cast<std::size_t>(a.proc) + 1);
        IndexList &pi = byProc_[static_cast<std::size_t>(a.proc)];
        pi.ids.push_back(a.id);
        pi.dirty = true;
    }
    if (a.sync()) {
        IndexList &si = syncs_[a.addr];
        si.ids.push_back(a.id);
        si.dirty = true;
    }
    accesses_.push_back(a);
    if (static_cast<int>(accesses_.size()) > high_water_)
        high_water_ = static_cast<int>(accesses_.size());
    return a.id;
}

void
ExecutionTrace::reserve(int n)
{
    accesses_.reserve(static_cast<std::size_t>(n));
}

void
ExecutionTrace::popLast()
{
    assert(!accesses_.empty());
    const Access &a = accesses_.back();
    if (a.proc >= 0) {
        IndexList &pi = byProc_[static_cast<std::size_t>(a.proc)];
        pi.ids.pop_back();
        pi.dirty = true;
    }
    if (a.sync()) {
        auto it = syncs_.find(a.addr);
        it->second.ids.pop_back();
        if (it->second.ids.empty())
            syncs_.erase(it);
        else
            it->second.dirty = true;
    }
    accesses_.pop_back();
    // Keep numProcs() == highest present processor + 1.
    while (!byProc_.empty() && byProc_.back().ids.empty())
        byProc_.pop_back();
}

void
ExecutionTrace::popFront(int n)
{
    assert(n >= 0 && n <= static_cast<int>(accesses_.size()));
    if (n == 0)
        return;
    base_ += n;
    accesses_.erase(accesses_.begin(), accesses_.begin() + n);
    // The append-order id lists are ascending, so retirement is a prefix
    // erase; the sorted views are rebuilt lazily on next query.
    for (IndexList &pi : byProc_) {
        if (prunePrefix(pi.ids, base_))
            pi.dirty = true;
    }
    for (auto it = syncs_.begin(); it != syncs_.end();) {
        if (prunePrefix(it->second.ids, base_))
            it->second.dirty = true;
        if (it->second.ids.empty())
            it = syncs_.erase(it);
        else
            ++it;
    }
}

void
ExecutionTrace::clear()
{
    accesses_.clear();
    initials_.clear();
    byProc_.clear();
    syncs_.clear();
    base_ = 0;
    high_water_ = 0;
}

const std::vector<int> &
ExecutionTrace::accessesOf(ProcId proc) const
{
    if (proc < 0 || static_cast<std::size_t>(proc) >= byProc_.size())
        return kNoIds;
    const IndexList &pi = byProc_[static_cast<std::size_t>(proc)];
    if (pi.dirty) {
        pi.sorted = pi.ids;
        auto lt = [this](int x, int y) {
            const Access &ax = accesses_[static_cast<std::size_t>(x - base_)];
            const Access &ay = accesses_[static_cast<std::size_t>(y - base_)];
            if (ax.poIndex != ay.poIndex)
                return ax.poIndex < ay.poIndex;
            return x < y;
        };
        if (!std::is_sorted(pi.sorted.begin(), pi.sorted.end(), lt))
            std::sort(pi.sorted.begin(), pi.sorted.end(), lt);
        pi.dirty = false;
    }
    return pi.sorted;
}

const std::vector<int> &
ExecutionTrace::syncsAt(Addr addr) const
{
    auto it = syncs_.find(addr);
    if (it == syncs_.end())
        return kNoIds;
    const IndexList &si = it->second;
    if (si.dirty) {
        si.sorted = si.ids;
        auto lt = [this](int x, int y) {
            const Access &ax = accesses_[static_cast<std::size_t>(x - base_)];
            const Access &ay = accesses_[static_cast<std::size_t>(y - base_)];
            if (ax.commitTick != ay.commitTick)
                return ax.commitTick < ay.commitTick;
            return x < y;
        };
        if (!std::is_sorted(si.sorted.begin(), si.sorted.end(), lt))
            std::sort(si.sorted.begin(), si.sorted.end(), lt);
        si.dirty = false;
    }
    return si.sorted;
}

std::vector<Addr>
ExecutionTrace::addrs() const
{
    std::set<Addr> s;
    for (const auto &a : accesses_)
        s.insert(a.addr);
    return {s.begin(), s.end()};
}

std::vector<Addr>
ExecutionTrace::syncAddrs() const
{
    std::vector<Addr> out;
    out.reserve(syncs_.size());
    for (const auto &[addr, ids] : syncs_)
        out.push_back(addr);
    return out;
}

void
ExecutionTrace::setInitial(Addr addr, Word value)
{
    initials_[addr] = value;
}

Word
ExecutionTrace::initialValue(Addr addr) const
{
    auto it = initials_.find(addr);
    return it == initials_.end() ? 0 : it->second;
}

std::string
ExecutionTrace::toString() const
{
    std::ostringstream oss;
    for (const auto &a : accesses_)
        oss << "  #" << a.id << " " << a.toString() << '\n';
    return oss.str();
}

std::string
RunResult::toString() const
{
    std::ostringstream oss;
    oss << "mem{";
    bool first = true;
    for (const auto &[a, v] : finalMemory) {
        if (!first)
            oss << ",";
        first = false;
        oss << "[" << a << "]=" << v;
    }
    oss << "} regs{";
    for (std::size_t p = 0; p < registers.size(); ++p) {
        if (p)
            oss << ";";
        oss << "P" << p << ":";
        for (std::size_t r = 0; r < registers[p].size(); ++r) {
            if (r)
                oss << ",";
            oss << registers[p][r];
        }
    }
    oss << "}" << (allHalted ? "" : " (not halted)");
    return oss.str();
}

} // namespace wo
