#include "core/trace_render.hh"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

namespace wo {

namespace {

/** Compact cell text for one access, e.g. "W(x3)=5" or "S(rw)(x9)". */
std::string
cell(const Access &a)
{
    std::ostringstream oss;
    switch (a.kind) {
      case AccessKind::DataRead:
        oss << "R(x" << a.addr << ")=" << a.valueRead;
        break;
      case AccessKind::DataWrite:
        oss << "W(x" << a.addr << ")=" << a.valueWritten;
        break;
      case AccessKind::SyncRead:
        oss << "S.r(x" << a.addr << ")=" << a.valueRead;
        break;
      case AccessKind::SyncWrite:
        oss << "S.w(x" << a.addr << ")=" << a.valueWritten;
        break;
      case AccessKind::SyncRmw:
        oss << "S.rw(x" << a.addr << ")" << a.valueRead << ">"
            << a.valueWritten;
        break;
    }
    return oss.str();
}

} // namespace

std::string
renderColumns(const ExecutionTrace &trace, const RenderOptions &opts)
{
    std::ostringstream out;
    int nprocs = trace.numProcs();
    if (nprocs == 0 || trace.size() == 0)
        return "(empty trace)\n";

    // Bucket accesses by commit tick.
    std::map<Tick, std::vector<const Access *>> rows;
    for (const auto &a : trace.accesses())
        rows[a.commitTick].push_back(&a);

    int w = opts.columnWidth;
    // Header.
    if (opts.showTicks)
        out << std::setw(8) << "tick" << "  ";
    for (int p = 0; p < nprocs; ++p)
        out << std::left << std::setw(w) << ("P" + std::to_string(p));
    out << '\n';
    if (opts.showTicks)
        out << std::string(8, '-') << "  ";
    for (int p = 0; p < nprocs; ++p)
        out << std::string(w - 2, '-') << "  ";
    out << '\n';

    Tick prev = kNoTick;
    for (const auto &[tick, accs] : rows) {
        if (prev != kNoTick && tick > prev + 1 &&
            static_cast<int>(tick - prev) > opts.maxGap) {
            if (opts.showTicks)
                out << std::setw(8) << "..." << "  ";
            out << '\n';
        }
        prev = tick;
        // Several accesses can share a tick (even per processor);
        // emit one line per layered access.
        std::map<int, std::vector<const Access *>> per_proc;
        std::size_t depth = 0;
        for (const Access *a : accs) {
            per_proc[a->proc].push_back(a);
            depth = std::max(depth, per_proc[a->proc].size());
        }
        for (std::size_t layer = 0; layer < depth; ++layer) {
            if (opts.showTicks) {
                if (layer == 0)
                    out << std::setw(8) << tick << "  ";
                else
                    out << std::setw(8) << ' ' << "  ";
            }
            for (int p = 0; p < nprocs; ++p) {
                std::string text;
                auto it = per_proc.find(p);
                if (it != per_proc.end() && layer < it->second.size())
                    text = cell(*it->second[layer]);
                if (static_cast<int>(text.size()) > w - 1)
                    text = text.substr(0, w - 1);
                out << std::left << std::setw(w) << text;
            }
            out << '\n';
        }
    }
    return out.str();
}

} // namespace wo
