#include "core/idealized.hh"

#include <algorithm>
#include <cassert>

#include "core/race_detector.hh"

namespace wo {

IdealizedMachine::IdealizedMachine(const MultiProgram &program)
    : program_(program)
{
    int n = program.numProcs();
    pcs_.assign(n, 0);
    regs_.assign(n, std::vector<Word>(program.numRegisters(), 0));
    halted_.assign(n, false);
    poIndex_.assign(n, 0);
    // Static instruction count is a sound lower bound on the dynamic
    // access count; reserving it up front keeps straight-line recording
    // free of reallocation (loops still grow geometrically).
    int static_insns = 0;
    for (ProcId p = 0; p < n; ++p)
        static_insns += program.program(p).size();
    trace_.reserve(std::min(static_insns, 4096));
    touched_ = program.touchedAddrs();
    for (Addr a : touched_) {
        Word init = program.initialValue(a);
        memory_[a] = init;
        trace_.setInitial(a, init);
    }
    // A processor with an empty program is immediately halted.
    for (ProcId p = 0; p < n; ++p) {
        if (program.program(p).size() == 0)
            halted_[p] = true;
    }
}

bool
IdealizedMachine::allHalted() const
{
    for (bool h : halted_) {
        if (!h)
            return false;
    }
    return true;
}

Word
IdealizedMachine::memory(Addr a) const
{
    auto it = memory_.find(a);
    return it == memory_.end() ? 0 : it->second;
}

bool
IdealizedMachine::step(ProcId p)
{
    if (halted_[p])
        return false;
    const Instruction &insn = program_.program(p).at(pcs_[p]);

    UndoRecord u;
    u.proc = p;
    u.oldPc = pcs_[p];
    u.oldPoIndex = poIndex_[p];

    int next_pc = pcs_[p] + 1;
    switch (insn.op) {
      case Opcode::Load:
      case Opcode::SyncRead: {
        Word v = memory_[insn.addr];
        u.reg = insn.dst;
        u.oldReg = regs_[p][insn.dst];
        regs_[p][insn.dst] = v;
        Access a;
        a.proc = p;
        a.poIndex = poIndex_[p]++;
        a.kind = insn.accessKind();
        a.addr = insn.addr;
        a.valueRead = v;
        a.commitTick = steps_;
        a.gpTick = steps_;
        trace_.add(a);
        u.recordedAccess = true;
        break;
      }
      case Opcode::Store:
      case Opcode::SyncWrite: {
        Word v = insn.src >= 0 ? regs_[p][insn.src] : insn.imm;
        u.memChanged = true;
        u.addr = insn.addr;
        u.oldMem = memory_[insn.addr];
        memory_[insn.addr] = v;
        Access a;
        a.proc = p;
        a.poIndex = poIndex_[p]++;
        a.kind = insn.accessKind();
        a.addr = insn.addr;
        a.valueWritten = v;
        a.commitTick = steps_;
        a.gpTick = steps_;
        trace_.add(a);
        u.recordedAccess = true;
        break;
      }
      case Opcode::TestAndSet: {
        Word old = memory_[insn.addr];
        u.reg = insn.dst;
        u.oldReg = regs_[p][insn.dst];
        u.memChanged = true;
        u.addr = insn.addr;
        u.oldMem = old;
        regs_[p][insn.dst] = old;
        memory_[insn.addr] = insn.imm;
        Access a;
        a.proc = p;
        a.poIndex = poIndex_[p]++;
        a.kind = AccessKind::SyncRmw;
        a.addr = insn.addr;
        a.valueRead = old;
        a.valueWritten = insn.imm;
        a.commitTick = steps_;
        a.gpTick = steps_;
        trace_.add(a);
        u.recordedAccess = true;
        break;
      }
      case Opcode::Movi:
        u.reg = insn.dst;
        u.oldReg = regs_[p][insn.dst];
        regs_[p][insn.dst] = insn.imm;
        break;
      case Opcode::Addi:
        u.reg = insn.dst;
        u.oldReg = regs_[p][insn.dst];
        regs_[p][insn.dst] = regs_[p][insn.src] + insn.imm;
        break;
      case Opcode::Beq:
        if (regs_[p][insn.src] == insn.imm)
            next_pc = insn.target;
        break;
      case Opcode::Bne:
        if (regs_[p][insn.src] != insn.imm)
            next_pc = insn.target;
        break;
      case Opcode::Fence: // atomic machine: already fully ordered
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        u.halts = true;
        halted_[p] = true;
        next_pc = pcs_[p];
        break;
    }
    if (!u.halts && next_pc >= program_.program(p).size()) {
        // Fell off the end: implicit halt.
        u.halts = true;
        halted_[p] = true;
        next_pc = pcs_[p];
    }
    pcs_[p] = next_pc;
    undo_.push_back(u);
    ++steps_;
    if (u.recordedAccess && detector_)
        detector_->onAccess(trace_.accesses().back());
    return true;
}

void
IdealizedMachine::unstep()
{
    assert(!undo_.empty());
    // Online detection cannot rewind: backtracking enumeration must not
    // attach a detector.
    assert(detector_ == nullptr);
    UndoRecord u = undo_.back();
    undo_.pop_back();
    pcs_[u.proc] = u.oldPc;
    poIndex_[u.proc] = u.oldPoIndex;
    if (u.reg >= 0)
        regs_[u.proc][u.reg] = u.oldReg;
    if (u.memChanged)
        memory_[u.addr] = u.oldMem;
    if (u.halts)
        halted_[u.proc] = false;
    if (u.recordedAccess)
        trace_.popLast();
    --steps_;
}

RunResult
IdealizedMachine::result() const
{
    RunResult r;
    r.finalMemory = memory_;
    r.registers = regs_;
    r.allHalted = allHalted();
    return r;
}

std::vector<std::uint64_t>
IdealizedMachine::stateKey() const
{
    std::vector<std::uint64_t> key;
    key.reserve(pcs_.size() * 2 + memory_.size() + 1);
    std::uint64_t halt_bits = 0;
    for (std::size_t p = 0; p < halted_.size(); ++p) {
        if (halted_[p])
            halt_bits |= 1ull << p;
    }
    key.push_back(halt_bits);
    for (std::size_t p = 0; p < pcs_.size(); ++p) {
        key.push_back(static_cast<std::uint64_t>(pcs_[p]));
        for (Word w : regs_[p])
            key.push_back(w);
    }
    for (const auto &[a, v] : memory_)
        key.push_back(v);
    return key;
}

OutcomeSet
enumerateOutcomes(const MultiProgram &program, const EnumLimits &limits)
{
    IdealizedMachine m(program);
    OutcomeSet out;
    std::set<std::vector<std::uint64_t>> visited;

    std::function<void(int)> dfs = [&](int depth) {
        if (out.bounded && visited.size() >= limits.maxStates)
            return;
        if (!visited.insert(m.stateKey()).second)
            return;
        ++out.statesVisited;
        if (visited.size() >= limits.maxStates) {
            out.bounded = true;
            return;
        }
        if (m.allHalted()) {
            out.outcomes.insert(m.result());
            return;
        }
        if (depth >= limits.maxStepsPerExecution) {
            out.bounded = true;
            return;
        }
        for (ProcId p = 0; p < program.numProcs(); ++p) {
            if (m.halted(p))
                continue;
            m.step(p);
            dfs(depth + 1);
            m.unstep();
        }
    };
    dfs(0);
    return out;
}

bool
forEachExecution(
    const MultiProgram &program, const EnumLimits &limits,
    const std::function<bool(const ExecutionTrace &, const RunResult &,
                             bool complete)> &visit)
{
    IdealizedMachine m(program);
    std::uint64_t execs = 0;
    bool capped = false;
    bool stopped = false;

    std::function<void(int)> dfs = [&](int depth) {
        if (stopped)
            return;
        if (m.allHalted()) {
            ++execs;
            if (!visit(m.trace(), m.result(), true))
                stopped = true;
            if (execs >= limits.maxExecutions) {
                capped = true;
                stopped = true;
            }
            return;
        }
        if (depth >= limits.maxStepsPerExecution) {
            capped = true;
            ++execs;
            if (!visit(m.trace(), m.result(), false))
                stopped = true;
            if (execs >= limits.maxExecutions) {
                capped = true;
                stopped = true;
            }
            return;
        }
        for (ProcId p = 0; p < program.numProcs(); ++p) {
            if (m.halted(p))
                continue;
            m.step(p);
            dfs(depth + 1);
            m.unstep();
            if (stopped)
                return;
        }
    };
    dfs(0);
    return !capped && !stopped;
}

RunResult
runWithSchedule(const MultiProgram &program,
                const std::vector<ProcId> &schedule,
                ExecutionTrace *trace_out, const EnumLimits &limits)
{
    IdealizedMachine m(program);
    int steps = 0;
    for (ProcId p : schedule) {
        if (steps >= limits.maxStepsPerExecution)
            break;
        if (p >= 0 && p < program.numProcs() && !m.halted(p)) {
            m.step(p);
            ++steps;
        }
    }
    // Round-robin to completion.
    while (!m.allHalted() && steps < limits.maxStepsPerExecution) {
        bool progressed = false;
        for (ProcId p = 0; p < program.numProcs(); ++p) {
            if (!m.halted(p)) {
                m.step(p);
                ++steps;
                progressed = true;
            }
        }
        if (!progressed)
            break;
    }
    if (trace_out)
        *trace_out = m.trace();
    return m.result();
}

} // namespace wo
