/**
 * @file
 * Render an execution trace in the paper's Figure 2 layout: one column
 * per processor, time flowing downward, each access placed at the row of
 * its commit time.
 */

#ifndef WO_CORE_TRACE_RENDER_HH
#define WO_CORE_TRACE_RENDER_HH

#include <string>

#include "core/trace.hh"

namespace wo {

/** Options for trace rendering. */
struct RenderOptions
{
    /** Collapse empty time gaps longer than this many rows. */
    int maxGap = 2;

    /** Column width per processor. */
    int columnWidth = 14;

    /** Annotate each row with the commit tick. */
    bool showTicks = true;
};

/**
 * Render @p trace as per-processor columns over time (commit order),
 * like the paper's Figure 2.
 */
std::string renderColumns(const ExecutionTrace &trace,
                          const RenderOptions &opts = {});

} // namespace wo

#endif // WO_CORE_TRACE_RENDER_HH
