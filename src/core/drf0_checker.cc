#include "core/drf0_checker.hh"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>

#include "core/idealized.hh"
#include "sim/rng.hh"

namespace wo {

namespace {

/** Sort races the way the historical bitset checker enumerated them:
 * addresses ascending, then pair ids ascending (both members of a pair
 * share an address, so keying on the first suffices). */
void
normalizeRaces(const ExecutionTrace &trace, std::vector<Race> &races)
{
    std::sort(races.begin(), races.end(),
              [&trace](const Race &a, const Race &b) {
                  Addr aa = trace.at(a.first).addr;
                  Addr ab = trace.at(b.first).addr;
                  if (aa != ab)
                      return aa < ab;
                  return a < b;
              });
}

/**
 * True iff trace order already linearizes (po U so): every processor's
 * accesses appear in program order and every sync location's operations
 * in commit order. Holds for every idealized-machine trace (accesses are
 * recorded at execution, atomically), letting checkTrace feed the
 * detector with no sorting or graph work at all.
 */
bool
traceOrderIsLinearExtension(const ExecutionTrace &trace)
{
    for (ProcId p = 0; p < trace.numProcs(); ++p) {
        const std::vector<int> &ids = trace.accessesOf(p);
        for (std::size_t k = 1; k < ids.size(); ++k) {
            if (ids[k - 1] > ids[k])
                return false;
        }
    }
    for (Addr s : trace.syncAddrs()) {
        const std::vector<int> &ids = trace.syncsAt(s);
        for (std::size_t k = 1; k < ids.size(); ++k) {
            if (ids[k - 1] > ids[k])
                return false;
        }
    }
    return true;
}

/** Kahn topological sort of the direct (po U so) edges. Returns false
 * (leaving @p order short) if the edge relation is cyclic. */
bool
topoOrder(const ExecutionTrace &trace, std::vector<int> &order)
{
    const int n = trace.size();
    std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    auto addEdge = [&](int u, int v) {
        succ[static_cast<std::size_t>(u)].push_back(v);
        ++indeg[static_cast<std::size_t>(v)];
    };
    for (ProcId p = 0; p < trace.numProcs(); ++p) {
        const std::vector<int> &ids = trace.accessesOf(p);
        for (std::size_t k = 1; k < ids.size(); ++k)
            addEdge(ids[k - 1], ids[k]);
    }
    for (Addr s : trace.syncAddrs()) {
        const std::vector<int> &ids = trace.syncsAt(s);
        for (std::size_t k = 1; k < ids.size(); ++k)
            addEdge(ids[k - 1], ids[k]);
    }
    order.clear();
    order.reserve(static_cast<std::size_t>(n));
    std::queue<int> ready;
    for (int i = 0; i < n; ++i) {
        if (indeg[static_cast<std::size_t>(i)] == 0)
            ready.push(i);
    }
    while (!ready.empty()) {
        int u = ready.front();
        ready.pop();
        order.push_back(u);
        for (int v : succ[static_cast<std::size_t>(u)]) {
            if (--indeg[static_cast<std::size_t>(v)] == 0)
                ready.push(v);
        }
    }
    return static_cast<int>(order.size()) == n;
}

} // namespace

Drf0TraceReport
checkTrace(const ExecutionTrace &trace)
{
    Drf0TraceReport report;
    if (trace.size() == 0)
        return report;

    RaceDetector det(trace.numProcs(), RaceDetectMode::AllRaces);
    if (traceOrderIsLinearExtension(trace)) {
        for (const Access &a : trace.accesses())
            det.onAccess(a);
    } else {
        std::vector<int> order;
        if (!topoOrder(trace, order)) {
            // Cyclic (po U so): fall back to the closure, which leaves
            // cycle members mutually unordered and flags the report.
            return checkTraceBitset(trace);
        }
        for (int id : order)
            det.onAccess(trace.at(id));
    }
    report.races = det.races();
    report.raceFree = report.races.empty();
    normalizeRaces(trace, report.races);
    return report;
}

Drf0TraceReport
checkTraceBitset(const ExecutionTrace &trace)
{
    Drf0TraceReport report;
    HappensBefore hb(trace);
    report.hbCyclic = !hb.acyclic();

    // Group accesses by address; only same-address pairs can conflict.
    std::map<Addr, std::vector<int>> by_addr;
    for (const auto &a : trace.accesses())
        by_addr[a.addr].push_back(a.id);

    for (const auto &[addr, ids] : by_addr) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            for (std::size_t j = i + 1; j < ids.size(); ++j) {
                const Access &x = trace.at(ids[i]);
                const Access &y = trace.at(ids[j]);
                if (!conflict(x, y))
                    continue;
                if (!hb.orderedEither(x.id, y.id)) {
                    report.raceFree = false;
                    report.races.push_back({x.id, y.id});
                }
            }
        }
    }
    return report;
}

Drf0ProgramReport
checkProgram(const MultiProgram &program, const Drf0CheckLimits &limits)
{
    Drf0ProgramReport report;
    EnumLimits el;
    el.maxStepsPerExecution = limits.maxStepsPerExecution;
    el.maxExecutions = limits.maxExecutions;

    bool exhaustive = forEachExecution(
        program, el,
        [&](const ExecutionTrace &trace, const RunResult &, bool) {
            ++report.executions;
            Drf0TraceReport tr = checkTrace(trace);
            if (!tr.raceFree) {
                report.obeysDrf0 = false;
                report.witness = trace;
                report.witnessReport = tr;
                return false; // one racy witness is enough
            }
            return true;
        });
    if (!exhaustive && report.obeysDrf0)
        report.bounded = true;
    return report;
}

Drf0ProgramReport
checkProgramSampled(const MultiProgram &program, int num_schedules,
                    std::uint64_t seed, int max_steps_per_execution)
{
    Drf0ProgramReport report;
    report.bounded = true;
    Rng rng(seed);
    int nprocs = program.numProcs();
    RaceDetector det(nprocs, RaceDetectMode::FirstRace);
    for (int s = 0; s < num_schedules && report.obeysDrf0; ++s) {
        // Snapshot the RNG so a racy schedule can be replayed in full
        // for the witness (the stream itself is shared across schedules,
        // exactly as the offline checker consumed it).
        Rng sched_rng = rng;
        IdealizedMachine m(program);
        det.reset(nprocs);
        m.attachRaceDetector(&det);
        int steps = 0;
        while (!m.allHalted() && steps < max_steps_per_execution) {
            // Pick a random non-halted processor.
            ProcId p = static_cast<ProcId>(rng.below(nprocs));
            while (m.halted(p))
                p = (p + 1) % nprocs;
            m.step(p);
            ++steps;
            if (det.hasRace())
                break; // online early exit: first race decides
        }
        ++report.executions;
        if (det.hasRace()) {
            report.obeysDrf0 = false;
            // Rebuild the full-trace witness the offline checker would
            // have reported: replay this schedule to completion.
            IdealizedMachine w(program);
            Rng replay = sched_rng;
            int wsteps = 0;
            while (!w.allHalted() && wsteps < max_steps_per_execution) {
                ProcId p = static_cast<ProcId>(replay.below(nprocs));
                while (w.halted(p))
                    p = (p + 1) % nprocs;
                w.step(p);
                ++wsteps;
            }
            report.witness = w.trace();
            report.witnessReport = checkTrace(report.witness);
        }
    }
    return report;
}

std::string
Drf0TraceReport::toString(const ExecutionTrace &trace) const
{
    std::ostringstream oss;
    if (raceFree) {
        oss << "race-free (DRF0)";
        return oss.str();
    }
    oss << races.size() << " race(s)" << (hbCyclic ? " [cyclic hb]" : "")
        << ":\n";
    for (const auto &r : races) {
        oss << "  " << trace.at(r.first).toString() << "  ||  "
            << trace.at(r.second).toString() << '\n';
    }
    return oss.str();
}

} // namespace wo
