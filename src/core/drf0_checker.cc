#include "core/drf0_checker.hh"

#include <map>
#include <sstream>

#include "core/idealized.hh"
#include "sim/rng.hh"

namespace wo {

Drf0TraceReport
checkTrace(const ExecutionTrace &trace)
{
    Drf0TraceReport report;
    HappensBefore hb(trace);

    // Group accesses by address; only same-address pairs can conflict.
    std::map<Addr, std::vector<int>> by_addr;
    for (const auto &a : trace.accesses())
        by_addr[a.addr].push_back(a.id);

    for (const auto &[addr, ids] : by_addr) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            for (std::size_t j = i + 1; j < ids.size(); ++j) {
                const Access &x = trace.at(ids[i]);
                const Access &y = trace.at(ids[j]);
                if (!conflict(x, y))
                    continue;
                if (!hb.orderedEither(x.id, y.id)) {
                    report.raceFree = false;
                    report.races.push_back({x.id, y.id});
                }
            }
        }
    }
    return report;
}

Drf0ProgramReport
checkProgram(const MultiProgram &program, const Drf0CheckLimits &limits)
{
    Drf0ProgramReport report;
    EnumLimits el;
    el.maxStepsPerExecution = limits.maxStepsPerExecution;
    el.maxExecutions = limits.maxExecutions;

    bool exhaustive = forEachExecution(
        program, el,
        [&](const ExecutionTrace &trace, const RunResult &, bool) {
            ++report.executions;
            Drf0TraceReport tr = checkTrace(trace);
            if (!tr.raceFree) {
                report.obeysDrf0 = false;
                report.witness = trace;
                report.witnessReport = tr;
                return false; // one racy witness is enough
            }
            return true;
        });
    if (!exhaustive && report.obeysDrf0)
        report.bounded = true;
    return report;
}

Drf0ProgramReport
checkProgramSampled(const MultiProgram &program, int num_schedules,
                    std::uint64_t seed, int max_steps_per_execution)
{
    Drf0ProgramReport report;
    report.bounded = true;
    Rng rng(seed);
    int nprocs = program.numProcs();
    for (int s = 0; s < num_schedules && report.obeysDrf0; ++s) {
        IdealizedMachine m(program);
        int steps = 0;
        while (!m.allHalted() && steps < max_steps_per_execution) {
            // Pick a random non-halted processor.
            ProcId p = static_cast<ProcId>(rng.below(nprocs));
            while (m.halted(p))
                p = (p + 1) % nprocs;
            m.step(p);
            ++steps;
        }
        ++report.executions;
        Drf0TraceReport tr = checkTrace(m.trace());
        if (!tr.raceFree) {
            report.obeysDrf0 = false;
            report.witness = m.trace();
            report.witnessReport = tr;
        }
    }
    return report;
}

std::string
Drf0TraceReport::toString(const ExecutionTrace &trace) const
{
    std::ostringstream oss;
    if (raceFree) {
        oss << "race-free (DRF0)";
        return oss.str();
    }
    oss << races.size() << " race(s):\n";
    for (const auto &r : races) {
        oss << "  " << trace.at(r.first).toString() << "  ||  "
            << trace.at(r.second).toString() << '\n';
    }
    return oss.str();
}

} // namespace wo
