/**
 * @file
 * The paper's idealized architecture: all memory accesses execute
 * atomically and in program order. Definition 3 quantifies over executions
 * of this machine; Definition 2 compares hardware results against its
 * outcome set.
 *
 * Three services are provided:
 *  - single-step interpretation (IdealizedMachine), used to replay specific
 *    interleavings;
 *  - exhaustive enumeration of the set of sequentially consistent outcomes
 *    (memoized over machine states);
 *  - exhaustive enumeration of executions with their traces (unmemoized),
 *    used by the DRF0 program checker.
 */

#ifndef WO_CORE_IDEALIZED_HH
#define WO_CORE_IDEALIZED_HH

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "core/trace.hh"
#include "cpu/program.hh"

namespace wo {

class RaceDetector;

/**
 * Interpreter state for one idealized (atomic, in-program-order)
 * execution.
 */
class IdealizedMachine
{
  public:
    explicit IdealizedMachine(const MultiProgram &program);

    /**
     * Attach an online race detector: every memory access is streamed
     * into it as it executes (trace order is a linear extension of the
     * happens-before relation on this machine), so callers can poll
     * RaceDetector::hasRace() after each step() and abandon the
     * execution at its first race. Only accesses recorded after
     * attachment are observed; incompatible with unstep().
     */
    void attachRaceDetector(RaceDetector *det) { detector_ = det; }

    /** True when processor @p p reached Halt. */
    bool halted(ProcId p) const { return halted_[p]; }

    /** True when every processor halted. */
    bool allHalted() const;

    /** Number of instructions executed so far. */
    std::uint64_t steps() const { return steps_; }

    /**
     * Execute one instruction of processor @p p atomically.
     *
     * If the instruction is a memory access, it is appended to the
     * recorded trace. Returns false (and does nothing) if @p p already
     * halted.
     */
    bool step(ProcId p);

    /** Undo the most recent step (for backtracking enumeration). */
    void unstep();

    /** Current value of a memory location. */
    Word memory(Addr a) const;

    /** Current register value. */
    Word reg(ProcId p, int r) const { return regs_[p][r]; }

    /** Program counter of processor @p p. */
    int pc(ProcId p) const { return pcs_[p]; }

    /** The trace recorded so far (accesses of executed memory ops). */
    const ExecutionTrace &trace() const { return trace_; }

    /** Snapshot the observable outcome of the current state. */
    RunResult result() const;

    /** Compact serialization of the state, for memoization. */
    std::vector<std::uint64_t> stateKey() const;

  private:
    struct UndoRecord
    {
        ProcId proc;
        int oldPc;
        int reg = -1;
        Word oldReg = 0;
        bool memChanged = false;
        Addr addr = 0;
        Word oldMem = 0;
        bool halts = false;
        bool recordedAccess = false;
        int oldPoIndex = 0;
    };

    const MultiProgram &program_;
    RaceDetector *detector_ = nullptr;
    std::vector<int> pcs_;
    std::vector<std::vector<Word>> regs_;
    std::vector<bool> halted_;
    std::vector<int> poIndex_;
    std::map<Addr, Word> memory_;
    std::vector<Addr> touched_;
    ExecutionTrace trace_;
    std::vector<UndoRecord> undo_;
    std::uint64_t steps_ = 0;
};

/** Limits on exhaustive enumeration. */
struct EnumLimits
{
    /** Max instructions along any single interleaving. */
    int maxStepsPerExecution = 10000;

    /** Max complete interleavings (unmemoized enumeration). */
    std::uint64_t maxExecutions = 2000000;

    /** Max distinct states (memoized outcome enumeration). */
    std::uint64_t maxStates = 5000000;
};

/** Result of outcome enumeration. */
struct OutcomeSet
{
    /** Every outcome reachable by some idealized execution. */
    std::set<RunResult> outcomes;

    /** True if a cap was hit, making the set a lower bound. */
    bool bounded = false;

    /** Distinct machine states visited. */
    std::uint64_t statesVisited = 0;
};

/**
 * Enumerate the full set of sequentially consistent outcomes of
 * @p program.
 */
OutcomeSet enumerateOutcomes(const MultiProgram &program,
                             const EnumLimits &limits = {});

/**
 * Visit every idealized execution of @p program (every interleaving).
 *
 * The callback receives the trace and outcome; @c complete is false when
 * the interleaving was cut off by the per-execution step cap. Return false
 * from the callback to stop the enumeration early.
 *
 * @return true if the enumeration covered everything (no caps hit and not
 *         stopped early).
 */
bool forEachExecution(
    const MultiProgram &program, const EnumLimits &limits,
    const std::function<bool(const ExecutionTrace &, const RunResult &,
                             bool complete)> &visit);

/**
 * Replay a specific interleaving: entries of @p schedule name the
 * processor to step next (entries for halted processors are skipped);
 * after the schedule is exhausted, execution continues round-robin until
 * all processors halt or @p limits.maxStepsPerExecution is reached.
 */
RunResult runWithSchedule(const MultiProgram &program,
                          const std::vector<ProcId> &schedule,
                          ExecutionTrace *trace_out = nullptr,
                          const EnumLimits &limits = {});

} // namespace wo

#endif // WO_CORE_IDEALIZED_HH
