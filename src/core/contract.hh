/**
 * @file
 * The weak-ordering contract of Definition 2, made executable.
 *
 * Definition 2: hardware is weakly ordered with respect to a
 * synchronization model iff it appears sequentially consistent to all
 * software that obeys the model.
 *
 * ContractChecker operationalizes both halves:
 *  - the software side: does the program obey DRF0 (Definition 3)?
 *  - the hardware side: does a recorded hardware execution of the program
 *    have a sequentially consistent explanation (Lemma 1), and does its
 *    observable result fall inside the set of results the idealized
 *    architecture can produce?
 */

#ifndef WO_CORE_CONTRACT_HH
#define WO_CORE_CONTRACT_HH

#include <string>

#include "core/drf0_checker.hh"
#include "core/idealized.hh"
#include "core/sc_verifier.hh"
#include "core/trace.hh"
#include "cpu/program.hh"

namespace wo {

/** Everything learned about one hardware execution vs. the contract. */
struct ContractReport
{
    /** The headline: the execution appears sequentially consistent. */
    bool appearsSc = false;

    /** Trace-level SC verification (Lemma 1). */
    ScReport scReport;

    /** Whether the observable result was also checked against the
     * enumerated idealized outcome set. */
    bool outcomeChecked = false;

    /** Result membership in the idealized outcome set (valid when
     * outcomeChecked). */
    bool outcomeInScSet = false;

    /** The idealized outcome enumeration hit a cap. */
    bool outcomeSetBounded = false;

    std::string toString() const;
};

/** Knobs for contract checking. */
struct ContractOptions
{
    /** Also enumerate idealized outcomes and check result membership
     * (more expensive; requires the hardware RunResult). */
    bool checkOutcomeSet = false;

    ScVerifierLimits scLimits;
    EnumLimits enumLimits;
};

/**
 * Check one hardware execution against the SC-appearance contract.
 *
 * @param program   the workload that was run
 * @param trace     the hardware execution's dynamic accesses
 * @param hw_result the hardware run's observable result (may be null when
 *                  options.checkOutcomeSet is false)
 */
ContractReport checkExecution(const MultiProgram &program,
                              const ExecutionTrace &trace,
                              const RunResult *hw_result = nullptr,
                              const ContractOptions &options = {});

} // namespace wo

#endif // WO_CORE_CONTRACT_HH
