#include "core/vector_clock.hh"

#include <sstream>

namespace wo {

void
VectorClock::join(const VectorClock &o)
{
    if (o.c_.size() > c_.size())
        c_.resize(o.c_.size(), 0);
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
        if (o.c_[i] > c_[i])
            c_[i] = o.c_[i];
    }
}

std::string
VectorClock::toString() const
{
    std::ostringstream oss;
    oss << '<';
    for (std::size_t i = 0; i < c_.size(); ++i) {
        if (i)
            oss << ',';
        oss << c_[i];
    }
    oss << '>';
    return oss.str();
}

} // namespace wo
