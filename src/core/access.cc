#include "core/access.hh"

#include <sstream>

namespace wo {

bool
conflict(const Access &a, const Access &b)
{
    if (a.addr != b.addr)
        return false;
    return a.writes() || b.writes();
}

std::string
Access::toString() const
{
    std::ostringstream oss;
    oss << wo::toString(kind) << "(P";
    if (proc == kNoProc)
        oss << "init";
    else
        oss << proc;
    oss << ",[" << addr << "])";
    if (reads())
        oss << " ->" << valueRead;
    if (writes())
        oss << " <-" << valueWritten;
    oss << " @c" << commitTick;
    return oss.str();
}

} // namespace wo
