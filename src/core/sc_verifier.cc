#include "core/sc_verifier.hh"

#include <atomic>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "parallel/thread_pool.hh"

namespace wo {

namespace {

/** FNV-1a style hash over a span of key words. */
inline std::uint64_t
hashKeySpan(const std::uint64_t *v, std::size_t len)
{
    // Salt with the span length and each element's position so keys
    // that are permutations of each other (frequent among frontier
    // states: same values at swapped indices) do not collide into the
    // same bucket chains.
    std::uint64_t h = 1469598103934665603ull ^
                      (0x9e3779b97f4a7c15ull * (len + 1));
    std::uint64_t pos = 0;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= v[i] + 0x9e3779b97f4a7c15ull * ++pos;
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * A set of fixed-length keys stored back to back in one arena, so
 * visiting a new search state costs no allocation (amortized) and
 * membership tests touch contiguous memory.
 */
class KeyArenaSet
{
  public:
    KeyArenaSet() = default;
    KeyArenaSet(const KeyArenaSet &) = delete;
    KeyArenaSet &operator=(const KeyArenaSet &) = delete;

    /** Must be called before the first insert. */
    void
    setKeyLen(std::size_t keyLen)
    {
        len_ = keyLen ? keyLen : 1;
    }

    /** Insert the key currently staged at the arena's end. */
    bool
    insert(const std::vector<std::uint64_t> &key)
    {
        arena_.insert(arena_.end(), key.begin(), key.end());
        arena_.resize((count_ + 1) * len_); // pad (defensive; key==len_)
        Ref cand{static_cast<std::uint32_t>(count_)};
        auto [it, fresh] = set_.emplace(cand);
        (void)it;
        if (fresh)
            ++count_;
        else
            arena_.resize(count_ * len_);
        return fresh;
    }

  private:
    struct Ref
    {
        std::uint32_t index;
    };
    struct Hash
    {
        const KeyArenaSet *owner;
        std::size_t
        operator()(const Ref &r) const
        {
            return static_cast<std::size_t>(hashKeySpan(
                owner->arena_.data() + r.index * owner->len_,
                owner->len_));
        }
    };
    struct Eq
    {
        const KeyArenaSet *owner;
        bool
        operator()(const Ref &a, const Ref &b) const
        {
            const std::uint64_t *base = owner->arena_.data();
            return std::equal(base + a.index * owner->len_,
                              base + (a.index + 1) * owner->len_,
                              base + b.index * owner->len_);
        }
    };

    std::size_t len_ = 1;
    std::size_t count_ = 0;
    std::vector<std::uint64_t> arena_;
    std::unordered_set<Ref, Hash, Eq> set_{16, Hash{this}, Eq{this}};
};

/** State shared by the workers of one root-split verification. */
struct SharedSearch
{
    /** Global state budget: fetch_add'ed by every worker, so
     * limits.maxStates caps the whole search, not each worker. */
    std::atomic<std::uint64_t> statesUsed{0};

    /** Set once any branch finds a witness; others stop early. */
    std::atomic<bool> found{false};
};

class Search
{
  public:
    Search(const ExecutionTrace &trace, const ScVerifierLimits &limits,
           SharedSearch *shared = nullptr)
        : trace_(trace), acc_(trace.accesses().data()), limits_(limits),
          shared_(shared)
    {
        int nprocs = trace.numProcs();
        for (ProcId p = 0; p < nprocs; ++p)
            seqs_.push_back(trace.accessesOf(p));
        idx_.assign(seqs_.size(), 0);
        remaining_ = trace.size();

        // Intern addresses once: every per-location structure below is
        // a dense vector indexed by address id, never a std::map.
        std::unordered_map<Addr, int> addrId;
        addrId.reserve(static_cast<std::size_t>(trace.size()));
        std::vector<ProcId> toucher; // kNoProc = shared, -2 = unseen
        auto intern = [&](Addr a) {
            auto [it, fresh] =
                addrId.emplace(a, static_cast<int>(mem_.size()));
            if (fresh) {
                mem_.push_back(trace.initialValue(a));
                toucher.push_back(-2);
            }
            return it->second;
        };

        int n = trace.size();
        accAddr_.resize(static_cast<std::size_t>(n));
        accWriteSlot_.assign(static_cast<std::size_t>(n), -1);
        accReadSlot_.assign(static_cast<std::size_t>(n), -1);

        // Pass 1: addresses, single-toucher flags, and one counting
        // slot per distinct (location, written value) pair.
        std::map<std::pair<int, Word>, int> slotOf;
        for (const Access &a : trace.accesses()) {
            int aid = intern(a.addr);
            accAddr_[static_cast<std::size_t>(a.id)] = aid;
            if (toucher[static_cast<std::size_t>(aid)] == -2)
                toucher[static_cast<std::size_t>(aid)] = a.proc;
            else if (toucher[static_cast<std::size_t>(aid)] != a.proc)
                toucher[static_cast<std::size_t>(aid)] = kNoProc;
            if (a.writes()) {
                auto [it, fresh] = slotOf.emplace(
                    std::make_pair(aid, a.valueWritten),
                    static_cast<int>(writersLeft_.size()));
                if (fresh)
                    writersLeft_.push_back(0);
                accWriteSlot_[static_cast<std::size_t>(a.id)] = it->second;
                ++writersLeft_[static_cast<std::size_t>(it->second)];
            }
        }
        // Pass 2: point each read at the slot counting pending writes
        // of its expected value (-1: no write anywhere produces it).
        for (const Access &a : trace.accesses()) {
            if (!a.reads())
                continue;
            auto it = slotOf.find(std::make_pair(
                accAddr_[static_cast<std::size_t>(a.id)], a.valueRead));
            if (it != slotOf.end())
                accReadSlot_[static_cast<std::size_t>(a.id)] = it->second;
        }
        private_.resize(toucher.size());
        for (std::size_t i = 0; i < toucher.size(); ++i) {
            private_[i] = toucher[i] != kNoProc;
            if (!private_[i])
                sharedAddrs_.push_back(static_cast<int>(i));
        }
        keyScratch_.reserve(idx_.size() + sharedAddrs_.size());
        visited_.setKeyLen(idx_.size() + sharedAddrs_.size());
    }

    ScReport
    run()
    {
        ScReport report;
        bool found = dfs(report);
        finish(report, found);
        return report;
    }

    /**
     * Run the root drain only (for root-splitting).
     *
     * @return false if the drain already proves the trace not SC.
     */
    bool
    rootDrain(ScReport &report)
    {
        return drain(report) >= 0;
    }

    /** All accesses scheduled? (After rootDrain: trivially SC.) */
    bool done() const { return remaining_ == 0; }

    /** Trace ids of the enabled per-processor head accesses. */
    std::vector<int>
    enabledHeads() const
    {
        std::vector<int> out;
        for (std::size_t p = 0; p < seqs_.size(); ++p) {
            if (idx_[p] >= seqs_[p].size())
                continue;
            const Access &a = acc_[seqs_[p][idx_[p]]];
            if (a.reads() &&
                mem_[static_cast<std::size_t>(
                    accAddr_[static_cast<std::size_t>(a.id)])] !=
                    a.valueRead)
                continue;
            out.push_back(a.id);
        }
        return out;
    }

    /**
     * Worker entry for root-splitting: replay the (already validated)
     * root prefix, take one enabled first-level branch, then search the
     * remaining subtree.
     */
    ScReport
    runSplit(const std::vector<int> &prefix, int branchAccessId)
    {
        ScReport report;
        for (int id : prefix) {
            const Access &a = trace_.at(id);
            apply(a, static_cast<std::size_t>(a.proc), report);
        }
        const Access &b = trace_.at(branchAccessId);
        apply(b, static_cast<std::size_t>(b.proc), report);
        bool found = dfs(report);
        if (found && shared_)
            shared_->found.store(true, std::memory_order_relaxed);
        finish(report, found);
        return report;
    }

  private:
    void
    finish(ScReport &report, bool found)
    {
        report.statesExplored = states_;
        if (found) {
            report.verdict = ScVerdict::Sc;
        } else if (capped_) {
            report.verdict = ScVerdict::Unknown;
            report.witnessOrder.clear();
        } else {
            report.verdict = ScVerdict::NotSc;
            report.witnessOrder.clear();
        }
    }

    /**
     * Fill the reusable key buffer with this frontier state: per-proc
     * indices plus the values of *shared* locations only. A private
     * location's value is a function of its owner's index, so including
     * it would only bloat the key. Reusing one scratch vector means a
     * revisited state costs no allocation at all.
     */
    const std::vector<std::uint64_t> &
    key()
    {
        keyScratch_.clear();
        for (std::size_t i : idx_)
            keyScratch_.push_back(i);
        for (int aid : sharedAddrs_)
            keyScratch_.push_back(mem_[static_cast<std::size_t>(aid)]);
        return keyScratch_;
    }

    void
    apply(const Access &a, std::size_t p, ScReport &report)
    {
        int aid = accAddr_[static_cast<std::size_t>(a.id)];
        if (a.writes()) {
            drain_undo_.push_back(
                {aid, mem_[static_cast<std::size_t>(aid)], true});
            mem_[static_cast<std::size_t>(aid)] = a.valueWritten;
            --writersLeft_[static_cast<std::size_t>(
                accWriteSlot_[static_cast<std::size_t>(a.id)])];
        } else {
            drain_undo_.push_back({aid, ~Word{0}, false});
        }
        ++idx_[p];
        --remaining_;
        report.witnessOrder.push_back(a.id);
    }

    void
    unapply(std::size_t p, ScReport &report)
    {
        const DrainUndo &u = drain_undo_.back();
        if (u.restore) {
            mem_[static_cast<std::size_t>(u.addrId)] = u.oldValue;
            ++writersLeft_[static_cast<std::size_t>(
                accWriteSlot_[static_cast<std::size_t>(
                    report.witnessOrder.back())])];
        }
        drain_undo_.pop_back();
        --idx_[p];
        ++remaining_;
        report.witnessOrder.pop_back();
    }

    /**
     * Eagerly schedule accesses that provably commute with every other
     * pending access, so the branching search only explores genuinely
     * conflicting orders:
     *  - accesses to addresses touched by a single processor (their
     *    values are interleaving-independent; a mismatching private read
     *    fails globally);
     *  - "silent" enabled accesses that leave memory unchanged (e.g. a
     *    failed TestAndSet spin re-writing the held lock value): moving
     *    one earlier cannot change any other access's read.
     *
     * @return number of accesses drained, or -1 on a global failure.
     */
    int
    drain(ScReport &report)
    {
        int drained = 0;
        bool progress = true;
        while (progress) {
            progress = false;
            for (std::size_t p = 0; p < seqs_.size(); ++p) {
                if (idx_[p] >= seqs_[p].size())
                    continue;
                const Access &a = acc_[seqs_[p][idx_[p]]];
                std::size_t aid = static_cast<std::size_t>(
                    accAddr_[static_cast<std::size_t>(a.id)]);
                if (private_[aid]) {
                    if (a.reads() && mem_[aid] != a.valueRead) {
                        // Private state is deterministic: no
                        // interleaving can fix this read. Roll back and
                        // fail the whole branch.
                        while (drained > 0) {
                            // Find which proc the top entry belongs to:
                            // witnessOrder's back id maps to its proc.
                            const Access &top =
                                acc_[report.witnessOrder.back()];
                            unapply(static_cast<std::size_t>(top.proc),
                                    report);
                            --drained;
                        }
                        return -1;
                    }
                    apply(a, p, report);
                    ++drained;
                    progress = true;
                    continue;
                }
                if (a.reads() && mem_[aid] != a.valueRead)
                    continue; // not enabled
                if (!a.writes() || a.valueWritten == mem_[aid]) {
                    // Silent: enabled and leaves memory unchanged.
                    apply(a, p, report);
                    ++drained;
                    progress = true;
                }
            }
        }
        return drained;
    }

    /**
     * A pending head read that does not see its value, and whose value
     * no still-pending write produces, can never become enabled — the
     * whole state is dead. (Counting the reader's own later writes is
     * conservative and keeps this sound.)
     */
    bool
    deadlocked() const
    {
        for (std::size_t p = 0; p < seqs_.size(); ++p) {
            if (idx_[p] >= seqs_[p].size())
                continue;
            const Access &a = acc_[seqs_[p][idx_[p]]];
            if (!a.reads())
                continue;
            std::size_t aid = static_cast<std::size_t>(
                accAddr_[static_cast<std::size_t>(a.id)]);
            if (mem_[aid] == a.valueRead)
                continue;
            int slot = accReadSlot_[static_cast<std::size_t>(a.id)];
            if (slot < 0 ||
                writersLeft_[static_cast<std::size_t>(slot)] == 0)
                return true;
        }
        return false;
    }

    /** Consume one unit of the (possibly shared) state budget. */
    bool
    acquireState()
    {
        if (shared_) {
            if (shared_->statesUsed.fetch_add(
                    1, std::memory_order_relaxed) >= limits_.maxStates) {
                capped_ = true;
                return false;
            }
        } else if (states_ >= limits_.maxStates) {
            capped_ = true;
            return false;
        }
        ++states_;
        return true;
    }

    bool
    dfs(ScReport &report)
    {
        int drained = drain(report);
        if (drained < 0)
            return false;
        bool found = dfsBranch(report);
        if (!found) {
            while (drained > 0) {
                const Access &top = acc_[report.witnessOrder.back()];
                unapply(static_cast<std::size_t>(top.proc), report);
                --drained;
            }
        }
        return found;
    }

    bool
    dfsBranch(ScReport &report)
    {
        if (remaining_ == 0)
            return true;
        if (shared_ && shared_->found.load(std::memory_order_relaxed))
            return false;
        if (deadlocked())
            return false;
        if (!visited_.insert(key()))
            return false;
        if (!acquireState())
            return false;

        for (std::size_t p = 0; p < seqs_.size(); ++p) {
            if (idx_[p] >= seqs_[p].size())
                continue;
            const Access &a = acc_[seqs_[p][idx_[p]]];
            if (a.reads() &&
                mem_[static_cast<std::size_t>(
                    accAddr_[static_cast<std::size_t>(a.id)])] !=
                    a.valueRead)
                continue; // not enabled: read value would be wrong
            apply(a, p, report);
            if (dfs(report))
                return true;
            unapply(p, report);
        }
        return false;
    }

    struct DrainUndo
    {
        int addrId;
        Word oldValue;
        bool restore = true;
    };

    const ExecutionTrace &trace_;
    const Access *acc_; ///< trace_.accesses().data(), hot-path lookups
    const ScVerifierLimits &limits_;
    SharedSearch *shared_;
    std::vector<std::vector<int>> seqs_;
    std::vector<std::size_t> idx_;
    std::vector<Word> mem_;         ///< frontier memory, by address id
    std::vector<char> private_;     ///< single-toucher flag, by address id
    std::vector<int> accAddr_;      ///< access id -> address id
    std::vector<int> accWriteSlot_; ///< access id -> (addr, value) slot
    std::vector<int> accReadSlot_;  ///< access id -> slot, or -1
    std::vector<int> writersLeft_;  ///< pending writes per (addr, value)
    std::vector<int> sharedAddrs_; ///< address ids with >1 toucher
    std::vector<std::uint64_t> keyScratch_; ///< reused by key()
    std::vector<DrainUndo> drain_undo_;
    int remaining_ = 0;
    std::uint64_t states_ = 0;
    bool capped_ = false;
    KeyArenaSet visited_;
};

} // namespace

ScReport
verifySc(const ExecutionTrace &trace, const ScVerifierLimits &limits)
{
    Search s(trace, limits);
    return s.run();
}

ScReport
verifyScParallel(const ExecutionTrace &trace, ThreadPool &pool,
                 const ScVerifierLimits &limits)
{
    Search probe(trace, limits);
    ScReport root;
    if (!probe.rootDrain(root)) {
        root.verdict = ScVerdict::NotSc;
        root.witnessOrder.clear();
        root.statesExplored = 0;
        return root;
    }
    if (probe.done()) {
        root.verdict = ScVerdict::Sc;
        return root;
    }
    std::vector<int> branches = probe.enabledHeads();
    if (pool.numThreads() <= 1 || branches.size() <= 1)
        return verifySc(trace, limits);

    SharedSearch shared;
    std::vector<int> prefix = root.witnessOrder;
    std::vector<ScReport> reports(branches.size());
    parallelFor(pool, branches.size(), [&](std::size_t i) {
        Search worker(trace, limits, &shared);
        reports[i] = worker.runSplit(prefix, branches[i]);
    });

    // Order-stable aggregation: the lowest-index witnessing branch
    // wins; state counts sum (each worker only counted states it was
    // granted from the shared budget, so the sum respects maxStates).
    ScReport agg;
    agg.statesExplored = 0;
    bool anyCapped = false;
    for (const ScReport &r : reports) {
        agg.statesExplored += r.statesExplored;
        anyCapped |= r.verdict == ScVerdict::Unknown;
    }
    for (const ScReport &r : reports) {
        if (r.verdict == ScVerdict::Sc) {
            agg.verdict = ScVerdict::Sc;
            agg.witnessOrder = r.witnessOrder;
            return agg;
        }
    }
    agg.verdict = anyCapped ? ScVerdict::Unknown : ScVerdict::NotSc;
    return agg;
}

std::string
ScReport::toString() const
{
    std::ostringstream oss;
    switch (verdict) {
      case ScVerdict::Sc:
        oss << "SC (witness of " << witnessOrder.size() << " accesses, "
            << statesExplored << " states)";
        break;
      case ScVerdict::NotSc:
        oss << "NOT SC (exhausted " << statesExplored << " states)";
        break;
      case ScVerdict::Unknown:
        oss << "UNKNOWN (state cap hit at " << statesExplored << ")";
        break;
    }
    return oss.str();
}

} // namespace wo
