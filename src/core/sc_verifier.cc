#include "core/sc_verifier.hh"

#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

namespace wo {

namespace {

/** FNV-1a style hash for memoization keys. */
struct VecHash
{
    std::size_t
    operator()(const std::vector<std::uint64_t> &v) const
    {
        std::uint64_t h = 1469598103934665603ull;
        for (std::uint64_t x : v) {
            h ^= x;
            h *= 1099511628211ull;
        }
        return static_cast<std::size_t>(h);
    }
};

class Search
{
  public:
    Search(const ExecutionTrace &trace, const ScVerifierLimits &limits)
        : trace_(trace), limits_(limits)
    {
        int nprocs = trace.numProcs();
        for (ProcId p = 0; p < nprocs; ++p)
            seqs_.push_back(trace.accessesOf(p));
        idx_.assign(seqs_.size(), 0);
        for (Addr a : trace.addrs())
            mem_[a] = trace.initialValue(a);
        remaining_ = trace.size();
        // Addresses touched by exactly one processor: accesses to them
        // commute with everything and are scheduled eagerly.
        std::map<Addr, ProcId> toucher;
        for (const auto &a : trace.accesses()) {
            auto it = toucher.find(a.addr);
            if (it == toucher.end())
                toucher[a.addr] = a.proc;
            else if (it->second != a.proc)
                it->second = kNoProc; // shared
        }
        for (const auto &[addr, p] : toucher) {
            if (p != kNoProc)
                private_.insert(addr);
        }
    }

    ScReport
    run()
    {
        ScReport report;
        bool found = dfs(report);
        report.statesExplored = states_;
        if (found) {
            report.verdict = ScVerdict::Sc;
        } else if (capped_) {
            report.verdict = ScVerdict::Unknown;
            report.witnessOrder.clear();
        } else {
            report.verdict = ScVerdict::NotSc;
            report.witnessOrder.clear();
        }
        return report;
    }

  private:
    std::vector<std::uint64_t>
    key() const
    {
        std::vector<std::uint64_t> k;
        k.reserve(idx_.size() + mem_.size());
        for (std::size_t i : idx_)
            k.push_back(i);
        for (const auto &[a, v] : mem_)
            k.push_back(v);
        return k;
    }

    void
    apply(const Access &a, std::size_t p, ScReport &report)
    {
        if (a.writes()) {
            drain_undo_.push_back({a.addr, mem_[a.addr]});
            mem_[a.addr] = a.valueWritten;
        } else {
            drain_undo_.push_back({a.addr, ~Word{0}, false});
        }
        ++idx_[p];
        --remaining_;
        report.witnessOrder.push_back(a.id);
    }

    void
    unapply(std::size_t p, ScReport &report)
    {
        const DrainUndo &u = drain_undo_.back();
        if (u.restore)
            mem_[u.addr] = u.oldValue;
        drain_undo_.pop_back();
        --idx_[p];
        ++remaining_;
        report.witnessOrder.pop_back();
    }

    /**
     * Eagerly schedule accesses that provably commute with every other
     * pending access, so the branching search only explores genuinely
     * conflicting orders:
     *  - accesses to addresses touched by a single processor (their
     *    values are interleaving-independent; a mismatching private read
     *    fails globally);
     *  - "silent" enabled accesses that leave memory unchanged (e.g. a
     *    failed TestAndSet spin re-writing the held lock value): moving
     *    one earlier cannot change any other access's read.
     *
     * @return number of accesses drained, or -1 on a global failure.
     */
    int
    drain(ScReport &report)
    {
        int drained = 0;
        bool progress = true;
        while (progress) {
            progress = false;
            for (std::size_t p = 0; p < seqs_.size(); ++p) {
                if (idx_[p] >= seqs_[p].size())
                    continue;
                const Access &a = trace_.at(seqs_[p][idx_[p]]);
                bool is_private = private_.count(a.addr) > 0;
                if (is_private) {
                    if (a.reads() && mem_[a.addr] != a.valueRead) {
                        // Private state is deterministic: no
                        // interleaving can fix this read. Roll back and
                        // fail the whole branch.
                        while (drained > 0) {
                            // Find which proc the top entry belongs to:
                            // witnessOrder's back id maps to its proc.
                            const Access &top = trace_.at(
                                report.witnessOrder.back());
                            unapply(static_cast<std::size_t>(top.proc),
                                    report);
                            --drained;
                        }
                        return -1;
                    }
                    apply(a, p, report);
                    ++drained;
                    progress = true;
                    continue;
                }
                if (a.reads() && mem_[a.addr] != a.valueRead)
                    continue; // not enabled
                if (!a.writes() || a.valueWritten == mem_[a.addr]) {
                    // Silent: enabled and leaves memory unchanged.
                    apply(a, p, report);
                    ++drained;
                    progress = true;
                }
            }
        }
        return drained;
    }

    bool
    dfs(ScReport &report)
    {
        int drained = drain(report);
        if (drained < 0)
            return false;
        bool found = dfsBranch(report);
        if (!found) {
            while (drained > 0) {
                const Access &top = trace_.at(report.witnessOrder.back());
                unapply(static_cast<std::size_t>(top.proc), report);
                --drained;
            }
        }
        return found;
    }

    bool
    dfsBranch(ScReport &report)
    {
        if (remaining_ == 0)
            return true;
        if (states_ >= limits_.maxStates) {
            capped_ = true;
            return false;
        }
        if (!visited_.insert(key()).second)
            return false;
        ++states_;

        for (std::size_t p = 0; p < seqs_.size(); ++p) {
            if (idx_[p] >= seqs_[p].size())
                continue;
            const Access &a = trace_.at(seqs_[p][idx_[p]]);
            if (a.reads() && mem_[a.addr] != a.valueRead)
                continue; // not enabled: read value would be wrong
            apply(a, p, report);
            if (dfs(report))
                return true;
            unapply(p, report);
        }
        return false;
    }

    struct DrainUndo
    {
        Addr addr;
        Word oldValue;
        bool restore = true;
    };

    const ExecutionTrace &trace_;
    const ScVerifierLimits &limits_;
    std::vector<std::vector<int>> seqs_;
    std::vector<std::size_t> idx_;
    std::map<Addr, Word> mem_;
    std::set<Addr> private_;
    std::vector<DrainUndo> drain_undo_;
    int remaining_ = 0;
    std::uint64_t states_ = 0;
    bool capped_ = false;
    std::unordered_set<std::vector<std::uint64_t>, VecHash> visited_;
};

} // namespace

ScReport
verifySc(const ExecutionTrace &trace, const ScVerifierLimits &limits)
{
    Search s(trace, limits);
    return s.run();
}

std::string
ScReport::toString() const
{
    std::ostringstream oss;
    switch (verdict) {
      case ScVerdict::Sc:
        oss << "SC (witness of " << witnessOrder.size() << " accesses, "
            << statesExplored << " states)";
        break;
      case ScVerdict::NotSc:
        oss << "NOT SC (exhausted " << statesExplored << " states)";
        break;
      case ScVerdict::Unknown:
        oss << "UNKNOWN (state cap hit at " << statesExplored << ")";
        break;
    }
    return oss.str();
}

} // namespace wo
