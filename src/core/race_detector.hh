/**
 * @file
 * Streaming vector-clock race detection over the paper's happens-before
 * relation hb = (po U so)+.
 *
 * The detector consumes accesses one at a time and maintains:
 *  - one vector clock per processor (program order);
 *  - one release clock per synchronization location (the so edges:
 *    every sync operation at location s both acquires the clock left by
 *    the previous sync at s and releases its own);
 *  - per-address last-write / last-read state compressed to FastTrack
 *    epochs, widened to a per-processor read vector only when reads are
 *    genuinely concurrent.
 *
 * Cost is O(1) amortized per access in FirstRace mode (O(P) on the rare
 * concurrent-read writes), versus the O(n^2/64) time and memory of the
 * dense happens-before closure it replaces. Feeding order must be a
 * linear extension of (po U so) — the natural recording order of the
 * idealized interpreter, which lets races be reported online, during
 * execution, instead of by post-processing the complete trace.
 */

#ifndef WO_CORE_RACE_DETECTOR_HH
#define WO_CORE_RACE_DETECTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/access.hh"
#include "core/vector_clock.hh"

namespace wo {

/** One unordered conflicting pair found by a checker (trace ids,
 * normalized so that first < second). */
struct Race
{
    int first;  ///< trace id
    int second; ///< trace id

    bool operator==(const Race &o) const
    {
        return first == o.first && second == o.second;
    }

    bool operator<(const Race &o) const
    {
        return first != o.first ? first < o.first : second < o.second;
    }
};

/** What the detector reports. */
enum class RaceDetectMode {
    /** Stop at the first race: the hot-path mode for online DRF0
     * verdicts (checkProgramSampled, checkProgram). Per-address state is
     * pure FastTrack epochs. */
    FirstRace,

    /** Report every unordered conflicting pair, exactly the set the
     * dense happens-before closure enumerates. Keeps the full
     * same-address access history (epochs, so each pair test is still
     * O(1)); quadratic only in the number of conflicting accesses per
     * address of racy traces. */
    AllRaces,
};

/**
 * Online race detector. Create (or reset()) per execution, then feed
 * every recorded access in a linear extension of (po U so) — trace order
 * for idealized executions. hasRace() may be polled after every step for
 * early exit.
 */
class RaceDetector
{
  public:
    explicit RaceDetector(int numProcs,
                          RaceDetectMode mode = RaceDetectMode::FirstRace);

    /** Forget all state (keeping allocations) for a fresh execution. */
    void reset(int numProcs);

    /** Observe the next access. No-op once a race was found in
     * FirstRace mode. */
    void onAccess(const Access &a);

    /** True once at least one race has been found. */
    bool hasRace() const { return !races_.empty(); }

    /** The races found so far, in detection order. */
    const std::vector<Race> &races() const { return races_; }

    /** Accesses consumed since construction/reset. */
    std::uint64_t accessesSeen() const { return seen_; }

    RaceDetectMode mode() const { return mode_; }

  private:
    /** A past access at one address, compressed to an epoch. */
    struct HistEntry
    {
        std::uint32_t clock;
        ProcId proc;
        int id;
        bool readOnly; ///< read with no write component
    };

    /** Per-proc (clock, trace id) of the latest read, for the widened
     * concurrent-read representation. */
    struct ReadSlot
    {
        std::uint32_t clock = 0;
        int id = -1;
    };

    struct VarState
    {
        Epoch write;      ///< epoch of the last write component
        int writeId = -1;
        Epoch read;       ///< last read, while reads are totally ordered
        int readId = -1;
        std::vector<ReadSlot> readsByProc; ///< non-empty once widened
        std::vector<HistEntry> hist;       ///< AllRaces mode only
    };

    void record(int a, int b);

    RaceDetectMode mode_;
    int nprocs_ = 0;
    std::vector<VectorClock> clocks_;
    std::unordered_map<Addr, VectorClock> release_;
    std::unordered_map<Addr, VarState> vars_;
    std::vector<Race> races_;
    std::uint64_t seen_ = 0;
};

} // namespace wo

#endif // WO_CORE_RACE_DETECTOR_HH
