/**
 * @file
 * The paper's happens-before relation: the irreflexive transitive closure
 * of program order (po) and synchronization order (so).
 *
 * Given an execution trace:
 *  - op1 po op2  iff both are by the same processor and op1 precedes op2 in
 *    program order;
 *  - op1 so op2  iff both are synchronization operations on the same
 *    location and op1 completes (commits) before op2;
 *  - hb = (po U so)+.
 */

#ifndef WO_CORE_HAPPENS_BEFORE_HH
#define WO_CORE_HAPPENS_BEFORE_HH

#include <cstdint>
#include <vector>

#include "core/trace.hh"

namespace wo {

/**
 * Reachability structure for the happens-before relation of one execution.
 *
 * Construction is O(V * E / 64) via bitset propagation over a topological
 * order of the (po U so) edge DAG. If the edge relation is cyclic (which
 * cannot happen for executions of the idealized architecture, but can be
 * constructed artificially), the relation is flagged and queries fall back
 * to "everything on a cycle is unordered".
 */
class HappensBefore
{
  public:
    /** Build the relation for @p trace. */
    explicit HappensBefore(const ExecutionTrace &trace);

    /** True iff access @p a happens-before access @p b (trace ids). */
    bool ordered(int a, int b) const;

    /** True iff a hb b or b hb a. */
    bool orderedEither(int a, int b) const
    {
        return ordered(a, b) || ordered(b, a);
    }

    /** True if po U so was acyclic (a well-formed execution). */
    bool acyclic() const { return acyclic_; }

    /** Number of accesses covered. */
    int size() const { return n_; }

    /** The direct (po U so) edges used, as (from, to) pairs. */
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }

  private:
    using BitRow = std::vector<std::uint64_t>;

    bool bit(const BitRow &row, int i) const
    {
        return (row[i >> 6] >> (i & 63)) & 1;
    }

    void setBit(BitRow &row, int i) { row[i >> 6] |= 1ull << (i & 63); }

    int n_ = 0;
    int words_ = 0;
    bool acyclic_ = true;
    std::vector<BitRow> reach_; ///< reach_[a] = set of b with a hb b
    std::vector<std::pair<int, int>> edges_;
};

} // namespace wo

#endif // WO_CORE_HAPPENS_BEFORE_HH
