/**
 * @file
 * Dynamic memory accesses as used by the formal machinery (happens-before,
 * DRF0 checking, sequential-consistency verification).
 *
 * Terminology follows the paper: an access *commits* when a read's return
 * value is dispatched back towards the processor / a write's value could be
 * dispatched for some read, and is *globally performed* when its
 * modification has been propagated to all processors (writes) or when its
 * value is bound (reads).
 */

#ifndef WO_CORE_ACCESS_HH
#define WO_CORE_ACCESS_HH

#include <string>

#include "cpu/isa.hh"
#include "sim/types.hh"

namespace wo {

/**
 * One dynamic memory access observed in an execution.
 *
 * A read-write synchronization (TestAndSet) is a single access whose read
 * and write components both appear here (valueRead is the old value,
 * valueWritten the new one), matching the paper's treatment.
 */
struct Access
{
    /** Index of this access within its ExecutionTrace. */
    int id = -1;

    /** Issuing processor; kNoProc for the hypothetical initializing
     * writes. */
    ProcId proc = kNoProc;

    /** Dynamic program-order index within the issuing processor. */
    int poIndex = -1;

    /** Access category (data/sync x read/write/rmw). */
    AccessKind kind = AccessKind::DataRead;

    /** Location accessed (exactly one, per DRF0's restriction). */
    Addr addr = 0;

    /** Value returned, when the access has a read component. */
    Word valueRead = 0;

    /** Value stored, when the access has a write component. */
    Word valueWritten = 0;

    /** Commit time. */
    Tick commitTick = kNoTick;

    /** Globally-performed time (kNoTick if still pending at end of run). */
    Tick gpTick = kNoTick;

    /** True if this access has a read component. */
    bool reads() const { return readsMemory(kind); }

    /** True if this access has a write component. */
    bool writes() const { return writesMemory(kind); }

    /** True for synchronization accesses. */
    bool sync() const { return isSync(kind); }

    /** One-line description for reports. */
    std::string toString() const;
};

/**
 * The paper's conflict relation: two accesses conflict if they access the
 * same location and they are not both reads.
 */
bool conflict(const Access &a, const Access &b);

} // namespace wo

#endif // WO_CORE_ACCESS_HH
