/**
 * @file
 * Streaming DRF0 checking over a bounded trace window.
 *
 * checkTrace() needs the whole ExecutionTrace resident: it sorts the
 * complete per-proc/per-sync index lists, topologically orders (po U so)
 * and only then feeds the vector-clock detector. This header provides the
 * online replacement used by the trace-replay pipeline: accesses are fed
 * to one long-lived RaceDetector as they become final, the detector's
 * per-proc clocks and per-sync-location release clocks carry happens-
 * before state across window boundaries, and the trace owner retires the
 * consumed prefix with ExecutionTrace::popFront() so resident memory
 * stays O(window) while the verdict stays byte-identical to the
 * whole-trace oracle.
 *
 * Two feeding disciplines:
 *  - onAccess(): the caller guarantees it emits a linear extension of
 *    (po U so) — true for the replay engine and the idealized
 *    interpreter, whose execution order is such an extension by
 *    construction.
 *  - drainWindow(): for simulator traces, where trace order is issue
 *    order and synchronization operations may commit out of issue order.
 *    The drain admits only accesses that are final (commit and gp ticks
 *    patched) and safely below every still-pending commit, then feeds
 *    each batch in a local topological order of (po U so). See the
 *    implementation notes for the admission horizon.
 */

#ifndef WO_CORE_STREAM_CHECKER_HH
#define WO_CORE_STREAM_CHECKER_HH

#include <cstdint>
#include <vector>

#include "core/race_detector.hh"
#include "core/trace.hh"
#include "sim/types.hh"

namespace wo {

class StreamingDrf0Checker
{
  public:
    /** @p mode FirstRace keeps per-address state to FastTrack epochs —
     * O(addrs * procs) memory regardless of trace length, the scale mode.
     * AllRaces reproduces the oracle's full race set (per-address history
     * grows with conflicting accesses; differential testing only). */
    explicit StreamingDrf0Checker(
        int numProcs, RaceDetectMode mode = RaceDetectMode::FirstRace);

    /** Forget all state for a fresh trace. */
    void reset(int numProcs);

    /**
     * Feed the next access of a stream that is already a linear extension
     * of (po U so). Ids must arrive densely ascending from 0 (or from the
     * id after the last reset). Advances the retirement frontier.
     */
    void onAccess(const Access &a);

    /**
     * Consume every resident access of @p trace that is safe to order
     * now, given that simulation has advanced to @p now and every
     * commit/gp tick at or beyond @p now is still unknown. Feeds the
     * admitted batch in a topological order of its (po U so) edges.
     * Returns the number of accesses fed.
     */
    int drainWindow(const ExecutionTrace &trace, Tick now);

    /** Number of oldest resident accesses of @p trace already consumed —
     * the prefix the owner may ExecutionTrace::popFront() right now. */
    int retireReady(const ExecutionTrace &trace) const;

    /**
     * Consume everything still resident and unfed (end of run: all ticks
     * final). Accesses that never committed sort after every committed
     * one, matching the whole-trace oracle's syncsAt order. Sets
     * hbCyclic() instead of ordering if the leftover (po U so) edges are
     * cyclic (impossible for machine traces, constructible artificially).
     */
    void finish(const ExecutionTrace &trace);

    bool raceFree() const { return det_.races().empty(); }

    /** Races in detection order (pairs of stable trace ids). */
    const std::vector<Race> &races() const { return det_.races(); }

    /** Races sorted by id pair — the stable form for differential
     * comparison against the whole-trace oracle (whose addr-major order
     * needs retired accesses to recompute). */
    std::vector<Race> sortedRaces() const;

    bool hbCyclic() const { return hb_cyclic_; }

    /** First trace id not yet consumed. */
    int frontier() const { return next_; }

    /** Accesses consumed since construction/reset. */
    std::uint64_t consumed() const { return det_.accessesSeen(); }

    RaceDetectMode mode() const { return det_.mode(); }

  private:
    bool isFed(int id) const;
    void markFed(int id);
    /** Feed @p batch (resident trace ids, ascending) in a topological
     * order of its internal (po U so) edges. Returns false on a cycle. */
    bool feedTopo(const ExecutionTrace &trace, const std::vector<int> &batch);

    RaceDetector det_;
    int nprocs_ = 0;
    int next_ = 0;              ///< ids below this are all consumed
    std::vector<int> fedAhead_; ///< consumed ids >= next_, ascending
    bool hb_cyclic_ = false;
};

} // namespace wo

#endif // WO_CORE_STREAM_CHECKER_HH
