#include "axiom/enumerate.hh"

#include <algorithm>

#include "axiom/relation.hh"

namespace wo {
namespace axiom {

namespace {

/** One full enumeration run (combo -> rf -> co -> visit). */
struct CandEnum
{
    const MultiProgram &program;
    const AxiomLimits &limits;
    EnumStats &stats;
    const std::function<bool(const Candidate &)> &visit;

    bool capped = false;
    bool stopped = false;

    Candidate cand;
    std::vector<int> readIds;
    std::vector<std::vector<int>> rfOptions; ///< aligned with readIds
    std::vector<Addr> writeAddrs;
    std::map<Addr, std::vector<int>> writesByAddr;

    CandEnum(const MultiProgram &p, const AxiomLimits &l, EnumStats &s,
             const std::function<bool(const Candidate &)> &v)
        : program(p), limits(l), stats(s), visit(v)
    {}

    bool run()
    {
        PathSet ps = enumeratePaths(program, limits.paths);
        stats.pathsEmitted = ps.pathsEmitted;
        stats.stutterPruned = ps.stutterPruned;
        stats.valueRounds = ps.valueRounds;

        int n = program.numProcs();
        for (ProcId p = 0; p < n; ++p) {
            if (ps.perProc[p].empty())
                return ps.complete; // no halting path -> no candidates
        }

        // Odometer over per-processor path choices.
        std::vector<std::size_t> choice(n, 0);
        for (;;) {
            ++stats.combos;
            if (stats.combos > limits.maxCombos) {
                capped = true;
                break;
            }
            buildCombo(ps, choice);
            if (stopped || capped)
                break;
            int p = n - 1;
            for (; p >= 0; --p) {
                if (++choice[p] < ps.perProc[p].size())
                    break;
                choice[p] = 0;
            }
            if (p < 0)
                break;
        }
        return ps.complete && !capped;
    }

    void buildCombo(const PathSet &ps, const std::vector<std::size_t> &choice)
    {
        int n = program.numProcs();
        cand.events.clear();
        cand.byProc.assign(n, {});
        cand.finalRegs.assign(n, {});
        readIds.clear();
        rfOptions.clear();
        writesByAddr.clear();
        writeAddrs.clear();
        cand.co.clear();

        for (ProcId p = 0; p < n; ++p) {
            const LocalPath &path = ps.perProc[p][choice[p]];
            cand.finalRegs[p] = path.finalRegs;
            for (const AxEvent &ev : path.events) {
                AxEvent e = ev;
                e.id = static_cast<int>(cand.events.size());
                cand.byProc[p].push_back(e.id);
                cand.events.push_back(e);
                if (e.writes())
                    writesByAddr[e.addr].push_back(e.id);
            }
        }
        cand.rf.assign(cand.events.size(), kNotARead);
        for (const auto &[a, w] : writesByAddr)
            writeAddrs.push_back(a);

        // rf source options per read. In pruned mode: value-matching
        // writes only, and per-location program order is respected up
        // front — a read may take the initial value only with no
        // po-earlier own write to the location, and its own writes
        // only from the po-latest earlier one.
        for (const AxEvent &e : cand.events) {
            if (!e.reads())
                continue;
            std::vector<int> opts;
            int last_own = -1;
            for (int id : cand.byProc[e.proc]) {
                if (id >= e.id)
                    break;
                const AxEvent &w = cand.events[id];
                if (w.writes() && w.addr == e.addr)
                    last_own = id;
            }
            if (!limits.pruning) {
                opts.push_back(kInitialWrite);
                auto it = writesByAddr.find(e.addr);
                if (it != writesByAddr.end()) {
                    for (int id : it->second) {
                        if (id != e.id)
                            opts.push_back(id);
                    }
                }
            } else {
                if (program.initialValue(e.addr) == e.valueRead &&
                    last_own == -1) {
                    opts.push_back(kInitialWrite);
                }
                auto it = writesByAddr.find(e.addr);
                if (it != writesByAddr.end()) {
                    for (int id : it->second) {
                        if (id == e.id)
                            continue;
                        const AxEvent &w = cand.events[id];
                        if (w.valueWritten != e.valueRead)
                            continue;
                        if (w.proc == e.proc && id != last_own)
                            continue;
                        opts.push_back(id);
                    }
                }
                if (opts.empty()) {
                    ++stats.combosPrefiltered;
                    return;
                }
            }
            readIds.push_back(e.id);
            rfOptions.push_back(std::move(opts));
        }

        rfStep(0);
    }

    void rfStep(std::size_t i)
    {
        if (stopped || capped)
            return;
        if (i == readIds.size()) {
            coAddr(0);
            return;
        }
        for (int src : rfOptions[i]) {
            ++stats.rfChoices;
            cand.rf[readIds[i]] = src;
            rfStep(i + 1);
            if (stopped || capped)
                return;
        }
        cand.rf[readIds[i]] = kNotARead;
    }

    void coAddr(std::size_t ai)
    {
        if (stopped || capped)
            return;
        if (ai == writeAddrs.size()) {
            finishCandidate();
            return;
        }
        Addr a = writeAddrs[ai];
        const std::vector<int> &writes = writesByAddr[a];
        std::vector<char> used(writes.size(), 0);
        cand.co[a].clear();
        coPlace(ai, a, writes, used, 0);
        cand.co[a].clear();
    }

    void coPlace(std::size_t ai, Addr a, const std::vector<int> &writes,
                 std::vector<char> &used, std::size_t placed)
    {
        if (stopped || capped)
            return;
        std::vector<int> &chain = cand.co[a];
        if (placed == writes.size()) {
            if (limits.pruning && !coherentAt(a)) {
                ++stats.coherencePruned;
                return;
            }
            coAddr(ai + 1);
            return;
        }
        int tail = chain.empty() ? kInitialWrite : chain.back();

        // RMW atomicity: an rmw must immediately follow its rf source
        // in co, so an unplaced rmw sourced at the current tail is the
        // only legal next element.
        int mandatory = -1;
        if (limits.pruning) {
            for (std::size_t i = 0; i < writes.size(); ++i) {
                if (!used[i] && cand.events[writes[i]].isRmw() &&
                    cand.rf[writes[i]] == tail) {
                    mandatory = static_cast<int>(i);
                    break;
                }
            }
        }
        for (std::size_t i = 0; i < writes.size(); ++i) {
            if (used[i])
                continue;
            int w = writes[i];
            if (limits.pruning) {
                if (mandatory >= 0 && static_cast<int>(i) != mandatory)
                    continue;
                if (cand.events[w].isRmw() && cand.rf[w] != tail)
                    continue;
                // Same-processor writes enter co in program order
                // (event ids within a processor ascend in po).
                bool blocked = false;
                for (std::size_t j = 0; j < writes.size(); ++j) {
                    if (!used[j] && writes[j] < w &&
                        cand.events[writes[j]].proc ==
                            cand.events[w].proc) {
                        blocked = true;
                        break;
                    }
                }
                if (blocked)
                    continue;
            }
            ++stats.coPlacements;
            used[i] = 1;
            chain.push_back(w);
            coPlace(ai, a, writes, used, placed + 1);
            chain.pop_back();
            used[i] = 0;
            if (stopped || capped)
                return;
        }
    }

    /** acyclic(poloc | rf | co | fr) restricted to address @p a — the
     * SC-per-location generator invariant (every shipped model
     * contains these relations, so the prune loses nothing). */
    bool coherentAt(Addr a)
    {
        RelGraph g(static_cast<int>(cand.events.size()));
        for (const auto &proc : cand.byProc) {
            int last = -1;
            for (int id : proc) {
                const AxEvent &e = cand.events[id];
                if (e.fence || e.addr != a)
                    continue;
                if (last >= 0)
                    g.addEdge(last, id, RelKind::PoLoc);
                last = id;
            }
        }
        const std::vector<int> &chain = cand.co[a];
        for (std::size_t i = 1; i < chain.size(); ++i)
            g.addEdge(chain[i - 1], chain[i], RelKind::Co);
        for (const AxEvent &e : cand.events) {
            if (!e.reads() || e.addr != a)
                continue;
            if (cand.rf[e.id] >= 0)
                g.addEdge(cand.rf[e.id], e.id, RelKind::Rf);
            int succ = -1;
            if (cand.rf[e.id] == kInitialWrite) {
                if (!chain.empty())
                    succ = chain.front();
            } else {
                auto pos = std::find(chain.begin(), chain.end(),
                                     cand.rf[e.id]);
                if (pos != chain.end() && pos + 1 != chain.end())
                    succ = *(pos + 1);
            }
            if (succ >= 0 && succ != e.id)
                g.addEdge(e.id, succ, RelKind::Fr);
        }
        return g.acyclic();
    }

    void finishCandidate()
    {
        ++stats.candidatesConsidered;
        if (stats.candidatesConsidered > limits.maxCandidates) {
            capped = true;
            return;
        }
        if (!limits.pruning) {
            // Naive mode assigned rf value-blind: discard mismatches
            // here. Everything else (coherence, atomicity, po sanity)
            // is expressible as relation cycles and left to the model
            // checks, keeping the baseline honestly naive.
            for (int r : readIds) {
                const AxEvent &e = cand.events[r];
                Word got = cand.rf[r] == kInitialWrite
                               ? program.initialValue(e.addr)
                               : cand.events[cand.rf[r]].valueWritten;
                if (got != e.valueRead)
                    return;
            }
        }
        ++stats.candidates;
        if (!visit(cand))
            stopped = true;
    }
};

} // namespace

bool
enumerateCandidates(const MultiProgram &program, const AxiomLimits &limits,
                    EnumStats &stats,
                    const std::function<bool(const Candidate &)> &visit)
{
    CandEnum e(program, limits, stats, visit);
    return e.run();
}

AxiomResult
enumerateAllowed(const MultiProgram &program,
                 const std::vector<const AxiomaticModel *> &models,
                 const ModelContext &ctx, const AxiomLimits &limits)
{
    AxiomResult res;
    for (const AxiomaticModel *m : models)
        res.allowed[m->name()];

    std::set<RunResult> fully; // allowed by every model: skip checks
    res.complete = enumerateCandidates(
        program, limits, res.stats, [&](const Candidate &c) {
            RunResult o = c.outcome(program);
            if (fully.count(o)) {
                ++res.stats.memoHits;
                return true;
            }
            bool all = true;
            for (const AxiomaticModel *m : models) {
                std::set<RunResult> &set = res.allowed[m->name()];
                if (set.count(o))
                    continue;
                ++res.stats.modelChecks;
                if (m->check(c, ctx).allowed)
                    set.insert(o);
                else
                    all = false;
            }
            if (all && !models.empty())
                fully.insert(o);
            return true;
        });
    return res;
}

Explanation
explainOutcome(const MultiProgram &program,
               const std::vector<const AxiomaticModel *> &models,
               const ModelContext &ctx,
               const std::function<bool(const RunResult &)> &match,
               const AxiomLimits &limits, const AddrNamer &name)
{
    Explanation ex;
    for (const AxiomaticModel *m : models) {
        ModelExplanation me;
        me.model = m->name();
        ex.models.push_back(std::move(me));
    }

    EnumStats stats;
    bool full = enumerateCandidates(
        program, limits, stats, [&](const Candidate &c) {
            RunResult o = c.outcome(program);
            if (!match(o))
                return true;
            if (!ex.matched) {
                ex.matched = true;
                ex.witness = c;
            }
            bool all_allowed = true;
            for (std::size_t i = 0; i < models.size(); ++i) {
                ModelExplanation &me = ex.models[i];
                if (me.allowed)
                    continue;
                ModelVerdict v =
                    models[i]->check(c, ctx, me.cycle.empty(), name);
                if (v.allowed) {
                    me.allowed = true;
                    me.witness = c;
                    me.cycle.clear();
                } else if (me.cycle.empty()) {
                    me.cycle = v.cycle;
                }
                all_allowed = all_allowed && me.allowed;
            }
            return !all_allowed; // everything resolved: stop early
        });
    // An early stop (all models resolved) is not a truncation.
    bool resolved = ex.matched;
    for (const ModelExplanation &me : ex.models)
        resolved = resolved && me.allowed;
    ex.complete = full || resolved;
    return ex;
}

} // namespace axiom
} // namespace wo
