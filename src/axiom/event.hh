/**
 * @file
 * Events and candidate executions of the axiomatic backend.
 *
 * Where the operational simulator produces one concrete trace per run,
 * the axiomatic backend reasons about *candidate executions*: a set of
 * memory events (one per dynamic access of some control-flow path of
 * each processor), a reads-from assignment rf (which write each read
 * takes its value from), and a per-address coherence order co (a total
 * order on the writes to each location). The from-reads relation
 * fr = rf^-1 ; co is derived. A memory model then either accepts or
 * rejects the candidate by acyclicity constraints over these relations
 * (see axiom/model.hh) — the herd/cat recipe, specialized to the
 * paper's tiny ISA.
 *
 * The hypothetical initializing writes of the paper are modelled
 * implicitly: rf may point at kInitialWrite, and the initial value is
 * co-before every program write to its location.
 */

#ifndef WO_AXIOM_EVENT_HH
#define WO_AXIOM_EVENT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/trace.hh"
#include "cpu/isa.hh"
#include "cpu/program.hh"
#include "sim/types.hh"

namespace wo {
namespace axiom {

/** rf source naming the hypothetical initializing write. */
constexpr int kInitialWrite = -1;

/** rf slot value for events without a read component. */
constexpr int kNotARead = -2;

/** Maps an interned address to a symbolic name for rendering; may
 * return "" to fall back to the numeric form "[addr]". */
using AddrNamer = std::function<std::string(Addr)>;

/** Plain numeric rendering (the default namer). */
std::string defaultAddrName(Addr a);

/** Namer over a symbol table like CompiledLitmus::addrOf (unmapped
 * addresses fall back to the numeric form). */
AddrNamer namerFrom(const std::map<std::string, Addr> &addr_of);

/**
 * One event of a candidate execution: a dynamic memory access (read,
 * write or read-modify-write) or a fence. Fences carry no address but
 * participate in program order, so fence-aware models can order the
 * accesses around them.
 */
struct AxEvent
{
    int id = -1;       ///< index within the candidate's event list
    ProcId proc = 0;   ///< issuing processor
    int poIndex = 0;   ///< program-order index among this proc's events
    bool fence = false;

    /** Access category; meaningless when fence. */
    AccessKind kind = AccessKind::DataRead;
    Addr addr = 0;
    Word valueRead = 0;    ///< read / rmw events
    Word valueWritten = 0; ///< write / rmw events

    /** Write value came from a register rather than an immediate
     * (constrains the path enumerator's stutter pruning). */
    bool regSourcedWrite = false;

    bool reads() const { return !fence && readsMemory(kind); }
    bool writes() const { return !fence && writesMemory(kind); }
    bool isRmw() const { return !fence && kind == AccessKind::SyncRmw; }
    bool sync() const { return !fence && isSync(kind); }

    /** "P1 R x=1", "P0 W x:=2", "P0 S(rw) s=0:=1", "P0 fence". */
    std::string toString(const AddrNamer &name = defaultAddrName) const;
};

/**
 * One complete candidate execution. Events are grouped by processor in
 * program order (ids ascending within a processor).
 */
struct Candidate
{
    std::vector<AxEvent> events;

    /** Event ids of each processor, in program order. */
    std::vector<std::vector<int>> byProc;

    /** Final register values per processor (determined by the path). */
    std::vector<std::vector<Word>> finalRegs;

    /** Per event id: source write of its read component (kInitialWrite
     * for the initial value), or kNotARead. */
    std::vector<int> rf;

    /** Per address: write-event ids in coherence order. */
    std::map<Addr, std::vector<int>> co;

    /** The observable outcome: co-final memory values over every
     * address of @p program, plus the path's final registers padded to
     * the program's register count. allHalted is always true (only
     * complete paths become candidates). */
    RunResult outcome(const MultiProgram &program) const;

    /** Multi-line rendering of events, rf, co and derived fr. */
    std::string toString(const AddrNamer &name = defaultAddrName) const;
};

} // namespace axiom
} // namespace wo

#endif // WO_AXIOM_EVENT_HH
