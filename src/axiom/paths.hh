/**
 * @file
 * Per-processor control-flow path enumeration for the axiomatic
 * backend.
 *
 * A candidate execution needs each processor's dynamic event sequence,
 * but the litmus programs have value-dependent branches and spin
 * loops, so the event sequence is not static. The enumerator runs each
 * processor's program *locally*: register state is concrete, every
 * read branches over the values the location could possibly hold, and
 * each complete run to Halt yields one LocalPath (its event sequence
 * plus final registers).
 *
 * Possible read values are computed by a fixpoint: V(a) starts at the
 * initial value of a, each round enumerates all paths under the
 * current V and folds every written value back in, until nothing new
 * appears. The fixpoint is *grounded*: a value enters V only if some
 * chain of writes derives it from initial values, which is exactly the
 * justification a reads-from assignment must provide later — so no
 * out-of-thin-air values are ever enumerated. A round bound of
 * (total write events) + 1 suffices for completeness: in any single
 * candidate a value's derivation chain passes through distinct write
 * events, so its depth is bounded by the candidate's write count.
 *
 * Spin loops are cut by *stutter pruning*: a path that returns to a
 * previously visited (pc, registers) state has merely replayed reads
 * of unchanged values (or rewritten identical immediates), so every
 * outcome reachable by continuing is already reachable from the first
 * visit; the revisit is pruned. The pruning is suppressed — and the
 * hard event cap relied on instead — when the cycle contains a
 * register-sourced write, whose repetition could place fresh values in
 * memory.
 */

#ifndef WO_AXIOM_PATHS_HH
#define WO_AXIOM_PATHS_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "axiom/event.hh"

namespace wo {
namespace axiom {

/** Caps on path enumeration. */
struct PathLimits
{
    /** Max events (accesses + fences) along one path. */
    int maxEventsPerPath = 48;

    /** Max instructions interpreted along one path. */
    int maxStepsPerPath = 512;

    /** Max complete paths kept per processor. */
    int maxPathsPerProc = 512;

    /** Hard cap on value-fixpoint rounds (the grounded-depth bound
     * normally stops it much earlier). */
    int maxValueRounds = 64;
};

/** One complete (halting) local execution of one processor. */
struct LocalPath
{
    /** Events in program order; proc/poIndex filled in, id unset. */
    std::vector<AxEvent> events;

    /** Register state at Halt. */
    std::vector<Word> finalRegs;

    /** Write events on this path (fixpoint round accounting). */
    int writes = 0;
};

/** Result of enumerating every processor's paths. */
struct PathSet
{
    std::vector<std::vector<LocalPath>> perProc;

    /** Possible-value sets per address at the fixpoint. */
    std::map<Addr, std::set<Word>> values;

    /** False when a cap cut the enumeration: the path set (and hence
     * any allowed-outcome set built on it) is a lower bound only. */
    bool complete = true;

    int valueRounds = 0;
    std::uint64_t pathsEmitted = 0;
    std::uint64_t stutterPruned = 0;
};

/** Enumerate every processor's stutter-free halting paths. */
PathSet enumeratePaths(const MultiProgram &program,
                       const PathLimits &limits = {});

} // namespace axiom
} // namespace wo

#endif // WO_AXIOM_PATHS_HH
