#include "axiom/model.hh"

#include "axiom/relation.hh"

namespace wo {
namespace axiom {

namespace {

ModelVerdict
verdictOf(const Candidate &c, const RelGraph &g, bool need_cycle,
          const AddrNamer &name)
{
    ModelVerdict v;
    v.allowed = g.acyclic();
    if (!v.allowed && need_cycle)
        v.cycle = renderCycle(c, g.findCycle(), name);
    return v;
}

RelGraph
scGraph(const Candidate &c)
{
    RelGraph g(static_cast<int>(c.events.size()));
    addPo(c, g);
    addRf(c, g);
    addCo(c, g);
    addFr(c, g);
    return g;
}

RelGraph
wbGraph(const Candidate &c)
{
    RelGraph g(static_cast<int>(c.events.size()));
    addPoLoc(c, g);
    addFenceOrder(c, g);
    addRf(c, g);
    addCo(c, g);
    addFr(c, g);
    return g;
}

class ScModel : public AxiomaticModel
{
  public:
    std::string name() const override { return "sc"; }
    std::string summary() const override
    {
        return "sequential consistency: acyclic(po | rf | co | fr)";
    }
    ModelVerdict check(const Candidate &c, const ModelContext &,
                       bool need_cycle,
                       const AddrNamer &name) const override
    {
        return verdictOf(c, scGraph(c), need_cycle, name);
    }
};

class WbModel : public AxiomaticModel
{
  public:
    std::string name() const override { return "wb"; }
    std::string summary() const override
    {
        return "relaxed-hardware envelope: acyclic(poloc | fence | rf | "
               "co | fr) — coherence, atomicity and fences only";
    }
    ModelVerdict check(const Candidate &c, const ModelContext &,
                       bool need_cycle,
                       const AddrNamer &name) const override
    {
        return verdictOf(c, wbGraph(c), need_cycle, name);
    }
};

class Drf0ScModel : public AxiomaticModel
{
  public:
    std::string name() const override { return "drf0sc"; }
    std::string summary() const override
    {
        return "weak ordering w.r.t. DRF0: sc when the program is "
               "data-race-free, wb otherwise";
    }
    ModelVerdict check(const Candidate &c, const ModelContext &ctx,
                       bool need_cycle,
                       const AddrNamer &name) const override
    {
        return verdictOf(c, ctx.programDrf0 ? scGraph(c) : wbGraph(c),
                         need_cycle, name);
    }
};

} // namespace

const std::vector<const AxiomaticModel *> &
axiomModels()
{
    static const ScModel sc;
    static const WbModel wb;
    static const Drf0ScModel drf0sc;
    static const std::vector<const AxiomaticModel *> all = {&sc, &wb,
                                                            &drf0sc};
    return all;
}

const AxiomaticModel *
findAxiomModel(const std::string &name)
{
    for (const AxiomaticModel *m : axiomModels()) {
        if (m->name() == name)
            return m;
    }
    return nullptr;
}

const AxiomaticModel *
modelForPolicy(PolicyKind policy)
{
    switch (policy) {
      case PolicyKind::Sc:
        return findAxiomModel("sc");
      case PolicyKind::Def1:
      case PolicyKind::Def2Drf0:
      case PolicyKind::Def2Drf1:
        return findAxiomModel("drf0sc");
      case PolicyKind::Relaxed:
        return findAxiomModel("wb");
    }
    return findAxiomModel("wb");
}

} // namespace axiom
} // namespace wo
