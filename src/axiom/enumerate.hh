/**
 * @file
 * Candidate-execution enumeration and allowed-outcome computation.
 *
 * The enumerator composes per-processor paths (axiom/paths.hh) into
 * candidate executions: for each path combination it assigns every
 * read a source write (rf), then builds a per-address total order on
 * the writes (co), and hands each complete candidate to a visitor.
 * `enumerateAllowed` folds the visitor into per-model allowed-outcome
 * sets; `explainOutcome` searches for a witness candidate of one
 * outcome and reports, per model, either acceptance or the cycle that
 * rejects it.
 *
 * Two generation modes exist. The pruned mode (default) only proposes
 * value-matching rf sources consistent with per-location program
 * order, places co respecting each processor's write order and RMW
 * atomicity, and discards any per-address assignment with a cycle in
 * poloc ∪ rf ∪ co ∪ fr — sound because every shipped model contains
 * those relations (SC-per-location is a generator invariant). The
 * naive mode enumerates value-blind rf sources and unconstrained co
 * permutations, validating only at completion; it exists as the
 * baseline the bench harness measures pruning effectiveness against
 * and must compute identical allowed sets (the differential tests
 * check this).
 */

#ifndef WO_AXIOM_ENUMERATE_HH
#define WO_AXIOM_ENUMERATE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "axiom/event.hh"
#include "axiom/model.hh"
#include "axiom/paths.hh"

namespace wo {
namespace axiom {

/** Caps and mode switches for candidate enumeration. */
struct AxiomLimits
{
    PathLimits paths;

    /** Max per-processor path combinations. */
    std::uint64_t maxCombos = 200000;

    /** Max complete (rf, co) assignments considered. */
    std::uint64_t maxCandidates = 5000000;

    /** False selects the naive baseline mode (bench only). */
    bool pruning = true;
};

/** Work counters (reported by wo-axiom and the bench harness). */
struct EnumStats
{
    std::uint64_t pathsEmitted = 0;
    std::uint64_t stutterPruned = 0;
    int valueRounds = 0;

    std::uint64_t combos = 0;            ///< path combinations built
    std::uint64_t combosPrefiltered = 0; ///< dropped: unsourceable read
    std::uint64_t rfChoices = 0;         ///< rf source choices explored
    std::uint64_t coPlacements = 0;      ///< co slot choices explored
    std::uint64_t coherencePruned = 0;   ///< per-address cycle prunes
    std::uint64_t candidatesConsidered = 0; ///< complete assignments
    std::uint64_t candidates = 0;        ///< valid candidates visited
    std::uint64_t modelChecks = 0;
    std::uint64_t memoHits = 0;          ///< outcome already fully allowed
};

/** Allowed outcomes per model name. */
struct AxiomResult
{
    std::map<std::string, std::set<RunResult>> allowed;

    /** False when any cap truncated enumeration: allowed sets are then
     * lower bounds and absence proves nothing. */
    bool complete = true;

    EnumStats stats;
};

/**
 * Enumerate every candidate execution of @p program, calling @p visit
 * for each valid one (return false to stop early). Returns false when
 * a cap truncated the enumeration (an early visitor stop does not
 * count as truncation).
 */
bool enumerateCandidates(const MultiProgram &program,
                         const AxiomLimits &limits, EnumStats &stats,
                         const std::function<bool(const Candidate &)> &visit);

/** Compute each model's allowed-outcome set. */
AxiomResult
enumerateAllowed(const MultiProgram &program,
                 const std::vector<const AxiomaticModel *> &models,
                 const ModelContext &ctx, const AxiomLimits &limits = {});

/** Per-model verdict for one explained outcome. */
struct ModelExplanation
{
    std::string model;
    bool allowed = false;

    /** A candidate this model accepts (meaningful when allowed). */
    Candidate witness;

    /** Rejection cycle from a representative candidate (meaningful
     * when no candidate of the outcome was accepted). */
    std::string cycle;
};

/** Result of explaining one outcome. */
struct Explanation
{
    /** Some candidate execution produces the outcome at all. */
    bool matched = false;
    bool complete = true;

    /** First matching candidate (valid when matched). */
    Candidate witness;

    std::vector<ModelExplanation> models;
};

/**
 * Search the candidate space for executions whose outcome satisfies
 * @p match and resolve each model's verdict on that outcome (stops as
 * soon as every model has an accepting witness).
 */
Explanation
explainOutcome(const MultiProgram &program,
               const std::vector<const AxiomaticModel *> &models,
               const ModelContext &ctx,
               const std::function<bool(const RunResult &)> &match,
               const AxiomLimits &limits = {},
               const AddrNamer &name = defaultAddrName);

} // namespace axiom
} // namespace wo

#endif // WO_AXIOM_ENUMERATE_HH
