/**
 * @file
 * Typed relation graphs over candidate executions.
 *
 * A memory model in the axiomatic backend is an acyclicity constraint
 * over a union of relations (herd/cat style). This header provides the
 * graph container, the builders for the standard relations — program
 * order (po), per-location program order (poloc), fence ordering, the
 * candidate's rf and co, and the derived from-reads fr = rf^-1 ; co —
 * plus cycle extraction for minimal witnesses: when a model rejects a
 * candidate, the shortest cycle in its relation graph is the
 * explanation shown to the user.
 *
 * The hypothetical initial write is not a node; rf-from-initial adds
 * no edge, and fr-from-initial points the read at the co-first program
 * write of its location.
 */

#ifndef WO_AXIOM_RELATION_HH
#define WO_AXIOM_RELATION_HH

#include <string>
#include <vector>

#include "axiom/event.hh"

namespace wo {
namespace axiom {

/** The relation an edge belongs to (for witness rendering). */
enum class RelKind { Po, PoLoc, Fence, Rf, Co, Fr };

/** Short relation name: "po", "poloc", "fence", "rf", "co", "fr". */
std::string toString(RelKind k);

/** One typed edge between event ids. */
struct RelEdge
{
    int from = 0;
    int to = 0;
    RelKind kind = RelKind::Po;
};

/** A union-of-relations digraph over a candidate's events. */
class RelGraph
{
  public:
    explicit RelGraph(int num_events) : out_(num_events) {}

    void addEdge(int from, int to, RelKind kind)
    {
        out_[from].push_back(RelEdge{from, to, kind});
    }

    int numEvents() const { return static_cast<int>(out_.size()); }
    const std::vector<RelEdge> &outEdges(int id) const { return out_[id]; }

    bool acyclic() const;

    /** A shortest cycle (edge list in traversal order), empty when the
     * graph is acyclic. Quadratic in edges — only called on rejection
     * paths that need a witness. */
    std::vector<RelEdge> findCycle() const;

  private:
    std::vector<std::vector<RelEdge>> out_;
};

/** Full program order: consecutive events (fences included) per proc. */
void addPo(const Candidate &c, RelGraph &g);

/** Per-location program order: consecutive same-address accesses per
 * proc (fences excluded — they have no location). */
void addPoLoc(const Candidate &c, RelGraph &g);

/** Fence ordering: every po-earlier event before each fence, the fence
 * before every po-later event (the paper's RP3-style fence performs
 * all prior accesses globally before any later one issues). */
void addFenceOrder(const Candidate &c, RelGraph &g);

/** Reads-from edges (initial-write sources add none). */
void addRf(const Candidate &c, RelGraph &g);

/** Coherence edges: consecutive writes of each per-address chain. */
void addCo(const Candidate &c, RelGraph &g);

/**
 * From-reads: each read precedes the co-successor of its rf source
 * (with the co chain's own edges supplying the rest of rf^-1 ; co
 * transitively). An rmw is its own source's co-successor; no self edge
 * is added.
 */
void addFr(const Candidate &c, RelGraph &g);

/** "e0 P0 W x:=1 --po--> e1 P0 R y=0 --fr--> ... --rf--> e0". */
std::string renderCycle(const Candidate &c,
                        const std::vector<RelEdge> &cycle,
                        const AddrNamer &name = defaultAddrName);

} // namespace axiom
} // namespace wo

#endif // WO_AXIOM_RELATION_HH
