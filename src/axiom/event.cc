#include "axiom/event.hh"

#include <sstream>

namespace wo {
namespace axiom {

std::string
defaultAddrName(Addr a)
{
    return "[" + std::to_string(a) + "]";
}

AddrNamer
namerFrom(const std::map<std::string, Addr> &addr_of)
{
    std::map<Addr, std::string> inverse;
    for (const auto &[loc, a] : addr_of)
        inverse.emplace(a, loc);
    return [inverse](Addr a) {
        auto it = inverse.find(a);
        return it == inverse.end() ? defaultAddrName(a) : it->second;
    };
}

namespace {

std::string
addrName(const AddrNamer &name, Addr a)
{
    std::string s = name ? name(a) : std::string();
    return s.empty() ? defaultAddrName(a) : s;
}

} // namespace

std::string
AxEvent::toString(const AddrNamer &name) const
{
    std::ostringstream os;
    os << "P" << proc << " ";
    if (fence) {
        os << "fence";
        return os.str();
    }
    os << wo::toString(kind) << " " << addrName(name, addr);
    if (reads())
        os << "=" << valueRead;
    if (writes())
        os << ":=" << valueWritten;
    return os.str();
}

RunResult
Candidate::outcome(const MultiProgram &program) const
{
    RunResult r;
    r.allHalted = true;
    for (Addr a : program.touchedAddrs()) {
        auto it = co.find(a);
        if (it != co.end() && !it->second.empty())
            r.finalMemory[a] = events[it->second.back()].valueWritten;
        else
            r.finalMemory[a] = program.initialValue(a);
    }
    r.registers.resize(program.numProcs());
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        r.registers[p] = p < static_cast<ProcId>(finalRegs.size())
                             ? finalRegs[p]
                             : std::vector<Word>();
        r.registers[p].resize(program.numRegisters(), 0);
    }
    return r;
}

std::string
Candidate::toString(const AddrNamer &name) const
{
    std::ostringstream os;
    for (const AxEvent &e : events) {
        os << "e" << e.id << ": " << e.toString(name);
        if (e.reads()) {
            os << "  rf<- ";
            if (rf[e.id] == kInitialWrite)
                os << "init";
            else
                os << "e" << rf[e.id];
        }
        os << "\n";
    }
    for (const auto &[a, chain] : co) {
        os << "co " << addrName(name, a) << ": init";
        for (int id : chain)
            os << " -> e" << id;
        os << "\n";
    }
    return os.str();
}

} // namespace axiom
} // namespace wo
