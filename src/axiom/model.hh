/**
 * @file
 * Pluggable axiomatic memory models.
 *
 * A model is an acyclicity constraint over a union of relations of a
 * candidate execution (see axiom/relation.hh). Three models ship:
 *
 *  - "sc": acyclic(po ∪ rf ∪ co ∪ fr). Lamport sequential consistency
 *    — there is a single interleaving of all events consistent with
 *    program order that explains every read.
 *
 *  - "wb": acyclic(poloc ∪ fence ∪ rf ∪ co ∪ fr). The hardware
 *    envelope of the repo's Relaxed machines: per-location coherence,
 *    RMW atomicity (enforced by construction of co), and the
 *    RP3-style fence are kept, while cross-location program order is
 *    dropped entirely — the write-buffered bus reorders W→R (Figure 1
 *    case 1) and the banked uncached memory reorders W→W (case 2).
 *
 *  - "drf0sc": the paper's Definition-2 contract as an axiom. When the
 *    program is DRF0 (ModelContext::programDrf0, computed by the PR-3
 *    detector), candidates must satisfy "sc"; otherwise the hardware
 *    owes nothing beyond its envelope and candidates are checked
 *    against "wb".
 *
 * Every shipped model contains poloc ∪ rf ∪ co ∪ fr, i.e. all respect
 * per-location coherence — the candidate enumerator exploits this as a
 * generator invariant and never emits coherence-violating candidates.
 */

#ifndef WO_AXIOM_MODEL_HH
#define WO_AXIOM_MODEL_HH

#include <string>
#include <vector>

#include "axiom/event.hh"
#include "consistency/policy.hh"

namespace wo {
namespace axiom {

/** Program-level facts a conditional model may depend on. */
struct ModelContext
{
    /** Sampled DRF0 verdict for the whole program (see
     * core/drf0_checker.hh); drf0sc promises SC only when true. */
    bool programDrf0 = false;
};

/** Outcome of checking one candidate against one model. */
struct ModelVerdict
{
    bool allowed = true;

    /** Rendered shortest cycle when rejected and a witness was
     * requested (empty otherwise). */
    std::string cycle;
};

/** One axiomatic memory model. Implementations are stateless. */
class AxiomaticModel
{
  public:
    virtual ~AxiomaticModel() = default;

    virtual std::string name() const = 0;
    virtual std::string summary() const = 0;

    /** Accept or reject @p c; when @p need_cycle, a rejection carries
     * the witness cycle rendered with @p name. */
    virtual ModelVerdict check(const Candidate &c, const ModelContext &ctx,
                               bool need_cycle = false,
                               const AddrNamer &name =
                                   defaultAddrName) const = 0;
};

/** The built-in models, in registry order: sc, wb, drf0sc. */
const std::vector<const AxiomaticModel *> &axiomModels();

/** Lookup by name; nullptr when unknown. */
const AxiomaticModel *findAxiomModel(const std::string &name);

/**
 * The model whose allowed set bounds what the simulator may show under
 * @p policy: Sc -> "sc"; the weak-ordering policies (Def1, Def2*) ->
 * "drf0sc"; Relaxed -> "wb".
 */
const AxiomaticModel *modelForPolicy(PolicyKind policy);

} // namespace axiom
} // namespace wo

#endif // WO_AXIOM_MODEL_HH
