#include "axiom/relation.hh"

#include <algorithm>
#include <deque>
#include <sstream>

namespace wo {
namespace axiom {

std::string
toString(RelKind k)
{
    switch (k) {
      case RelKind::Po: return "po";
      case RelKind::PoLoc: return "poloc";
      case RelKind::Fence: return "fence";
      case RelKind::Rf: return "rf";
      case RelKind::Co: return "co";
      case RelKind::Fr: return "fr";
    }
    return "?";
}

bool
RelGraph::acyclic() const
{
    int n = numEvents();
    // 0 = unvisited, 1 = on stack, 2 = done.
    std::vector<int> color(n, 0);
    std::vector<std::pair<int, std::size_t>> stack;
    for (int root = 0; root < n; ++root) {
        if (color[root] != 0)
            continue;
        color[root] = 1;
        stack.emplace_back(root, 0);
        while (!stack.empty()) {
            auto &[u, i] = stack.back();
            if (i < out_[u].size()) {
                int v = out_[u][i++].to;
                if (color[v] == 1)
                    return false;
                if (color[v] == 0) {
                    color[v] = 1;
                    stack.emplace_back(v, 0);
                }
            } else {
                color[u] = 2;
                stack.pop_back();
            }
        }
    }
    return true;
}

std::vector<RelEdge>
RelGraph::findCycle() const
{
    // Shortest cycle through any edge (u -> v): BFS the shortest path
    // v ->* u, then close it with the edge. Graphs here have a few
    // dozen events, and this only runs to render a witness.
    int n = numEvents();
    std::vector<RelEdge> best;
    for (int u = 0; u < n; ++u) {
        for (const RelEdge &e : out_[u]) {
            std::vector<int> parent(n, -1);
            std::vector<RelEdge> via(n);
            std::deque<int> q;
            parent[e.to] = e.to;
            q.push_back(e.to);
            while (!q.empty() && parent[u] == -1) {
                int x = q.front();
                q.pop_front();
                for (const RelEdge &f : out_[x]) {
                    if (parent[f.to] == -1) {
                        parent[f.to] = x;
                        via[f.to] = f;
                        q.push_back(f.to);
                    }
                }
            }
            if (parent[u] == -1)
                continue;
            std::vector<RelEdge> cycle;
            for (int x = u; x != e.to; x = parent[x])
                cycle.push_back(via[x]);
            std::reverse(cycle.begin(), cycle.end());
            cycle.insert(cycle.begin(), e);
            if (best.empty() || cycle.size() < best.size())
                best = std::move(cycle);
        }
    }
    return best;
}

void
addPo(const Candidate &c, RelGraph &g)
{
    for (const auto &proc : c.byProc) {
        for (std::size_t i = 1; i < proc.size(); ++i)
            g.addEdge(proc[i - 1], proc[i], RelKind::Po);
    }
}

void
addPoLoc(const Candidate &c, RelGraph &g)
{
    for (const auto &proc : c.byProc) {
        std::map<Addr, int> last;
        for (int id : proc) {
            const AxEvent &e = c.events[id];
            if (e.fence)
                continue;
            auto it = last.find(e.addr);
            if (it != last.end())
                g.addEdge(it->second, id, RelKind::PoLoc);
            last[e.addr] = id;
        }
    }
}

void
addFenceOrder(const Candidate &c, RelGraph &g)
{
    for (const auto &proc : c.byProc) {
        for (std::size_t f = 0; f < proc.size(); ++f) {
            if (!c.events[proc[f]].fence)
                continue;
            for (std::size_t i = 0; i < f; ++i)
                g.addEdge(proc[i], proc[f], RelKind::Fence);
            for (std::size_t i = f + 1; i < proc.size(); ++i)
                g.addEdge(proc[f], proc[i], RelKind::Fence);
        }
    }
}

void
addRf(const Candidate &c, RelGraph &g)
{
    for (const AxEvent &e : c.events) {
        if (e.reads() && c.rf[e.id] >= 0)
            g.addEdge(c.rf[e.id], e.id, RelKind::Rf);
    }
}

void
addCo(const Candidate &c, RelGraph &g)
{
    for (const auto &[a, chain] : c.co) {
        for (std::size_t i = 1; i < chain.size(); ++i)
            g.addEdge(chain[i - 1], chain[i], RelKind::Co);
    }
}

void
addFr(const Candidate &c, RelGraph &g)
{
    for (const AxEvent &e : c.events) {
        if (!e.reads())
            continue;
        auto it = c.co.find(e.addr);
        if (it == c.co.end() || it->second.empty())
            continue;
        const std::vector<int> &chain = it->second;
        int succ = -1;
        if (c.rf[e.id] == kInitialWrite) {
            succ = chain.front();
        } else {
            auto pos =
                std::find(chain.begin(), chain.end(), c.rf[e.id]);
            if (pos != chain.end() && pos + 1 != chain.end())
                succ = *(pos + 1);
        }
        if (succ >= 0 && succ != e.id)
            g.addEdge(e.id, succ, RelKind::Fr);
    }
}

std::string
renderCycle(const Candidate &c, const std::vector<RelEdge> &cycle,
            const AddrNamer &name)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const RelEdge &e = cycle[i];
        os << "e" << e.from << " " << c.events[e.from].toString(name)
           << " --" << toString(e.kind) << "--> ";
    }
    if (!cycle.empty())
        os << "e" << cycle.front().from << " "
           << c.events[cycle.front().from].toString(name);
    return os.str();
}

} // namespace axiom
} // namespace wo
