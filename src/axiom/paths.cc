#include "axiom/paths.hh"

#include <algorithm>
#include <functional>

namespace wo {
namespace axiom {

namespace {

/** Shared per-round enumeration state for one processor. */
struct ProcEnum
{
    const Program &prog;
    const std::map<Addr, std::set<Word>> &values;
    const PathLimits &limits;

    std::vector<LocalPath> paths;
    std::vector<AxEvent> events;
    std::vector<Word> regs;
    int writesOnPath = 0;
    bool capped = false;
    std::uint64_t stutterPruned = 0;

    /** Values written along ANY explored prefix — dead ends included.
     * A spin that cannot exit until another processor's value arrives
     * (e.g. the barrier's release flag) emits no complete path in
     * early rounds, but its prefix writes must still reach the value
     * fixpoint or the fixpoint deadlocks at zero paths. Spurious
     * values cost nothing: rf assignment later demands a matching
     * write event in the combo, keeping allowed sets exact. */
    std::map<Addr, std::set<Word>> written;

    /** Max writes on any explored prefix (>= any complete path's
     * count), used for the groundedness round bound. */
    int maxWrites = 0;

    /** (pc, regs) states on the current path -> event count at the
     * first visit (stutter pruning). */
    std::map<std::vector<Word>, int> onPath;

    ProcEnum(const Program &pr, int num_regs,
             const std::map<Addr, std::set<Word>> &v, const PathLimits &l)
        : prog(pr), values(v), limits(l)
    {
        regs.assign(num_regs, 0);
    }

    std::vector<Word> stateKey(int pc) const
    {
        std::vector<Word> key;
        key.reserve(regs.size() + 1);
        key.push_back(static_cast<Word>(pc));
        key.insert(key.end(), regs.begin(), regs.end());
        return key;
    }

    void emit()
    {
        if (static_cast<int>(paths.size()) >= limits.maxPathsPerProc) {
            capped = true;
            return;
        }
        LocalPath p;
        p.events = events;
        p.finalRegs = regs;
        p.writes = writesOnPath;
        for (std::size_t i = 0; i < p.events.size(); ++i)
            p.events[i].poIndex = static_cast<int>(i);
        paths.push_back(std::move(p));
    }

    const std::set<Word> &valuesAt(Addr a)
    {
        static const std::set<Word> zero = {0};
        auto it = values.find(a);
        return it == values.end() ? zero : it->second;
    }

    void run(int pc, int steps)
    {
        if (capped)
            return;
        if (pc >= prog.size()) {
            emit();
            return;
        }
        if (steps >= limits.maxStepsPerPath ||
            static_cast<int>(events.size()) >= limits.maxEventsPerPath) {
            capped = true;
            return;
        }

        // Stutter pruning: revisiting a (pc, regs) state means the loop
        // body re-read unchanged values; unless it contains a
        // register-sourced write (which could deposit new values), the
        // continuation's outcomes are all reachable from the first
        // visit, so this path is redundant.
        auto key = stateKey(pc);
        auto [it, inserted] =
            onPath.emplace(std::move(key), static_cast<int>(events.size()));
        if (!inserted) {
            bool fresh_writes = false;
            for (int i = it->second; i < static_cast<int>(events.size());
                 ++i) {
                if (events[i].regSourcedWrite)
                    fresh_writes = true;
            }
            if (!fresh_writes) {
                ++stutterPruned;
                return;
            }
        }

        const Instruction &insn = prog.at(pc);
        int next_pc = pc + 1;
        switch (insn.op) {
          case Opcode::Load:
          case Opcode::SyncRead: {
            Word old = regs[insn.dst];
            for (Word v : valuesAt(insn.addr)) {
                AxEvent e;
                e.proc = 0;
                e.kind = insn.accessKind();
                e.addr = insn.addr;
                e.valueRead = v;
                events.push_back(e);
                regs[insn.dst] = v;
                run(next_pc, steps + 1);
                events.pop_back();
                if (capped)
                    break;
            }
            regs[insn.dst] = old;
            break;
          }
          case Opcode::Store:
          case Opcode::SyncWrite: {
            AxEvent e;
            e.proc = 0;
            e.kind = insn.accessKind();
            e.addr = insn.addr;
            e.valueWritten = insn.src >= 0 ? regs[insn.src] : insn.imm;
            e.regSourcedWrite = insn.src >= 0;
            written[e.addr].insert(e.valueWritten);
            events.push_back(e);
            ++writesOnPath;
            maxWrites = std::max(maxWrites, writesOnPath);
            run(next_pc, steps + 1);
            --writesOnPath;
            events.pop_back();
            break;
          }
          case Opcode::TestAndSet: {
            Word old = regs[insn.dst];
            for (Word v : valuesAt(insn.addr)) {
                AxEvent e;
                e.proc = 0;
                e.kind = AccessKind::SyncRmw;
                e.addr = insn.addr;
                e.valueRead = v;
                e.valueWritten = insn.imm;
                written[e.addr].insert(e.valueWritten);
                events.push_back(e);
                ++writesOnPath;
                maxWrites = std::max(maxWrites, writesOnPath);
                regs[insn.dst] = v;
                run(next_pc, steps + 1);
                --writesOnPath;
                events.pop_back();
                if (capped)
                    break;
            }
            regs[insn.dst] = old;
            break;
          }
          case Opcode::Movi: {
            Word old = regs[insn.dst];
            regs[insn.dst] = insn.imm;
            run(next_pc, steps + 1);
            regs[insn.dst] = old;
            break;
          }
          case Opcode::Addi: {
            Word old = regs[insn.dst];
            regs[insn.dst] = regs[insn.src] + insn.imm;
            run(next_pc, steps + 1);
            regs[insn.dst] = old;
            break;
          }
          case Opcode::Beq:
            run(regs[insn.src] == insn.imm ? insn.target : next_pc,
                steps + 1);
            break;
          case Opcode::Bne:
            run(regs[insn.src] != insn.imm ? insn.target : next_pc,
                steps + 1);
            break;
          case Opcode::Fence: {
            AxEvent e;
            e.proc = 0;
            e.fence = true;
            events.push_back(e);
            run(next_pc, steps + 1);
            events.pop_back();
            break;
          }
          case Opcode::Nop:
            run(next_pc, steps + 1);
            break;
          case Opcode::Halt:
            emit();
            break;
        }

        if (inserted)
            onPath.erase(it);
    }
};

} // namespace

PathSet
enumeratePaths(const MultiProgram &program, const PathLimits &limits)
{
    PathSet out;
    int n = program.numProcs();
    out.perProc.resize(n);

    // Value-set fixpoint, seeded with the initial memory contents.
    for (Addr a : program.touchedAddrs())
        out.values[a].insert(program.initialValue(a));

    // Identical program bodies (e.g. symmetric counter workers) yield
    // identical local path sets; enumerate each distinct body once.
    std::vector<int> sameAs(n, -1);
    for (ProcId p = 0; p < n; ++p) {
        for (ProcId q = 0; q < p; ++q) {
            if (program.program(p).code() == program.program(q).code()) {
                sameAs[p] = q;
                break;
            }
        }
    }

    std::vector<int> procMaxWrites(n, 0);
    for (int round = 0;; ++round) {
        out.valueRounds = round + 1;

        std::uint64_t emitted = 0;
        int total_writes = 0;
        bool grew = false;
        out.stutterPruned = 0;
        std::map<Addr, std::set<Word>> next = out.values;

        for (ProcId p = 0; p < n; ++p) {
            if (sameAs[p] >= 0) {
                out.perProc[p] = out.perProc[sameAs[p]];
                procMaxWrites[p] = procMaxWrites[sameAs[p]];
            } else {
                ProcEnum e(program.program(p), program.numRegisters(),
                           out.values, limits);
                e.run(0, 0);
                if (e.capped)
                    out.complete = false;
                out.stutterPruned += e.stutterPruned;
                out.perProc[p] = std::move(e.paths);
                procMaxWrites[p] = e.maxWrites;
                for (const auto &[a, vals] : e.written) {
                    for (Word v : vals) {
                        if (next[a].insert(v).second)
                            grew = true;
                    }
                }
            }
            emitted += out.perProc[p].size();
            total_writes += procMaxWrites[p];
        }
        out.pathsEmitted = emitted;

        if (!grew)
            break;
        out.values = std::move(next);
        if (round + 1 >= limits.maxValueRounds) {
            out.complete = false;
            break;
        }
        // Groundedness bound — a clean convergence, not a truncation:
        // any value readable in a real candidate derives from initial
        // values through distinct write events of that candidate, so
        // its fixpoint depth is at most the total write-event bound.
        // Growth beyond that depth is spurious (unsourceable in any
        // combo) and safely abandoned.
        if (round + 1 > total_writes + 1)
            break;
    }

    // Stamp proc ids (cheap; paths were enumerated proc-agnostically).
    for (ProcId p = 0; p < n; ++p) {
        for (LocalPath &path : out.perProc[p]) {
            for (AxEvent &ev : path.events)
                ev.proc = p;
        }
    }
    return out;
}

} // namespace axiom
} // namespace wo
